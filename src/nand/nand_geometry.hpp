// NAND flash organization (paper §II.A and §VI).
//
// The paper's conclusion claims Flashmark "is applicable broadly to NOR and
// NAND flash memories"; this module plus nand_controller realizes that
// extension. NAND differs from NOR in exactly the ways that matter to the
// watermark flow: no random word access (reads/programs are whole pages),
// erase granularity is a multi-page block, and the partial-erase primitive
// is a RESET issued while a block erase is in flight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/sim_time.hpp"

namespace flashmark {

struct NandGeometry {
  std::size_t n_blocks = 1024;
  std::size_t pages_per_block = 64;
  std::size_t page_bytes = 2048;   ///< main area
  std::size_t spare_bytes = 64;    ///< OOB area (metadata/ECC)
  /// Parts-per-million of factory-bad blocks, marked per ONFI convention
  /// with 0x00 in the first spare byte of the block's first page. Typical
  /// datasheets allow up to 2% over life; shipped parts carry a few.
  double factory_bad_block_ppm = 5'000.0;  ///< 0.5%

  std::size_t page_total_bytes() const { return page_bytes + spare_bytes; }
  std::size_t page_cells() const { return page_total_bytes() * 8; }
  std::size_t block_pages() const { return pages_per_block; }
  std::size_t capacity_bytes() const {
    return n_blocks * pages_per_block * page_bytes;
  }

  bool valid_block(std::size_t block) const { return block < n_blocks; }
  bool valid_page(std::size_t block, std::size_t page) const {
    return block < n_blocks && page < pages_per_block;
  }

  void validate() const;
  std::string describe() const;

  /// 2 Gbit SLC part in the spirit of small ONFI chips.
  static NandGeometry slc_2gbit();
  /// Tiny geometry for fast unit tests.
  static NandGeometry tiny();
};

/// NAND timing (ONFI-ish SLC datasheet values). NAND erases a whole block
/// in a few ms and programs a whole 2 KiB page in a few hundred us, so the
/// per-byte imprint cost is far below the MSP430's — the paper's §V remark
/// that stand-alone chips will imprint much faster.
struct NandTiming {
  SimTime t_block_erase = SimTime::us(3'000);  ///< tBERS
  SimTime t_page_program = SimTime::us(300);   ///< tPROG
  SimTime t_page_read = SimTime::us(25);       ///< tR (array -> register)
  SimTime t_byte_io = SimTime::ns(25);         ///< register <-> host, per byte
  SimTime t_reset_during_erase = SimTime::us(5);  ///< tRST while erasing

  static NandTiming slc_datasheet() { return NandTiming{}; }
};

}  // namespace flashmark
