// Minimal flash translation layer (FTL) over the NAND substrate.
//
// Why it is here: the paper's threat model starts from flash chips that
// lived inside products. Products do not P/E-hammer one block — they run a
// wear-leveled FTL that spreads erases across the whole array. This module
// provides that realistic "field life" workload generator: logical page
// writes go through a log-structured mapping with round-robin-least-worn
// block allocation and garbage collection, so a simulated used chip shows
// the genuine wear *distribution* a recycled-flash detector faces.
//
// Design (deliberately classic):
//   * page-mapped, log-structured: each logical-page write appends to the
//     currently open block and invalidates the old physical page;
//   * allocation picks the free block with the lowest erase count
//     (dynamic wear leveling);
//   * GC triggers when free blocks run low: the block with the fewest
//     valid pages is compacted into the open block and erased;
//   * factory-bad blocks are skipped at mount.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nand/nand_controller.hpp"
#include "nand/nand_watermark.hpp"

namespace flashmark {

struct FtlStats {
  std::uint64_t host_writes = 0;   ///< logical page writes
  std::uint64_t nand_writes = 0;   ///< physical page programs (incl. GC)
  std::uint64_t gc_runs = 0;
  std::uint64_t block_erases = 0;
  double write_amplification() const {
    return host_writes ? static_cast<double>(nand_writes) /
                             static_cast<double>(host_writes)
                       : 0.0;
  }
};

class Ftl {
 public:
  /// Mounts the FTL on blocks [first_block, first_block + n_blocks) of the
  /// chip, skipping factory-bad blocks. `reserve_blocks` (>= 2) are kept
  /// free for GC headroom; the rest carry data.
  Ftl(NandController& nand, std::size_t first_block, std::size_t n_blocks,
      std::size_t reserve_blocks = 2);

  /// Number of logical pages exposed to the host.
  std::size_t logical_pages() const { return logical_pages_; }

  /// Write one logical page (data sized page_cells bits).
  void write(std::size_t logical_page, const BitVec& data);

  /// Read a logical page; all-ones if never written.
  BitVec read(std::size_t logical_page);

  const FtlStats& stats() const { return stats_; }

  /// Erase counts per managed block (wear-leveling observability).
  std::vector<std::uint64_t> erase_counts() const;

  /// Managed physical block indices (for detector probes).
  const std::vector<std::size_t>& managed_blocks() const { return blocks_; }

 private:
  struct PhysAddr {
    std::size_t block_slot;  ///< index into blocks_
    std::size_t page;
  };

  struct BlockState {
    std::uint64_t erase_count = 0;
    std::size_t next_page = 0;           ///< append cursor
    std::size_t valid_pages = 0;
    bool free = true;
  };

  std::size_t pages_per_block() const {
    return nand_.geometry().pages_per_block;
  }
  void open_new_block();
  void garbage_collect();
  PhysAddr append(const BitVec& data);

  NandController& nand_;
  std::vector<std::size_t> blocks_;     ///< physical block per slot
  std::vector<BlockState> state_;       ///< per slot
  std::vector<std::optional<PhysAddr>> map_;  ///< logical page -> phys
  /// Reverse map: (slot, page) -> logical page (or npos) for GC.
  std::vector<std::vector<std::size_t>> reverse_;
  std::size_t open_slot_ = 0;
  std::size_t reserve_blocks_;
  std::size_t logical_pages_;
  FtlStats stats_;
};

}  // namespace flashmark
