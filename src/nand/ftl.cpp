#include "nand/ftl.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace flashmark {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

void check(NandStatus st, const char* op) {
  if (st != NandStatus::kOk)
    throw std::runtime_error(std::string("ftl: ") + op +
                             " failed: " + to_string(st));
}
}  // namespace

Ftl::Ftl(NandController& nand, std::size_t first_block, std::size_t n_blocks,
         std::size_t reserve_blocks)
    : nand_(nand), reserve_blocks_(reserve_blocks) {
  if (reserve_blocks_ < 2)
    throw std::invalid_argument("Ftl: need at least 2 reserve blocks");
  for (std::size_t b = first_block; b < first_block + n_blocks; ++b) {
    if (!nand_.geometry().valid_block(b))
      throw std::invalid_argument("Ftl: block range outside the chip");
    if (!nand_.array().factory_bad(b)) blocks_.push_back(b);
  }
  if (blocks_.size() <= reserve_blocks_)
    throw std::invalid_argument("Ftl: not enough good blocks");

  state_.assign(blocks_.size(), BlockState{});
  reverse_.assign(blocks_.size(),
                  std::vector<std::size_t>(pages_per_block(), kNone));
  logical_pages_ = (blocks_.size() - reserve_blocks_) * pages_per_block();
  map_.assign(logical_pages_, std::nullopt);

  open_slot_ = 0;
  state_[0].free = false;
}

void Ftl::open_new_block() {
  // Dynamic wear leveling: pick the free slot with the lowest erase count.
  std::size_t best = kNone;
  for (std::size_t s = 0; s < state_.size(); ++s) {
    if (!state_[s].free) continue;
    if (best == kNone || state_[s].erase_count < state_[best].erase_count)
      best = s;
  }
  if (best == kNone) throw std::logic_error("Ftl: no free block to open");
  state_[best].free = false;
  open_slot_ = best;
}

Ftl::PhysAddr Ftl::append(const BitVec& data) {
  BlockState& open = state_[open_slot_];
  if (open.next_page >= pages_per_block())
    throw std::logic_error("Ftl: open block full (caller must rotate)");
  const PhysAddr pa{open_slot_, open.next_page};
  check(nand_.page_program(blocks_[open_slot_], pa.page, data),
        "page_program");
  ++open.next_page;
  ++open.valid_pages;
  ++stats_.nand_writes;
  return pa;
}

void Ftl::write(std::size_t logical_page, const BitVec& data) {
  if (logical_page >= logical_pages_)
    throw std::out_of_range("Ftl::write: logical page out of range");
  if (data.size() != nand_.geometry().page_cells())
    throw std::invalid_argument("Ftl::write: data size != page cells");
  ++stats_.host_writes;

  // Rotate the open block when full; GC if we are running out of space.
  // GC itself may rotate the open block while relocating, in which case the
  // post-GC open block already has room and must not be abandoned.
  if (state_[open_slot_].next_page >= pages_per_block()) {
    std::size_t free_count = 0;
    for (const auto& s : state_) free_count += s.free ? 1 : 0;
    if (free_count <= 1) garbage_collect();
    if (state_[open_slot_].next_page >= pages_per_block()) open_new_block();
  }

  // Invalidate the previous location.
  if (map_[logical_page]) {
    const PhysAddr old = *map_[logical_page];
    --state_[old.block_slot].valid_pages;
    reverse_[old.block_slot][old.page] = kNone;
  }
  const PhysAddr pa = append(data);
  map_[logical_page] = pa;
  reverse_[pa.block_slot][pa.page] = logical_page;
}

void Ftl::garbage_collect() {
  ++stats_.gc_runs;
  // Victim: the non-open block with the fewest valid pages; ties broken by
  // the LOWEST erase count so reclamation itself levels wear (a fixed
  // tie-break would hammer one slot forever under hot workloads).
  std::size_t victim = kNone;
  for (std::size_t s = 0; s < state_.size(); ++s) {
    if (s == open_slot_ || state_[s].free) continue;
    if (victim == kNone ||
        state_[s].valid_pages < state_[victim].valid_pages ||
        (state_[s].valid_pages == state_[victim].valid_pages &&
         state_[s].erase_count < state_[victim].erase_count))
      victim = s;
  }
  if (victim == kNone) throw std::logic_error("Ftl: no GC victim");

  // Relocate the victim's valid pages into the open block (the caller
  // guarantees the open block has room or will rotate right after; to keep
  // the invariant simple we relocate through fresh open blocks as needed).
  for (std::size_t page = 0; page < pages_per_block(); ++page) {
    const std::size_t lp = reverse_[victim][page];
    if (lp == kNone) continue;
    if (state_[open_slot_].next_page >= pages_per_block()) open_new_block();
    BitVec data;
    check(nand_.page_read(blocks_[victim], page, &data), "gc read");
    const PhysAddr pa = append(data);
    map_[lp] = pa;
    reverse_[pa.block_slot][pa.page] = lp;
    reverse_[victim][page] = kNone;
  }
  check(nand_.block_erase(blocks_[victim]), "gc erase");
  ++stats_.block_erases;
  const std::uint64_t erases = state_[victim].erase_count + 1;
  state_[victim] = BlockState{};
  state_[victim].erase_count = erases;
  std::fill(reverse_[victim].begin(), reverse_[victim].end(), kNone);
}

BitVec Ftl::read(std::size_t logical_page) {
  if (logical_page >= logical_pages_)
    throw std::out_of_range("Ftl::read: logical page out of range");
  if (!map_[logical_page])
    return BitVec(nand_.geometry().page_cells(), true);
  const PhysAddr pa = *map_[logical_page];
  BitVec data;
  check(nand_.page_read(blocks_[pa.block_slot], pa.page, &data), "read");
  return data;
}

std::vector<std::uint64_t> Ftl::erase_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(state_.size());
  for (const auto& s : state_) out.push_back(s.erase_count);
  return out;
}

}  // namespace flashmark
