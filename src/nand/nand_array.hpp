// NAND cell matrix. Reuses the floating-gate Cell physics of src/phys with
// a NAND-calibrated parameter set: NAND cells are denser and less robust
// than the MSP430's embedded NOR (typical SLC endurance ~10 K cycles versus
// 100 K), so the same watermark contrast appears at roughly 10x fewer
// imprint cycles.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nand/nand_geometry.hpp"
#include "phys/cell.hpp"
#include "phys/params.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace flashmark {

/// NAND-calibrated physics: slower absolute erase (a block needs ~2 ms),
/// damage visible within the ~10 K-cycle endurance budget.
PhysParams nand_slc_phys();

class NandArray {
 public:
  NandArray(NandGeometry geometry, PhysParams phys, std::uint64_t die_seed);

  const NandGeometry& geometry() const { return geom_; }
  const PhysParams& phys() const { return phys_; }

  /// Full block-erase pulse.
  void erase_block(std::size_t block);
  /// Block-erase pulse aborted after t_pe_us.
  void partial_erase_block(std::size_t block, double t_pe_us);
  /// Program a page: data bit 0 -> program pulse on that cell (NAND programs
  /// whole pages; 1 bits leave cells untouched). `data` covers main+spare.
  void program_page(std::size_t block, std::size_t page, const BitVec& data);
  /// Program pulse train aborted at `fraction` (0..1] of the nominal page
  /// program time.
  void partial_program_page(std::size_t block, std::size_t page,
                            const BitVec& data, double fraction);
  /// One noisy read of a whole page (main+spare), LSB-first per byte.
  BitVec read_page(std::size_t block, std::size_t page);

  /// Noise-free erased-cell count of one page.
  std::size_t count_erased(std::size_t block, std::size_t page);
  /// True if the block was marked bad at the factory (deterministic per
  /// die seed). Bad blocks carry the ONFI 0x00 marker in the first spare
  /// byte of page 0 as stuck-programmed cells, so the marker survives
  /// erases — exactly how real parts guarantee it.
  bool factory_bad(std::size_t block) const;

  /// Simulation-only batch stress of a whole block (see FlashArray).
  void wear_block(std::size_t block, double cycles,
                  const BitVec* page_pattern = nullptr,
                  std::size_t pattern_page = 0);
  /// White-box access.
  const Cell& cell(std::size_t block, std::size_t page, std::size_t idx);

 private:
  std::vector<Cell>& ensure_block(std::size_t block);
  std::size_t page_cell0(std::size_t page) const {
    return page * geom_.page_cells();
  }

  NandGeometry geom_;
  PhysParams phys_;
  std::uint64_t die_seed_;
  Rng noise_rng_;
  std::vector<std::unique_ptr<std::vector<Cell>>> blocks_;
};

}  // namespace flashmark
