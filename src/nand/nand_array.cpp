#include "nand/nand_array.hpp"

#include <stdexcept>

namespace flashmark {

PhysParams nand_slc_phys() {
  PhysParams p = PhysParams::msp430_calibrated();
  // A block-erase pulse discharges cells over ~hundreds of us to ~2 ms.
  p.tte_fresh_median_us = 400.0;
  p.tte_fresh_log_sigma = 0.11;
  // Denser, weaker oxides: full watermark contrast within the ~10 K-cycle
  // SLC endurance budget (10x the NOR damage rate at equal cycles).
  p.k_damage = 0.42;
  p.read_noise_tau_us = 12.0;  // scales with the slower erase dynamics
  p.validate();
  return p;
}

NandArray::NandArray(NandGeometry geometry, PhysParams phys,
                     std::uint64_t die_seed)
    : geom_(geometry),
      phys_(phys),
      die_seed_(die_seed),
      noise_rng_(die_seed ^ 0x4E414E44534545Dull),
      blocks_(geometry.n_blocks) {
  geom_.validate();
  phys_.validate();
}

bool NandArray::factory_bad(std::size_t block) const {
  if (!geom_.valid_block(block))
    throw std::out_of_range("NandArray: block out of range");
  std::uint64_t sm = die_seed_ ^ (0xBADB10C000000000ull + block);
  const std::uint64_t h = splitmix64(sm);
  return static_cast<double>(h >> 11) * 0x1.0p-53 <
         geom_.factory_bad_block_ppm * 1e-6;
}

std::vector<Cell>& NandArray::ensure_block(std::size_t block) {
  if (!geom_.valid_block(block))
    throw std::out_of_range("NandArray: block out of range");
  auto& slot = blocks_[block];
  if (!slot) {
    std::uint64_t sm = die_seed_ ^ (0xA24BAED4963EE407ull * (block + 1));
    Rng block_rng(splitmix64(sm));
    const std::size_t n = geom_.pages_per_block * geom_.page_cells();
    slot = std::make_unique<std::vector<Cell>>();
    slot->reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      slot->push_back(Cell::manufacture(phys_, block_rng));
    if (factory_bad(block)) {
      // ONFI bad-block marker: first spare byte of page 0 reads 0x00,
      // implemented as stuck-programmed cells so no erase removes it.
      const std::size_t marker0 = geom_.page_bytes * 8;
      for (std::size_t b = 0; b < 8; ++b) {
        Cell::Snapshot s = (*slot)[marker0 + b].snapshot_state();
        s.level = static_cast<std::uint8_t>(CellLevel::kProgrammed);
        s.defect = static_cast<std::uint8_t>(CellDefect::kStuckProgrammed);
        (*slot)[marker0 + b] = Cell::restore(s);
      }
    }
  }
  return *slot;
}

void NandArray::erase_block(std::size_t block) {
  for (auto& c : ensure_block(block)) c.full_erase(phys_);
}

void NandArray::partial_erase_block(std::size_t block, double t_pe_us) {
  if (t_pe_us < 0.0)
    throw std::invalid_argument("partial_erase_block: negative time");
  for (auto& c : ensure_block(block))
    c.partial_erase(phys_, t_pe_us, noise_rng_);
}

void NandArray::program_page(std::size_t block, std::size_t page,
                             const BitVec& data) {
  if (!geom_.valid_page(block, page))
    throw std::out_of_range("NandArray: page out of range");
  if (data.size() != geom_.page_cells())
    throw std::invalid_argument("program_page: data size != page cells");
  auto& cells = ensure_block(block);
  const std::size_t base = page_cell0(page);
  for (std::size_t i = 0; i < data.size(); ++i)
    if (!data.get(i)) cells[base + i].program(phys_);
}

void NandArray::partial_program_page(std::size_t block, std::size_t page,
                                     const BitVec& data, double fraction) {
  if (!geom_.valid_page(block, page))
    throw std::out_of_range("NandArray: page out of range");
  if (data.size() != geom_.page_cells())
    throw std::invalid_argument("partial_program_page: data size mismatch");
  if (fraction <= 0.0)
    throw std::invalid_argument("partial_program_page: fraction must be > 0");
  auto& cells = ensure_block(block);
  const std::size_t base = page_cell0(page);
  for (std::size_t i = 0; i < data.size(); ++i)
    if (!data.get(i))
      cells[base + i].partial_program(phys_, fraction, noise_rng_);
}

BitVec NandArray::read_page(std::size_t block, std::size_t page) {
  if (!geom_.valid_page(block, page))
    throw std::out_of_range("NandArray: page out of range");
  auto& cells = ensure_block(block);
  const std::size_t base = page_cell0(page);
  BitVec out(geom_.page_cells());
  for (std::size_t i = 0; i < out.size(); ++i)
    out.set(i, cells[base + i].read(phys_, noise_rng_));
  return out;
}

std::size_t NandArray::count_erased(std::size_t block, std::size_t page) {
  if (!geom_.valid_page(block, page))
    throw std::out_of_range("NandArray: page out of range");
  auto& cells = ensure_block(block);
  const std::size_t base = page_cell0(page);
  std::size_t n = 0;
  for (std::size_t i = 0; i < geom_.page_cells(); ++i)
    if (cells[base + i].erased()) ++n;
  return n;
}

void NandArray::wear_block(std::size_t block, double cycles,
                           const BitVec* page_pattern,
                           std::size_t pattern_page) {
  auto& cells = ensure_block(block);
  if (page_pattern && page_pattern->size() != geom_.page_cells())
    throw std::invalid_argument("wear_block: pattern size != page cells");
  for (std::size_t page = 0; page < geom_.pages_per_block; ++page) {
    const std::size_t base = page_cell0(page);
    for (std::size_t i = 0; i < geom_.page_cells(); ++i) {
      bool programmed;
      if (page_pattern)
        programmed = page == pattern_page && !page_pattern->get(i);
      else
        programmed = true;
      cells[base + i].batch_stress(phys_, cycles, programmed,
                                   /*end_programmed=*/page_pattern != nullptr);
    }
  }
}

const Cell& NandArray::cell(std::size_t block, std::size_t page,
                            std::size_t idx) {
  if (!geom_.valid_page(block, page) || idx >= geom_.page_cells())
    throw std::out_of_range("NandArray::cell: out of range");
  return ensure_block(block)[page_cell0(page) + idx];
}

}  // namespace flashmark
