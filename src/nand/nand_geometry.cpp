#include "nand/nand_geometry.hpp"

#include <sstream>
#include <stdexcept>

namespace flashmark {

void NandGeometry::validate() const {
  auto require = [](bool cond, const char* what) {
    if (!cond) throw std::invalid_argument(std::string("NandGeometry: ") + what);
  };
  require(n_blocks > 0, "need at least one block");
  require(pages_per_block > 0, "need at least one page per block");
  require(page_bytes > 0, "page_bytes must be > 0");
}

std::string NandGeometry::describe() const {
  std::ostringstream os;
  os << n_blocks << " blocks x " << pages_per_block << " pages x "
     << page_bytes << "+" << spare_bytes << "B ("
     << capacity_bytes() / (1024 * 1024) << " MiB main)";
  return os.str();
}

NandGeometry NandGeometry::slc_2gbit() {
  NandGeometry g;
  g.n_blocks = 2048;
  g.pages_per_block = 64;
  g.page_bytes = 2048;
  g.spare_bytes = 64;
  return g;
}

NandGeometry NandGeometry::tiny() {
  NandGeometry g;
  g.n_blocks = 8;
  g.pages_per_block = 4;
  g.page_bytes = 256;
  g.spare_bytes = 8;
  return g;
}

}  // namespace flashmark
