// Flashmark on NAND (paper §VI: "the proposed method is applicable broadly
// to NOR and NAND flash memories").
//
// The flow mirrors the NOR pipeline with NAND-shaped primitives: the
// watermark lives in page 0 of a dedicated block, imprinting alternates
// BLOCK ERASE with PAGE PROGRAM of the watermark page, and extraction
// programs the page to all-zeros, starts a block erase and RESETs it after
// the published window. The codec layers (dual-rail, signatures,
// replication, soft decode) are shared with the NOR implementation — they
// operate on bit vectors and are substrate-agnostic by construction.
#pragma once

#include <cstdint>

#include "core/codec.hpp"
#include "core/imprint.hpp"
#include "core/replicate.hpp"
#include "core/signature.hpp"
#include "core/watermark.hpp"
#include "nand/nand_controller.hpp"

namespace flashmark {

struct NandImprintOptions {
  std::uint32_t npe = 5'000;  ///< SLC endurance ~10 K: contrast needs fewer cycles
  ImprintStrategy strategy = ImprintStrategy::kLoop;
};

/// Imprint `pattern` (page_cells bits, bit 0 => stressed) into page `page`
/// of `block`. Returns the imprint report with simulated timing.
ImprintReport imprint_flashmark_nand(NandController& nand, std::size_t block,
                                     std::size_t page, const BitVec& pattern,
                                     const NandImprintOptions& opts = {});

struct NandExtractOptions {
  SimTime t_pew = SimTime::us(520);  ///< NAND-family window (slower erase)
  int rounds = 1;                    ///< odd
};

struct NandExtractResult {
  BitVec bits;
  SimTime elapsed;
};

/// Extract the watermark bitmap of (block, page).
NandExtractResult extract_flashmark_nand(NandController& nand,
                                         std::size_t block, std::size_t page,
                                         const NandExtractOptions& opts = {});

/// Scan the chip's bad-block markers (ONFI convention: 0x00 in the first
/// spare byte of page 0). Returns the bad block indices in [0, limit).
std::vector<std::size_t> scan_bad_blocks(NandController& nand,
                                         std::size_t limit);

/// First block in [0, limit) whose marker reads good; throws
/// std::runtime_error if every block is bad. The manufacturer places the
/// watermark here.
std::size_t first_good_block(NandController& nand, std::size_t limit);

/// Convenience: full manufacturer/integrator pipeline on NAND, reusing the
/// NOR WatermarkSpec / VerifyOptions vocabulary (t_pew and npe are
/// interpreted in NAND terms).
ImprintReport imprint_watermark_nand(NandController& nand, std::size_t block,
                                     const WatermarkSpec& spec);
VerifyReport verify_watermark_nand(NandController& nand, std::size_t block,
                                   const VerifyOptions& opts);

}  // namespace flashmark
