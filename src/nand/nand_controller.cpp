#include "nand/nand_controller.hpp"

#include <algorithm>

namespace flashmark {

const char* to_string(NandStatus s) {
  switch (s) {
    case NandStatus::kOk: return "ok";
    case NandStatus::kBusy: return "busy";
    case NandStatus::kNotBusy: return "not-busy";
    case NandStatus::kInvalidAddress: return "invalid-address";
    case NandStatus::kInvalidArgument: return "invalid-argument";
    case NandStatus::kProtocolError: return "protocol-error";
  }
  return "unknown";
}

NandController::NandController(NandArray& array, NandTiming timing,
                               SimClock& clock)
    : array_(array), timing_(timing), clock_(clock) {}

NandStatus NandController::begin_block_erase(std::size_t block) {
  if (busy()) return NandStatus::kBusy;
  if (!geometry().valid_block(block)) return NandStatus::kInvalidAddress;
  op_ = Op{OpKind::kErase, block, 0, BitVec{}, clock_.now(),
           clock_.now() + timing_.t_block_erase};
  return NandStatus::kOk;
}

NandStatus NandController::begin_page_program(std::size_t block,
                                              std::size_t page,
                                              const BitVec& data) {
  if (busy()) return NandStatus::kBusy;
  if (!geometry().valid_page(block, page)) return NandStatus::kInvalidAddress;
  if (data.size() != geometry().page_cells())
    return NandStatus::kInvalidArgument;
  // Host streams the data into the page register first.
  clock_.advance(timing_.t_byte_io *
                 static_cast<std::int64_t>(geometry().page_total_bytes()));
  op_ = Op{OpKind::kProgram, block, page, data, clock_.now(),
           clock_.now() + timing_.t_page_program};
  return NandStatus::kOk;
}

void NandController::advance(SimTime dt) {
  clock_.advance(dt);
  if (op_ && clock_.now() >= op_->deadline) complete_op();
}

void NandController::complete_op() {
  const Op op = std::move(*op_);
  op_.reset();
  if (op.kind == OpKind::kErase)
    array_.erase_block(op.block);
  else
    array_.program_page(op.block, op.page, op.data);
}

NandStatus NandController::reset() {
  if (!op_) return NandStatus::kNotBusy;
  const Op op = std::move(*op_);
  op_.reset();
  const SimTime elapsed = clock_.now() - op.start;
  if (op.kind == OpKind::kErase) {
    array_.partial_erase_block(op.block, elapsed.as_us());
  } else {
    // Aborted program: NAND programs are multi-pulse ISPP trains; an abort
    // at `frac` of the nominal time leaves each target cell programmed iff
    // its charge crossed the sense level by then.
    const double frac =
        std::min(1.0, elapsed.as_us() / timing_.t_page_program.as_us());
    if (frac > 0.0)
      array_.partial_program_page(op.block, op.page, op.data, frac);
  }
  clock_.advance(timing_.t_reset_during_erase);
  return NandStatus::kOk;
}

NandStatus NandController::wait_ready() {
  if (!op_) return NandStatus::kNotBusy;
  const SimTime dt = op_->deadline - clock_.now();
  advance(dt > SimTime{} ? dt : SimTime{});
  if (op_) complete_op();
  return NandStatus::kOk;
}

NandStatus NandController::block_erase(std::size_t block) {
  if (auto st = begin_block_erase(block); st != NandStatus::kOk) return st;
  return wait_ready();
}

NandStatus NandController::partial_block_erase(std::size_t block,
                                               SimTime t_pe) {
  if (t_pe < SimTime{}) return NandStatus::kInvalidArgument;
  if (t_pe >= timing_.t_block_erase) return block_erase(block);
  if (auto st = begin_block_erase(block); st != NandStatus::kOk) return st;
  advance(t_pe);
  return reset();
}

NandStatus NandController::page_program(std::size_t block, std::size_t page,
                                        const BitVec& data) {
  if (auto st = begin_page_program(block, page, data); st != NandStatus::kOk)
    return st;
  return wait_ready();
}

NandStatus NandController::page_read(std::size_t block, std::size_t page,
                                     BitVec* out) {
  if (busy()) return NandStatus::kBusy;
  if (!geometry().valid_page(block, page)) return NandStatus::kInvalidAddress;
  if (out == nullptr) return NandStatus::kInvalidArgument;
  clock_.advance(timing_.t_page_read);
  clock_.advance(timing_.t_byte_io *
                 static_cast<std::int64_t>(geometry().page_total_bytes()));
  *out = array_.read_page(block, page);
  return NandStatus::kOk;
}

}  // namespace flashmark
