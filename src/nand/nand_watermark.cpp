#include "nand/nand_watermark.hpp"

#include <algorithm>
#include <stdexcept>

namespace flashmark {

namespace {
void check(NandStatus st, const char* op) {
  if (st != NandStatus::kOk)
    throw std::runtime_error(std::string("nand watermark: ") + op +
                             " failed: " + to_string(st));
}
}  // namespace

ImprintReport imprint_flashmark_nand(NandController& nand, std::size_t block,
                                     std::size_t page, const BitVec& pattern,
                                     const NandImprintOptions& opts) {
  if (opts.npe == 0)
    throw std::invalid_argument("imprint_flashmark_nand: npe must be > 0");
  if (pattern.size() != nand.geometry().page_cells())
    throw std::invalid_argument(
        "imprint_flashmark_nand: pattern size != page cells");

  const SimTime start = nand.now();
  ImprintReport report;
  report.npe = opts.npe;

  if (opts.strategy == ImprintStrategy::kBatchWear) {
    nand.array().wear_block(block, opts.npe, &pattern, page);
    // Account the clock like the real loop would.
    const SimTime cycle =
        nand.timing().t_block_erase + nand.timing().t_page_program +
        nand.timing().t_byte_io *
            static_cast<std::int64_t>(nand.geometry().page_total_bytes());
    // The simulated clock lives in the controller's SimClock; advance it.
    nand.advance(cycle * static_cast<std::int64_t>(opts.npe));
  } else {
    for (std::uint32_t cycle = 0; cycle < opts.npe; ++cycle) {
      check(nand.block_erase(block), "block_erase");
      check(nand.page_program(block, page, pattern), "page_program");
    }
  }

  report.elapsed = nand.now() - start;
  report.mean_cycle_time =
      SimTime::ns(report.elapsed.as_ns() / static_cast<std::int64_t>(opts.npe));
  return report;
}

NandExtractResult extract_flashmark_nand(NandController& nand,
                                         std::size_t block, std::size_t page,
                                         const NandExtractOptions& opts) {
  if (opts.rounds < 1 || opts.rounds % 2 == 0)
    throw std::invalid_argument("extract_flashmark_nand: rounds must be odd");
  const std::size_t n_cells = nand.geometry().page_cells();
  const BitVec zeros(n_cells);  // all-programmed page

  const SimTime start = nand.now();
  std::vector<BitVec> rounds;
  for (int r = 0; r < opts.rounds; ++r) {
    check(nand.block_erase(block), "block_erase");
    check(nand.page_program(block, page, zeros), "page_program");
    check(nand.partial_block_erase(block, opts.t_pew), "partial_block_erase");
    BitVec bits;
    check(nand.page_read(block, page, &bits), "page_read");
    rounds.push_back(std::move(bits));
  }

  NandExtractResult result;
  if (opts.rounds == 1) {
    result.bits = std::move(rounds.front());
  } else {
    result.bits = BitVec(n_cells);
    for (std::size_t i = 0; i < n_cells; ++i) {
      int ones = 0;
      for (const auto& rb : rounds) ones += rb.get(i) ? 1 : 0;
      result.bits.set(i, ones * 2 > opts.rounds);
    }
  }
  result.elapsed = nand.now() - start;
  return result;
}

std::vector<std::size_t> scan_bad_blocks(NandController& nand,
                                         std::size_t limit) {
  std::vector<std::size_t> bad;
  const std::size_t marker_bit = nand.geometry().page_bytes * 8;
  for (std::size_t b = 0; b < limit && b < nand.geometry().n_blocks; ++b) {
    BitVec page;
    check(nand.page_read(b, 0, &page), "page_read(bad-block scan)");
    // Marker byte good == 0xFF: all eight spare bits read 1.
    bool good = true;
    for (std::size_t i = 0; i < 8; ++i)
      if (!page.get(marker_bit + i)) good = false;
    if (!good) bad.push_back(b);
  }
  return bad;
}

std::size_t first_good_block(NandController& nand, std::size_t limit) {
  const auto bad = scan_bad_blocks(nand, limit);
  for (std::size_t b = 0; b < limit && b < nand.geometry().n_blocks; ++b)
    if (std::find(bad.begin(), bad.end(), b) == bad.end()) return b;
  throw std::runtime_error("first_good_block: no good block found");
}

ImprintReport imprint_watermark_nand(NandController& nand, std::size_t block,
                                     const WatermarkSpec& spec) {
  const EncodedWatermark enc =
      encode_watermark(spec, nand.geometry().page_cells());
  NandImprintOptions opts;
  opts.npe = spec.npe;
  opts.strategy = spec.strategy;
  return imprint_flashmark_nand(nand, block, /*page=*/0, enc.segment_pattern,
                                opts);
}

VerifyReport verify_watermark_nand(NandController& nand, std::size_t block,
                                   const VerifyOptions& opts) {
  NandExtractOptions eo;
  eo.t_pew = opts.t_pew;
  eo.rounds = opts.rounds;
  const NandExtractResult ext = extract_flashmark_nand(nand, block, 0, eo);
  VerifyReport report = judge_extracted_bits(ext.bits, opts);
  report.extract_time = ext.elapsed;
  return report;
}

}  // namespace flashmark
