// ONFI-style NAND command interface.
//
// Commands are issued as (command byte, addresses, data) sequences like a
// real raw-NAND bus: READ (00h..30h), PAGE PROGRAM (80h..10h), BLOCK ERASE
// (60h..D0h), RESET (FFh) and READ STATUS (70h). The watermark-relevant
// primitive is RESET issued while a block erase is in flight: it aborts the
// erase after the elapsed pulse time — the NAND equivalent of the MSP430's
// emergency exit, and exactly how prior work performs partial erases on
// stand-alone chips through the standard interface.
#pragma once

#include <cstdint>
#include <optional>

#include "nand/nand_array.hpp"
#include "flash/timing.hpp"  // SimClock

namespace flashmark {

enum class NandStatus : std::uint8_t {
  kOk = 0,
  kBusy,
  kNotBusy,
  kInvalidAddress,
  kInvalidArgument,
  kProtocolError,  ///< command sequence violated (e.g. program without data)
};

const char* to_string(NandStatus s);

class NandController {
 public:
  NandController(NandArray& array, NandTiming timing, SimClock& clock);

  const NandGeometry& geometry() const { return array_.geometry(); }
  const NandTiming& timing() const { return timing_; }
  SimTime now() const { return clock_.now(); }
  NandArray& array() { return array_; }

  bool busy() const { return op_.has_value(); }

  // --- asynchronous protocol ---------------------------------------------
  /// BLOCK ERASE: 60h + row address + D0h.
  NandStatus begin_block_erase(std::size_t block);
  /// PAGE PROGRAM: 80h + address + data + 10h.
  NandStatus begin_page_program(std::size_t block, std::size_t page,
                                const BitVec& data);
  /// Advance the chip's clock; completes the in-flight operation when its
  /// deadline passes.
  void advance(SimTime dt);
  /// RESET (FFh). Issued while an erase is in flight it aborts the pulse at
  /// the elapsed time (partial erase); while a program is in flight it
  /// aborts the program; idle it is a no-op.
  NandStatus reset();
  /// Poll until the in-flight operation completes.
  NandStatus wait_ready();

  // --- synchronous conveniences -------------------------------------------
  NandStatus block_erase(std::size_t block);
  /// Erase pulse of exactly t_pe, then RESET.
  NandStatus partial_block_erase(std::size_t block, SimTime t_pe);
  NandStatus page_program(std::size_t block, std::size_t page,
                          const BitVec& data);
  /// READ: 00h + address + 30h, wait tR, stream the page out.
  NandStatus page_read(std::size_t block, std::size_t page, BitVec* out);

 private:
  enum class OpKind { kErase, kProgram };
  struct Op {
    OpKind kind;
    std::size_t block;
    std::size_t page;
    BitVec data;
    SimTime start;
    SimTime deadline;
  };

  void complete_op();

  NandArray& array_;
  NandTiming timing_;
  SimClock& clock_;
  std::optional<Op> op_;
};

}  // namespace flashmark
