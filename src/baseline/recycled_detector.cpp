#include "baseline/recycled_detector.hpp"

#include <algorithm>
#include <stdexcept>

namespace flashmark {

SimTime RecycledDetector::measure_full_erase(FlashHal& hal, Addr addr) const {
  CharacterizeOptions opts;
  opts.t_step = resolution_;
  opts.t_end = SimTime::us(2000);  // generous: covers 100 K-cycle wear
  opts.n_reads = 3;
  opts.settle_points = 3;
  const auto curve = characterize_segment(hal, addr, opts);
  return full_erase_time(curve);
}

void RecycledDetector::calibrate(FlashHal& hal, Addr fresh_addr) {
  calibrate_from(measure_full_erase(hal, fresh_addr));
}

void RecycledDetector::calibrate_from(SimTime fresh_full_erase) {
  if (fresh_full_erase <= SimTime{})
    throw std::invalid_argument("RecycledDetector: bad calibration time");
  threshold_ = SimTime::from_us(fresh_full_erase.as_us() * guard_factor_);
}

RecycledAssessment RecycledDetector::assess(FlashHal& hal, Addr addr) const {
  if (!calibrated())
    throw std::logic_error("RecycledDetector: assess before calibrate");
  RecycledAssessment a;
  a.fresh_threshold = threshold_;
  a.full_erase_time = measure_full_erase(hal, addr);
  a.wear_score = a.full_erase_time.as_us() / threshold_.as_us();
  a.recycled = a.full_erase_time > threshold_;
  return a;
}

RecycledAssessment RecycledDetector::assess_chip(
    FlashHal& hal, const std::vector<Addr>& segments) const {
  if (segments.empty())
    throw std::invalid_argument("RecycledDetector: no segments to probe");
  RecycledAssessment worst;
  bool first = true;
  for (const Addr a : segments) {
    const RecycledAssessment r = assess(hal, a);
    if (first || r.wear_score > worst.wear_score) {
      worst = r;
      first = false;
    }
  }
  return worst;
}

}  // namespace flashmark
