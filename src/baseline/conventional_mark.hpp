// "Current practice" baseline (paper §IV): the manufacturer performs an
// ordinary erase + program of manufacturing metadata into a reserved
// segment. Cheap, instant — and trivially forgeable, since any party with
// the digital interface can erase and rewrite it. The benches use this as
// the comparison point for Flashmark's tamper resistance.
#pragma once

#include <optional>

#include "core/codec.hpp"
#include "flash/hal.hpp"

namespace flashmark {

/// Write fields (+CRC) as plain digital data at `addr`.
void conventional_mark_write(FlashHal& hal, Addr addr,
                             const WatermarkFields& fields);

/// Read back a conventional mark; std::nullopt when the CRC fails.
std::optional<WatermarkFields> conventional_mark_read(FlashHal& hal, Addr addr);

/// The forgery: erase the segment and write different fields — succeeds in
/// milliseconds on any chip.
void conventional_mark_forge(FlashHal& hal, Addr addr,
                             const WatermarkFields& new_fields);

}  // namespace flashmark
