#include "baseline/conventional_mark.hpp"

namespace flashmark {

namespace {
std::vector<std::uint16_t> fields_to_words(const WatermarkFields& fields,
                                           std::size_t bits_per_word) {
  const BitVec bits = pack_fields(fields);
  std::vector<std::uint16_t> words((bits.size() + bits_per_word - 1) /
                                   bits_per_word);
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits.get(i))
      words[i / bits_per_word] |=
          static_cast<std::uint16_t>(1u << (i % bits_per_word));
  return words;
}
}  // namespace

void conventional_mark_write(FlashHal& hal, Addr addr,
                             const WatermarkFields& fields) {
  const auto& g = hal.geometry();
  const Addr base = g.segment_base(g.segment_index(addr));
  hal.erase_segment(base);
  hal.program_block(base, fields_to_words(fields, g.bits_per_word()));
}

std::optional<WatermarkFields> conventional_mark_read(FlashHal& hal,
                                                      Addr addr) {
  const auto& g = hal.geometry();
  const Addr base = g.segment_base(g.segment_index(addr));
  const std::size_t bpw = g.bits_per_word();
  BitVec bits(kFieldsBits);
  for (std::size_t i = 0; i < kFieldsBits; ++i) {
    const Addr wa = base + static_cast<Addr>(i / bpw * g.word_bytes);
    const std::uint16_t w = hal.read_word(wa);
    bits.set(i, (w >> (i % bpw)) & 1u);
  }
  return unpack_fields(bits);
}

void conventional_mark_forge(FlashHal& hal, Addr addr,
                             const WatermarkFields& new_fields) {
  conventional_mark_write(hal, addr, new_fields);  // that is the whole attack
}

}  // namespace flashmark
