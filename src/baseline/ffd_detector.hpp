// FFD-style fake-flash detection via sweeping partial PROGRAM operations —
// the paper's ref [6] (Guo, Xu, Tehranipoor, Forte, "FFD: A framework for
// fake flash detection", DAC 2017), reimplemented as the second prior-art
// baseline.
//
// Principle: trap-assisted injection makes worn cells trap charge faster,
// so a program pulse aborted well before the nominal program time already
// programs a visible fraction of a *used* segment while leaving a fresh
// segment untouched. Like the erase-timing detector it classifies
// used-vs-fresh only; it carries no manufacturer payload.
#pragma once

#include <vector>

#include "flash/hal.hpp"
#include "util/sim_time.hpp"

namespace flashmark {

struct FfdPoint {
  double fraction = 0.0;          ///< of the nominal word-program time
  std::size_t programmed = 0;     ///< cells that already read 0
  std::size_t cells = 0;
};

/// Sweep partial-program fractions over the segment at `addr`: per point,
/// erase, then partial-program every word to 0x0000 with the given pulse
/// fraction, then count programmed cells. Destructive, like the original.
std::vector<FfdPoint> characterize_partial_program(
    FlashHal& hal, Addr addr, const std::vector<double>& fractions,
    int n_reads = 3);

struct FfdAssessment {
  double programmed_fraction = 0.0;  ///< at the probe pulse
  double threshold = 0.0;
  bool used = false;
};

class FfdDetector {
 public:
  /// `probe_fraction` of the nominal program time; the default sits ~3
  /// sigma below the fresh completion threshold, so a fresh segment shows
  /// (almost) nothing. `trip_fraction` of programmed cells flags the chip.
  explicit FfdDetector(double probe_fraction = 0.50,
                       double trip_fraction = 0.02)
      : probe_fraction_(probe_fraction), trip_fraction_(trip_fraction) {}

  /// Optional: derive the probe from a fresh golden segment — the largest
  /// swept fraction at which fewer than trip/2 of the cells program.
  void calibrate(FlashHal& hal, Addr fresh_addr);

  double probe_fraction() const { return probe_fraction_; }

  /// Probe one segment of a suspect chip (destructive to that segment).
  FfdAssessment assess(FlashHal& hal, Addr addr) const;

 private:
  double probe_fraction_;
  double trip_fraction_;
};

}  // namespace flashmark
