#include "baseline/ffd_detector.hpp"

#include <stdexcept>

#include "core/analyze.hpp"

namespace flashmark {

std::vector<FfdPoint> characterize_partial_program(
    FlashHal& hal, Addr addr, const std::vector<double>& fractions,
    int n_reads) {
  const auto& g = hal.geometry();
  const std::size_t seg = g.segment_index(addr);
  const Addr base = g.segment_base(seg);
  const std::size_t n_words = g.segment_bytes(seg) / g.word_bytes;

  std::vector<FfdPoint> curve;
  for (const double f : fractions) {
    if (f <= 0.0 || f > 1.0)
      throw std::invalid_argument(
          "characterize_partial_program: fraction must be in (0, 1]");
    hal.erase_segment(base);
    const SimTime pulse = SimTime::from_us(hal.timing().t_prog_word.as_us() * f);
    for (std::size_t w = 0; w < n_words; ++w)
      hal.partial_program_word(base + static_cast<Addr>(w * g.word_bytes),
                               0x0000, pulse);
    const SegmentAnalysis a = analyze_segment(hal, base, n_reads);
    curve.push_back({f, a.cells_0, a.cells_0 + a.cells_1});
  }
  return curve;
}

void FfdDetector::calibrate(FlashHal& hal, Addr fresh_addr) {
  std::vector<double> fractions;
  for (double f = 0.30; f <= 0.70; f += 0.05) fractions.push_back(f);
  const auto curve = characterize_partial_program(hal, fresh_addr, fractions);
  double best = fractions.front();
  for (const auto& p : curve) {
    if (p.cells == 0)
      throw std::invalid_argument(
          "FfdDetector::calibrate: probed segment has no cells — the "
          "fraction would be NaN and every comparison silently false");
    const double frac =
        static_cast<double>(p.programmed) / static_cast<double>(p.cells);
    if (frac < trip_fraction_ / 2.0) best = p.fraction;
  }
  probe_fraction_ = best;
}

FfdAssessment FfdDetector::assess(FlashHal& hal, Addr addr) const {
  const auto curve =
      characterize_partial_program(hal, addr, {probe_fraction_});
  if (curve.front().cells == 0)
    throw std::invalid_argument(
        "FfdDetector::assess: probed segment has no cells — a NaN "
        "programmed fraction would read as \"fresh\" (NaN > trip is "
        "false), quietly passing every counterfeit");
  FfdAssessment a;
  a.programmed_fraction = static_cast<double>(curve.front().programmed) /
                          static_cast<double>(curve.front().cells);
  a.threshold = trip_fraction_;
  a.used = a.programmed_fraction > trip_fraction_;
  return a;
}

}  // namespace flashmark
