// Recycled-flash detection via partial-erase timing statistics — a
// reimplementation in spirit of the paper's refs [6]/[7] (Sakib et al.,
// "Non-Invasive Detection Method for Recycled Flash Memory Using Timing
// Characteristics"). Included as the prior-art baseline Flashmark is
// contrasted against: it detects *use* (wear) but carries no manufacturer
// payload and cannot distinguish out-of-spec from genuine parts.
//
// Principle: prior P/E activity slows erase. The detector measures how long
// a partial erase must run before the probed segment reads fully erased and
// compares it against a fresh-family threshold calibrated once per device
// family.
#pragma once

#include <vector>

#include "core/characterize.hpp"
#include "flash/hal.hpp"
#include "util/sim_time.hpp"

namespace flashmark {

struct RecycledAssessment {
  SimTime full_erase_time;  ///< measured on the probed segment
  SimTime fresh_threshold;  ///< calibrated decision boundary
  bool recycled = false;
  /// Ratio measured/threshold — a rough wear score (1.0 = boundary).
  double wear_score = 0.0;
};

class RecycledDetector {
 public:
  /// `guard_factor` scales the fresh full-erase time into the decision
  /// threshold (margin for die-to-die variation).
  explicit RecycledDetector(double guard_factor = 1.5,
                            SimTime resolution = SimTime::us(2))
      : guard_factor_(guard_factor), resolution_(resolution) {}

  /// Calibrate the fresh-family threshold on a known-fresh segment (done
  /// once per family by the integrator, e.g. on a golden sample).
  void calibrate(FlashHal& hal, Addr fresh_addr);

  /// Calibrate from a precomputed fresh full-erase time.
  void calibrate_from(SimTime fresh_full_erase);

  bool calibrated() const { return threshold_ > SimTime{}; }
  SimTime threshold() const { return threshold_; }

  /// Probe one segment of a suspect chip. Destructive to that segment's
  /// data (erase/program cycles), like the original method.
  RecycledAssessment assess(FlashHal& hal, Addr addr) const;

  /// Probe several segments and vote: recycled if any segment trips the
  /// threshold (counterfeiters rarely manage to avoid all of flash).
  RecycledAssessment assess_chip(FlashHal& hal,
                                 const std::vector<Addr>& segments) const;

 private:
  SimTime measure_full_erase(FlashHal& hal, Addr addr) const;

  double guard_factor_;
  SimTime resolution_;
  SimTime threshold_;
};

}  // namespace flashmark
