// Out-of-core die population: an LRU cache of resident Devices over a
// directory of v3 die files.
//
// The fleet layer simulates populations far larger than RAM holds: a 10^6-die
// lot at ~1 MB of columnar state per touched die would need a terabyte
// resident. DieStore keeps at most `max_resident` dies in memory and spills
// the rest to disk through the columnar format (flash/die_format.hpp), whose
// zero-copy properties make the traffic cheap: eviction of a dirty die is a
// memcpy of its columns into an atomic file replace, re-admission is
// mmap + header parse (cell data hydrates lazily on first touch), and a
// *clean* die is simply dropped — it re-manufactures from its seed or
// re-maps from its file byte-identically, so nothing needs writing.
//
// Concurrency: all operations are thread-safe. A fleet job pins its die for
// the duration of the job (PinnedDie, RAII); pinned dies are never evicted,
// and the store may temporarily exceed `max_resident` when more dies are
// pinned than the cap allows. Disk I/O (load, eviction save) happens outside
// the store lock, so unrelated dies stay available while one is in flight.
//
// A pin is EXCLUSIVE: pin() blocks while another thread holds the same die,
// because even logically read-only device work writes the SegmentSoA
// erase-time cache under const (phys/kernels.hpp prime_tte — the mutable
// memo is single-owner by contract). One thread may nest pins of the same
// die only by releasing first; two pins of the same die held by one thread
// deadlock just as two threads would block. The serve daemon additionally
// serializes same-die requests above the store (serve/server.cpp
// stripe_for), so its threads never contend here.
//
// Determinism: which dies are resident at any instant — and therefore the
// hit/miss/eviction counters — depends on scheduling at threads > 1, exactly
// like wall-clock times. Die *state* does not: a die's bytes after a batch
// are identical whether it stayed resident throughout or was evicted and
// reloaded ten times (tests/store_test.cpp asserts this). The store counters
// are folded into the metrics registry as gauges but are excluded from the
// byte-identical-export contract (docs/REPRODUCIBILITY.md §6/§8).
//
// Eviction never loses state: if a dirty die's save fails (disk full,
// permission), the die stays resident, the failure is counted in
// `eviction_errors`, and the store simply runs over capacity — the operator
// sees the cause in stats/metrics instead of silent data loss. A failure
// whose IoCause is kNoSpace additionally latches the store into a
// write-blocked state: a full volume is not transient, so until some save
// succeeds again the eviction path stops attempting dirty saves entirely
// (clean dies still evict — they need no write) instead of hammering a
// doomed flush on every pin. The latch, the cause, and the no-space count
// are all visible through stats()/last_save_error()/fold_into().
#pragma once

#include <cstdint>
#include <functional>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "mcu/device.hpp"
#include "util/fsio.hpp"

namespace flashmark::obs {
class MetricsRegistry;
}  // namespace flashmark::obs

namespace flashmark::store {

struct DieStoreConfig {
  /// Directory holding the die files (`die-<index>.fm`); created on
  /// construction. Pre-existing files are the population's persisted state.
  std::string dir;
  /// Family preset + kernel mode every die of the population runs.
  DeviceConfig device;
  /// Resident-die cap. Pinned dies may push the store past it; eviction
  /// restores the cap as pins release.
  std::size_t max_resident = 1024;
  /// fsync eviction/flush saves (crash-durable checkpoints). Off by default:
  /// a store is a working set, not a journal — batch code that needs
  /// durability points a SessionPolicy at the run instead.
  bool durable = false;
  /// die index -> die seed. The fleet overloads pass
  /// fleet::derive_die_seed(master_seed, die); defaults to the identity.
  std::function<std::uint64_t(std::size_t)> seed_of;
};

/// Monotonic operation counters (see the determinism note above: counter
/// *values* are scheduling-dependent at threads > 1).
struct DieStoreStats {
  std::uint64_t hits = 0;          ///< pin() found the die resident
  std::uint64_t misses = 0;        ///< pin() had to load or manufacture
  std::uint64_t loads = 0;         ///< misses served from a die file
  std::uint64_t manufactures = 0;  ///< misses served by fresh manufacture
  std::uint64_t evictions = 0;     ///< dies dropped to enforce the cap
  std::uint64_t eviction_saves = 0;   ///< evictions that had to write state
  std::uint64_t eviction_errors = 0;  ///< failed saves (die kept resident)
  std::uint64_t eviction_no_space = 0;  ///< eviction_errors caused by ENOSPC
  std::uint64_t eviction_blocked_skips = 0;  ///< dirty saves not attempted
                                             ///< while write-blocked
  std::uint64_t flushed_dirty = 0;    ///< explicit flushes that wrote state
  std::uint64_t flush_clean_skips = 0;  ///< flushes skipped on a clean die
  std::uint64_t flush_pinned_skips = 0;  ///< flushes refused on a pinned die
};

class DieStore {
 public:
  /// Creates `cfg.dir` if missing. Throws std::runtime_error when the
  /// directory cannot be created.
  explicit DieStore(DieStoreConfig cfg);

  /// Best-effort flush of dirty residents (errors land in stats only).
  /// Callers that must not lose state call flush_all() and check the status
  /// before destruction. All pins must have been released.
  ~DieStore();

  DieStore(const DieStore&) = delete;
  DieStore& operator=(const DieStore&) = delete;

  /// RAII residency pin. While alive, the die stays resident and its
  /// Device may be used freely by the pinning thread. Movable, not copyable.
  class PinnedDie {
   public:
    PinnedDie() = default;
    PinnedDie(PinnedDie&& o) noexcept { swap(o); }
    PinnedDie& operator=(PinnedDie&& o) noexcept {
      if (this != &o) {
        release();
        swap(o);
      }
      return *this;
    }
    ~PinnedDie() { release(); }

    Device& operator*() const { return *dev_; }
    Device* operator->() const { return dev_; }
    Device* get() const { return dev_; }
    explicit operator bool() const { return dev_ != nullptr; }

   private:
    friend class DieStore;
    PinnedDie(DieStore* store, std::size_t die, Device* dev)
        : store_(store), die_(die), dev_(dev) {}
    void swap(PinnedDie& o) noexcept {
      std::swap(store_, o.store_);
      std::swap(die_, o.die_);
      std::swap(dev_, o.dev_);
    }
    void release();

    DieStore* store_ = nullptr;
    std::size_t die_ = 0;
    Device* dev_ = nullptr;
  };

  /// Make die `die` resident and pin it: a cache hit pins the resident
  /// Device; a miss loads `die-<die>.fm` if it exists (any format; v3 maps
  /// in without touching cell data) or manufactures the die fresh from
  /// seed_of(die). May evict LRU unpinned dies to restore the cap. Throws
  /// std::runtime_error when an existing die file is unreadable, corrupt,
  /// or does not match the population (wrong family or die seed) —
  /// per-die, so a fleet job's failure taxonomy catches it.
  ///
  /// Exclusive: blocks while any other pin of the same die is live (see the
  /// concurrency note above — the Device's kernel caches are single-owner).
  PinnedDie pin(std::size_t die);

  /// Persist die `die` now if it is resident and dirty (atomic replace).
  /// A clean or non-resident die is a successful no-op. A *pinned* die is
  /// refused with a failure status (and counted in `flush_pinned_skips`):
  /// serializing it would race with the pinning thread's mutations and the
  /// post-save mark_clean() would discard them. Flush after the pin
  /// releases — eviction persists pinned-then-released dirty dies anyway.
  IoStatus flush(std::size_t die);

  /// Flush every dirty resident die in ascending die order (deterministic).
  /// Returns the first failure (after attempting all) or success; a pinned
  /// die counts as a failure (see flush), so call with all pins released
  /// when the result must mean "everything is on disk".
  IoStatus flush_all();

  /// Number of dies currently resident.
  std::size_t resident() const;

  DieStoreStats stats() const;

  /// The failure that latched the store write-blocked (IoStatus::success()
  /// when saves are healthy). While blocked, eviction does not attempt dirty
  /// saves; the first successful save (a later flush once space returns)
  /// clears it.
  IoStatus last_save_error() const;

  /// Export the stats as gauges under `<prefix>.` plus a `resident` gauge.
  /// Gauges (set, not add) so repeated folds are idempotent. These values
  /// are scheduling-dependent at threads > 1 — outside the §6 byte-identity
  /// contract, like heartbeats and wall times.
  void fold_into(obs::MetricsRegistry& reg, const std::string& prefix) const;

  /// The die file path of `die` inside the store directory.
  std::string die_path(std::size_t die) const;

  const DieStoreConfig& config() const { return cfg_; }

 private:
  struct Entry {
    std::unique_ptr<Device> dev;
    int pins = 0;
    /// Load or save I/O in flight outside the lock; waiters sleep on cv_.
    bool busy = false;
    std::uint64_t lru = 0;
  };

  void unpin(std::size_t die);
  /// Serialize + atomically write one die (no lock held).
  IoStatus save_die(std::size_t die, const Device& dev) const;
  /// Evict LRU unpinned dies until the cap holds (called with `lk` held;
  /// unlocks around I/O).
  void evict_excess(std::unique_lock<std::mutex>& lk);
  /// Update the write-blocked latch from a completed save (mu_ held).
  void note_save_result(const IoStatus& st);

  DieStoreConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::size_t, Entry> map_;
  std::size_t resident_ = 0;
  std::uint64_t tick_ = 0;
  DieStoreStats stats_;
  /// Set when a save failed with IoCause::kNoSpace; cleared by the next
  /// successful save. Guards the eviction path against doomed retries.
  bool write_blocked_ = false;
  IoStatus last_save_error_;
};

}  // namespace flashmark::store
