#include "store/die_store.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "flash/die_format.hpp"
#include "mcu/persist.hpp"
#include "obs/metrics.hpp"

namespace flashmark::store {

namespace {

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f) std::fclose(f);
  return f != nullptr;
}

}  // namespace

DieStore::DieStore(DieStoreConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.dir.empty())
    throw std::runtime_error("DieStore: directory must be set");
  if (cfg_.max_resident == 0)
    throw std::runtime_error("DieStore: max_resident must be > 0");
  if (!cfg_.seed_of)
    cfg_.seed_of = [](std::size_t die) {
      return static_cast<std::uint64_t>(die);
    };
  if (const IoStatus st = make_dirs(cfg_.dir); !st)
    throw std::runtime_error("DieStore: " + st.error);
}

DieStore::~DieStore() { flush_all(); }

std::string DieStore::die_path(std::size_t die) const {
  return cfg_.dir + "/die-" + std::to_string(die) + ".fm";
}

IoStatus DieStore::save_die(std::size_t die, const Device& dev) const {
  std::string bytes;
  try {
    bytes = serialize_die_v3(dev.array(), dev.config().family,
                             dev.clock().now().as_ns());
  } catch (const std::exception& e) {
    return IoStatus::failure(std::string("DieStore: ") + e.what());
  }
  return atomic_write_file(die_path(die), bytes, cfg_.durable);
}

DieStore::PinnedDie DieStore::pin(std::size_t die) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    auto it = map_.find(die);
    if (it == map_.end()) break;
    Entry& e = it->second;
    if (e.busy || e.pins > 0) {
      // A pin is EXCLUSIVE: even logically read-only work mutates the
      // die's nominal-erase-time cache (SegmentSoA::prime_tte writes
      // mutable state under const — see phys/kernels.hpp), so two threads
      // holding the same resident die would race. Block until the current
      // holder unpins; unpin()/the miss path notify cv_.
      cv_.wait(lk);
      continue;  // re-find: the entry may have been evicted meanwhile
    }
    ++e.pins;
    e.lru = ++tick_;
    ++stats_.hits;
    return PinnedDie(this, die, e.dev.get());
  }

  // Miss: reserve the slot (busy, no device) and do the I/O unlocked.
  Entry& e = map_[die];  // unordered_map references are insert-stable
  e.busy = true;
  ++stats_.misses;
  lk.unlock();

  std::unique_ptr<Device> dev;
  std::string load_error;
  const std::string path = die_path(die);
  const std::uint64_t want_seed = cfg_.seed_of(die);
  const bool from_file = file_exists(path);
  if (from_file) {
    IoStatus st;
    dev = try_load_device_file(path, &st);
    if (!dev) {
      load_error = "DieStore: die " + std::to_string(die) + ": " + st.error;
    } else if (dev->config().family != cfg_.device.family) {
      // A stray or foreign file must fail the pin, not silently join the
      // population with a different config than every other die.
      load_error = "DieStore: die " + std::to_string(die) + ": " + path +
                   " is family '" + dev->config().family +
                   "' but the population is '" + cfg_.device.family + "'";
      dev.reset();
    } else if (dev->die_seed() != want_seed) {
      load_error = "DieStore: die " + std::to_string(die) + ": " + path +
                   " carries die seed " + std::to_string(dev->die_seed()) +
                   " but seed_of(" + std::to_string(die) + ") = " +
                   std::to_string(want_seed);
      dev.reset();
    } else {
      dev->array().set_kernel_mode(cfg_.device.kernel_mode);
    }
  } else {
    try {
      dev = std::make_unique<Device>(cfg_.device, want_seed);
    } catch (const std::exception& ex) {
      load_error = std::string("DieStore: manufacture failed: ") + ex.what();
    }
  }

  lk.lock();
  if (!dev) {
    map_.erase(die);
    cv_.notify_all();
    throw std::runtime_error(load_error);
  }
  if (from_file)
    ++stats_.loads;
  else
    ++stats_.manufactures;
  e.dev = std::move(dev);
  e.busy = false;
  e.pins = 1;
  e.lru = ++tick_;
  ++resident_;
  evict_excess(lk);
  cv_.notify_all();
  return PinnedDie(this, die, map_[die].dev.get());
}

void DieStore::evict_excess(std::unique_lock<std::mutex>& lk) {
  while (resident_ > cfg_.max_resident) {
    auto victim = map_.end();
    bool skipped_dirty = false;
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      Entry& e = it->second;
      if (e.busy || e.pins > 0 || !e.dev) continue;
      if (write_blocked_ && e.dev->dirty()) {
        // The volume is full: attempting this save again is doomed and
        // would turn every pin into a failed write. The die stays resident
        // (over cap) until a flush succeeds and clears the latch.
        skipped_dirty = true;
        continue;
      }
      if (victim == map_.end() || e.lru < victim->second.lru) victim = it;
    }
    if (victim == map_.end()) {
      if (skipped_dirty) ++stats_.eviction_blocked_skips;
      return;  // all pinned/busy/write-blocked: over cap, allowed
    }

    const std::size_t vdie = victim->first;
    Entry& ve = victim->second;
    ve.busy = true;
    Device* vdev = ve.dev.get();
    const bool was_dirty = vdev->dirty();
    lk.unlock();
    // A clean die needs no write: its file (or its seed) already reproduces
    // it byte-for-byte. Dirty state must land on disk before the drop.
    const IoStatus st =
        was_dirty ? save_die(vdie, *vdev) : IoStatus::success();
    lk.lock();
    if (st) {
      ++stats_.evictions;
      if (was_dirty) {
        ++stats_.eviction_saves;
        note_save_result(st);
      }
      map_.erase(vdie);
      --resident_;
      cv_.notify_all();
    } else {
      // Never drop unsaved state: the die stays resident (over cap) and the
      // failure is visible in stats/metrics.
      ++stats_.eviction_errors;
      if (st.cause == IoCause::kNoSpace) ++stats_.eviction_no_space;
      note_save_result(st);
      ve.busy = false;
      cv_.notify_all();
      return;
    }
  }
}

void DieStore::note_save_result(const IoStatus& st) {
  if (st.ok) {
    write_blocked_ = false;
    last_save_error_ = IoStatus::success();
  } else {
    last_save_error_ = st;
    if (st.cause == IoCause::kNoSpace) write_blocked_ = true;
  }
}

void DieStore::unpin(std::size_t die) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = map_.find(die);
  if (it == map_.end() || it->second.pins <= 0) return;  // defensive
  --it->second.pins;
  if (resident_ > cfg_.max_resident) evict_excess(lk);
  cv_.notify_all();
}

void DieStore::PinnedDie::release() {
  if (store_) store_->unpin(die_);
  store_ = nullptr;
  dev_ = nullptr;
}

IoStatus DieStore::flush(std::size_t die) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    auto it = map_.find(die);
    if (it == map_.end()) return IoStatus::success();  // nothing resident
    Entry& e = it->second;
    if (e.busy) {
      cv_.wait(lk);
      continue;
    }
    if (e.pins > 0) {
      // Serializing a die that a pinning thread may be mutating is a data
      // race, and the mark_clean() below would discard those mutations —
      // a later clean-eviction would then drop unsaved state. The die's
      // state persists on eviction or a flush after the pin releases.
      ++stats_.flush_pinned_skips;
      return IoStatus::failure("DieStore: die " + std::to_string(die) +
                               " is pinned; flush skipped");
    }
    if (!e.dev->dirty()) {
      ++stats_.flush_clean_skips;
      return IoStatus::success();
    }
    e.busy = true;
    Device* dev = e.dev.get();
    lk.unlock();
    const IoStatus st = save_die(die, *dev);
    lk.lock();
    if (st) {
      dev->mark_clean();
      ++stats_.flushed_dirty;
    }
    note_save_result(st);
    e.busy = false;
    cv_.notify_all();
    return st;
  }
}

IoStatus DieStore::flush_all() {
  std::vector<std::size_t> dies;
  {
    std::lock_guard<std::mutex> lk(mu_);
    dies.reserve(map_.size());
    for (const auto& [die, e] : map_) dies.push_back(die);
  }
  std::sort(dies.begin(), dies.end());
  IoStatus first_error = IoStatus::success();
  for (const std::size_t die : dies)
    if (const IoStatus st = flush(die); !st && first_error)
      first_error = st;
  return first_error;
}

std::size_t DieStore::resident() const {
  std::lock_guard<std::mutex> lk(mu_);
  return resident_;
}

DieStoreStats DieStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

IoStatus DieStore::last_save_error() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_save_error_;
}

void DieStore::fold_into(obs::MetricsRegistry& reg,
                         const std::string& prefix) const {
  DieStoreStats s;
  std::size_t res = 0;
  bool blocked = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s = stats_;
    res = resident_;
    blocked = write_blocked_;
  }
  const auto g = [&](const char* name, std::uint64_t v) {
    reg.gauge(prefix + "." + name).set(static_cast<double>(v));
  };
  g("hits", s.hits);
  g("misses", s.misses);
  g("loads", s.loads);
  g("manufactures", s.manufactures);
  g("evictions", s.evictions);
  g("eviction_saves", s.eviction_saves);
  g("eviction_errors", s.eviction_errors);
  g("eviction_no_space", s.eviction_no_space);
  g("eviction_blocked_skips", s.eviction_blocked_skips);
  g("flushed_dirty", s.flushed_dirty);
  g("flush_clean_skips", s.flush_clean_skips);
  g("flush_pinned_skips", s.flush_pinned_skips);
  g("resident", res);
  g("write_blocked", blocked ? 1 : 0);
}

}  // namespace flashmark::store
