// Lot layer — population studies at manufacturing scale (10^5..10^6 dies).
//
// The fleet layer (src/fleet) fans one batch out over a thread pool; this
// layer fans a *lot* out over shard worker processes on top of it. Each
// shard owns a contiguous die range (shared-nothing: die seeds come from
// derive_die_seed, so a shard needs only its range bounds), runs it through
// fleet::run_dies, and streams back integer accumulators instead of per-die
// reports — a million-die study never materializes a million VerifyReports.
//
// Shard-invariance contract (docs/REPRODUCIBILITY.md §9): the curve CSVs
// are byte-identical for ANY shard count x thread count split of the same
// lot. Floating-point Welford merging is not bit-associative, so the
// contractual statistics are accumulated as exact integer sums (Σerr,
// Σerr² per cell, in u64) and converted to doubles exactly once, at CSV
// print time — integer addition is associative, so the fold order cannot
// matter. Derived intervals use wilson_interval / variance_from_counts
// (src/util/stats), which throw rather than fabricate values when a cell
// has too few samples.
//
// Architecture is sketched in DESIGN.md §14; the bench driver is
// bench/lot_study.cpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/watermark.hpp"
#include "fleet/fleet.hpp"
#include "mcu/device.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"

namespace flashmark::obs {
class MetricsRegistry;
}  // namespace flashmark::obs

namespace flashmark::lot {

/// One environmental corner a slice of the lot is exercised under.
struct LotCondition {
  double temperature_c = 25.0;    ///< die temperature during the whole flow
  double pre_wear_cycles = 0.0;   ///< uniform segment aging before imprint
                                  ///< (a part recycled from the field)

  /// Deterministic short name used in CSV rows and metric keys,
  /// e.g. "25C_w0" or "70C_w30000".
  std::string label() const;
};

/// Full description of a lot study. Everything that decides a die's
/// simulation is in here (plus the die index) — a shard can reconstruct its
/// slice of the lot from (config, range) alone.
struct LotConfig {
  DeviceConfig device = DeviceConfig::msp430f5438();
  std::uint64_t master_seed = 0xF1A5'0001;
  std::uint64_t n_dies = 0;

  /// Imprint stress sweep (x-axis of the detection/BER curves). Die i runs
  /// npe_points[i % npe_points.size()] — striping by absolute die index, so
  /// any contiguous shard split sees the same per-die assignment.
  std::vector<std::uint32_t> npe_points = {20'000, 40'000, 60'000};
  /// Environmental corners; die i runs
  /// conditions[(i / npe_points.size()) % conditions.size()]. The default
  /// recycled corner uses 1500 cycles of prior field wear — right on the
  /// detection cliff, so the curves show detection degrading with reuse
  /// and recovering with imprint depth (past ~3000 cycles the uniform
  /// background wear swamps the differential contrast and detection
  /// saturates at zero).
  std::vector<LotCondition> conditions = {
      {25.0, 0.0}, {70.0, 0.0}, {25.0, 1'500.0}, {70.0, 1'500.0}};

  std::size_t segment = 0;       ///< watermark segment on every die
  std::size_t n_replicas = 7;
  SimTime t_pew = SimTime::us(28);
  /// Present => watermarks are signed and verification checks signatures.
  std::optional<SipHashKey> key;

  /// Watermark fields imprinted on die `die` (die_id == die; the detector
  /// counts a die only when the decoded die_id matches).
  WatermarkFields fields_for(std::uint64_t die) const;

  std::size_t n_cells() const { return npe_points.size() * conditions.size(); }
  /// Cell index of die `die` (point-major: point * conditions + cond).
  std::size_t cell_of(std::uint64_t die) const;
};

/// Execution knobs — these must never change the curves, only how fast they
/// are produced (the shard-invariance contract).
struct LotOptions {
  /// Worker processes. 1 = run in-process (no fork); >= 2 forks that many
  /// shard workers, each owning a contiguous die range. Workers are forked
  /// before any thread exists, so the runner is safe under TSan/ASan.
  unsigned shards = 1;
  /// fleet::FleetOptions::threads inside each shard.
  unsigned threads = 1;
  /// Two-sided normal quantile for the confidence columns
  /// (1.959963984540054 = 95%).
  double ci_z = 1.959963984540054;
  /// Keep every per-die counter row in LotResult::fleet. Off by default:
  /// at lot scale only the unhealthy rows (degraded/failed) are retained,
  /// the rest exist only as cell accumulators.
  bool keep_all_rows = false;
  /// Test hook: the shard that owns this absolute die index _exit(3)s
  /// before finishing (simulates a crashed worker). SIZE_MAX = off.
  std::uint64_t crash_at_die = UINT64_MAX;
};

/// Exact integer accumulator of one (npe point, condition) cell. All
/// counts are associative sums — merging shard accumulators in any order
/// yields identical bits, which is what makes the curve CSVs shard-count
/// and thread-count invariant.
struct LotCellAccum {
  std::uint32_t point_idx = 0;  ///< index into LotConfig::npe_points
  std::uint32_t cond_idx = 0;   ///< index into LotConfig::conditions

  std::uint64_t n = 0;         ///< dies assigned to this cell
  std::uint64_t detected = 0;  ///< genuine verdict + matching die_id
  std::uint64_t failed = 0;    ///< die job failed (excluded from BER sums)

  // BER sample sums over the n - failed completed dies. *_sq carries Σx²
  // for variance_from_counts; per-die error counts fit u32, so u64 sums
  // are exact far past 10^6 dies.
  std::uint64_t raw_err = 0;       ///< Σ per-die raw segment bit errors
  std::uint64_t raw_err_sq = 0;
  std::uint64_t vote_err = 0;      ///< Σ per-die post-vote replica errors
  std::uint64_t vote_err_sq = 0;
  std::uint64_t raw_bits_per_die = 0;   ///< segment cells (constant per lot)
  std::uint64_t vote_bits_per_die = 0;  ///< replica bits (constant per lot)

  /// Sum `other` into this cell. Throws std::invalid_argument when the
  /// cell identities or bit widths disagree (merging different lots).
  void merge(const LotCellAccum& other);
};

/// Result of a lot study: the cell grid plus a fleet-style report of the
/// interesting rows.
struct LotResult {
  LotConfig config;
  std::vector<LotCellAccum> cells;  ///< n_cells() entries, point-major

  /// Merged per-shard fleet report. Rows keep absolute die ids; unless
  /// LotOptions::keep_all_rows, only degraded/failed rows are retained
  /// (healthy dies live in `cells` only). A lost shard contributes one
  /// kShardLost row per die of its range.
  fleet::FleetReport fleet;

  /// Host wall stats over every completed die job (merged across shards
  /// via RunningStats::merge — diagnostic, NOT part of the byte-identity
  /// contract).
  RunningStats die_wall_ms;

  unsigned shards_used = 0;
  std::uint64_t shards_lost = 0;
  /// Signal (SIGTERM/SIGINT) that interrupted the sharded run, 0 when it
  /// ran to completion. The interrupted ranges appear as kShardLost rows;
  /// re-raising the signal is the binary's decision (examples/lot_study
  /// does), never the library's.
  int interrupted_signal = 0;
  double wall_ms = 0.0;  ///< end-to-end runner wall time (parent clock)

  /// Detection-probability curve with Wilson confidence bounds:
  /// npe,temperature_c,pre_wear_cycles,dies,failed,detected,p_detect,
  /// ci_lo,ci_hi. Cells with zero dies print nan columns (explicitly — the
  /// interval helpers are only called when counts allow them). Deterministic
  /// and byte-identical across shard x thread splits.
  std::string detection_csv(double z = 1.959963984540054) const;

  /// Raw and voted BER curve with normal-approximation confidence bounds
  /// on the mean:
  /// npe,temperature_c,pre_wear_cycles,kind,dies_ok,bits_per_die,errors,
  /// mean_ber,ci_lo,ci_hi. Cells with fewer than two completed dies print
  /// nan bounds. Same byte-identity contract as detection_csv.
  std::string ber_csv(double z = 1.959963984540054) const;

  /// Fold the exact-integer slice into `reg` under `<prefix>`: per-cell
  /// counters (`<prefix>.npe40000.70C_w0.detected`, ...) plus lot totals.
  /// Shard bookkeeping (shards_used/shards_lost) and wall stats are
  /// excluded — those may legitimately differ across splits, the folded
  /// counters must not (docs/REPRODUCIBILITY.md §9).
  void fold_into(obs::MetricsRegistry& reg, const std::string& prefix) const;

  /// One-paragraph human summary (dies, shards, detection totals, wall).
  void print_summary(std::ostream& os) const;
};

/// Run the lot study described by `cfg`.
///
/// Shard workers are forked before any thread is created; each runs its
/// contiguous die range through fleet::run_dies and streams its
/// accumulators back over a pipe (binary, CRC-framed). The parent folds
/// shard results in ascending shard order, so the fold is deterministic. A
/// worker that dies (crash, nonzero exit, truncated/corrupt frame) poisons
/// nothing: its whole range is recorded as FailureReason::kShardLost rows
/// and per-cell `failed` counts, and the study completes.
///
/// Throws std::invalid_argument on an empty lot / empty grid.
LotResult run_lot(const LotConfig& cfg, const LotOptions& opts = {});

}  // namespace flashmark::lot
