#include "lot/lot.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/metrics.hpp"
#include "lot/lot_internal.hpp"
#include "obs/metrics.hpp"

namespace flashmark::lot {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Deterministic shortest-round-trip-ish rendering for CSV cells. %.10g is
/// enough to distinguish every value these curves can take and renders the
/// same bytes for the same double on every fold order (the values
/// themselves are bit-identical by the integer-sum construction).
std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

WatermarkSpec spec_for(const LotConfig& cfg, std::uint64_t die,
                       std::uint32_t npe) {
  WatermarkSpec spec;
  spec.fields = cfg.fields_for(die);
  spec.key = cfg.key;
  spec.n_replicas = cfg.n_replicas;
  spec.npe = npe;
  // Batched wear: the lot flow imprints each die in one kernel pass — the
  // per-cycle loop would make a 10^5-die study take days, and the two
  // strategies are byte-identical by the kernel contract.
  spec.strategy = ImprintStrategy::kBatchWear;
  return spec;
}

void validate(const LotConfig& cfg) {
  if (cfg.n_dies == 0) throw std::invalid_argument("run_lot: empty lot");
  if (cfg.npe_points.empty())
    throw std::invalid_argument("run_lot: no npe points");
  if (cfg.conditions.empty())
    throw std::invalid_argument("run_lot: no conditions");
  if (cfg.segment >= cfg.device.geometry.n_main_segments())
    throw std::invalid_argument("run_lot: segment out of range");
}

}  // namespace

std::string LotCondition::label() const {
  std::string s = fmt_g(temperature_c);
  s += "C_w";
  s += fmt_g(pre_wear_cycles);
  return s;
}

WatermarkFields LotConfig::fields_for(std::uint64_t die) const {
  WatermarkFields f;
  f.manufacturer_id = 0x0F1A;
  f.die_id = static_cast<std::uint32_t>(die);
  f.speed_grade = 4;
  f.date_code = static_cast<std::uint16_t>((26u << 6) | 32u);  // 2026-W32
  return f;
}

std::size_t LotConfig::cell_of(std::uint64_t die) const {
  const std::size_t point = die % npe_points.size();
  const std::size_t cond = (die / npe_points.size()) % conditions.size();
  return point * conditions.size() + cond;
}

void LotCellAccum::merge(const LotCellAccum& other) {
  if (point_idx != other.point_idx || cond_idx != other.cond_idx)
    throw std::invalid_argument("LotCellAccum::merge: cell identity mismatch");
  auto merge_bits = [](std::uint64_t& mine, std::uint64_t theirs) {
    // A shard that completed no die in this cell (or a synthesized lost
    // range) reports width 0; widths must agree whenever both sides saw
    // completed dies.
    if (mine != 0 && theirs != 0 && mine != theirs)
      throw std::invalid_argument("LotCellAccum::merge: bit-width mismatch");
    if (mine == 0) mine = theirs;
  };
  merge_bits(raw_bits_per_die, other.raw_bits_per_die);
  merge_bits(vote_bits_per_die, other.vote_bits_per_die);
  n += other.n;
  detected += other.detected;
  failed += other.failed;
  raw_err += other.raw_err;
  raw_err_sq += other.raw_err_sq;
  vote_err += other.vote_err;
  vote_err_sq += other.vote_err_sq;
}

namespace internal {

std::vector<LotCellAccum> make_cell_grid(const LotConfig& cfg) {
  const WatermarkSpec probe = spec_for(cfg, 0, cfg.npe_points[0]);
  const std::uint64_t raw_bits =
      cfg.device.geometry.segment_cells(cfg.segment);
  const std::uint64_t vote_bits = probe.replica_bits();
  std::vector<LotCellAccum> cells(cfg.n_cells());
  for (std::size_t p = 0; p < cfg.npe_points.size(); ++p)
    for (std::size_t c = 0; c < cfg.conditions.size(); ++c) {
      LotCellAccum& cell = cells[p * cfg.conditions.size() + c];
      cell.point_idx = static_cast<std::uint32_t>(p);
      cell.cond_idx = static_cast<std::uint32_t>(c);
      cell.raw_bits_per_die = raw_bits;
      cell.vote_bits_per_die = vote_bits;
    }
  return cells;
}

void shard_range(std::uint64_t n_dies, unsigned slots, unsigned s,
                 std::uint64_t* begin, std::uint64_t* end) {
  const std::uint64_t base = n_dies / slots;
  const std::uint64_t rem = n_dies % slots;
  *begin = s * base + std::min<std::uint64_t>(s, rem);
  *end = *begin + base + (s < rem ? 1 : 0);
}

ShardOutcome run_shard_range(const LotConfig& cfg, std::uint64_t begin,
                             std::uint64_t end, const LotOptions& opts,
                             bool allow_crash_hook) {
  ShardOutcome out;
  out.cells = make_cell_grid(cfg);
  const std::size_t n_local = static_cast<std::size_t>(end - begin);

  // Per-die outcomes land in die-indexed slots (never shared accumulators)
  // so the fold below is a sequential pass — thread count cannot reorder it.
  struct DieRes {
    std::uint32_t raw_err = 0;
    std::uint32_t vote_err = 0;
    std::uint8_t detected = 0;
  };
  std::vector<DieRes> res(n_local);

  const std::size_t P = cfg.npe_points.size();
  const std::size_t C = cfg.conditions.size();
  const Addr addr = cfg.device.geometry.segment_base(cfg.segment);
  const std::size_t seg_cells = cfg.device.geometry.segment_cells(cfg.segment);

  fleet::FleetOptions fo;
  fo.threads = opts.threads;
  fleet::FleetReport report = fleet::run_dies(
      n_local,
      [&](std::size_t i, fleet::DieCounters& counters) {
        const std::uint64_t die = begin + i;
        if (allow_crash_hook && die == opts.crash_at_die) _exit(3);
        const std::uint32_t npe = cfg.npe_points[die % P];
        const LotCondition& cond = cfg.conditions[(die / P) % C];

        Device dev(cfg.device, fleet::derive_die_seed(cfg.master_seed, die));
        dev.array().set_temperature_c(cond.temperature_c);
        FlashHal& hal = dev.hal();
        if (cond.pre_wear_cycles > 0.0)
          hal.wear_segment(addr, cond.pre_wear_cycles, nullptr);

        const WatermarkSpec spec = spec_for(cfg, die, npe);
        const EncodedWatermark enc = encode_watermark(spec, seg_cells);
        ImprintOptions io;
        io.npe = npe;
        io.strategy = ImprintStrategy::kBatchWear;
        io.accelerated = spec.accelerated;
        imprint_flashmark(hal, addr, enc.segment_pattern, io);

        ExtractOptions eo;
        eo.t_pew = cfg.t_pew;
        const ExtractResult ext = extract_flashmark(hal, addr, eo);

        VerifyOptions vo;
        vo.t_pew = cfg.t_pew;
        vo.n_replicas = cfg.n_replicas;
        vo.key = cfg.key;
        const VerifyReport vr = judge_extracted_bits(ext.bits, vo);

        DieRes& r = res[i];
        r.detected = vr.verdict == Verdict::kGenuine && vr.fields &&
                     vr.fields->die_id == static_cast<std::uint32_t>(die);
        r.raw_err = static_cast<std::uint32_t>(
            compare_bits(enc.segment_pattern, ext.bits).errors);
        const BitVec voted =
            decode_replicas(ext.bits, enc.layout, VoteMode::kMajority);
        r.vote_err =
            static_cast<std::uint32_t>(compare_bits(enc.replica, voted).errors);

        counters.absorb(dev);
        counters.absorb_recovery(vr);
      },
      fo);

  for (std::size_t i = 0; i < n_local; ++i) {
    fleet::DieCounters& row = report.dies[i];
    row.die = static_cast<std::size_t>(begin + i);  // shard-absolute id
    out.die_wall_ms.add(row.wall_ms);
    LotCellAccum& cell = out.cells[cfg.cell_of(begin + i)];
    ++cell.n;
    if (row.failed) {
      ++cell.failed;
      continue;
    }
    const DieRes& r = res[i];
    cell.detected += r.detected;
    cell.raw_err += r.raw_err;
    cell.raw_err_sq +=
        static_cast<std::uint64_t>(r.raw_err) * r.raw_err;
    cell.vote_err += r.vote_err;
    cell.vote_err_sq +=
        static_cast<std::uint64_t>(r.vote_err) * r.vote_err;
  }

  out.fleet.threads_used = report.threads_used;
  out.fleet.wall_ms = report.wall_ms;
  out.fleet.cpu_ms = report.cpu_ms;
  if (opts.keep_all_rows) {
    out.fleet.dies = std::move(report.dies);
  } else {
    for (auto& row : report.dies)
      if (row.health != fleet::DieHealth::kClean)
        out.fleet.dies.push_back(std::move(row));
  }
  return out;
}

}  // namespace internal

std::string LotResult::detection_csv(double z) const {
  std::ostringstream os;
  os << "npe,temperature_c,pre_wear_cycles,dies,failed,detected,p_detect,"
        "ci_lo,ci_hi\n";
  for (const auto& cell : cells) {
    const LotCondition& cond = config.conditions[cell.cond_idx];
    os << config.npe_points[cell.point_idx] << ','
       << fmt_g(cond.temperature_c) << ',' << fmt_g(cond.pre_wear_cycles)
       << ',' << cell.n << ',' << cell.failed << ',' << cell.detected << ',';
    if (cell.n == 0) {
      // An interval over zero trials does not exist; print the absence
      // explicitly instead of calling wilson_interval (which would throw).
      os << "nan,nan,nan\n";
      continue;
    }
    const WilsonInterval w = wilson_interval(cell.detected, cell.n, z);
    os << fmt_g(w.p_hat) << ',' << fmt_g(w.lo) << ',' << fmt_g(w.hi) << '\n';
  }
  return os.str();
}

std::string LotResult::ber_csv(double z) const {
  std::ostringstream os;
  os << "npe,temperature_c,pre_wear_cycles,kind,dies_ok,bits_per_die,errors,"
        "mean_ber,ci_lo,ci_hi\n";
  for (const auto& cell : cells) {
    const LotCondition& cond = config.conditions[cell.cond_idx];
    const std::uint64_t n_ok = cell.n - cell.failed;
    const auto emit = [&](const char* kind, std::uint64_t bits,
                          std::uint64_t err, std::uint64_t err_sq) {
      os << config.npe_points[cell.point_idx] << ','
         << fmt_g(cond.temperature_c) << ',' << fmt_g(cond.pre_wear_cycles)
         << ',' << kind << ',' << n_ok << ',' << bits << ',' << err << ',';
      if (n_ok == 0 || bits == 0) {
        os << "nan,nan,nan\n";
        return;
      }
      const double nb = static_cast<double>(n_ok) * static_cast<double>(bits);
      const double mean_ber = static_cast<double>(err) / nb;
      os << fmt_g(mean_ber) << ',';
      if (n_ok < 2) {
        // variance_from_counts throws below two samples by design; the
        // undefined interval is printed as nan, never as a silent zero.
        os << "nan,nan\n";
        return;
      }
      const double sd = std::sqrt(variance_from_counts(err, err_sq, n_ok));
      const double half =
          z * sd / std::sqrt(static_cast<double>(n_ok)) /
          static_cast<double>(bits);
      os << fmt_g(std::max(0.0, mean_ber - half)) << ','
         << fmt_g(std::min(1.0, mean_ber + half)) << '\n';
    };
    emit("raw", cell.raw_bits_per_die, cell.raw_err, cell.raw_err_sq);
    emit("voted", cell.vote_bits_per_die, cell.vote_err, cell.vote_err_sq);
  }
  return os.str();
}

void LotResult::fold_into(obs::MetricsRegistry& reg,
                          const std::string& prefix) const {
  std::uint64_t dies = 0, detected = 0, failed = 0;
  for (const auto& cell : cells) {
    const std::string base = prefix + ".npe" +
                             std::to_string(config.npe_points[cell.point_idx]) +
                             '.' + config.conditions[cell.cond_idx].label();
    reg.counter(base + ".dies").add(cell.n);
    reg.counter(base + ".detected").add(cell.detected);
    reg.counter(base + ".failed").add(cell.failed);
    reg.counter(base + ".raw_err").add(cell.raw_err);
    reg.counter(base + ".raw_err_sq").add(cell.raw_err_sq);
    reg.counter(base + ".vote_err").add(cell.vote_err);
    reg.counter(base + ".vote_err_sq").add(cell.vote_err_sq);
    dies += cell.n;
    detected += cell.detected;
    failed += cell.failed;
  }
  reg.counter(prefix + ".dies").add(dies);
  reg.counter(prefix + ".detected").add(detected);
  reg.counter(prefix + ".failed").add(failed);
}

void LotResult::print_summary(std::ostream& os) const {
  std::uint64_t dies = 0, detected = 0, failed = 0;
  for (const auto& cell : cells) {
    dies += cell.n;
    detected += cell.detected;
    failed += cell.failed;
  }
  os << "[lot] " << dies << " dies over " << cells.size() << " cells, "
     << shards_used << " shard(s)";
  if (shards_lost) os << " (" << shards_lost << " LOST)";
  os << ": " << detected << " detected";
  if (failed) os << ", " << failed << " failed";
  os << ", wall " << wall_ms << " ms (cpu " << fleet.cpu_ms << " ms)";
  if (die_wall_ms.count())
    os << ", die wall mean " << die_wall_ms.mean() << " ms";
  os << "\n";
}

LotResult run_lot(const LotConfig& cfg, const LotOptions& opts) {
  validate(cfg);
  const auto t0 = std::chrono::steady_clock::now();

  LotResult result;
  result.config = cfg;
  result.cells = internal::make_cell_grid(cfg);

  const unsigned slots = std::max(
      1u, static_cast<unsigned>(std::min<std::uint64_t>(
              opts.shards ? opts.shards : 1, cfg.n_dies)));
  result.shards_used = slots;

  std::vector<std::optional<internal::ShardOutcome>> outcomes;
  if (slots == 1) {
    outcomes.push_back(internal::run_shard_range(cfg, 0, cfg.n_dies, opts));
  } else {
    outcomes =
        internal::run_sharded(cfg, opts, slots, &result.interrupted_signal);
  }

  for (unsigned s = 0; s < slots; ++s) {
    std::uint64_t begin = 0, end = 0;
    internal::shard_range(cfg.n_dies, slots, s, &begin, &end);
    if (outcomes[s]) {
      internal::ShardOutcome& out = *outcomes[s];
      for (std::size_t i = 0; i < result.cells.size(); ++i)
        result.cells[i].merge(out.cells[i]);
      result.fleet.merge(out.fleet);
      result.die_wall_ms.merge(out.die_wall_ms);
      continue;
    }
    // Lost shard: the range's dies are accounted as failed rows with a
    // structured reason instead of silently shrinking the denominator.
    ++result.shards_lost;
    fleet::FleetReport lost;
    lost.dies.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t die = begin; die < end; ++die) {
      LotCellAccum& cell = result.cells[cfg.cell_of(die)];
      ++cell.n;
      ++cell.failed;
      fleet::DieCounters row;
      row.die = static_cast<std::size_t>(die);
      row.failed = true;
      row.health = fleet::DieHealth::kFailed;
      row.reason = fleet::FailureReason::kShardLost;
      row.error = "shard worker lost before reporting";
      lost.dies.push_back(std::move(row));
    }
    result.fleet.merge(lost);
  }

  result.wall_ms = ms_since(t0);
  if (obs::metrics_enabled())
    result.fold_into(obs::MetricsRegistry::global(), "lot");
  return result;
}

}  // namespace flashmark::lot
