// Shard transport of the lot runner: fork workers, one contiguous die range
// each, collect their serialized outcomes over pipes.
//
// The frame is little-endian, starts with "FMLT" + a version word, echoes
// the shard's [begin, end) range (so a mixed-up pipe cannot be folded into
// the wrong slot), and ends with a CRC-32 over everything before it. Any
// structural defect — short read, bad magic, CRC mismatch, out-of-range
// enum or die id — classifies the shard as lost; the runner then accounts
// the whole range as FailureReason::kShardLost rather than trusting a
// half-written frame.
//
// Workers are forked BEFORE any thread exists in the parent (run_lot forks
// first, each child then builds its own fleet thread pool), which keeps the
// fork/thread combination legal under TSan and ASan.
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "lot/lot_internal.hpp"
#include "util/crc.hpp"

namespace flashmark::lot::internal {
namespace {

constexpr std::uint32_t kMagic = 0x544C4D46;  // "FMLT" little-endian
constexpr std::uint32_t kVersion = 1;

// --- little-endian append/read helpers -----------------------------------

void put_bytes(std::string& s, const void* p, std::size_t n) {
  s.append(static_cast<const char*>(p), n);
}

void put_u8(std::string& s, std::uint8_t v) { put_bytes(s, &v, 1); }

void put_u32(std::string& s, std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  put_bytes(s, b, 4);
}

void put_u64(std::string& s, std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  put_bytes(s, b, 8);
}

void put_f64(std::string& s, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(s, bits);
}

/// Bounds-checked sequential reader over a frame.
class Reader {
 public:
  explicit Reader(const std::string& s) : s_(s) {}

  bool u8(std::uint8_t* v) {
    if (pos_ + 1 > s_.size()) return false;
    *v = static_cast<std::uint8_t>(s_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > s_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i)
      *v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(s_[pos_ + i]))
            << (8 * i);
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (pos_ + 8 > s_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i)
      *v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(s_[pos_ + i]))
            << (8 * i);
    pos_ += 8;
    return true;
  }
  bool f64(double* v) {
    std::uint64_t bits;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }
  bool str(std::string* v, std::size_t max_len) {
    std::uint32_t len;
    if (!u32(&len) || len > max_len || pos_ + len > s_.size()) return false;
    v->assign(s_, pos_, len);
    pos_ += len;
    return true;
  }
  std::size_t pos() const { return pos_; }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// --- signal containment ---------------------------------------------------
// run_sharded installs flag-only SIGTERM/SIGINT handlers (no SA_RESTART, so
// the blocking drain read returns EINTR) for the duration of the run. On the
// first observed signal the parent forwards it to the workers' process
// group, drains what the pipes still hold, reaps with a bounded timeout
// (SIGKILL stragglers), and returns — the killed ranges come back as
// std::nullopt, which run_lot folds through FailureReason::kShardLost. A
// Ctrl-C'd 10^6-die audit therefore dies cleanly in bounded time, leaves no
// orphans, and its partial result still accounts every die.

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

std::string read_all(int fd) {
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) {
        if (g_signal != 0) return out;  // interrupted: caller forwards + reaps
        continue;
      }
      return out;
    }
    if (n == 0) return out;
    out.append(buf, static_cast<std::size_t>(n));
  }
}

/// Reap `pid` waiting at most `timeout_ms`, then SIGKILL and wait for real.
void reap_bounded(pid_t pid, int* status, int timeout_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    const pid_t r = ::waitpid(pid, status, WNOHANG);
    if (r == pid) return;
    if (r < 0 && errno != EINTR) return;  // ECHILD: already reaped
    const double elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (elapsed > timeout_ms) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::kill(pid, SIGKILL);
  pid_t r;
  do {
    r = ::waitpid(pid, status, 0);
  } while (r < 0 && errno == EINTR);
}

/// RAII for the parent's temporary signal disposition.
class ScopedSignalFlags {
 public:
  ScopedSignalFlags() {
    g_signal = 0;
    struct sigaction sa{};
    sa.sa_handler = on_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately no SA_RESTART: reads must wake up
    ::sigaction(SIGTERM, &sa, &old_term_);
    ::sigaction(SIGINT, &sa, &old_int_);
  }
  ~ScopedSignalFlags() {
    ::sigaction(SIGTERM, &old_term_, nullptr);
    ::sigaction(SIGINT, &old_int_, nullptr);
  }

 private:
  struct sigaction old_term_{}, old_int_{};
};

}  // namespace

std::string serialize_shard(const ShardOutcome& out, std::uint64_t begin,
                            std::uint64_t end) {
  std::string s;
  put_u32(s, kMagic);
  put_u32(s, kVersion);
  put_u64(s, begin);
  put_u64(s, end);

  put_f64(s, out.fleet.wall_ms);
  put_f64(s, out.fleet.cpu_ms);
  put_u32(s, out.fleet.threads_used);

  put_u64(s, out.cells.size());
  for (const auto& cell : out.cells) {
    put_u32(s, cell.point_idx);
    put_u32(s, cell.cond_idx);
    put_u64(s, cell.n);
    put_u64(s, cell.detected);
    put_u64(s, cell.failed);
    put_u64(s, cell.raw_err);
    put_u64(s, cell.raw_err_sq);
    put_u64(s, cell.vote_err);
    put_u64(s, cell.vote_err_sq);
    put_u64(s, cell.raw_bits_per_die);
    put_u64(s, cell.vote_bits_per_die);
  }

  put_u64(s, out.die_wall_ms.count());
  put_f64(s, out.die_wall_ms.mean());
  put_f64(s, out.die_wall_ms.m2());
  put_f64(s, out.die_wall_ms.min());
  put_f64(s, out.die_wall_ms.max());

  put_u64(s, out.fleet.dies.size());
  for (const auto& row : out.fleet.dies) {
    put_u64(s, row.die);
    put_f64(s, row.wall_ms);
    put_f64(s, row.pe_cycles);
    put_u64(s, static_cast<std::uint64_t>(row.sim_time.as_ns()));
    put_u64(s, row.erase_ops);
    put_u64(s, row.program_ops);
    put_u64(s, row.read_ops);
    put_u64(s, row.faults_injected);
    put_u64(s, row.retries);
    put_u64(s, row.ecc_corrected);
    put_u8(s, static_cast<std::uint8_t>(row.health));
    put_u8(s, static_cast<std::uint8_t>(row.reason));
    put_u8(s, row.failed ? 1 : 0);
    put_u32(s, static_cast<std::uint32_t>(row.error.size()));
    put_bytes(s, row.error.data(), row.error.size());
  }

  put_u32(s, crc32_ieee(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size()));
  return s;
}

std::optional<ShardOutcome> deserialize_shard(const std::string& bytes,
                                              const LotConfig& cfg,
                                              std::uint64_t begin,
                                              std::uint64_t end) {
  if (bytes.size() < 4 + 4 + 8 + 8 + 4) return std::nullopt;
  const std::size_t body = bytes.size() - 4;
  Reader crc_r(bytes);
  {
    // Validate the trailer first: everything after this point may trust the
    // frame's framing (but still bounds-checks every read).
    std::string tail(bytes, body, 4);
    Reader tr(tail);
    std::uint32_t want = 0;
    if (!tr.u32(&want)) return std::nullopt;
    const std::uint32_t got = crc32_ieee(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), body);
    if (want != got) return std::nullopt;
  }

  Reader r(bytes);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t b = 0, e = 0;
  if (!r.u32(&magic) || magic != kMagic) return std::nullopt;
  if (!r.u32(&version) || version != kVersion) return std::nullopt;
  if (!r.u64(&b) || !r.u64(&e) || b != begin || e != end) return std::nullopt;

  ShardOutcome out;
  std::uint32_t threads = 0;
  if (!r.f64(&out.fleet.wall_ms) || !r.f64(&out.fleet.cpu_ms) ||
      !r.u32(&threads))
    return std::nullopt;
  out.fleet.threads_used = threads;

  std::uint64_t n_cells = 0;
  if (!r.u64(&n_cells) || n_cells != cfg.n_cells()) return std::nullopt;
  out.cells.resize(static_cast<std::size_t>(n_cells));
  const std::uint64_t range = end - begin;
  std::uint64_t cell_dies = 0;
  for (std::size_t i = 0; i < out.cells.size(); ++i) {
    LotCellAccum& c = out.cells[i];
    if (!r.u32(&c.point_idx) || !r.u32(&c.cond_idx) || !r.u64(&c.n) ||
        !r.u64(&c.detected) || !r.u64(&c.failed) || !r.u64(&c.raw_err) ||
        !r.u64(&c.raw_err_sq) || !r.u64(&c.vote_err) ||
        !r.u64(&c.vote_err_sq) || !r.u64(&c.raw_bits_per_die) ||
        !r.u64(&c.vote_bits_per_die))
      return std::nullopt;
    // Identity must match the grid slot, and the counts must be internally
    // consistent with the shard's range.
    if (c.point_idx != i / cfg.conditions.size() ||
        c.cond_idx != i % cfg.conditions.size())
      return std::nullopt;
    if (c.detected + c.failed > c.n || c.n > range) return std::nullopt;
    cell_dies += c.n;
  }
  if (cell_dies != range) return std::nullopt;

  std::uint64_t wn = 0;
  double wmean = 0, wm2 = 0, wmin = 0, wmax = 0;
  if (!r.u64(&wn) || !r.f64(&wmean) || !r.f64(&wm2) || !r.f64(&wmin) ||
      !r.f64(&wmax))
    return std::nullopt;
  try {
    out.die_wall_ms = RunningStats::from_parts(
        static_cast<std::size_t>(wn), wmean, wm2, wmin, wmax);
  } catch (const std::exception&) {
    return std::nullopt;  // NaN/negative-m2 parts: hostile or corrupt frame
  }

  std::uint64_t n_rows = 0;
  if (!r.u64(&n_rows) || n_rows > range) return std::nullopt;
  out.fleet.dies.resize(static_cast<std::size_t>(n_rows));
  for (auto& row : out.fleet.dies) {
    std::uint64_t die = 0, sim_ns = 0;
    std::uint8_t health = 0, reason = 0, failed = 0;
    if (!r.u64(&die) || !r.f64(&row.wall_ms) || !r.f64(&row.pe_cycles) ||
        !r.u64(&sim_ns) || !r.u64(&row.erase_ops) ||
        !r.u64(&row.program_ops) || !r.u64(&row.read_ops) ||
        !r.u64(&row.faults_injected) || !r.u64(&row.retries) ||
        !r.u64(&row.ecc_corrected) || !r.u8(&health) || !r.u8(&reason) ||
        !r.u8(&failed) || !r.str(&row.error, 4096))
      return std::nullopt;
    if (die < begin || die >= end) return std::nullopt;
    if (health > static_cast<std::uint8_t>(fleet::DieHealth::kFailed) ||
        reason > static_cast<std::uint8_t>(fleet::FailureReason::kShardLost))
      return std::nullopt;
    row.die = static_cast<std::size_t>(die);
    row.sim_time = SimTime::ns(static_cast<std::int64_t>(sim_ns));
    row.health = static_cast<fleet::DieHealth>(health);
    row.reason = static_cast<fleet::FailureReason>(reason);
    row.failed = failed != 0;
  }

  if (r.pos() != body) return std::nullopt;  // trailing garbage
  return out;
}

std::vector<std::optional<ShardOutcome>> run_sharded(const LotConfig& cfg,
                                                     const LotOptions& opts,
                                                     unsigned slots,
                                                     int* interrupted_signal) {
  struct Slot {
    pid_t pid = -1;
    int fd = -1;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };
  std::vector<Slot> workers(slots);

  // Flag SIGTERM/SIGINT for the duration of the run (restored on return).
  ScopedSignalFlags signals;
  pid_t pgid = 0;  // the workers' own process group (first child's pid)

  for (unsigned s = 0; s < slots; ++s) {
    Slot& w = workers[s];
    shard_range(cfg.n_dies, slots, s, &w.begin, &w.end);
    if (g_signal != 0) break;  // interrupted mid-spawn: stop forking
    int fds[2];
    if (::pipe(fds) != 0)
      throw std::runtime_error("run_lot: pipe() failed");
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw std::runtime_error("run_lot: fork() failed");
    }
    if (pid == 0) {
      // Worker: default signal disposition (the parent decides policy; a
      // forwarded SIGTERM just terminates the worker) and membership in the
      // workers' process group, so one kill(-pgid) reaches every shard
      // without touching the parent or its process group.
      ::signal(SIGTERM, SIG_DFL);
      ::signal(SIGINT, SIG_DFL);
      ::setpgid(0, pgid);  // pgid == 0 for the first child: new group
      ::close(fds[0]);
      for (unsigned p = 0; p < s; ++p)
        if (workers[p].fd >= 0) ::close(workers[p].fd);
      int code = 0;
      try {
        const ShardOutcome out =
            run_shard_range(cfg, w.begin, w.end, opts,
                            /*allow_crash_hook=*/true);
        if (!write_all(fds[1], serialize_shard(out, w.begin, w.end)))
          code = 5;
      } catch (const std::exception&) {
        code = 4;
      }
      ::close(fds[1]);
      ::_exit(code);
    }
    ::close(fds[1]);
    w.pid = pid;
    w.fd = fds[0];
    if (pgid == 0) pgid = pid;
    // Mirror the child's setpgid (whichever runs first wins; EACCES/ESRCH
    // just means the child got there first or already exited).
    ::setpgid(pid, pgid);
  }

  bool forwarded = false;
  auto forward_signal = [&] {
    if (g_signal != 0 && !forwarded && pgid != 0) {
      ::kill(-pgid, g_signal);
      forwarded = true;
    }
  };

  // Drain pipes in shard order: the fold order — and with it every merged
  // floating-point diagnostic — is deterministic regardless of which worker
  // finishes first. (The contractual curves do not even need this: they are
  // integer sums.) On interruption the drain keeps going — killed workers
  // close their pipes, reads return fast, and every already-complete frame
  // is still folded — but reaping switches to the bounded path.
  std::vector<std::optional<ShardOutcome>> outcomes(slots);
  for (unsigned s = 0; s < slots; ++s) {
    Slot& w = workers[s];
    if (w.pid < 0) continue;  // never forked (interrupted mid-spawn)
    forward_signal();
    std::string frame = read_all(w.fd);
    forward_signal();
    if (forwarded) frame += read_all(w.fd);  // post-kill residue up to EOF
    ::close(w.fd);
    int status = 0;
    if (forwarded) {
      reap_bounded(w.pid, &status, /*timeout_ms=*/2'000);
    } else {
      pid_t r;
      for (;;) {
        r = ::waitpid(w.pid, &status, 0);
        if (r >= 0 || errno != EINTR) break;
        forward_signal();  // signal landed while blocked in waitpid
      }
      if (r != w.pid) continue;  // shard stays lost
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0)
      outcomes[s] = deserialize_shard(frame, cfg, w.begin, w.end);
  }
  if (interrupted_signal != nullptr)
    *interrupted_signal = static_cast<int>(g_signal);
  return outcomes;
}

}  // namespace flashmark::lot::internal
