// Internal seam between the lot runner (lot.cpp) and the shard transport
// (shard.cpp). Not installed API — tests include it to exercise the wire
// format without forking.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lot/lot.hpp"

namespace flashmark::lot::internal {

/// Everything one shard produces for its die range [begin, end).
struct ShardOutcome {
  std::vector<LotCellAccum> cells;  ///< full grid (cells the range never
                                    ///< touched stay zero)
  fleet::FleetReport fleet;         ///< rows carry absolute die ids;
                                    ///< filtered unless keep_all_rows
  RunningStats die_wall_ms;         ///< per-die job wall times (all rows)
};

/// Run dies [begin, end) of the lot in this process (fleet thread pool,
/// opts.threads workers). `allow_crash_hook` arms LotOptions::crash_at_die —
/// only the forked worker path sets it, so the hook can never take down the
/// parent.
ShardOutcome run_shard_range(const LotConfig& cfg, std::uint64_t begin,
                             std::uint64_t end, const LotOptions& opts,
                             bool allow_crash_hook = false);

/// Serialize a shard outcome into the pipe frame: little-endian fields,
/// "FMLT" magic, version, [begin, end) echo, cell counters, wall-stat
/// parts, counter rows, CRC-32 trailer over everything before it.
std::string serialize_shard(const ShardOutcome& out, std::uint64_t begin,
                            std::uint64_t end);

/// Parse and validate a frame produced by serialize_shard. Returns
/// std::nullopt on any structural problem (bad magic/version/CRC, range
/// mismatch, truncation, out-of-range enum or die id, cell-grid shape
/// mismatch) — the caller treats that shard as lost, exactly like a dead
/// worker.
std::optional<ShardOutcome> deserialize_shard(const std::string& bytes,
                                              const LotConfig& cfg,
                                              std::uint64_t begin,
                                              std::uint64_t end);

/// Fresh full grid for `cfg` with cell identities (and the constant
/// bits-per-die widths) filled in, all counts zero.
std::vector<LotCellAccum> make_cell_grid(const LotConfig& cfg);

/// Fork `slots` workers covering the contiguous partition of
/// [0, cfg.n_dies) and collect their outcomes in shard order. Slot i is
/// std::nullopt when worker i was lost (died, nonzero exit, bad frame).
///
/// SIGTERM/SIGINT are flagged (not fatal) for the duration of the call: the
/// first signal observed is forwarded to the workers' process group, the
/// stragglers are reaped with a bounded timeout (SIGKILL after ~2 s), and
/// the interrupted ranges come back as std::nullopt — the caller folds them
/// through FailureReason::kShardLost. When `interrupted_signal` is non-null
/// it receives the signal number (0 = ran to completion); re-raising it is
/// the *binary*'s decision, never the library's.
std::vector<std::optional<ShardOutcome>> run_sharded(
    const LotConfig& cfg, const LotOptions& opts, unsigned slots,
    int* interrupted_signal = nullptr);

/// Contiguous die range of shard `s` of `slots` over `n_dies` dies:
/// the first n_dies % slots shards get one extra die.
void shard_range(std::uint64_t n_dies, unsigned slots, unsigned s,
                 std::uint64_t* begin, std::uint64_t* end);

}  // namespace flashmark::lot::internal
