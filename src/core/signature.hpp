// Keyed watermark signatures (paper §V: "in addition to watermarks we may
// imprint watermark signatures that will ensure that concurrent tampering by
// attackers cannot go undetected").
//
// The manufacturer signs the packed payload with a secret SipHash-2-4 key
// and imprints payload || tag. A counterfeiter can physically only stress
// additional cells (1 -> 0), and cannot compute a valid tag for any modified
// payload without the key — so every physical tamper is caught either by the
// dual-rail check or by the signature.
#pragma once

#include <cstdint>

#include "util/bitvec.hpp"
#include "util/siphash.hpp"

namespace flashmark {

inline constexpr std::size_t kSignatureBits = 64;

/// 64-bit tag over the payload bits (serialized LSB-first to bytes, with the
/// bit length mixed in so truncation is detected).
std::uint64_t watermark_tag(const SipHashKey& key, const BitVec& payload);

/// payload || tag.
BitVec sign_watermark(const SipHashKey& key, const BitVec& payload);

struct SignedWatermark {
  BitVec payload;
  bool signature_ok = false;
};

/// Split a signed stream and verify the tag. `payload_bits` = size of the
/// original payload; signed stream must be payload_bits + 64 long.
SignedWatermark verify_signed_watermark(const SipHashKey& key,
                                        const BitVec& signed_bits,
                                        std::size_t payload_bits);

}  // namespace flashmark
