// Hamming(15,11) error correction — the paper's suggested alternative to
// plain replication ("An alternative to watermark data replication is to use
// error correction techniques", §V).
//
// The payload is split into 11-bit blocks, each encoded into a 15-bit
// codeword that corrects any single bit error. The ablation bench compares
// its residual error rate and flash footprint against 3/5/7-way replication.
#pragma once

#include <cstddef>

#include "util/bitvec.hpp"

namespace flashmark {

inline constexpr std::size_t kHammingDataBits = 11;
inline constexpr std::size_t kHammingCodeBits = 15;

/// Encode one 11-bit block into a 15-bit codeword (positions 1..15, parity
/// at the powers of two; returned LSB-first).
BitVec hamming15_encode_block(const BitVec& data11);

struct HammingBlockDecode {
  BitVec data;        ///< 11 decoded bits
  bool corrected = false;  ///< a single-bit error was fixed
};

/// Decode one 15-bit codeword, correcting up to one flipped bit.
HammingBlockDecode hamming15_decode_block(const BitVec& code15);

/// Encode an arbitrary payload: zero-padded to a multiple of 11 bits, each
/// block Hamming-encoded. Output length = ceil(n/11) * 15.
BitVec hamming15_encode(const BitVec& payload);

struct HammingDecode {
  BitVec payload;            ///< decoded bits (includes the pad; trim with
                             ///< original length)
  std::size_t corrected_blocks = 0;
};

/// Decode a stream produced by hamming15_encode; `payload_bits` trims the
/// zero padding.
HammingDecode hamming15_decode(const BitVec& code, std::size_t payload_bits);

/// Encoded size for a payload of n bits.
std::size_t hamming15_encoded_bits(std::size_t payload_bits);

}  // namespace flashmark
