#include "core/replicate.hpp"

#include <algorithm>
#include <stdexcept>

namespace flashmark {

BitVec replicate_pattern(const BitVec& payload, std::size_t n_replicas,
                         std::size_t segment_cells) {
  if (payload.empty() || n_replicas == 0)
    throw std::invalid_argument("replicate_pattern: empty payload or R == 0");
  if (payload.size() * n_replicas > segment_cells)
    throw std::invalid_argument(
        "replicate_pattern: replicas do not fit in the segment");
  BitVec pattern(segment_cells, true);  // filler stays erased ("good")
  for (std::size_t r = 0; r < n_replicas; ++r)
    for (std::size_t i = 0; i < payload.size(); ++i)
      pattern.set(r * payload.size() + i, payload.get(i));
  return pattern;
}

std::vector<BitVec> split_replicas(const BitVec& segment_bits,
                                   const ReplicaLayout& layout) {
  if (layout.payload_bits == 0 || layout.n_replicas == 0)
    throw std::invalid_argument("split_replicas: empty layout");
  if (layout.used_bits() > segment_bits.size())
    throw std::invalid_argument("split_replicas: layout exceeds bitmap");
  std::vector<BitVec> out;
  out.reserve(layout.n_replicas);
  for (std::size_t r = 0; r < layout.n_replicas; ++r)
    out.push_back(
        segment_bits.slice(r * layout.payload_bits, layout.payload_bits));
  return out;
}

BitVec decode_replicas(const BitVec& segment_bits, const ReplicaLayout& layout,
                       VoteMode mode, std::size_t zero_vote_threshold) {
  const auto replicas = split_replicas(segment_bits, layout);
  const std::size_t R = replicas.size();
  std::size_t zt = zero_vote_threshold;
  if (mode == VoteMode::kAsymmetric && zt == 0) zt = std::max<std::size_t>(1, R / 3);

  BitVec decoded(layout.payload_bits);
  for (std::size_t i = 0; i < layout.payload_bits; ++i) {
    std::size_t zeros = 0;
    for (const auto& rep : replicas)
      if (!rep.get(i)) ++zeros;
    bool bit;
    if (mode == VoteMode::kAsymmetric)
      bit = zeros < zt;  // a few confident 0 votes decide for 0
    else
      bit = zeros * 2 < R;  // plain majority (ties -> 0, conservative)
    decoded.set(i, bit);
  }
  return decoded;
}

BitVec soft_decode_dual_rail(const BitVec& segment_bits,
                             const ReplicaLayout& layout) {
  if (layout.payload_bits % 2 != 0)
    throw std::invalid_argument("soft_decode_dual_rail: odd replica length");
  const auto replicas = split_replicas(segment_bits, layout);
  const std::size_t n_payload = layout.payload_bits / 2;
  BitVec out(n_payload);
  for (std::size_t i = 0; i < n_payload; ++i) {
    std::size_t zeros_a = 0;  // rail carrying b
    std::size_t zeros_b = 0;  // rail carrying ~b
    for (const auto& rep : replicas) {
      if (!rep.get(2 * i)) ++zeros_a;
      if (!rep.get(2 * i + 1)) ++zeros_b;
    }
    bool bit;
    if (zeros_a > zeros_b)
      bit = false;  // first rail is the stressed one => b == 0
    else if (zeros_b > zeros_a)
      bit = true;
    else
      bit = zeros_a * 2 < replicas.size();  // tie: majority of rail a
    out.set(i, bit);
  }
  return out;
}

double replica_disagreement(const BitVec& segment_bits,
                            const ReplicaLayout& layout,
                            const BitVec& decoded) {
  if (decoded.size() != layout.payload_bits)
    throw std::invalid_argument("replica_disagreement: decoded size mismatch");
  const auto replicas = split_replicas(segment_bits, layout);
  std::size_t diff = 0;
  for (const auto& rep : replicas)
    diff += BitVec::hamming_distance(rep, decoded);
  return static_cast<double>(diff) /
         static_cast<double>(layout.used_bits());
}

}  // namespace flashmark
