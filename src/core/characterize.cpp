#include "core/characterize.hpp"

#include <stdexcept>

namespace flashmark {

std::vector<CharacterizePoint> characterize_segment(
    FlashHal& hal, Addr addr, const CharacterizeOptions& opts) {
  if (opts.t_step <= SimTime{})
    throw std::invalid_argument("characterize_segment: t_step must be > 0");
  if (opts.t_end < opts.t_start)
    throw std::invalid_argument("characterize_segment: t_end < t_start");

  const auto& g = hal.geometry();
  const std::size_t seg = g.segment_index(addr);
  const std::size_t n_cells = g.segment_cells(seg);
  const Addr base = g.segment_base(seg);
  // One allocation for the whole sweep (was rebuilt per step).
  const std::vector<std::uint16_t> zeros(g.segment_bytes(seg) / g.word_bytes,
                                         0x0000);

  std::vector<CharacterizePoint> curve;
  int settled = 0;
  for (SimTime t = opts.t_start; t <= opts.t_end; t += opts.t_step) {
    hal.erase_segment(addr);         // all cells read as 1s
    hal.program_block(base, zeros);  // all cells read as 0s
    hal.partial_erase_segment(addr, t);
    const SegmentAnalysis a = analyze_segment(hal, addr, opts.n_reads);
    curve.push_back({t, a.cells_0, a.cells_1});
    if (opts.settle_points > 0) {
      settled = (a.cells_1 == n_cells) ? settled + 1 : 0;
      if (settled >= opts.settle_points) break;
    }
  }
  return curve;
}

SimTime full_erase_time(const std::vector<CharacterizePoint>& curve) {
  if (curve.empty())
    throw std::invalid_argument("full_erase_time: empty curve");
  for (const auto& p : curve)
    if (p.cells_0 == 0) return p.t_pe;
  return curve.back().t_pe;
}

SimTime recommend_tpew(FlashHal& hal, Addr fresh_scratch_addr,
                       double margin_factor, SimTime margin_fixed,
                       SimTime resolution) {
  CharacterizeOptions opts;
  opts.t_step = resolution;
  opts.t_end = SimTime::us(200);  // generous for a fresh segment
  opts.settle_points = 3;
  const auto curve = characterize_segment(hal, fresh_scratch_addr, opts);
  const SimTime t_full = full_erase_time(curve);
  return SimTime::from_us(t_full.as_us() * margin_factor) + margin_fixed;
}

}  // namespace flashmark
