// End-to-end Flashmark pipeline: the manufacturer-side imprint flow and the
// system-integrator-side verification flow (paper §IV), combining the codec,
// signature, replication, imprint and extraction layers.
//
// Encoding chain (manufacturer, at die sort):
//   fields --pack+CRC--> 80 b --sign (optional)--> +64 b
//          --dual-rail--> 2x  --replicate R times--> segment pattern
//          --ImprintFlashmark(NPE cycles)--> physical watermark
//
// Verification chain (system integrator, incoming inspection):
//   ExtractFlashmark(tPEW) --replica vote--> dual-rail decode
//   --signature check--> field unpack --> verdict
//
// Verdicts:
//   kGenuine     — decoded cleanly, signature/CRC valid
//   kNoWatermark — no stress contrast in the watermark region: fresh, fully
//                  recycled-and-rebranded, or digitally "forged" chip
//   kTampered    — stress contrast present but dual-rail pairs were driven
//                  to (0,0) or the signature fails: someone stressed extra
//                  cells trying to alter the watermark
//   kUnreadable  — contrast present but too corrupted to decode (wrong
//                  tPEW, insufficient NPE, or severe wear)
#pragma once

#include <optional>

#include "core/codec.hpp"
#include "core/extract.hpp"
#include "core/imprint.hpp"
#include "core/replicate.hpp"
#include "core/signature.hpp"
#include "flash/hal.hpp"
#include "util/siphash.hpp"

namespace flashmark {

struct WatermarkSpec {
  WatermarkFields fields;
  /// Present => payload is signed with this key before dual-rail encoding.
  std::optional<SipHashKey> key;
  std::size_t n_replicas = 7;
  std::uint32_t npe = 60'000;
  ImprintStrategy strategy = ImprintStrategy::kLoop;
  bool accelerated = true;  ///< premature-exit erases during imprint
  /// Hamming(15,11)-protect the signed payload before dual-rail encoding
  /// (same layering as ExtendedSpec::ecc). Costs ~36% more cells per
  /// replica but corrects one residual error per 15-bit block after the
  /// replica vote — the margin that keeps stuck cells and pulse-failure
  /// erasures decodable on degraded dies. Verification must set the
  /// matching VerifyOptions::ecc.
  bool ecc = false;
  /// Transient-fault retry budget for the imprint (ImprintOptions).
  std::uint32_t max_retries = 0;

  /// Bits of the stream fed to the dual-rail encoder (after signing and
  /// optional ECC expansion).
  std::size_t inner_bits() const;

  /// Bits of one replica after signing, ECC and dual-rail encoding.
  std::size_t replica_bits() const { return inner_bits() * 2; }
};

struct EncodedWatermark {
  BitVec signed_payload;   ///< fields (+tag) before dual-rail
  BitVec replica;          ///< one dual-rail-encoded replica
  BitVec segment_pattern;  ///< full segment imprint pattern
  ReplicaLayout layout;
};

/// Build the segment imprint pattern for `spec` on a segment of
/// `segment_cells` cells. Throws if the replicas do not fit.
EncodedWatermark encode_watermark(const WatermarkSpec& spec,
                                  std::size_t segment_cells);

/// Manufacturer flow: encode and imprint in one call. Returns the imprint
/// report (timing) — keep the EncodedWatermark if the reference pattern is
/// needed for BER studies.
ImprintReport imprint_watermark(FlashHal& hal, Addr addr,
                                const WatermarkSpec& spec);

/// Manufacturer flow with explicit driver options: encode `spec` but drive
/// the imprint with `opts` (npe/strategy/retries come from `opts`, not the
/// spec). This is how the session and fleet layers attach resume offsets,
/// checkpoint hooks, and watchdog cancellation to a watermark imprint.
ImprintReport imprint_watermark(FlashHal& hal, Addr addr,
                                const WatermarkSpec& spec,
                                const ImprintOptions& opts);

struct VerifyOptions {
  SimTime t_pew = SimTime::us(28);  ///< family window published by the vendor
  std::size_t n_replicas = 7;
  /// Must match the manufacturer's choice to check signatures; without it
  /// only CRC and dual-rail integrity are checked.
  std::optional<SipHashKey> key;
  VoteMode vote = VoteMode::kMajority;
  int n_reads = 1;
  int rounds = 1;
  bool accelerated_erase = false;
  /// Must match the manufacturer's WatermarkSpec::ecc: the replica layout
  /// changes with the ECC expansion, and decoding runs the Hamming layer
  /// between the dual-rail decode and the signature check.
  bool ecc = false;
  /// Transient-fault retry budget passed to extraction (ExtractOptions).
  std::uint32_t max_retries = 0;
  /// Read-back verification of each extraction round's program step
  /// (ExtractOptions::verify_program).
  bool verify_program = false;
  /// Cooperative-cancellation hook forwarded to the extraction rounds
  /// (ExtractOptions::cancelled) — how the fleet watchdog stops an audit.
  std::function<bool()> cancelled;
  /// Below this fraction of stressed (0) bits in the watermark region the
  /// chip is declared kNoWatermark (a real watermark is ~50% by
  /// construction of the dual-rail code).
  double min_zero_fraction = 0.10;
  /// Above this fraction of (0,0) dual-rail pairs the chip is declared
  /// kTampered even if the payload still decodes.
  double tamper_pair_fraction = 0.05;
};

enum class Verdict : std::uint8_t {
  kGenuine,
  kNoWatermark,
  kTampered,
  kUnreadable,
};

const char* to_string(Verdict v);

struct VerifyReport {
  Verdict verdict = Verdict::kUnreadable;
  std::optional<WatermarkFields> fields;  ///< decoded metadata if readable
  bool signature_checked = false;
  bool signature_ok = false;
  std::size_t invalid_00_pairs = 0;
  std::size_t invalid_11_pairs = 0;
  double zero_fraction = 0.0;         ///< stress contrast in watermark region
  double replica_disagreement = 0.0;  ///< replica consistency (0 = perfect)
  SimTime extract_time;
  /// Hamming blocks repaired on the way to the verdict (ECC-assisted
  /// recovery; only nonzero with VerifyOptions::ecc). A genuine verdict
  /// with corrections is a *degraded* die, not a clean one — the fleet
  /// layer reports the distinction.
  std::size_t ecc_corrected_blocks = 0;
  std::uint64_t retries = 0;          ///< extraction retries consumed
};

/// System-integrator flow: extract, decode, and judge the chip at `addr`.
VerifyReport verify_watermark(FlashHal& hal, Addr addr,
                              const VerifyOptions& opts);

/// Substrate-independent back half of verification: decode an extracted
/// bitmap (from any flash technology) and produce the verdict. Used by the
/// NOR pipeline above and by the NAND extension; extract_time is left zero
/// for the caller to fill.
VerifyReport judge_extracted_bits(const BitVec& extracted,
                                  const VerifyOptions& opts);

struct TpewTuneResult {
  SimTime t_pew;       ///< best window found
  double score = 0.0;  ///< lower is better (see auto_tune_tpew)
};

/// Integrator-side window search when the family's published tPEW is
/// unavailable: sweep [lo, hi] with single-read extractions and pick the
/// window whose watermark region looks most like a healthy dual-rail
/// watermark — zero fraction closest to 1/2 and replicas most consistent.
/// Each probe costs one P/E cycle of wear on the watermark segment
/// (identical to one extraction round).
TpewTuneResult auto_tune_tpew(FlashHal& hal, Addr addr,
                              const VerifyOptions& base,
                              SimTime lo = SimTime::us(15),
                              SimTime hi = SimTime::us(60),
                              SimTime step = SimTime::us(3));

}  // namespace flashmark
