// Challenge-response interrogation (à la SIGNED, arXiv:2010.05209).
//
// A plain verify always extracts the same way, so a counterfeiter who once
// recorded a genuine extraction can answer every subsequent verify from the
// recording (an emulated "chip" that plays back the bitmap — see
// attack::ReplayHal). The interrogation mode closes that hole by making
// every query *different* in ways only live silicon can answer:
//
//  * a SipHash-keyed random subset of replicas must each individually show
//    stress contrast (defeats partial clones that imprinted only some
//    copies — the verifier names the copies, the prover cannot choose);
//  * a fresh response window t_resp drawn from the steep part of the
//    erase-transition curve: the zero fraction measured there is a strong
//    function of the window, so a bitmap recorded at one window is
//    inconsistent with the expectation at any other (defeats replay);
//  * a keyed-random freshness probe segment whose partial-erase response
//    must look fresh (defeats recycled dies and segment remapping with a
//    limited spare pool — the attacker cannot predict which segment is
//    probed).
//
// All choices derive from SipHash-2-4 over (nonce, tenant), so challenges
// are deterministic for the verifier (reproducible, auditable) yet
// unpredictable without the challenge key. The derivation is the normative
// seeding contract of docs/REPRODUCIBILITY.md §11.
#pragma once

#include <cstdint>
#include <vector>

#include "core/watermark.hpp"
#include "util/siphash.hpp"

namespace flashmark {

/// Verifier-side configuration of the interrogation. The expected-response
/// tables are filled once per device family by calibrate_challenge_policy()
/// on a golden (fresh, genuinely imprinted) sample.
struct ChallengePolicy {
  /// Keys the challenge derivation; independent of the signature key (the
  /// signature authenticates the watermark, this key authenticates the
  /// *query schedule*).
  SipHashKey challenge_key{0x5EED, 0xC0DE};

  /// Replicas interrogated per query (each must individually show stress).
  std::size_t subset_size = 4;

  /// Decode windows: drawn from the flat region of the erase transition
  /// where good cells read 1 reliably, so the subset decode is dependable.
  std::vector<SimTime> decode_windows;

  /// Response windows: drawn from the steep region, where the watermark
  /// region's zero fraction moves strongly with the window. The calibrated
  /// expectation per window is the anti-replay check.
  std::vector<SimTime> response_windows;
  /// Golden zero fraction over the watermark region at response_windows[i]
  /// (parallel vector; filled by calibration).
  std::vector<double> expected_response_zero_fraction;
  /// Accepted |measured - expected| band (die-to-die variation margin).
  double response_tol = 0.06;

  /// Tamper gate for the *subset* decode. The full-population default
  /// (VerifyOptions::tamper_pair_fraction = 0.05) is calibrated for a
  /// 7-replica vote; with only subset_size replicas the per-pair vote
  /// margin shrinks and the genuine null distribution of (0,0) pairs
  /// widens, so the subset judge needs a wider band. Tampering strong
  /// enough to matter still lands far above this.
  double subset_tamper_pair_fraction = 0.12;

  /// Read-vote count for the decode extraction. A subset vote over
  /// subset_size replicas has little margin left for read noise on cells
  /// near the erase transition, so the decode read is majority-voted;
  /// the response extraction stays single-shot (its zero fraction
  /// averages over the whole region, so read noise washes out there).
  int decode_n_reads = 3;

  /// Candidate freshness-probe segments (global segment indices; must not
  /// include the watermark segment).
  std::vector<std::size_t> probe_segments;
  /// Probe pulse: program 0s, partial-erase this long, count erased cells.
  SimTime probe_window = SimTime::us(26);
  /// Minimum erased fraction to call the probed segment fresh (calibrated:
  /// golden fraction scaled by fresh_guard).
  double fresh_erased_min = 0.0;
  /// Reference fraction for graded freshness scores (calibrated).
  double fresh_erased_ref = 0.0;
  /// fresh_erased_min = golden_fraction * fresh_guard.
  double fresh_guard = 0.80;

  /// Throws std::invalid_argument unless the policy is fully usable for a
  /// population with `n_replicas` copies (non-empty window/probe sets,
  /// 1 <= subset_size <= n_replicas, calibration tables filled).
  void validate(std::size_t n_replicas) const;
};

/// One derived query: everything the verifier varies.
struct Challenge {
  std::uint64_t nonce = 0;
  std::uint32_t tenant = 0;
  std::vector<std::size_t> replica_subset;  ///< ascending, size subset_size
  std::size_t decode_window_idx = 0;
  SimTime t_pew;         ///< decode extraction window
  std::size_t response_window_idx = 0;
  SimTime t_resp;        ///< anti-replay response window
  std::size_t probe_segment = 0;  ///< global segment index probed for wear
};

/// Outcome of one interrogation.
struct ChallengeReport {
  Challenge challenge;
  bool accepted = false;         ///< all gates below passed
  bool subset_genuine = false;   ///< subset decoded to a genuine watermark
  bool replicas_present = false; ///< every challenged replica shows stress
  bool response_consistent = false;  ///< zero fraction matches t_resp
  bool probe_fresh = false;      ///< probed segment looks unworn
  Verdict verdict = Verdict::kUnreadable;  ///< subset-decode verdict
  double subset_zero_fraction = 0.0;
  double response_zero_fraction = 0.0;
  double response_error = 0.0;   ///< |measured - expected| at t_resp
  double probe_erased_fraction = 0.0;
};

/// Derive the challenge for (nonce, tenant) under `policy`. Pure function of
/// its arguments — the verifier can re-derive and audit any query. Throws
/// std::invalid_argument on an unusable policy.
Challenge derive_challenge(const ChallengePolicy& policy,
                           std::size_t n_replicas, std::uint64_t nonce,
                           std::uint32_t tenant = 0);

/// Freshness probe: program the segment to 0s, partial-erase for `window`,
/// return the fraction of cells that made it back to 1 (worn cells erase
/// slower, so a recycled segment scores low). Destructive to the segment's
/// data; leaves it erased.
double probe_erased_fraction(FlashHal& hal, std::size_t segment,
                             SimTime window);

/// Judge recorded responses against a challenge (the pure back half; the
/// replay-rejection tests drive this directly with bits recorded under a
/// DIFFERENT challenge). `decode_bits` is the extraction at challenge.t_pew,
/// `response_bits` the extraction at challenge.t_resp, `probe_erased` the
/// freshness-probe result.
ChallengeReport judge_challenge_response(const BitVec& decode_bits,
                                         const BitVec& response_bits,
                                         double probe_erased,
                                         const VerifyOptions& base,
                                         const ChallengePolicy& policy,
                                         const Challenge& challenge);

/// Full live interrogation: derive the challenge, extract twice (decode +
/// response windows), run the freshness probe, judge.
ChallengeReport challenge_verify(FlashHal& hal, Addr wm_addr,
                                 const VerifyOptions& base,
                                 const ChallengePolicy& policy,
                                 std::uint64_t nonce,
                                 std::uint32_t tenant = 0);

/// Fill the policy's expectation tables from a golden (fresh, genuinely
/// imprinted) die: expected response zero fraction per response window and
/// the freshness band from a fresh probe segment. Throws
/// std::invalid_argument on empty window/probe sets — a degenerate
/// calibration input must be an explicit error, never a silent 0.0
/// threshold.
void calibrate_challenge_policy(FlashHal& golden, Addr wm_addr,
                                const VerifyOptions& base,
                                ChallengePolicy& policy);

/// Default window sets for the MSP430 family physics (decode in the flat
/// region around the paper's 28 us, response straddling the steep
/// 17-25 us transition).
ChallengePolicy default_challenge_policy();

}  // namespace flashmark
