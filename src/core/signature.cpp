#include "core/signature.hpp"

#include <stdexcept>

namespace flashmark {

std::uint64_t watermark_tag(const SipHashKey& key, const BitVec& payload) {
  auto bytes = payload.to_bytes();
  // Mix in the exact bit length so "payload plus chopped tail" never
  // collides with a shorter legitimate payload.
  const std::uint64_t n = payload.size();
  for (int i = 0; i < 8; ++i)
    bytes.push_back(static_cast<std::uint8_t>((n >> (8 * i)) & 0xFF));
  return siphash24(key, bytes);
}

BitVec sign_watermark(const SipHashKey& key, const BitVec& payload) {
  const std::uint64_t tag = watermark_tag(key, payload);
  BitVec out = payload;
  BitVec tag_bits(kSignatureBits);
  for (std::size_t i = 0; i < kSignatureBits; ++i)
    tag_bits.set(i, (tag >> i) & 1ull);
  out.append(tag_bits);
  return out;
}

SignedWatermark verify_signed_watermark(const SipHashKey& key,
                                        const BitVec& signed_bits,
                                        std::size_t payload_bits) {
  if (signed_bits.size() != payload_bits + kSignatureBits)
    throw std::invalid_argument(
        "verify_signed_watermark: stream length mismatch");
  SignedWatermark out;
  out.payload = signed_bits.slice(0, payload_bits);
  std::uint64_t tag = 0;
  for (std::size_t i = 0; i < kSignatureBits; ++i)
    if (signed_bits.get(payload_bits + i)) tag |= 1ull << i;
  out.signature_ok = (tag == watermark_tag(key, out.payload));
  return out;
}

}  // namespace flashmark
