// Watermark replication and voting (paper §V, Figs. 10-11).
//
// A watermark is tiny compared to a 4096-cell segment, so the paper imprints
// R copies back-to-back and majority-votes the extracted replicas. Because
// extraction errors are strongly asymmetric — a stressed ("bad", 0) cell is
// far more likely to be misread as good (1) than the reverse — we also
// provide an asymmetry-aware vote: any `zero_vote_threshold` zero votes
// decide for 0 even when zeros are not the majority. The paper observes
// exactly this error structure in Fig. 10 and suggests exploiting it.
#pragma once

#include <cstddef>

#include "util/bitvec.hpp"

namespace flashmark {

enum class VoteMode : std::uint8_t {
  kMajority,    ///< plain per-bit majority over replicas
  kAsymmetric,  ///< 0 wins once it has >= zero_vote_threshold votes
};

struct ReplicaLayout {
  std::size_t payload_bits = 0;  ///< length L of one replica
  std::size_t n_replicas = 1;    ///< R copies, laid out back-to-back

  std::size_t used_bits() const { return payload_bits * n_replicas; }
};

/// Expand `payload` into a full segment pattern of `segment_cells` bits:
/// R back-to-back copies followed by filler 1s (filler cells stay erased and
/// unstressed). Throws if the copies do not fit.
BitVec replicate_pattern(const BitVec& payload, std::size_t n_replicas,
                         std::size_t segment_cells);

/// Per-replica slices of an extracted segment bitmap.
std::vector<BitVec> split_replicas(const BitVec& segment_bits,
                                   const ReplicaLayout& layout);

/// Decode the payload from an extracted segment bitmap.
/// `zero_vote_threshold` only applies to kAsymmetric; a value of 0 derives
/// the default max(1, R/3).
BitVec decode_replicas(const BitVec& segment_bits, const ReplicaLayout& layout,
                       VoteMode mode = VoteMode::kMajority,
                       std::size_t zero_vote_threshold = 0);

/// Fraction of replica bits that disagree with the decoded consensus —
/// a confidence/diagnostic signal (0 = perfectly consistent replicas).
double replica_disagreement(const BitVec& segment_bits,
                            const ReplicaLayout& layout,
                            const BitVec& decoded);

/// Soft dual-rail decode across replicas. The layout's payload_bits is the
/// dual-rail-encoded replica length (even); the result is half that long.
/// For payload bit i, the rails at 2i and 2i+1 carry (b, ~b): exactly one
/// of them was stressed. Counting zero reads of each rail across all
/// replicas and picking the rail with MORE zeros as the stressed one uses
/// the full 2R observations per payload bit, and — unlike hard per-rail
/// voting — is immune to a single persistently-fast stressed cell column
/// (the failure mode behind the paper's residual replication errors).
/// Ties fall back to the majority value of the first rail.
BitVec soft_decode_dual_rail(const BitVec& segment_bits,
                             const ReplicaLayout& layout);

}  // namespace flashmark
