// Watermark payload codec.
//
// §IV of the paper lists what a production watermark carries: manufacturer
// identifier, die identifier, speed grade, test status ("accept"/"reject"),
// and other manufacturing metadata. This module packs those fields into a
// bit string, protects them with a CRC, and applies a dual-rail (bit,
// complement-bit) encoding that makes the watermark tamper-evident:
//
//   * physics only allows an attacker to turn good cells bad (1 -> 0);
//     the reverse is impossible (oxide damage cannot be undone);
//   * every payload bit is imprinted as the pair (b, ~b) — exactly one of
//     the two cells is stressed. Any stress attack produces a (0,0) pair,
//     and a (1,1) pair cannot be fabricated at all;
//   * as a bonus the encoded stream is exactly balanced (as many good as
//     bad cells), the constraint the paper proposes for tamper detection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/bitvec.hpp"

namespace flashmark {

enum class TestStatus : std::uint8_t { kReject = 0, kAccept = 1 };

const char* to_string(TestStatus s);

/// Manufacturing metadata imprinted at die-sort (fixed 64-bit layout +
/// CRC-16 = 80 bits packed).
struct WatermarkFields {
  std::uint16_t manufacturer_id = 0;
  std::uint32_t die_id = 0;
  std::uint8_t speed_grade = 0;
  TestStatus status = TestStatus::kAccept;
  /// Date code, e.g. ((year - 2000) << 6) | week.
  std::uint16_t date_code = 0;

  bool operator==(const WatermarkFields&) const = default;
};

/// Number of bits pack_fields produces.
inline constexpr std::size_t kFieldsBits = 80;

/// Serialize fields + CRC-16 into an 80-bit string.
BitVec pack_fields(const WatermarkFields& fields);

/// Parse an 80-bit string; std::nullopt when the CRC does not match
/// (corrupted or forged payload).
std::optional<WatermarkFields> unpack_fields(const BitVec& bits);

// --- dual-rail tamper-evident encoding ------------------------------------

/// Encode: each payload bit b becomes the pair (b, ~b); output is 2x longer
/// and exactly balanced.
BitVec dual_rail_encode(const BitVec& payload);

struct DualRailDecode {
  BitVec payload;             ///< best-effort decoded bits
  std::size_t invalid_00 = 0; ///< pairs read as (0,0) — stress-attack signature
  std::size_t invalid_11 = 0; ///< pairs read as (1,1) — extraction erasure
  bool clean() const { return invalid_00 == 0 && invalid_11 == 0; }
};

/// Decode a dual-rail stream (size must be even). Invalid pairs are decoded
/// by their first rail and counted; (0,0) counts are the tamper signal.
DualRailDecode dual_rail_decode(const BitVec& encoded);

/// True if ones and zeros are exactly balanced (the paper's proposed
/// integrity constraint on watermark contents).
bool is_balanced(const BitVec& bits);

// --- plain ASCII watermarks (paper Fig. 6 "TC" example) --------------------

/// ASCII text -> bits, MSB-first per character.
BitVec ascii_watermark(const std::string& text);

/// Inverse of ascii_watermark.
std::string watermark_ascii(const BitVec& bits);

}  // namespace flashmark
