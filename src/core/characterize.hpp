// CharacterizeSegment (paper Fig. 3, top): sweep the partial erase time and
// record how many cells of a segment have transitioned at each step. This is
// the procedure behind Fig. 4 and the one the manufacturer uses to pick the
// extraction window tPEW for a device family (Fig. 5).
#pragma once

#include <cstddef>
#include <vector>

#include "core/analyze.hpp"
#include "flash/hal.hpp"
#include "util/sim_time.hpp"

namespace flashmark {

struct CharacterizePoint {
  SimTime t_pe;
  std::size_t cells_0 = 0;
  std::size_t cells_1 = 0;
};

struct CharacterizeOptions {
  SimTime t_start = SimTime::us(0);
  SimTime t_end = SimTime::us(120);  ///< sweep upper bound (paper Fig. 4 x-axis)
  SimTime t_step = SimTime::us(1);
  int n_reads = 3;  ///< majority reads per word (odd)
  /// Stop early once every cell reads erased for `settle_points` consecutive
  /// steps (0 disables early exit).
  int settle_points = 0;
};

/// Run the Fig. 3 sweep over the segment containing `addr`:
/// per step: erase, program all-zeros, partial erase for t, analyze.
/// The sweep itself adds one P/E cycle per point to the segment's wear —
/// just like on real silicon.
std::vector<CharacterizePoint> characterize_segment(
    FlashHal& hal, Addr addr, const CharacterizeOptions& opts = {});

/// Smallest t_pe in `curve` at which every cell reads erased; returns the
/// last point's time if the curve never fully settles.
SimTime full_erase_time(const std::vector<CharacterizePoint>& curve);

/// Manufacturer-side utility: derive the recommended extraction window tPEW
/// for a device family by characterizing a *fresh* scratch segment and
/// placing the window just past the slowest fresh cell:
///   tPEW = full_erase_time * margin_factor + margin_fixed.
/// This is the value the paper says the manufacturer publishes per family.
SimTime recommend_tpew(FlashHal& hal, Addr fresh_scratch_addr,
                       double margin_factor = 1.10,
                       SimTime margin_fixed = SimTime::us(2),
                       SimTime resolution = SimTime::us(1));

}  // namespace flashmark
