#include "core/extended.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/ecc.hpp"
#include "core/extract.hpp"
#include "core/replicate.hpp"
#include "core/signature.hpp"
#include "util/crc.hpp"

namespace flashmark {

namespace {
constexpr std::size_t kHeaderBits = 12;  // version(4) + blob_len(8)
constexpr std::size_t kBodyBits = 64;
constexpr std::size_t kCrcBits = 32;

void put_bits(BitVec& v, std::size_t pos, std::uint64_t value,
              std::size_t nbits) {
  for (std::size_t i = 0; i < nbits; ++i)
    v.set(pos + i, (value >> i) & 1ull);
}

std::uint64_t get_bits(const BitVec& v, std::size_t pos, std::size_t nbits) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < nbits; ++i)
    if (v.get(pos + i)) value |= 1ull << i;
  return value;
}
}  // namespace

std::size_t extended_packed_bits(std::size_t blob_bytes) {
  return kHeaderBits + kBodyBits + blob_bytes * 8 + kCrcBits;
}

BitVec pack_extended(const ExtendedPayload& payload) {
  if (payload.blob.size() > kExtendedMaxBlobBytes)
    throw std::invalid_argument("pack_extended: blob exceeds 255 bytes");
  // Reuse pack_fields for range validation + body layout (drop its CRC-16).
  const BitVec fields_packed = pack_fields(payload.fields);
  const BitVec body = fields_packed.slice(0, kBodyBits);

  BitVec v(extended_packed_bits(payload.blob.size()));
  put_bits(v, 0, kExtendedVersion, 4);
  put_bits(v, 4, payload.blob.size(), 8);
  for (std::size_t i = 0; i < kBodyBits; ++i)
    v.set(kHeaderBits + i, body.get(i));
  for (std::size_t i = 0; i < payload.blob.size() * 8; ++i)
    v.set(kHeaderBits + kBodyBits + i, (payload.blob[i / 8] >> (i % 8)) & 1u);

  const std::size_t crc_pos = v.size() - kCrcBits;
  const std::uint32_t crc = crc32_ieee(v.slice(0, crc_pos).to_bytes());
  put_bits(v, crc_pos, crc, kCrcBits);
  return v;
}

std::optional<ExtendedPayload> unpack_extended(const BitVec& bits) {
  if (bits.size() < kHeaderBits + kBodyBits + kCrcBits) return std::nullopt;
  if (get_bits(bits, 0, 4) != kExtendedVersion) return std::nullopt;
  const auto blob_len = static_cast<std::size_t>(get_bits(bits, 4, 8));
  if (bits.size() != extended_packed_bits(blob_len)) return std::nullopt;

  const std::size_t crc_pos = bits.size() - kCrcBits;
  const auto crc_stored =
      static_cast<std::uint32_t>(get_bits(bits, crc_pos, kCrcBits));
  if (crc32_ieee(bits.slice(0, crc_pos).to_bytes()) != crc_stored)
    return std::nullopt;

  // Reassemble an 80-bit pack_fields stream to reuse its parser.
  BitVec fields_bits(kFieldsBits);
  for (std::size_t i = 0; i < kBodyBits; ++i)
    fields_bits.set(i, bits.get(kHeaderBits + i));
  const std::uint16_t crc16 =
      crc16_ccitt(fields_bits.slice(0, kBodyBits).to_bytes());
  put_bits(fields_bits, kBodyBits, crc16, 16);
  const auto fields = unpack_fields(fields_bits);
  if (!fields) return std::nullopt;

  ExtendedPayload out;
  out.fields = *fields;
  out.blob.resize(blob_len, 0);
  for (std::size_t i = 0; i < blob_len * 8; ++i)
    if (bits.get(kHeaderBits + kBodyBits + i))
      out.blob[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  return out;
}

namespace {
/// Bits of the pre-dual-rail stream for a given blob size / key / ecc.
std::size_t inner_bits(std::size_t blob_bytes, bool keyed, bool ecc) {
  const std::size_t signed_bits =
      extended_packed_bits(blob_bytes) + (keyed ? kSignatureBits : 0);
  return ecc ? hamming15_encoded_bits(signed_bits) : signed_bits;
}

/// Signed (+ECC) + dual-rail encoded stream for a spec.
BitVec encode_stream(const ExtendedSpec& spec) {
  const BitVec packed = pack_extended(spec.payload);
  const BitVec signed_bits =
      spec.key ? sign_watermark(*spec.key, packed) : packed;
  return dual_rail_encode(spec.ecc ? hamming15_encode(signed_bits)
                                   : signed_bits);
}

std::size_t chunk_bits_for(std::size_t segment_cells, std::size_t replicas) {
  std::size_t chunk = segment_cells / replicas;
  chunk -= chunk % 2;  // dual-rail pairs must not straddle chunks
  return chunk;
}
}  // namespace

ExtendedLayout plan_extended(const ExtendedSpec& spec,
                             std::size_t segment_cells) {
  if (spec.n_replicas == 0)
    throw std::invalid_argument("plan_extended: n_replicas must be > 0");
  ExtendedLayout layout;
  layout.encoded_bits =
      2 * inner_bits(spec.payload.blob.size(), spec.key.has_value(), spec.ecc);
  layout.chunk_bits = chunk_bits_for(segment_cells, spec.n_replicas);
  if (layout.chunk_bits == 0)
    throw std::invalid_argument("plan_extended: replicas do not fit");
  layout.n_segments =
      (layout.encoded_bits + layout.chunk_bits - 1) / layout.chunk_bits;
  return layout;
}

std::vector<BitVec> encode_extended_patterns(const ExtendedSpec& spec,
                                             std::size_t segment_cells) {
  const ExtendedLayout layout = plan_extended(spec, segment_cells);
  BitVec stream = encode_stream(spec);
  // Pad to a whole number of chunks with 1s (unstressed filler).
  stream.append(
      BitVec(layout.n_segments * layout.chunk_bits - stream.size(), true));

  std::vector<BitVec> patterns;
  patterns.reserve(layout.n_segments);
  for (std::size_t s = 0; s < layout.n_segments; ++s) {
    const BitVec chunk = stream.slice(s * layout.chunk_bits, layout.chunk_bits);
    patterns.push_back(
        replicate_pattern(chunk, spec.n_replicas, segment_cells));
  }
  return patterns;
}

ImprintReport imprint_extended(FlashHal& hal,
                               const std::vector<Addr>& segments,
                               const ExtendedSpec& spec) {
  const auto& g = hal.geometry();
  if (segments.empty())
    throw std::invalid_argument("imprint_extended: no segments");
  const std::size_t cells = g.segment_cells(g.segment_index(segments[0]));
  const ExtendedLayout layout = plan_extended(spec, cells);
  if (segments.size() != layout.n_segments)
    throw std::invalid_argument(
        "imprint_extended: need exactly plan_extended().n_segments segments");

  const auto patterns = encode_extended_patterns(spec, cells);
  ImprintOptions io;
  io.npe = spec.npe;
  io.strategy = spec.strategy;
  io.accelerated = spec.accelerated;

  ImprintReport total;
  total.npe = spec.npe;
  total.accelerated = spec.accelerated;
  const SimTime start = hal.now();
  for (std::size_t s = 0; s < segments.size(); ++s)
    imprint_flashmark(hal, segments[s], patterns[s], io);
  total.elapsed = hal.now() - start;
  total.mean_cycle_time = SimTime::ns(
      total.elapsed.as_ns() /
      static_cast<std::int64_t>(spec.npe * segments.size()));
  return total;
}

ExtendedVerifyReport verify_extended(FlashHal& hal,
                                     const std::vector<Addr>& segments,
                                     const ExtendedVerifyOptions& opts) {
  const auto& g = hal.geometry();
  if (segments.empty())
    throw std::invalid_argument("verify_extended: no segments");
  const std::size_t cells = g.segment_cells(g.segment_index(segments[0]));
  const std::size_t chunk = chunk_bits_for(cells, opts.n_replicas);
  const ReplicaLayout layout{chunk, opts.n_replicas};

  ExtendedVerifyReport report;
  const SimTime start = hal.now();

  BitVec soft_stream;
  std::size_t invalid00 = 0;
  double worst_segment_pair_frac = 0.0;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    ExtractOptions eo;
    eo.t_pew = opts.t_pew;
    eo.rounds = opts.rounds;
    eo.n_reads = opts.n_reads;
    const ExtractResult ext = extract_flashmark(hal, segments[s], eo);
    if (s == 0) {
      const BitVec region = ext.bits.slice(0, layout.used_bits());
      report.first_segment_zero_fraction =
          static_cast<double>(region.zero_count()) /
          static_cast<double>(region.size());
    }
    const BitVec voted = decode_replicas(ext.bits, layout, VoteMode::kMajority);
    const DualRailDecode rails = dual_rail_decode(voted);
    invalid00 += rails.invalid_00;
    // Tampering is often localized to one segment: judge each on its own.
    worst_segment_pair_frac = std::max(
        worst_segment_pair_frac, static_cast<double>(rails.invalid_00) /
                                     static_cast<double>(rails.payload.size()));
    soft_stream.append(soft_decode_dual_rail(ext.bits, layout));
  }
  report.extract_time = hal.now() - start;
  report.invalid_00_pairs = invalid00;

  if (report.first_segment_zero_fraction < opts.min_zero_fraction) {
    report.verdict = Verdict::kNoWatermark;
    return report;
  }

  // Expected stream shape from the declared blob size.
  const std::size_t packed_bits = extended_packed_bits(opts.blob_bytes);
  const std::size_t signed_bits =
      packed_bits + (opts.key ? kSignatureBits : 0);
  const std::size_t coded_bits =
      inner_bits(opts.blob_bytes, opts.key.has_value(), opts.ecc);
  if (coded_bits > soft_stream.size()) {
    report.verdict = Verdict::kUnreadable;
    return report;
  }
  BitVec stream = soft_stream.slice(0, coded_bits);
  if (opts.ecc)
    stream = hamming15_decode(stream, signed_bits).payload;

  std::optional<ExtendedPayload> payload;
  if (opts.key) {
    const SignedWatermark sw =
        verify_signed_watermark(*opts.key, stream, packed_bits);
    report.signature_checked = true;
    report.signature_ok = sw.signature_ok;
    payload = unpack_extended(sw.payload);
  } else {
    payload = unpack_extended(stream);
  }
  report.payload = payload;

  if (worst_segment_pair_frac > opts.tamper_pair_fraction) {
    report.verdict = Verdict::kTampered;
    return report;
  }
  if (opts.key && !report.signature_ok) {
    report.verdict = invalid00 == 0 ? Verdict::kTampered : Verdict::kUnreadable;
    return report;
  }
  if (!payload) {
    report.verdict = Verdict::kUnreadable;
    return report;
  }
  report.verdict = Verdict::kGenuine;
  return report;
}

}  // namespace flashmark
