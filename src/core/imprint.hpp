// ImprintFlashmark (paper Fig. 7): burn a watermark into the physical
// properties of a segment by NPE repeated erase+program(watermark) cycles.
//
// Cells whose watermark bit is 0 are charged/discharged every cycle and
// accumulate permanent oxide damage ("bad" cells); cells whose bit is 1 stay
// erased and remain "good". The damage contrast *is* the watermark — it
// survives any later digital erase/program and cannot be reversed.
//
// Two execution strategies:
//  * kLoop      — the verbatim Fig. 7 loop through the digital interface;
//                 exact simulated-time accounting (used by the imprint-time
//                 benchmarks). With `accelerated` the erase of each cycle
//                 exits as soon as the segment verifies erased, the paper's
//                 ~3.5x speedup, wear-neutral by construction.
//  * kBatchWear — simulation-only fast path equivalent to the loop's effect
//                 on cell wear (used to precondition the big BER sweeps).
#pragma once

#include <cstdint>
#include <functional>

#include "flash/hal.hpp"
#include "util/bitvec.hpp"
#include "util/sim_time.hpp"

namespace flashmark {

enum class ImprintStrategy : std::uint8_t { kLoop, kBatchWear };

struct ImprintOptions {
  std::uint32_t npe = 40'000;  ///< P/E stress cycles
  /// Exit each erase as soon as the segment verifies erased instead of
  /// running the nominal erase time (§V "accelerated imprint"). Doubles as
  /// the imprint loop's erase *verification*: an undershot pulse is detected
  /// and extended rather than silently accepted.
  bool accelerated = false;
  ImprintStrategy strategy = ImprintStrategy::kLoop;
  /// Transient-fault retry budget for the whole imprint (power-loss aborts
  /// from a degraded device, see src/fault). 0 = fail fast: the first
  /// TransientFlashError propagates. When the budget is exhausted a
  /// RetryExhaustedError is thrown instead.
  std::uint32_t max_retries = 0;
  /// First P/E cycle to execute: the loop runs cycles [start_cycle, npe).
  /// Resume support — a die reloaded from a checkpoint taken after k cycles
  /// continues with start_cycle = k and ends byte-identical to an
  /// uninterrupted run (src/session). Ignored by kBatchWear apart from
  /// scaling the applied stress to the remaining cycles.
  std::uint32_t start_cycle = 0;
  /// Progress hook, called after each completed kLoop cycle with the number
  /// of cycles done so far (1-based, cumulative across resumes). The session
  /// layer journals and checkpoints here; the fleet watchdog feeds its
  /// per-die heartbeat from it. Must not touch the device.
  std::function<void(std::uint32_t cycles_done)> on_cycle;
  /// Cooperative-cancellation hook, polled between kLoop cycles (and once
  /// before a kBatchWear call). Returning true aborts the imprint with
  /// OperationCancelledError — how the fleet watchdog stops a die that blew
  /// its deadline without leaving the device mid-command.
  std::function<bool()> cancelled;
};

struct ImprintReport {
  std::uint32_t npe = 0;
  SimTime elapsed;            ///< simulated imprint time
  SimTime mean_cycle_time;    ///< elapsed / npe
  bool accelerated = false;
  std::uint64_t retries = 0;  ///< transient-fault retries consumed
};

/// Imprint `pattern` (one bit per cell of the segment at `addr`; bit 0 =>
/// stressed) with `opts.npe` P/E cycles. The pattern must match the segment
/// cell count exactly. Leaves the segment erased.
ImprintReport imprint_flashmark(FlashHal& hal, Addr addr, const BitVec& pattern,
                                const ImprintOptions& opts = {});

/// Helper: expand a pattern into the per-word program values of the segment
/// (word bit b at word w <- pattern bit w*bits_per_word + b).
std::vector<std::uint16_t> pattern_to_words(const FlashGeometry& g,
                                            std::size_t seg,
                                            const BitVec& pattern);

}  // namespace flashmark
