#include "core/codec.hpp"

#include <stdexcept>

#include "util/crc.hpp"

namespace flashmark {

const char* to_string(TestStatus s) {
  return s == TestStatus::kAccept ? "accept" : "reject";
}

namespace {
// Little-endian field layout of the 64-bit body:
//   [0]  manufacturer_id  (16 bits)
//   [16] die_id           (32 bits)
//   [48] speed_grade      (8 bits)
//   [56] status           (1 bit)
//   [57] date_code        (7 low bits) -- packed with the 5 high bits below
// To keep the layout simple and lossless we store date_code's 12 bits as
// bits [52..63] and narrow speed_grade/status accordingly:
//   [48] speed_grade (4 bits, 0-15)
//   [52] date_code   (11 bits)
//   [63] status      (1 bit)
constexpr std::size_t kBodyBits = 64;

void put_bits(BitVec& v, std::size_t pos, std::uint64_t value,
              std::size_t nbits) {
  for (std::size_t i = 0; i < nbits; ++i)
    v.set(pos + i, (value >> i) & 1ull);
}

std::uint64_t get_bits(const BitVec& v, std::size_t pos, std::size_t nbits) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < nbits; ++i)
    if (v.get(pos + i)) value |= 1ull << i;
  return value;
}
}  // namespace

BitVec pack_fields(const WatermarkFields& fields) {
  if (fields.speed_grade > 15)
    throw std::invalid_argument("pack_fields: speed_grade must fit 4 bits");
  if (fields.date_code > 0x7FF)
    throw std::invalid_argument("pack_fields: date_code must fit 11 bits");
  BitVec v(kFieldsBits);
  put_bits(v, 0, fields.manufacturer_id, 16);
  put_bits(v, 16, fields.die_id, 32);
  put_bits(v, 48, fields.speed_grade, 4);
  put_bits(v, 52, fields.date_code, 11);
  put_bits(v, 63, fields.status == TestStatus::kAccept ? 1 : 0, 1);

  const BitVec body = v.slice(0, kBodyBits);
  const std::uint16_t crc = crc16_ccitt(body.to_bytes());
  put_bits(v, kBodyBits, crc, 16);
  return v;
}

std::optional<WatermarkFields> unpack_fields(const BitVec& bits) {
  if (bits.size() != kFieldsBits) return std::nullopt;
  const BitVec body = bits.slice(0, kBodyBits);
  const auto crc_stored =
      static_cast<std::uint16_t>(get_bits(bits, kBodyBits, 16));
  if (crc16_ccitt(body.to_bytes()) != crc_stored) return std::nullopt;

  WatermarkFields f;
  f.manufacturer_id = static_cast<std::uint16_t>(get_bits(bits, 0, 16));
  f.die_id = static_cast<std::uint32_t>(get_bits(bits, 16, 32));
  f.speed_grade = static_cast<std::uint8_t>(get_bits(bits, 48, 4));
  f.date_code = static_cast<std::uint16_t>(get_bits(bits, 52, 11));
  f.status = get_bits(bits, 63, 1) ? TestStatus::kAccept : TestStatus::kReject;
  return f;
}

BitVec dual_rail_encode(const BitVec& payload) {
  BitVec out(payload.size() * 2);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    const bool b = payload.get(i);
    out.set(2 * i, b);
    out.set(2 * i + 1, !b);
  }
  return out;
}

DualRailDecode dual_rail_decode(const BitVec& encoded) {
  if (encoded.size() % 2 != 0)
    throw std::invalid_argument("dual_rail_decode: odd length");
  DualRailDecode d;
  d.payload = BitVec(encoded.size() / 2);
  for (std::size_t i = 0; i < d.payload.size(); ++i) {
    const bool a = encoded.get(2 * i);
    const bool b = encoded.get(2 * i + 1);
    if (a == b) {
      if (a)
        ++d.invalid_11;
      else
        ++d.invalid_00;
    }
    d.payload.set(i, a);
  }
  return d;
}

bool is_balanced(const BitVec& bits) {
  return bits.size() % 2 == 0 && bits.popcount() == bits.size() / 2;
}

BitVec ascii_watermark(const std::string& text) {
  return BitVec::from_ascii_msb_first(text);
}

std::string watermark_ascii(const BitVec& bits) {
  return bits.to_ascii_msb_first();
}

}  // namespace flashmark
