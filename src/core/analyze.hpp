// AnalyzeSegment (paper Fig. 3, bottom): N-read majority characterization of
// a segment's post-partial-erase state.
//
// After an aborted erase many cells sit near the sense threshold and read
// metastably; reading each word N times (N odd) and taking a per-bit
// majority vote yields a stable bitmap plus the cells_0/cells_1 counts the
// paper's characterization curves are built from.
#pragma once

#include <cstddef>

#include "flash/hal.hpp"
#include "util/bitvec.hpp"

namespace flashmark {

struct SegmentAnalysis {
  BitVec bitmap;         ///< bit i == 1 iff cell i voted erased
  std::size_t cells_0 = 0;  ///< programmed cells
  std::size_t cells_1 = 0;  ///< erased cells
};

/// Read every word of the segment containing `addr` N times (N odd, >= 1)
/// and majority-vote each bit. Throws std::invalid_argument on even/zero N.
SegmentAnalysis analyze_segment(FlashHal& hal, Addr addr, int n_reads = 3);

}  // namespace flashmark
