// Extended watermarks: variable-length manufacturing payloads spanning
// multiple segments.
//
// The paper's §IV watermark carries fixed metadata; production flows also
// want free-form data (lot number, wafer coordinates, test-site logs). This
// module packs a versioned header + fields + blob + CRC-32, signs it,
// dual-rail encodes it, and splits the encoded stream into chunks — one
// chunk per segment, each chunk replicated R times inside its segment.
// Verification soft-decodes each segment, reassembles the stream, and
// checks signature and CRC.
//
// Bit layout of the packed stream (before signing):
//   [0..3]   version (currently 1)
//   [4..11]  blob length in bytes (0..255)
//   [12..75] WatermarkFields body (same 64-bit layout as pack_fields)
//   [76..]   blob bytes, LSB-first
//   [..+32]  CRC-32 over everything above
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/codec.hpp"
#include "core/imprint.hpp"
#include "core/watermark.hpp"
#include "flash/hal.hpp"
#include "util/siphash.hpp"

namespace flashmark {

inline constexpr std::uint8_t kExtendedVersion = 1;
inline constexpr std::size_t kExtendedMaxBlobBytes = 255;

struct ExtendedPayload {
  WatermarkFields fields;
  std::vector<std::uint8_t> blob;  ///< up to 255 bytes of free-form data

  bool operator==(const ExtendedPayload&) const = default;
};

/// Packed size in bits for a blob of `blob_bytes` (before signing).
std::size_t extended_packed_bits(std::size_t blob_bytes);

/// Serialize payload + CRC-32. Throws on oversized blob / field overflow.
BitVec pack_extended(const ExtendedPayload& payload);

/// Parse a packed stream (exact length required); nullopt on bad version,
/// bad length, or CRC mismatch.
std::optional<ExtendedPayload> unpack_extended(const BitVec& bits);

struct ExtendedSpec {
  ExtendedPayload payload;
  std::optional<SipHashKey> key;
  std::size_t n_replicas = 3;
  /// Hamming(15,11)-protect the signed stream before dual-rail encoding.
  /// With only 3 replicas a long stream keeps a couple of residual soft-
  /// decode errors (persistently-fast stressed columns); single-error
  /// correction per 15-bit block absorbs them — the paper's "error
  /// correction techniques instead of replication" suggestion, applied on
  /// top of light replication.
  bool ecc = true;
  std::uint32_t npe = 60'000;
  ImprintStrategy strategy = ImprintStrategy::kLoop;
  bool accelerated = true;
};

struct ExtendedLayout {
  std::size_t encoded_bits = 0;  ///< dual-rail stream length (even)
  std::size_t chunk_bits = 0;    ///< encoded bits per segment (even)
  std::size_t n_segments = 0;    ///< segments required
};

/// Chunking plan for a given segment size. Throws if a single replica of a
/// chunk cannot fit.
ExtendedLayout plan_extended(const ExtendedSpec& spec,
                             std::size_t segment_cells);

/// Per-segment imprint patterns (chunked, replicated, padded with 1s).
std::vector<BitVec> encode_extended_patterns(const ExtendedSpec& spec,
                                             std::size_t segment_cells);

/// Imprint across `segments` (must be exactly plan.n_segments addresses,
/// each in a distinct segment). Returns the aggregate imprint report.
ImprintReport imprint_extended(FlashHal& hal,
                               const std::vector<Addr>& segments,
                               const ExtendedSpec& spec);

struct ExtendedVerifyReport {
  Verdict verdict = Verdict::kUnreadable;
  std::optional<ExtendedPayload> payload;
  bool signature_checked = false;
  bool signature_ok = false;
  std::size_t invalid_00_pairs = 0;
  double first_segment_zero_fraction = 0.0;
  SimTime extract_time;
};

struct ExtendedVerifyOptions {
  SimTime t_pew = SimTime::us(30);
  std::size_t n_replicas = 3;
  std::optional<SipHashKey> key;
  std::size_t blob_bytes = 0;  ///< expected blob size (defines the layout)
  bool ecc = true;             ///< must match the imprint's spec.ecc
  int rounds = 1;
  int n_reads = 1;
  double min_zero_fraction = 0.10;
  double tamper_pair_fraction = 0.05;
};

/// Extract + decode + judge a multi-segment extended watermark.
ExtendedVerifyReport verify_extended(FlashHal& hal,
                                     const std::vector<Addr>& segments,
                                     const ExtendedVerifyOptions& opts);

}  // namespace flashmark
