#include "core/metrics.hpp"

#include <stdexcept>

namespace flashmark {

BerBreakdown compare_bits(const BitVec& reference, const BitVec& extracted) {
  if (reference.size() != extracted.size())
    throw std::invalid_argument("compare_bits: length mismatch");
  BerBreakdown b;
  b.total_bits = reference.size();
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const bool ref = reference.get(i);
    const bool got = extracted.get(i);
    if (ref)
      ++b.expected_ones;
    else
      ++b.expected_zeros;
    if (ref != got) {
      ++b.errors;
      if (ref)
        ++b.errors_on_ones;
      else
        ++b.errors_on_zeros;
    }
  }
  return b;
}

}  // namespace flashmark
