#include "core/registry.hpp"

namespace flashmark {

const char* to_string(RegistryVerdict v) {
  switch (v) {
    case RegistryVerdict::kOk: return "ok";
    case RegistryVerdict::kUnknownDie: return "unknown-die";
    case RegistryVerdict::kDuplicate: return "duplicate-sighting";
    case RegistryVerdict::kFieldMismatch: return "field-mismatch";
  }
  return "unknown";
}

bool WatermarkRegistry::register_die(const WatermarkFields& fields) {
  return issued_.emplace(fields.die_id, fields).second;
}

RegistryVerdict WatermarkRegistry::check_in(const WatermarkFields& fields,
                                            const std::string& location) {
  const auto it = issued_.find(fields.die_id);
  if (it == issued_.end()) return RegistryVerdict::kUnknownDie;
  if (!(it->second == fields)) return RegistryVerdict::kFieldMismatch;
  const bool seen = sightings_.count(fields.die_id) > 0;
  sightings_.emplace(fields.die_id, Sighting{fields.die_id, location});
  return seen ? RegistryVerdict::kDuplicate : RegistryVerdict::kOk;
}

std::vector<Sighting> WatermarkRegistry::sightings(std::uint32_t die_id) const {
  std::vector<Sighting> out;
  const auto [lo, hi] = sightings_.equal_range(die_id);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

}  // namespace flashmark
