// Die-identity registry — closes the clone-attack gap.
//
// A Flashmark watermark binds metadata to physics, but a counterfeiter can
// copy a *valid* watermark bit-for-bit onto a blank die (tests/attack_test
// demonstrates it). The paper's §V answer is procedural: watermarks carry
// unique die identifiers, so clones surface as duplicate sightings. This
// registry implements that procedure for the manufacturer ("I issued these
// die ids") and the integrator ("I have seen this die id before").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/codec.hpp"

namespace flashmark {

enum class RegistryVerdict : std::uint8_t {
  kOk = 0,          ///< known die, first sighting
  kUnknownDie,      ///< die id was never issued by this manufacturer
  kDuplicate,       ///< die id sighted before: clone suspect (either chip)
  kFieldMismatch,   ///< die id known but other fields differ: forged payload
};

const char* to_string(RegistryVerdict v);

struct Sighting {
  std::uint32_t die_id = 0;
  std::string location;  ///< free-form: integrator / lot / board id
};

class WatermarkRegistry {
 public:
  /// Manufacturer side: record an issued die at die-sort time.
  /// Returns false (and ignores the call) if the die id was already issued.
  bool register_die(const WatermarkFields& fields);

  std::size_t issued_count() const { return issued_.size(); }
  bool issued(std::uint32_t die_id) const { return issued_.count(die_id) > 0; }

  /// Integrator side: report a verified watermark sighting. Applies the
  /// checks in order: issued? fields match the issued record? seen before?
  RegistryVerdict check_in(const WatermarkFields& fields,
                           const std::string& location);

  /// All sightings of one die id (clone forensics).
  std::vector<Sighting> sightings(std::uint32_t die_id) const;

 private:
  std::map<std::uint32_t, WatermarkFields> issued_;
  std::multimap<std::uint32_t, Sighting> sightings_;
};

}  // namespace flashmark
