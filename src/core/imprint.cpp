#include "core/imprint.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace flashmark {

std::vector<std::uint16_t> pattern_to_words(const FlashGeometry& g,
                                            std::size_t seg,
                                            const BitVec& pattern) {
  const std::size_t n_cells = g.segment_cells(seg);
  if (pattern.size() != n_cells)
    throw std::invalid_argument(
        "pattern_to_words: pattern size must equal segment cell count");
  const std::size_t bpw = g.bits_per_word();
  std::vector<std::uint16_t> words(n_cells / bpw, 0);
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint16_t v = 0;
    for (std::size_t b = 0; b < bpw; ++b)
      if (pattern.get(w * bpw + b)) v |= static_cast<std::uint16_t>(1u << b);
    words[w] = v;
  }
  return words;
}

ImprintReport imprint_flashmark(FlashHal& hal, Addr addr, const BitVec& pattern,
                                const ImprintOptions& opts) {
  if (opts.npe == 0)
    throw std::invalid_argument("imprint_flashmark: npe must be > 0");
  if (opts.start_cycle > opts.npe)
    throw std::invalid_argument("imprint_flashmark: start_cycle > npe");
  const auto& g = hal.geometry();
  const std::size_t seg = g.segment_index(addr);
  const Addr base = g.segment_base(seg);

  const SimTime start = hal.now();
  ImprintReport report;
  report.npe = opts.npe;
  report.accelerated = opts.accelerated;

  // Bounded retry around a unit of work: a TransientFlashError (power-loss
  // abort) consumes budget and the unit is reissued; both the P/E loop cycle
  // and the batch-wear call are idempotent-enough units (re-running only adds
  // stress, and stress is the watermark). Exhaustion surfaces as a
  // structured RetryExhaustedError for fleet-level classification.
  std::uint32_t budget = opts.max_retries;
  auto with_retry = [&](const char* op, auto&& unit) {
    for (;;) {
      try {
        unit();
        return;
      } catch (const TransientFlashError& e) {
        if (budget == 0)
          throw RetryExhaustedError(op, opts.max_retries + 1, e.what());
        --budget;
        ++report.retries;
        if (auto* col = obs::TraceCollector::current())
          col->instant("imprint.retry");
      }
    }
  };

  FLASHMARK_SPAN_SIM("imprint", hal);
  const std::uint32_t executed = opts.npe - opts.start_cycle;
  if (opts.strategy == ImprintStrategy::kBatchWear) {
    if (opts.cancelled && opts.cancelled())
      throw OperationCancelledError("imprint wear_segment");
    if (executed > 0)
      with_retry("imprint wear_segment", [&] {
        FLASHMARK_SPAN_SIM("imprint.wear_segment", hal);
        hal.wear_segment(base, static_cast<double>(executed), &pattern);
      });
  } else {
    const auto words = pattern_to_words(g, seg, pattern);
    for (std::uint32_t cycle = opts.start_cycle; cycle < opts.npe; ++cycle) {
      if (opts.cancelled && opts.cancelled())
        throw OperationCancelledError("imprint cycle");
      with_retry("imprint cycle", [&] {
        FLASHMARK_SPAN_SIM("imprint.cycle", hal);
        {
          FLASHMARK_SPAN_SIM("imprint.erase", hal);
          if (opts.accelerated)
            hal.erase_segment_auto(base);
          else
            hal.erase_segment(base);
        }
        FLASHMARK_SPAN_SIM("imprint.program", hal);
        hal.program_block(base, words);
      });
      if (opts.on_cycle) opts.on_cycle(cycle + 1);
    }
  }

  report.elapsed = hal.now() - start;
  // Round-to-nearest: truncating division understated the mean by up to
  // 1 ns per cycle (enough to fail an exact npe * mean == elapsed
  // cross-check on paper-scale cycle times like 24.085 ms).
  report.mean_cycle_time =
      executed == 0
          ? SimTime{}
          : SimTime::ns((report.elapsed.as_ns() +
                         static_cast<std::int64_t>(executed) / 2) /
                        static_cast<std::int64_t>(executed));
  return report;
}

}  // namespace flashmark
