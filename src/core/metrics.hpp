// Bit-error-rate accounting used throughout the evaluation benches.
//
// The paper's key observation (Fig. 10) is that extraction errors are
// asymmetric: stressed "bad" (0) bits are misread as "good" (1) far more
// often than the reverse. BerBreakdown keeps the two directions separate.
#pragma once

#include <cstddef>

#include "util/bitvec.hpp"

namespace flashmark {

struct BerBreakdown {
  std::size_t total_bits = 0;
  std::size_t errors = 0;
  std::size_t expected_zeros = 0;  ///< stressed ("bad") bits in the reference
  std::size_t expected_ones = 0;   ///< fresh ("good") bits in the reference
  std::size_t errors_on_zeros = 0; ///< bad read as good (0 -> 1)
  std::size_t errors_on_ones = 0;  ///< good read as bad (1 -> 0)

  double ber() const {
    return total_bits ? static_cast<double>(errors) /
                            static_cast<double>(total_bits)
                      : 0.0;
  }
  double ber_on_zeros() const {
    return expected_zeros ? static_cast<double>(errors_on_zeros) /
                                static_cast<double>(expected_zeros)
                          : 0.0;
  }
  double ber_on_ones() const {
    return expected_ones ? static_cast<double>(errors_on_ones) /
                               static_cast<double>(expected_ones)
                         : 0.0;
  }
};

/// Compare an extracted bit string against the imprinted reference.
BerBreakdown compare_bits(const BitVec& reference, const BitVec& extracted);

}  // namespace flashmark
