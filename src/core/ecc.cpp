#include "core/ecc.hpp"

#include <stdexcept>

namespace flashmark {

namespace {
constexpr bool is_power_of_two(std::size_t x) { return x && !(x & (x - 1)); }
}  // namespace

BitVec hamming15_encode_block(const BitVec& data11) {
  if (data11.size() != kHammingDataBits)
    throw std::invalid_argument("hamming15_encode_block: need 11 bits");
  // code[pos] for pos in 1..15; data fills the non-power-of-two positions in
  // ascending order.
  bool code[16] = {};
  std::size_t d = 0;
  for (std::size_t pos = 1; pos <= 15; ++pos)
    if (!is_power_of_two(pos)) code[pos] = data11.get(d++);
  for (std::size_t p = 1; p <= 8; p <<= 1) {
    bool parity = false;
    for (std::size_t pos = 1; pos <= 15; ++pos)
      if ((pos & p) && pos != p) parity ^= code[pos];
    code[p] = parity;
  }
  BitVec out(kHammingCodeBits);
  for (std::size_t pos = 1; pos <= 15; ++pos) out.set(pos - 1, code[pos]);
  return out;
}

HammingBlockDecode hamming15_decode_block(const BitVec& code15) {
  if (code15.size() != kHammingCodeBits)
    throw std::invalid_argument("hamming15_decode_block: need 15 bits");
  bool code[16] = {};
  for (std::size_t pos = 1; pos <= 15; ++pos) code[pos] = code15.get(pos - 1);

  std::size_t syndrome = 0;
  for (std::size_t p = 1; p <= 8; p <<= 1) {
    bool parity = false;
    for (std::size_t pos = 1; pos <= 15; ++pos)
      if (pos & p) parity ^= code[pos];
    if (parity) syndrome |= p;
  }

  HammingBlockDecode d;
  if (syndrome != 0) {
    code[syndrome] = !code[syndrome];
    d.corrected = true;
  }
  d.data = BitVec(kHammingDataBits);
  std::size_t i = 0;
  for (std::size_t pos = 1; pos <= 15; ++pos)
    if (!is_power_of_two(pos)) d.data.set(i++, code[pos]);
  return d;
}

std::size_t hamming15_encoded_bits(std::size_t payload_bits) {
  return (payload_bits + kHammingDataBits - 1) / kHammingDataBits *
         kHammingCodeBits;
}

BitVec hamming15_encode(const BitVec& payload) {
  if (payload.empty())
    throw std::invalid_argument("hamming15_encode: empty payload");
  const std::size_t blocks =
      (payload.size() + kHammingDataBits - 1) / kHammingDataBits;
  BitVec padded = payload;
  padded.append(BitVec(blocks * kHammingDataBits - payload.size()));
  BitVec out;
  for (std::size_t b = 0; b < blocks; ++b)
    out.append(
        hamming15_encode_block(padded.slice(b * kHammingDataBits, kHammingDataBits)));
  return out;
}

HammingDecode hamming15_decode(const BitVec& code, std::size_t payload_bits) {
  if (code.size() % kHammingCodeBits != 0)
    throw std::invalid_argument("hamming15_decode: bad code length");
  const std::size_t blocks = code.size() / kHammingCodeBits;
  if (payload_bits > blocks * kHammingDataBits)
    throw std::invalid_argument("hamming15_decode: payload_bits too large");
  HammingDecode d;
  BitVec all;
  for (std::size_t b = 0; b < blocks; ++b) {
    auto block =
        hamming15_decode_block(code.slice(b * kHammingCodeBits, kHammingCodeBits));
    if (block.corrected) ++d.corrected_blocks;
    all.append(block.data);
  }
  d.payload = all.slice(0, payload_bits);
  return d;
}

}  // namespace flashmark
