// ExtractFlashmark (paper Fig. 8): read a physical watermark back through
// the digital interface.
//
// One extraction round: erase the segment, program every cell, start an
// erase and abort it after the published window tPEW, then read the segment.
// Fresh ("good") cells have already transitioned and read 1; stressed
// ("bad") cells resist erase and still read 0 — recovering the imprinted
// bit pattern directly.
//
// Knobs beyond the paper's Fig. 8 baseline (single round, single read):
//  * n_reads  — per-round N-read majority (Fig. 3's AnalyzeSegment),
//  * rounds   — repeat the whole round and majority-vote across rounds
//               (the paper's 170 ms extraction corresponds to multiple
//               rounds of the baseline implementation).
#pragma once

#include <functional>
#include <vector>

#include "core/analyze.hpp"
#include "flash/hal.hpp"
#include "util/bitvec.hpp"
#include "util/sim_time.hpp"

namespace flashmark {

struct ExtractOptions {
  SimTime t_pew = SimTime::us(28);  ///< partial erase window (family-specific)
  int n_reads = 1;                  ///< reads per word per round (odd)
  int rounds = 1;                   ///< independent rounds (odd)
  /// Use the erase-verify early exit for the round's leading erase. Saves
  /// most of the round time without touching the result.
  bool accelerated_erase = false;
  /// Erase the segment after the last round so it is not left in the
  /// undefined post-abort state.
  bool final_erase = false;
  /// Transient-fault retry budget for the whole extraction (power-loss
  /// aborts from a degraded device, see src/fault). A failed round is
  /// restarted from its leading erase, so retries cannot skew the vote.
  /// 0 = fail fast; exhaustion throws RetryExhaustedError.
  std::uint32_t max_retries = 0;
  /// Verify the all-zeros program step of each round by reading the segment
  /// back and re-pulsing any word that kept erased bits (one corrective
  /// pass — a dropped program pulse would otherwise masquerade as a block
  /// of stressed-free "good" cells). Stuck-at-1 cells stay wrong after the
  /// re-pulse; those are the ECC layer's job.
  bool verify_program = false;
  /// Cooperative-cancellation hook, polled before each round. Returning true
  /// aborts the extraction with OperationCancelledError (fleet watchdog —
  /// see ImprintOptions::cancelled).
  std::function<bool()> cancelled;
};

struct ExtractResult {
  BitVec bits;                      ///< extracted bitmap (1 = good cell)
  std::vector<BitVec> round_bits;   ///< per-round bitmaps
  SimTime elapsed;
  std::uint64_t retries = 0;            ///< transient-fault retries consumed
  std::uint64_t reprogrammed_words = 0; ///< words re-pulsed by verify_program
};

/// Extract the watermark bitmap of the segment at `addr`.
ExtractResult extract_flashmark(FlashHal& hal, Addr addr,
                                const ExtractOptions& opts = {});

}  // namespace flashmark
