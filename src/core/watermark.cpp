#include "core/watermark.hpp"

#include <cmath>
#include <stdexcept>

#include "core/ecc.hpp"

namespace flashmark {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kGenuine: return "genuine";
    case Verdict::kNoWatermark: return "no-watermark";
    case Verdict::kTampered: return "tampered";
    case Verdict::kUnreadable: return "unreadable";
  }
  return "unknown";
}

std::size_t WatermarkSpec::inner_bits() const {
  const std::size_t signed_bits = kFieldsBits + (key ? kSignatureBits : 0);
  return ecc ? hamming15_encoded_bits(signed_bits) : signed_bits;
}

EncodedWatermark encode_watermark(const WatermarkSpec& spec,
                                  std::size_t segment_cells) {
  EncodedWatermark e;
  const BitVec packed = pack_fields(spec.fields);
  e.signed_payload = spec.key ? sign_watermark(*spec.key, packed) : packed;
  e.replica = dual_rail_encode(spec.ecc ? hamming15_encode(e.signed_payload)
                                        : e.signed_payload);
  e.layout = ReplicaLayout{e.replica.size(), spec.n_replicas};
  e.segment_pattern =
      replicate_pattern(e.replica, spec.n_replicas, segment_cells);
  return e;
}

ImprintReport imprint_watermark(FlashHal& hal, Addr addr,
                                const WatermarkSpec& spec) {
  ImprintOptions opts;
  opts.npe = spec.npe;
  opts.accelerated = spec.accelerated;
  opts.strategy = spec.strategy;
  opts.max_retries = spec.max_retries;
  return imprint_watermark(hal, addr, spec, opts);
}

ImprintReport imprint_watermark(FlashHal& hal, Addr addr,
                                const WatermarkSpec& spec,
                                const ImprintOptions& opts) {
  const auto& g = hal.geometry();
  const std::size_t seg = g.segment_index(addr);
  const EncodedWatermark e = encode_watermark(spec, g.segment_cells(seg));
  return imprint_flashmark(hal, g.segment_base(seg), e.segment_pattern, opts);
}

VerifyReport verify_watermark(FlashHal& hal, Addr addr,
                              const VerifyOptions& opts) {
  // 1. Extract the physical bitmap, then judge it.
  ExtractOptions eo;
  eo.t_pew = opts.t_pew;
  eo.n_reads = opts.n_reads;
  eo.rounds = opts.rounds;
  eo.accelerated_erase = opts.accelerated_erase;
  eo.max_retries = opts.max_retries;
  eo.verify_program = opts.verify_program;
  eo.cancelled = opts.cancelled;
  const ExtractResult ext = extract_flashmark(hal, addr, eo);
  VerifyReport report = judge_extracted_bits(ext.bits, opts);
  report.extract_time = ext.elapsed;
  report.retries = ext.retries;
  return report;
}

VerifyReport judge_extracted_bits(const BitVec& extracted,
                                  const VerifyOptions& opts) {
  VerifyReport report;

  if (opts.n_replicas == 0)
    throw std::invalid_argument(
        "judge_extracted_bits: n_replicas must be >= 1 — a zero-replica "
        "layout judges an empty region (NaN zero fraction, every gate "
        "vacuously passed)");

  // 2. Replica layout implied by the verify options. With ECC the dual-rail
  // stream carries the Hamming-expanded payload, so the layout grows by the
  // same 15/11 factor the manufacturer's encoder applied.
  const std::size_t signed_bits =
      kFieldsBits + (opts.key ? kSignatureBits : 0);
  const std::size_t inner_bits =
      opts.ecc ? hamming15_encoded_bits(signed_bits) : signed_bits;
  const ReplicaLayout layout{inner_bits * 2, opts.n_replicas};
  if (layout.used_bits() > extracted.size())
    throw std::invalid_argument(
        "judge_extracted_bits: replicas exceed segment size");

  // 3. Stress contrast over the watermark region. A legitimate dual-rail
  // watermark stresses exactly half the cells; a fresh or digitally-forged
  // chip shows (almost) none.
  const BitVec region = extracted.slice(0, layout.used_bits());
  report.zero_fraction = static_cast<double>(region.zero_count()) /
                         static_cast<double>(region.size());
  if (report.zero_fraction < opts.min_zero_fraction) {
    report.verdict = Verdict::kNoWatermark;
    return report;
  }

  // 4. Decode. The hard per-rail vote feeds the tamper statistics ((0,0)
  // pairs can only come from extra stress); the soft dual-rail decode —
  // which compares the two rails' zero-vote counts — recovers the payload
  // and is robust to the occasional persistently-fast stressed cell column
  // that defeats plain majority voting.
  const BitVec voted = decode_replicas(extracted, layout, opts.vote);
  report.replica_disagreement =
      replica_disagreement(extracted, layout, voted);
  const DualRailDecode rails = dual_rail_decode(voted);
  report.invalid_00_pairs = rails.invalid_00;
  report.invalid_11_pairs = rails.invalid_11;
  const double pair_frac =
      static_cast<double>(rails.invalid_00) /
      static_cast<double>(rails.payload.size());
  BitVec soft_payload = soft_decode_dual_rail(extracted, layout);
  if (opts.ecc) {
    // ECC-assisted recovery: the soft vote leaves at most a few residual
    // errors (stuck cells, persistently-fast columns); single-error
    // correction per 15-bit block absorbs them before the signature gate.
    const HammingDecode hd = hamming15_decode(soft_payload, signed_bits);
    report.ecc_corrected_blocks = hd.corrected_blocks;
    soft_payload = hd.payload;
  }

  // 5. Signature / CRC.
  std::optional<WatermarkFields> fields;
  if (opts.key) {
    const SignedWatermark sw =
        verify_signed_watermark(*opts.key, soft_payload, kFieldsBits);
    report.signature_checked = true;
    report.signature_ok = sw.signature_ok;
    fields = unpack_fields(sw.payload);
  } else {
    fields = unpack_fields(soft_payload);
  }
  report.fields = fields;

  // 6. Verdict. Stress-attack signature first: (0,0) pairs can only come
  // from extra stress on good cells (or rare good->bad read noise, hence the
  // threshold).
  if (pair_frac > opts.tamper_pair_fraction) {
    report.verdict = Verdict::kTampered;
    return report;
  }
  if (opts.key && !report.signature_ok) {
    // Readable but signature does not verify: either tampered or decoded
    // with errors; a clean dual-rail stream with a bad tag is tampering.
    report.verdict = rails.clean() ? Verdict::kTampered : Verdict::kUnreadable;
    return report;
  }
  if (!fields) {
    report.verdict = Verdict::kUnreadable;
    return report;
  }
  report.verdict = Verdict::kGenuine;
  return report;
}

}  // namespace flashmark

namespace flashmark {

TpewTuneResult auto_tune_tpew(FlashHal& hal, Addr addr,
                              const VerifyOptions& base, SimTime lo,
                              SimTime hi, SimTime step) {
  if (step <= SimTime{} || hi < lo)
    throw std::invalid_argument("auto_tune_tpew: bad sweep range");
  const std::size_t signed_bits =
      kFieldsBits + (base.key ? kSignatureBits : 0);
  const std::size_t inner_bits =
      base.ecc ? hamming15_encoded_bits(signed_bits) : signed_bits;
  const ReplicaLayout layout{inner_bits * 2, base.n_replicas};

  TpewTuneResult best;
  bool first = true;
  for (SimTime t = lo; t <= hi; t += step) {
    ExtractOptions eo;
    eo.t_pew = t;
    const ExtractResult ext = extract_flashmark(hal, addr, eo);
    const BitVec region = ext.bits.slice(0, layout.used_bits());
    const double zero_frac = static_cast<double>(region.zero_count()) /
                             static_cast<double>(region.size());
    const BitVec voted = decode_replicas(ext.bits, layout, base.vote);
    const double disagreement =
        replica_disagreement(ext.bits, layout, voted);
    // Balance term dominates (a dual-rail watermark is exactly half
    // stressed); disagreement breaks ties between balanced windows.
    const double score = std::abs(zero_frac - 0.5) + disagreement;
    if (first || score < best.score) {
      best = TpewTuneResult{t, score};
      first = false;
    }
  }
  return best;
}

}  // namespace flashmark
