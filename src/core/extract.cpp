#include "core/extract.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace flashmark {

ExtractResult extract_flashmark(FlashHal& hal, Addr addr,
                                const ExtractOptions& opts) {
  if (opts.n_reads < 1 || opts.n_reads % 2 == 0)
    throw std::invalid_argument("extract_flashmark: n_reads must be odd >= 1");
  if (opts.rounds < 1 || opts.rounds % 2 == 0)
    throw std::invalid_argument("extract_flashmark: rounds must be odd >= 1");
  if (opts.t_pew < SimTime{})
    throw std::invalid_argument("extract_flashmark: negative t_pew");

  const auto& g = hal.geometry();
  const std::size_t seg = g.segment_index(addr);
  const Addr base = g.segment_base(seg);
  const std::size_t n_words = g.segment_bytes(seg) / g.word_bytes;
  const std::size_t n_cells = g.segment_cells(seg);
  const std::vector<std::uint16_t> zeros(n_words, 0x0000);

  const SimTime start = hal.now();
  ExtractResult result;
  result.round_bits.reserve(static_cast<std::size_t>(opts.rounds));

  FLASHMARK_SPAN_SIM("extract", hal);
  std::uint32_t budget = opts.max_retries;
  for (int r = 0; r < opts.rounds; ++r) {
    if (opts.cancelled && opts.cancelled())
      throw OperationCancelledError("extract round");
    // A round is restartable by construction: its leading erase resets the
    // segment, so a power-loss abort anywhere inside the round is repaired
    // by running the whole round again (bounded by max_retries).
    for (;;) {
      try {
        FLASHMARK_SPAN_SIM("extract.round", hal);
        {
          FLASHMARK_SPAN_SIM("extract.erase", hal);
          if (opts.accelerated_erase)
            hal.erase_segment_auto(base);   // all cells read as 1s
          else
            hal.erase_segment(base);
        }
        {
          FLASHMARK_SPAN_SIM("extract.program", hal);
          hal.program_block(base, zeros);   // all cells read as 0s
          if (opts.verify_program) {
            // Read-back verification of the program step: any word still
            // holding erased bits missed (part of) its pulse — re-issue it
            // once. One pass only: a cell that stays 1 after the re-pulse is
            // stuck, and repeating would spin forever.
            for (std::size_t w = 0; w < n_words; ++w) {
              const Addr wa = base + static_cast<Addr>(w * g.word_bytes);
              if (hal.read_word(wa) != 0x0000) {
                hal.program_word(wa, 0x0000);
                ++result.reprogrammed_words;
              }
            }
          }
        }
        {
          FLASHMARK_SPAN_SIM("extract.partial_erase", hal);
          hal.partial_erase_segment(base, opts.t_pew);
        }
        FLASHMARK_SPAN_SIM("extract.analyze", hal);
        result.round_bits.push_back(
            analyze_segment(hal, base, opts.n_reads).bitmap);
        break;
      } catch (const TransientFlashError& e) {
        if (budget == 0)
          throw RetryExhaustedError("extract round", opts.max_retries + 1,
                                    e.what());
        --budget;
        ++result.retries;
        if (auto* col = obs::TraceCollector::current())
          col->instant("extract.retry");
      }
    }
  }

  if (opts.rounds == 1) {
    result.bits = result.round_bits.front();
  } else {
    result.bits = BitVec(n_cells);
    for (std::size_t i = 0; i < n_cells; ++i) {
      int ones = 0;
      for (const auto& rb : result.round_bits) ones += rb.get(i) ? 1 : 0;
      result.bits.set(i, ones * 2 > opts.rounds);
    }
  }

  if (opts.final_erase) {
    for (;;) {
      try {
        hal.erase_segment(base);
        break;
      } catch (const TransientFlashError& e) {
        // The bitmap is already recovered; only the cleanup erase failed.
        if (budget == 0)
          throw RetryExhaustedError("extract final erase",
                                    opts.max_retries + 1, e.what());
        --budget;
        ++result.retries;
      }
    }
  }
  result.elapsed = hal.now() - start;
  return result;
}

}  // namespace flashmark
