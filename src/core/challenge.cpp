#include "core/challenge.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/ecc.hpp"
#include "core/extract.hpp"

namespace flashmark {

namespace {

/// Keyed derivation stream: h(i) = SipHash-2-4(key, nonce || tenant || i).
/// Every drawn quantity consumes one index, so components are independent.
std::uint64_t draw(const SipHashKey& key, std::uint64_t nonce,
                   std::uint32_t tenant, std::uint32_t index) {
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i)
    buf[i] = static_cast<std::uint8_t>(nonce >> (8 * i));
  for (int i = 0; i < 4; ++i)
    buf[8 + i] = static_cast<std::uint8_t>(tenant >> (8 * i));
  for (int i = 0; i < 4; ++i)
    buf[12 + i] = static_cast<std::uint8_t>(index >> (8 * i));
  return siphash24(key, buf, sizeof buf);
}

std::size_t replica_payload_bits(const VerifyOptions& base) {
  const std::size_t signed_bits =
      kFieldsBits + (base.key ? kSignatureBits : 0);
  const std::size_t inner_bits =
      base.ecc ? hamming15_encoded_bits(signed_bits) : signed_bits;
  return inner_bits * 2;  // dual-rail
}

double region_zero_fraction(const BitVec& bits, std::size_t used_bits) {
  if (used_bits == 0 || used_bits > bits.size())
    throw std::invalid_argument(
        "challenge: extraction smaller than the watermark layout");
  const BitVec region = bits.slice(0, used_bits);
  return static_cast<double>(region.zero_count()) /
         static_cast<double>(region.size());
}

}  // namespace

void ChallengePolicy::validate(std::size_t n_replicas) const {
  if (subset_size == 0 || subset_size > n_replicas)
    throw std::invalid_argument(
        "ChallengePolicy: subset_size must be in [1, n_replicas]");
  if (decode_windows.empty())
    throw std::invalid_argument("ChallengePolicy: no decode windows");
  if (response_windows.empty())
    throw std::invalid_argument("ChallengePolicy: no response windows");
  if (expected_response_zero_fraction.size() != response_windows.size())
    throw std::invalid_argument(
        "ChallengePolicy: uncalibrated (expected response fractions missing; "
        "run calibrate_challenge_policy)");
  if (probe_segments.empty())
    throw std::invalid_argument("ChallengePolicy: no probe segments");
  if (!(fresh_erased_min > 0.0) || !(fresh_erased_ref > 0.0))
    throw std::invalid_argument(
        "ChallengePolicy: uncalibrated freshness band (a silent 0.0 "
        "threshold would accept everything)");
}

Challenge derive_challenge(const ChallengePolicy& policy,
                           std::size_t n_replicas, std::uint64_t nonce,
                           std::uint32_t tenant) {
  policy.validate(n_replicas);
  Challenge ch;
  ch.nonce = nonce;
  ch.tenant = tenant;

  std::uint32_t idx = 0;
  ch.decode_window_idx = static_cast<std::size_t>(
      draw(policy.challenge_key, nonce, tenant, idx++) %
      policy.decode_windows.size());
  ch.t_pew = policy.decode_windows[ch.decode_window_idx];
  ch.response_window_idx = static_cast<std::size_t>(
      draw(policy.challenge_key, nonce, tenant, idx++) %
      policy.response_windows.size());
  ch.t_resp = policy.response_windows[ch.response_window_idx];
  ch.probe_segment = policy.probe_segments[static_cast<std::size_t>(
      draw(policy.challenge_key, nonce, tenant, idx++) %
      policy.probe_segments.size())];

  // Keyed Fisher-Yates over the replica indices; the first subset_size
  // entries (sorted for a canonical wire form) are the interrogated copies.
  std::vector<std::size_t> order(n_replicas);
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = n_replicas - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(
        draw(policy.challenge_key, nonce, tenant, idx++) % (i + 1));
    std::swap(order[i], order[j]);
  }
  ch.replica_subset.assign(order.begin(),
                           order.begin() +
                               static_cast<std::ptrdiff_t>(policy.subset_size));
  std::sort(ch.replica_subset.begin(), ch.replica_subset.end());
  return ch;
}

double probe_erased_fraction(FlashHal& hal, std::size_t segment,
                             SimTime window) {
  const auto& g = hal.geometry();
  const Addr base = g.segment_base(segment);
  const std::size_t n_words = g.segment_bytes(segment) / g.word_bytes;
  const std::vector<std::uint16_t> zeros(n_words, 0x0000);
  hal.erase_segment_auto(base);
  hal.program_block(base, zeros);
  hal.partial_erase_segment(base, window);
  const BitVec bits = hal.read_segment(base, 1);
  hal.erase_segment_auto(base);  // leave the segment clean
  return static_cast<double>(bits.popcount()) /
         static_cast<double>(bits.size());
}

ChallengeReport judge_challenge_response(const BitVec& decode_bits,
                                         const BitVec& response_bits,
                                         double probe_erased,
                                         const VerifyOptions& base,
                                         const ChallengePolicy& policy,
                                         const Challenge& challenge) {
  policy.validate(base.n_replicas);
  if (challenge.replica_subset.size() != policy.subset_size)
    throw std::invalid_argument("challenge: subset size mismatch");
  if (challenge.response_window_idx >= policy.response_windows.size())
    throw std::invalid_argument("challenge: response window out of range");

  ChallengeReport rep;
  rep.challenge = challenge;
  rep.probe_erased_fraction = probe_erased;

  const std::size_t rbits = replica_payload_bits(base);
  const std::size_t full_used = rbits * base.n_replicas;
  if (full_used > decode_bits.size() || full_used > response_bits.size())
    throw std::invalid_argument(
        "challenge: extraction smaller than the watermark layout");

  // 1. Per-replica presence: the decode window sits in the flat region
  // (good cells read 1), so an unimprinted copy shows (almost) no zeros
  // while a genuinely stressed copy shows ~half. A partial clone fails the
  // moment the keyed subset names a copy it skipped.
  rep.replicas_present = true;
  for (const std::size_t r : challenge.replica_subset) {
    if (r >= base.n_replicas)
      throw std::invalid_argument("challenge: replica index out of range");
    const BitVec slice = decode_bits.slice(r * rbits, rbits);
    const double zf = static_cast<double>(slice.zero_count()) /
                      static_cast<double>(slice.size());
    if (zf < base.min_zero_fraction) rep.replicas_present = false;
  }

  // 2. Subset decode: judge ONLY the challenged copies (packed
  // back-to-back, filler erased) with the standard pipeline — signature
  // gate included, so the subset must carry the keyed watermark.
  BitVec reduced(decode_bits.size(), true);
  std::size_t out = 0;
  for (const std::size_t r : challenge.replica_subset) {
    for (std::size_t b = 0; b < rbits; ++b)
      reduced.set(out * rbits + b, decode_bits.get(r * rbits + b));
    ++out;
  }
  VerifyOptions subset_opts = base;
  subset_opts.n_replicas = policy.subset_size;
  subset_opts.tamper_pair_fraction = policy.subset_tamper_pair_fraction;
  const VerifyReport sub = judge_extracted_bits(reduced, subset_opts);
  rep.verdict = sub.verdict;
  rep.subset_zero_fraction = sub.zero_fraction;
  rep.subset_genuine = sub.verdict == Verdict::kGenuine;

  // 3. Anti-replay: the response-window extraction's zero fraction over the
  // full watermark region must match the golden expectation *for this
  // window*. A recording made under a different challenge answers with the
  // wrong fraction.
  rep.response_zero_fraction = region_zero_fraction(response_bits, full_used);
  rep.response_error = std::abs(
      rep.response_zero_fraction -
      policy.expected_response_zero_fraction[challenge.response_window_idx]);
  rep.response_consistent = rep.response_error <= policy.response_tol;

  // 4. Freshness: the keyed-random probe segment must erase like new.
  rep.probe_fresh = probe_erased >= policy.fresh_erased_min;

  rep.accepted = rep.subset_genuine && rep.replicas_present &&
                 rep.response_consistent && rep.probe_fresh;
  return rep;
}

ChallengeReport challenge_verify(FlashHal& hal, Addr wm_addr,
                                 const VerifyOptions& base,
                                 const ChallengePolicy& policy,
                                 std::uint64_t nonce, std::uint32_t tenant) {
  const Challenge ch = derive_challenge(policy, base.n_replicas, nonce,
                                        tenant);
  ExtractOptions eo;
  eo.n_reads = base.n_reads;
  eo.rounds = base.rounds;
  eo.accelerated_erase = base.accelerated_erase;
  eo.max_retries = base.max_retries;
  eo.verify_program = base.verify_program;
  eo.cancelled = base.cancelled;
  eo.t_pew = ch.t_pew;
  eo.n_reads = std::max(base.n_reads, policy.decode_n_reads);
  const ExtractResult decode = extract_flashmark(hal, wm_addr, eo);
  eo.n_reads = base.n_reads;
  eo.t_pew = ch.t_resp;
  const ExtractResult resp = extract_flashmark(hal, wm_addr, eo);
  const double probe =
      probe_erased_fraction(hal, ch.probe_segment, policy.probe_window);
  return judge_challenge_response(decode.bits, resp.bits, probe, base, policy,
                                  ch);
}

void calibrate_challenge_policy(FlashHal& golden, Addr wm_addr,
                                const VerifyOptions& base,
                                ChallengePolicy& policy) {
  if (policy.decode_windows.empty() || policy.response_windows.empty())
    throw std::invalid_argument(
        "calibrate_challenge_policy: empty window set");
  if (policy.probe_segments.empty())
    throw std::invalid_argument(
        "calibrate_challenge_policy: no probe segments");

  const std::size_t full_used = replica_payload_bits(base) * base.n_replicas;
  ExtractOptions eo;
  eo.n_reads = base.n_reads;
  eo.rounds = base.rounds;
  eo.accelerated_erase = base.accelerated_erase;

  // Resting fraction FIRST: the window extractions below restore the
  // segment from what they read, so a later raw read would echo the last
  // window instead of the at-rest programmed bitmap.
  const double resting = region_zero_fraction(
      golden.read_segment(wm_addr, 1), full_used);

  policy.expected_response_zero_fraction.clear();
  policy.expected_response_zero_fraction.reserve(
      policy.response_windows.size());
  for (const SimTime t : policy.response_windows) {
    eo.t_pew = t;
    const ExtractResult ext = extract_flashmark(golden, wm_addr, eo);
    policy.expected_response_zero_fraction.push_back(
        region_zero_fraction(ext.bits, full_used));
  }

  // Anti-replay soundness: a counterfeit that plays back the at-rest
  // programmed bitmap answers every window with the RESTING zero fraction,
  // so a response window whose golden expectation sits within the tolerance
  // band of that resting fraction cannot reject a recording. Refuse to
  // calibrate such a policy — it would pass every functional test while
  // silently failing its one security job (the 28 us lesson: at deep
  // imprints the transition tail flattens onto ~0.5 and the window stops
  // discriminating).
  for (std::size_t i = 0; i < policy.response_windows.size(); ++i) {
    const double gap =
        std::abs(policy.expected_response_zero_fraction[i] - resting);
    if (gap <= policy.response_tol)
      throw std::invalid_argument(
          "calibrate_challenge_policy: response window " + std::to_string(i) +
          " expectation is within response_tol of the resting bitmap "
          "fraction — a recorded extraction would pass; choose a window "
          "deeper in the transition");
  }

  const double fresh = probe_erased_fraction(golden, policy.probe_segments[0],
                                             policy.probe_window);
  if (!(fresh > 0.0))
    throw std::invalid_argument(
        "calibrate_challenge_policy: golden probe segment shows no erase "
        "response (degenerate calibration)");
  policy.fresh_erased_min = fresh * policy.fresh_guard;
  policy.fresh_erased_ref = fresh;
}

ChallengePolicy default_challenge_policy() {
  ChallengePolicy p;
  p.decode_windows = {SimTime::us(28), SimTime::us(29), SimTime::us(30)};
  // Early-transition windows only: by ~28 us a deep imprint's zero fraction
  // has decayed onto the resting bitmap's ~0.5, where the anti-replay check
  // loses its teeth (calibration rejects such a window outright).
  p.response_windows = {SimTime::us(20), SimTime::us(24)};
  p.probe_segments = {1, 2, 3, 4, 5, 6};
  return p;
}

}  // namespace flashmark
