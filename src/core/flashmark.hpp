// Umbrella header for the Flashmark library.
//
// Quick tour:
//   mcu/device.hpp        — simulate a chip (Device dev(cfg, die_seed))
//   core/watermark.hpp    — imprint_watermark / verify_watermark pipelines
//   core/characterize.hpp — Fig. 3 characterization & tPEW selection
//   core/imprint.hpp      — Fig. 7 low-level imprint
//   core/extract.hpp      — Fig. 8 low-level extraction
//
// See examples/quickstart.cpp for a ~50 line end-to-end walkthrough.
#pragma once

#include "core/analyze.hpp"
#include "core/characterize.hpp"
#include "core/codec.hpp"
#include "core/ecc.hpp"
#include "core/extended.hpp"
#include "core/extract.hpp"
#include "core/imprint.hpp"
#include "core/metrics.hpp"
#include "core/registry.hpp"
#include "core/replicate.hpp"
#include "core/signature.hpp"
#include "core/watermark.hpp"
