#include "core/analyze.hpp"

#include <stdexcept>
#include <vector>

namespace flashmark {

SegmentAnalysis analyze_segment(FlashHal& hal, Addr addr, int n_reads) {
  if (n_reads < 1 || n_reads % 2 == 0)
    throw std::invalid_argument("analyze_segment: n_reads must be odd >= 1");

  const auto& g = hal.geometry();
  const std::size_t seg = g.segment_index(addr);
  const Addr base = g.segment_base(seg);
  const std::size_t n_words = g.segment_bytes(seg) / g.word_bytes;
  const std::size_t bits_per_word = g.bits_per_word();

  SegmentAnalysis out;
  out.bitmap = BitVec(n_words * bits_per_word);

  std::vector<int> ones(bits_per_word);
  for (std::size_t w = 0; w < n_words; ++w) {
    const Addr wa = base + static_cast<Addr>(w * g.word_bytes);
    ones.assign(bits_per_word, 0);
    for (int r = 0; r < n_reads; ++r) {
      const std::uint16_t v = hal.read_word(wa);
      for (std::size_t b = 0; b < bits_per_word; ++b)
        ones[b] += static_cast<int>((v >> b) & 1u);
    }
    for (std::size_t b = 0; b < bits_per_word; ++b) {
      const bool erased = ones[b] * 2 > n_reads;
      out.bitmap.set(w * bits_per_word + b, erased);
      if (erased)
        ++out.cells_1;
      else
        ++out.cells_0;
    }
  }
  return out;
}

}  // namespace flashmark
