#include "core/analyze.hpp"

#include <stdexcept>

namespace flashmark {

SegmentAnalysis analyze_segment(FlashHal& hal, Addr addr, int n_reads) {
  if (n_reads < 1 || n_reads % 2 == 0)
    throw std::invalid_argument("analyze_segment: n_reads must be odd >= 1");

  SegmentAnalysis out;
  out.bitmap = hal.read_segment(addr, n_reads);
  out.cells_1 = out.bitmap.popcount();
  out.cells_0 = out.bitmap.size() - out.cells_1;
  return out;
}

}  // namespace flashmark
