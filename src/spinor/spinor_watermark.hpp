// Flashmark on a stand-alone SPI NOR chip, through the JEDEC command set
// only: WREN/erase/program/read plus the documented ERASE SUSPEND feature
// as the partial-erase primitive. The codec layers are shared with the NOR
// and NAND implementations.
//
// Timescale note: a ~45 ms sector erase is a pulse train with verify
// overhead; individual cells transition within the first few hundred us of
// accumulated field exposure. The chip model maps "train time delivered"
// to per-cell exposure linearly (see SpiNorChip::reset); the helpers below
// convert between the two so windows can be specified on the familiar
// cell-time axis.
#pragma once

#include <cstdint>

#include "core/imprint.hpp"
#include "core/watermark.hpp"
#include "spinor/spinor_chip.hpp"

namespace flashmark {

/// Train time that delivers `cell_us` of per-cell erase exposure.
SimTime spinor_train_time_for_cell_us(const SpiNorTiming& timing,
                                      const PhysParams& phys, double cell_us);

struct SpiNorImprintOptions {
  std::uint32_t npe = 60'000;
  ImprintStrategy strategy = ImprintStrategy::kLoop;
};

/// Imprint `pattern` (sector_cells bits) into `sector` via WREN + sector
/// erase + page programs per cycle.
ImprintReport imprint_flashmark_spinor(SpiNorChip& chip, std::size_t sector,
                                       const BitVec& pattern,
                                       const SpiNorImprintOptions& opts = {});

struct SpiNorExtractOptions {
  /// Partial-erase window on the per-cell axis (like the MCU's tPEW).
  double t_pew_cell_us = 190.0;
  int rounds = 1;  ///< odd
};

struct SpiNorExtractResult {
  BitVec bits;
  SimTime elapsed;
};

/// One extraction: erase, program all-zeros, start erase, SUSPEND after the
/// window, READ while suspended, RESET to abandon the erase.
SpiNorExtractResult extract_flashmark_spinor(
    SpiNorChip& chip, std::size_t sector,
    const SpiNorExtractOptions& opts = {});

/// Full pipeline reusing the NOR WatermarkSpec / VerifyOptions vocabulary
/// (VerifyOptions::t_pew is interpreted on the cell axis in us).
ImprintReport imprint_watermark_spinor(SpiNorChip& chip, std::size_t sector,
                                       const WatermarkSpec& spec);
VerifyReport verify_watermark_spinor(SpiNorChip& chip, std::size_t sector,
                                     const VerifyOptions& opts);

}  // namespace flashmark
