// Stand-alone SPI NOR flash chip (paper §V: "A number of stand-alone NOR
// flash memory chips have significantly faster erase and program operations
// and we expect that their imprint time will be significantly smaller").
//
// Models a W25Q/MX25-style serial NOR at the SPI transaction level:
//
//   * JEDEC command set: WREN (06h), WRDI (04h), RDSR (05h), READ (03h),
//     PAGE PROGRAM (02h), SECTOR ERASE 4KiB (20h), ERASE SUSPEND (75h),
//     ERASE RESUME (7Ah), RESET (66h+99h);
//   * write-enable-latch discipline: every program/erase must be preceded
//     by WREN, and the latch self-clears after the operation;
//   * status register with WIP (write in progress), WEL (write enable
//     latch) and SUS (suspend) bits;
//   * the Flashmark partial-erase primitive maps to a *documented* feature
//     of these parts: start a sector erase, ERASE SUSPEND after tPE, read
//     the sector while suspended, then RESET to abandon the erase.
//
// Cells reuse the floating-gate physics of src/phys with a parameter set
// for a modern 256-Mbit-class serial NOR.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "flash/timing.hpp"  // SimClock
#include "phys/cell.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace flashmark {

struct SpiNorGeometry {
  std::size_t n_sectors = 8192;      ///< 4 KiB sectors (32 MiB part)
  std::size_t sector_bytes = 4096;
  std::size_t page_bytes = 256;      ///< program granularity

  std::size_t sector_cells() const { return sector_bytes * 8; }
  std::size_t pages_per_sector() const { return sector_bytes / page_bytes; }
  std::size_t capacity_bytes() const { return n_sectors * sector_bytes; }
  bool valid_addr(std::uint32_t a) const { return a < capacity_bytes(); }

  void validate() const;

  static SpiNorGeometry w25q256();  ///< 32 MiB
  static SpiNorGeometry tiny();     ///< small part for unit tests
};

struct SpiNorTiming {
  SimTime t_sector_erase = SimTime::ms(45);   ///< tSE typ
  SimTime t_page_program = SimTime::us(700);  ///< tPP typ
  SimTime t_byte_xfer = SimTime::ns(80);      ///< ~100 MHz SPI, per byte
  SimTime t_suspend_latency = SimTime::us(20);///< tSUS

  static SpiNorTiming w25q_datasheet() { return SpiNorTiming{}; }
};

/// Physics calibration for a modern dense serial NOR: erase transitions in
/// the low hundreds of us, endurance ~100 K like the MSP430.
PhysParams spinor_phys();

// Status register bits.
namespace spinor_sr {
inline constexpr std::uint8_t kWip = 0x01;
inline constexpr std::uint8_t kWel = 0x02;
inline constexpr std::uint8_t kSus = 0x80;
}  // namespace spinor_sr

enum class SpiNorStatus : std::uint8_t {
  kOk = 0,
  kBusy,            ///< WIP set and the command is not allowed while busy
  kNotWriteEnabled, ///< WREN missing
  kInvalidAddress,
  kInvalidArgument,
  kNotSuspended,    ///< resume/abort without a suspended erase
  kNothingToResume,
};

const char* to_string(SpiNorStatus s);

class SpiNorChip {
 public:
  SpiNorChip(SpiNorGeometry geometry, SpiNorTiming timing, PhysParams phys,
             std::uint64_t die_seed, SimClock& clock);

  const SpiNorGeometry& geometry() const { return geom_; }
  const SpiNorTiming& timing() const { return timing_; }
  const PhysParams& phys() const { return phys_; }
  SimTime now() const { return clock_.now(); }

  // --- SPI commands --------------------------------------------------------
  void write_enable();   // 06h
  void write_disable();  // 04h
  std::uint8_t read_status();  // 05h (advances bus time; polls complete ops)

  /// 03h: read `n` bytes starting at `addr`. Allowed while an erase is
  /// suspended (that is the point); refused (kBusy) while WIP.
  SpiNorStatus read(std::uint32_t addr, std::size_t n,
                    std::vector<std::uint8_t>* out);

  /// 02h: program up to one page; data must not cross a page boundary.
  SpiNorStatus page_program(std::uint32_t addr,
                            const std::vector<std::uint8_t>& data);

  /// 20h: start a 4 KiB sector erase (asynchronous; poll RDSR.WIP).
  SpiNorStatus sector_erase(std::uint32_t addr);

  /// 75h: suspend the in-flight erase after the elapsed pulse time.
  SpiNorStatus erase_suspend();
  /// 7Ah: resume a suspended erase (continues to completion on next waits).
  SpiNorStatus erase_resume();
  /// 66h+99h: reset; abandons a suspended or in-flight erase, leaving the
  /// sector in its partially-erased state.
  void reset();

  /// Advance time; completes the in-flight operation at its deadline.
  void advance(SimTime dt);
  /// Poll RDSR until WIP clears.
  void wait_idle(SimTime poll = SimTime::us(10));

  bool busy() const { return op_.has_value() && !suspended_; }
  bool suspended() const { return suspended_; }

  // --- simulation-only ------------------------------------------------------
  /// Batch wear of one sector (see FlashArray::wear_segment).
  void wear_sector(std::size_t sector, double cycles,
                   const BitVec* pattern = nullptr);
  /// Noise-free erased count of a sector.
  std::size_t count_erased(std::size_t sector);
  const Cell& cell(std::size_t sector, std::size_t idx);

 private:
  enum class OpKind { kErase, kProgram };
  struct Op {
    OpKind kind;
    std::uint32_t addr;
    std::vector<std::uint8_t> data;
    SimTime pulse_done;   ///< accumulated pulse time before suspension
    SimTime started_at;
    SimTime deadline;
  };

  std::vector<Cell>& ensure_sector(std::size_t sector);
  void complete_op();
  /// Materialize the partial-erase state after `pulse` of delivered train.
  void apply_partial_erase(std::size_t sector, SimTime pulse);

  SpiNorGeometry geom_;
  SpiNorTiming timing_;
  PhysParams phys_;
  std::uint64_t die_seed_;
  SimClock& clock_;
  Rng noise_rng_;
  bool wel_ = false;
  bool suspended_ = false;
  std::optional<Op> op_;
  std::vector<std::unique_ptr<std::vector<Cell>>> sectors_;
};

}  // namespace flashmark
