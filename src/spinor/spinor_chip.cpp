#include "spinor/spinor_chip.hpp"

#include <algorithm>
#include <stdexcept>

namespace flashmark {

void SpiNorGeometry::validate() const {
  if (n_sectors == 0 || sector_bytes == 0 || page_bytes == 0)
    throw std::invalid_argument("SpiNorGeometry: zero dimension");
  if (sector_bytes % page_bytes != 0)
    throw std::invalid_argument("SpiNorGeometry: page must divide sector");
}

SpiNorGeometry SpiNorGeometry::w25q256() { return SpiNorGeometry{}; }

SpiNorGeometry SpiNorGeometry::tiny() {
  SpiNorGeometry g;
  g.n_sectors = 8;
  g.sector_bytes = 1024;
  g.page_bytes = 256;
  return g;
}

PhysParams spinor_phys() {
  PhysParams p = PhysParams::msp430_calibrated();
  // Dense serial NOR: per-cell erase transitions over ~100-500 us within
  // the ~45 ms sector erase (most of which is pulse train + verify
  // overhead), endurance ~100 K like the MCU's embedded NOR.
  p.tte_fresh_median_us = 150.0;
  p.tte_fresh_log_sigma = 0.10;
  p.read_noise_tau_us = 5.0;
  p.validate();
  return p;
}

const char* to_string(SpiNorStatus s) {
  switch (s) {
    case SpiNorStatus::kOk: return "ok";
    case SpiNorStatus::kBusy: return "busy";
    case SpiNorStatus::kNotWriteEnabled: return "not-write-enabled";
    case SpiNorStatus::kInvalidAddress: return "invalid-address";
    case SpiNorStatus::kInvalidArgument: return "invalid-argument";
    case SpiNorStatus::kNotSuspended: return "not-suspended";
    case SpiNorStatus::kNothingToResume: return "nothing-to-resume";
  }
  return "unknown";
}

SpiNorChip::SpiNorChip(SpiNorGeometry geometry, SpiNorTiming timing,
                       PhysParams phys, std::uint64_t die_seed,
                       SimClock& clock)
    : geom_(geometry),
      timing_(timing),
      phys_(phys),
      die_seed_(die_seed),
      clock_(clock),
      noise_rng_(die_seed ^ 0x5B14025ull),
      sectors_(geometry.n_sectors) {
  geom_.validate();
  phys_.validate();
}

std::vector<Cell>& SpiNorChip::ensure_sector(std::size_t sector) {
  if (sector >= sectors_.size())
    throw std::out_of_range("SpiNorChip: sector out of range");
  auto& slot = sectors_[sector];
  if (!slot) {
    std::uint64_t sm = die_seed_ ^ (0xD6E8FEB86659FD93ull * (sector + 1));
    Rng rng(splitmix64(sm));
    slot = std::make_unique<std::vector<Cell>>();
    slot->reserve(geom_.sector_cells());
    for (std::size_t i = 0; i < geom_.sector_cells(); ++i)
      slot->push_back(Cell::manufacture(phys_, rng));
  }
  return *slot;
}

void SpiNorChip::write_enable() {
  clock_.advance(timing_.t_byte_xfer);
  if (!busy()) wel_ = true;
}

void SpiNorChip::write_disable() {
  clock_.advance(timing_.t_byte_xfer);
  wel_ = false;
}

std::uint8_t SpiNorChip::read_status() {
  clock_.advance(timing_.t_byte_xfer * 2);
  if (op_ && !suspended_ && clock_.now() >= op_->deadline) complete_op();
  std::uint8_t sr = 0;
  if (busy()) sr |= spinor_sr::kWip;
  if (wel_) sr |= spinor_sr::kWel;
  if (suspended_) sr |= spinor_sr::kSus;
  return sr;
}

void SpiNorChip::advance(SimTime dt) {
  clock_.advance(dt);
  if (op_ && !suspended_ && clock_.now() >= op_->deadline) complete_op();
}

void SpiNorChip::wait_idle(SimTime poll) {
  while (read_status() & spinor_sr::kWip) clock_.advance(poll);
}

void SpiNorChip::complete_op() {
  const Op op = std::move(*op_);
  op_.reset();
  wel_ = false;  // latch self-clears
  const std::size_t sector = op.addr / geom_.sector_bytes;
  if (op.kind == OpKind::kErase) {
    for (auto& c : ensure_sector(sector)) c.full_erase(phys_);
  } else {
    auto& cells = ensure_sector(sector);
    const std::size_t base = (op.addr % geom_.sector_bytes) * 8;
    for (std::size_t i = 0; i < op.data.size(); ++i)
      for (int b = 0; b < 8; ++b)
        if (((op.data[i] >> b) & 1u) == 0)
          cells[base + i * 8 + static_cast<std::size_t>(b)].program(phys_);
  }
}

SpiNorStatus SpiNorChip::read(std::uint32_t addr, std::size_t n,
                              std::vector<std::uint8_t>* out) {
  if (out == nullptr) return SpiNorStatus::kInvalidArgument;
  if (busy()) return SpiNorStatus::kBusy;
  if (!geom_.valid_addr(addr) || !geom_.valid_addr(addr + n - 1) || n == 0)
    return SpiNorStatus::kInvalidAddress;
  // While suspended, reading the sector being erased is explicitly allowed
  // (and is how the watermark is extracted).
  clock_.advance(timing_.t_byte_xfer * static_cast<std::int64_t>(4 + n));
  out->assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t a = addr + static_cast<std::uint32_t>(i);
    auto& cells = ensure_sector(a / geom_.sector_bytes);
    const std::size_t base = (a % geom_.sector_bytes) * 8;
    std::uint8_t byte = 0;
    for (int b = 0; b < 8; ++b)
      if (cells[base + static_cast<std::size_t>(b)].read(phys_, noise_rng_))
        byte |= static_cast<std::uint8_t>(1u << b);
    (*out)[i] = byte;
  }
  return SpiNorStatus::kOk;
}

SpiNorStatus SpiNorChip::page_program(std::uint32_t addr,
                                      const std::vector<std::uint8_t>& data) {
  if (busy() || suspended_) return SpiNorStatus::kBusy;
  if (!wel_) return SpiNorStatus::kNotWriteEnabled;
  if (data.empty() || data.size() > geom_.page_bytes)
    return SpiNorStatus::kInvalidArgument;
  if (!geom_.valid_addr(addr)) return SpiNorStatus::kInvalidAddress;
  // Page programs must not wrap a page boundary.
  if (addr / geom_.page_bytes !=
      (addr + data.size() - 1) / geom_.page_bytes)
    return SpiNorStatus::kInvalidArgument;
  clock_.advance(timing_.t_byte_xfer *
                 static_cast<std::int64_t>(4 + data.size()));
  op_ = Op{OpKind::kProgram, addr, data, SimTime{}, clock_.now(),
           clock_.now() + timing_.t_page_program};
  return SpiNorStatus::kOk;
}

SpiNorStatus SpiNorChip::sector_erase(std::uint32_t addr) {
  if (busy() || suspended_) return SpiNorStatus::kBusy;
  if (!wel_) return SpiNorStatus::kNotWriteEnabled;
  if (!geom_.valid_addr(addr)) return SpiNorStatus::kInvalidAddress;
  clock_.advance(timing_.t_byte_xfer * 4);
  op_ = Op{OpKind::kErase, addr, {}, SimTime{}, clock_.now(),
           clock_.now() + timing_.t_sector_erase};
  return SpiNorStatus::kOk;
}

SpiNorStatus SpiNorChip::erase_suspend() {
  if (!op_ || op_->kind != OpKind::kErase || suspended_)
    return SpiNorStatus::kNotSuspended;
  clock_.advance(timing_.t_suspend_latency);
  // Accumulate the pulse time delivered so far (capped at the deadline).
  const SimTime ran =
      std::min(clock_.now(), op_->deadline) - op_->started_at;
  op_->pulse_done += ran > SimTime{} ? ran : SimTime{};
  suspended_ = true;
  // The array must reflect the partially-delivered train NOW — reads are
  // legal while suspended and must see the intermediate state.
  apply_partial_erase(op_->addr / geom_.sector_bytes, op_->pulse_done);
  return SpiNorStatus::kOk;
}

void SpiNorChip::apply_partial_erase(std::size_t sector, SimTime pulse) {
  // Map delivered train time to per-cell exposure: the nominal train fully
  // erases the sector, i.e. covers the slowest credible cell (~40x the
  // median transition time, including verify overhead).
  const double frac =
      std::clamp(pulse.as_us() / timing_.t_sector_erase.as_us(), 0.0, 1.0);
  const double cell_time_us = frac * phys_.tte_fresh_median_us * 40.0;
  for (auto& c : ensure_sector(sector))
    c.partial_erase(phys_, cell_time_us, noise_rng_);
}

SpiNorStatus SpiNorChip::erase_resume() {
  if (!op_ || !suspended_) return SpiNorStatus::kNothingToResume;
  clock_.advance(timing_.t_byte_xfer);
  suspended_ = false;
  op_->started_at = clock_.now();
  op_->deadline =
      clock_.now() + timing_.t_sector_erase - op_->pulse_done;
  return SpiNorStatus::kOk;
}

void SpiNorChip::reset() {
  clock_.advance(timing_.t_byte_xfer * 2);
  if (op_) {
    // Abandon the erase: the sector keeps the partial-erase state implied
    // by the pulse time delivered so far. The erase-dynamics mapping from
    // the full ~45 ms pulse train to per-cell transition time scales the
    // train down to the cell timescale: cells see pulse_frac * t_max_cell.
    const bool was_suspended = suspended_;
    const Op op = std::move(*op_);
    op_.reset();
    suspended_ = false;
    if (op.kind == OpKind::kErase && !was_suspended) {
      // Reset during an ACTIVE erase: apply the exposure delivered so far.
      // (A suspended erase already materialized its state at suspend time.)
      SimTime pulse = op.pulse_done;
      if (clock_.now() > op.started_at)
        pulse += std::min(clock_.now(), op.deadline) - op.started_at;
      apply_partial_erase(op.addr / geom_.sector_bytes, pulse);
    }
  }
  wel_ = false;
}

void SpiNorChip::wear_sector(std::size_t sector, double cycles,
                             const BitVec* pattern) {
  auto& cells = ensure_sector(sector);
  if (pattern && pattern->size() != cells.size())
    throw std::invalid_argument("wear_sector: pattern size mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const bool programmed = pattern ? !pattern->get(i) : true;
    cells[i].batch_stress(phys_, cycles, programmed,
                          /*end_programmed=*/pattern != nullptr);
  }
  const SimTime cycle =
      timing_.t_sector_erase +
      timing_.t_page_program *
          static_cast<std::int64_t>(geom_.pages_per_sector());
  clock_.advance(cycle * static_cast<std::int64_t>(cycles));
}

std::size_t SpiNorChip::count_erased(std::size_t sector) {
  const auto& cells = ensure_sector(sector);
  return static_cast<std::size_t>(std::count_if(
      cells.begin(), cells.end(), [](const Cell& c) { return c.erased(); }));
}

const Cell& SpiNorChip::cell(std::size_t sector, std::size_t idx) {
  const auto& cells = ensure_sector(sector);
  if (idx >= cells.size())
    throw std::out_of_range("SpiNorChip::cell: index out of range");
  return cells[idx];
}

}  // namespace flashmark
