#include "spinor/spinor_watermark.hpp"

#include <stdexcept>

namespace flashmark {

namespace {
void check(SpiNorStatus st, const char* op) {
  if (st != SpiNorStatus::kOk)
    throw std::runtime_error(std::string("spinor watermark: ") + op +
                             " failed: " + to_string(st));
}

/// Program a whole sector with `pattern` bits (bit i of the sector <->
/// bit i%8 of byte i/8), page by page.
void program_sector_pattern(SpiNorChip& chip, std::size_t sector,
                            const BitVec& pattern) {
  const auto& g = chip.geometry();
  const std::uint32_t base =
      static_cast<std::uint32_t>(sector * g.sector_bytes);
  const auto bytes = pattern.to_bytes();
  for (std::size_t page = 0; page < g.pages_per_sector(); ++page) {
    const std::size_t off = page * g.page_bytes;
    std::vector<std::uint8_t> data(bytes.begin() + static_cast<long>(off),
                                   bytes.begin() +
                                       static_cast<long>(off + g.page_bytes));
    chip.write_enable();
    check(chip.page_program(base + static_cast<std::uint32_t>(off), data),
          "page_program");
    chip.wait_idle();
  }
}
}  // namespace

SimTime spinor_train_time_for_cell_us(const SpiNorTiming& timing,
                                      const PhysParams& phys,
                                      double cell_us) {
  // Inverse of the mapping in SpiNorChip::reset():
  //   cell_us = (train / t_sector_erase) * median * 40
  const double frac = cell_us / (phys.tte_fresh_median_us * 40.0);
  return SimTime::from_us(timing.t_sector_erase.as_us() * frac);
}

ImprintReport imprint_flashmark_spinor(SpiNorChip& chip, std::size_t sector,
                                       const BitVec& pattern,
                                       const SpiNorImprintOptions& opts) {
  if (opts.npe == 0)
    throw std::invalid_argument("imprint_flashmark_spinor: npe must be > 0");
  if (pattern.size() != chip.geometry().sector_cells())
    throw std::invalid_argument(
        "imprint_flashmark_spinor: pattern size != sector cells");
  const std::uint32_t base = static_cast<std::uint32_t>(
      sector * chip.geometry().sector_bytes);

  const SimTime start = chip.now();
  ImprintReport report;
  report.npe = opts.npe;

  if (opts.strategy == ImprintStrategy::kBatchWear) {
    chip.wear_sector(sector, opts.npe, &pattern);
  } else {
    for (std::uint32_t cycle = 0; cycle < opts.npe; ++cycle) {
      chip.write_enable();
      check(chip.sector_erase(base), "sector_erase");
      chip.wait_idle(SimTime::us(100));
      program_sector_pattern(chip, sector, pattern);
    }
  }

  report.elapsed = chip.now() - start;
  report.mean_cycle_time =
      SimTime::ns(report.elapsed.as_ns() / static_cast<std::int64_t>(opts.npe));
  return report;
}

SpiNorExtractResult extract_flashmark_spinor(
    SpiNorChip& chip, std::size_t sector, const SpiNorExtractOptions& opts) {
  if (opts.rounds < 1 || opts.rounds % 2 == 0)
    throw std::invalid_argument("extract_flashmark_spinor: rounds must be odd");
  const auto& g = chip.geometry();
  const std::uint32_t base =
      static_cast<std::uint32_t>(sector * g.sector_bytes);
  const SimTime t_train = spinor_train_time_for_cell_us(
      chip.timing(), chip.phys(), opts.t_pew_cell_us);

  const SimTime start = chip.now();
  std::vector<BitVec> rounds;
  for (int r = 0; r < opts.rounds; ++r) {
    // Erase, program all-zeros.
    chip.write_enable();
    check(chip.sector_erase(base), "sector_erase");
    chip.wait_idle(SimTime::us(100));
    program_sector_pattern(chip, sector, BitVec(g.sector_cells()));
    // Partial erase: start, suspend after the window, read, abandon.
    chip.write_enable();
    check(chip.sector_erase(base), "sector_erase(partial)");
    chip.advance(t_train);
    check(chip.erase_suspend(), "erase_suspend");
    std::vector<std::uint8_t> bytes;
    check(chip.read(base, g.sector_bytes, &bytes), "read");
    chip.reset();
    rounds.push_back(BitVec::from_bytes(bytes, g.sector_cells()));
  }

  SpiNorExtractResult result;
  if (opts.rounds == 1) {
    result.bits = std::move(rounds.front());
  } else {
    result.bits = BitVec(g.sector_cells());
    for (std::size_t i = 0; i < result.bits.size(); ++i) {
      int ones = 0;
      for (const auto& rb : rounds) ones += rb.get(i) ? 1 : 0;
      result.bits.set(i, ones * 2 > opts.rounds);
    }
  }
  result.elapsed = chip.now() - start;
  return result;
}

ImprintReport imprint_watermark_spinor(SpiNorChip& chip, std::size_t sector,
                                       const WatermarkSpec& spec) {
  const EncodedWatermark enc =
      encode_watermark(spec, chip.geometry().sector_cells());
  SpiNorImprintOptions opts;
  opts.npe = spec.npe;
  opts.strategy = spec.strategy;
  return imprint_flashmark_spinor(chip, sector, enc.segment_pattern, opts);
}

VerifyReport verify_watermark_spinor(SpiNorChip& chip, std::size_t sector,
                                     const VerifyOptions& opts) {
  SpiNorExtractOptions eo;
  eo.t_pew_cell_us = opts.t_pew.as_us();
  eo.rounds = opts.rounds;
  const SpiNorExtractResult ext = extract_flashmark_spinor(chip, sector, eo);
  VerifyReport report = judge_extracted_bits(ext.bits, opts);
  report.extract_time = ext.elapsed;
  return report;
}

}  // namespace flashmark
