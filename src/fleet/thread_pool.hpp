// Fixed-size thread pool used by the fleet batch runner.
//
// Deliberately minimal: a bounded worker set draining a FIFO queue of
// type-erased jobs. Determinism of fleet results does NOT depend on this
// class — jobs write into pre-sized slots keyed by die index, so scheduling
// order is invisible in the output. The pool only decides *when* a job runs,
// never *what* it computes (see docs/REPRODUCIBILITY.md).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flashmark::fleet {

/// A fixed-size pool of worker threads draining a FIFO job queue.
///
/// Lifecycle: construct with a worker count, `submit()` any number of jobs,
/// `wait_idle()` to block until every submitted job has finished. The
/// destructor drains the queue before joining, so dropping the pool is also
/// a barrier.
class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);

  /// Joins all workers after the queue drains.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Jobs must not throw — wrap user code and capture errors
  /// into a result slot instead (ThreadPool terminates on a leaked
  /// exception, like an unhandled exception on any thread).
  void submit(std::function<void()> job);

  /// Block until the queue is empty and no worker is mid-job.
  void wait_idle();

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled on submit / shutdown
  std::condition_variable idle_cv_;   // signalled when a job finishes
  std::size_t in_flight_ = 0;         // jobs popped but not yet finished
  bool stop_ = false;
};

/// Resolve a user-requested thread count: 0 means "use the hardware", and a
/// hardware report of 0 (unknown) falls back to 1.
unsigned resolve_threads(unsigned requested);

}  // namespace flashmark::fleet
