// Fleet layer — batch simulation of many independent dies.
//
// The paper's counterfeit-detection use case is fleet-scale: a lot audit
// checks hundreds of chips, and every die is an independent `Device`. This
// subsystem industrializes that fan-out: a fixed-size thread pool runs one
// job per die, each die's RNG seed is derived deterministically from
// (master seed, die index), and results land in pre-sized slots indexed by
// die — never by completion order. Consequently batch results are bitwise
// identical for any `--threads` value, including 1 (the pre-fleet sequential
// behavior). The determinism contract is specified in
// docs/REPRODUCIBILITY.md; the architecture is sketched in DESIGN.md §8.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/extract.hpp"
#include "core/watermark.hpp"
#include "fault/fault.hpp"
#include "mcu/device.hpp"
#include "util/sim_time.hpp"

namespace flashmark::obs {
class MetricsRegistry;
}  // namespace flashmark::obs

namespace flashmark::store {
class DieStore;
}  // namespace flashmark::store

namespace flashmark::fleet {

/// Derive the RNG seed of die `die_index` in a fleet grown from
/// `master_seed`.
///
/// Scheme (pinned by regression_pins_test.cpp — do not change casually):
/// SplitMix64 expands the master seed into a 128-bit SipHash key, and the
/// little-endian die index is hashed under that key. Substreams are
/// decorrelated for any master seed (including 0 and adjacent integers), and
/// the derivation is identical on every platform — unlike std::hash, which
/// is implementation-defined and banned from simulation decisions.
std::uint64_t derive_die_seed(std::uint64_t master_seed,
                              std::uint64_t die_index);

/// Knobs for one batch run.
struct FleetOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). With 1 the
  /// jobs run inline on the calling thread (no pool), which reproduces the
  /// pre-fleet sequential behavior instruction-for-instruction.
  unsigned threads = 0;

  // --- watchdog (per-die supervision) -----------------------------------
  // Either limit > 0 arms a watchdog thread that polls every running die
  // and requests *cooperative* cancellation through its DieProgress token.
  // Cancelled dies abort at their next poll point (between P/E cycles /
  // extraction rounds), are classified kDeadlineExceeded / kStalled, and
  // never block the rest of the batch. Wall-clock limits are host
  // measurements: they decide only whether a die is cut off, never what a
  // surviving die computes, so the determinism contract is untouched
  // (docs/REPRODUCIBILITY.md).

  /// Soft wall-clock deadline per die job, in ms. 0 = no deadline.
  double die_deadline_ms = 0.0;
  /// Cancel a die whose job heartbeat has not advanced for this long (a
  /// stalled/hung die, e.g. livelocked retries). 0 = stall detection off.
  double die_stall_ms = 0.0;
  /// Watchdog poll interval, ms.
  double watchdog_poll_ms = 2.0;

  // --- observability (src/obs) ------------------------------------------
  // Parsed from the shared --trace-out / --metrics-out flags. The batch
  // APIs never read these; binaries hand them to obs::Exporter (one scoped
  // object around the run), which installs the trace collector / enables
  // the registry and writes the files on scope exit. Metrics exports obey
  // the byte-identity contract (docs/REPRODUCIBILITY.md §6); trace files
  // record wall clocks and are nondeterministic by design.

  /// Chrome trace_event JSON output path ("" = tracing off).
  std::string trace_out = {};
  /// Metrics registry export path, CSV or *.json ("" = metrics off).
  std::string metrics_out = {};
};

/// Why the watchdog cancelled a die.
enum class CancelCause : std::uint8_t { kNone = 0, kDeadline, kStalled };

/// Shared progress/cancellation token between one die's job and the fleet
/// watchdog. The job side heartbeats (`tick`) and polls
/// (`cancel_requested`); the watchdog side observes heartbeats and arms
/// `request_cancel`. All accesses are relaxed atomics: the token carries no
/// data the simulation reads, only supervision signals.
class DieProgress {
 public:
  /// Job side: record forward progress (one P/E cycle, one audit round...).
  void tick() { ticks_.fetch_add(1, std::memory_order_relaxed); }

  /// Job side: poll between units of work; abort via OperationCancelledError
  /// when true (the pipelines in this header do this automatically).
  bool cancel_requested() const {
    return cause_.load(std::memory_order_relaxed) != CancelCause::kNone;
  }

  CancelCause cause() const { return cause_.load(std::memory_order_relaxed); }

  /// Watchdog side: first cause wins. Returns true when this call installed
  /// the cause (the watchdog emits its trace cancel-event exactly once).
  bool request_cancel(CancelCause cause) {
    CancelCause none = CancelCause::kNone;
    return cause_.compare_exchange_strong(none, cause,
                                          std::memory_order_relaxed);
  }

  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  // Batch-runner bookkeeping (not for job code).
  void mark_started() {
    start_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count(),
                    std::memory_order_relaxed);
  }
  void mark_finished() { finished_.store(true, std::memory_order_relaxed); }
  bool started() const {
    return start_ns_.load(std::memory_order_relaxed) >= 0;
  }
  bool finished() const { return finished_.load(std::memory_order_relaxed); }
  std::int64_t start_ns() const {
    return start_ns_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<CancelCause> cause_{CancelCause::kNone};
  std::atomic<std::int64_t> start_ns_{-1};
  std::atomic<bool> finished_{false};
};

/// A flag a binary accepts on top of the shared fleet flags (so
/// parse_cli_options can reject everything else).
struct CliFlag {
  const char* name;         ///< e.g. "--lot"
  bool takes_value = false; ///< flag consumes the following argv entry
};

/// Parse the shared fleet flags out of argv (used by every bench/example
/// fan-out binary): `--threads N`, `--trace-out FILE`, `--metrics-out FILE`.
/// Arguments named in `extra` are skipped (the binary parses them itself);
/// anything else is rejected with a usage line on stderr and exit code 2 —
/// a typo like `--thread 8` must not silently run the whole sweep
/// single-config. Malformed `--threads` values also exit 2.
FleetOptions parse_cli_options(int argc, char** argv,
                               std::initializer_list<CliFlag> extra = {});

/// How healthy a die's job left it.
enum class DieHealth : std::uint8_t {
  kClean = 0,   ///< completed without any recovery activity
  kDegraded,    ///< completed, but needed retries / ECC / absorbed faults
  kFailed,      ///< job aborted; `reason` says why
};

/// Structured failure taxonomy for a failed die — fleet consumers branch on
/// this instead of parsing `error` strings.
enum class FailureReason : std::uint8_t {
  kNone = 0,          ///< not failed
  kPowerLoss,         ///< un-retried transient fault surfaced (power loss)
  kRetryExhausted,    ///< retry budget spent (RetryExhaustedError)
  kFlashProtocol,     ///< device refused a command (FlashHalError)
  kOther,             ///< any other exception
  kDeadlineExceeded,  ///< watchdog cancelled: per-die deadline blown
  kStalled,           ///< watchdog cancelled: heartbeat stopped advancing
  kShardLost,         ///< lot shard worker died before reporting (src/lot)
};

const char* to_string(DieHealth h);
const char* to_string(FailureReason r);

/// Per-die observability counters, filled by the job and aggregated by the
/// batch runner.
///
/// `wall_ms` is host wall time and therefore run-to-run noise; everything
/// else is a deterministic function of the die's job. Keeping the two kinds
/// in one row is safe because counters are write-only from the simulation's
/// point of view.
struct DieCounters {
  std::size_t die = 0;            ///< slot index (== die index)
  double wall_ms = 0.0;           ///< host wall time of this die's job
  double pe_cycles = 0.0;         ///< P/E cycles issued (wear + erase pulses)
  SimTime sim_time;               ///< simulated time advanced on the die
  std::uint64_t erase_ops = 0;    ///< erase pulses (full or partial)
  std::uint64_t program_ops = 0;  ///< program-word pulses
  std::uint64_t read_ops = 0;     ///< word reads

  // --- fault / recovery taxonomy ---------------------------------------
  std::uint64_t faults_injected = 0;  ///< fault events applied (FaultyHal)
  std::uint64_t retries = 0;          ///< transient-fault retries consumed
  std::uint64_t ecc_corrected = 0;    ///< Hamming blocks repaired
  DieHealth health = DieHealth::kClean;
  FailureReason reason = FailureReason::kNone;
  bool failed = false;            ///< == (health == kFailed); kept for CSV
  std::string error;              ///< human-readable failure detail

  /// Pull the controller op counters and the simulated clock from `dev`
  /// into this row. Call at the end of a job, after all device activity.
  void absorb(Device& dev);

  /// Pull the injection counters of a die's FaultyHal into this row (call
  /// alongside absorb when the job drove a decorated HAL).
  void absorb_faults(const fault::FaultyHal& hal);

  /// Fold a verification report's recovery activity into this row.
  void absorb_recovery(const VerifyReport& report);
};

/// Result of one batch run: per-die counter rows plus batch-level totals.
struct FleetReport {
  std::vector<DieCounters> dies;  ///< rows carrying their absolute die ids
  unsigned threads_used = 0;      ///< resolved worker count
  double wall_ms = 0.0;           ///< wall time of the whole batch; after
                                  ///< merge: max over the merged batches
  /// Accumulated batch wall time: run_dies sets it to wall_ms, merge() sums
  /// it. For concurrent shards (src/lot) this is the total compute span —
  /// the honest "CPU-ish" figure — while wall_ms stays the max-of-shards
  /// elapsed time. Merging shard reports used to sum wall_ms, overstating
  /// a lot run's wall time N-fold.
  double cpu_ms = 0.0;

  /// Sum of every per-die row (wall_ms sums too: total CPU-ish time, which
  /// exceeds `wall_ms` when threads overlap). `die` is set to dies.size().
  DieCounters totals() const;

  /// Number of failed slots.
  std::size_t failures() const;

  /// Number of degraded (completed-with-recovery) slots.
  std::size_t degraded() const;

  /// Fold another report into this one: rows are appended PRESERVING their
  /// absolute die ids (a shard report covering dies [1000, 1004) keeps
  /// those ids — re-basing them as `dies.size() + d.die` silently corrupted
  /// every non-zero-based range), wall_ms takes the max (merged batches are
  /// assumed concurrent; the sequential-total lives in cpu_ms), and cpu_ms
  /// sums. Used by the lot runner's shard fold and by benches that run
  /// several batches but want one summary.
  void merge(const FleetReport& other);

  /// Per-die rows as CSV (die,wall_ms,pe_cycles,sim_ms,erase_ops,
  /// program_ops,read_ops,faults,retries,ecc_corrected,health,reason,
  /// failed). Wall times make this nondeterministic — route it to stderr or
  /// a side file, never into result CSVs.
  std::string counters_csv() const;

  /// One-paragraph human summary (dies, threads, wall, aggregate ops).
  void print_summary(std::ostream& os) const;

  /// Fold the deterministic slice of this report into `reg` under
  /// `<prefix>`: per-die counter rows (`<prefix>.die.00007.erase_ops`, …,
  /// zero-padded so export order equals die order), per-die health/reason
  /// gauges, batch totals, and a sim-time histogram. Wall times are
  /// excluded on purpose — they would break the byte-identical-export
  /// contract (docs/REPRODUCIBILITY.md §6); they live in the trace instead.
  /// run_dies calls this automatically (prefix `fleet.bNNN`, one NNN per
  /// batch in issue order) when obs::metrics_enabled().
  void fold_into(obs::MetricsRegistry& reg, const std::string& prefix) const;
};

/// A per-die job: simulate die `die` and record its counters. Results must
/// be written to slots indexed by `die` only; jobs must not touch shared
/// mutable state (see docs/REPRODUCIBILITY.md).
using DieJob = std::function<void(std::size_t die, DieCounters& counters)>;

/// A supervised per-die job: like DieJob, plus the die's DieProgress token.
/// The job should `tick()` it on forward progress and either poll
/// `cancel_requested()` between units of work or wire it into the pipeline's
/// `cancelled` hook, aborting via OperationCancelledError.
using SupervisedDieJob = std::function<void(
    std::size_t die, DieCounters& counters, DieProgress& progress)>;

/// Run `job` for dies 0..n_dies-1 on a fixed-size thread pool.
///
/// A job that throws marks only its own slot failed (`failed`/`error`);
/// other slots are unaffected and the run completes. The returned report has
/// exactly `n_dies` rows in die order regardless of scheduling.
FleetReport run_dies(std::size_t n_dies, const DieJob& job,
                     const FleetOptions& opts = {});

/// Supervised overload: when `opts` arms a deadline or stall limit, a
/// watchdog thread polls every die's DieProgress and cancels offenders
/// cooperatively; a job aborted by its token is classified
/// kDeadlineExceeded / kStalled instead of kOther. Without limits this is
/// run_dies with an inert token (no watchdog thread is spawned).
FleetReport run_dies(std::size_t n_dies, const SupervisedDieJob& job,
                     const FleetOptions& opts = {});

/// Restart the `fleet.bNNN` metric-prefix sequence at b000. A fresh process
/// always starts at b000; tests that emulate several processes in one
/// (clearing the registry between runs) call this alongside
/// MetricsRegistry::clear() so re-runs reproduce the same metric names.
void reset_batch_counter();

/// A freshly manufactured fleet: dies[i] has seed
/// derive_die_seed(master_seed, i).
struct DieBatch {
  std::vector<std::unique_ptr<Device>> dies;
  FleetReport fleet;
};

/// Which dies of a batch misbehave, and how. The per-die FaultPlan is
/// derived from (config, die seed) inside the job, so a faulted batch obeys
/// the same thread-count-invariance contract as a healthy one.
struct FaultPolicy {
  fault::FaultConfig config;  ///< fault profile of the afflicted dies
  /// Predicate selecting afflicted dies; empty = every die (when the
  /// config has any fault enabled).
  std::function<bool(std::size_t die)> applies;

  /// True if `die` gets a FaultyHal under this policy.
  bool afflicts(std::size_t die) const {
    return config.any() && (!applies || applies(die));
  }
};

/// Crash recovery for a whole batch: when `dir` is non-empty, every die of
/// the batch runs as a journaled session under `dir` (imprint_batch uses
/// per-die subdirectories `<dir>/die-<n>`; audit_batch one shared
/// `<dir>/audit.fmj`). A re-run of the same batch with `resume = true` skips
/// or fast-forwards the dies the journal already recorded — a half-finished
/// 500-die lot continues instead of restarting. Journaled dies bypass any
/// FaultPolicy (the session layer owns the die's HAL end to end); combining
/// the two throws std::invalid_argument.
struct SessionPolicy {
  std::string dir;  ///< journal directory; empty = journaling off
  std::uint32_t checkpoint_every = 4096;  ///< imprint checkpoint cadence
  bool resume = false;  ///< continue `dir`'s journals instead of starting
  bool durable = true;  ///< fsync journal appends and checkpoints
  bool enabled() const { return !dir.empty(); }
};

/// Result slots of imprint_batch, indexed by die.
struct ImprintBatchResult {
  std::vector<std::unique_ptr<Device>> dies;  ///< the imprinted fleet
  std::vector<ImprintReport> reports;
  FleetReport fleet;
};

/// Manufacture `n_dies` dies from (config, master_seed) and imprint each
/// with the watermark returned by `spec_of(die)` at main segment
/// `segment`. One thread-pool job per die. With a `faults` policy the
/// afflicted dies are imprinted through a FaultyHal (their specs'
/// max_retries decides whether they survive power losses). With a `session`
/// policy each die journals its progress and an interrupted batch resumes
/// from its checkpoints (byte-identical to an uninterrupted run).
ImprintBatchResult imprint_batch(
    const DeviceConfig& config, std::uint64_t master_seed, std::size_t n_dies,
    std::size_t segment, const std::function<WatermarkSpec(std::size_t)>& spec_of,
    const FleetOptions& opts = {}, const FaultPolicy& faults = {},
    const SessionPolicy& session = {});

/// Result slots of extract_batch, indexed by die.
struct ExtractBatchResult {
  std::vector<ExtractResult> results;
  FleetReport fleet;
};

/// Extract the watermark bitmap of main segment `segment` on every die of
/// an existing fleet. Each job touches only its own Device. Afflicted dies
/// (per `faults`) extract through a FaultyHal.
ExtractBatchResult extract_batch(
    const std::vector<std::unique_ptr<Device>>& dies, std::size_t segment,
    const ExtractOptions& eo, const FleetOptions& opts = {},
    const FaultPolicy& faults = {});

/// Result slots of audit_batch, indexed by die.
struct AuditBatchResult {
  std::vector<VerifyReport> reports;
  FleetReport fleet;
};

/// Run the full integrator-side verification pipeline on every die of an
/// existing fleet (the incoming-inspection hot path of a lot audit).
///
/// With a `faults` policy the afflicted dies are audited through a
/// FaultyHal; the batch never aborts on their account. Each row of
/// `fleet.dies` classifies its die: kClean (no recovery activity),
/// kDegraded (verified, but retries / ECC corrections / injected faults
/// were involved), or kFailed with a structured FailureReason (e.g.
/// kRetryExhausted when the retry budget ran out).
/// With a `session` policy every completed die's verdict is appended to
/// `<dir>/audit.fmj`; a resumed audit restores recorded verdicts without
/// re-reading those dies (their counter rows stay zero, health kClean —
/// the work happened in the crashed process).
AuditBatchResult audit_batch(const std::vector<std::unique_ptr<Device>>& dies,
                             std::size_t segment, const VerifyOptions& vo,
                             const FleetOptions& opts = {},
                             const FaultPolicy& faults = {},
                             const SessionPolicy& session = {});

// --- store-backed (out-of-core) batches ----------------------------------
// The overloads below run the same per-die pipelines against a DieStore
// (src/store/die_store.hpp) instead of an in-memory fleet vector: each job
// pins its die for the duration of the job (loading it from its die file or
// manufacturing it from seed on a miss) and releases it afterwards, so a
// 10^6-die population runs with only `max_resident` dies in RAM. Results
// are byte-identical to the all-resident overloads at any --threads value —
// residency and eviction order affect only I/O, never die state
// (docs/REPRODUCIBILITY.md §8). Store counters (hits/misses/evictions) are
// folded into the metrics registry under `store.*` when metrics are on;
// they are scheduling-dependent and outside the §6 byte-identity contract.
// Dirty dies remain in the store after the batch — call
// DieStore::flush_all() to persist the population.

/// Imprint dies 0..n_dies-1 of the store's population. Unlike the in-memory
/// overload the imprinted Devices stay in the store (`dies` is empty in the
/// result); reports land in die-indexed slots as usual.
ImprintBatchResult imprint_batch(
    store::DieStore& dies, std::size_t n_dies, std::size_t segment,
    const std::function<WatermarkSpec(std::size_t)>& spec_of,
    const FleetOptions& opts = {});

/// Extract the watermark bitmap of segment `segment` on dies 0..n_dies-1 of
/// the store's population.
ExtractBatchResult extract_batch(store::DieStore& dies, std::size_t n_dies,
                                 std::size_t segment, const ExtractOptions& eo,
                                 const FleetOptions& opts = {});

/// Audit dies 0..n_dies-1 of the store's population. With a `faults` policy
/// the afflicted dies are audited through a FaultyHal exactly like the
/// in-memory overload — the fault plan derives from the die seed, not from
/// residency, so a store-backed faulted audit is byte-identical to an
/// all-resident one (the chaos test in tests/store_test.cpp holds it to
/// that).
AuditBatchResult audit_batch(store::DieStore& dies, std::size_t n_dies,
                             std::size_t segment, const VerifyOptions& vo,
                             const FleetOptions& opts = {},
                             const FaultPolicy& faults = {});

/// Result of pulse_sweep_batch. `erased_counts[die][k]` is the noise-free
/// number of erased cells in the swept segment of `die` after pulse k of
/// the schedule has run (on top of pulses 0..k-1). Erase transitions are
/// one-way, so each die's counts are monotone in k (paper Fig. 4 style).
struct PulseSweepResult {
  std::vector<std::vector<std::size_t>> erased_counts;
  FleetReport fleet;
};

/// Erase-time characterization sweep over dies 0..n_dies-1 of the store's
/// population: each die's segment is conditioned (full erase, then every
/// word programmed to 0x0000 so all cells start programmed), then the
/// partial-erase pulses of `t_pe_us` are applied in order, recording the
/// erased-cell count after every pulse.
///
/// Dies run in cohorts of `interleave`: one fleet job pins a contiguous
/// range of `interleave` dies and drives each pulse through
/// FlashArray::partial_erase_many, so the batched kernels fill vector
/// lanes with cells from all of the cohort's dies at once
/// (kernels::erase_pulse_segments). `erased_counts` is byte-identical at
/// any interleave width and any --threads value: partial_erase_many is
/// byte-identical to the sequential per-die loop by contract, cohorts
/// partition the die range disjointly, and every die draws from its own
/// RNG streams.
///
/// Reporting caveats: `fleet.dies` rows are per *cohort*, labeled by the
/// cohort's first die index. The sweep runs at the array (physics) layer,
/// below the controller, so the simulated clock does not advance and the
/// op counters in each row are accounted directly (one full erase + one
/// whole-segment program + |t_pe_us| partial pulses per die).
PulseSweepResult pulse_sweep_batch(store::DieStore& dies, std::size_t n_dies,
                                   std::size_t segment,
                                   const std::vector<double>& t_pe_us,
                                   const FleetOptions& opts = {},
                                   std::size_t interleave = 8);

}  // namespace flashmark::fleet
