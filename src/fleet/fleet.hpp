// Fleet layer — batch simulation of many independent dies.
//
// The paper's counterfeit-detection use case is fleet-scale: a lot audit
// checks hundreds of chips, and every die is an independent `Device`. This
// subsystem industrializes that fan-out: a fixed-size thread pool runs one
// job per die, each die's RNG seed is derived deterministically from
// (master seed, die index), and results land in pre-sized slots indexed by
// die — never by completion order. Consequently batch results are bitwise
// identical for any `--threads` value, including 1 (the pre-fleet sequential
// behavior). The determinism contract is specified in
// docs/REPRODUCIBILITY.md; the architecture is sketched in DESIGN.md §8.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/extract.hpp"
#include "core/watermark.hpp"
#include "mcu/device.hpp"
#include "util/sim_time.hpp"

namespace flashmark::fleet {

/// Derive the RNG seed of die `die_index` in a fleet grown from
/// `master_seed`.
///
/// Scheme (pinned by regression_pins_test.cpp — do not change casually):
/// SplitMix64 expands the master seed into a 128-bit SipHash key, and the
/// little-endian die index is hashed under that key. Substreams are
/// decorrelated for any master seed (including 0 and adjacent integers), and
/// the derivation is identical on every platform — unlike std::hash, which
/// is implementation-defined and banned from simulation decisions.
std::uint64_t derive_die_seed(std::uint64_t master_seed,
                              std::uint64_t die_index);

/// Knobs for one batch run.
struct FleetOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). With 1 the
  /// jobs run inline on the calling thread (no pool), which reproduces the
  /// pre-fleet sequential behavior instruction-for-instruction.
  unsigned threads = 0;
};

/// Parse a `--threads N` flag out of argv (shared by the bench/example
/// binaries). Returns defaults when the flag is absent; exits with a message
/// on a malformed value.
FleetOptions parse_cli_options(int argc, char** argv);

/// Per-die observability counters, filled by the job and aggregated by the
/// batch runner.
///
/// `wall_ms` is host wall time and therefore run-to-run noise; everything
/// else is a deterministic function of the die's job. Keeping the two kinds
/// in one row is safe because counters are write-only from the simulation's
/// point of view.
struct DieCounters {
  std::size_t die = 0;            ///< slot index (== die index)
  double wall_ms = 0.0;           ///< host wall time of this die's job
  double pe_cycles = 0.0;         ///< P/E cycles issued (wear + erase pulses)
  SimTime sim_time;               ///< simulated time advanced on the die
  std::uint64_t erase_ops = 0;    ///< erase pulses (full or partial)
  std::uint64_t program_ops = 0;  ///< program-word pulses
  std::uint64_t read_ops = 0;     ///< word reads
  bool failed = false;            ///< job threw; `error` holds the message
  std::string error;

  /// Pull the controller op counters and the simulated clock from `dev`
  /// into this row. Call at the end of a job, after all device activity.
  void absorb(Device& dev);
};

/// Result of one batch run: per-die counter rows plus batch-level totals.
struct FleetReport {
  std::vector<DieCounters> dies;  ///< indexed by die, pre-sized by run_dies
  unsigned threads_used = 0;      ///< resolved worker count
  double wall_ms = 0.0;           ///< wall time of the whole batch

  /// Sum of every per-die row (wall_ms sums too: total CPU-ish time, which
  /// exceeds `wall_ms` when threads overlap). `die` is set to dies.size().
  DieCounters totals() const;

  /// Number of failed slots.
  std::size_t failures() const;

  /// Merge another report's rows and wall time into this one (used by
  /// benches that run several batches but want one summary).
  void merge(const FleetReport& other);

  /// Per-die rows as CSV (die,wall_ms,pe_cycles,sim_ms,erase_ops,
  /// program_ops,read_ops,failed). Wall times make this nondeterministic —
  /// route it to stderr or a side file, never into result CSVs.
  std::string counters_csv() const;

  /// One-paragraph human summary (dies, threads, wall, aggregate ops).
  void print_summary(std::ostream& os) const;
};

/// A per-die job: simulate die `die` and record its counters. Results must
/// be written to slots indexed by `die` only; jobs must not touch shared
/// mutable state (see docs/REPRODUCIBILITY.md).
using DieJob = std::function<void(std::size_t die, DieCounters& counters)>;

/// Run `job` for dies 0..n_dies-1 on a fixed-size thread pool.
///
/// A job that throws marks only its own slot failed (`failed`/`error`);
/// other slots are unaffected and the run completes. The returned report has
/// exactly `n_dies` rows in die order regardless of scheduling.
FleetReport run_dies(std::size_t n_dies, const DieJob& job,
                     const FleetOptions& opts = {});

/// A freshly manufactured fleet: dies[i] has seed
/// derive_die_seed(master_seed, i).
struct DieBatch {
  std::vector<std::unique_ptr<Device>> dies;
  FleetReport fleet;
};

/// Result slots of imprint_batch, indexed by die.
struct ImprintBatchResult {
  std::vector<std::unique_ptr<Device>> dies;  ///< the imprinted fleet
  std::vector<ImprintReport> reports;
  FleetReport fleet;
};

/// Manufacture `n_dies` dies from (config, master_seed) and imprint each
/// with the watermark returned by `spec_of(die)` at main segment
/// `segment`. One thread-pool job per die.
ImprintBatchResult imprint_batch(
    const DeviceConfig& config, std::uint64_t master_seed, std::size_t n_dies,
    std::size_t segment, const std::function<WatermarkSpec(std::size_t)>& spec_of,
    const FleetOptions& opts = {});

/// Result slots of extract_batch, indexed by die.
struct ExtractBatchResult {
  std::vector<ExtractResult> results;
  FleetReport fleet;
};

/// Extract the watermark bitmap of main segment `segment` on every die of
/// an existing fleet. Each job touches only its own Device.
ExtractBatchResult extract_batch(
    const std::vector<std::unique_ptr<Device>>& dies, std::size_t segment,
    const ExtractOptions& eo, const FleetOptions& opts = {});

/// Result slots of audit_batch, indexed by die.
struct AuditBatchResult {
  std::vector<VerifyReport> reports;
  FleetReport fleet;
};

/// Run the full integrator-side verification pipeline on every die of an
/// existing fleet (the incoming-inspection hot path of a lot audit).
AuditBatchResult audit_batch(const std::vector<std::unique_ptr<Device>>& dies,
                             std::size_t segment, const VerifyOptions& vo,
                             const FleetOptions& opts = {});

}  // namespace flashmark::fleet
