#include "fleet/thread_pool.hpp"

#include <utility>

namespace flashmark::fleet {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  // The notify stays under the lock on purpose: a worker may dequeue and
  // finish this job — and the pool's owner may then observe completion and
  // destroy the pool — before submit() returns. Holding mu_ across the
  // signal means any such destruction (whose ~ThreadPool/wait_idle must
  // take mu_ and can only see the pushed job's completion after this
  // critical section) happens-after the signal, so the condvar is never
  // destroyed mid-notify.
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(job));
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace flashmark::fleet
