#include "fleet/fleet.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "fleet/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "session/resumable.hpp"
#include "store/die_store.hpp"
#include "util/fsio.hpp"
#include "util/rng.hpp"
#include "util/siphash.hpp"

namespace flashmark::fleet {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::int64_t ms_to_ns(double ms) { return static_cast<std::int64_t>(ms * 1e6); }

}  // namespace

std::uint64_t derive_die_seed(std::uint64_t master_seed,
                              std::uint64_t die_index) {
  // Expand the master seed into a SipHash key, then MAC the die index. Both
  // primitives are the repo's own bit-exact implementations, so the mapping
  // (master, die) -> seed is identical on every platform and compiler.
  std::uint64_t sm = master_seed;
  const SipHashKey key{splitmix64(sm), splitmix64(sm)};
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>(die_index >> (8 * i));
  return siphash24(key, bytes, sizeof bytes);
}

const char* to_string(DieHealth h) {
  switch (h) {
    case DieHealth::kClean: return "clean";
    case DieHealth::kDegraded: return "degraded";
    case DieHealth::kFailed: return "failed";
  }
  return "unknown";
}

const char* to_string(FailureReason r) {
  switch (r) {
    case FailureReason::kNone: return "none";
    case FailureReason::kPowerLoss: return "power-loss";
    case FailureReason::kRetryExhausted: return "retry-exhausted";
    case FailureReason::kFlashProtocol: return "flash-protocol";
    case FailureReason::kOther: return "other";
    case FailureReason::kDeadlineExceeded: return "deadline-exceeded";
    case FailureReason::kStalled: return "stalled";
    case FailureReason::kShardLost: return "shard-lost";
  }
  return "unknown";
}

namespace {

[[noreturn]] void cli_usage_exit(const char* argv0,
                                 std::initializer_list<CliFlag> extra) {
  std::cerr << "usage: " << argv0
            << " [--threads N] [--trace-out FILE] [--metrics-out FILE]";
  for (const CliFlag& f : extra)
    std::cerr << " [" << f.name << (f.takes_value ? " V]" : "]");
  std::cerr << "\n";
  std::exit(2);
}

}  // namespace

FleetOptions parse_cli_options(int argc, char** argv,
                               std::initializer_list<CliFlag> extra) {
  FleetOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--threads requires a value\n";
        std::exit(2);
      }
      char* end = nullptr;
      const long v = std::strtol(argv[i + 1], &end, 10);
      if (end == argv[i + 1] || *end != '\0' || v < 0) {
        std::cerr << "--threads: invalid value '" << argv[i + 1] << "'\n";
        std::exit(2);
      }
      opts.threads = static_cast<unsigned>(v);
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--trace-out") == 0 ||
        std::strcmp(argv[i], "--metrics-out") == 0) {
      if (i + 1 >= argc) {
        std::cerr << argv[i] << " requires a value\n";
        std::exit(2);
      }
      (argv[i][2] == 't' ? opts.trace_out : opts.metrics_out) = argv[i + 1];
      ++i;
      continue;
    }
    // Flags the binary parses itself are skipped here (with their value);
    // everything else is a typo and must not silently run a default sweep.
    bool known = false;
    for (const CliFlag& f : extra) {
      if (std::strcmp(argv[i], f.name) == 0) {
        known = true;
        if (f.takes_value) {
          if (i + 1 >= argc) {
            std::cerr << f.name << " requires a value\n";
            std::exit(2);
          }
          ++i;
        }
        break;
      }
    }
    if (!known) {
      std::cerr << "unknown argument '" << argv[i] << "'\n";
      cli_usage_exit(argv[0], extra);
    }
  }
  return opts;
}

void DieCounters::absorb(Device& dev) {
  const FlashOpCounters& c = dev.controller().op_counters();
  erase_ops += c.erase_ops;
  program_ops += c.program_ops;
  read_ops += c.read_ops;
  // Every erase pulse heads one P/E cycle of the Fig. 7 loop; batch wear
  // accounts its cycles directly.
  pe_cycles += c.wear_pe_cycles + static_cast<double>(c.erase_ops);
  sim_time += dev.clock().now();
}

void DieCounters::absorb_faults(const fault::FaultyHal& hal) {
  faults_injected += hal.counters().events();
}

void DieCounters::absorb_recovery(const VerifyReport& report) {
  retries += report.retries;
  ecc_corrected += report.ecc_corrected_blocks;
}

DieCounters FleetReport::totals() const {
  DieCounters t;
  t.die = dies.size();
  for (const auto& d : dies) {
    t.wall_ms += d.wall_ms;
    t.pe_cycles += d.pe_cycles;
    t.sim_time += d.sim_time;
    t.erase_ops += d.erase_ops;
    t.program_ops += d.program_ops;
    t.read_ops += d.read_ops;
    t.faults_injected += d.faults_injected;
    t.retries += d.retries;
    t.ecc_corrected += d.ecc_corrected;
    if (d.failed) t.failed = true;
    // Worst-of across the batch; the enum is ordered clean < degraded <
    // failed. The first failure's reason wins (die order, deterministic).
    if (d.health > t.health) t.health = d.health;
    if (t.reason == FailureReason::kNone && d.reason != FailureReason::kNone)
      t.reason = d.reason;
  }
  return t;
}

std::size_t FleetReport::failures() const {
  std::size_t n = 0;
  for (const auto& d : dies)
    if (d.failed) ++n;
  return n;
}

std::size_t FleetReport::degraded() const {
  std::size_t n = 0;
  for (const auto& d : dies)
    if (d.health == DieHealth::kDegraded) ++n;
  return n;
}

void FleetReport::merge(const FleetReport& other) {
  // Rows keep their absolute die ids: a shard report for dies [1000, 1004)
  // must fold in as dies 1000..1003, not as dies.size()+0..3. Callers that
  // merge same-ranged batches (sequential sweeps re-running dies 0..n-1)
  // get duplicate ids, which is what those rows mean — same die, new batch.
  dies.insert(dies.end(), other.dies.begin(), other.dies.end());
  // Merged batches are treated as concurrent (the sharded case this fold
  // exists for): elapsed time is the slowest batch, total compute is the
  // sum. Sequential-sweep callers read their true elapsed time off cpu_ms.
  wall_ms = std::max(wall_ms, other.wall_ms);
  cpu_ms += other.cpu_ms;
  if (threads_used == 0) threads_used = other.threads_used;
}

std::string FleetReport::counters_csv() const {
  std::ostringstream os;
  os << "die,wall_ms,pe_cycles,sim_ms,erase_ops,program_ops,read_ops,"
        "faults,retries,ecc_corrected,health,reason,failed\n";
  for (const auto& d : dies) {
    os << d.die << ',' << d.wall_ms << ',' << d.pe_cycles << ','
       << d.sim_time.as_ms() << ',' << d.erase_ops << ',' << d.program_ops
       << ',' << d.read_ops << ',' << d.faults_injected << ',' << d.retries
       << ',' << d.ecc_corrected << ',' << to_string(d.health) << ','
       << to_string(d.reason) << ',' << (d.failed ? 1 : 0) << '\n';
  }
  return os.str();
}

void FleetReport::fold_into(obs::MetricsRegistry& reg,
                            const std::string& prefix) const {
  auto fold_row = [&reg](const std::string& base, const DieCounters& d) {
    reg.counter(base + ".erase_ops").add(d.erase_ops);
    reg.counter(base + ".program_ops").add(d.program_ops);
    reg.counter(base + ".read_ops").add(d.read_ops);
    reg.counter(base + ".faults_injected").add(d.faults_injected);
    reg.counter(base + ".retries").add(d.retries);
    reg.counter(base + ".ecc_corrected").add(d.ecc_corrected);
    reg.counter(base + ".sim_ns")
        .add(static_cast<std::uint64_t>(d.sim_time.as_ns()));
    reg.gauge(base + ".pe_cycles").set(d.pe_cycles);
    reg.gauge(base + ".health")
        .set(static_cast<double>(static_cast<std::uint8_t>(d.health)));
    reg.gauge(base + ".reason")
        .set(static_cast<double>(static_cast<std::uint8_t>(d.reason)));
  };
  // Histogram of per-die simulated time: range covers everything from an
  // all-restored resume (0) to a paper-scale 70k-cycle imprint (~0.5 h of
  // simulated time per die); out-of-range dies land in overflow, counted.
  auto& sim_hist =
      reg.histogram(prefix + ".die_sim_ms", 0.0, 4.0e6, 64);
  for (const auto& d : dies) {
    fold_row(prefix + "." + obs::die_key(d.die), d);
    sim_hist.add(d.sim_time.as_ms());
  }
  fold_row(prefix + ".total", totals());
  reg.counter(prefix + ".dies").add(dies.size());
  reg.counter(prefix + ".failures").add(failures());
  reg.counter(prefix + ".degraded").add(degraded());
}

void FleetReport::print_summary(std::ostream& os) const {
  const DieCounters t = totals();
  os << "[fleet] " << dies.size() << " dies on " << threads_used
     << " thread(s): wall " << wall_ms << " ms (cpu " << cpu_ms
     << " ms, sum of jobs " << t.wall_ms << " ms), " << t.pe_cycles << " P/E cycles, " << t.erase_ops
     << " erase / " << t.program_ops << " program / " << t.read_ops
     << " read ops, " << t.sim_time.as_sec() << " s simulated";
  if (t.faults_injected)
    os << ", " << t.faults_injected << " faults injected (" << t.retries
       << " retries, " << t.ecc_corrected << " ECC fixes)";
  if (const std::size_t d = degraded()) os << ", " << d << " degraded";
  if (const std::size_t f = failures()) os << ", " << f << " FAILED";
  os << "\n";
}

namespace {

/// Sequence number behind the `fleet.bNNN` metric prefixes (see
/// reset_batch_counter in fleet.hpp).
std::atomic<unsigned> g_batch_seq{0};

/// The fleet watchdog: a single thread polling every die's DieProgress
/// token while the batch runs, arming cooperative cancellation on dies that
/// blew their deadline or stopped heartbeating. It never touches die state —
/// only the tokens — so supervision is data-race-free by construction (the
/// tokens are relaxed atomics) and cannot perturb the simulation of
/// surviving dies. Construction starts the thread; destruction joins it.
class Watchdog {
 public:
  Watchdog(std::vector<DieProgress>& tokens, const FleetOptions& opts)
      : tokens_(tokens),
        opts_(opts),
        last_ticks_(tokens.size(), 0),
        last_change_ns_(tokens.size(), -1),
        thread_([this] { run(); }) {}

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    const double poll_ms =
        opts_.watchdog_poll_ms > 0.0 ? opts_.watchdog_poll_ms : 2.0;
    const auto poll = std::chrono::duration<double, std::milli>(poll_ms);
    std::unique_lock<std::mutex> lk(mu_);
    while (!cv_.wait_for(lk, poll, [this] { return done_; })) {
      const std::int64_t now = now_ns();
      for (std::size_t i = 0; i < tokens_.size(); ++i) {
        DieProgress& t = tokens_[i];
        if (!t.started() || t.finished()) continue;
        if (opts_.die_deadline_ms > 0.0 &&
            now - t.start_ns() > ms_to_ns(opts_.die_deadline_ms)) {
          if (t.request_cancel(CancelCause::kDeadline))
            if (auto* col = obs::TraceCollector::current())
              col->instant("watchdog.cancel.deadline", i);
          continue;
        }
        if (opts_.die_stall_ms > 0.0) {
          const std::uint64_t ticks = t.ticks();
          if (last_change_ns_[i] < 0 || ticks != last_ticks_[i]) {
            last_ticks_[i] = ticks;
            last_change_ns_[i] = now;
          } else if (now - last_change_ns_[i] > ms_to_ns(opts_.die_stall_ms)) {
            if (t.request_cancel(CancelCause::kStalled))
              if (auto* col = obs::TraceCollector::current())
                col->instant("watchdog.cancel.stalled", i);
          }
        }
      }
    }
  }

  std::vector<DieProgress>& tokens_;
  const FleetOptions& opts_;
  std::vector<std::uint64_t> last_ticks_;   // watchdog-thread-local
  std::vector<std::int64_t> last_change_ns_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

}  // namespace

FleetReport run_dies(std::size_t n_dies, const SupervisedDieJob& job,
                     const FleetOptions& opts) {
  FleetReport report;
  report.dies.resize(n_dies);
  for (std::size_t i = 0; i < n_dies; ++i) report.dies[i].die = i;
  report.threads_used = resolve_threads(opts.threads);

  std::vector<DieProgress> progress(n_dies);
  const bool supervised = opts.die_deadline_ms > 0.0 || opts.die_stall_ms > 0.0;

  const auto t0 = Clock::now();
  auto run_one = [&report, &job, &progress](std::size_t die) {
    DieCounters& slot = report.dies[die];
    DieProgress& token = progress[die];
    // One async band per die (id = die index) so a die's work reads as a
    // single horizontal lane in about://tracing even across thread hops,
    // plus a complete-event span on the worker thread that ran it.
    obs::AsyncSpan die_band("die", die);
    FLASHMARK_SPAN("fleet.die");
    const auto job_t0 = Clock::now();
    token.mark_started();
    auto fail = [&slot](FailureReason reason, const char* what) {
      slot.failed = true;
      slot.health = DieHealth::kFailed;
      slot.reason = reason;
      slot.error = what;
    };
    try {
      job(die, slot, token);
      // A job that completed but consumed recovery budget (or had faults
      // injected) ran on degraded silicon — classify it as such unless the
      // job already picked a stronger verdict.
      if (slot.health == DieHealth::kClean &&
          (slot.retries > 0 || slot.ecc_corrected > 0 ||
           slot.faults_injected > 0))
        slot.health = DieHealth::kDegraded;
    } catch (const OperationCancelledError& e) {
      // The watchdog's verdict, not the exception, carries the cause: a
      // job may also abort on a caller-provided hook (cause kNone).
      switch (token.cause()) {
        case CancelCause::kDeadline:
          fail(FailureReason::kDeadlineExceeded, e.what());
          break;
        case CancelCause::kStalled:
          fail(FailureReason::kStalled, e.what());
          break;
        case CancelCause::kNone:
          fail(FailureReason::kOther, e.what());
          break;
      }
    } catch (const RetryExhaustedError& e) {
      fail(FailureReason::kRetryExhausted, e.what());
    } catch (const TransientFlashError& e) {
      fail(FailureReason::kPowerLoss, e.what());
    } catch (const FlashHalError& e) {
      fail(FailureReason::kFlashProtocol, e.what());
    } catch (const std::exception& e) {
      fail(FailureReason::kOther, e.what());
    } catch (...) {
      fail(FailureReason::kOther, "unknown exception");
    }
    slot.wall_ms = ms_since(job_t0);
    token.mark_finished();
  };

  {
    // Scope: the watchdog must join before the report is finalized.
    std::optional<Watchdog> watchdog;
    if (supervised) watchdog.emplace(progress, opts);

    FLASHMARK_SPAN("fleet.batch");
    if (report.threads_used <= 1 || n_dies <= 1) {
      // Inline path: byte-for-byte the pre-fleet sequential behavior.
      for (std::size_t i = 0; i < n_dies; ++i) run_one(i);
    } else {
      ThreadPool pool(report.threads_used);
      for (std::size_t i = 0; i < n_dies; ++i)
        pool.submit([&run_one, i] { run_one(i); });
      pool.wait_idle();
    }
  }
  report.wall_ms = ms_since(t0);
  report.cpu_ms = report.wall_ms;

  if (obs::metrics_enabled()) {
    // Batches are issued sequentially from the caller's thread, so the
    // sequence number — and with it every metric name — is identical at any
    // --threads value. Heartbeat gauges (ticks per die) are deterministic
    // for completed dies; watchdog-cancelled dies are wall-clock truncated
    // and excluded from the byte-identity contract anyway (§6).
    char prefix[16];
    std::snprintf(prefix, sizeof prefix, "fleet.b%03u",
                  g_batch_seq.fetch_add(1, std::memory_order_relaxed));
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    report.fold_into(reg, prefix);
    for (std::size_t i = 0; i < n_dies; ++i)
      reg.gauge(std::string(prefix) + "." + obs::die_key(i) + ".heartbeat")
          .set(static_cast<double>(progress[i].ticks()));
  }
  return report;
}

FleetReport run_dies(std::size_t n_dies, const DieJob& job,
                     const FleetOptions& opts) {
  return run_dies(
      n_dies,
      [&job](std::size_t die, DieCounters& counters, DieProgress&) {
        job(die, counters);
      },
      opts);
}

void reset_batch_counter() {
  g_batch_seq.store(0, std::memory_order_relaxed);
}

namespace {

/// One die's HAL under a fault policy: the plain direct HAL, or a FaultyHal
/// decorating it when the policy afflicts the die. The decorator (if any)
/// lives in `storage` so its injection counters outlive the pipeline call.
FlashHal& policy_hal(Device& dev, std::size_t die, const FaultPolicy& policy,
                     std::optional<fault::FaultyHal>& storage) {
  if (!policy.afflicts(die)) return dev.hal();
  storage.emplace(dev.hal(),
                  fault::FaultPlan::for_die(policy.config, dev.die_seed(),
                                            dev.config().geometry));
  return *storage;
}

void reject_session_plus_faults(const char* who, const SessionPolicy& session,
                                const FaultPolicy& faults) {
  if (session.enabled() && faults.config.any())
    throw std::invalid_argument(
        std::string(who) +
        ": a journaled session owns the die's HAL end to end and cannot be "
        "combined with a FaultPolicy");
}

std::string die_session_dir(const SessionPolicy& session, std::size_t die) {
  return session.dir + "/die-" + std::to_string(die);
}

std::string audit_journal_path(const SessionPolicy& session) {
  return session.dir + "/audit.fmj";
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f) std::fclose(f);
  return f != nullptr;
}

// --- audit-journal record vocabulary ------------------------------------
// One "die" record per completed verdict: every field of the VerifyReport,
// doubles in hexfloat so the restored report is bit-identical to the one the
// crashed process computed.

std::string exact_double(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

std::uint64_t audit_u64(const std::map<std::string, std::string>& kv,
                        const char* key) {
  const auto it = kv.find(key);
  if (it == kv.end())
    throw std::runtime_error(std::string("audit record: missing '") + key +
                             "'");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (!end || end == it->second.c_str() || *end != '\0')
    throw std::runtime_error(std::string("audit record: bad value for '") +
                             key + "'");
  return v;
}

double audit_double(const std::map<std::string, std::string>& kv,
                    const char* key) {
  const auto it = kv.find(key);
  if (it == kv.end())
    throw std::runtime_error(std::string("audit record: missing '") + key +
                             "'");
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (!end || end == it->second.c_str() || *end != '\0')
    throw std::runtime_error(std::string("audit record: bad value for '") +
                             key + "'");
  return v;
}

std::string audit_payload(std::size_t die, const VerifyReport& r) {
  std::ostringstream os;
  os << "die=" << die
     << " verdict=" << unsigned(static_cast<std::uint8_t>(r.verdict))
     << " sig_checked=" << (r.signature_checked ? 1 : 0)
     << " sig_ok=" << (r.signature_ok ? 1 : 0) << " p00=" << r.invalid_00_pairs
     << " p11=" << r.invalid_11_pairs << " ecc=" << r.ecc_corrected_blocks
     << " retries=" << r.retries << " extract_ns=" << r.extract_time.as_ns()
     << " zf=" << exact_double(r.zero_fraction)
     << " rd=" << exact_double(r.replica_disagreement);
  if (r.fields) {
    os << " mf=" << r.fields->manufacturer_id << " id=" << r.fields->die_id
       << " grade=" << unsigned(r.fields->speed_grade)
       << " status=" << unsigned(static_cast<std::uint8_t>(r.fields->status))
       << " date=" << r.fields->date_code;
  }
  return os.str();
}

bool parse_audit_record(const std::string& payload, std::size_t& die,
                        VerifyReport& r) {
  try {
    const auto kv = session::parse_kv(payload);
    die = static_cast<std::size_t>(audit_u64(kv, "die"));
    r = VerifyReport{};
    r.verdict =
        static_cast<Verdict>(static_cast<std::uint8_t>(audit_u64(kv, "verdict")));
    r.signature_checked = audit_u64(kv, "sig_checked") != 0;
    r.signature_ok = audit_u64(kv, "sig_ok") != 0;
    r.invalid_00_pairs = static_cast<std::size_t>(audit_u64(kv, "p00"));
    r.invalid_11_pairs = static_cast<std::size_t>(audit_u64(kv, "p11"));
    r.ecc_corrected_blocks = static_cast<std::size_t>(audit_u64(kv, "ecc"));
    r.retries = audit_u64(kv, "retries");
    r.extract_time =
        SimTime::ns(static_cast<std::int64_t>(audit_u64(kv, "extract_ns")));
    r.zero_fraction = audit_double(kv, "zf");
    r.replica_disagreement = audit_double(kv, "rd");
    if (kv.count("mf")) {
      WatermarkFields f;
      f.manufacturer_id = static_cast<std::uint16_t>(audit_u64(kv, "mf"));
      f.die_id = static_cast<std::uint32_t>(audit_u64(kv, "id"));
      f.speed_grade = static_cast<std::uint8_t>(audit_u64(kv, "grade"));
      f.status = static_cast<TestStatus>(
          static_cast<std::uint8_t>(audit_u64(kv, "status")));
      f.date_code = static_cast<std::uint16_t>(audit_u64(kv, "date"));
      r.fields = f;
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

ImprintBatchResult imprint_batch(
    const DeviceConfig& config, std::uint64_t master_seed, std::size_t n_dies,
    std::size_t segment,
    const std::function<WatermarkSpec(std::size_t)>& spec_of,
    const FleetOptions& opts, const FaultPolicy& faults,
    const SessionPolicy& session) {
  reject_session_plus_faults("imprint_batch", session, faults);
  ImprintBatchResult out;
  out.dies.resize(n_dies);
  out.reports.resize(n_dies);
  out.fleet = run_dies(
      n_dies,
      [&](std::size_t die, DieCounters& counters, DieProgress& token) {
        auto dev = std::make_unique<Device>(config,
                                            derive_die_seed(master_seed, die));
        const Addr addr = dev->config().geometry.segment_base(segment);
        const WatermarkSpec spec = spec_of(die);

        if (session.enabled()) {
          // Journaled path: one session directory per die. Sessions run the
          // cycle-accurate kLoop driver regardless of spec.strategy (batch
          // wear has no per-cycle checkpoints to journal).
          const std::string dir = die_session_dir(session, die);
          session::SessionConfig cfg;
          cfg.checkpoint_every = session.checkpoint_every;
          cfg.durable = session.durable;
          cfg.accelerated = spec.accelerated;
          cfg.max_retries = spec.max_retries;
          cfg.cancelled = [&token] { return token.cancel_requested(); };
          cfg.on_cycle = [&token](std::uint32_t) { token.tick(); };
          try {
            if (session.resume && session::inspect_session(dir).exists) {
              session::ResumeResult r = session::resume_imprint_session(dir, cfg);
              out.dies[die] = std::move(r.dev);
              out.reports[die] = r.report;
            } else {
              const auto& g = dev->config().geometry;
              const EncodedWatermark enc =
                  encode_watermark(spec, g.segment_cells(segment));
              out.dies[die] = std::move(dev);
              out.reports[die] = session::run_imprint_session(
                  dir, *out.dies[die], addr, enc.segment_pattern, spec.npe,
                  cfg);
            }
            counters.retries += out.reports[die].retries;
          } catch (...) {
            // A die interrupted mid-resume never reached its slot; its
            // checkpoints are still on disk for the next attempt.
            if (out.dies[die]) counters.absorb(*out.dies[die]);
            throw;
          }
          counters.absorb(*out.dies[die]);
          return;
        }

        std::optional<fault::FaultyHal> fhal;
        FlashHal& hal = policy_hal(*dev, die, faults, fhal);
        // The die must land in its slot even when the imprint aborts —
        // a power-lost die still exists and can be re-tested.
        out.dies[die] = std::move(dev);
        ImprintOptions io;
        io.npe = spec.npe;
        io.strategy = spec.strategy;
        io.accelerated = spec.accelerated;
        io.max_retries = spec.max_retries;
        io.cancelled = [&token] { return token.cancel_requested(); };
        io.on_cycle = [&token](std::uint32_t) { token.tick(); };
        try {
          out.reports[die] = imprint_watermark(hal, addr, spec, io);
          counters.retries += out.reports[die].retries;
        } catch (...) {
          counters.absorb(*out.dies[die]);
          if (fhal) counters.absorb_faults(*fhal);
          throw;
        }
        counters.absorb(*out.dies[die]);
        if (fhal) counters.absorb_faults(*fhal);
      },
      opts);
  return out;
}

ExtractBatchResult extract_batch(
    const std::vector<std::unique_ptr<Device>>& dies, std::size_t segment,
    const ExtractOptions& eo, const FleetOptions& opts,
    const FaultPolicy& faults) {
  ExtractBatchResult out;
  out.results.resize(dies.size());
  out.fleet = run_dies(
      dies.size(),
      [&](std::size_t die, DieCounters& counters, DieProgress& token) {
        Device& dev = *dies[die];
        dev.controller().reset_op_counters();
        const SimTime before = dev.clock().now();
        const Addr addr = dev.config().geometry.segment_base(segment);
        std::optional<fault::FaultyHal> fhal;
        FlashHal& hal = policy_hal(dev, die, faults, fhal);
        ExtractOptions eo2 = eo;
        const std::function<bool()> user_cancel = eo.cancelled;
        eo2.cancelled = [&token, user_cancel] {
          token.tick();  // one heartbeat per extraction round
          return token.cancel_requested() || (user_cancel && user_cancel());
        };
        try {
          out.results[die] = extract_flashmark(hal, addr, eo2);
          counters.retries += out.results[die].retries;
        } catch (...) {
          counters.absorb(dev);
          counters.sim_time -= before;
          if (fhal) counters.absorb_faults(*fhal);
          throw;
        }
        counters.absorb(dev);
        counters.sim_time -= before;  // only time advanced by this batch
        if (fhal) counters.absorb_faults(*fhal);
      },
      opts);
  return out;
}

AuditBatchResult audit_batch(const std::vector<std::unique_ptr<Device>>& dies,
                             std::size_t segment, const VerifyOptions& vo,
                             const FleetOptions& opts,
                             const FaultPolicy& faults,
                             const SessionPolicy& session) {
  reject_session_plus_faults("audit_batch", session, faults);
  AuditBatchResult out;
  out.reports.resize(dies.size());

  // Audit journaling: one shared journal of per-die verdict records.
  // Verdicts are appended as each die completes (append order is scheduling-
  // dependent; the records carry their die index, so restore order isn't).
  std::vector<char> restored(dies.size(), 0);
  std::optional<session::JournalWriter> journal;
  std::mutex journal_mu;
  if (session.enabled()) {
    if (const IoStatus st = make_dirs(session.dir); !st)
      throw std::runtime_error("audit_batch: " + st.error);
    const std::string path = audit_journal_path(session);
    if (session.resume && file_exists(path)) {
      // Open first (truncates any torn tail), then replay the clean file.
      journal.emplace(session::JournalWriter::open(path, session.durable));
      const session::ReplayResult replay = session::replay_journal(path);
      for (const auto& rec : replay.records) {
        if (rec.type != "die") continue;
        std::size_t die = 0;
        VerifyReport rep;
        if (parse_audit_record(rec.payload, die, rep) && die < dies.size()) {
          out.reports[die] = rep;
          restored[die] = 1;
        }
      }
    } else {
      if (file_exists(path))
        throw std::runtime_error(
            "audit_batch: journal already exists in " + session.dir +
            " — set SessionPolicy::resume or remove it explicitly");
      journal.emplace(session::JournalWriter::create(
          path,
          {{"begin",
            "seg=" + std::to_string(segment) +
                " dies=" + std::to_string(dies.size())}},
          session.durable));
    }
  }

  out.fleet = run_dies(
      dies.size(),
      [&](std::size_t die, DieCounters& counters, DieProgress& token) {
        // A verdict restored from the journal is final: the work happened in
        // the crashed process. Its counter row stays zero in this process.
        if (restored[die]) return;
        Device& dev = *dies[die];
        dev.controller().reset_op_counters();
        const SimTime before = dev.clock().now();
        const Addr addr = dev.config().geometry.segment_base(segment);
        std::optional<fault::FaultyHal> fhal;
        FlashHal& hal = policy_hal(dev, die, faults, fhal);
        VerifyOptions vo2 = vo;
        const std::function<bool()> user_cancel = vo.cancelled;
        vo2.cancelled = [&token, user_cancel] {
          token.tick();  // one heartbeat per extraction round
          return token.cancel_requested() || (user_cancel && user_cancel());
        };
        try {
          out.reports[die] = verify_watermark(hal, addr, vo2);
          counters.absorb_recovery(out.reports[die]);
        } catch (...) {
          counters.absorb(dev);
          counters.sim_time -= before;
          if (fhal) counters.absorb_faults(*fhal);
          throw;
        }
        if (journal) {
          const std::string payload = audit_payload(die, out.reports[die]);
          std::lock_guard<std::mutex> lk(journal_mu);
          journal->append({"die", payload}, /*sync=*/session.durable);
        }
        counters.absorb(dev);
        counters.sim_time -= before;  // only time advanced by this batch
        if (fhal) counters.absorb_faults(*fhal);
      },
      opts);
  return out;
}

namespace {

/// Fold the store's gauges after a store-backed batch (values are
/// scheduling-dependent at threads > 1: outside the §6 contract).
void fold_store_stats(const store::DieStore& store) {
  if (obs::metrics_enabled())
    store.fold_into(obs::MetricsRegistry::global(), "store");
}

}  // namespace

ImprintBatchResult imprint_batch(
    store::DieStore& dies, std::size_t n_dies, std::size_t segment,
    const std::function<WatermarkSpec(std::size_t)>& spec_of,
    const FleetOptions& opts) {
  ImprintBatchResult out;
  out.reports.resize(n_dies);
  out.fleet = run_dies(
      n_dies,
      [&](std::size_t die, DieCounters& counters, DieProgress& token) {
        store::DieStore::PinnedDie dev = dies.pin(die);
        dev->controller().reset_op_counters();
        const SimTime before = dev->clock().now();
        const Addr addr = dev->config().geometry.segment_base(segment);
        ImprintOptions io;
        const WatermarkSpec spec = spec_of(die);
        io.npe = spec.npe;
        io.strategy = spec.strategy;
        io.accelerated = spec.accelerated;
        io.max_retries = spec.max_retries;
        io.cancelled = [&token] { return token.cancel_requested(); };
        io.on_cycle = [&token](std::uint32_t) { token.tick(); };
        try {
          out.reports[die] = imprint_watermark(dev->hal(), addr, spec, io);
          counters.retries += out.reports[die].retries;
        } catch (...) {
          counters.absorb(*dev);
          counters.sim_time -= before;
          throw;
        }
        counters.absorb(*dev);
        counters.sim_time -= before;
      },
      opts);
  fold_store_stats(dies);
  return out;
}

ExtractBatchResult extract_batch(store::DieStore& dies, std::size_t n_dies,
                                 std::size_t segment, const ExtractOptions& eo,
                                 const FleetOptions& opts) {
  ExtractBatchResult out;
  out.results.resize(n_dies);
  out.fleet = run_dies(
      n_dies,
      [&](std::size_t die, DieCounters& counters, DieProgress& token) {
        store::DieStore::PinnedDie dev = dies.pin(die);
        dev->controller().reset_op_counters();
        const SimTime before = dev->clock().now();
        const Addr addr = dev->config().geometry.segment_base(segment);
        ExtractOptions eo2 = eo;
        const std::function<bool()> user_cancel = eo.cancelled;
        eo2.cancelled = [&token, user_cancel] {
          token.tick();
          return token.cancel_requested() || (user_cancel && user_cancel());
        };
        try {
          out.results[die] = extract_flashmark(dev->hal(), addr, eo2);
          counters.retries += out.results[die].retries;
        } catch (...) {
          counters.absorb(*dev);
          counters.sim_time -= before;
          throw;
        }
        counters.absorb(*dev);
        counters.sim_time -= before;
      },
      opts);
  fold_store_stats(dies);
  return out;
}

AuditBatchResult audit_batch(store::DieStore& dies, std::size_t n_dies,
                             std::size_t segment, const VerifyOptions& vo,
                             const FleetOptions& opts,
                             const FaultPolicy& faults) {
  AuditBatchResult out;
  out.reports.resize(n_dies);
  out.fleet = run_dies(
      n_dies,
      [&](std::size_t die, DieCounters& counters, DieProgress& token) {
        store::DieStore::PinnedDie dev = dies.pin(die);
        dev->controller().reset_op_counters();
        const SimTime before = dev->clock().now();
        const Addr addr = dev->config().geometry.segment_base(segment);
        std::optional<fault::FaultyHal> fhal;
        FlashHal& hal = policy_hal(*dev, die, faults, fhal);
        VerifyOptions vo2 = vo;
        const std::function<bool()> user_cancel = vo.cancelled;
        vo2.cancelled = [&token, user_cancel] {
          token.tick();
          return token.cancel_requested() || (user_cancel && user_cancel());
        };
        try {
          out.reports[die] = verify_watermark(hal, addr, vo2);
          counters.absorb_recovery(out.reports[die]);
        } catch (...) {
          counters.absorb(*dev);
          counters.sim_time -= before;
          if (fhal) counters.absorb_faults(*fhal);
          throw;
        }
        counters.absorb(*dev);
        counters.sim_time -= before;
        if (fhal) counters.absorb_faults(*fhal);
      },
      opts);
  fold_store_stats(dies);
  return out;
}

PulseSweepResult pulse_sweep_batch(store::DieStore& dies, std::size_t n_dies,
                                   std::size_t segment,
                                   const std::vector<double>& t_pe_us,
                                   const FleetOptions& opts,
                                   std::size_t interleave) {
  if (interleave == 0)
    throw std::runtime_error("pulse_sweep_batch: interleave must be > 0");
  PulseSweepResult out;
  out.erased_counts.assign(n_dies,
                           std::vector<std::size_t>(t_pe_us.size(), 0));
  const std::size_t n_cohorts = (n_dies + interleave - 1) / interleave;
  out.fleet = run_dies(
      n_cohorts,
      [&](std::size_t cohort, DieCounters& counters, DieProgress& token) {
        const std::size_t d0 = cohort * interleave;
        const std::size_t d1 = std::min(n_dies, d0 + interleave);
        const std::size_t n = d1 - d0;
        counters.die = d0;  // cohort row, labeled by its first die

        // Pins of distinct dies in ascending order: cohorts partition the
        // die range, so exclusive pins cannot deadlock across jobs.
        std::vector<store::DieStore::PinnedDie> pinned;
        pinned.reserve(n);
        std::vector<FlashArray*> arrays;
        arrays.reserve(n);
        for (std::size_t die = d0; die < d1; ++die) {
          pinned.push_back(dies.pin(die));
          pinned.back()->controller().reset_op_counters();
          arrays.push_back(&pinned.back()->array());
        }

        // Condition: every cell of the segment starts programmed, so the
        // sweep measures the erase-time distribution of the whole segment.
        const FlashGeometry& geom = arrays[0]->geometry();
        const Addr base = geom.segment_base(segment);
        const std::size_t n_words =
            geom.segment_bytes(segment) / geom.word_bytes;
        const std::vector<std::uint16_t> zeros(n_words, 0);
        for (std::size_t k = 0; k < n; ++k) {
          arrays[k]->erase_segment(segment);
          arrays[k]->program_words(base, zeros.data(), n_words);
          token.tick();
        }

        // Cumulative pulses, interleaved across the cohort: each call
        // fills vector lanes with cells from all n dies at once.
        for (std::size_t p = 0; p < t_pe_us.size(); ++p) {
          FlashArray::partial_erase_many(arrays.data(), n, segment,
                                         t_pe_us[p]);
          for (std::size_t k = 0; k < n; ++k)
            out.erased_counts[d0 + k][p] = arrays[k]->count_erased(segment);
          token.tick();
        }

        // The sweep runs at the array layer, below the controller, so the
        // op counters are accounted here; the simulated clock is untouched.
        counters.erase_ops += n * (1 + t_pe_us.size());
        counters.program_ops += n * n_words;
        counters.pe_cycles += static_cast<double>(n);
      },
      opts);
  fold_store_stats(dies);
  return out;
}

}  // namespace flashmark::fleet
