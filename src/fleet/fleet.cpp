#include "fleet/fleet.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <sstream>

#include "fleet/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/siphash.hpp"

namespace flashmark::fleet {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

std::uint64_t derive_die_seed(std::uint64_t master_seed,
                              std::uint64_t die_index) {
  // Expand the master seed into a SipHash key, then MAC the die index. Both
  // primitives are the repo's own bit-exact implementations, so the mapping
  // (master, die) -> seed is identical on every platform and compiler.
  std::uint64_t sm = master_seed;
  const SipHashKey key{splitmix64(sm), splitmix64(sm)};
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>(die_index >> (8 * i));
  return siphash24(key, bytes, sizeof bytes);
}

FleetOptions parse_cli_options(int argc, char** argv) {
  FleetOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--threads requires a value\n";
        std::exit(2);
      }
      char* end = nullptr;
      const long v = std::strtol(argv[i + 1], &end, 10);
      if (end == argv[i + 1] || *end != '\0' || v < 0) {
        std::cerr << "--threads: invalid value '" << argv[i + 1] << "'\n";
        std::exit(2);
      }
      opts.threads = static_cast<unsigned>(v);
      ++i;
    }
  }
  return opts;
}

void DieCounters::absorb(Device& dev) {
  const FlashOpCounters& c = dev.controller().op_counters();
  erase_ops += c.erase_ops;
  program_ops += c.program_ops;
  read_ops += c.read_ops;
  // Every erase pulse heads one P/E cycle of the Fig. 7 loop; batch wear
  // accounts its cycles directly.
  pe_cycles += c.wear_pe_cycles + static_cast<double>(c.erase_ops);
  sim_time += dev.clock().now();
}

DieCounters FleetReport::totals() const {
  DieCounters t;
  t.die = dies.size();
  for (const auto& d : dies) {
    t.wall_ms += d.wall_ms;
    t.pe_cycles += d.pe_cycles;
    t.sim_time += d.sim_time;
    t.erase_ops += d.erase_ops;
    t.program_ops += d.program_ops;
    t.read_ops += d.read_ops;
    if (d.failed) t.failed = true;
  }
  return t;
}

std::size_t FleetReport::failures() const {
  std::size_t n = 0;
  for (const auto& d : dies)
    if (d.failed) ++n;
  return n;
}

void FleetReport::merge(const FleetReport& other) {
  const std::size_t base = dies.size();
  dies.reserve(base + other.dies.size());
  for (const auto& d : other.dies) {
    dies.push_back(d);
    dies.back().die = base + d.die;
  }
  wall_ms += other.wall_ms;
  if (threads_used == 0) threads_used = other.threads_used;
}

std::string FleetReport::counters_csv() const {
  std::ostringstream os;
  os << "die,wall_ms,pe_cycles,sim_ms,erase_ops,program_ops,read_ops,failed\n";
  for (const auto& d : dies) {
    os << d.die << ',' << d.wall_ms << ',' << d.pe_cycles << ','
       << d.sim_time.as_ms() << ',' << d.erase_ops << ',' << d.program_ops
       << ',' << d.read_ops << ',' << (d.failed ? 1 : 0) << '\n';
  }
  return os.str();
}

void FleetReport::print_summary(std::ostream& os) const {
  const DieCounters t = totals();
  os << "[fleet] " << dies.size() << " dies on " << threads_used
     << " thread(s): wall " << wall_ms << " ms (sum of jobs " << t.wall_ms
     << " ms), " << t.pe_cycles << " P/E cycles, " << t.erase_ops
     << " erase / " << t.program_ops << " program / " << t.read_ops
     << " read ops, " << t.sim_time.as_sec() << " s simulated";
  if (const std::size_t f = failures()) os << ", " << f << " FAILED";
  os << "\n";
}

FleetReport run_dies(std::size_t n_dies, const DieJob& job,
                     const FleetOptions& opts) {
  FleetReport report;
  report.dies.resize(n_dies);
  for (std::size_t i = 0; i < n_dies; ++i) report.dies[i].die = i;
  report.threads_used = resolve_threads(opts.threads);

  const auto t0 = Clock::now();
  auto run_one = [&report, &job](std::size_t die) {
    DieCounters& slot = report.dies[die];
    const auto job_t0 = Clock::now();
    try {
      job(die, slot);
    } catch (const std::exception& e) {
      slot.failed = true;
      slot.error = e.what();
    } catch (...) {
      slot.failed = true;
      slot.error = "unknown exception";
    }
    slot.wall_ms = ms_since(job_t0);
  };

  if (report.threads_used <= 1 || n_dies <= 1) {
    // Inline path: byte-for-byte the pre-fleet sequential behavior.
    for (std::size_t i = 0; i < n_dies; ++i) run_one(i);
  } else {
    ThreadPool pool(report.threads_used);
    for (std::size_t i = 0; i < n_dies; ++i)
      pool.submit([&run_one, i] { run_one(i); });
    pool.wait_idle();
  }
  report.wall_ms = ms_since(t0);
  return report;
}

ImprintBatchResult imprint_batch(
    const DeviceConfig& config, std::uint64_t master_seed, std::size_t n_dies,
    std::size_t segment,
    const std::function<WatermarkSpec(std::size_t)>& spec_of,
    const FleetOptions& opts) {
  ImprintBatchResult out;
  out.dies.resize(n_dies);
  out.reports.resize(n_dies);
  out.fleet = run_dies(
      n_dies,
      [&](std::size_t die, DieCounters& counters) {
        auto dev = std::make_unique<Device>(config,
                                            derive_die_seed(master_seed, die));
        const Addr addr = dev->config().geometry.segment_base(segment);
        out.reports[die] = imprint_watermark(dev->hal(), addr, spec_of(die));
        counters.absorb(*dev);
        out.dies[die] = std::move(dev);
      },
      opts);
  return out;
}

ExtractBatchResult extract_batch(
    const std::vector<std::unique_ptr<Device>>& dies, std::size_t segment,
    const ExtractOptions& eo, const FleetOptions& opts) {
  ExtractBatchResult out;
  out.results.resize(dies.size());
  out.fleet = run_dies(
      dies.size(),
      [&](std::size_t die, DieCounters& counters) {
        Device& dev = *dies[die];
        dev.controller().reset_op_counters();
        const SimTime before = dev.clock().now();
        const Addr addr = dev.config().geometry.segment_base(segment);
        out.results[die] = extract_flashmark(dev.hal(), addr, eo);
        counters.absorb(dev);
        counters.sim_time -= before;  // only time advanced by this batch
      },
      opts);
  return out;
}

AuditBatchResult audit_batch(const std::vector<std::unique_ptr<Device>>& dies,
                             std::size_t segment, const VerifyOptions& vo,
                             const FleetOptions& opts) {
  AuditBatchResult out;
  out.reports.resize(dies.size());
  out.fleet = run_dies(
      dies.size(),
      [&](std::size_t die, DieCounters& counters) {
        Device& dev = *dies[die];
        dev.controller().reset_op_counters();
        const SimTime before = dev.clock().now();
        const Addr addr = dev.config().geometry.segment_base(segment);
        out.reports[die] = verify_watermark(dev.hal(), addr, vo);
        counters.absorb(dev);
        counters.sim_time -= before;  // only time advanced by this batch
      },
      opts);
  return out;
}

}  // namespace flashmark::fleet
