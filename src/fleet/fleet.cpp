#include "fleet/fleet.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <optional>
#include <sstream>

#include "fleet/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/siphash.hpp"

namespace flashmark::fleet {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

std::uint64_t derive_die_seed(std::uint64_t master_seed,
                              std::uint64_t die_index) {
  // Expand the master seed into a SipHash key, then MAC the die index. Both
  // primitives are the repo's own bit-exact implementations, so the mapping
  // (master, die) -> seed is identical on every platform and compiler.
  std::uint64_t sm = master_seed;
  const SipHashKey key{splitmix64(sm), splitmix64(sm)};
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>(die_index >> (8 * i));
  return siphash24(key, bytes, sizeof bytes);
}

const char* to_string(DieHealth h) {
  switch (h) {
    case DieHealth::kClean: return "clean";
    case DieHealth::kDegraded: return "degraded";
    case DieHealth::kFailed: return "failed";
  }
  return "unknown";
}

const char* to_string(FailureReason r) {
  switch (r) {
    case FailureReason::kNone: return "none";
    case FailureReason::kPowerLoss: return "power-loss";
    case FailureReason::kRetryExhausted: return "retry-exhausted";
    case FailureReason::kFlashProtocol: return "flash-protocol";
    case FailureReason::kOther: return "other";
  }
  return "unknown";
}

namespace {

[[noreturn]] void cli_usage_exit(const char* argv0,
                                 std::initializer_list<CliFlag> extra) {
  std::cerr << "usage: " << argv0 << " [--threads N]";
  for (const CliFlag& f : extra)
    std::cerr << " [" << f.name << (f.takes_value ? " V]" : "]");
  std::cerr << "\n";
  std::exit(2);
}

}  // namespace

FleetOptions parse_cli_options(int argc, char** argv,
                               std::initializer_list<CliFlag> extra) {
  FleetOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--threads requires a value\n";
        std::exit(2);
      }
      char* end = nullptr;
      const long v = std::strtol(argv[i + 1], &end, 10);
      if (end == argv[i + 1] || *end != '\0' || v < 0) {
        std::cerr << "--threads: invalid value '" << argv[i + 1] << "'\n";
        std::exit(2);
      }
      opts.threads = static_cast<unsigned>(v);
      ++i;
      continue;
    }
    // Flags the binary parses itself are skipped here (with their value);
    // everything else is a typo and must not silently run a default sweep.
    bool known = false;
    for (const CliFlag& f : extra) {
      if (std::strcmp(argv[i], f.name) == 0) {
        known = true;
        if (f.takes_value) {
          if (i + 1 >= argc) {
            std::cerr << f.name << " requires a value\n";
            std::exit(2);
          }
          ++i;
        }
        break;
      }
    }
    if (!known) {
      std::cerr << "unknown argument '" << argv[i] << "'\n";
      cli_usage_exit(argv[0], extra);
    }
  }
  return opts;
}

void DieCounters::absorb(Device& dev) {
  const FlashOpCounters& c = dev.controller().op_counters();
  erase_ops += c.erase_ops;
  program_ops += c.program_ops;
  read_ops += c.read_ops;
  // Every erase pulse heads one P/E cycle of the Fig. 7 loop; batch wear
  // accounts its cycles directly.
  pe_cycles += c.wear_pe_cycles + static_cast<double>(c.erase_ops);
  sim_time += dev.clock().now();
}

void DieCounters::absorb_faults(const fault::FaultyHal& hal) {
  faults_injected += hal.counters().events();
}

void DieCounters::absorb_recovery(const VerifyReport& report) {
  retries += report.retries;
  ecc_corrected += report.ecc_corrected_blocks;
}

DieCounters FleetReport::totals() const {
  DieCounters t;
  t.die = dies.size();
  for (const auto& d : dies) {
    t.wall_ms += d.wall_ms;
    t.pe_cycles += d.pe_cycles;
    t.sim_time += d.sim_time;
    t.erase_ops += d.erase_ops;
    t.program_ops += d.program_ops;
    t.read_ops += d.read_ops;
    t.faults_injected += d.faults_injected;
    t.retries += d.retries;
    t.ecc_corrected += d.ecc_corrected;
    if (d.failed) t.failed = true;
    // Worst-of across the batch; the enum is ordered clean < degraded <
    // failed. The first failure's reason wins (die order, deterministic).
    if (d.health > t.health) t.health = d.health;
    if (t.reason == FailureReason::kNone && d.reason != FailureReason::kNone)
      t.reason = d.reason;
  }
  return t;
}

std::size_t FleetReport::failures() const {
  std::size_t n = 0;
  for (const auto& d : dies)
    if (d.failed) ++n;
  return n;
}

std::size_t FleetReport::degraded() const {
  std::size_t n = 0;
  for (const auto& d : dies)
    if (d.health == DieHealth::kDegraded) ++n;
  return n;
}

void FleetReport::merge(const FleetReport& other) {
  const std::size_t base = dies.size();
  dies.reserve(base + other.dies.size());
  for (const auto& d : other.dies) {
    dies.push_back(d);
    dies.back().die = base + d.die;
  }
  wall_ms += other.wall_ms;
  if (threads_used == 0) threads_used = other.threads_used;
}

std::string FleetReport::counters_csv() const {
  std::ostringstream os;
  os << "die,wall_ms,pe_cycles,sim_ms,erase_ops,program_ops,read_ops,"
        "faults,retries,ecc_corrected,health,reason,failed\n";
  for (const auto& d : dies) {
    os << d.die << ',' << d.wall_ms << ',' << d.pe_cycles << ','
       << d.sim_time.as_ms() << ',' << d.erase_ops << ',' << d.program_ops
       << ',' << d.read_ops << ',' << d.faults_injected << ',' << d.retries
       << ',' << d.ecc_corrected << ',' << to_string(d.health) << ','
       << to_string(d.reason) << ',' << (d.failed ? 1 : 0) << '\n';
  }
  return os.str();
}

void FleetReport::print_summary(std::ostream& os) const {
  const DieCounters t = totals();
  os << "[fleet] " << dies.size() << " dies on " << threads_used
     << " thread(s): wall " << wall_ms << " ms (sum of jobs " << t.wall_ms
     << " ms), " << t.pe_cycles << " P/E cycles, " << t.erase_ops
     << " erase / " << t.program_ops << " program / " << t.read_ops
     << " read ops, " << t.sim_time.as_sec() << " s simulated";
  if (t.faults_injected)
    os << ", " << t.faults_injected << " faults injected (" << t.retries
       << " retries, " << t.ecc_corrected << " ECC fixes)";
  if (const std::size_t d = degraded()) os << ", " << d << " degraded";
  if (const std::size_t f = failures()) os << ", " << f << " FAILED";
  os << "\n";
}

FleetReport run_dies(std::size_t n_dies, const DieJob& job,
                     const FleetOptions& opts) {
  FleetReport report;
  report.dies.resize(n_dies);
  for (std::size_t i = 0; i < n_dies; ++i) report.dies[i].die = i;
  report.threads_used = resolve_threads(opts.threads);

  const auto t0 = Clock::now();
  auto run_one = [&report, &job](std::size_t die) {
    DieCounters& slot = report.dies[die];
    const auto job_t0 = Clock::now();
    auto fail = [&slot](FailureReason reason, const char* what) {
      slot.failed = true;
      slot.health = DieHealth::kFailed;
      slot.reason = reason;
      slot.error = what;
    };
    try {
      job(die, slot);
      // A job that completed but consumed recovery budget (or had faults
      // injected) ran on degraded silicon — classify it as such unless the
      // job already picked a stronger verdict.
      if (slot.health == DieHealth::kClean &&
          (slot.retries > 0 || slot.ecc_corrected > 0 ||
           slot.faults_injected > 0))
        slot.health = DieHealth::kDegraded;
    } catch (const RetryExhaustedError& e) {
      fail(FailureReason::kRetryExhausted, e.what());
    } catch (const TransientFlashError& e) {
      fail(FailureReason::kPowerLoss, e.what());
    } catch (const FlashHalError& e) {
      fail(FailureReason::kFlashProtocol, e.what());
    } catch (const std::exception& e) {
      fail(FailureReason::kOther, e.what());
    } catch (...) {
      fail(FailureReason::kOther, "unknown exception");
    }
    slot.wall_ms = ms_since(job_t0);
  };

  if (report.threads_used <= 1 || n_dies <= 1) {
    // Inline path: byte-for-byte the pre-fleet sequential behavior.
    for (std::size_t i = 0; i < n_dies; ++i) run_one(i);
  } else {
    ThreadPool pool(report.threads_used);
    for (std::size_t i = 0; i < n_dies; ++i)
      pool.submit([&run_one, i] { run_one(i); });
    pool.wait_idle();
  }
  report.wall_ms = ms_since(t0);
  return report;
}

namespace {

/// One die's HAL under a fault policy: the plain direct HAL, or a FaultyHal
/// decorating it when the policy afflicts the die. The decorator (if any)
/// lives in `storage` so its injection counters outlive the pipeline call.
FlashHal& policy_hal(Device& dev, std::size_t die, const FaultPolicy& policy,
                     std::optional<fault::FaultyHal>& storage) {
  if (!policy.afflicts(die)) return dev.hal();
  storage.emplace(dev.hal(),
                  fault::FaultPlan::for_die(policy.config, dev.die_seed(),
                                            dev.config().geometry));
  return *storage;
}

}  // namespace

ImprintBatchResult imprint_batch(
    const DeviceConfig& config, std::uint64_t master_seed, std::size_t n_dies,
    std::size_t segment,
    const std::function<WatermarkSpec(std::size_t)>& spec_of,
    const FleetOptions& opts, const FaultPolicy& faults) {
  ImprintBatchResult out;
  out.dies.resize(n_dies);
  out.reports.resize(n_dies);
  out.fleet = run_dies(
      n_dies,
      [&](std::size_t die, DieCounters& counters) {
        auto dev = std::make_unique<Device>(config,
                                            derive_die_seed(master_seed, die));
        const Addr addr = dev->config().geometry.segment_base(segment);
        std::optional<fault::FaultyHal> fhal;
        FlashHal& hal = policy_hal(*dev, die, faults, fhal);
        // The die must land in its slot even when the imprint aborts —
        // a power-lost die still exists and can be re-tested.
        out.dies[die] = std::move(dev);
        try {
          out.reports[die] = imprint_watermark(hal, addr, spec_of(die));
          counters.retries += out.reports[die].retries;
        } catch (...) {
          counters.absorb(*out.dies[die]);
          if (fhal) counters.absorb_faults(*fhal);
          throw;
        }
        counters.absorb(*out.dies[die]);
        if (fhal) counters.absorb_faults(*fhal);
      },
      opts);
  return out;
}

ExtractBatchResult extract_batch(
    const std::vector<std::unique_ptr<Device>>& dies, std::size_t segment,
    const ExtractOptions& eo, const FleetOptions& opts,
    const FaultPolicy& faults) {
  ExtractBatchResult out;
  out.results.resize(dies.size());
  out.fleet = run_dies(
      dies.size(),
      [&](std::size_t die, DieCounters& counters) {
        Device& dev = *dies[die];
        dev.controller().reset_op_counters();
        const SimTime before = dev.clock().now();
        const Addr addr = dev.config().geometry.segment_base(segment);
        std::optional<fault::FaultyHal> fhal;
        FlashHal& hal = policy_hal(dev, die, faults, fhal);
        try {
          out.results[die] = extract_flashmark(hal, addr, eo);
          counters.retries += out.results[die].retries;
        } catch (...) {
          counters.absorb(dev);
          counters.sim_time -= before;
          if (fhal) counters.absorb_faults(*fhal);
          throw;
        }
        counters.absorb(dev);
        counters.sim_time -= before;  // only time advanced by this batch
        if (fhal) counters.absorb_faults(*fhal);
      },
      opts);
  return out;
}

AuditBatchResult audit_batch(const std::vector<std::unique_ptr<Device>>& dies,
                             std::size_t segment, const VerifyOptions& vo,
                             const FleetOptions& opts,
                             const FaultPolicy& faults) {
  AuditBatchResult out;
  out.reports.resize(dies.size());
  out.fleet = run_dies(
      dies.size(),
      [&](std::size_t die, DieCounters& counters) {
        Device& dev = *dies[die];
        dev.controller().reset_op_counters();
        const SimTime before = dev.clock().now();
        const Addr addr = dev.config().geometry.segment_base(segment);
        std::optional<fault::FaultyHal> fhal;
        FlashHal& hal = policy_hal(dev, die, faults, fhal);
        try {
          out.reports[die] = verify_watermark(hal, addr, vo);
          counters.absorb_recovery(out.reports[die]);
        } catch (...) {
          counters.absorb(dev);
          counters.sim_time -= before;
          if (fhal) counters.absorb_faults(*fhal);
          throw;
        }
        counters.absorb(dev);
        counters.sim_time -= before;  // only time advanced by this batch
        if (fhal) counters.absorb_faults(*fhal);
      },
      opts);
  return out;
}

}  // namespace flashmark::fleet
