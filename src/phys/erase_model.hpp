// Closed-form helpers over the erase-dynamics model. These are the
// quantities the calibration benches and property tests reason about without
// instantiating a full array.
#pragma once

#include <cstddef>
#include <vector>

#include "phys/params.hpp"
#include "util/rng.hpp"

namespace flashmark {

/// Population summary of time-to-erase for `n_cells` cells after
/// `eff_cycles` of full-pattern stress.
struct TteSummary {
  double min_us = 0.0;
  double median_us = 0.0;
  double max_us = 0.0;
  double mean_us = 0.0;
};

/// Monte-Carlo sample of the time-to-erase distribution (used by calibration
/// and by the recycled-flash detector's reference curves).
TteSummary sample_tte_population(const PhysParams& p, std::size_t n_cells,
                                 double eff_cycles, Rng& rng);

/// Draw `n_cells` time-to-erase values after `eff_cycles` of stress.
std::vector<double> sample_tte_values(const PhysParams& p,
                                      std::size_t n_cells, double eff_cycles,
                                      Rng& rng);

/// P(cell still programmed after a partial erase of t_pe), estimated from
/// `n_cells` Monte-Carlo draws. The deterministic counterpart of Fig. 4.
double prob_still_programmed(const PhysParams& p, double t_pe_us,
                             double eff_cycles, std::size_t n_cells, Rng& rng);

/// Equivalent cumulative stress of NPE imprint cycles for a stressed
/// ("bad") watermark cell and for a kept-erased ("good") cell.
double eff_cycles_bad(const PhysParams& p, double npe);
double eff_cycles_good(const PhysParams& p, double npe);

}  // namespace flashmark
