#include "phys/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/fm_math.hpp"

namespace flashmark {

const char* to_string(KernelMode m) {
  switch (m) {
    case KernelMode::kReference: return "reference";
    case KernelMode::kBatched: return "batched";
  }
  return "unknown";
}

SegmentSoA::SegmentSoA(std::size_t n)
    : tte_fresh_us(n, 24.0f),
      susceptibility(n, 1.0f),
      eff_cycles(n, 0.0),
      annealed(n, 0.0),
      level(n, static_cast<std::uint8_t>(CellLevel::kErased)),
      defect(n, static_cast<std::uint8_t>(CellDefect::kNone)),
      metastable(n, 0),
      margin_us(n, 0.0f),
      n_(n),
      tte_cache_(n, 0.0),
      tte_valid_(n, 0) {}

Cell::Snapshot SegmentSoA::snapshot(std::size_t i) const {
  return Cell::Snapshot{tte_fresh_us[i], susceptibility[i], eff_cycles[i],
                        annealed[i],     level[i],          defect[i],
                        metastable[i],   margin_us[i]};
}

void SegmentSoA::assign(std::size_t i, const Cell::Snapshot& s) {
  tte_fresh_us[i] = s.tte_fresh_us;
  susceptibility[i] = s.susceptibility;
  eff_cycles[i] = s.eff_cycles;
  annealed[i] = s.annealed;
  level[i] = s.level;
  defect[i] = s.defect;
  metastable[i] = s.metastable;
  margin_us[i] = s.margin_us;
  tte_valid_[i] = 0;
}

namespace kernels {

namespace {

constexpr std::uint8_t kErased = static_cast<std::uint8_t>(CellLevel::kErased);
constexpr std::uint8_t kNoDefect =
    static_cast<std::uint8_t>(CellDefect::kNone);

// Reference-path gather/scatter: materialize the scalar Cell, run the
// member function (the reference semantics, phys/cell.cpp), write it back.
Cell gather(const SegmentSoA& s, std::size_t i) {
  return Cell::restore(s.snapshot(i));
}

void scatter(SegmentSoA& s, std::size_t i, const Cell& c) {
  s.assign(i, c.snapshot_state());
}

// Settle cell i into `lvl` (Cell::settle).
inline void settle(SegmentSoA& s, std::size_t i, std::uint8_t lvl) {
  s.level[i] = lvl;
  s.metastable[i] = 0;
  s.margin_us[i] = 0.0f;
}

}  // namespace

void erase_full_segment(KernelMode m, SegmentSoA& s, const PhysParams& p) {
  const std::size_t n = s.size();
  if (m == KernelMode::kReference) {
    for (std::size_t i = 0; i < n; ++i) {
      Cell c = gather(s, i);
      c.full_erase(p);
      scatter(s, i, c);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (s.defect[i] != kNoDefect) continue;  // stuck cells never move
    s.eff_cycles[i] +=
        s.level[i] == kErased ? p.stress_erase_idle : p.stress_erase_transition;
    s.invalidate_tte(i);
    settle(s, i, kErased);
  }
}

void erase_pulse_segment(KernelMode m, SegmentSoA& s, const PhysParams& p,
                         double t_pe_us, Rng& rng) {
  const std::size_t n = s.size();
  if (m == KernelMode::kReference) {
    for (std::size_t i = 0; i < n; ++i) {
      Cell c = gather(s, i);
      c.partial_erase(p, t_pe_us, rng);
      scatter(s, i, c);
    }
    return;
  }
  // Mirrors Cell::partial_erase expression-for-expression, in three passes:
  //
  //   1. refill stale nominal-erase-time cache entries 4-wide (fm_pow_pos_n
  //      is bit-identical to the scalar growth() the cache getter runs);
  //   2. draw the per-cell jitter normals in exact scalar cell order (the
  //      RNG stream is observable state), then exponentiate the batch;
  //   3. apply the branch logic per cell from the precomputed values.
  //
  // Scratch buffers are thread_local so the fleet's parallel dies never
  // share them and steady-state pulses allocate nothing.
  static thread_local std::vector<double> growth_in, growth_out;
  static thread_local std::vector<std::size_t> draw_idx;
  static thread_local std::vector<double> jitter;

  growth_in.resize(n);
  growth_out.resize(n);
  std::size_t n_stale = 0;
  static thread_local std::vector<std::size_t> stale_idx;
  stale_idx.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (s.tte_cached(i)) continue;
    stale_idx[n_stale] = i;
    // growth() guards eff <= 0 -> 0; feed the vector lane a benign 1.0 and
    // zero the result below so the blend matches the scalar guard exactly.
    growth_in[n_stale] = s.eff_cycles[i] > 0.0 ? s.eff_cycles[i] / 1000.0 : 1.0;
    ++n_stale;
  }
  fmm::fm_pow_pos_n(growth_in.data(), p.damage_exponent, growth_out.data(),
                    n_stale);
  for (std::size_t k = 0; k < n_stale; ++k) {
    const std::size_t i = stale_idx[k];
    const double g = s.eff_cycles[i] > 0.0 ? growth_out[k] : 0.0;
    s.prime_tte(i, static_cast<double>(s.tte_fresh_us[i]) *
                       p.slowdown_from_growth(
                           static_cast<double>(s.susceptibility[i]), g));
  }

  const bool jittered = p.tte_event_jitter_sigma > 0.0;
  std::size_t n_draws = 0;
  if (jittered) {
    draw_idx.resize(n);
    jitter.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (s.defect[i] != kNoDefect || s.level[i] == kErased) continue;
      draw_idx[n_draws] = i;
      ++n_draws;
    }
    rng.normal_fill(0.0, p.tte_event_jitter_sigma, jitter.data(), n_draws);
    fmm::fm_exp_n(jitter.data(), jitter.data(), n_draws);
  }

  std::size_t draw = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (s.defect[i] != kNoDefect) continue;
    if (s.level[i] == kErased) {
      const double nominal = s.nominal_tte_us(i, p);
      const double frac =
          nominal > 0.0 ? std::min(t_pe_us / nominal, 1.0) : 1.0;
      s.eff_cycles[i] += p.stress_erase_idle * frac;
      s.invalidate_tte(i);
      continue;  // state unchanged; an erased cell stays erased
    }
    double tte = s.nominal_tte_us(i, p);
    if (jittered) tte *= jitter[draw++];
    const double margin = tte - t_pe_us;
    if (margin <= 0.0) {
      s.eff_cycles[i] += p.stress_erase_transition;
      s.level[i] = kErased;
    } else {
      s.eff_cycles[i] +=
          p.stress_erase_transition * std::min(t_pe_us / tte, 1.0) * 0.5;
      s.level[i] = static_cast<std::uint8_t>(CellLevel::kProgrammed);
    }
    s.invalidate_tte(i);
    s.metastable[i] = 1;
    s.margin_us[i] = static_cast<float>(margin);
  }
}

void program_words(KernelMode m, SegmentSoA& s, const PhysParams& p,
                   std::size_t cell0, const std::uint16_t* words,
                   std::size_t n_words, std::size_t bits_per_word) {
  if (m == KernelMode::kReference) {
    for (std::size_t w = 0; w < n_words; ++w)
      for (std::size_t b = 0; b < bits_per_word; ++b)
        if (((words[w] >> b) & 1u) == 0) {
          const std::size_t i = cell0 + w * bits_per_word + b;
          Cell c = gather(s, i);
          c.program(p);
          scatter(s, i, c);
        }
    return;
  }
  for (std::size_t w = 0; w < n_words; ++w) {
    const std::uint16_t value = words[w];
    if (value == 0xFFFF) continue;  // nothing to program in this word
    const std::size_t base = cell0 + w * bits_per_word;
    for (std::size_t b = 0; b < bits_per_word; ++b) {
      if (((value >> b) & 1u) != 0) continue;
      const std::size_t i = base + b;
      if (s.defect[i] != kNoDefect) continue;
      s.eff_cycles[i] +=
          s.level[i] == kErased ? p.stress_program : p.stress_reprogram;
      s.invalidate_tte(i);
      settle(s, i, static_cast<std::uint8_t>(CellLevel::kProgrammed));
    }
  }
}

void partial_program_word(KernelMode m, SegmentSoA& s, const PhysParams& p,
                          std::size_t cell0, std::uint16_t value,
                          std::size_t bits_per_word, double fraction,
                          Rng& rng) {
  if (m == KernelMode::kReference) {
    for (std::size_t b = 0; b < bits_per_word; ++b)
      if (((value >> b) & 1u) == 0) {
        Cell c = gather(s, cell0 + b);
        c.partial_program(p, fraction, rng);
        scatter(s, cell0 + b, c);
      }
    return;
  }
  for (std::size_t b = 0; b < bits_per_word; ++b) {
    if (((value >> b) & 1u) != 0) continue;
    const std::size_t i = cell0 + b;
    if (s.defect[i] != kNoDefect) continue;
    if (s.level[i] != kErased) {
      s.eff_cycles[i] += p.stress_reprogram * std::min(fraction, 1.0);
      s.invalidate_tte(i);
      continue;
    }
    // Trap-assisted injection (Cell::partial_program): damage is evaluated
    // on the pre-pulse stress, then the pulse's own stress lands.
    const double damage =
        static_cast<double>(s.susceptibility[i]) * p.growth(s.eff_cycles[i]);
    const double threshold =
        rng.normal(p.prog_completion_mean, p.prog_completion_sigma) /
        (1.0 + p.k_prog_speedup * damage);
    const double margin = threshold - fraction;
    s.eff_cycles[i] += p.stress_program * std::min(fraction, 1.0);
    s.invalidate_tte(i);
    s.level[i] = margin <= 0.0
                     ? static_cast<std::uint8_t>(CellLevel::kProgrammed)
                     : kErased;
    s.metastable[i] = 1;
    s.margin_us[i] = static_cast<float>(margin * 10.0);
  }
}

std::uint16_t read_word(KernelMode m, const SegmentSoA& s,
                        const PhysParams& p, std::size_t cell0,
                        std::size_t bits_per_word, Rng& rng) {
  std::uint16_t value = 0;
  if (m == KernelMode::kReference) {
    for (std::size_t b = 0; b < bits_per_word; ++b)
      if (gather(s, cell0 + b).read(p, rng))
        value |= static_cast<std::uint16_t>(1u << b);
    return value;
  }
  for (std::size_t b = 0; b < bits_per_word; ++b) {
    const std::size_t i = cell0 + b;
    bool v = s.level[i] == kErased;
    if (s.defect[i] == kNoDefect && s.metastable[i]) {
      const double dist = std::abs(static_cast<double>(s.margin_us[i]));
      const double p_flip = 0.5 * fmm::fm_exp(-dist / p.read_noise_tau_us);
      if (rng.bernoulli(p_flip)) v = !v;
    }
    if (v) value |= static_cast<std::uint16_t>(1u << b);
  }
  return value;
}

void read_segment_majority(KernelMode m, const SegmentSoA& s,
                           const PhysParams& p, std::size_t bits_per_word,
                           int n_reads, Rng& rng, BitVec& out) {
  const std::size_t n_words = s.size() / bits_per_word;
  // The hoisting buffers below are sized for <= 16-bit words (every
  // supported geometry); wider words take the reference loop, which is
  // byte-identical by contract.
  if (m == KernelMode::kReference || bits_per_word > 16) {
    std::vector<int> ones(bits_per_word);
    for (std::size_t w = 0; w < n_words; ++w) {
      ones.assign(bits_per_word, 0);
      for (int r = 0; r < n_reads; ++r) {
        const std::uint16_t v = read_word(KernelMode::kReference, s, p,
                                          w * bits_per_word, bits_per_word,
                                          rng);
        for (std::size_t b = 0; b < bits_per_word; ++b)
          ones[b] += static_cast<int>((v >> b) & 1u);
      }
      for (std::size_t b = 0; b < bits_per_word; ++b)
        out.set(w * bits_per_word + b, ones[b] * 2 > n_reads);
    }
    return;
  }
  // Flip probabilities are read-invariant, so hoist them once for the whole
  // segment and run the exp batch 4-wide (bit-identical to the scalar
  // 0.5 * fm_exp(-dist / tau) per cell). Scratch is thread_local: parallel
  // fleet dies never share it, steady-state reads allocate nothing.
  const std::size_t n = s.size();
  static thread_local std::vector<double> pflip_seg;
  static thread_local std::vector<std::size_t> meta_idx;
  static thread_local std::vector<double> meta_x;
  pflip_seg.resize(n);
  meta_idx.resize(n);
  meta_x.resize(n);
  std::size_t n_meta = 0;
  for (std::size_t i = 0; i < n; ++i) {
    pflip_seg[i] = -1.0;  // < 0 marks "deterministic, no draw"
    if (s.defect[i] == kNoDefect && s.metastable[i]) {
      const double dist = std::abs(static_cast<double>(s.margin_us[i]));
      meta_idx[n_meta] = i;
      meta_x[n_meta] = -dist / p.read_noise_tau_us;
      ++n_meta;
    }
  }
  fmm::fm_exp_n(meta_x.data(), meta_x.data(), n_meta);
  for (std::size_t k = 0; k < n_meta; ++k)
    pflip_seg[meta_idx[k]] = 0.5 * meta_x[k];

  // Per word: hoist each bit's settled value, then spin the n_reads
  // Bernoulli draws in the exact scalar order (read-major, bit-ascending).
  int ones[16];
  bool settled_val[16];
  double p_flip[16];
  for (std::size_t w = 0; w < n_words; ++w) {
    const std::size_t base = w * bits_per_word;
    for (std::size_t b = 0; b < bits_per_word; ++b) {
      const std::size_t i = base + b;
      ones[b] = 0;
      settled_val[b] = s.level[i] == kErased;
      p_flip[b] = pflip_seg[i];
    }
    for (int r = 0; r < n_reads; ++r)
      for (std::size_t b = 0; b < bits_per_word; ++b) {
        bool v = settled_val[b];
        if (p_flip[b] >= 0.0 && rng.bernoulli(p_flip[b])) v = !v;
        ones[b] += v ? 1 : 0;
      }
    for (std::size_t b = 0; b < bits_per_word; ++b)
      out.set(base + b, ones[b] * 2 > n_reads);
  }
}

void wear_cells(KernelMode m, SegmentSoA& s, const PhysParams& p,
                double cycles, const BitVec* pattern) {
  const std::size_t n = s.size();
  if (m == KernelMode::kReference) {
    for (std::size_t i = 0; i < n; ++i) {
      Cell c = gather(s, i);
      c.batch_stress(p, cycles, pattern ? !pattern->get(i) : true,
                     /*end_programmed=*/pattern != nullptr);
      scatter(s, i, c);
    }
    return;
  }
  if (cycles < 0.0) cycles = 0.0;
  const bool end_programmed = pattern != nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    if (s.defect[i] != kNoDefect) continue;
    const bool programmed_each_cycle = pattern ? !pattern->get(i) : true;
    const double per_cycle =
        programmed_each_cycle ? p.stress_program + p.stress_erase_transition
                              : p.stress_erase_idle;
    s.eff_cycles[i] += cycles * per_cycle;
    s.invalidate_tte(i);
    settle(s, i,
           programmed_each_cycle && end_programmed
               ? static_cast<std::uint8_t>(CellLevel::kProgrammed)
               : kErased);
  }
}

void age_segment(KernelMode m, SegmentSoA& s, const PhysParams& p,
                 double years, Rng& rng) {
  const std::size_t n = s.size();
  if (m == KernelMode::kReference) {
    for (std::size_t i = 0; i < n; ++i) {
      Cell c = gather(s, i);
      c.age(p, years, rng);
      scatter(s, i, c);
    }
    return;
  }
  if (years <= 0.0) return;  // Cell::age draws nothing in this case
  for (std::size_t i = 0; i < n; ++i) {
    if (s.defect[i] != kNoDefect) continue;
    if (s.level[i] == kErased) continue;  // only programmed cells leak
    const double damage =
        static_cast<double>(s.susceptibility[i]) * p.growth(s.eff_cycles[i]);
    const double halflife =
        p.retention_halflife_years / (1.0 + p.retention_wear_accel * damage);
    const double p_lost = 1.0 - std::exp2(-years / halflife);
    if (rng.bernoulli(p_lost)) settle(s, i, kErased);
    // Damage is untouched: the erase-time cache stays warm through aging.
  }
}

void bake_segment(KernelMode m, SegmentSoA& s, const PhysParams& p,
                  double hours) {
  const std::size_t n = s.size();
  if (m == KernelMode::kReference) {
    for (std::size_t i = 0; i < n; ++i) {
      Cell c = gather(s, i);
      c.bake(p, hours);
      scatter(s, i, c);
    }
    return;
  }
  if (hours <= 0.0) return;
  for (std::size_t i = 0; i < n; ++i) {
    const double lifetime_stress = s.eff_cycles[i] + s.annealed[i];
    const double budget = std::max(
        0.0, p.anneal_recovery_frac * lifetime_stress - s.annealed[i]);
    const double delta =
        budget * (1.0 - fmm::fm_exp(-hours / p.anneal_tau_hours));
    s.eff_cycles[i] -= delta;
    s.annealed[i] += delta;
    s.invalidate_tte(i);
  }
}

double time_to_full_erase_us(KernelMode m, const SegmentSoA& s,
                             const PhysParams& p) {
  const std::size_t n = s.size();
  double max_tte = 0.0;
  if (m == KernelMode::kReference) {
    for (std::size_t i = 0; i < n; ++i) {
      const Cell c = gather(s, i);
      if (!c.erased()) max_tte = std::max(max_tte, c.tte_us(p));
    }
    return max_tte;
  }
  for (std::size_t i = 0; i < n; ++i)
    if (s.level[i] != kErased)
      max_tte = std::max(max_tte, s.nominal_tte_us(i, p));
  return max_tte;
}

}  // namespace kernels

}  // namespace flashmark
