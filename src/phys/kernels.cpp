#include "phys/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/fm_math.hpp"

// This file is compiled with -ffp-contract=off (src/CMakeLists.txt): the
// masked-SIMD kernels below pair explicit _mm*_mul_pd/_mm*_add_pd intrinsics
// to mirror scalar mul-then-add expressions, and a contraction pass fusing
// those pairs into fmadd inside the target("fma") functions would break
// byte-identity with the uncontracted baseline scalar code in phys/cell.cpp.
#if defined(__x86_64__) && defined(__GNUC__)
#define FM_KERNELS_X86 1
#include <immintrin.h>
#else
#define FM_KERNELS_X86 0
#endif

namespace flashmark {

const char* to_string(KernelMode m) {
  switch (m) {
    case KernelMode::kReference: return "reference";
    case KernelMode::kBatched: return "batched";
  }
  return "unknown";
}

SegmentSoA::SegmentSoA(std::size_t n)
    : tte_fresh_us(n, 24.0f),
      susceptibility(n, 1.0f),
      eff_cycles(n, 0.0),
      annealed(n, 0.0),
      level(n, static_cast<std::uint8_t>(CellLevel::kErased)),
      defect(n, static_cast<std::uint8_t>(CellDefect::kNone)),
      metastable(n, 0),
      margin_us(n, 0.0f),
      n_(n),
      tte_cache_(n, 0.0),
      tte_valid_(n, 0) {}

Cell::Snapshot SegmentSoA::snapshot(std::size_t i) const {
  return Cell::Snapshot{tte_fresh_us[i], susceptibility[i], eff_cycles[i],
                        annealed[i],     level[i],          defect[i],
                        metastable[i],   margin_us[i]};
}

void SegmentSoA::assign(std::size_t i, const Cell::Snapshot& s) {
  tte_fresh_us[i] = s.tte_fresh_us;
  susceptibility[i] = s.susceptibility;
  eff_cycles[i] = s.eff_cycles;
  annealed[i] = s.annealed;
  level[i] = s.level;
  defect[i] = s.defect;
  metastable[i] = s.metastable;
  margin_us[i] = s.margin_us;
  tte_valid_[i] = 0;
}

namespace kernels {

namespace {

constexpr std::uint8_t kErased = static_cast<std::uint8_t>(CellLevel::kErased);
constexpr std::uint8_t kNoDefect =
    static_cast<std::uint8_t>(CellDefect::kNone);

// Reference-path gather/scatter: materialize the scalar Cell, run the
// member function (the reference semantics, phys/cell.cpp), write it back.
Cell gather(const SegmentSoA& s, std::size_t i) {
  return Cell::restore(s.snapshot(i));
}

void scatter(SegmentSoA& s, std::size_t i, const Cell& c) {
  s.assign(i, c.snapshot_state());
}

// Settle cell i into `lvl` (Cell::settle).
inline void settle(SegmentSoA& s, std::size_t i, std::uint8_t lvl) {
  s.level[i] = lvl;
  s.metastable[i] = 0;
  s.margin_us[i] = 0.0f;
}

constexpr std::uint8_t kProgrammed8 =
    static_cast<std::uint8_t>(CellLevel::kProgrammed);

// Per-thread scratch arena for the batched kernels: one block of vectors
// reused by every kernel invocation on this thread, so steady-state pulses
// and reads allocate nothing (bench/perf_micro.cpp polices this with its
// allocation guards) and the fleet's parallel dies never share scratch. The
// erase-pulse buffers hold the concatenation across all jobs of one
// erase_pulse_segments call; job k's cells live at [job_cell_off[k],
// job_cell_off[k+1]).
struct KernelArena {
  std::vector<double> growth_in, growth_out;
  std::vector<std::size_t> stale_idx;
  std::vector<std::size_t> job_cell_off, job_stale_off, job_draw_off;
  std::vector<std::size_t> draw_idx;
  std::vector<double> jitter;       // packed draws, exponentiated in place
  std::vector<double> jitter_full;  // scattered per cell (dead lanes unread)
  // read-majority hoisting
  std::vector<double> pflip_seg, meta_x;
  std::vector<std::size_t> meta_idx;
};

KernelArena& arena() {
  static thread_local KernelArena a;
  return a;
}

// --- erase-pulse pass 1: nominal-tte cache refill --------------------------
// Combine step after the pow batch: tte = tte_fresh * fma(k_damage*susc, g,
// 1.0), g = eff>0 ? pow_out : 0 (PhysParams::slowdown_from_growth). The
// dense case (every cache entry stale — the steady state under repeated
// pulses, which invalidate everything) runs vectorized; the sparse case
// walks the compacted index list scalar.

void combine_dense_scalar_range(SegmentSoA& s, const PhysParams& p,
                                const double* growth_out, std::size_t i0,
                                std::size_t i1) {
  double* cache = s.tte_cache_data();
  for (std::size_t i = i0; i < i1; ++i) {
    const double g = s.eff_cycles[i] > 0.0 ? growth_out[i] : 0.0;
    cache[i] = static_cast<double>(s.tte_fresh_us[i]) *
               p.slowdown_from_growth(
                   static_cast<double>(s.susceptibility[i]), g);
  }
}

#if FM_KERNELS_X86

__attribute__((target("avx2,fma"))) void combine_dense_avx2(
    SegmentSoA& s, const PhysParams& p, const double* growth_out,
    std::size_t n) {
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vkd = _mm256_set1_pd(p.k_damage);
  double* cache = s.tte_cache_data();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d eff = _mm256_loadu_pd(s.eff_cycles.data() + i);
    const __m256d pos = _mm256_cmp_pd(eff, vzero, _CMP_GT_OQ);
    // g = pos ? pow_out : +0.0 (bitwise AND with the all-ones/zero mask)
    const __m256d g = _mm256_and_pd(_mm256_loadu_pd(growth_out + i), pos);
    const __m256d susc =
        _mm256_cvtps_pd(_mm_loadu_ps(s.susceptibility.data() + i));
    const __m256d a = _mm256_mul_pd(vkd, susc);
    const __m256d slow = _mm256_fmadd_pd(a, g, vone);  // the std::fma
    const __m256d tf = _mm256_cvtps_pd(_mm_loadu_ps(s.tte_fresh_us.data() + i));
    _mm256_storeu_pd(cache + i, _mm256_mul_pd(tf, slow));
  }
  combine_dense_scalar_range(s, p, growth_out, i, n);
}

__attribute__((target("avx512f,avx512dq,avx512bw,avx512vl,avx2,fma"))) void
combine_dense_avx512(SegmentSoA& s, const PhysParams& p,
                     const double* growth_out, std::size_t n) {
  const __m512d vzero = _mm512_setzero_pd();
  const __m512d vone = _mm512_set1_pd(1.0);
  const __m512d vkd = _mm512_set1_pd(p.k_damage);
  double* cache = s.tte_cache_data();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d eff = _mm512_loadu_pd(s.eff_cycles.data() + i);
    const __mmask8 pos = _mm512_cmp_pd_mask(eff, vzero, _CMP_GT_OQ);
    const __m512d g =
        _mm512_maskz_mov_pd(pos, _mm512_loadu_pd(growth_out + i));
    const __m512d susc =
        _mm512_cvtps_pd(_mm256_loadu_ps(s.susceptibility.data() + i));
    const __m512d a = _mm512_mul_pd(vkd, susc);
    const __m512d slow = _mm512_fmadd_pd(a, g, vone);
    const __m512d tf =
        _mm512_cvtps_pd(_mm256_loadu_ps(s.tte_fresh_us.data() + i));
    _mm512_storeu_pd(cache + i, _mm512_mul_pd(tf, slow));
  }
  combine_dense_scalar_range(s, p, growth_out, i, n);
}

#endif  // FM_KERNELS_X86

void combine_dense(SegmentSoA& s, const PhysParams& p,
                   const double* growth_out, std::size_t n) {
#if FM_KERNELS_X86
  switch (fmm::active_isa()) {
    case fmm::Isa::kAvx512: combine_dense_avx512(s, p, growth_out, n); break;
    case fmm::Isa::kAvx2: combine_dense_avx2(s, p, growth_out, n); break;
    case fmm::Isa::kScalar:
      combine_dense_scalar_range(s, p, growth_out, 0, n);
      break;
  }
#else
  combine_dense_scalar_range(s, p, growth_out, 0, n);
#endif
  std::memset(s.tte_valid_data(), 1, n);
}

// --- erase-pulse pass 3: the per-cell decision logic -----------------------
// Mirrors Cell::partial_erase branch-for-branch. The vector variants turn
// the branches into lane masks and compute both sides; every lane's
// surviving value went through exactly the scalar ops in the scalar order
// (div, min, mul, mul, add ...), so the blends cannot change any bit. The
// jitter factor comes pre-scattered per cell (jit[i]); lanes that never
// consult it (erased/defect) read initialized-but-meaningless values that
// are blended away (IEEE ops on them cannot trap under the default MXCSR).

void pass3_scalar_range(SegmentSoA& s, const PhysParams& p, double t_pe_us,
                        const double* jit, bool jittered, std::size_t i0,
                        std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    if (s.defect[i] != kNoDefect) continue;
    if (s.level[i] == kErased) {
      const double nominal = s.nominal_tte_us(i, p);
      const double frac =
          nominal > 0.0 ? std::min(t_pe_us / nominal, 1.0) : 1.0;
      s.eff_cycles[i] += p.stress_erase_idle * frac;
      s.invalidate_tte(i);
      continue;  // state unchanged; an erased cell stays erased
    }
    double tte = s.nominal_tte_us(i, p);
    if (jittered) tte *= jit[i];
    const double margin = tte - t_pe_us;
    if (margin <= 0.0) {
      s.eff_cycles[i] += p.stress_erase_transition;
      s.level[i] = kErased;
    } else {
      s.eff_cycles[i] +=
          p.stress_erase_transition * std::min(t_pe_us / tte, 1.0) * 0.5;
      s.level[i] = kProgrammed8;
    }
    s.invalidate_tte(i);
    s.metastable[i] = 1;
    s.margin_us[i] = static_cast<float>(margin);
  }
}

#if FM_KERNELS_X86

__attribute__((target("avx2,fma"))) void pass3_avx2(SegmentSoA& s,
                                                    const PhysParams& p,
                                                    double t_pe_us,
                                                    const double* jit,
                                                    bool jittered) {
  const std::size_t n = s.size();
  const __m256d vt = _mm256_set1_pd(t_pe_us);
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d videl = _mm256_set1_pd(p.stress_erase_idle);
  const __m256d vtrans = _mm256_set1_pd(p.stress_erase_transition);
  const __m256d vhalf = _mm256_set1_pd(0.5);
  double* cache = s.tte_cache_data();
  std::uint8_t* valid = s.tte_valid_data();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint32_t db;
    std::uint32_t lb;
    std::memcpy(&db, s.defect.data() + i, 4);
    std::memcpy(&lb, s.level.data() + i, 4);
    const __m256d m_act = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
        _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(db))),
        _mm256_set1_epi64x(kNoDefect)));
    const __m256d m_er = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
        _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(lb))),
        _mm256_set1_epi64x(kErased)));
    const __m256d nominal = _mm256_loadu_pd(cache + i);
    // erased branch: frac = nominal > 0 ? min(t/nominal, 1) : 1
    const __m256d m_npos = _mm256_cmp_pd(nominal, vzero, _CMP_GT_OQ);
    __m256d frac_a = _mm256_min_pd(_mm256_div_pd(vt, nominal), vone);
    frac_a = _mm256_blendv_pd(vone, frac_a, m_npos);
    const __m256d delta_a = _mm256_mul_pd(videl, frac_a);
    // programmed branch: tte (*jitter), margin, full or prorated stress
    __m256d ttej = nominal;
    if (jittered) ttej = _mm256_mul_pd(nominal, _mm256_loadu_pd(jit + i));
    const __m256d margin = _mm256_sub_pd(ttej, vt);
    const __m256d m_le = _mm256_cmp_pd(margin, vzero, _CMP_LE_OQ);
    const __m256d frac_b = _mm256_min_pd(_mm256_div_pd(vt, ttej), vone);
    const __m256d delta_ab =
        _mm256_mul_pd(_mm256_mul_pd(vtrans, frac_b), vhalf);
    const __m256d delta_b = _mm256_blendv_pd(delta_ab, vtrans, m_le);
    // one masked eff update per lane, whichever branch the lane took
    const __m256d delta = _mm256_blendv_pd(delta_b, delta_a, m_er);
    const __m256d eff = _mm256_loadu_pd(s.eff_cycles.data() + i);
    const __m256d eff_new = _mm256_add_pd(eff, delta);
    _mm256_storeu_pd(s.eff_cycles.data() + i,
                     _mm256_blendv_pd(eff, eff_new, m_act));
    // byte-state epilogue: 4 narrow stores driven by the lane masks
    float mtmp[4];
    _mm_storeu_ps(mtmp, _mm256_cvtpd_ps(margin));
    const int act = _mm256_movemask_pd(m_act);
    const int er = _mm256_movemask_pd(m_er);
    const int le = _mm256_movemask_pd(m_le);
    for (int lane = 0; lane < 4; ++lane) {
      if (((act >> lane) & 1) == 0) continue;
      const std::size_t c = i + static_cast<std::size_t>(lane);
      valid[c] = 0;
      if ((er >> lane) & 1) continue;
      s.level[c] = ((le >> lane) & 1) ? kErased : kProgrammed8;
      s.metastable[c] = 1;
      s.margin_us[c] = mtmp[lane];
    }
  }
  pass3_scalar_range(s, p, t_pe_us, jit, jittered, i, n);
}

__attribute__((target("avx512f,avx512dq,avx512bw,avx512vl,avx2,fma"))) void
pass3_avx512(SegmentSoA& s, const PhysParams& p, double t_pe_us,
             const double* jit, bool jittered) {
  const std::size_t n = s.size();
  const __m512d vt = _mm512_set1_pd(t_pe_us);
  const __m512d vone = _mm512_set1_pd(1.0);
  const __m512d vzero = _mm512_setzero_pd();
  const __m512d videl = _mm512_set1_pd(p.stress_erase_idle);
  const __m512d vtrans = _mm512_set1_pd(p.stress_erase_transition);
  const __m512d vhalf = _mm512_set1_pd(0.5);
  double* cache = s.tte_cache_data();
  std::uint8_t* valid = s.tte_valid_data();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i db = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(s.defect.data() + i));
    const __m128i lb = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(s.level.data() + i));
    const __mmask8 m_act = static_cast<__mmask8>(_mm_cmpeq_epi8_mask(
        db, _mm_set1_epi8(static_cast<char>(kNoDefect))));
    const __mmask8 m_er = static_cast<__mmask8>(_mm_cmpeq_epi8_mask(
        lb, _mm_set1_epi8(static_cast<char>(kErased))));
    const __m512d nominal = _mm512_loadu_pd(cache + i);
    const __mmask8 m_npos = _mm512_cmp_pd_mask(nominal, vzero, _CMP_GT_OQ);
    __m512d frac_a = _mm512_min_pd(_mm512_div_pd(vt, nominal), vone);
    frac_a = _mm512_mask_mov_pd(vone, m_npos, frac_a);
    const __m512d delta_a = _mm512_mul_pd(videl, frac_a);
    __m512d ttej = nominal;
    if (jittered) ttej = _mm512_mul_pd(nominal, _mm512_loadu_pd(jit + i));
    const __m512d margin = _mm512_sub_pd(ttej, vt);
    const __mmask8 m_le = _mm512_cmp_pd_mask(margin, vzero, _CMP_LE_OQ);
    const __m512d frac_b = _mm512_min_pd(_mm512_div_pd(vt, ttej), vone);
    const __m512d delta_ab =
        _mm512_mul_pd(_mm512_mul_pd(vtrans, frac_b), vhalf);
    const __m512d delta_b = _mm512_mask_mov_pd(delta_ab, m_le, vtrans);
    const __m512d delta = _mm512_mask_mov_pd(delta_b, m_er, delta_a);
    const __m512d eff = _mm512_loadu_pd(s.eff_cycles.data() + i);
    _mm512_mask_storeu_pd(s.eff_cycles.data() + i, m_act,
                          _mm512_add_pd(eff, delta));
    // byte/float state via masked narrow stores (AVX-512BW/VL)
    const __mmask8 m_b = m_act & static_cast<__mmask8>(~m_er);
    _mm_mask_storeu_epi8(valid + i, static_cast<__mmask16>(m_act),
                         _mm_setzero_si128());
    const __m128i lv = _mm_mask_mov_epi8(
        _mm_set1_epi8(static_cast<char>(kProgrammed8)),
        static_cast<__mmask16>(m_le),
        _mm_set1_epi8(static_cast<char>(kErased)));
    _mm_mask_storeu_epi8(s.level.data() + i, static_cast<__mmask16>(m_b), lv);
    _mm_mask_storeu_epi8(s.metastable.data() + i,
                         static_cast<__mmask16>(m_b), _mm_set1_epi8(1));
    _mm256_mask_storeu_ps(s.margin_us.data() + i, m_b,
                          _mm512_cvtpd_ps(margin));
  }
  pass3_scalar_range(s, p, t_pe_us, jit, jittered, i, n);
}

#endif  // FM_KERNELS_X86

void pass3(SegmentSoA& s, const PhysParams& p, double t_pe_us,
           const double* jit, bool jittered) {
#if FM_KERNELS_X86
  switch (fmm::active_isa()) {
    case fmm::Isa::kAvx512: pass3_avx512(s, p, t_pe_us, jit, jittered); return;
    case fmm::Isa::kAvx2: pass3_avx2(s, p, t_pe_us, jit, jittered); return;
    case fmm::Isa::kScalar: break;
  }
#endif
  pass3_scalar_range(s, p, t_pe_us, jit, jittered, 0, s.size());
}

}  // namespace

void erase_full_segment(KernelMode m, SegmentSoA& s, const PhysParams& p) {
  const std::size_t n = s.size();
  if (m == KernelMode::kReference) {
    for (std::size_t i = 0; i < n; ++i) {
      Cell c = gather(s, i);
      c.full_erase(p);
      scatter(s, i, c);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (s.defect[i] != kNoDefect) continue;  // stuck cells never move
    s.eff_cycles[i] +=
        s.level[i] == kErased ? p.stress_erase_idle : p.stress_erase_transition;
    s.invalidate_tte(i);
    settle(s, i, kErased);
  }
}

void erase_pulse_segment(KernelMode m, SegmentSoA& s, const PhysParams& p,
                         double t_pe_us, Rng& rng) {
  const ErasePulseJob job{&s, &p, t_pe_us, &rng};
  erase_pulse_segments(m, &job, 1);
}

void erase_pulse_segments(KernelMode m, const ErasePulseJob* jobs,
                          std::size_t n_jobs) {
  if (n_jobs == 0) return;
  if (m == KernelMode::kReference) {
    for (std::size_t j = 0; j < n_jobs; ++j) {
      SegmentSoA& s = *jobs[j].seg;
      const PhysParams& p = *jobs[j].phys;
      const std::size_t n = s.size();
      for (std::size_t i = 0; i < n; ++i) {
        Cell c = gather(s, i);
        c.partial_erase(p, jobs[j].t_pe_us, *jobs[j].rng);
        scatter(s, i, c);
      }
    }
    return;
  }
  // Mirrors Cell::partial_erase expression-for-expression, in three passes
  // run across ALL jobs so the transcendental batches see the concatenated
  // survivor sets (whole vector lanes even when each job's share is sparse):
  //
  //   1. refill stale nominal-erase-time cache entries vector-wide
  //      (fm_pow_pos_n is bit-identical to the scalar growth() the cache
  //      getter runs), batching jobs that share damage_exponent;
  //   2. draw each job's per-cell jitter normals from that job's own RNG in
  //      exact scalar cell order (the RNG stream is observable state), then
  //      exponentiate the whole concatenation in one batch;
  //   3. apply the branch logic per job from the precomputed values
  //      (masked-SIMD when the dispatcher has lanes).
  //
  // Per-job results are byte-identical to sequential erase_pulse_segment
  // calls: passes 1/2 are elementwise (grouping cannot change bits) and
  // pass 3 touches one job at a time.
  KernelArena& a = arena();
  a.job_cell_off.resize(n_jobs + 1);
  std::size_t total = 0;
  for (std::size_t j = 0; j < n_jobs; ++j) {
    a.job_cell_off[j] = total;
    total += jobs[j].seg->size();
  }
  a.job_cell_off[n_jobs] = total;

  a.growth_in.resize(total);
  a.growth_out.resize(total);
  a.stale_idx.resize(total);
  a.job_stale_off.resize(n_jobs + 1);
  std::size_t n_stale = 0;
  for (std::size_t j = 0; j < n_jobs; ++j) {
    a.job_stale_off[j] = n_stale;
    const SegmentSoA& s = *jobs[j].seg;
    const std::size_t n = s.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (s.tte_cached(i)) continue;
      a.stale_idx[n_stale] = i;
      // growth() guards eff <= 0 -> 0; feed the vector lane a benign 1.0
      // and zero the result in the combine so the blend matches the scalar
      // guard exactly.
      a.growth_in[n_stale] =
          s.eff_cycles[i] > 0.0 ? s.eff_cycles[i] / 1000.0 : 1.0;
      ++n_stale;
    }
  }
  a.job_stale_off[n_jobs] = n_stale;

  for (std::size_t j0 = 0; j0 < n_jobs;) {
    std::size_t j1 = j0 + 1;
    while (j1 < n_jobs &&
           jobs[j1].phys->damage_exponent == jobs[j0].phys->damage_exponent)
      ++j1;
    const std::size_t k0 = a.job_stale_off[j0];
    fmm::fm_pow_pos_n(a.growth_in.data() + k0, jobs[j0].phys->damage_exponent,
                      a.growth_out.data() + k0, a.job_stale_off[j1] - k0);
    j0 = j1;
  }

  for (std::size_t j = 0; j < n_jobs; ++j) {
    SegmentSoA& s = *jobs[j].seg;
    const PhysParams& p = *jobs[j].phys;
    const std::size_t off = a.job_stale_off[j];
    const std::size_t cnt = a.job_stale_off[j + 1] - off;
    if (cnt == s.size()) {
      combine_dense(s, p, a.growth_out.data() + off, cnt);
      continue;
    }
    for (std::size_t k = 0; k < cnt; ++k) {
      const std::size_t i = a.stale_idx[off + k];
      const double g = s.eff_cycles[i] > 0.0 ? a.growth_out[off + k] : 0.0;
      s.prime_tte(i, static_cast<double>(s.tte_fresh_us[i]) *
                         p.slowdown_from_growth(
                             static_cast<double>(s.susceptibility[i]), g));
    }
  }

  a.draw_idx.resize(total);
  a.jitter.resize(total);
  a.jitter_full.resize(total);
  a.job_draw_off.resize(n_jobs + 1);
  std::size_t n_draws = 0;
  for (std::size_t j = 0; j < n_jobs; ++j) {
    a.job_draw_off[j] = n_draws;
    const SegmentSoA& s = *jobs[j].seg;
    const PhysParams& p = *jobs[j].phys;
    if (!(p.tte_event_jitter_sigma > 0.0)) continue;
    const std::size_t n = s.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (s.defect[i] != kNoDefect || s.level[i] == kErased) continue;
      a.draw_idx[n_draws] = i;
      ++n_draws;
    }
    jobs[j].rng->normal_fill(0.0, p.tte_event_jitter_sigma,
                             a.jitter.data() + a.job_draw_off[j],
                             n_draws - a.job_draw_off[j]);
  }
  a.job_draw_off[n_jobs] = n_draws;
  fmm::fm_exp_n(a.jitter.data(), a.jitter.data(), n_draws);
  for (std::size_t j = 0; j < n_jobs; ++j) {
    const std::size_t cell0 = a.job_cell_off[j];
    for (std::size_t k = a.job_draw_off[j]; k < a.job_draw_off[j + 1]; ++k)
      a.jitter_full[cell0 + a.draw_idx[k]] = a.jitter[k];
  }

  for (std::size_t j = 0; j < n_jobs; ++j) {
    const PhysParams& p = *jobs[j].phys;
    pass3(*jobs[j].seg, p, jobs[j].t_pe_us,
          a.jitter_full.data() + a.job_cell_off[j],
          p.tte_event_jitter_sigma > 0.0);
  }
}

void program_words(KernelMode m, SegmentSoA& s, const PhysParams& p,
                   std::size_t cell0, const std::uint16_t* words,
                   std::size_t n_words, std::size_t bits_per_word) {
  if (m == KernelMode::kReference) {
    for (std::size_t w = 0; w < n_words; ++w)
      for (std::size_t b = 0; b < bits_per_word; ++b)
        if (((words[w] >> b) & 1u) == 0) {
          const std::size_t i = cell0 + w * bits_per_word + b;
          Cell c = gather(s, i);
          c.program(p);
          scatter(s, i, c);
        }
    return;
  }
  for (std::size_t w = 0; w < n_words; ++w) {
    const std::uint16_t value = words[w];
    if (value == 0xFFFF) continue;  // nothing to program in this word
    const std::size_t base = cell0 + w * bits_per_word;
    for (std::size_t b = 0; b < bits_per_word; ++b) {
      if (((value >> b) & 1u) != 0) continue;
      const std::size_t i = base + b;
      if (s.defect[i] != kNoDefect) continue;
      s.eff_cycles[i] +=
          s.level[i] == kErased ? p.stress_program : p.stress_reprogram;
      s.invalidate_tte(i);
      settle(s, i, static_cast<std::uint8_t>(CellLevel::kProgrammed));
    }
  }
}

void partial_program_word(KernelMode m, SegmentSoA& s, const PhysParams& p,
                          std::size_t cell0, std::uint16_t value,
                          std::size_t bits_per_word, double fraction,
                          Rng& rng) {
  if (m == KernelMode::kReference) {
    for (std::size_t b = 0; b < bits_per_word; ++b)
      if (((value >> b) & 1u) == 0) {
        Cell c = gather(s, cell0 + b);
        c.partial_program(p, fraction, rng);
        scatter(s, cell0 + b, c);
      }
    return;
  }
  for (std::size_t b = 0; b < bits_per_word; ++b) {
    if (((value >> b) & 1u) != 0) continue;
    const std::size_t i = cell0 + b;
    if (s.defect[i] != kNoDefect) continue;
    if (s.level[i] != kErased) {
      s.eff_cycles[i] += p.stress_reprogram * std::min(fraction, 1.0);
      s.invalidate_tte(i);
      continue;
    }
    // Trap-assisted injection (Cell::partial_program): damage is evaluated
    // on the pre-pulse stress, then the pulse's own stress lands.
    const double damage =
        static_cast<double>(s.susceptibility[i]) * p.growth(s.eff_cycles[i]);
    const double threshold =
        rng.normal(p.prog_completion_mean, p.prog_completion_sigma) /
        (1.0 + p.k_prog_speedup * damage);
    const double margin = threshold - fraction;
    s.eff_cycles[i] += p.stress_program * std::min(fraction, 1.0);
    s.invalidate_tte(i);
    s.level[i] = margin <= 0.0
                     ? static_cast<std::uint8_t>(CellLevel::kProgrammed)
                     : kErased;
    s.metastable[i] = 1;
    s.margin_us[i] = static_cast<float>(margin * 10.0);
  }
}

std::uint16_t read_word(KernelMode m, const SegmentSoA& s,
                        const PhysParams& p, std::size_t cell0,
                        std::size_t bits_per_word, Rng& rng) {
  std::uint16_t value = 0;
  if (m == KernelMode::kReference) {
    for (std::size_t b = 0; b < bits_per_word; ++b)
      if (gather(s, cell0 + b).read(p, rng))
        value |= static_cast<std::uint16_t>(1u << b);
    return value;
  }
  for (std::size_t b = 0; b < bits_per_word; ++b) {
    const std::size_t i = cell0 + b;
    bool v = s.level[i] == kErased;
    if (s.defect[i] == kNoDefect && s.metastable[i]) {
      const double dist = std::abs(static_cast<double>(s.margin_us[i]));
      const double p_flip = 0.5 * fmm::fm_exp(-dist / p.read_noise_tau_us);
      if (rng.bernoulli(p_flip)) v = !v;
    }
    if (v) value |= static_cast<std::uint16_t>(1u << b);
  }
  return value;
}

void read_segment_majority(KernelMode m, const SegmentSoA& s,
                           const PhysParams& p, std::size_t bits_per_word,
                           int n_reads, Rng& rng, BitVec& out) {
  const std::size_t n_words = s.size() / bits_per_word;
  // The hoisting buffers below are sized for <= 16-bit words (every
  // supported geometry); wider words take the reference loop, which is
  // byte-identical by contract.
  if (m == KernelMode::kReference || bits_per_word > 16) {
    std::vector<int> ones(bits_per_word);
    for (std::size_t w = 0; w < n_words; ++w) {
      ones.assign(bits_per_word, 0);
      for (int r = 0; r < n_reads; ++r) {
        const std::uint16_t v = read_word(KernelMode::kReference, s, p,
                                          w * bits_per_word, bits_per_word,
                                          rng);
        for (std::size_t b = 0; b < bits_per_word; ++b)
          ones[b] += static_cast<int>((v >> b) & 1u);
      }
      for (std::size_t b = 0; b < bits_per_word; ++b)
        out.set(w * bits_per_word + b, ones[b] * 2 > n_reads);
    }
    return;
  }
  // Flip probabilities are read-invariant, so hoist them once for the whole
  // segment and run the exp batch vector-wide (bit-identical to the scalar
  // 0.5 * fm_exp(-dist / tau) per cell). Scratch lives in the per-thread
  // arena: parallel fleet dies never share it, steady-state reads allocate
  // nothing. Degenerate populations (all-defect, all-erased-and-settled)
  // leave n_meta == 0 — every bit reads deterministically from its level,
  // exactly as Cell::read does (defect cells return their level with no
  // draw; settled cells have no metastable noise window).
  const std::size_t n = s.size();
  KernelArena& a = arena();
  a.pflip_seg.resize(n);
  a.meta_idx.resize(n);
  a.meta_x.resize(n);
  std::vector<double>& pflip_seg = a.pflip_seg;
  std::size_t n_meta = 0;
  for (std::size_t i = 0; i < n; ++i) {
    pflip_seg[i] = -1.0;  // < 0 marks "deterministic, no draw"
    if (s.defect[i] == kNoDefect && s.metastable[i]) {
      const double dist = std::abs(static_cast<double>(s.margin_us[i]));
      a.meta_idx[n_meta] = i;
      a.meta_x[n_meta] = -dist / p.read_noise_tau_us;
      ++n_meta;
    }
  }
  fmm::fm_exp_n(a.meta_x.data(), a.meta_x.data(), n_meta);
  for (std::size_t k = 0; k < n_meta; ++k)
    pflip_seg[a.meta_idx[k]] = 0.5 * a.meta_x[k];

  // Per word: hoist each bit's settled value, then spin the n_reads
  // Bernoulli draws in the exact scalar order (read-major, bit-ascending).
  int ones[16];
  bool settled_val[16];
  double p_flip[16];
  for (std::size_t w = 0; w < n_words; ++w) {
    const std::size_t base = w * bits_per_word;
    for (std::size_t b = 0; b < bits_per_word; ++b) {
      const std::size_t i = base + b;
      ones[b] = 0;
      settled_val[b] = s.level[i] == kErased;
      p_flip[b] = pflip_seg[i];
    }
    for (int r = 0; r < n_reads; ++r)
      for (std::size_t b = 0; b < bits_per_word; ++b) {
        bool v = settled_val[b];
        if (p_flip[b] >= 0.0 && rng.bernoulli(p_flip[b])) v = !v;
        ones[b] += v ? 1 : 0;
      }
    for (std::size_t b = 0; b < bits_per_word; ++b)
      out.set(base + b, ones[b] * 2 > n_reads);
  }
}

void wear_cells(KernelMode m, SegmentSoA& s, const PhysParams& p,
                double cycles, const BitVec* pattern) {
  const std::size_t n = s.size();
  if (m == KernelMode::kReference) {
    for (std::size_t i = 0; i < n; ++i) {
      Cell c = gather(s, i);
      c.batch_stress(p, cycles, pattern ? !pattern->get(i) : true,
                     /*end_programmed=*/pattern != nullptr);
      scatter(s, i, c);
    }
    return;
  }
  if (cycles < 0.0) cycles = 0.0;
  const bool end_programmed = pattern != nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    if (s.defect[i] != kNoDefect) continue;
    const bool programmed_each_cycle = pattern ? !pattern->get(i) : true;
    const double per_cycle =
        programmed_each_cycle ? p.stress_program + p.stress_erase_transition
                              : p.stress_erase_idle;
    s.eff_cycles[i] += cycles * per_cycle;
    s.invalidate_tte(i);
    settle(s, i,
           programmed_each_cycle && end_programmed
               ? static_cast<std::uint8_t>(CellLevel::kProgrammed)
               : kErased);
  }
}

void age_segment(KernelMode m, SegmentSoA& s, const PhysParams& p,
                 double years, Rng& rng) {
  const std::size_t n = s.size();
  if (m == KernelMode::kReference) {
    for (std::size_t i = 0; i < n; ++i) {
      Cell c = gather(s, i);
      c.age(p, years, rng);
      scatter(s, i, c);
    }
    return;
  }
  if (years <= 0.0) return;  // Cell::age draws nothing in this case
  for (std::size_t i = 0; i < n; ++i) {
    if (s.defect[i] != kNoDefect) continue;
    if (s.level[i] == kErased) continue;  // only programmed cells leak
    const double damage =
        static_cast<double>(s.susceptibility[i]) * p.growth(s.eff_cycles[i]);
    const double halflife =
        p.retention_halflife_years / (1.0 + p.retention_wear_accel * damage);
    const double p_lost = 1.0 - std::exp2(-years / halflife);
    if (rng.bernoulli(p_lost)) settle(s, i, kErased);
    // Damage is untouched: the erase-time cache stays warm through aging.
  }
}

void bake_segment(KernelMode m, SegmentSoA& s, const PhysParams& p,
                  double hours) {
  const std::size_t n = s.size();
  if (m == KernelMode::kReference) {
    for (std::size_t i = 0; i < n; ++i) {
      Cell c = gather(s, i);
      c.bake(p, hours);
      scatter(s, i, c);
    }
    return;
  }
  if (hours <= 0.0) return;
  for (std::size_t i = 0; i < n; ++i) {
    const double lifetime_stress = s.eff_cycles[i] + s.annealed[i];
    const double budget = std::max(
        0.0, p.anneal_recovery_frac * lifetime_stress - s.annealed[i]);
    const double delta =
        budget * (1.0 - fmm::fm_exp(-hours / p.anneal_tau_hours));
    s.eff_cycles[i] -= delta;
    s.annealed[i] += delta;
    s.invalidate_tte(i);
  }
}

double time_to_full_erase_us(KernelMode m, const SegmentSoA& s,
                             const PhysParams& p) {
  const std::size_t n = s.size();
  double max_tte = 0.0;
  if (m == KernelMode::kReference) {
    for (std::size_t i = 0; i < n; ++i) {
      const Cell c = gather(s, i);
      if (!c.erased()) max_tte = std::max(max_tte, c.tte_us(p));
    }
    return max_tte;
  }
  for (std::size_t i = 0; i < n; ++i)
    if (s.level[i] != kErased)
      max_tte = std::max(max_tte, s.nominal_tte_us(i, p));
  return max_tte;
}

}  // namespace kernels

}  // namespace flashmark
