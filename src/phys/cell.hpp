// Per-cell physical state.
//
// A cell is 20 bytes: two immutable manufacturing parameters, the
// irreversible cumulative stress counter, the logical charge state, and the
// analog margin left behind by the most recent aborted operation. All state
// transitions funnel through the member functions so the irreversibility
// invariant (eff_cycles never decreases) is enforced in exactly one place.
#pragma once

#include <cstdint>

#include "phys/params.hpp"
#include "util/rng.hpp"

namespace flashmark {

/// Logical charge state as seen by a noise-free read.
enum class CellLevel : std::uint8_t {
  kErased = 1,      ///< no charge on the floating gate, reads '1'
  kProgrammed = 0,  ///< charge trapped, reads '0'
};

/// Factory defect class of a cell.
enum class CellDefect : std::uint8_t {
  kNone = 0,
  kStuckErased,      ///< never traps charge: always reads 1
  kStuckProgrammed,  ///< permanently charged: always reads 0
};

class Cell {
 public:
  Cell() = default;

  /// Manufacture a fresh, erased cell: samples tte_fresh and susceptibility.
  static Cell manufacture(const PhysParams& p, Rng& rng);

  // --- observers --------------------------------------------------------
  CellLevel level() const { return level_; }
  bool erased() const { return level_ == CellLevel::kErased; }
  CellDefect defect() const { return defect_; }
  float tte_fresh_us() const { return tte_fresh_us_; }
  float susceptibility() const { return susceptibility_; }
  double eff_cycles() const { return eff_cycles_; }

  /// Nominal (jitter-free) time-to-erase at the current wear level, in us.
  double tte_us(const PhysParams& p) const;

  /// Cumulative oxide damage D = susceptibility * growth(eff_cycles).
  double damage(const PhysParams& p) const;

  /// True if the last operation left the cell near the sense threshold, so
  /// reads are metastable until the next full program/erase.
  bool metastable() const { return metastable_; }
  /// Signed distance (us) from the abort instant to this cell's transition;
  /// only meaningful while metastable().
  float margin_us() const { return margin_us_; }

  // --- state transitions -------------------------------------------------
  /// Full segment-erase pulse observed by this cell. Adds transition or
  /// idle stress depending on the prior state; always ends erased and
  /// settled.
  void full_erase(const PhysParams& p);

  /// Erase pulse aborted after t_pe microseconds. The cell transitions iff
  /// its (jittered) time-to-erase is below t_pe; either way it may be left
  /// metastable if the abort lands near its transition. Stress is only the
  /// charge-transit component when the transition happened; an aborted pulse
  /// that moved no charge costs (almost) nothing — this is what makes the
  /// paper's accelerated imprint wear-neutral.
  void partial_erase(const PhysParams& p, double t_pe_us, Rng& rng);

  /// Program pulse targeting this cell (word bit was 0). Adds program or
  /// reprogram stress; ends programmed and settled.
  void program(const PhysParams& p);

  /// Program pulse aborted at `fraction` of the nominal word-program time.
  /// The cell ends programmed iff the charge had crossed the sense level by
  /// then; may be left metastable. Worn cells cross earlier
  /// (trap-assisted injection — the FFD detection signal).
  void partial_program(const PhysParams& p, double fraction, Rng& rng);

  /// Shelf aging: `years` in storage. Programmed cells may leak below the
  /// sense level (probability follows the retention half-life, accelerated
  /// by wear); erased cells and — crucially — accumulated damage are
  /// untouched. Stored data decays, the watermark does not.
  void age(const PhysParams& p, double years, Rng& rng);

  /// High-temperature bake for `hours`. Anneals at most
  /// p.anneal_recovery_frac of the cumulative stress (deep oxide traps are
  /// permanent), so the near-irreversibility invariant becomes:
  /// eff_cycles never drops below (1 - frac) * historical peak.
  void bake(const PhysParams& p, double hours);

  /// One noisy read. Settled cells read deterministically; metastable cells
  /// flip with probability 0.5*exp(-|margin|/tau).
  bool read(const PhysParams& p, Rng& rng) const;

  /// Serializable value snapshot of the full cell state (persistence).
  struct Snapshot {
    float tte_fresh_us;
    float susceptibility;
    double eff_cycles;
    double annealed;
    std::uint8_t level;
    std::uint8_t defect;
    std::uint8_t metastable;
    float margin_us;
  };
  Snapshot snapshot_state() const;
  /// Rebuild a cell from a snapshot; throws std::invalid_argument on
  /// out-of-domain values (negative stress, unknown enum codes...).
  static Cell restore(const Snapshot& s);

  /// Simulation-only accelerator: apply the stress of `cycles` regular
  /// imprint P/E cycles in O(1), with `programmed_each_cycle` selecting the
  /// watermark role of this cell. Equivalent to looping full_erase+program
  /// (asserted by tests). The final state matches the last real operation:
  /// the Fig. 7 imprint loop ends on a program (stressed cells finish
  /// programmed), the §III pre-conditioning loop ends on an erase — pass
  /// `end_programmed` accordingly.
  void batch_stress(const PhysParams& p, double cycles,
                    bool programmed_each_cycle, bool end_programmed);

 private:
  void settle(CellLevel level) {
    level_ = level;
    metastable_ = false;
    margin_us_ = 0.0f;
  }

  float tte_fresh_us_ = 24.0f;
  float susceptibility_ = 1.0f;
  double eff_cycles_ = 0.0;
  double annealed_ = 0.0;  ///< stress removed by bakes (bounded, see bake())
  CellLevel level_ = CellLevel::kErased;
  CellDefect defect_ = CellDefect::kNone;
  bool metastable_ = false;
  float margin_us_ = 0.0f;
};

}  // namespace flashmark
