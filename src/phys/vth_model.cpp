#include "phys/vth_model.hpp"

#include <algorithm>
#include <cmath>

namespace flashmark {

double vth_settled(const VthParams& vp, const Cell& cell) {
  return cell.erased() ? vp.vth_erased : vp.vth_programmed;
}

double vth_during_erase(const VthParams& vp, const PhysParams& p,
                        const Cell& cell, double t_us) {
  const double tte = cell.tte_us(p);
  if (t_us <= 0.0) return vp.vth_programmed;
  // Log-time Fowler–Nordheim discharge pinned so that Vth == v_ref at
  // t == tte. Clamped to the settled levels at both ends.
  const double vth = vp.v_ref - vp.fn_slope * std::log10(t_us / tte);
  return std::clamp(vth, vp.vth_erased, vp.vth_programmed);
}

bool reads_erased(const VthParams& vp, double vth) { return vth < vp.v_ref; }

}  // namespace flashmark
