#include "phys/erase_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/fm_math.hpp"
#include "util/stats.hpp"

namespace flashmark {

std::vector<double> sample_tte_values(const PhysParams& p,
                                      std::size_t n_cells, double eff_cycles,
                                      Rng& rng) {
  std::vector<double> out;
  out.reserve(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) {
    const double tte_fresh =
        p.tte_fresh_median_us *
        fmm::fm_exp(rng.normal(0.0, p.tte_fresh_log_sigma));
    const double s =
        p.suscept_min + rng.gamma(p.suscept_gamma_shape, p.suscept_gamma_scale());
    out.push_back(tte_fresh * p.slowdown(s, eff_cycles));
  }
  return out;
}

TteSummary sample_tte_population(const PhysParams& p, std::size_t n_cells,
                                 double eff_cycles, Rng& rng) {
  auto values = sample_tte_values(p, n_cells, eff_cycles, rng);
  RunningStats st;
  for (double v : values) st.add(v);
  TteSummary s;
  s.min_us = st.min();
  s.max_us = st.max();
  s.mean_us = st.mean();
  s.median_us = median(values);
  return s;
}

double prob_still_programmed(const PhysParams& p, double t_pe_us,
                             double eff_cycles, std::size_t n_cells,
                             Rng& rng) {
  if (n_cells == 0) return 0.0;
  const auto values = sample_tte_values(p, n_cells, eff_cycles, rng);
  const auto still = static_cast<std::size_t>(
      std::count_if(values.begin(), values.end(),
                    [&](double tte) { return tte > t_pe_us; }));
  return static_cast<double>(still) / static_cast<double>(n_cells);
}

double eff_cycles_bad(const PhysParams& p, double npe) {
  return npe * (p.stress_program + p.stress_erase_transition);
}

double eff_cycles_good(const PhysParams& p, double npe) {
  return npe * p.stress_erase_idle;
}

}  // namespace flashmark
