// Threshold-voltage view of the cell model (paper Fig. 1(c)/(d)).
//
// The digital interface never exposes Vth directly, but the model keeps the
// analog picture consistent: erased cells sit below VREF, programmed cells
// above, and a partial erase moves a cell along a log-time trajectory from
// VTHP towards VTHE. This module exists for documentation, visualization and
// property tests (e.g. "a cell reads 1 iff its modeled Vth < VREF"); the
// production read path uses the equivalent time-margin formulation in Cell.
#pragma once

#include "phys/cell.hpp"
#include "phys/params.hpp"

namespace flashmark {

struct VthParams {
  double vth_erased = 1.6;      ///< center of the erased distribution, volts
  double vth_programmed = 4.4;  ///< center of the programmed distribution
  double v_ref = 3.0;           ///< read sense threshold (VREAD ~ 3 V)
  /// Slope of the Fowler–Nordheim discharge trajectory: Vth falls by
  /// `fn_slope` volts per decade of erase time around the transition.
  double fn_slope = 2.0;
};

/// Analog threshold voltage of a cell during a segment erase pulse, t_us
/// after the pulse started. Before the pulse reaches the cell's
/// time-to-erase the cell is still above VREF; it crosses VREF exactly at
/// tte and saturates at the erased level afterwards.
double vth_during_erase(const VthParams& vp, const PhysParams& p,
                        const Cell& cell, double t_us);

/// Static Vth of a settled cell.
double vth_settled(const VthParams& vp, const Cell& cell);

/// Digital read decision from the analog view: true (reads '1') iff
/// vth < v_ref.
bool reads_erased(const VthParams& vp, double vth);

}  // namespace flashmark
