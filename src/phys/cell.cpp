#include "phys/cell.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/fm_math.hpp"

namespace flashmark {

Cell Cell::manufacture(const PhysParams& p, Rng& rng) {
  Cell c;
  c.tte_fresh_us_ = static_cast<float>(
      p.tte_fresh_median_us *
      fmm::fm_exp(rng.normal(0.0, p.tte_fresh_log_sigma)));
  c.susceptibility_ = static_cast<float>(std::min(
      p.suscept_cap,
      p.suscept_min +
          rng.gamma(p.suscept_gamma_shape, p.suscept_gamma_scale())));
  c.eff_cycles_ = 0.0;
  if (rng.bernoulli(p.defect_stuck_erased_ppm * 1e-6))
    c.defect_ = CellDefect::kStuckErased;
  else if (rng.bernoulli(p.defect_stuck_programmed_ppm * 1e-6))
    c.defect_ = CellDefect::kStuckProgrammed;
  c.settle(c.defect_ == CellDefect::kStuckProgrammed ? CellLevel::kProgrammed
                                                     : CellLevel::kErased);
  return c;
}

double Cell::tte_us(const PhysParams& p) const {
  return static_cast<double>(tte_fresh_us_) *
         p.slowdown(static_cast<double>(susceptibility_), eff_cycles_);
}

double Cell::damage(const PhysParams& p) const {
  return static_cast<double>(susceptibility_) * p.growth(eff_cycles_);
}

void Cell::full_erase(const PhysParams& p) {
  if (defect_ != CellDefect::kNone) return;  // stuck cells never move
  eff_cycles_ += erased() ? p.stress_erase_idle : p.stress_erase_transition;
  settle(CellLevel::kErased);
}

void Cell::partial_erase(const PhysParams& p, double t_pe_us, Rng& rng) {
  if (defect_ != CellDefect::kNone) return;
  if (erased()) {
    // Already conducting: the short pulse adds a prorated sliver of idle
    // stress and leaves the cell deeply erased (settled) if the pulse is
    // long, or simply untouched if aborted immediately.
    const double nominal = tte_us(p);
    const double frac = nominal > 0.0 ? std::min(t_pe_us / nominal, 1.0) : 1.0;
    eff_cycles_ += p.stress_erase_idle * frac;
    return;  // state unchanged; an erased cell stays erased
  }
  // Per-pulse jitter of the transition instant.
  double tte = tte_us(p);
  if (p.tte_event_jitter_sigma > 0.0)
    tte *= fmm::fm_exp(rng.normal(0.0, p.tte_event_jitter_sigma));

  const double margin = tte - t_pe_us;  // >0: still programmed; <0: erased
  if (margin <= 0.0) {
    // Charge transited: full erase-transition stress.
    eff_cycles_ += p.stress_erase_transition;
    level_ = CellLevel::kErased;
  } else {
    // Aborted mid-flight; partial charge removal costs a prorated share of
    // the transition stress (the paper's premature-exit imprint relies on
    // aborts being at worst wear-neutral).
    eff_cycles_ += p.stress_erase_transition * std::min(t_pe_us / tte, 1.0) * 0.5;
    level_ = CellLevel::kProgrammed;
  }
  metastable_ = true;
  margin_us_ = static_cast<float>(margin);
}

void Cell::program(const PhysParams& p) {
  if (defect_ != CellDefect::kNone) return;
  eff_cycles_ += erased() ? p.stress_program : p.stress_reprogram;
  settle(CellLevel::kProgrammed);
}

void Cell::partial_program(const PhysParams& p, double fraction, Rng& rng) {
  if (defect_ != CellDefect::kNone) return;
  if (!erased()) {
    // Top-up pulse on an already-programmed cell.
    eff_cycles_ += p.stress_reprogram * std::min(fraction, 1.0);
    return;
  }
  // Trap-assisted injection: accumulated damage lowers the completion
  // threshold, i.e. worn cells program faster (FFD's detection signal).
  const double threshold =
      rng.normal(p.prog_completion_mean, p.prog_completion_sigma) /
      (1.0 + p.k_prog_speedup * damage(p));
  const double margin = threshold - fraction;  // >0: not yet programmed
  eff_cycles_ += p.stress_program * std::min(fraction, 1.0);
  level_ = margin <= 0.0 ? CellLevel::kProgrammed : CellLevel::kErased;
  metastable_ = true;
  // Express the program margin on the same microsecond-ish scale the read
  // noise model expects; one "program unit" is roughly the erase tau scale.
  margin_us_ = static_cast<float>(margin * 10.0);
}

bool Cell::read(const PhysParams& p, Rng& rng) const {
  bool value = erased();
  if (defect_ != CellDefect::kNone) return value;  // stuck: no noise either
  if (metastable_) {
    const double dist = std::abs(static_cast<double>(margin_us_));
    const double p_flip = 0.5 * fmm::fm_exp(-dist / p.read_noise_tau_us);
    if (rng.bernoulli(p_flip)) value = !value;
  }
  return value;
}

void Cell::age(const PhysParams& p, double years, Rng& rng) {
  if (years <= 0.0 || defect_ != CellDefect::kNone) return;
  if (level_ != CellLevel::kProgrammed) return;
  // Charge leakage: wear opens trap-assisted leakage paths, shortening the
  // retention half-life. Damage itself is structural and unaffected.
  const double halflife =
      p.retention_halflife_years / (1.0 + p.retention_wear_accel * damage(p));
  const double p_lost = 1.0 - std::exp2(-years / halflife);
  if (rng.bernoulli(p_lost)) settle(CellLevel::kErased);
}

void Cell::bake(const PhysParams& p, double hours) {
  if (hours <= 0.0) return;
  // Lifetime anneal budget: frac of all stress ever accumulated; what has
  // already been annealed counts against it.
  const double lifetime_stress = eff_cycles_ + annealed_;
  const double budget =
      std::max(0.0, p.anneal_recovery_frac * lifetime_stress - annealed_);
  const double delta =
      budget * (1.0 - fmm::fm_exp(-hours / p.anneal_tau_hours));
  eff_cycles_ -= delta;
  annealed_ += delta;
}

Cell::Snapshot Cell::snapshot_state() const {
  return Snapshot{tte_fresh_us_,
                  susceptibility_,
                  eff_cycles_,
                  annealed_,
                  static_cast<std::uint8_t>(level_),
                  static_cast<std::uint8_t>(defect_),
                  static_cast<std::uint8_t>(metastable_ ? 1 : 0),
                  margin_us_};
}

Cell Cell::restore(const Snapshot& s) {
  if (!(s.tte_fresh_us > 0.0f) || !(s.susceptibility >= 0.0f) ||
      !(s.eff_cycles >= 0.0) || !(s.annealed >= 0.0))
    throw std::invalid_argument("Cell::restore: out-of-domain value");
  if (s.level > 1 || s.defect > 2 || s.metastable > 1)
    throw std::invalid_argument("Cell::restore: unknown enum code");
  Cell c;
  c.tte_fresh_us_ = s.tte_fresh_us;
  c.susceptibility_ = s.susceptibility;
  c.eff_cycles_ = s.eff_cycles;
  c.annealed_ = s.annealed;
  c.level_ = static_cast<CellLevel>(s.level);
  c.defect_ = static_cast<CellDefect>(s.defect);
  c.metastable_ = s.metastable != 0;
  c.margin_us_ = s.margin_us;
  return c;
}

void Cell::batch_stress(const PhysParams& p, double cycles,
                        bool programmed_each_cycle, bool end_programmed) {
  if (defect_ != CellDefect::kNone) return;
  if (cycles < 0.0) cycles = 0.0;
  const double per_cycle =
      programmed_each_cycle ? p.stress_program + p.stress_erase_transition
                            : p.stress_erase_idle;
  eff_cycles_ += cycles * per_cycle;
  settle(programmed_each_cycle && end_programmed ? CellLevel::kProgrammed
                                                 : CellLevel::kErased);
}

}  // namespace flashmark
