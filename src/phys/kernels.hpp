// Segment-granularity physics kernels over structure-of-arrays cell state.
//
// The scalar Cell class (phys/cell.hpp) is the reference semantics: one
// object per cell, every transition a member function. That layout is ideal
// for reasoning and terrible for throughput — imprint/extract/audit advance
// 4096 cells tens of thousands of times, and the array-of-structs walk
// touches ~40 bytes per cell to update one double. This module stores a
// segment's cells as parallel arrays (SegmentSoA) and advances all of them
// in tight loops (erase_pulse_segment, program_words, read_segment_majority,
// ...), with a per-cell nominal-erase-time cache that is invalidated only
// when a cell's damage (eff_cycles) changes.
//
// Contract: for any operation sequence, kBatched and kReference produce
// BYTE-IDENTICAL state, RNG streams, and outputs. The batched loops mirror
// the Cell member functions expression-for-expression (same FP operations in
// the same order, same conditional RNG draws); the reference loops gather a
// Cell, call the member function, and scatter it back. The differential
// harness (tests/kernel_diff_test.cpp, ctest -L kernel) asserts the
// equivalence over seeded imprint→extract→audit round trips; the mode knob
// is deliberately outside the determinism seed (docs/REPRODUCIBILITY.md §7).
#pragma once

#include <cstdint>
#include <vector>

#include "phys/cell.hpp"
#include "phys/params.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace flashmark {

/// Which implementation of the segment physics kernels an array runs.
enum class KernelMode : std::uint8_t {
  kReference = 0,  ///< scalar path: gather Cell, member function, scatter
  kBatched = 1,    ///< SoA tight loops with the erase-time cache (default)
};

const char* to_string(KernelMode m);

/// Structure-of-arrays state of one segment's cells. Field semantics match
/// Cell exactly (phys/cell.hpp); `level`/`defect`/`metastable` store the raw
/// enum/bool codes of Cell::Snapshot. The nominal-erase-time cache carries
/// tte_us() results between queries and pulses; entries are invalidated by
/// every eff_cycles update and by nothing else (reads, aging and snapshots
/// leave damage untouched, so they keep the cache warm).
class SegmentSoA {
 public:
  SegmentSoA() = default;
  explicit SegmentSoA(std::size_t n);

  std::size_t size() const { return n_; }

  /// Value snapshot of cell `i` (same encoding as Cell::snapshot_state).
  Cell::Snapshot snapshot(std::size_t i) const;

  /// Scatter a snapshot into cell `i`; invalidates its erase-time cache.
  /// No domain validation — callers restoring untrusted data go through
  /// Cell::restore first.
  void assign(std::size_t i, const Cell::Snapshot& s);

  /// Nominal (jitter-free) time-to-erase of cell `i`, microseconds. Cached;
  /// bit-identical to Cell::tte_us (the cache only memoizes the identical
  /// pure computation).
  double nominal_tte_us(std::size_t i, const PhysParams& p) const {
    if (!tte_valid_[i]) {
      tte_cache_[i] = static_cast<double>(tte_fresh_us[i]) *
                      p.slowdown(static_cast<double>(susceptibility[i]),
                                 eff_cycles[i]);
      tte_valid_[i] = 1;
    }
    return tte_cache_[i];
  }

  /// Drop cell `i`'s cached erase time (call after any eff_cycles update).
  void invalidate_tte(std::size_t i) { tte_valid_[i] = 0; }

  /// True when cell `i`'s erase-time cache is warm.
  bool tte_cached(std::size_t i) const { return tte_valid_[i] != 0; }

  /// Install a precomputed nominal erase time for cell `i`. The value MUST
  /// be bit-identical to what nominal_tte_us would compute — the vectorized
  /// erase-pulse kernel satisfies this by evaluating the same fm_pow /
  /// slowdown_from_growth pipeline 4/8-wide (util/fm_math.hpp).
  ///
  /// THREAD CONTRACT (single-owner): prime_tte / nominal_tte_us write the
  /// mutable cache under `const`, so a SegmentSoA — and therefore the die
  /// that owns it — must only ever be touched by one thread at a time, even
  /// for logically read-only ops. DieStore::pin enforces this at the fleet
  /// layer: a pin is exclusive per die (a second pin of the same die blocks
  /// until the first unpins; see store/die_store.hpp). The TSan regression
  /// for the contract is StoreKernel.ConcurrentSameDieExtractIsExclusive in
  /// tests/kernel_diff_test.cpp (ctest -L kernel).
  void prime_tte(std::size_t i, double v) const {
    tte_cache_[i] = v;
    tte_valid_[i] = 1;
  }

  /// Raw cache arrays for the vectorized kernels (masked lane stores need
  /// contiguous memory). Same single-owner contract as prime_tte.
  double* tte_cache_data() const { return tte_cache_.data(); }
  std::uint8_t* tte_valid_data() const { return tte_valid_.data(); }

  // Parallel per-cell arrays (see Cell for field semantics). Public on
  // purpose: the kernels below are the only writers, and white-box tests
  // read them directly.
  std::vector<float> tte_fresh_us;
  std::vector<float> susceptibility;
  std::vector<double> eff_cycles;
  std::vector<double> annealed;
  std::vector<std::uint8_t> level;       ///< CellLevel raw value
  std::vector<std::uint8_t> defect;      ///< CellDefect raw value
  std::vector<std::uint8_t> metastable;  ///< 0/1
  std::vector<float> margin_us;

 private:
  std::size_t n_ = 0;
  mutable std::vector<double> tte_cache_;
  mutable std::vector<std::uint8_t> tte_valid_;
};

namespace kernels {

// Every kernel takes the mode first and dispatches internally, so call
// sites (flash/array.cpp) stay switch-free. All loops run cell-ascending;
// conditional RNG draws happen in exactly the order the scalar path draws
// them — that equivalence is what keeps the two modes byte-identical.

/// Full segment-erase pulse over every cell (Cell::full_erase).
void erase_full_segment(KernelMode m, SegmentSoA& s, const PhysParams& p);

/// Erase pulse aborted after `t_pe_us` effective microseconds
/// (Cell::partial_erase; the caller applies temperature acceleration).
void erase_pulse_segment(KernelMode m, SegmentSoA& s, const PhysParams& p,
                         double t_pe_us, Rng& rng);

/// One independent segment's share of a multi-die interleaved erase pulse.
/// Each job keeps its own RNG (the die's noise stream) and physics; jobs
/// must reference distinct SegmentSoA/Rng objects (they are advanced in one
/// invocation).
struct ErasePulseJob {
  SegmentSoA* seg = nullptr;
  const PhysParams* phys = nullptr;
  double t_pe_us = 0.0;
  Rng* rng = nullptr;
};

/// Multi-segment interleaved erase pulse: byte-identical to calling
/// erase_pulse_segment(m, *jobs[k].seg, ...) for k = 0..n_jobs-1 in order
/// (per-die state AND per-die RNG streams), but the transcendental passes
/// concatenate all jobs' survivors so sparse per-job batches still fill
/// whole vector lanes. The concatenation is bit-safe because fm_pow_pos_n /
/// fm_exp_n are elementwise (fm_math.hpp): grouping cannot change any lane's
/// input or output bits. Jobs whose physics share damage_exponent share one
/// pow batch; others get their own (same per-element bits either way).
void erase_pulse_segments(KernelMode m, const ErasePulseJob* jobs,
                          std::size_t n_jobs);

/// Program pulses for `n_words` consecutive words starting at cell
/// `cell0`: bits that are 0 in `words[w]` program their cells
/// (Cell::program), bits that are 1 leave them untouched.
void program_words(KernelMode m, SegmentSoA& s, const PhysParams& p,
                   std::size_t cell0, const std::uint16_t* words,
                   std::size_t n_words, std::size_t bits_per_word);

/// Aborted program pulse at `fraction` of the nominal word time for one
/// word (Cell::partial_program).
void partial_program_word(KernelMode m, SegmentSoA& s, const PhysParams& p,
                          std::size_t cell0, std::uint16_t value,
                          std::size_t bits_per_word, double fraction,
                          Rng& rng);

/// One noisy read of the word at `cell0` (Cell::read per bit, ascending).
std::uint16_t read_word(KernelMode m, const SegmentSoA& s,
                        const PhysParams& p, std::size_t cell0,
                        std::size_t bits_per_word, Rng& rng);

/// `n_reads` noisy reads of every word, majority-voted per bit into `out`
/// (sized to s.size()). Loop order is word-major, then read, then bit —
/// exactly a read_word sweep repeated n_reads times per word, so the RNG
/// stream matches the scalar analyze loop draw-for-draw. The batched path
/// hoists each metastable cell's flip probability out of the read loop
/// (the value is read-invariant; only the Bernoulli draw repeats).
void read_segment_majority(KernelMode m, const SegmentSoA& s,
                           const PhysParams& p, std::size_t bits_per_word,
                           int n_reads, Rng& rng, BitVec& out);

/// Batch imprint-wear accelerator (Cell::batch_stress per cell).
void wear_cells(KernelMode m, SegmentSoA& s, const PhysParams& p,
                double cycles, const BitVec* pattern);

/// Shelf aging (Cell::age per cell; draws only for programmed cells).
void age_segment(KernelMode m, SegmentSoA& s, const PhysParams& p,
                 double years, Rng& rng);

/// High-temperature bake (Cell::bake per cell).
void bake_segment(KernelMode m, SegmentSoA& s, const PhysParams& p,
                  double hours);

/// Max nominal tte over still-programmed cells (0 if none) — the
/// controller-side erase-verify query. Rides the erase-time cache.
double time_to_full_erase_us(KernelMode m, const SegmentSoA& s,
                             const PhysParams& p);

}  // namespace kernels

}  // namespace flashmark
