// Physics-model parameters for the simulated floating-gate NOR flash.
//
// The reproduction replaces the paper's MSP430 silicon with a stochastic
// per-cell model. Everything observable through the digital interface is
// derived from three per-cell quantities:
//
//   * tte_fresh  — time-to-erase of the pristine cell under a segment erase
//                  pulse (manufacturing variation, sampled once per cell),
//   * susceptibility — how quickly this cell's oxide accumulates damage
//                  under P/E stress (sampled once per cell; heavy-left-tailed
//                  so a sub-population of stressed cells stays fast, which is
//                  what produces the paper's asymmetric bit errors),
//   * eff_cycles — cumulative, irreversible stress exposure in units of
//                  "equivalent full P/E cycles".
//
// Time-to-erase of a cell after stress:
//
//   tte = tte_fresh * (1 + k_damage * susceptibility * growth(eff_cycles))
//   growth(n) = (n / 1000)^damage_exponent
//
// The defaults below are calibrated against the paper's MSP430F5438 numbers:
// a fresh segment transitions between ~18 and ~35 us (Fig. 4, 0 K curve) and
// the slowest cell of a 4096-cell segment needs ~115/203/.../811 us after
// 20 K/40 K/.../100 K cycles.
#pragma once

#include <cstdint>
#include <string>

namespace flashmark {

struct PhysParams {
  // --- manufacturing variation of fresh erase speed -------------------
  /// Median time-to-erase of a fresh cell, microseconds.
  double tte_fresh_median_us = 24.0;
  /// Sigma of log(tte_fresh). 0.095 puts the min/max of 4096 samples at
  /// roughly 18/33 us, matching the paper's fresh-segment transition.
  double tte_fresh_log_sigma = 0.095;

  // --- oxide damage accumulation ---------------------------------------
  /// Scale applied to susceptibility * growth(n) in the tte formula.
  double k_damage = 0.0198;
  /// growth(n) = (n/1000)^damage_exponent; >1 because oxide wear-out
  /// accelerates with accumulated trap density.
  double damage_exponent = 1.3;
  /// Susceptibility = suscept_min + Gamma(shape, scale); mean held at 1.
  /// suscept_min > 0 guarantees every cell eventually slows down, producing
  /// the steep BER drop at high NPE the paper reports.
  double suscept_min = 0.04;
  double suscept_gamma_shape = 0.58;
  /// Upper cap on susceptibility: trap-site density saturates, so the
  /// slowest cells of a heavily stressed segment cluster instead of running
  /// off into a long tail. Calibrated against the paper's max-erase-time
  /// ladder (115/203/.../811 us).
  double suscept_cap = 3.0;

  // --- per-event stress weights (sum to 1 for a full P/E cycle) --------
  /// Stress added by a program event that injects charge (1 -> 0 transition).
  double stress_program = 0.60;
  /// Stress added by an erase event that removes charge (0 -> 1 transition).
  double stress_erase_transition = 0.40;
  /// Stress added to an already-erased cell by a full erase pulse (the cell
  /// sees the field but transfers almost no charge). This is what slowly
  /// wears the "good" watermark cells and shifts the optimal partial-erase
  /// window right as NPE grows (Fig. 9).
  double stress_erase_idle = 0.016;
  /// Stress added by re-programming an already-programmed cell.
  double stress_reprogram = 0.10;

  // --- read behaviour ---------------------------------------------------
  /// After an aborted erase, a cell whose time-to-erase is within a few
  /// tau of the abort instant sits near the sense threshold and reads
  /// metastably: P(flip) = 0.5 * exp(-|tte - t_pe| / read_noise_tau_us).
  double read_noise_tau_us = 0.8;
  /// Per-partial-erase multiplicative jitter of the effective tte:
  /// tte_event = tte * exp(N(0, sigma)). Models pulse-to-pulse variation.
  double tte_event_jitter_sigma = 0.035;

  // --- program dynamics (for partial-program extensions) ---------------
  /// Fraction of the nominal word-program time at which a typical cell has
  /// trapped enough charge to read as programmed.
  double prog_completion_mean = 0.70;
  double prog_completion_sigma = 0.05;
  /// Worn cells program FASTER (trap-assisted injection): the completion
  /// threshold divides by (1 + k_prog_speedup * damage). This is the
  /// physical effect behind the FFD partial-program detector (Guo et al.,
  /// DAC'17 — the paper's ref [6]), reproduced as a baseline here.
  double k_prog_speedup = 0.06;

  // --- manufacturing defects --------------------------------------------
  /// Parts-per-million of cells stuck erased (never trap charge) or stuck
  /// programmed (permanently charged), as shipped. Real arrays carry a few
  /// tens of ppm; the default here is 0 so experiments are exact by
  /// default — failure-injection tests and benches opt in (e.g. via
  /// msp430_with_defects()).
  double defect_stuck_erased_ppm = 0.0;
  double defect_stuck_programmed_ppm = 0.0;

  // --- temperature ---------------------------------------------------------
  /// Erase (FN tunneling) speeds up with junction temperature: the
  /// effective time-to-erase divides by (1 + temp_erase_accel_per_K * dT)
  /// where dT = T - 25 C. A watermark imprinted at 25 C and extracted on a
  /// hot or cold line sees a shifted window; the verifier must tolerate
  /// the rated range (see tests/temperature_test.cpp).
  double temp_erase_accel_per_K = 0.004;

  // --- retention ----------------------------------------------------------
  /// Programmed cells slowly leak charge in storage; after
  /// `retention_halflife_years` at rated temperature a programmed cell has
  /// a 50% chance of having dropped below the sense level. Wear accelerates
  /// leakage: halflife divides by (1 + retention_wear_accel * damage).
  /// Stored DATA therefore decays with shelf time — the stress-based
  /// watermark does not (damage is structural, not charge).
  double retention_halflife_years = 80.0;
  double retention_wear_accel = 0.15;

  // --- thermal annealing (bake-attack model) ----------------------------
  /// A high-temperature bake anneals shallow interface traps but not the
  /// deep oxide traps that slow erase: at most `anneal_recovery_frac` of
  /// accumulated stress can ever be recovered, approached exponentially
  /// with `anneal_tau_hours` of bake time. This bounds the classic
  /// counterfeiter refurbishing move — the imprint survives any bake.
  double anneal_recovery_frac = 0.08;
  double anneal_tau_hours = 48.0;

  /// Validates ranges; throws std::invalid_argument with a description of
  /// the offending field.
  void validate() const;

  /// Gamma scale that keeps E[susceptibility] == 1 for the current
  /// suscept_min / suscept_gamma_shape.
  double suscept_gamma_scale() const;

  /// Damage growth g(n); monotone non-decreasing, g(0) == 0.
  double growth(double eff_cycles) const;

  /// Deterministic part of the slowdown multiplier for given susceptibility
  /// and cumulative stress: 1 + k_damage * s * growth(n).
  double slowdown(double susceptibility, double eff_cycles) const;

  /// slowdown() with the growth value already in hand — the single combine
  /// instance both the scalar path and the vectorized kernels go through,
  /// so the two cannot disagree bitwise (fma(k_damage * s, g, 1)).
  double slowdown_from_growth(double susceptibility, double growth_value) const;

  /// Defaults above, named for readability at call sites.
  static PhysParams msp430_calibrated();
  /// Calibrated parameters with a realistic factory defect density
  /// (failure-injection preset).
  static PhysParams msp430_with_defects();
};

}  // namespace flashmark
