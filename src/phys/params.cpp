#include "phys/params.hpp"

#include <cmath>
#include <stdexcept>

#include "util/fm_math.hpp"

namespace flashmark {

namespace {
void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(std::string("PhysParams: ") + what);
}
}  // namespace

void PhysParams::validate() const {
  require(tte_fresh_median_us > 0.0, "tte_fresh_median_us must be > 0");
  require(tte_fresh_log_sigma >= 0.0, "tte_fresh_log_sigma must be >= 0");
  require(k_damage >= 0.0, "k_damage must be >= 0");
  require(damage_exponent > 0.0, "damage_exponent must be > 0");
  require(suscept_min >= 0.0 && suscept_min < 1.0,
          "suscept_min must be in [0, 1)");
  require(suscept_gamma_shape > 0.0, "suscept_gamma_shape must be > 0");
  require(suscept_cap > suscept_min, "suscept_cap must exceed suscept_min");
  require(stress_program >= 0.0, "stress_program must be >= 0");
  require(stress_erase_transition >= 0.0,
          "stress_erase_transition must be >= 0");
  require(stress_erase_idle >= 0.0, "stress_erase_idle must be >= 0");
  require(stress_reprogram >= 0.0, "stress_reprogram must be >= 0");
  require(read_noise_tau_us > 0.0, "read_noise_tau_us must be > 0");
  require(tte_event_jitter_sigma >= 0.0,
          "tte_event_jitter_sigma must be >= 0");
  require(prog_completion_mean > 0.0 && prog_completion_mean <= 1.0,
          "prog_completion_mean must be in (0, 1]");
  require(prog_completion_sigma >= 0.0, "prog_completion_sigma must be >= 0");
  require(k_prog_speedup >= 0.0, "k_prog_speedup must be >= 0");
  require(defect_stuck_erased_ppm >= 0.0,
          "defect_stuck_erased_ppm must be >= 0");
  require(defect_stuck_programmed_ppm >= 0.0,
          "defect_stuck_programmed_ppm must be >= 0");
  require(temp_erase_accel_per_K >= 0.0,
          "temp_erase_accel_per_K must be >= 0");
  require(retention_halflife_years > 0.0,
          "retention_halflife_years must be > 0");
  require(retention_wear_accel >= 0.0, "retention_wear_accel must be >= 0");
  require(anneal_recovery_frac >= 0.0 && anneal_recovery_frac < 1.0,
          "anneal_recovery_frac must be in [0, 1)");
  require(anneal_tau_hours > 0.0, "anneal_tau_hours must be > 0");
}

double PhysParams::suscept_gamma_scale() const {
  // E[s] = suscept_min + shape * scale == 1.
  return (1.0 - suscept_min) / suscept_gamma_shape;
}

double PhysParams::growth(double eff_cycles) const {
  if (eff_cycles <= 0.0) return 0.0;
  // fmm::fm_pow_pos, not std::pow: the wear model is *defined* over the
  // project's deterministic math kernel so results cannot drift with the
  // host libm, and the batched kernels can evaluate the same function
  // 4-wide with bit-identical results (src/phys/kernels.cpp).
  return fmm::fm_pow_pos(eff_cycles / 1000.0, damage_exponent);
}

double PhysParams::slowdown_from_growth(double susceptibility,
                                        double growth_value) const {
  // Explicit fma: the batched kernels replicate this combine with
  // _mm256_fmadd_pd, which is the same fused operation by IEEE definition.
  return std::fma(k_damage * susceptibility, growth_value, 1.0);
}

double PhysParams::slowdown(double susceptibility, double eff_cycles) const {
  return slowdown_from_growth(susceptibility, growth(eff_cycles));
}

PhysParams PhysParams::msp430_calibrated() { return PhysParams{}; }

PhysParams PhysParams::msp430_with_defects() {
  PhysParams p;
  p.defect_stuck_erased_ppm = 30.0;
  p.defect_stuck_programmed_ppm = 10.0;
  return p;
}

}  // namespace flashmark
