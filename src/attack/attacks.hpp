// Counterfeiter models (paper §I pathways and §V tamper discussion).
//
// Every attack here uses only the capabilities a real counterfeiter has:
// the standard digital interface (erase/program/read) and time. None of
// them can remove oxide damage — that is the physical root of trust — so
// the attacks explore what digital and stress-only manipulation can and
// cannot achieve. The test suite and the tamper_resistance bench assert the
// outcomes: forged chips verify as kNoWatermark, stress-altered chips as
// kTampered, and unkeyed clones as the documented residual risk.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/watermark.hpp"
#include "flash/hal.hpp"
#include "mcu/device.hpp"
#include "util/bitvec.hpp"

namespace flashmark {

/// Digital forgery ("current practice" defeat): erase the watermark segment
/// and program the desired content as ordinary data. Takes seconds, leaves
/// no stress contrast — extraction sees a fresh segment.
void forge_attack(FlashHal& hal, Addr addr, const BitVec& desired_pattern);

struct StressAttackReport {
  std::uint32_t cycles = 0;
  SimTime elapsed;
};

/// Stress attack: P/E-cycle the segment with `target_pattern` (bit 0 =
/// cells the attacker wants to turn "bad") to flip chosen good cells to bad.
/// Physically this is the ONLY direction available — bad cells can never be
/// made good again. The collateral erase cycles also wear the existing
/// watermark cells slightly, exactly as on silicon.
StressAttackReport stress_attack(FlashHal& hal, Addr addr,
                                 const BitVec& target_pattern,
                                 std::uint32_t cycles,
                                 ImprintStrategy strategy = ImprintStrategy::kBatchWear);

/// Best-effort "reject -> accept" rewrite: compute the cell-flip set that
/// would turn the currently-imprinted `current_pattern` into
/// `desired_pattern`, and apply the physically-possible subset (good -> bad
/// only) via a stress attack. Returns the number of required flips that were
/// physically impossible (bad -> good) — when this is non-zero the attack
/// can never fully succeed, the paper's central security argument.
struct RewriteAttackReport {
  std::size_t flips_applied = 0;     ///< good->bad flips stressed in
  std::size_t flips_impossible = 0;  ///< bad->good flips (cannot be done)
  StressAttackReport stress;
};
RewriteAttackReport rewrite_attack(FlashHal& hal, Addr addr,
                                   const BitVec& current_pattern,
                                   const BitVec& desired_pattern,
                                   std::uint32_t cycles);

/// Clone attack: read a genuine chip's decoded watermark bits and imprint
/// them on a blank target chip. Succeeds bit-for-bit (the scheme does not
/// hide watermark *contents*); with keyed signatures the clone carries a
/// valid signature too, so detecting clones of a *valid* watermark requires
/// die-id tracking — the residual risk the paper accepts.
ImprintReport clone_attack(FlashHal& genuine, Addr genuine_addr,
                           FlashHal& target, Addr target_addr,
                           const VerifyOptions& extract_opts,
                           std::uint32_t npe);

/// Partial clone: like clone_attack, but the attacker — limited by tooling
/// time or a truncated dump — imprints only the FIRST `n_replicas_cloned`
/// copies and leaves the rest of the segment blank. Plain majority voting
/// still decodes the watermark once a majority of copies exist (4 of 7),
/// so the plain verify path accepts such clones; the challenge-response
/// interrogation names its replicas and catches any copy the cloner
/// skipped.
struct PartialCloneReport {
  std::size_t replicas_cloned = 0;
  ImprintReport imprint;
};
PartialCloneReport partial_clone_attack(FlashHal& genuine, Addr genuine_addr,
                                        FlashHal& target, Addr target_addr,
                                        const VerifyOptions& extract_opts,
                                        std::uint32_t npe,
                                        std::size_t n_replicas_cloned);

/// Segment-remapping interposer: an address decoder (or firmware shim) that
/// swaps segment pairs, so a verifier probing a worn segment lands on a
/// fresh spare. Models the recycled-chip countermeasure of hiding stressed
/// cells behind remapping: a FIXED probe schedule is fooled, a keyed-random
/// challenge schedule out-probes the limited spare pool. The decorator
/// swaps both directions so the die stays self-consistent.
class RemapHal final : public FlashHal {
 public:
  /// `swaps` are pairs of global segment indices to exchange.
  RemapHal(FlashHal& inner,
           std::vector<std::pair<std::size_t, std::size_t>> swaps);

  const FlashGeometry& geometry() const override { return inner_.geometry(); }
  const FlashTiming& timing() const override { return inner_.timing(); }
  SimTime now() const override { return inner_.now(); }
  void erase_segment(Addr addr) override;
  SimTime erase_segment_auto(Addr addr) override;
  void partial_erase_segment(Addr addr, SimTime t_pe) override;
  void program_word(Addr addr, std::uint16_t value) override;
  void partial_program_word(Addr addr, std::uint16_t value,
                            SimTime t_prog) override;
  void program_block(Addr addr,
                     const std::vector<std::uint16_t>& words) override;
  std::uint16_t read_word(Addr addr) override;
  BitVec read_segment(Addr addr, int n_reads) override;
  void wear_segment(Addr addr, double cycles,
                    const BitVec* pattern = nullptr) override;

 private:
  Addr translate(Addr addr) const;

  FlashHal& inner_;
  std::vector<std::pair<std::size_t, std::size_t>> swaps_;
};

/// Replay emulator: counterfeit "hardware" that answers reads of one
/// segment from a recorded extraction bitmap, ignoring erase/program state
/// — a microcontroller impersonating the flash with a dump recorded from a
/// genuine part. It passes a plain verify perfectly (the recording IS a
/// genuine extraction) and is exactly the adversary the challenge-response
/// mode defeats: the recording cannot re-answer a fresh t_pew.
class ReplayHal final : public FlashHal {
 public:
  /// Reads inside segment `segment` answer from `recorded` (cell i = bit
  /// i); writes/erases there are swallowed. All other segments forward.
  ReplayHal(FlashHal& inner, std::size_t segment, BitVec recorded);

  const FlashGeometry& geometry() const override { return inner_.geometry(); }
  const FlashTiming& timing() const override { return inner_.timing(); }
  SimTime now() const override { return inner_.now(); }
  void erase_segment(Addr addr) override;
  SimTime erase_segment_auto(Addr addr) override;
  void partial_erase_segment(Addr addr, SimTime t_pe) override;
  void program_word(Addr addr, std::uint16_t value) override;
  void partial_program_word(Addr addr, std::uint16_t value,
                            SimTime t_prog) override;
  void program_block(Addr addr,
                     const std::vector<std::uint16_t>& words) override;
  std::uint16_t read_word(Addr addr) override;
  BitVec read_segment(Addr addr, int n_reads) override;
  void wear_segment(Addr addr, double cycles,
                    const BitVec* pattern = nullptr) override;

 private:
  bool replayed(Addr addr) const;

  FlashHal& inner_;
  std::size_t segment_;
  BitVec recorded_;
};

/// Thermal refurbishing ("bake-out"): the counterfeiter ovens the chip for
/// `hours` hoping to anneal the wear signature away. Shallow interface
/// traps do recover slightly, but the deep oxide traps carrying the
/// watermark (and most of the recycled-wear signal) are permanent — the
/// model caps total recovery at PhysParams::anneal_recovery_frac. Thermal,
/// so it acts on the die, not through the digital interface.
void bake_attack(Device& chip, double hours);

/// Field usage: simulate a device's life in the field by wearing `segments`
/// data segments with `usage_cycles` P/E cycles each (firmware logging,
/// wear-leveled data, ...). This is what a recycled chip looks like before
/// the counterfeiter refurbishes it.
void simulate_field_usage(FlashHal& hal, const std::vector<Addr>& segments,
                          std::uint32_t usage_cycles);

}  // namespace flashmark
