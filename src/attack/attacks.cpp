#include "attack/attacks.hpp"

#include <stdexcept>

#include "core/extract.hpp"
#include "core/imprint.hpp"

namespace flashmark {

void forge_attack(FlashHal& hal, Addr addr, const BitVec& desired_pattern) {
  const auto& g = hal.geometry();
  const std::size_t seg = g.segment_index(addr);
  const Addr base = g.segment_base(seg);
  hal.erase_segment(base);
  hal.program_block(base, pattern_to_words(g, seg, desired_pattern));
}

StressAttackReport stress_attack(FlashHal& hal, Addr addr,
                                 const BitVec& target_pattern,
                                 std::uint32_t cycles,
                                 ImprintStrategy strategy) {
  ImprintOptions opts;
  opts.npe = cycles;
  opts.strategy = strategy;
  opts.accelerated = true;  // the attacker is in a hurry
  const ImprintReport r = imprint_flashmark(hal, addr, target_pattern, opts);
  return StressAttackReport{r.npe, r.elapsed};
}

RewriteAttackReport rewrite_attack(FlashHal& hal, Addr addr,
                                   const BitVec& current_pattern,
                                   const BitVec& desired_pattern,
                                   std::uint32_t cycles) {
  if (current_pattern.size() != desired_pattern.size())
    throw std::invalid_argument("rewrite_attack: pattern size mismatch");
  RewriteAttackReport report;
  // Stress plan: keep already-bad cells bad is free; flipping good->bad is
  // a stress; flipping bad->good is impossible.
  BitVec stress_plan(current_pattern.size(), true);  // 1 = leave alone
  for (std::size_t i = 0; i < current_pattern.size(); ++i) {
    const bool cur = current_pattern.get(i);
    const bool want = desired_pattern.get(i);
    if (cur == want) continue;
    if (cur && !want) {
      stress_plan.set(i, false);  // good -> bad: achievable
      ++report.flips_applied;
    } else {
      ++report.flips_impossible;  // bad -> good: physically impossible
    }
  }
  if (report.flips_applied > 0)
    report.stress = stress_attack(hal, addr, stress_plan, cycles);
  return report;
}

ImprintReport clone_attack(FlashHal& genuine, Addr genuine_addr,
                           FlashHal& target, Addr target_addr,
                           const VerifyOptions& extract_opts,
                           std::uint32_t npe) {
  // Step 1: pull the watermark bits off the genuine part, replica-voted so
  // the clone is imprinted from clean data.
  ExtractOptions eo;
  eo.t_pew = extract_opts.t_pew;
  eo.n_reads = 3;
  eo.rounds = 3;
  const ExtractResult ext = extract_flashmark(genuine, genuine_addr, eo);
  const std::size_t payload_bits =
      (kFieldsBits + (extract_opts.key ? kSignatureBits : 0)) * 2;
  const ReplicaLayout layout{payload_bits, extract_opts.n_replicas};
  const BitVec replica = decode_replicas(ext.bits, layout, VoteMode::kMajority);

  // Step 2: imprint the same replica set on the blank target.
  const auto& g = target.geometry();
  const std::size_t seg = g.segment_index(target_addr);
  const BitVec pattern =
      replicate_pattern(replica, extract_opts.n_replicas, g.segment_cells(seg));
  ImprintOptions io;
  io.npe = npe;
  io.strategy = ImprintStrategy::kBatchWear;
  io.accelerated = true;
  return imprint_flashmark(target, g.segment_base(seg), pattern, io);
}

void bake_attack(Device& chip, double hours) { chip.array().bake(hours); }

void simulate_field_usage(FlashHal& hal, const std::vector<Addr>& segments,
                          std::uint32_t usage_cycles) {
  for (const Addr a : segments)
    hal.wear_segment(a, static_cast<double>(usage_cycles), nullptr);
}

}  // namespace flashmark
