#include "attack/attacks.hpp"

#include <stdexcept>

#include "core/extract.hpp"
#include "core/imprint.hpp"

namespace flashmark {

void forge_attack(FlashHal& hal, Addr addr, const BitVec& desired_pattern) {
  const auto& g = hal.geometry();
  const std::size_t seg = g.segment_index(addr);
  const Addr base = g.segment_base(seg);
  hal.erase_segment(base);
  hal.program_block(base, pattern_to_words(g, seg, desired_pattern));
}

StressAttackReport stress_attack(FlashHal& hal, Addr addr,
                                 const BitVec& target_pattern,
                                 std::uint32_t cycles,
                                 ImprintStrategy strategy) {
  ImprintOptions opts;
  opts.npe = cycles;
  opts.strategy = strategy;
  opts.accelerated = true;  // the attacker is in a hurry
  const ImprintReport r = imprint_flashmark(hal, addr, target_pattern, opts);
  return StressAttackReport{r.npe, r.elapsed};
}

RewriteAttackReport rewrite_attack(FlashHal& hal, Addr addr,
                                   const BitVec& current_pattern,
                                   const BitVec& desired_pattern,
                                   std::uint32_t cycles) {
  if (current_pattern.size() != desired_pattern.size())
    throw std::invalid_argument("rewrite_attack: pattern size mismatch");
  RewriteAttackReport report;
  // Stress plan: keep already-bad cells bad is free; flipping good->bad is
  // a stress; flipping bad->good is impossible.
  BitVec stress_plan(current_pattern.size(), true);  // 1 = leave alone
  for (std::size_t i = 0; i < current_pattern.size(); ++i) {
    const bool cur = current_pattern.get(i);
    const bool want = desired_pattern.get(i);
    if (cur == want) continue;
    if (cur && !want) {
      stress_plan.set(i, false);  // good -> bad: achievable
      ++report.flips_applied;
    } else {
      ++report.flips_impossible;  // bad -> good: physically impossible
    }
  }
  if (report.flips_applied > 0)
    report.stress = stress_attack(hal, addr, stress_plan, cycles);
  return report;
}

ImprintReport clone_attack(FlashHal& genuine, Addr genuine_addr,
                           FlashHal& target, Addr target_addr,
                           const VerifyOptions& extract_opts,
                           std::uint32_t npe) {
  // Step 1: pull the watermark bits off the genuine part, replica-voted so
  // the clone is imprinted from clean data.
  ExtractOptions eo;
  eo.t_pew = extract_opts.t_pew;
  eo.n_reads = 3;
  eo.rounds = 3;
  const ExtractResult ext = extract_flashmark(genuine, genuine_addr, eo);
  const std::size_t payload_bits =
      (kFieldsBits + (extract_opts.key ? kSignatureBits : 0)) * 2;
  const ReplicaLayout layout{payload_bits, extract_opts.n_replicas};
  const BitVec replica = decode_replicas(ext.bits, layout, VoteMode::kMajority);

  // Step 2: imprint the same replica set on the blank target.
  const auto& g = target.geometry();
  const std::size_t seg = g.segment_index(target_addr);
  const BitVec pattern =
      replicate_pattern(replica, extract_opts.n_replicas, g.segment_cells(seg));
  ImprintOptions io;
  io.npe = npe;
  io.strategy = ImprintStrategy::kBatchWear;
  io.accelerated = true;
  return imprint_flashmark(target, g.segment_base(seg), pattern, io);
}

PartialCloneReport partial_clone_attack(FlashHal& genuine, Addr genuine_addr,
                                        FlashHal& target, Addr target_addr,
                                        const VerifyOptions& extract_opts,
                                        std::uint32_t npe,
                                        std::size_t n_replicas_cloned) {
  if (n_replicas_cloned == 0 || n_replicas_cloned > extract_opts.n_replicas)
    throw std::invalid_argument(
        "partial_clone_attack: replicas cloned must be in [1, n_replicas]");
  ExtractOptions eo;
  eo.t_pew = extract_opts.t_pew;
  eo.n_reads = 3;
  eo.rounds = 3;
  const ExtractResult ext = extract_flashmark(genuine, genuine_addr, eo);
  const std::size_t payload_bits =
      (kFieldsBits + (extract_opts.key ? kSignatureBits : 0)) * 2;
  const ReplicaLayout layout{payload_bits, extract_opts.n_replicas};
  const BitVec replica = decode_replicas(ext.bits, layout, VoteMode::kMajority);

  const auto& g = target.geometry();
  const std::size_t seg = g.segment_index(target_addr);
  // Only the first n_replicas_cloned copies; the tail of the segment stays
  // blank (replicate_pattern pads with 1s = unstressed).
  const BitVec pattern =
      replicate_pattern(replica, n_replicas_cloned, g.segment_cells(seg));
  ImprintOptions io;
  io.npe = npe;
  io.strategy = ImprintStrategy::kBatchWear;
  io.accelerated = true;
  PartialCloneReport report;
  report.replicas_cloned = n_replicas_cloned;
  report.imprint = imprint_flashmark(target, g.segment_base(seg), pattern, io);
  return report;
}

RemapHal::RemapHal(FlashHal& inner,
                   std::vector<std::pair<std::size_t, std::size_t>> swaps)
    : inner_(inner), swaps_(std::move(swaps)) {
  const std::size_t n = inner_.geometry().n_segments();
  for (const auto& [a, b] : swaps_)
    if (a >= n || b >= n)
      throw std::invalid_argument("RemapHal: segment index out of range");
}

Addr RemapHal::translate(Addr addr) const {
  const auto& g = inner_.geometry();
  const std::size_t seg = g.segment_index(addr);
  for (const auto& [a, b] : swaps_) {
    std::size_t to = seg;
    if (seg == a)
      to = b;
    else if (seg == b)
      to = a;
    if (to != seg)
      return g.segment_base(to) + (addr - g.segment_base(seg));
  }
  return addr;
}

void RemapHal::erase_segment(Addr addr) {
  inner_.erase_segment(translate(addr));
}
SimTime RemapHal::erase_segment_auto(Addr addr) {
  return inner_.erase_segment_auto(translate(addr));
}
void RemapHal::partial_erase_segment(Addr addr, SimTime t_pe) {
  inner_.partial_erase_segment(translate(addr), t_pe);
}
void RemapHal::program_word(Addr addr, std::uint16_t value) {
  inner_.program_word(translate(addr), value);
}
void RemapHal::partial_program_word(Addr addr, std::uint16_t value,
                                    SimTime t_prog) {
  inner_.partial_program_word(translate(addr), value, t_prog);
}
void RemapHal::program_block(Addr addr,
                             const std::vector<std::uint16_t>& words) {
  inner_.program_block(translate(addr), words);
}
std::uint16_t RemapHal::read_word(Addr addr) {
  return inner_.read_word(translate(addr));
}
BitVec RemapHal::read_segment(Addr addr, int n_reads) {
  return inner_.read_segment(translate(addr), n_reads);
}
void RemapHal::wear_segment(Addr addr, double cycles, const BitVec* pattern) {
  inner_.wear_segment(translate(addr), cycles, pattern);
}

ReplayHal::ReplayHal(FlashHal& inner, std::size_t segment, BitVec recorded)
    : inner_(inner), segment_(segment), recorded_(std::move(recorded)) {
  const auto& g = inner_.geometry();
  if (segment_ >= g.n_segments())
    throw std::invalid_argument("ReplayHal: segment index out of range");
  if (recorded_.size() != g.segment_cells(segment_))
    throw std::invalid_argument("ReplayHal: recording size mismatch");
}

bool ReplayHal::replayed(Addr addr) const {
  return inner_.geometry().segment_index(addr) == segment_;
}

void ReplayHal::erase_segment(Addr addr) {
  if (!replayed(addr)) inner_.erase_segment(addr);
}
SimTime ReplayHal::erase_segment_auto(Addr addr) {
  if (!replayed(addr)) return inner_.erase_segment_auto(addr);
  return inner_.timing().t_erase_segment;
}
void ReplayHal::partial_erase_segment(Addr addr, SimTime t_pe) {
  if (!replayed(addr)) inner_.partial_erase_segment(addr, t_pe);
}
void ReplayHal::program_word(Addr addr, std::uint16_t value) {
  if (!replayed(addr)) inner_.program_word(addr, value);
}
void ReplayHal::partial_program_word(Addr addr, std::uint16_t value,
                                     SimTime t_prog) {
  if (!replayed(addr)) inner_.partial_program_word(addr, value, t_prog);
}
void ReplayHal::program_block(Addr addr,
                              const std::vector<std::uint16_t>& words) {
  if (!replayed(addr)) inner_.program_block(addr, words);
}
std::uint16_t ReplayHal::read_word(Addr addr) {
  if (!replayed(addr)) return inner_.read_word(addr);
  const auto& g = inner_.geometry();
  const Addr base = g.segment_base(segment_);
  const std::size_t word = (addr - base) / g.word_bytes;
  const std::size_t bpw = g.bits_per_word();
  std::uint16_t v = 0;
  for (std::size_t b = 0; b < bpw; ++b)
    if (recorded_.get(word * bpw + b)) v |= static_cast<std::uint16_t>(1u << b);
  return v;
}
BitVec ReplayHal::read_segment(Addr addr, int n_reads) {
  if (!replayed(addr)) return inner_.read_segment(addr, n_reads);
  return recorded_;
}
void ReplayHal::wear_segment(Addr addr, double cycles, const BitVec* pattern) {
  if (!replayed(addr)) inner_.wear_segment(addr, cycles, pattern);
}

void bake_attack(Device& chip, double hours) { chip.array().bake(hours); }

void simulate_field_usage(FlashHal& hal, const std::vector<Addr>& segments,
                          std::uint32_t usage_cycles) {
  for (const Addr a : segments)
    hal.wear_segment(a, static_cast<double>(usage_cycles), nullptr);
}

}  // namespace flashmark
