// Deterministic transcendental math for the physics kernels.
//
// The cell wear model is defined in terms of exp/log/pow. libm gives no
// cross-version (let alone cross-libc) bit guarantees for these, so any
// result pinned to the byte (die files, golden CSVs, the kernel differential
// harness) would silently depend on the host's libm build. fm_exp / fm_log /
// fm_pow_pos are the project's *own* definitions: pure IEEE-754 arithmetic
// (+, -, *, /, fma) plus exact bit manipulation, ~2 ulp accurate, and
// bit-identical everywhere.
//
// Each function has two implementations that are bit-identical BY
// CONSTRUCTION: a scalar one (std::fma — correctly rounded by definition)
// and a 4-wide AVX2+FMA one (_mm256_fmadd_pd — the same fused operation).
// Every floating step is either a single IEEE operation or an explicit fma,
// so -ffp-contract cannot introduce divergence; the batch entry points
// dispatch to SIMD at runtime and fall back to the scalar loop on hosts
// without AVX2/FMA. tests/util_fm_math_test.cpp asserts scalar==SIMD bit
// equality over random and adversarial inputs.
//
// Domain contract (callers are the physics kernels, which guarantee it):
//   fm_exp:      any finite x; x > 709 saturates to +inf, x < -700 flushes
//                to +0.0 (results below ~1e-304 are not distinguished).
//   fm_log:      x > 0 finite (subnormals handled by pre-scaling).
//   fm_pow_pos:  x > 0 finite, y finite; defined as fm_exp(y * fm_log(x)).
#pragma once

#include <cstddef>

namespace flashmark::fmm {

double fm_exp(double x);
double fm_log(double x);
double fm_pow_pos(double x, double y);

/// sin(2*pi*u) and cos(2*pi*u) for u in [0,1), computed together (they share
/// the quadrant reduction). This is the Box–Muller phase: Rng::normal feeds
/// the raw uniform straight in, so no 2*pi multiply — and none of glibc's
/// version-dependent sin/cos — ever touches the draw. Quadrant reduction
/// (r = u - q/4 is Sterbenz-exact) + degree-17/16 Taylor in r.
void fm_sincos2pi(double u, double* sin_out, double* cos_out);

/// Batch forms: out[i] = fm_exp(x[i]) etc. Bit-identical to calling the
/// scalar form per element, regardless of SIMD availability. In-place
/// (out == x) is allowed.
void fm_exp_n(const double* x, double* out, std::size_t n);
void fm_log_n(const double* x, double* out, std::size_t n);
void fm_pow_pos_n(const double* x, double y, double* out, std::size_t n);

/// Batch fm_sincos2pi. `sin_out == u` (in-place) is allowed; `cos_out` must
/// not alias `u` or `sin_out`.
void fm_sincos2pi_n(const double* u, double* sin_out, double* cos_out,
                    std::size_t n);

/// True when the AVX2+FMA lanes are in use (informational — results do not
/// depend on it; perf gates in bench/kernel_bench.cpp do).
bool simd_active();

}  // namespace flashmark::fmm
