// Deterministic transcendental math for the physics kernels.
//
// The cell wear model is defined in terms of exp/log/pow. libm gives no
// cross-version (let alone cross-libc) bit guarantees for these, so any
// result pinned to the byte (die files, golden CSVs, the kernel differential
// harness) would silently depend on the host's libm build. fm_exp / fm_log /
// fm_pow_pos are the project's *own* definitions: pure IEEE-754 arithmetic
// (+, -, *, /, fma) plus exact bit manipulation, ~2 ulp accurate, and
// bit-identical everywhere.
//
// Each function has two implementations that are bit-identical BY
// CONSTRUCTION: a scalar one (std::fma — correctly rounded by definition)
// and a 4-wide AVX2+FMA one (_mm256_fmadd_pd — the same fused operation).
// Every floating step is either a single IEEE operation or an explicit fma,
// so -ffp-contract cannot introduce divergence; the batch entry points
// dispatch to SIMD at runtime and fall back to the scalar loop on hosts
// without AVX2/FMA. tests/util_fm_math_test.cpp asserts scalar==SIMD bit
// equality over random and adversarial inputs.
//
// Domain contract (callers are the physics kernels, which guarantee it):
//   fm_exp:      any finite x; x > 709 saturates to +inf, x < -700 flushes
//                to +0.0 (results below ~1e-304 are not distinguished).
//   fm_log:      x > 0 finite (subnormals handled by pre-scaling).
//   fm_pow_pos:  x > 0 finite, y finite; defined as fm_exp(y * fm_log(x)).
#pragma once

#include <cstddef>

namespace flashmark::fmm {

double fm_exp(double x);
double fm_log(double x);
double fm_pow_pos(double x, double y);

/// sin(2*pi*u) and cos(2*pi*u) for u in [0,1), computed together (they share
/// the quadrant reduction). This is the Box–Muller phase: Rng::normal feeds
/// the raw uniform straight in, so no 2*pi multiply — and none of glibc's
/// version-dependent sin/cos — ever touches the draw. Quadrant reduction
/// (r = u - q/4 is Sterbenz-exact) + degree-17/16 Taylor in r.
void fm_sincos2pi(double u, double* sin_out, double* cos_out);

/// Batch forms: out[i] = fm_exp(x[i]) etc. Bit-identical to calling the
/// scalar form per element, regardless of SIMD availability. In-place
/// (out == x) is allowed.
void fm_exp_n(const double* x, double* out, std::size_t n);
void fm_log_n(const double* x, double* out, std::size_t n);
void fm_pow_pos_n(const double* x, double y, double* out, std::size_t n);

/// Batch fm_sincos2pi. `sin_out == u` (in-place) is allowed; `cos_out` must
/// not alias `u` or `sin_out`.
void fm_sincos2pi_n(const double* u, double* sin_out, double* cos_out,
                    std::size_t n);

/// Vector instruction-set tier the batch entry points (and the masked-SIMD
/// physics kernels in src/phys/kernels.cpp) dispatch to at runtime. The tier
/// is purely a speed knob: every tier computes bit-identical results (the
/// single-IEEE-op-per-step discipline above), so it sits outside the
/// determinism seed exactly like KernelMode (docs/REPRODUCIBILITY.md §7).
enum class Isa : int {
  kScalar = 0,  ///< no vector lanes (also the non-x86 build)
  kAvx2 = 1,    ///< 4-wide AVX2+FMA lanes
  kAvx512 = 2,  ///< 8-wide AVX-512 (F/DQ/BW/VL) lanes
};

const char* to_string(Isa isa);

/// Highest tier the host CPU supports (CPUID, cached at startup).
Isa detected_isa();

/// Tier the dispatchers actually use: min(detected_isa(), env cap, test
/// cap). The env cap comes from FLASHMARK_FORCE_SCALAR / FLASHMARK_FORCE_AVX2
/// (set to anything except "" or "0"; SCALAR wins when both are set), read
/// once per process — CI uses it to exercise every dispatch path on hosts
/// whose CPUs would always pick the widest one.
Isa active_isa();

/// In-process override for the differential harnesses (FLASHMARK_FORCE_* is
/// read only once): caps active_isa() at `cap` until called again. Pass
/// Isa::kAvx512 to uncap. Test-only — not thread-safe against concurrent
/// kernel execution; call between batches.
void set_isa_cap_for_test(Isa cap);

/// True when any vector lanes are in use, i.e. active_isa() != kScalar
/// (informational — results do not depend on it; perf gates in
/// bench/kernel_bench.cpp do).
bool simd_active();

}  // namespace flashmark::fmm
