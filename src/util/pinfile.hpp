// Strict parser for the benchmark pin files (BENCH_*.json).
//
// The perf gates (bench/kernel_bench.cpp --check and friends) compare fresh
// measurements against ratios computed from these files. A malformed or
// partially-written pin used to flow through as -1/NaN and make every
// comparison silently pass — the gate would green-light a regression. This
// parser accepts exactly one flat JSON object of string -> finite-number
// pairs and nothing else: no nesting, no null/bool/string values, no
// duplicate keys, no trailing garbage, no NaN/Inf (not representable in
// JSON anyway, but also rejected if a number overflows to infinity).
// Callers reject the file (exit 2 in the benches) on any parse error.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace flashmark::util {

struct PinFile {
  std::map<std::string, double> values;

  /// The value for `key`, or nullopt when absent. Present values are always
  /// finite (the parser guarantees it).
  std::optional<double> get(const std::string& key) const {
    const auto it = values.find(key);
    if (it == values.end()) return std::nullopt;
    return it->second;
  }
};

/// Parse pin-file text. On success returns the pins; on any malformation
/// returns nullopt and, when `error` is non-null, stores a one-line
/// description (with a byte offset where that helps).
std::optional<PinFile> parse_pin_file_text(const std::string& text,
                                           std::string* error);

/// Load and parse a pin file from disk. Unreadable files report through
/// `error` just like malformed ones; a caller that wants "missing file is
/// fine, bad file is fatal" should test for existence first.
std::optional<PinFile> load_pin_file(const std::string& path,
                                     std::string* error);

}  // namespace flashmark::util
