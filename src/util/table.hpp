// Plain-text table and CSV emission for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables/figures as rows of
// numbers; this helper keeps the formatting uniform (aligned text table to
// stdout, optional CSV to a file) so figure data can be re-plotted directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flashmark {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::size_t v);
  static std::string fmt(long long v);

  /// Aligned, human-readable rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string to_csv() const;

  /// Write CSV to `path`; returns false (and keeps going) on IO failure so
  /// bench binaries never abort over a missing directory.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flashmark
