#include "util/fsio.hpp"

#include <cerrno>
#include <cstring>
#include <mutex>
#include <optional>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/rng.hpp"

namespace flashmark {

namespace {

std::string errno_text(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

IoCause cause_from_errno(int e) {
#ifdef EDQUOT
  if (e == ENOSPC || e == EDQUOT) return IoCause::kNoSpace;
#else
  if (e == ENOSPC) return IoCause::kNoSpace;
#endif
  return IoCause::kOther;
}

// FaultyFsio state: one mutex-guarded global, like metrics_enabled — the
// hook is a test instrument, not a per-store object, because the interesting
// failures (journal append, checkpoint replace) happen deep inside layers
// that do not thread a config through.
struct FsioFaultState {
  FsioFaultConfig cfg;
  Rng rng{1};
  std::uint64_t failures = 0;
};

std::mutex g_fault_mu;
std::optional<FsioFaultState> g_fault;

}  // namespace

const char* to_string(IoCause c) {
  switch (c) {
    case IoCause::kNone: return "none";
    case IoCause::kNoSpace: return "no-space";
    case IoCause::kShortWrite: return "short-write";
    case IoCause::kOther: return "other";
  }
  return "?";
}

void FaultyFsio::install(const FsioFaultConfig& cfg) {
  std::lock_guard<std::mutex> lk(g_fault_mu);
  g_fault.emplace();
  g_fault->cfg = cfg;
  g_fault->rng = Rng(cfg.seed);
}

void FaultyFsio::uninstall() {
  std::lock_guard<std::mutex> lk(g_fault_mu);
  g_fault.reset();
}

bool FaultyFsio::armed() {
  std::lock_guard<std::mutex> lk(g_fault_mu);
  return g_fault.has_value();
}

std::uint64_t FaultyFsio::failures() {
  std::lock_guard<std::mutex> lk(g_fault_mu);
  return g_fault ? g_fault->failures : 0;
}

std::size_t FaultyFsio::filter_write(const std::string& path, std::size_t n,
                                     IoCause* cause) {
  std::lock_guard<std::mutex> lk(g_fault_mu);
  *cause = IoCause::kNone;
  if (!g_fault) return n;
  FsioFaultState& st = *g_fault;
  if (st.failures >= st.cfg.max_failures) return n;
  if (!st.cfg.only_path_substring.empty() &&
      path.find(st.cfg.only_path_substring) == std::string::npos)
    return n;
  if (!st.rng.bernoulli(st.cfg.write_fail_p)) return n;
  ++st.failures;
  *cause = st.cfg.no_space ? IoCause::kNoSpace : IoCause::kShortWrite;
  // Scale the tear point by a draw so the torn tail lands at a different
  // offset each time — replay must cope with any cut, not one fixed cut.
  const double frac = st.cfg.short_write_fraction * st.rng.uniform();
  std::size_t keep = static_cast<std::size_t>(frac * static_cast<double>(n));
  if (keep >= n) keep = n > 0 ? n - 1 : 0;
  return keep;
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

IoStatus fsync_stream(std::FILE* f) {
  if (std::fflush(f) != 0)
    return IoStatus::failure(errno_text("fflush", "stream"),
                             cause_from_errno(errno));
  if (::fsync(::fileno(f)) != 0)
    return IoStatus::failure(errno_text("fsync", "stream"),
                             cause_from_errno(errno));
  return IoStatus::success();
}

IoStatus fsync_parent_dir(const std::string& path) {
  const std::string dir = parent_dir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IoStatus::failure(errno_text("open dir", dir));
  IoStatus st = IoStatus::success();
  if (::fsync(fd) != 0)
    st = IoStatus::failure(errno_text("fsync dir", dir),
                           cause_from_errno(errno));
  ::close(fd);
  return st;
}

IoStatus atomic_write_file(const std::string& path, const std::string& content,
                           bool durable) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return IoStatus::failure(errno_text("open", tmp));

  IoStatus st = IoStatus::success();
  std::size_t want = content.size();
  IoCause injected = IoCause::kNone;
  if (FaultyFsio::armed()) {
    const std::size_t allow = FaultyFsio::filter_write(path, want, &injected);
    if (allow < want) {
      want = allow;  // deliver the torn prefix, then report the failure
      st = IoStatus::failure("write " + tmp + ": injected " +
                                 std::string(to_string(injected)),
                             injected);
    }
  }
  if (want > 0) {
    errno = 0;
    if (std::fwrite(content.data(), 1, want, f) != want && st.ok)
      st = IoStatus::failure(
          errno_text("write", tmp),
          errno != 0 ? cause_from_errno(errno) : IoCause::kShortWrite);
  }
  if (st.ok && durable) st = fsync_stream(f);
  if (std::fclose(f) != 0 && st.ok)
    st = IoStatus::failure(errno_text("close", tmp), cause_from_errno(errno));
  if (st.ok && std::rename(tmp.c_str(), path.c_str()) != 0)
    st = IoStatus::failure(errno_text("rename", tmp + " -> " + path),
                           cause_from_errno(errno));
  if (!st.ok) {
    std::remove(tmp.c_str());
    return st;
  }
  if (durable) {
    // The rename itself must survive a crash, not just the bytes.
    const IoStatus dir = fsync_parent_dir(path);
    if (!dir.ok) return dir;
  }
  return IoStatus::success();
}

IoStatus read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return IoStatus::failure(errno_text("open", path));
  out->clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return IoStatus::failure(errno_text("read", path));
  return IoStatus::success();
}

IoStatus make_dirs(const std::string& path) {
  if (path.empty()) return IoStatus::failure("make_dirs: empty path");
  std::string accum;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const auto slash = path.find('/', pos);
    const std::string part =
        path.substr(0, slash == std::string::npos ? path.size() : slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (part.empty() || part == ".") continue;
    if (::mkdir(part.c_str(), 0777) != 0 && errno != EEXIST)
      return IoStatus::failure(errno_text("mkdir", part));
    accum = part;
  }
  struct stat sb {};
  if (::stat(path.c_str(), &sb) != 0 || !S_ISDIR(sb.st_mode))
    return IoStatus::failure("make_dirs: not a directory: " + path);
  return IoStatus::success();
}

}  // namespace flashmark
