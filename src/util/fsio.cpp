#include "util/fsio.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace flashmark {

namespace {

std::string errno_text(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

IoStatus fsync_stream(std::FILE* f) {
  if (std::fflush(f) != 0) return IoStatus::failure(errno_text("fflush", "stream"));
  if (::fsync(::fileno(f)) != 0)
    return IoStatus::failure(errno_text("fsync", "stream"));
  return IoStatus::success();
}

IoStatus fsync_parent_dir(const std::string& path) {
  const std::string dir = parent_dir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IoStatus::failure(errno_text("open dir", dir));
  IoStatus st = IoStatus::success();
  if (::fsync(fd) != 0) st = IoStatus::failure(errno_text("fsync dir", dir));
  ::close(fd);
  return st;
}

IoStatus atomic_write_file(const std::string& path, const std::string& content,
                           bool durable) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return IoStatus::failure(errno_text("open", tmp));

  IoStatus st = IoStatus::success();
  if (!content.empty() &&
      std::fwrite(content.data(), 1, content.size(), f) != content.size())
    st = IoStatus::failure(errno_text("write", tmp));
  if (st.ok && durable) st = fsync_stream(f);
  if (std::fclose(f) != 0 && st.ok)
    st = IoStatus::failure(errno_text("close", tmp));
  if (st.ok && std::rename(tmp.c_str(), path.c_str()) != 0)
    st = IoStatus::failure(errno_text("rename", tmp + " -> " + path));
  if (!st.ok) {
    std::remove(tmp.c_str());
    return st;
  }
  if (durable) {
    // The rename itself must survive a crash, not just the bytes.
    const IoStatus dir = fsync_parent_dir(path);
    if (!dir.ok) return dir;
  }
  return IoStatus::success();
}

IoStatus read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return IoStatus::failure(errno_text("open", path));
  out->clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return IoStatus::failure(errno_text("read", path));
  return IoStatus::success();
}

IoStatus make_dirs(const std::string& path) {
  if (path.empty()) return IoStatus::failure("make_dirs: empty path");
  std::string accum;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const auto slash = path.find('/', pos);
    const std::string part =
        path.substr(0, slash == std::string::npos ? path.size() : slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (part.empty() || part == ".") continue;
    if (::mkdir(part.c_str(), 0777) != 0 && errno != EEXIST)
      return IoStatus::failure(errno_text("mkdir", part));
    accum = part;
  }
  struct stat sb {};
  if (::stat(path.c_str(), &sb) != 0 || !S_ISDIR(sb.st_mode))
    return IoStatus::failure("make_dirs: not a directory: " + path);
  return IoStatus::success();
}

}  // namespace flashmark
