#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/fm_math.hpp"

namespace flashmark {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// The one affine-scaling expression both normal(mu, sigma) and normal_fill
// go through. A single inlined definition means the compiler makes the same
// contraction decision at every call site, so the two paths cannot drift.
inline double scale_normal(double mu, double sigma, double x) {
  return mu + sigma * x;
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Top 53 bits -> [0,1) double.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection: draw until the draw lands in the largest multiple
  // of n that fits in 2^64.
  const std::uint64_t threshold = -n % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller, on the project's own deterministic math (util/fm_math.hpp):
  // fm_log + fm_sincos2pi + IEEE-exact sqrt, so the draw stream is
  // bit-identical across libm versions. u1 is kept away from 0 so the log
  // is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0x1.0p-60);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * fmm::fm_log(u1));
  double sn = 0.0;
  double cs = 0.0;
  fmm::fm_sincos2pi(u2, &sn, &cs);
  cached_normal_ = r * sn;
  has_cached_normal_ = true;
  return r * cs;
}

double Rng::normal(double mu, double sigma) {
  return scale_normal(mu, sigma, normal());
}

void Rng::normal_fill(double mu, double sigma, double* out, std::size_t n) {
  std::size_t i = 0;
  if (i < n && has_cached_normal_) {
    has_cached_normal_ = false;
    out[i++] = scale_normal(mu, sigma, cached_normal_);
  }
  if (i >= n) return;
  const std::size_t n_pairs = (n - i + 1) / 2;
  thread_local std::vector<double> u1v;
  thread_local std::vector<double> snv;
  thread_local std::vector<double> csv;
  if (u1v.size() < n_pairs) {
    u1v.resize(n_pairs);
    snv.resize(n_pairs);
    csv.resize(n_pairs);
  }
  // Phase 1: consume the uniform stream exactly as n sequential normal()
  // calls would — per pair, u1 with the small-value rejection, then u2.
  // u2 lands in snv; it is overwritten by the sine in phase 2.
  for (std::size_t k = 0; k < n_pairs; ++k) {
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 0x1.0p-60);
    u1v[k] = u1;
    snv[k] = uniform();
  }
  // Phase 2: the transcendental half, 4-wide where the host allows. Every
  // step is covered by the fm_math bit-identity contract (sqrt and the
  // products are single IEEE operations).
  fmm::fm_sincos2pi_n(snv.data(), snv.data(), csv.data(), n_pairs);
  fmm::fm_log_n(u1v.data(), u1v.data(), n_pairs);
  for (std::size_t k = 0; k < n_pairs; ++k)
    u1v[k] = std::sqrt(-2.0 * u1v[k]);
  for (std::size_t k = 0; k < n_pairs; ++k) {
    const double r = u1v[k];
    out[i++] = scale_normal(mu, sigma, r * csv[k]);
    // normal() parks every pair's sine in the cache slot and consuming it
    // only clears the flag — the value stays behind. Serialized Rng::State
    // carries those bits, so mirror the dead store too.
    cached_normal_ = r * snv[k];
    if (i < n) {
      out[i++] = scale_normal(mu, sigma, cached_normal_);
      has_cached_normal_ = false;
    } else {
      has_cached_normal_ = true;
    }
  }
}

double Rng::lognormal(double mu, double sigma) {
  return fmm::fm_exp(normal(mu, sigma));
}

double Rng::gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boosting trick: Gamma(k) = Gamma(k+1) * U^(1/k).
    double u = 0.0;
    do {
      u = uniform();
    } while (u <= 0.0);
    return gamma(shape + 1.0, scale) * fmm::fm_pow_pos(u, 1.0 / shape);
  }
  // Marsaglia–Tsang method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && fmm::fm_log(u) < 0.5 * x * x + d * (1.0 - v + fmm::fm_log(v)))
      return d * v * scale;
  }
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    const double x = normal(lambda, std::sqrt(lambda));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }
  const double limit = fmm::fm_exp(-lambda);
  double prod = uniform();
  std::uint64_t n = 0;
  while (prod > limit) {
    prod *= uniform();
    ++n;
  }
  return n;
}

Rng Rng::split(std::uint64_t tag) {
  std::uint64_t sm = next_u64() ^ (tag * 0xD1B54A32D192ED03ull);
  return Rng(splitmix64(sm));
}

Rng::State Rng::state() const {
  State st;
  st.s = s_;
  std::memcpy(&st.cached_normal_bits, &cached_normal_, sizeof cached_normal_);
  st.has_cached_normal = has_cached_normal_;
  return st;
}

Rng Rng::from_state(const State& st) {
  Rng r;
  r.s_ = st.s;
  std::memcpy(&r.cached_normal_, &st.cached_normal_bits,
              sizeof r.cached_normal_);
  r.has_cached_normal_ = st.has_cached_normal;
  return r;
}

}  // namespace flashmark
