#include "util/siphash.hpp"

namespace flashmark {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

inline void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) {
  v0 += v1;
  v1 = rotl(v1, 13);
  v1 ^= v0;
  v0 = rotl(v0, 32);
  v2 += v3;
  v3 = rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = rotl(v1, 17);
  v1 ^= v2;
  v2 = rotl(v2, 32);
}

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t r = 0;
  for (int i = 7; i >= 0; --i) r = (r << 8) | p[i];
  return r;
}
}  // namespace

std::uint64_t siphash24(const SipHashKey& key, const std::uint8_t* data,
                        std::size_t len) {
  std::uint64_t v0 = 0x736f6d6570736575ull ^ key.k0;
  std::uint64_t v1 = 0x646f72616e646f6dull ^ key.k1;
  std::uint64_t v2 = 0x6c7967656e657261ull ^ key.k0;
  std::uint64_t v3 = 0x7465646279746573ull ^ key.k1;

  const std::size_t full_blocks = len / 8;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    const std::uint64_t m = load_le64(data + i * 8);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  // Final block: remaining bytes plus the length byte in the top position.
  std::uint64_t b = static_cast<std::uint64_t>(len & 0xFF) << 56;
  const std::uint8_t* tail = data + full_blocks * 8;
  for (std::size_t i = 0; i < (len & 7); ++i)
    b |= static_cast<std::uint64_t>(tail[i]) << (8 * i);
  v3 ^= b;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xFF;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

std::uint64_t siphash24(const SipHashKey& key,
                        const std::vector<std::uint8_t>& data) {
  return siphash24(key, data.data(), data.size());
}

}  // namespace flashmark
