// Simulated-time value type used throughout the flash simulator.
//
// All controller operations (program, erase, partial erase, reads) advance a
// simulated clock. The paper's headline timing numbers (imprint time, extract
// time, partial erase windows) are sums of these per-command durations, so a
// strongly-typed, exact representation matters: we use signed 64-bit
// nanoseconds, which covers ±292 years without rounding.
#pragma once

#include <cstdint>
#include <compare>
#include <stdexcept>

namespace flashmark {

/// A duration (or instant, when measured from simulation start) in simulated
/// time. Integer nanoseconds; never floats, so accumulation is exact.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors. Prefer these over the raw-ns constructor.
  static constexpr SimTime ns(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime us(std::int64_t v) { return SimTime{v * 1000}; }
  static constexpr SimTime ms(std::int64_t v) { return SimTime{v * 1'000'000}; }
  static constexpr SimTime sec(std::int64_t v) { return SimTime{v * 1'000'000'000}; }

  /// Construct from a floating-point number of microseconds (rounded to ns).
  /// Useful for physics-model outputs that are naturally real-valued.
  /// Values beyond the int64 ns range (a pathological physics output, ±inf)
  /// saturate to the representable extremes — casting an out-of-range double
  /// to int64 is UB, not saturation. NaN throws std::invalid_argument (and
  /// fails to compile in constant evaluation).
  static constexpr SimTime from_us(double v) {
    if (v != v) throw std::invalid_argument("SimTime::from_us: NaN");
    const double ns_f = v * 1000.0 + (v >= 0 ? 0.5 : -0.5);
    // 2^63 is exactly representable as a double; the first double at or
    // above it is already unrepresentable as int64, and -2^63 itself is the
    // smallest representable value.
    if (ns_f >= 9223372036854775808.0) return SimTime{INT64_MAX};
    if (ns_f < -9223372036854775808.0) return SimTime{INT64_MIN};
    return SimTime{static_cast<std::int64_t>(ns_f)};
  }

  constexpr std::int64_t as_ns() const { return ns_; }
  constexpr double as_us() const { return static_cast<double>(ns_) / 1000.0; }
  constexpr double as_ms() const { return static_cast<double>(ns_) / 1'000'000.0; }
  constexpr double as_sec() const { return static_cast<double>(ns_) / 1'000'000'000.0; }

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns_ * k}; }
  constexpr SimTime& operator+=(SimTime o) { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  explicit constexpr SimTime(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

inline constexpr SimTime operator*(std::int64_t k, SimTime t) { return t * k; }

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) { return SimTime::ns(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_us(unsigned long long v) { return SimTime::us(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_ms(unsigned long long v) { return SimTime::ms(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_s(unsigned long long v) { return SimTime::sec(static_cast<std::int64_t>(v)); }
}  // namespace literals

}  // namespace flashmark
