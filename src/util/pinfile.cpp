#include "util/pinfile.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace flashmark::util {
namespace {

struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }
};

bool fail(std::string* error, const Cursor& c, const std::string& what) {
  if (error) {
    std::ostringstream os;
    os << what << " at byte " << c.pos;
    *error = os.str();
  }
  return false;
}

// JSON string, escapes copied through verbatim (pin keys are plain ASCII
// identifiers; anything fancier still round-trips, it just stays escaped).
bool parse_key(Cursor& c, std::string* out, std::string* error) {
  if (c.done() || c.peek() != '"') return fail(error, c, "expected '\"'");
  ++c.pos;
  out->clear();
  while (!c.done()) {
    const char ch = c.text[c.pos];
    if (ch == '"') {
      ++c.pos;
      return true;
    }
    if (static_cast<unsigned char>(ch) < 0x20)
      return fail(error, c, "control character in key");
    if (ch == '\\') {
      if (c.pos + 1 >= c.text.size())
        return fail(error, c, "truncated escape in key");
      out->push_back(ch);
      out->push_back(c.text[c.pos + 1]);
      c.pos += 2;
      continue;
    }
    out->push_back(ch);
    ++c.pos;
  }
  return fail(error, c, "unterminated key");
}

// JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
bool parse_number(Cursor& c, double* out, std::string* error) {
  const std::size_t start = c.pos;
  if (!c.done() && c.peek() == '-') ++c.pos;
  if (c.done() || !std::isdigit(static_cast<unsigned char>(c.peek())))
    return fail(error, c, "expected a number");
  if (c.peek() == '0') {
    ++c.pos;
  } else {
    while (!c.done() && std::isdigit(static_cast<unsigned char>(c.peek())))
      ++c.pos;
  }
  if (!c.done() && c.peek() == '.') {
    ++c.pos;
    if (c.done() || !std::isdigit(static_cast<unsigned char>(c.peek())))
      return fail(error, c, "expected digits after '.'");
    while (!c.done() && std::isdigit(static_cast<unsigned char>(c.peek())))
      ++c.pos;
  }
  if (!c.done() && (c.peek() == 'e' || c.peek() == 'E')) {
    ++c.pos;
    if (!c.done() && (c.peek() == '+' || c.peek() == '-')) ++c.pos;
    if (c.done() || !std::isdigit(static_cast<unsigned char>(c.peek())))
      return fail(error, c, "expected exponent digits");
    while (!c.done() && std::isdigit(static_cast<unsigned char>(c.peek())))
      ++c.pos;
  }
  const std::string token = c.text.substr(start, c.pos - start);
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size())
    return fail(error, c, "unparseable number '" + token + "'");
  if (!std::isfinite(v))
    return fail(error, c, "non-finite number '" + token + "'");
  *out = v;
  return true;
}

}  // namespace

std::optional<PinFile> parse_pin_file_text(const std::string& text,
                                           std::string* error) {
  Cursor c{text};
  c.skip_ws();
  if (c.done() || c.peek() != '{') {
    fail(error, c, "expected '{'");
    return std::nullopt;
  }
  ++c.pos;
  PinFile pins;
  c.skip_ws();
  if (!c.done() && c.peek() == '}') {
    ++c.pos;
  } else {
    for (;;) {
      c.skip_ws();
      std::string key;
      if (!parse_key(c, &key, error)) return std::nullopt;
      if (pins.values.count(key)) {
        fail(error, c, "duplicate key \"" + key + "\"");
        return std::nullopt;
      }
      c.skip_ws();
      if (c.done() || c.peek() != ':') {
        fail(error, c, "expected ':'");
        return std::nullopt;
      }
      ++c.pos;
      c.skip_ws();
      double v = 0.0;
      if (!parse_number(c, &v, error)) return std::nullopt;
      pins.values.emplace(std::move(key), v);
      c.skip_ws();
      if (!c.done() && c.peek() == ',') {
        ++c.pos;
        continue;
      }
      if (!c.done() && c.peek() == '}') {
        ++c.pos;
        break;
      }
      fail(error, c, "expected ',' or '}'");
      return std::nullopt;
    }
  }
  c.skip_ws();
  if (!c.done()) {
    fail(error, c, "trailing garbage after object");
    return std::nullopt;
  }
  return pins;
}

std::optional<PinFile> load_pin_file(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    if (error) *error = "read error on '" + path + "'";
    return std::nullopt;
  }
  return parse_pin_file_text(buf.str(), error);
}

}  // namespace flashmark::util
