// Deterministic exp/log/pow — see fm_math.hpp for the contract.
//
// Scalar and AVX2 paths execute the same operation sequence:
//   exp: k = nearbyint(x/ln2); r = x - k*ln2 (Cody–Waite two-step);
//        exp(r) by degree-13 Taylor–Horner (all fma); scale by 2^k via
//        exponent-field construction.
//   log: x = 2^e * m with m in [sqrt(2)/2, sqrt(2)); s = (m-1)/(m+1);
//        log(m) = 2s * (1 + sum s^{2k}/(2k+1), k=1..10) (fma Horner);
//        result = e*ln2 + log(m) (Cody–Waite two-step).
// Each step is one IEEE-754 operation (or an explicit fma), so the compiler
// cannot re-associate or contract anything differently between the two
// paths: identical inputs give identical bits.
#include "util/fm_math.hpp"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define FM_MATH_X86 1
#include <immintrin.h>
#else
#define FM_MATH_X86 0
#endif

namespace flashmark::fmm {
namespace {

// Cody–Waite split of ln2: HI carries the top bits exactly, so r = x - k*HI
// is exact for |k| < 2^20; LO mops up the remainder.
constexpr double kInvLn2 = 1.44269504088896338700e+00;
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kSqrt2 = 1.41421356237309514547e+00;  // nextafter(sqrt(2))

// 1/k! for the exp Taylor series, k = 2..13 (c0 = c1 = 1 are implicit in
// the Horner tail). Max |r| = ln2/2, so the truncation error is < 1e-17.
constexpr double kExpC[] = {
    1.0 / 6227020800.0,  // 1/13!
    1.0 / 479001600.0,   // 1/12!
    1.0 / 39916800.0,    // 1/11!
    1.0 / 3628800.0,     // 1/10!
    1.0 / 362880.0,      // 1/9!
    1.0 / 40320.0,       // 1/8!
    1.0 / 5040.0,        // 1/7!
    1.0 / 720.0,         // 1/6!
    1.0 / 120.0,         // 1/5!
    1.0 / 24.0,          // 1/4!
    1.0 / 6.0,           // 1/3!
    1.0 / 2.0,           // 1/2!
};

// 1/(2k+1) for the log atanh series, k = 10..1 (k = 0 is the implicit 1).
// s^2 <= 0.0295 on the reduced range, so the k=10 term is < 3e-17 relative.
constexpr double kLogC[] = {
    1.0 / 21.0, 1.0 / 19.0, 1.0 / 17.0, 1.0 / 15.0, 1.0 / 13.0,
    1.0 / 11.0, 1.0 / 9.0,  1.0 / 7.0,  1.0 / 5.0,  1.0 / 3.0,
};

// Taylor coefficients for sin(2*pi*r) / cos(2*pi*r) on |r| <= 1/8 (after
// quadrant reduction), highest degree first for Horner. (2*pi)^(2k+1)/(2k+1)!
// resp. (2*pi)^(2k)/(2k)! with alternating sign, correctly rounded; the
// first omitted term is < 1e-19, far below the series' own rounding noise.
constexpr double kSinC[] = {
    0x1.aaec32af93359p-4,   // k=8
    -0x1.6fadb9f155744p-1,  // k=7
    0x1.e8f434d018d63p+1,   // k=6
    -0x1.e3074fde8871fp+3,  // k=5
    0x1.50783487ee782p+5,   // k=4
    -0x1.32d2cce62bd86p+6,  // k=3
    0x1.466bc6775aae2p+6,   // k=2
    -0x1.4abbce625be53p+5,  // k=1
    0x1.921fb54442d18p+2,   // k=0: 2*pi
};
constexpr double kCosC[] = {
    0x1.20c62c2f2d7f5p-2,   // k=8
    -0x1.b6e24f44b128fp+0,  // k=7
    0x1.f9d38a3763cc3p+2,   // k=6
    -0x1.a6d1f2a204a8cp+4,  // k=5
    0x1.e1f506891babbp+5,   // k=4
    -0x1.55d3c7e3cbffap+6,  // k=3
    0x1.03c1f081b5ac4p+6,   // k=2
    -0x1.3bd3cc9be45dep+4,  // k=1
    1.0,                    // k=0
};

constexpr double kExpHi = 709.0;    // above: saturate to +inf
constexpr double kExpLo = -700.0;   // below: flush to +0.0
constexpr double kDblMin = 2.2250738585072014e-308;
constexpr double kTwo54 = 18014398509481984.0;  // 2^54

double bits_to_double(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof d);
  return d;
}

std::uint64_t double_to_bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

// The scalar core is instantiated twice: once for the baseline ISA (where
// std::fma lowers to the correctly-rounded libm call) and once under the
// FMA target (where it lowers to vfmadd -- the same fused operation, so the
// bits cannot differ, only the speed). fm_exp/fm_log dispatch at runtime.
#define FM_MATH_SCALAR_CORE                                                    \
  inline double exp_core(double x) {                                          \
    if (x != x) return x; /* NaN */                                           \
    if (x > kExpHi) return bits_to_double(0x7FF0000000000000ull);             \
    if (x < kExpLo) return 0.0;                                               \
    const double k = std::nearbyint(x * kInvLn2);                             \
    double r = std::fma(k, -kLn2Hi, x);                                       \
    r = std::fma(k, -kLn2Lo, r);                                              \
    double p = kExpC[0];                                                      \
    for (int i = 1; i < 12; ++i) p = std::fma(p, r, kExpC[i]);                \
    p = std::fma(p, r, 1.0);                                                  \
    p = std::fma(p, r, 1.0);                                                  \
    const std::int64_t ki = static_cast<std::int64_t>(k);                     \
    const double scale =                                                      \
        bits_to_double(static_cast<std::uint64_t>(ki + 1023) << 52);          \
    return p * scale;                                                         \
  }                                                                           \
  inline double log_core(double x) {                                          \
    double eadj = 0.0;                                                        \
    if (x < kDblMin) { /* subnormal (callers guarantee x > 0) */              \
      x = x * kTwo54;                                                         \
      eadj = -54.0;                                                           \
    }                                                                         \
    const std::uint64_t u = double_to_bits(x);                                \
    double e = static_cast<double>(                                           \
                   static_cast<std::int64_t>(u >> 52) - 1023) + eadj;         \
    double m = bits_to_double((u & 0x000FFFFFFFFFFFFFull) |                   \
                              0x3FF0000000000000ull);                         \
    if (m >= kSqrt2) {                                                        \
      m = m * 0.5;                                                            \
      e = e + 1.0;                                                            \
    }                                                                         \
    const double f = m - 1.0;                                                 \
    const double s = f / (m + 1.0);                                           \
    const double z = s * s;                                                   \
    double p = kLogC[0];                                                      \
    for (int i = 1; i < 10; ++i) p = std::fma(p, z, kLogC[i]);                \
    const double t = z * p;                                                   \
    const double twos = s + s;                                                \
    const double logm = std::fma(twos, t, twos);                              \
    double res = std::fma(e, kLn2Lo, logm);                                   \
    res = std::fma(e, kLn2Hi, res);                                           \
    return res;                                                               \
  }                                                                           \
  inline void sincos2pi_core(double u, double* sn, double* cs) {              \
    /* u in [0,1). q in {0..4}; r = u - q/4 is Sterbenz-exact and |r|<=1/8 */ \
    const double q = std::nearbyint(u * 4.0);                                 \
    const double r = std::fma(q, -0.25, u);                                   \
    const double z = r * r;                                                   \
    double ps = kSinC[0];                                                     \
    for (int i = 1; i < 9; ++i) ps = std::fma(ps, z, kSinC[i]);               \
    ps = ps * r;                                                              \
    double pc = kCosC[0];                                                     \
    for (int i = 1; i < 9; ++i) pc = std::fma(pc, z, kCosC[i]);               \
    switch (static_cast<int>(q) & 3) {                                        \
      case 0: *sn = ps; *cs = pc; break;                                      \
      case 1: *sn = pc; *cs = -ps; break;                                     \
      case 2: *sn = -ps; *cs = -pc; break;                                    \
      default: *sn = -pc; *cs = ps; break;                                    \
    }                                                                         \
  }

namespace generic_isa {
FM_MATH_SCALAR_CORE
}  // namespace generic_isa

#if FM_MATH_X86
#pragma GCC push_options
#pragma GCC target("fma")
namespace fma_isa {
FM_MATH_SCALAR_CORE
}  // namespace fma_isa
#pragma GCC pop_options
#endif

bool detect_fma_isa() {
#if FM_MATH_X86
  __builtin_cpu_init();
  return __builtin_cpu_supports("fma");
#else
  return false;
#endif
}
const bool g_fma_isa = detect_fma_isa();

double exp_scalar(double x) {
#if FM_MATH_X86
  if (g_fma_isa) return fma_isa::exp_core(x);
#endif
  return generic_isa::exp_core(x);
}

double log_scalar(double x) {
#if FM_MATH_X86
  if (g_fma_isa) return fma_isa::log_core(x);
#endif
  return generic_isa::log_core(x);
}

void sincos2pi_scalar(double u, double* sn, double* cs) {
#if FM_MATH_X86
  if (g_fma_isa) {
    fma_isa::sincos2pi_core(u, sn, cs);
    return;
  }
#endif
  generic_isa::sincos2pi_core(u, sn, cs);
}

#if FM_MATH_X86

__attribute__((target("avx2,fma"))) __m256d exp_avx2(__m256d x) {
  const __m256d inf = _mm256_set1_pd(bits_to_double(0x7FF0000000000000ull));
  const __m256d k =
      _mm256_round_pd(_mm256_mul_pd(x, _mm256_set1_pd(kInvLn2)),
                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fmadd_pd(k, _mm256_set1_pd(-kLn2Hi), x);
  r = _mm256_fmadd_pd(k, _mm256_set1_pd(-kLn2Lo), r);
  __m256d p = _mm256_set1_pd(kExpC[0]);
  for (int i = 1; i < 12; ++i)
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kExpC[i]));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  // 2^k: k is integral and |k| <= 1023 here, so int32 conversion is exact.
  const __m128i ki32 = _mm256_cvtpd_epi32(k);
  const __m256i ki = _mm256_cvtepi32_epi64(ki32);
  const __m256i bits = _mm256_slli_epi64(
      _mm256_add_epi64(ki, _mm256_set1_epi64x(1023)), 52);
  __m256d res = _mm256_mul_pd(p, _mm256_castsi256_pd(bits));
  // Clamps, applied exactly as the scalar branch ladder does.
  const __m256d lo_mask =
      _mm256_cmp_pd(x, _mm256_set1_pd(kExpLo), _CMP_LT_OQ);
  res = _mm256_blendv_pd(res, _mm256_setzero_pd(), lo_mask);
  const __m256d hi_mask =
      _mm256_cmp_pd(x, _mm256_set1_pd(kExpHi), _CMP_GT_OQ);
  res = _mm256_blendv_pd(res, inf, hi_mask);
  const __m256d nan_mask = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
  res = _mm256_blendv_pd(res, x, nan_mask);
  return res;
}

__attribute__((target("avx2,fma"))) __m256d log_avx2(__m256d x) {
  // Subnormal pre-scale (exact: multiply by a power of two).
  const __m256d tiny =
      _mm256_cmp_pd(x, _mm256_set1_pd(kDblMin), _CMP_LT_OQ);
  x = _mm256_blendv_pd(x, _mm256_mul_pd(x, _mm256_set1_pd(kTwo54)), tiny);
  const __m256d eadj =
      _mm256_blendv_pd(_mm256_setzero_pd(), _mm256_set1_pd(-54.0), tiny);
  const __m256i u = _mm256_castpd_si256(x);
  // Exponent field -> double. All intermediate values are exact integers
  // below 2^52, so every operation is exact and order-independent.
  const __m256i e_i = _mm256_sub_epi64(_mm256_srli_epi64(u, 52),
                                       _mm256_set1_epi64x(1023));
  // int64 -> double for small |v|: or in 2^52's exponent, subtract 2^52.
  // e_i is in [-1077, 1024] so bias it positive first (+2048), then undo.
  const __m256i biased = _mm256_add_epi64(e_i, _mm256_set1_epi64x(2048));
  const __m256d magic = _mm256_set1_pd(4503599627370496.0);  // 2^52
  const __m256d e_raw = _mm256_sub_pd(
      _mm256_castsi256_pd(
          _mm256_or_si256(biased, _mm256_castpd_si256(magic))),
      magic);
  __m256d e = _mm256_add_pd(_mm256_sub_pd(e_raw, _mm256_set1_pd(2048.0)),
                            eadj);
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(u, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFll)),
      _mm256_set1_epi64x(0x3FF0000000000000ll)));
  const __m256d big =
      _mm256_cmp_pd(m, _mm256_set1_pd(kSqrt2), _CMP_GE_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), big);
  e = _mm256_blendv_pd(e, _mm256_add_pd(e, _mm256_set1_pd(1.0)), big);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d f = _mm256_sub_pd(m, one);
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(m, one));
  const __m256d z = _mm256_mul_pd(s, s);
  __m256d p = _mm256_set1_pd(kLogC[0]);
  for (int i = 1; i < 10; ++i)
    p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(kLogC[i]));
  const __m256d t = _mm256_mul_pd(z, p);
  const __m256d twos = _mm256_add_pd(s, s);
  const __m256d logm = _mm256_fmadd_pd(twos, t, twos);
  __m256d res = _mm256_fmadd_pd(e, _mm256_set1_pd(kLn2Lo), logm);
  res = _mm256_fmadd_pd(e, _mm256_set1_pd(kLn2Hi), res);
  return res;
}

// Quadrant selection from iq = int(q) & 3, exactly mirroring the scalar
// switch: odd quadrants swap sin/cos; quadrants {2,3} negate sin; {1,2}
// negate cos. Swaps and sign flips are bit operations, so the lanes cannot
// diverge from the scalar branches.
__attribute__((target("avx2,fma"))) void sincos2pi_avx2(__m256d u,
                                                        __m256d* sn,
                                                        __m256d* cs) {
  const __m256d q =
      _mm256_round_pd(_mm256_mul_pd(u, _mm256_set1_pd(4.0)),
                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d r = _mm256_fmadd_pd(q, _mm256_set1_pd(-0.25), u);
  const __m256d z = _mm256_mul_pd(r, r);
  __m256d ps = _mm256_set1_pd(kSinC[0]);
  for (int i = 1; i < 9; ++i)
    ps = _mm256_fmadd_pd(ps, z, _mm256_set1_pd(kSinC[i]));
  ps = _mm256_mul_pd(ps, r);
  __m256d pc = _mm256_set1_pd(kCosC[0]);
  for (int i = 1; i < 9; ++i)
    pc = _mm256_fmadd_pd(pc, z, _mm256_set1_pd(kCosC[i]));
  const __m256i iq = _mm256_and_si256(
      _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(q)), _mm256_set1_epi64x(3));
  const __m256d odd = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
      _mm256_and_si256(iq, _mm256_set1_epi64x(1)), _mm256_set1_epi64x(1)));
  const __m256d s_base = _mm256_blendv_pd(ps, pc, odd);
  const __m256d c_base = _mm256_blendv_pd(pc, ps, odd);
  const __m256d signbit = _mm256_set1_pd(-0.0);
  const __m256d s_neg = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
      _mm256_and_si256(iq, _mm256_set1_epi64x(2)), _mm256_set1_epi64x(2)));
  const __m256d c_neg = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
      _mm256_and_si256(_mm256_add_epi64(iq, _mm256_set1_epi64x(1)),
                       _mm256_set1_epi64x(2)),
      _mm256_set1_epi64x(2)));
  *sn = _mm256_xor_pd(s_base, _mm256_and_pd(s_neg, signbit));
  *cs = _mm256_xor_pd(c_base, _mm256_and_pd(c_neg, signbit));
}

__attribute__((target("avx2,fma"))) void exp_n_avx2(const double* x,
                                                    double* out,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, exp_avx2(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) out[i] = exp_scalar(x[i]);
}

__attribute__((target("avx2,fma"))) void log_n_avx2(const double* x,
                                                    double* out,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, log_avx2(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) out[i] = log_scalar(x[i]);
}

__attribute__((target("avx2,fma"))) void sincos2pi_n_avx2(const double* u,
                                                          double* sin_out,
                                                          double* cos_out,
                                                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d sn;
    __m256d cs;
    sincos2pi_avx2(_mm256_loadu_pd(u + i), &sn, &cs);
    _mm256_storeu_pd(sin_out + i, sn);
    _mm256_storeu_pd(cos_out + i, cs);
  }
  for (; i < n; ++i) sincos2pi_scalar(u[i], sin_out + i, cos_out + i);
}

__attribute__((target("avx2,fma"))) void pow_pos_n_avx2(const double* x,
                                                        double y, double* out,
                                                        std::size_t n) {
  const __m256d vy = _mm256_set1_pd(y);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d lg = log_avx2(_mm256_loadu_pd(x + i));
    _mm256_storeu_pd(out + i, exp_avx2(_mm256_mul_pd(vy, lg)));
  }
  for (; i < n; ++i) out[i] = exp_scalar(y * log_scalar(x[i]));
}

// ---------------------------------------------------------------------------
// AVX-512 lanes: the exact same operation sequences as the AVX2 kernels above,
// widened to 8 doubles. Every step is still one IEEE op (or one fma), so the
// lanes are bit-identical to scalar by the same argument. The only structural
// difference is mechanical: AVX-512 expresses blends as mask moves
// (semantically identical to blendv) and converts int64->double with the
// AVX-512DQ cvt (exact for these small integers, same bits as the
// magic-number trick). sincos2pi stays AVX2-max: it is not on the pass-1/2
// hot path the wider lanes exist for.

__attribute__((target("avx512f,avx512dq,avx2,fma"))) __m512d exp_avx512(
    __m512d x) {
  const __m512d inf = _mm512_set1_pd(bits_to_double(0x7FF0000000000000ull));
  const __m512d k =
      _mm512_roundscale_pd(_mm512_mul_pd(x, _mm512_set1_pd(kInvLn2)),
                           _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512d r = _mm512_fmadd_pd(k, _mm512_set1_pd(-kLn2Hi), x);
  r = _mm512_fmadd_pd(k, _mm512_set1_pd(-kLn2Lo), r);
  __m512d p = _mm512_set1_pd(kExpC[0]);
  for (int i = 1; i < 12; ++i)
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(kExpC[i]));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0));
  // 2^k: k is integral and |k| <= 1023 here, so int32 conversion is exact.
  const __m256i ki32 = _mm512_cvtpd_epi32(k);
  const __m512i ki = _mm512_cvtepi32_epi64(ki32);
  const __m512i bits =
      _mm512_slli_epi64(_mm512_add_epi64(ki, _mm512_set1_epi64(1023)), 52);
  __m512d res = _mm512_mul_pd(p, _mm512_castsi512_pd(bits));
  // Clamps, applied exactly as the scalar branch ladder does.
  const __mmask8 lo_mask =
      _mm512_cmp_pd_mask(x, _mm512_set1_pd(kExpLo), _CMP_LT_OQ);
  res = _mm512_mask_mov_pd(res, lo_mask, _mm512_setzero_pd());
  const __mmask8 hi_mask =
      _mm512_cmp_pd_mask(x, _mm512_set1_pd(kExpHi), _CMP_GT_OQ);
  res = _mm512_mask_mov_pd(res, hi_mask, inf);
  const __mmask8 nan_mask = _mm512_cmp_pd_mask(x, x, _CMP_UNORD_Q);
  res = _mm512_mask_mov_pd(res, nan_mask, x);
  return res;
}

__attribute__((target("avx512f,avx512dq,avx2,fma"))) __m512d log_avx512(
    __m512d x) {
  // Subnormal pre-scale (exact: multiply by a power of two).
  const __mmask8 tiny =
      _mm512_cmp_pd_mask(x, _mm512_set1_pd(kDblMin), _CMP_LT_OQ);
  x = _mm512_mask_mov_pd(x, tiny, _mm512_mul_pd(x, _mm512_set1_pd(kTwo54)));
  const __m512d eadj =
      _mm512_mask_mov_pd(_mm512_setzero_pd(), tiny, _mm512_set1_pd(-54.0));
  const __m512i u = _mm512_castpd_si512(x);
  const __m512i e_i = _mm512_sub_epi64(_mm512_srli_epi64(u, 52),
                                       _mm512_set1_epi64(1023));
  // AVX-512DQ int64 -> double is a correctly-rounded conversion, hence exact
  // for e_i in [-1077, 1024]: identical bits to the AVX2 magic-number path.
  __m512d e = _mm512_add_pd(_mm512_cvtepi64_pd(e_i), eadj);
  __m512d m = _mm512_castsi512_pd(_mm512_or_si512(
      _mm512_and_si512(u, _mm512_set1_epi64(0x000FFFFFFFFFFFFFll)),
      _mm512_set1_epi64(0x3FF0000000000000ll)));
  const __mmask8 big =
      _mm512_cmp_pd_mask(m, _mm512_set1_pd(kSqrt2), _CMP_GE_OQ);
  m = _mm512_mask_mov_pd(m, big, _mm512_mul_pd(m, _mm512_set1_pd(0.5)));
  e = _mm512_mask_mov_pd(e, big, _mm512_add_pd(e, _mm512_set1_pd(1.0)));
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d f = _mm512_sub_pd(m, one);
  const __m512d s = _mm512_div_pd(f, _mm512_add_pd(m, one));
  const __m512d z = _mm512_mul_pd(s, s);
  __m512d p = _mm512_set1_pd(kLogC[0]);
  for (int i = 1; i < 10; ++i)
    p = _mm512_fmadd_pd(p, z, _mm512_set1_pd(kLogC[i]));
  const __m512d t = _mm512_mul_pd(z, p);
  const __m512d twos = _mm512_add_pd(s, s);
  const __m512d logm = _mm512_fmadd_pd(twos, t, twos);
  __m512d res = _mm512_fmadd_pd(e, _mm512_set1_pd(kLn2Lo), logm);
  res = _mm512_fmadd_pd(e, _mm512_set1_pd(kLn2Hi), res);
  return res;
}

__attribute__((target("avx512f,avx512dq,avx2,fma"))) void exp_n_avx512(
    const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_pd(out + i, exp_avx512(_mm512_loadu_pd(x + i)));
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, exp_avx2(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) out[i] = exp_scalar(x[i]);
}

__attribute__((target("avx512f,avx512dq,avx2,fma"))) void log_n_avx512(
    const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_pd(out + i, log_avx512(_mm512_loadu_pd(x + i)));
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, log_avx2(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) out[i] = log_scalar(x[i]);
}

__attribute__((target("avx512f,avx512dq,avx2,fma"))) void pow_pos_n_avx512(
    const double* x, double y, double* out, std::size_t n) {
  const __m512d vy = _mm512_set1_pd(y);
  const __m256d vy4 = _mm256_set1_pd(y);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d lg = log_avx512(_mm512_loadu_pd(x + i));
    _mm512_storeu_pd(out + i, exp_avx512(_mm512_mul_pd(vy, lg)));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d lg = log_avx2(_mm256_loadu_pd(x + i));
    _mm256_storeu_pd(out + i, exp_avx2(_mm256_mul_pd(vy4, lg)));
  }
  for (; i < n; ++i) out[i] = exp_scalar(y * log_scalar(x[i]));
}

#endif  // FM_MATH_X86

Isa detect_isa_impl() {
#if FM_MATH_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl")) {
      return Isa::kAvx512;
    }
    return Isa::kAvx2;
  }
#endif
  return Isa::kScalar;
}
const Isa g_detected_isa = detect_isa_impl();

// Env caps, read once per process. Any non-empty value except "0" counts as
// set; FLASHMARK_FORCE_SCALAR wins over FLASHMARK_FORCE_AVX2.
bool env_flag_set(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}
Isa env_cap_impl() {
  if (env_flag_set("FLASHMARK_FORCE_SCALAR")) return Isa::kScalar;
  if (env_flag_set("FLASHMARK_FORCE_AVX2")) return Isa::kAvx2;
  return Isa::kAvx512;
}
const Isa g_env_cap = env_cap_impl();

std::atomic<int> g_test_cap{static_cast<int>(Isa::kAvx512)};

}  // namespace

double fm_exp(double x) { return exp_scalar(x); }
double fm_log(double x) { return log_scalar(x); }
double fm_pow_pos(double x, double y) {
  return exp_scalar(y * log_scalar(x));
}

void fm_sincos2pi(double u, double* sin_out, double* cos_out) {
  sincos2pi_scalar(u, sin_out, cos_out);
}

void fm_exp_n(const double* x, double* out, std::size_t n) {
#if FM_MATH_X86
  const Isa isa = active_isa();
  if (isa == Isa::kAvx512) {
    exp_n_avx512(x, out, n);
    return;
  }
  if (isa == Isa::kAvx2) {
    exp_n_avx2(x, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_scalar(x[i]);
}

void fm_log_n(const double* x, double* out, std::size_t n) {
#if FM_MATH_X86
  const Isa isa = active_isa();
  if (isa == Isa::kAvx512) {
    log_n_avx512(x, out, n);
    return;
  }
  if (isa == Isa::kAvx2) {
    log_n_avx2(x, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = log_scalar(x[i]);
}

void fm_sincos2pi_n(const double* u, double* sin_out, double* cos_out,
                    std::size_t n) {
#if FM_MATH_X86
  if (active_isa() != Isa::kScalar) {
    sincos2pi_n_avx2(u, sin_out, cos_out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i)
    sincos2pi_scalar(u[i], sin_out + i, cos_out + i);
}

void fm_pow_pos_n(const double* x, double y, double* out, std::size_t n) {
#if FM_MATH_X86
  const Isa isa = active_isa();
  if (isa == Isa::kAvx512) {
    pow_pos_n_avx512(x, y, out, n);
    return;
  }
  if (isa == Isa::kAvx2) {
    pow_pos_n_avx2(x, y, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_scalar(y * log_scalar(x[i]));
}

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "?";
}

Isa detected_isa() { return g_detected_isa; }

Isa active_isa() {
  Isa isa = g_detected_isa;
  if (g_env_cap < isa) isa = g_env_cap;
  const Isa test_cap =
      static_cast<Isa>(g_test_cap.load(std::memory_order_relaxed));
  if (test_cap < isa) isa = test_cap;
  return isa;
}

void set_isa_cap_for_test(Isa cap) {
  g_test_cap.store(static_cast<int>(cap), std::memory_order_relaxed);
}

bool simd_active() { return active_isa() != Isa::kScalar; }

}  // namespace flashmark::fmm
