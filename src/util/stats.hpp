// Small statistics helpers used by the characterization experiments and the
// recycled-flash detector baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace flashmark {

/// Streaming mean/variance/min/max (Welford's algorithm). NaN samples are
/// rejected with std::invalid_argument (same policy as Histogram::add and
/// percentile): one NaN would silently poison mean/min/max for good.
class RunningStats {
 public:
  void add(double x);

  /// Fold `other` into this accumulator (Chan et al. parallel Welford):
  /// after the call this summarizes the union of both sample sets. Either
  /// side may be empty (a fresh accumulator merges in as a no-op; merging
  /// into a fresh one copies). The combined moments agree with a single
  /// sequential pass to floating-point accuracy, NOT bit-for-bit — code
  /// under a byte-identity contract must accumulate exact (integer) sums
  /// and derive moments once at the fold point (see src/lot).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator). std::nullopt when fewer than two
  /// samples: the old 0.0 return was indistinguishable from a true
  /// zero-variance population in downstream CSVs, so the undefined case is
  /// now explicit at the type level.
  std::optional<double> variance() const;
  /// Sample standard deviation; std::nullopt when variance() is.
  std::optional<double> stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sum of squared deviations from the mean (Welford's M2) — exposed so
  /// accumulators can cross process boundaries (see from_parts).
  double m2() const { return m2_; }

  /// Rebuild an accumulator from serialized parts (the lot shard wire
  /// format ships per-shard stats this way and merges them in the parent).
  /// NaN parts and negative m2 are rejected with std::invalid_argument —
  /// the same poisoning policy as add(). n == 0 ignores the other parts.
  static RunningStats from_parts(std::size_t n, double mean, double m2,
                                 double min, double max);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Wilson score interval for a binomial proportion: the detection-probability
/// confidence band of the lot-scale curves (src/lot). Unlike the normal
/// ("Wald") interval it stays inside [0, 1] and behaves at p-hat near 0/1 —
/// exactly the regime a good detector lives in. `z` is the two-sided normal
/// quantile (1.959963984540054 for 95%). Throws std::invalid_argument when
/// trials == 0, successes > trials, or z is not finite and positive.
struct WilsonInterval {
  double p_hat = 0.0;  ///< successes / trials
  double lo = 0.0;
  double hi = 0.0;
};
WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z);

/// Sample variance (n-1 denominator) of n samples recovered from the exact
/// integer sums Σx and Σx² of *integer-valued* samples. The sums are
/// associative, so any sharded accumulation order yields bit-identical
/// variance — the trick behind the lot layer's shard-invariance contract
/// (docs/REPRODUCIBILITY.md §9). The numerator n·Σx² − (Σx)² is formed in
/// 128-bit integer arithmetic (exact), then rounded once to double. Throws
/// std::invalid_argument when n < 2 — callers print intervals only after
/// checking count, never a silent 0.
double variance_from_counts(std::uint64_t sum, std::uint64_t sum_sq,
                            std::uint64_t n);

/// p-th percentile (0..100) by linear interpolation between order statistics.
/// Copies and sorts; fine for the segment-sized vectors we use. Throws
/// std::invalid_argument on an empty input, any NaN value (NaN breaks the
/// strict weak ordering std::sort requires) or a NaN `p` (it would sail
/// through the clamps and reach an UB float->size_t cast); out-of-range
/// finite `p` is clamped to [0, 100].
double percentile(std::vector<double> values, double p);

/// Median convenience wrapper.
double median(std::vector<double> values);

/// Simple fixed-width histogram over [lo, hi). Out-of-range samples are NOT
/// folded into the edge bins (that silently skews tail statistics); they are
/// tallied in `underflow()` / `overflow()` instead. NaN samples are rejected
/// with std::invalid_argument. Used by characterization reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t i) const;
  /// Samples accepted (in-range + underflow + overflow).
  std::size_t total() const { return total_; }
  /// Samples below `lo`.
  std::size_t underflow() const { return underflow_; }
  /// Samples at or above `hi`.
  std::size_t overflow() const { return overflow_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace flashmark
