// Small statistics helpers used by the characterization experiments and the
// recycled-flash detector baseline.
#pragma once

#include <cstddef>
#include <vector>

namespace flashmark {

/// Streaming mean/variance/min/max (Welford's algorithm). NaN samples are
/// rejected with std::invalid_argument (same policy as Histogram::add and
/// percentile): one NaN would silently poison mean/min/max for good.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0..100) by linear interpolation between order statistics.
/// Copies and sorts; fine for the segment-sized vectors we use. Throws
/// std::invalid_argument on an empty input, any NaN value (NaN breaks the
/// strict weak ordering std::sort requires) or a NaN `p` (it would sail
/// through the clamps and reach an UB float->size_t cast); out-of-range
/// finite `p` is clamped to [0, 100].
double percentile(std::vector<double> values, double p);

/// Median convenience wrapper.
double median(std::vector<double> values);

/// Simple fixed-width histogram over [lo, hi). Out-of-range samples are NOT
/// folded into the edge bins (that silently skews tail statistics); they are
/// tallied in `underflow()` / `overflow()` instead. NaN samples are rejected
/// with std::invalid_argument. Used by characterization reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t i) const;
  /// Samples accepted (in-range + underflow + overflow).
  std::size_t total() const { return total_; }
  /// Samples below `lo`.
  std::size_t underflow() const { return underflow_; }
  /// Samples at or above `hi`.
  std::size_t overflow() const { return overflow_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace flashmark
