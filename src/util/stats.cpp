#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flashmark {

void RunningStats::add(double x) {
  // Uniform NaN policy across util/stats (Histogram::add and percentile
  // already throw): accepting NaN here would silently poison mean_/min_/max_
  // for every later sample — min/max comparisons with NaN are always false,
  // so the poisoning is unrecoverable and invisible.
  if (std::isnan(x)) throw std::invalid_argument("RunningStats::add: NaN sample");
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan/Golub/LeVeque pairwise update: combine the two means and M2 sums
  // without revisiting samples. delta-based form is the numerically stable
  // variant (the naive sum-of-squares difference cancels catastrophically).
  const double n1 = static_cast<double>(n_);
  const double n2 = static_cast<double>(other.n_);
  const double nt = n1 + n2;
  const double delta = other.mean_ - mean_;
  mean_ += delta * (n2 / nt);
  m2_ += other.m2_ + delta * delta * (n1 * n2 / nt);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

std::optional<double> RunningStats::variance() const {
  if (n_ < 2) return std::nullopt;
  return m2_ / static_cast<double>(n_ - 1);
}

std::optional<double> RunningStats::stddev() const {
  const std::optional<double> v = variance();
  if (!v) return std::nullopt;
  return std::sqrt(*v);
}

RunningStats RunningStats::from_parts(std::size_t n, double mean, double m2,
                                      double min, double max) {
  RunningStats s;
  if (n == 0) return s;
  if (std::isnan(mean) || std::isnan(m2) || std::isnan(min) || std::isnan(max))
    throw std::invalid_argument("RunningStats::from_parts: NaN part");
  if (m2 < 0.0)
    throw std::invalid_argument("RunningStats::from_parts: negative m2");
  s.n_ = n;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z) {
  if (trials == 0)
    throw std::invalid_argument("wilson_interval: zero trials");
  if (successes > trials)
    throw std::invalid_argument("wilson_interval: successes > trials");
  if (!(z > 0.0) || !std::isfinite(z))
    throw std::invalid_argument("wilson_interval: z must be finite and > 0");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  WilsonInterval w;
  w.p_hat = p;
  w.lo = center - half;
  w.hi = center + half;
  // The score interval is within [0,1] analytically; clamp the last-ulp
  // rounding spill so consumers can rely on the bounds.
  if (w.lo < 0.0) w.lo = 0.0;
  if (w.hi > 1.0) w.hi = 1.0;
  return w;
}

double variance_from_counts(std::uint64_t sum, std::uint64_t sum_sq,
                            std::uint64_t n) {
  if (n < 2)
    throw std::invalid_argument(
        "variance_from_counts: n < 2 — check count() before printing "
        "intervals");
  // n·Σx² − (Σx)² is exact in 128-bit arithmetic for any per-sample value
  // up to ~2^31 over ~2^32 samples; by Cauchy–Schwarz it is non-negative.
  const unsigned __int128 num =
      static_cast<unsigned __int128>(n) * sum_sq -
      static_cast<unsigned __int128>(sum) * sum;
  return static_cast<double>(num) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  for (const double v : values)
    if (std::isnan(v)) throw std::invalid_argument("percentile: NaN input");
  // A NaN p slips through both clamp comparisons (NaN < 0 and NaN > 100 are
  // both false), makes `rank` NaN, and the size_t cast of NaN below is UB.
  if (std::isnan(p)) throw std::invalid_argument("percentile: NaN p");
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0)
    throw std::invalid_argument("Histogram: bad range or bin count");
}

void Histogram::add(double x) {
  if (std::isnan(x)) throw std::invalid_argument("Histogram::add: NaN sample");
  if (x < lo_) {
    ++underflow_;
    ++total_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++total_;
    return;
  }
  const double span = hi_ - lo_;
  auto idx = static_cast<std::size_t>((x - lo_) / span *
                                      static_cast<double>(counts_.size()));
  // Rounding at the top edge can land exactly on bins(); fold it back.
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

}  // namespace flashmark
