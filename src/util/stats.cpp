#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flashmark {

void RunningStats::add(double x) {
  // Uniform NaN policy across util/stats (Histogram::add and percentile
  // already throw): accepting NaN here would silently poison mean_/min_/max_
  // for every later sample — min/max comparisons with NaN are always false,
  // so the poisoning is unrecoverable and invisible.
  if (std::isnan(x)) throw std::invalid_argument("RunningStats::add: NaN sample");
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  for (const double v : values)
    if (std::isnan(v)) throw std::invalid_argument("percentile: NaN input");
  // A NaN p slips through both clamp comparisons (NaN < 0 and NaN > 100 are
  // both false), makes `rank` NaN, and the size_t cast of NaN below is UB.
  if (std::isnan(p)) throw std::invalid_argument("percentile: NaN p");
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0)
    throw std::invalid_argument("Histogram: bad range or bin count");
}

void Histogram::add(double x) {
  if (std::isnan(x)) throw std::invalid_argument("Histogram::add: NaN sample");
  if (x < lo_) {
    ++underflow_;
    ++total_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++total_;
    return;
  }
  const double span = hi_ - lo_;
  auto idx = static_cast<std::size_t>((x - lo_) / span *
                                      static_cast<double>(counts_.size()));
  // Rounding at the top edge can land exactly on bins(); fold it back.
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

}  // namespace flashmark
