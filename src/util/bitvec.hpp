// Dynamic bit vector used for watermarks, segment state snapshots and BER
// accounting. Thin, value-semantic wrapper over a word array; position 0 is
// the least-significant bit of word 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace flashmark {

class BitVec {
 public:
  BitVec() = default;

  /// All-zero vector of n bits.
  explicit BitVec(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  /// Vector of n bits, every bit set to `value`.
  BitVec(std::size_t n, bool value);

  /// Build from a string of '0'/'1' characters (other characters are
  /// rejected with std::invalid_argument). Bit 0 is the first character.
  static BitVec from_string(const std::string& bits);

  /// Build from raw bytes, LSB-first within each byte; n_bits may trim the
  /// final byte.
  static BitVec from_bytes(const std::vector<std::uint8_t>& bytes,
                           std::size_t n_bits);

  /// Pack ASCII text, 8 bits per character, MSB-first within each character
  /// (matches the paper's Fig. 6 rendering of "TC" = 01010100 01000011).
  static BitVec from_ascii_msb_first(const std::string& text);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Number of set bits.
  std::size_t popcount() const;
  /// Number of zero bits.
  std::size_t zero_count() const { return size_ - popcount(); }

  /// Hamming distance; both vectors must be the same length.
  static std::size_t hamming_distance(const BitVec& a, const BitVec& b);

  /// Bitwise XOR (same length required).
  BitVec operator^(const BitVec& o) const;

  /// Append another vector's bits after this one's.
  void append(const BitVec& o);

  /// Extract bits [begin, begin+len).
  BitVec slice(std::size_t begin, std::size_t len) const;

  /// Serialize to bytes, LSB-first within each byte; final byte zero-padded.
  std::vector<std::uint8_t> to_bytes() const;

  /// Decode as ASCII, MSB-first per character (inverse of
  /// from_ascii_msb_first). size() must be a multiple of 8.
  std::string to_ascii_msb_first() const;

  /// '0'/'1' string, bit 0 first.
  std::string to_string() const;

  bool operator==(const BitVec& o) const;

 private:
  void check_index(std::size_t i) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace flashmark
