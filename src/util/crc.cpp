#include "util/crc.hpp"

namespace flashmark {

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t len) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= static_cast<std::uint16_t>(data[i]) << 8;
    for (int b = 0; b < 8; ++b)
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
  }
  return crc;
}

std::uint16_t crc16_ccitt(const std::vector<std::uint8_t>& data) {
  return crc16_ccitt(data.data(), data.size());
}

std::uint32_t crc32_ieee(const std::uint8_t* data, std::size_t len) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b)
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_ieee(const std::vector<std::uint8_t>& data) {
  return crc32_ieee(data.data(), data.size());
}

}  // namespace flashmark
