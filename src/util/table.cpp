#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace flashmark {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table::add_row: arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt(std::size_t v) { return std::to_string(v); }
std::string Table::fmt(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c], '-') << (c + 1 == header_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace flashmark
