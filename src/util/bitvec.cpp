#include "util/bitvec.hpp"

#include <bit>
#include <stdexcept>

namespace flashmark {

BitVec::BitVec(std::size_t n, bool value) : BitVec(n) {
  if (value) {
    for (auto& w : words_) w = ~0ull;
    // Clear the unused tail bits so popcount stays correct.
    const std::size_t tail = size_ % 64;
    if (tail != 0 && !words_.empty()) words_.back() &= (1ull << tail) - 1;
  }
}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      v.set(i, true);
    } else if (bits[i] != '0') {
      throw std::invalid_argument("BitVec::from_string: bad character");
    }
  }
  return v;
}

BitVec BitVec::from_bytes(const std::vector<std::uint8_t>& bytes,
                          std::size_t n_bits) {
  if (n_bits > bytes.size() * 8)
    throw std::invalid_argument("BitVec::from_bytes: n_bits exceeds data");
  BitVec v(n_bits);
  for (std::size_t i = 0; i < n_bits; ++i)
    v.set(i, (bytes[i / 8] >> (i % 8)) & 1u);
  return v;
}

BitVec BitVec::from_ascii_msb_first(const std::string& text) {
  BitVec v(text.size() * 8);
  for (std::size_t c = 0; c < text.size(); ++c) {
    const auto byte = static_cast<std::uint8_t>(text[c]);
    for (int b = 0; b < 8; ++b)
      v.set(c * 8 + static_cast<std::size_t>(b), (byte >> (7 - b)) & 1u);
  }
  return v;
}

void BitVec::check_index(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitVec index out of range");
}

bool BitVec::get(std::size_t i) const {
  check_index(i);
  return (words_[i / 64] >> (i % 64)) & 1ull;
}

void BitVec::set(std::size_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = 1ull << (i % 64);
  if (value)
    words_[i / 64] |= mask;
  else
    words_[i / 64] &= ~mask;
}

void BitVec::flip(std::size_t i) {
  check_index(i);
  words_[i / 64] ^= 1ull << (i % 64);
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitVec::hamming_distance(const BitVec& a, const BitVec& b) {
  if (a.size_ != b.size_)
    throw std::invalid_argument("hamming_distance: length mismatch");
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i)
    n += static_cast<std::size_t>(std::popcount(a.words_[i] ^ b.words_[i]));
  return n;
}

BitVec BitVec::operator^(const BitVec& o) const {
  if (size_ != o.size_) throw std::invalid_argument("BitVec^: length mismatch");
  BitVec r(size_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    r.words_[i] = words_[i] ^ o.words_[i];
  return r;
}

void BitVec::append(const BitVec& o) {
  // Snapshot the source length before growing: with `v.append(v)` the
  // mutations below are visible through `o`, and reading `o.size_` after
  // them would double-count (and walk into the freshly zeroed tail).
  const std::size_t old = size_;
  const std::size_t n = o.size_;
  size_ += n;
  words_.resize((size_ + 63) / 64, 0);
  for (std::size_t i = 0; i < n; ++i) set(old + i, o.get(i));
}

BitVec BitVec::slice(std::size_t begin, std::size_t len) const {
  if (begin + len > size_) throw std::out_of_range("BitVec::slice out of range");
  BitVec r(len);
  for (std::size_t i = 0; i < len; ++i) r.set(i, get(begin + i));
  return r;
}

std::vector<std::uint8_t> BitVec::to_bytes() const {
  std::vector<std::uint8_t> out((size_ + 7) / 8, 0);
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  return out;
}

std::string BitVec::to_ascii_msb_first() const {
  if (size_ % 8 != 0)
    throw std::invalid_argument("to_ascii_msb_first: size not multiple of 8");
  std::string out(size_ / 8, '\0');
  for (std::size_t c = 0; c < out.size(); ++c) {
    std::uint8_t byte = 0;
    for (int b = 0; b < 8; ++b)
      if (get(c * 8 + static_cast<std::size_t>(b)))
        byte |= static_cast<std::uint8_t>(1u << (7 - b));
    out[c] = static_cast<char>(byte);
  }
  return out;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

bool BitVec::operator==(const BitVec& o) const {
  return size_ == o.size_ && words_ == o.words_;
}

}  // namespace flashmark
