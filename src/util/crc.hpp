// CRC checksums used by the watermark codec for integrity fields.
//
// CRC-16/CCITT-FALSE protects short watermark payloads; CRC-32 (IEEE 802.3)
// is available for larger payloads. Both are table-free bitwise
// implementations — watermarks are tiny, speed is irrelevant, and the
// bitwise form is trivially auditable against the published polynomials.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flashmark {

/// CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection, no xorout.
/// check("123456789") == 0x29B1.
std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t len);
std::uint16_t crc16_ccitt(const std::vector<std::uint8_t>& data);

/// CRC-32 (IEEE 802.3, as used by zlib): poly 0x04C11DB7 reflected, init
/// 0xFFFFFFFF, reflected IO, final xor 0xFFFFFFFF. check("123456789") ==
/// 0xCBF43926.
std::uint32_t crc32_ieee(const std::uint8_t* data, std::size_t len);
std::uint32_t crc32_ieee(const std::vector<std::uint8_t>& data);

}  // namespace flashmark
