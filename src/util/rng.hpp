// Deterministic random number generation for the simulator.
//
// The whole reproduction must be bit-reproducible across platforms and
// standard-library versions, so we ship our own generator (xoshiro256**) and
// our own samplers instead of relying on std::normal_distribution etc., whose
// outputs are implementation-defined. The samplers' transcendentals go
// through util/fm_math (project-owned exp/log/pow/sincos), not libm, so the
// draw streams carry no dependence on the host's libm build either — the
// only <cmath> call left in a sampler is sqrt, which IEEE-754 rounds
// correctly everywhere.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace flashmark {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Fast, 256-bit state, passes BigCrush; seeded via SplitMix64 so that any
/// 64-bit seed (including 0) yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with mean mu and standard deviation sigma.
  double normal(double mu, double sigma);

  /// Fill out[0..n) with draws BIT-IDENTICAL to n sequential
  /// normal(mu, sigma) calls — same uniforms consumed in the same order,
  /// same Box–Muller cache handoff at both ends — but with the
  /// transcendental half of each pair (fm_log / fm_sincos2pi / sqrt)
  /// evaluated 4-wide, which the fm_math contract guarantees cannot change
  /// the bits. The batched physics kernels use this to amortize draw cost;
  /// the reference kernels keep calling normal() per cell, and the
  /// differential harness (ctest -L kernel) asserts the streams agree.
  void normal_fill(double mu, double sigma, double* out, std::size_t n);

  /// Log-normal: exp(N(mu, sigma)). mu/sigma are parameters of the
  /// underlying normal (i.e. of log X).
  double lognormal(double mu, double sigma);

  /// Gamma(shape k, scale theta) via Marsaglia–Tsang; handles k < 1 via the
  /// boosting trick. Both parameters must be > 0.
  double gamma(double shape, double scale);

  /// Poisson(lambda). Knuth's method for small lambda, normal approximation
  /// (rounded, clamped at 0) for lambda > 64 — plenty for our trap counts.
  std::uint64_t poisson(double lambda);

  /// Derive an independent child generator. Streams are decorrelated by
  /// hashing (parent-draw, tag) through SplitMix64. Used to give each die /
  /// segment / cell population its own stream so experiments compose without
  /// perturbing one another's sequences.
  Rng split(std::uint64_t tag);

  /// Complete serializable generator state: the xoshiro words plus the
  /// Box–Muller cache (the cached second variate is part of the stream —
  /// dropping it would shift every later normal() draw by one). The double
  /// travels as its IEEE-754 bit pattern so a save/load roundtrip through
  /// text is exact on every platform.
  struct State {
    std::array<std::uint64_t, 4> s{};
    std::uint64_t cached_normal_bits = 0;
    bool has_cached_normal = false;
  };

  State state() const;

  /// Rebuild a generator that continues the saved stream exactly.
  static Rng from_state(const State& st);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// SplitMix64 step — also exposed for seed-derivation utilities.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace flashmark
