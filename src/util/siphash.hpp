// SipHash-2-4 keyed hash.
//
// The paper (§V) notes that "in addition to watermarks we may imprint
// watermark signatures so that concurrent tampering by attackers cannot go
// undetected". We realize that extension with a 64-bit keyed MAC over the
// watermark payload: only the manufacturer holds the key, so a counterfeiter
// who stresses extra cells (the only physical modification available — the
// good→bad direction) cannot produce a payload+tag pair that verifies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace flashmark {

/// 128-bit key for SipHash.
struct SipHashKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
};

/// SipHash-2-4 of `len` bytes under `key` (reference algorithm by
/// Aumasson & Bernstein; test vectors from the reference implementation).
std::uint64_t siphash24(const SipHashKey& key, const std::uint8_t* data,
                        std::size_t len);

std::uint64_t siphash24(const SipHashKey& key,
                        const std::vector<std::uint8_t>& data);

}  // namespace flashmark
