// Crash-consistent file I/O primitives shared by die persistence and the
// session journal.
//
// The durability story of the whole crash-recovery layer rests on two POSIX
// idioms implemented here once:
//
//  * atomic replace — write a sibling temp file, fsync it, rename(2) over
//    the target, fsync the directory. A kill at any instant leaves either
//    the old file or the new file, never a torn mixture.
//  * synced append — append-only writes with explicit fsync points, so a
//    journal's on-disk prefix is always a valid record sequence up to the
//    last sync.
//
// Failures are reported as a status + cause instead of a bare bool: callers
// surface *why* a checkpoint could not be made durable (disk full,
// permission, missing directory), which matters operationally for runs that
// take hours. The machine-readable `IoCause` lets policy react to the cause:
// a full volume is not transient, so retrying the same write is doomed
// (DieStore's eviction path keys off kNoSpace for exactly this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

namespace flashmark {

/// Machine-readable failure class of a filesystem operation. Coarse on
/// purpose: callers only branch on "volume is full" (not transient — stop
/// retrying) vs "bytes went missing" (torn write: the atomic-replace path
/// guarantees the target was untouched) vs everything else.
enum class IoCause : std::uint8_t {
  kNone = 0,    ///< success
  kNoSpace,     ///< ENOSPC / EDQUOT: the volume (or quota) is full
  kShortWrite,  ///< fewer bytes written than requested, no errno to blame
  kOther,       ///< open / rename / fsync / read / ... failure
};

const char* to_string(IoCause c);

/// Outcome of a filesystem operation. Boolean-testable; `error` holds the
/// human-readable cause (including errno text) when the operation failed,
/// `cause` the machine-readable class.
struct IoStatus {
  bool ok = true;
  std::string error;
  IoCause cause = IoCause::kNone;

  explicit operator bool() const { return ok; }

  static IoStatus success() { return {}; }
  static IoStatus failure(std::string cause_text,
                          IoCause cause = IoCause::kOther) {
    return {false, std::move(cause_text), cause};
  }
};

/// Atomically replace `path` with `content`: write `path + ".tmp"`, flush
/// (+fsync when `durable`), rename over `path`, and fsync the parent
/// directory. The temp file is removed on any failure — `path` itself is
/// never left torn, whatever the returned cause says.
IoStatus atomic_write_file(const std::string& path, const std::string& content,
                           bool durable = true);

/// fsync an open stdio stream (flush C buffers, then fsync the fd).
IoStatus fsync_stream(std::FILE* f);

/// fsync the directory containing `path` so a rename/creation in it is
/// durable. A no-op (success) on platforms without directory fsync.
IoStatus fsync_parent_dir(const std::string& path);

/// Read a whole file into a string. Fails (with cause) if unreadable.
IoStatus read_file(const std::string& path, std::string* out);

/// Create a directory (and any missing parents). Success if it already
/// exists as a directory.
IoStatus make_dirs(const std::string& path);

/// The directory component of `path` ("." when there is none).
std::string parent_dir(const std::string& path);

// --- deterministic write-fault injection -----------------------------------

/// Configuration of the process-global fsio fault hook (the filesystem
/// sibling of fault::FaultConfig). All draws come from one seeded stream, so
/// a test's fault schedule is a pure function of (seed, sequence of writes).
struct FsioFaultConfig {
  std::uint64_t seed = 1;
  /// Per-write Bernoulli probability that the write fails.
  double write_fail_p = 0.0;
  /// Fraction of the requested bytes delivered before a failing write stops
  /// (uniformly scaled by a draw, so tears land at varying offsets).
  double short_write_fraction = 0.5;
  /// Injected failure class: true = kNoSpace (full volume, not transient),
  /// false = kShortWrite (torn write).
  bool no_space = true;
  /// Stop injecting after this many failures ("the disk recovers").
  std::uint32_t max_failures = 0xFFFF'FFFF;
  /// When non-empty, only writes whose path contains this substring are
  /// eligible (e.g. ".fm" to fault checkpoints but not the journal).
  std::string only_path_substring;
};

/// Seeded fault hook mirroring fault::FaultyHal, but for the fsio layer:
/// while installed, atomic_write_file and the session journal's append path
/// consult it before touching the disk and fail deterministically. Tests use
/// it to prove the WAL + checkpoint discipline recovers from torn tails and
/// ENOSPC without a corrupt resume. Install/uninstall are thread-safe;
/// production binaries never install it.
class FaultyFsio {
 public:
  static void install(const FsioFaultConfig& cfg);
  static void uninstall();
  static bool armed();
  /// Failures injected since install().
  static std::uint64_t failures();

  /// Decide the fate of an `n`-byte write to `path`: returns `n` when the
  /// write should proceed untouched, otherwise the number of bytes to
  /// deliver before failing, with *cause set to the injected class. Not
  /// called by users directly — write paths call it.
  static std::size_t filter_write(const std::string& path, std::size_t n,
                                  IoCause* cause);
};

}  // namespace flashmark
