// Crash-consistent file I/O primitives shared by die persistence and the
// session journal.
//
// The durability story of the whole crash-recovery layer rests on two POSIX
// idioms implemented here once:
//
//  * atomic replace — write a sibling temp file, fsync it, rename(2) over
//    the target, fsync the directory. A kill at any instant leaves either
//    the old file or the new file, never a torn mixture.
//  * synced append — append-only writes with explicit fsync points, so a
//    journal's on-disk prefix is always a valid record sequence up to the
//    last sync.
//
// Failures are reported as a status + cause string instead of a bare bool:
// callers surface *why* a checkpoint could not be made durable (disk full,
// permission, missing directory), which matters operationally for runs that
// take hours.
#pragma once

#include <cstdio>
#include <string>

namespace flashmark {

/// Outcome of a filesystem operation. Boolean-testable; `error` holds the
/// human-readable cause (including errno text) when the operation failed.
struct IoStatus {
  bool ok = true;
  std::string error;

  explicit operator bool() const { return ok; }

  static IoStatus success() { return {}; }
  static IoStatus failure(std::string cause) {
    return {false, std::move(cause)};
  }
};

/// Atomically replace `path` with `content`: write `path + ".tmp"`, flush
/// (+fsync when `durable`), rename over `path`, and fsync the parent
/// directory. The temp file is removed on any failure.
IoStatus atomic_write_file(const std::string& path, const std::string& content,
                           bool durable = true);

/// fsync an open stdio stream (flush C buffers, then fsync the fd).
IoStatus fsync_stream(std::FILE* f);

/// fsync the directory containing `path` so a rename/creation in it is
/// durable. A no-op (success) on platforms without directory fsync.
IoStatus fsync_parent_dir(const std::string& path);

/// Read a whole file into a string. Fails (with cause) if unreadable.
IoStatus read_file(const std::string& path, std::string* out);

/// Create a directory (and any missing parents). Success if it already
/// exists as a directory.
IoStatus make_dirs(const std::string& path);

/// The directory component of `path` ("." when there is none).
std::string parent_dir(const std::string& path);

}  // namespace flashmark
