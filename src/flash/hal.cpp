#include "flash/hal.hpp"

#include <vector>

namespace flashmark {

BitVec FlashHal::read_segment(Addr addr, int n_reads) {
  if (n_reads <= 0)
    throw std::invalid_argument("read_segment: n_reads must be > 0");
  const auto& g = geometry();
  const std::size_t seg = g.segment_index(addr);
  const Addr base = g.segment_base(seg);
  const std::size_t n_words = g.segment_bytes(seg) / g.word_bytes;
  const std::size_t bits_per_word = g.bits_per_word();
  BitVec out(n_words * bits_per_word);
  std::vector<int> ones(bits_per_word);
  for (std::size_t w = 0; w < n_words; ++w) {
    const Addr wa = base + static_cast<Addr>(w * g.word_bytes);
    ones.assign(bits_per_word, 0);
    for (int r = 0; r < n_reads; ++r) {
      const std::uint16_t v = read_word(wa);
      for (std::size_t b = 0; b < bits_per_word; ++b)
        ones[b] += static_cast<int>((v >> b) & 1u);
    }
    for (std::size_t b = 0; b < bits_per_word; ++b)
      out.set(w * bits_per_word + b, ones[b] * 2 > n_reads);
  }
  return out;
}

FlashHalError::FlashHalError(const std::string& op, FlashStatus status)
    : std::runtime_error("flash HAL: " + op + " failed: " + to_string(status)),
      status_(status) {}

namespace {
void check(FlashStatus st, const char* op) {
  if (st != FlashStatus::kOk) throw FlashHalError(op, st);
}

/// Unlocks the controller for one command and restores the lock after —
/// the host-driver discipline around every mutating flash command.
class ScopedUnlock {
 public:
  explicit ScopedUnlock(FlashController& ctrl)
      : ctrl_(ctrl), was_locked_(ctrl.locked()) {
    ctrl_.set_lock(false);
  }
  ~ScopedUnlock() { ctrl_.set_lock(was_locked_); }

 private:
  FlashController& ctrl_;
  bool was_locked_;
};
}  // namespace

void ControllerHal::erase_segment(Addr addr) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.segment_erase(addr), "erase_segment");
}

SimTime ControllerHal::erase_segment_auto(Addr addr) {
  ScopedUnlock unlock(ctrl_);
  SimTime pulse;
  check(ctrl_.segment_erase_auto(addr, &pulse), "erase_segment_auto");
  return pulse;
}

void ControllerHal::partial_erase_segment(Addr addr, SimTime t_pe) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.partial_segment_erase(addr, t_pe), "partial_erase_segment");
}

void ControllerHal::program_word(Addr addr, std::uint16_t value) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.program_word(addr, value), "program_word");
}

void ControllerHal::partial_program_word(Addr addr, std::uint16_t value,
                                         SimTime t_prog) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.partial_program_word(addr, value, t_prog),
        "partial_program_word");
}

void ControllerHal::program_block(Addr addr,
                                  const std::vector<std::uint16_t>& words) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.program_block(addr, words), "program_block");
}

std::uint16_t ControllerHal::read_word(Addr addr) {
  const std::uint16_t v = ctrl_.read_word(addr);
  if (ctrl_.access_violation()) {
    ctrl_.clear_access_violation();
    throw FlashHalError("read_word", FlashStatus::kInvalidAddress);
  }
  return v;
}

BitVec ControllerHal::read_segment(Addr addr, int n_reads) {
  BitVec v = ctrl_.read_segment(addr, n_reads);
  if (ctrl_.access_violation()) {
    ctrl_.clear_access_violation();
    throw FlashHalError("read_segment", FlashStatus::kInvalidAddress);
  }
  return v;
}

void ControllerHal::wear_segment(Addr addr, double cycles,
                                 const BitVec* pattern) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.wear_segment(addr, cycles, pattern), "wear_segment");
}

}  // namespace flashmark
