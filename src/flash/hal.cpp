#include "flash/hal.hpp"

namespace flashmark {

FlashHalError::FlashHalError(const std::string& op, FlashStatus status)
    : std::runtime_error("flash HAL: " + op + " failed: " + to_string(status)),
      status_(status) {}

namespace {
void check(FlashStatus st, const char* op) {
  if (st != FlashStatus::kOk) throw FlashHalError(op, st);
}

/// Unlocks the controller for one command and restores the lock after —
/// the host-driver discipline around every mutating flash command.
class ScopedUnlock {
 public:
  explicit ScopedUnlock(FlashController& ctrl)
      : ctrl_(ctrl), was_locked_(ctrl.locked()) {
    ctrl_.set_lock(false);
  }
  ~ScopedUnlock() { ctrl_.set_lock(was_locked_); }

 private:
  FlashController& ctrl_;
  bool was_locked_;
};
}  // namespace

void ControllerHal::erase_segment(Addr addr) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.segment_erase(addr), "erase_segment");
}

SimTime ControllerHal::erase_segment_auto(Addr addr) {
  ScopedUnlock unlock(ctrl_);
  SimTime pulse;
  check(ctrl_.segment_erase_auto(addr, &pulse), "erase_segment_auto");
  return pulse;
}

void ControllerHal::partial_erase_segment(Addr addr, SimTime t_pe) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.partial_segment_erase(addr, t_pe), "partial_erase_segment");
}

void ControllerHal::program_word(Addr addr, std::uint16_t value) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.program_word(addr, value), "program_word");
}

void ControllerHal::partial_program_word(Addr addr, std::uint16_t value,
                                         SimTime t_prog) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.partial_program_word(addr, value, t_prog),
        "partial_program_word");
}

void ControllerHal::program_block(Addr addr,
                                  const std::vector<std::uint16_t>& words) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.program_block(addr, words), "program_block");
}

std::uint16_t ControllerHal::read_word(Addr addr) {
  const std::uint16_t v = ctrl_.read_word(addr);
  if (ctrl_.access_violation()) {
    ctrl_.clear_access_violation();
    throw FlashHalError("read_word", FlashStatus::kInvalidAddress);
  }
  return v;
}

void ControllerHal::wear_segment(Addr addr, double cycles,
                                 const BitVec* pattern) {
  ScopedUnlock unlock(ctrl_);
  check(ctrl_.wear_segment(addr, cycles, pattern), "wear_segment");
}

}  // namespace flashmark
