// The flash cell matrix of one die.
//
// Owns every cell, maps word addresses onto cells, and implements the
// physical side of each controller command. Per-cell state lives in
// structure-of-arrays form (phys/kernels.hpp) and every operation runs as a
// segment-granularity kernel; `set_kernel_mode` switches between the batched
// fast path (default) and the scalar Cell reference path — both byte
// identical by contract (tests/kernel_diff_test.cpp). Segments are
// manufactured lazily, each from its own RNG stream derived from (die seed,
// segment index), so a given die always grows the same cells no matter which
// experiment touches which segment first.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "flash/geometry.hpp"
#include "phys/cell.hpp"
#include "phys/kernels.hpp"
#include "phys/params.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace flashmark {

class DieFileMap;

/// Wear summary of a segment, used by the recycled-flash detector baseline
/// and by white-box tests.
struct SegmentWearStats {
  double eff_cycles_min = 0.0;
  double eff_cycles_mean = 0.0;
  double eff_cycles_max = 0.0;
  double tte_min_us = 0.0;
  double tte_mean_us = 0.0;
  double tte_max_us = 0.0;
};

class FlashArray {
 public:
  FlashArray(FlashGeometry geometry, PhysParams phys, std::uint64_t die_seed);

  const FlashGeometry& geometry() const { return geom_; }
  const PhysParams& phys() const { return phys_; }
  std::uint64_t die_seed() const { return die_seed_; }

  /// Kernel implementation selector. Not part of the die's identity: any
  /// mode produces byte-identical state/outputs for the same seed and
  /// operation sequence, so the mode is excluded from persistence and from
  /// the determinism seed (docs/REPRODUCIBILITY.md §7).
  void set_kernel_mode(KernelMode m) { mode_ = m; }
  KernelMode kernel_mode() const { return mode_; }

  /// Junction temperature in Celsius (default 25). Erase physics speeds up
  /// when hot: a partial-erase pulse of t delivers an effective exposure of
  /// t * (1 + temp_erase_accel_per_K * (T - 25)). Models verifying on a
  /// hot/cold production line with a 25 C-published window.
  void set_temperature_c(double t);
  double temperature_c() const { return temperature_c_; }

  // --- physical operations (called by the controller) -------------------
  /// Full erase pulse over one segment.
  void erase_segment(std::size_t seg);
  /// Erase pulse over one segment aborted after t_pe_us microseconds.
  void partial_erase_segment(std::size_t seg, double t_pe_us);
  /// Interleaved partial-erase pulse over segment `seg` of `n` independent
  /// arrays (different dies): byte-identical to calling
  /// arrays[k]->partial_erase_segment(seg, t_pe_us) for k = 0..n-1 in order
  /// — per-array temperature scaling, noise-RNG streams and dirty marks
  /// included — but the underlying kernels fill vector lanes across all
  /// arrays (kernels::erase_pulse_segments). Arrays must be distinct. Mixed
  /// kernel modes fall back to the sequential per-array path.
  static void partial_erase_many(FlashArray* const* arrays, std::size_t n,
                                 std::size_t seg, double t_pe_us);
  /// Program `value` into the word at `addr`: bits that are 0 receive a
  /// program pulse; bits that are 1 leave their cells untouched (NOR flash
  /// can only clear bits).
  void program_word(Addr addr, std::uint16_t value);
  /// Program `n_words` consecutive words starting at `addr` (block-write
  /// granularity; the whole span must lie within one segment). Equivalent
  /// to n_words program_word calls, executed as one kernel sweep.
  void program_words(Addr addr, const std::uint16_t* words,
                     std::size_t n_words);
  /// Program pulse aborted at `fraction` (0..1] of the nominal word time.
  void partial_program_word(Addr addr, std::uint16_t value, double fraction);
  /// One (noisy) read of the word at `addr`.
  std::uint16_t read_word(Addr addr);
  /// `n_reads` noisy reads of every word of segment `seg`, majority-voted
  /// per bit. Bit i of the result is cell i's voted value. The read/draw
  /// order is word-major then read then bit — exactly a read_word loop —
  /// so the noise stream matches the scalar path draw-for-draw.
  BitVec read_segment_majority(std::size_t seg, int n_reads);

  // --- introspection ------------------------------------------------------
  /// Noise-free count of erased cells in a segment.
  std::size_t count_erased(std::size_t seg);
  /// Noise-free snapshot of a segment: bit i == 1 iff cell i is erased.
  BitVec snapshot(std::size_t seg);
  /// Time (us) an erase pulse must run before every currently-programmed
  /// cell of the segment has transitioned (max nominal tte). Models the
  /// controller-side erase-verify used by the accelerated imprint. Returns 0
  /// for a fully-erased segment.
  double time_to_full_erase_us(std::size_t seg);
  SegmentWearStats wear_stats(std::size_t seg);
  /// Value snapshot of one cell for white-box tests and physics dumps.
  /// (Cells are stored SoA; the returned Cell is materialized on demand.)
  Cell cell(std::size_t seg, std::size_t idx);

  // --- persistence ---------------------------------------------------------
  /// True if the segment's cells have been manufactured (touched) already.
  bool segment_materialized(std::size_t seg) const;

  // --- columnar backing (die-format v3) ------------------------------------
  /// Attach a validated v3 die map as the source of persisted cell state.
  /// Segments present in the map hydrate from it on first touch — one
  /// memcpy per column instead of per-cell manufacture — so loading a die is
  /// map-and-go: no cell data moves until a segment is used. Segments absent
  /// from the map stay lazily seed-manufactured as always. Throws
  /// std::runtime_error if the map's shape does not match this geometry.
  void set_backing(std::shared_ptr<const DieFileMap> map);
  const std::shared_ptr<const DieFileMap>& backing() const { return backing_; }

  /// True when the segment carries state beyond fresh manufacture — hydrated
  /// in memory or present in the backing map. Exactly the set of segments a
  /// save must persist.
  bool segment_present(std::size_t seg) const;
  /// The segment's in-memory SoA if hydrated, nullptr if lazy or still
  /// resting in the backing map.
  const SegmentSoA* materialized_segment(std::size_t seg) const;

  // --- dirty tracking ------------------------------------------------------
  /// True when array state has diverged since the last mark_clean(): any
  /// segment mutated, the shared noise RNG consumed (reads dirty the die —
  /// the draw position is persisted state), or the temperature changed.
  bool dirty() const;
  /// Declare the current state persisted (or equal to the fresh-manufacture
  /// state, for a new die). Checkpoint paths call this after a save so clean
  /// dies can be evicted without rewriting their files.
  void mark_clean();
  /// Write all materialized segments as a versioned text block ("FMSEGS").
  void save_segments(std::ostream& os) const;
  /// Restore segments from a save_segments block. Untouched segments stay
  /// lazy (they re-manufacture identically from the die seed). Throws
  /// std::runtime_error on format errors.
  void load_segments(std::istream& is);

  /// Serializable state of the shared read-noise stream (die-format v2).
  /// Persisting it makes a reloaded die continue the *exact* noise draw
  /// sequence of the saved one — the property resumable imprint sessions
  /// need for byte-identical crash recovery.
  Rng::State noise_rng_state() const { return noise_rng_.state(); }
  void restore_noise_rng(const Rng::State& st) { noise_rng_ = Rng::from_state(st); }

  /// High-temperature bake of the whole die for `hours` (thermal, not a
  /// digital command — the counterfeiter's refurbishing oven). Applies the
  /// bake kernel to every manufactured cell; untouched segments are fresh
  /// and unaffected by definition.
  void bake(double hours);

  /// Shelf aging of the whole die by `years`: programmed cells may leak
  /// below the sense level (age kernel); wear is untouched. Stored data
  /// decays; the watermark contrast survives.
  void age(double years);

  // --- simulation-only accelerator ---------------------------------------
  /// Apply the stress of `cycles` imprint P/E cycles in O(cells): cells
  /// whose `pattern` bit is 0 are treated as programmed every cycle, bit 1
  /// as kept erased. With a pattern the segment finishes holding the
  /// pattern (the Fig. 7 imprint loop ends on a program); a null pattern
  /// stresses every cell and finishes erased (the §III pre-conditioning
  /// loop ends on an erase). Verified against the real loop by tests.
  void wear_segment(std::size_t seg, double cycles,
                    const BitVec* pattern = nullptr);

 private:
  SegmentSoA& ensure_segment(std::size_t seg);
  /// Gather one cell's snapshot out of the backing map (text-format saves of
  /// a still-backed segment).
  Cell::Snapshot backing_snapshot(std::size_t seg, std::size_t i) const;
  /// Maps a word address to (segment, first cell index); validates
  /// alignment and range.
  std::pair<std::size_t, std::size_t> locate_word(Addr addr) const;

  FlashGeometry geom_;
  PhysParams phys_;
  std::uint64_t die_seed_;
  KernelMode mode_ = KernelMode::kBatched;
  double temperature_c_ = 25.0;
  Rng noise_rng_;
  std::vector<std::unique_ptr<SegmentSoA>> segments_;
  std::shared_ptr<const DieFileMap> backing_;
  std::vector<std::uint8_t> seg_dirty_;
  bool meta_dirty_ = false;
};

}  // namespace flashmark
