// Flash memory controller (paper §II.B, Fig. 2(b)).
//
// Models the command side of an embedded NOR flash module: program/erase
// commands that take wall-clock time, a BUSY state, a LOCK bit, sticky
// access-violation flagging, and the emergency-exit command that aborts an
// in-flight operation — the primitive both the characterization procedure
// (Fig. 3) and watermark extraction (Fig. 8) are built on.
//
// The asynchronous protocol (begin_* / advance / emergency_exit /
// wait_complete) is what the register-level MCU front end drives; the
// synchronous helpers below it are conveniences for host-style code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flash/array.hpp"
#include "flash/geometry.hpp"
#include "flash/timing.hpp"

namespace flashmark::obs {
class MetricsRegistry;
}  // namespace flashmark::obs

namespace flashmark {

enum class FlashStatus : std::uint8_t {
  kOk = 0,
  kBusy,             ///< another operation is in flight
  kNotBusy,          ///< abort/wait issued with nothing in flight
  kLocked,           ///< LOCK bit set; program/erase refused
  kInvalidAddress,   ///< outside flash or misaligned
  kInvalidArgument,  ///< bad span/length/time
};

const char* to_string(FlashStatus s);

/// Cumulative operation counters for one controller (== one die).
///
/// Pure observability: the simulation never reads these back, so they cannot
/// perturb results (docs/REPRODUCIBILITY.md). The fleet layer aggregates them
/// across a batch of dies.
struct FlashOpCounters {
  std::uint64_t erase_ops = 0;    ///< erase pulses issued (full or partial)
  std::uint64_t program_ops = 0;  ///< program-word pulses (block words count)
  std::uint64_t read_ops = 0;     ///< word reads served
  double wear_pe_cycles = 0.0;    ///< batch-wear P/E cycles applied

  /// Fold this row into `reg` under `<prefix>.erase_ops` etc. Counter
  /// deltas are integers and gauges carry deterministic values, so folded
  /// registries keep the byte-identical-export contract
  /// (docs/REPRODUCIBILITY.md §6). Call sites gate on
  /// obs::metrics_enabled() themselves when folding per-operation-free
  /// paths; the fold itself is always safe.
  void fold_into(obs::MetricsRegistry& reg, const std::string& prefix) const;
};

class FlashController {
 public:
  /// The controller borrows the array and the clock; both must outlive it.
  FlashController(FlashArray& array, FlashTiming timing, SimClock& clock);

  const FlashGeometry& geometry() const { return array_.geometry(); }
  const FlashTiming& timing() const { return timing_; }
  SimTime now() const { return clock_.now(); }
  FlashArray& array() { return array_; }

  // --- lock / flags -------------------------------------------------------
  void set_lock(bool locked) { locked_ = locked; }
  bool locked() const { return locked_; }
  bool busy() const { return op_.has_value(); }
  /// Sticky flag, set when a read or command violates the busy protocol
  /// (analogous to MSP430 ACCVIFG).
  bool access_violation() const { return accv_; }
  void clear_access_violation() { accv_ = false; }
  /// Raised by bus front ends on protocol violations (e.g. a plain store to
  /// flash with no program/erase mode armed).
  void raise_access_violation() { accv_ = true; }

  // --- asynchronous command protocol --------------------------------------
  FlashStatus begin_segment_erase(Addr addr);
  /// Bank (mass) erase of the bank containing `addr`; info region counts as
  /// its own bank.
  FlashStatus begin_mass_erase(Addr addr);
  FlashStatus begin_program_word(Addr addr, std::uint16_t value);

  /// Advance simulated time by dt; completes the in-flight operation when
  /// its deadline passes.
  void advance(SimTime dt);

  /// Abort the in-flight operation at the current instant (EMEX). The
  /// affected cells are left in the partially erased/programmed state the
  /// elapsed pulse time implies.
  FlashStatus emergency_exit();

  /// Advance the clock to the in-flight operation's deadline and complete it.
  FlashStatus wait_complete();

  // --- synchronous conveniences -------------------------------------------
  /// Full nominal segment erase.
  FlashStatus segment_erase(Addr addr);
  /// Erase-with-verify: run the pulse only until every cell of the segment
  /// has transitioned (plus a guard band), then exit. Returns the pulse time
  /// actually used via `pulse_out` (optional). This is the enabler of the
  /// paper's accelerated imprint (§V: ~3.5x faster, wear-neutral).
  FlashStatus segment_erase_auto(Addr addr, SimTime* pulse_out = nullptr);
  /// Erase pulse of exactly `t_pe`, then emergency exit (partial erase).
  FlashStatus partial_segment_erase(Addr addr, SimTime t_pe);
  FlashStatus mass_erase(Addr addr);
  FlashStatus program_word(Addr addr, std::uint16_t value);
  /// Block-write mode: consecutive words at the amortized per-word time.
  /// The whole block must lie within one segment.
  FlashStatus program_block(Addr addr, const std::vector<std::uint16_t>& words);
  /// Program pulse of exactly `t_prog` (< nominal), then emergency exit.
  FlashStatus partial_program_word(Addr addr, std::uint16_t value,
                                   SimTime t_prog);

  /// Word read. Reading the bank an in-flight operation is mutating raises
  /// the access violation and returns 0xFFFF; other banks read normally
  /// (code executing from RAM, paper §II.B).
  std::uint16_t read_word(Addr addr);

  /// Segment-granularity read: `n_reads` noisy reads of every word of the
  /// segment containing `addr`, majority-voted per bit (bit i of the result
  /// is cell i's voted value). Observably identical to the equivalent
  /// read_word loop — same noise draws, same total clock advance, read_ops
  /// incremented by n_words * n_reads — but executed as one array kernel.
  /// Reading the bank an in-flight operation is mutating raises the access
  /// violation and returns an all-ones vector (every word read would have
  /// returned 0xFFFF), with no clock advance or counter update.
  BitVec read_segment(Addr addr, int n_reads);

  // --- simulation-only -----------------------------------------------------
  /// Batch-apply `cycles` imprint P/E cycles to the segment at `addr` (see
  /// FlashArray::wear_segment) and advance the clock by the time the real
  /// loop would have taken with block writes. Refused while busy/locked.
  FlashStatus wear_segment(Addr addr, double cycles,
                           const BitVec* pattern = nullptr);

  /// Simulated duration of one baseline imprint cycle (full erase + block
  /// program of the whole segment) — used by wear_segment's accounting.
  SimTime imprint_cycle_time(std::size_t seg) const;

  /// Operation counters accumulated since construction (or the last
  /// reset_op_counters). Observability only — see FlashOpCounters.
  const FlashOpCounters& op_counters() const { return counters_; }
  void reset_op_counters() { counters_ = {}; }

 private:
  enum class OpKind { kSegmentErase, kMassErase, kProgramWord };
  struct Op {
    OpKind kind;
    Addr addr;
    std::uint16_t value;
    SimTime start;
    SimTime deadline;
  };

  /// Bank id affected by an address (info region gets a pseudo-bank).
  std::size_t bank_of(Addr addr) const;
  FlashStatus check_command(Addr addr);
  void complete_op();
  void abort_op();

  FlashArray& array_;
  FlashTiming timing_;
  SimClock& clock_;
  bool locked_ = true;  // like hardware: locked out of reset
  bool accv_ = false;
  std::optional<Op> op_;
  FlashOpCounters counters_;
};

}  // namespace flashmark
