// Datasheet-style timing constants for the simulated flash controller.
//
// Values track the MSP430F543x datasheet ranges quoted in the paper
// (TERASE ~ 23-35 ms, TPROG ~ 64-85 us) plus the paper's block-write
// observation (~10 ms to program a 512-byte segment, i.e. ~40 us/word).
#pragma once

#include "util/sim_time.hpp"

namespace flashmark {

struct FlashTiming {
  /// Nominal full segment-erase time (voltage ramp + pulse + ramp-down).
  SimTime t_erase_segment = SimTime::us(24'000);
  /// Mass (bank) erase.
  SimTime t_mass_erase = SimTime::us(24'000);
  /// Single word program, byte/word write mode.
  SimTime t_prog_word = SimTime::us(75);
  /// Per-word program time in block-write mode (amortized setup).
  SimTime t_prog_word_block = SimTime::us(40);
  /// Random word read through the controller.
  SimTime t_read_word = SimTime::ns(200);
  /// Bring-up / removal of the programming voltage generators around every
  /// program or erase command (paper §II.B).
  SimTime t_vpp_setup = SimTime::us(5);

  static FlashTiming msp430f5438() { return FlashTiming{}; }
  static FlashTiming msp430f5529() { return FlashTiming{}; }
};

/// Monotone simulated clock shared by a device's flash subsystem.
class SimClock {
 public:
  SimTime now() const { return now_; }
  void advance(SimTime dt) { now_ += dt; }

 private:
  SimTime now_;
};

}  // namespace flashmark
