#include "flash/array.hpp"

#include <cstring>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "flash/die_format.hpp"

namespace flashmark {

FlashArray::FlashArray(FlashGeometry geometry, PhysParams phys,
                       std::uint64_t die_seed)
    : geom_(geometry),
      phys_(phys),
      die_seed_(die_seed),
      noise_rng_(die_seed ^ 0xC0FFEE5EED5A11ADull),
      segments_(geometry.n_segments()),
      seg_dirty_(geometry.n_segments(), 0) {
  geom_.validate();
  phys_.validate();
}

SegmentSoA& FlashArray::ensure_segment(std::size_t seg) {
  if (seg >= segments_.size())
    throw std::out_of_range("FlashArray: segment index out of range");
  auto& slot = segments_[seg];
  if (!slot) {
    const std::size_t n = geom_.segment_cells(seg);
    slot = std::make_unique<SegmentSoA>(n);
    if (backing_ && backing_->has_segment(seg)) {
      // Hydrate from the columnar map: one memcpy per column. The map was
      // fully validated at open, so no per-cell checks here.
      const auto col = [&](v3::ColumnId c) {
        return backing_->column_data(seg, c);
      };
      std::memcpy(slot->tte_fresh_us.data(), col(v3::ColumnId::kTteFreshUs),
                  n * sizeof(float));
      std::memcpy(slot->susceptibility.data(),
                  col(v3::ColumnId::kSusceptibility), n * sizeof(float));
      std::memcpy(slot->eff_cycles.data(), col(v3::ColumnId::kEffCycles),
                  n * sizeof(double));
      std::memcpy(slot->annealed.data(), col(v3::ColumnId::kAnnealed),
                  n * sizeof(double));
      std::memcpy(slot->level.data(), col(v3::ColumnId::kLevel), n);
      std::memcpy(slot->defect.data(), col(v3::ColumnId::kDefect), n);
      std::memcpy(slot->metastable.data(), col(v3::ColumnId::kMetastable), n);
      std::memcpy(slot->margin_us.data(), col(v3::ColumnId::kMarginUs),
                  n * sizeof(float));
      for (std::size_t i = 0; i < n; ++i) slot->invalidate_tte(i);
    } else {
      // Per-segment manufacturing stream: independent of touch order.
      std::uint64_t sm = die_seed_ ^ (0x9E3779B97F4A7C15ull * (seg + 1));
      Rng seg_rng(splitmix64(sm));
      for (std::size_t i = 0; i < n; ++i)
        slot->assign(i, Cell::manufacture(phys_, seg_rng).snapshot_state());
    }
  }
  return *slot;
}

void FlashArray::set_backing(std::shared_ptr<const DieFileMap> map) {
  if (map) {
    if (map->n_segments() != geom_.n_segments())
      throw std::runtime_error("set_backing: segment count mismatch");
    for (std::size_t seg = 0; seg < geom_.n_segments(); ++seg)
      if (map->has_segment(seg) &&
          map->segment_cells(seg) != geom_.segment_cells(seg))
        throw std::runtime_error("set_backing: segment cell-count mismatch");
  }
  backing_ = std::move(map);
}

bool FlashArray::segment_present(std::size_t seg) const {
  if (seg >= segments_.size())
    throw std::out_of_range("segment_present: segment out of range");
  return segments_[seg] != nullptr || (backing_ && backing_->has_segment(seg));
}

const SegmentSoA* FlashArray::materialized_segment(std::size_t seg) const {
  if (seg >= segments_.size())
    throw std::out_of_range("materialized_segment: segment out of range");
  return segments_[seg].get();
}

bool FlashArray::dirty() const {
  if (meta_dirty_) return true;
  for (const std::uint8_t d : seg_dirty_)
    if (d) return true;
  return false;
}

void FlashArray::mark_clean() {
  meta_dirty_ = false;
  std::fill(seg_dirty_.begin(), seg_dirty_.end(), 0);
}

std::pair<std::size_t, std::size_t> FlashArray::locate_word(Addr addr) const {
  if (!geom_.valid(addr))
    throw std::out_of_range("FlashArray: address outside flash");
  if (!geom_.word_aligned(addr))
    throw std::invalid_argument("FlashArray: unaligned word address");
  const std::size_t seg = geom_.segment_index(addr);
  const Addr base = geom_.segment_base(seg);
  const std::size_t cell0 = static_cast<std::size_t>(addr - base) * 8;
  return {seg, cell0};
}

void FlashArray::erase_segment(std::size_t seg) {
  kernels::erase_full_segment(mode_, ensure_segment(seg), phys_);
  seg_dirty_[seg] = 1;
}

void FlashArray::set_temperature_c(double t) {
  const double factor = 1.0 + phys_.temp_erase_accel_per_K * (t - 25.0);
  if (factor <= 0.05)
    throw std::invalid_argument("set_temperature_c: temperature out of model range");
  if (t != temperature_c_) meta_dirty_ = true;
  temperature_c_ = t;
}

void FlashArray::partial_erase_segment(std::size_t seg, double t_pe_us) {
  if (t_pe_us < 0.0)
    throw std::invalid_argument("partial_erase_segment: negative time");
  // Hot silicon erases faster: the same wall-clock pulse delivers more
  // effective exposure.
  const double effective =
      t_pe_us *
      (1.0 + phys_.temp_erase_accel_per_K * (temperature_c_ - 25.0));
  kernels::erase_pulse_segment(mode_, ensure_segment(seg), phys_, effective,
                               noise_rng_);
  seg_dirty_[seg] = 1;
  meta_dirty_ = true;  // noise RNG advanced
}

void FlashArray::partial_erase_many(FlashArray* const* arrays, std::size_t n,
                                    std::size_t seg, double t_pe_us) {
  if (t_pe_us < 0.0)
    throw std::invalid_argument("partial_erase_many: negative time");
  if (n == 0) return;
  bool uniform_mode = true;
  for (std::size_t k = 1; k < n; ++k)
    if (arrays[k]->mode_ != arrays[0]->mode_) uniform_mode = false;
  if (!uniform_mode) {
    for (std::size_t k = 0; k < n; ++k)
      arrays[k]->partial_erase_segment(seg, t_pe_us);
    return;
  }
  // One job per array; ensure_segment may hydrate/manufacture, exactly as
  // the per-array entry point would. The job table is thread-local scratch
  // so a steady-state pulse loop never touches the heap (the perf_micro
  // allocation guard holds the whole pulse path to that).
  static thread_local std::vector<kernels::ErasePulseJob> jobs;
  jobs.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    FlashArray& a = *arrays[k];
    const double effective =
        t_pe_us *
        (1.0 + a.phys_.temp_erase_accel_per_K * (a.temperature_c_ - 25.0));
    jobs[k] = kernels::ErasePulseJob{&a.ensure_segment(seg), &a.phys_,
                                     effective, &a.noise_rng_};
  }
  kernels::erase_pulse_segments(arrays[0]->mode_, jobs.data(), n);
  for (std::size_t k = 0; k < n; ++k) {
    arrays[k]->seg_dirty_[seg] = 1;
    arrays[k]->meta_dirty_ = true;  // noise RNG advanced
  }
}

void FlashArray::program_word(Addr addr, std::uint16_t value) {
  const auto [seg, cell0] = locate_word(addr);
  kernels::program_words(mode_, ensure_segment(seg), phys_, cell0, &value, 1,
                         geom_.bits_per_word());
  seg_dirty_[seg] = 1;
}

void FlashArray::program_words(Addr addr, const std::uint16_t* words,
                               std::size_t n_words) {
  if (n_words == 0) return;
  const auto [seg, cell0] = locate_word(addr);
  SegmentSoA& s = ensure_segment(seg);
  if (cell0 + n_words * geom_.bits_per_word() > s.size())
    throw std::out_of_range("program_words: span crosses segment end");
  kernels::program_words(mode_, s, phys_, cell0, words, n_words,
                         geom_.bits_per_word());
  seg_dirty_[seg] = 1;
}

void FlashArray::partial_program_word(Addr addr, std::uint16_t value,
                                      double fraction) {
  if (fraction <= 0.0)
    throw std::invalid_argument("partial_program_word: fraction must be > 0");
  const auto [seg, cell0] = locate_word(addr);
  kernels::partial_program_word(mode_, ensure_segment(seg), phys_, cell0,
                                value, geom_.bits_per_word(), fraction,
                                noise_rng_);
  seg_dirty_[seg] = 1;
  meta_dirty_ = true;  // noise RNG advanced
}

std::uint16_t FlashArray::read_word(Addr addr) {
  const auto [seg, cell0] = locate_word(addr);
  meta_dirty_ = true;  // a read consumes noise draws: the stream position
                       // is persisted state (resume continuity)
  return kernels::read_word(mode_, ensure_segment(seg), phys_, cell0,
                            geom_.bits_per_word(), noise_rng_);
}

BitVec FlashArray::read_segment_majority(std::size_t seg, int n_reads) {
  if (n_reads <= 0)
    throw std::invalid_argument("read_segment_majority: n_reads must be > 0");
  SegmentSoA& s = ensure_segment(seg);
  BitVec out(s.size());
  meta_dirty_ = true;  // noise RNG advances
  kernels::read_segment_majority(mode_, s, phys_, geom_.bits_per_word(),
                                 n_reads, noise_rng_, out);
  return out;
}

std::size_t FlashArray::count_erased(std::size_t seg) {
  const SegmentSoA& s = ensure_segment(seg);
  std::size_t n = 0;
  for (std::size_t i = 0; i < s.size(); ++i)
    if (s.level[i] == static_cast<std::uint8_t>(CellLevel::kErased)) ++n;
  return n;
}

BitVec FlashArray::snapshot(std::size_t seg) {
  const SegmentSoA& s = ensure_segment(seg);
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    v.set(i, s.level[i] == static_cast<std::uint8_t>(CellLevel::kErased));
  return v;
}

double FlashArray::time_to_full_erase_us(std::size_t seg) {
  return kernels::time_to_full_erase_us(mode_, ensure_segment(seg), phys_);
}

SegmentWearStats FlashArray::wear_stats(std::size_t seg) {
  const SegmentSoA& cells = ensure_segment(seg);
  SegmentWearStats s;
  bool first = true;
  double sum_cycles = 0.0;
  double sum_tte = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double n = cells.eff_cycles[i];
    const double tte = cells.nominal_tte_us(i, phys_);
    if (first) {
      s.eff_cycles_min = s.eff_cycles_max = n;
      s.tte_min_us = s.tte_max_us = tte;
      first = false;
    } else {
      s.eff_cycles_min = std::min(s.eff_cycles_min, n);
      s.eff_cycles_max = std::max(s.eff_cycles_max, n);
      s.tte_min_us = std::min(s.tte_min_us, tte);
      s.tte_max_us = std::max(s.tte_max_us, tte);
    }
    sum_cycles += n;
    sum_tte += tte;
  }
  if (cells.size() > 0) {
    s.eff_cycles_mean = sum_cycles / static_cast<double>(cells.size());
    s.tte_mean_us = sum_tte / static_cast<double>(cells.size());
  }
  return s;
}

Cell FlashArray::cell(std::size_t seg, std::size_t idx) {
  const SegmentSoA& cells = ensure_segment(seg);
  if (idx >= cells.size())
    throw std::out_of_range("FlashArray::cell: cell index out of range");
  return Cell::restore(cells.snapshot(idx));
}

bool FlashArray::segment_materialized(std::size_t seg) const {
  if (seg >= segments_.size())
    throw std::out_of_range("segment_materialized: segment out of range");
  return segments_[seg] != nullptr;
}

Cell::Snapshot FlashArray::backing_snapshot(std::size_t seg,
                                            std::size_t i) const {
  // Gather one cell from the validated columnar map (little-endian host —
  // a DieFileMap never validates on a big-endian one).
  const auto col = [&](v3::ColumnId c) { return backing_->column_data(seg, c); };
  Cell::Snapshot s{};
  std::memcpy(&s.tte_fresh_us, col(v3::ColumnId::kTteFreshUs) + 4 * i, 4);
  std::memcpy(&s.susceptibility, col(v3::ColumnId::kSusceptibility) + 4 * i, 4);
  std::memcpy(&s.eff_cycles, col(v3::ColumnId::kEffCycles) + 8 * i, 8);
  std::memcpy(&s.annealed, col(v3::ColumnId::kAnnealed) + 8 * i, 8);
  s.level = col(v3::ColumnId::kLevel)[i];
  s.defect = col(v3::ColumnId::kDefect)[i];
  s.metastable = col(v3::ColumnId::kMetastable)[i];
  std::memcpy(&s.margin_us, col(v3::ColumnId::kMarginUs) + 4 * i, 4);
  return s;
}

void FlashArray::save_segments(std::ostream& os) const {
  std::size_t n = 0;
  for (std::size_t seg = 0; seg < segments_.size(); ++seg)
    if (segment_present(seg)) ++n;
  os << "FMSEGS 1\n" << n << "\n";
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t seg = 0; seg < segments_.size(); ++seg) {
    if (!segment_present(seg)) continue;
    const SegmentSoA* cells = segments_[seg].get();
    const std::size_t ncells = geom_.segment_cells(seg);
    os << "SEG " << seg << " " << ncells << "\n";
    for (std::size_t i = 0; i < ncells; ++i) {
      const Cell::Snapshot s =
          cells ? cells->snapshot(i) : backing_snapshot(seg, i);
      os << s.tte_fresh_us << ' ' << s.susceptibility << ' ' << s.eff_cycles
         << ' ' << s.annealed << ' ' << static_cast<int>(s.level) << ' '
         << static_cast<int>(s.defect) << ' ' << static_cast<int>(s.metastable)
         << ' ' << s.margin_us << "\n";
    }
  }
  os << "END\n";
}

void FlashArray::load_segments(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "FMSEGS" || version != 1)
    throw std::runtime_error("load_segments: bad header");
  std::size_t n = 0;
  if (!(is >> n)) throw std::runtime_error("load_segments: bad segment count");
  for (std::size_t i = 0; i < n; ++i) {
    std::string tag;
    std::size_t seg = 0, ncells = 0;
    if (!(is >> tag >> seg >> ncells) || tag != "SEG")
      throw std::runtime_error("load_segments: bad segment header");
    if (seg >= segments_.size() || ncells != geom_.segment_cells(seg))
      throw std::runtime_error("load_segments: segment shape mismatch");
    auto cells = std::make_unique<SegmentSoA>(ncells);
    for (std::size_t c = 0; c < ncells; ++c) {
      Cell::Snapshot s{};
      int level = 0, defect = 0, meta = 0;
      if (!(is >> s.tte_fresh_us >> s.susceptibility >> s.eff_cycles >>
            s.annealed >> level >> defect >> meta >> s.margin_us))
        throw std::runtime_error("load_segments: truncated cell data");
      s.level = static_cast<std::uint8_t>(level);
      s.defect = static_cast<std::uint8_t>(defect);
      s.metastable = static_cast<std::uint8_t>(meta);
      // Round-trip through Cell::restore for domain validation.
      cells->assign(c, Cell::restore(s).snapshot_state());
    }
    segments_[seg] = std::move(cells);
  }
  std::string end;
  if (!(is >> end) || end != "END")
    throw std::runtime_error("load_segments: missing END");
}

void FlashArray::bake(double hours) {
  // A segment resting in the backing map is NOT fresh — it must hydrate so
  // the bake applies to its persisted state, not to a lazy re-manufacture.
  for (std::size_t seg = 0; seg < segments_.size(); ++seg) {
    if (!segment_present(seg)) continue;
    kernels::bake_segment(mode_, ensure_segment(seg), phys_, hours);
    seg_dirty_[seg] = 1;
  }
}

void FlashArray::age(double years) {
  for (std::size_t seg = 0; seg < segments_.size(); ++seg) {
    if (!segment_present(seg)) continue;
    kernels::age_segment(mode_, ensure_segment(seg), phys_, years, noise_rng_);
    seg_dirty_[seg] = 1;
  }
  meta_dirty_ = true;  // noise RNG advances
}

void FlashArray::wear_segment(std::size_t seg, double cycles,
                              const BitVec* pattern) {
  SegmentSoA& cells = ensure_segment(seg);
  if (pattern && pattern->size() != cells.size())
    throw std::invalid_argument(
        "wear_segment: pattern length must equal cell count");
  kernels::wear_cells(mode_, cells, phys_, cycles, pattern);
  seg_dirty_[seg] = 1;
}

}  // namespace flashmark
