#include "flash/array.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace flashmark {

FlashArray::FlashArray(FlashGeometry geometry, PhysParams phys,
                       std::uint64_t die_seed)
    : geom_(geometry),
      phys_(phys),
      die_seed_(die_seed),
      noise_rng_(die_seed ^ 0xC0FFEE5EED5A11ADull),
      segments_(geometry.n_segments()) {
  geom_.validate();
  phys_.validate();
}

std::vector<Cell>& FlashArray::ensure_segment(std::size_t seg) {
  if (seg >= segments_.size())
    throw std::out_of_range("FlashArray: segment index out of range");
  auto& slot = segments_[seg];
  if (!slot) {
    // Per-segment manufacturing stream: independent of touch order.
    std::uint64_t sm = die_seed_ ^ (0x9E3779B97F4A7C15ull * (seg + 1));
    Rng seg_rng(splitmix64(sm));
    const std::size_t n = geom_.segment_cells(seg);
    slot = std::make_unique<std::vector<Cell>>();
    slot->reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      slot->push_back(Cell::manufacture(phys_, seg_rng));
  }
  return *slot;
}

std::pair<std::size_t, std::size_t> FlashArray::locate_word(Addr addr) const {
  if (!geom_.valid(addr))
    throw std::out_of_range("FlashArray: address outside flash");
  if (!geom_.word_aligned(addr))
    throw std::invalid_argument("FlashArray: unaligned word address");
  const std::size_t seg = geom_.segment_index(addr);
  const Addr base = geom_.segment_base(seg);
  const std::size_t cell0 = static_cast<std::size_t>(addr - base) * 8;
  return {seg, cell0};
}

void FlashArray::erase_segment(std::size_t seg) {
  for (auto& c : ensure_segment(seg)) c.full_erase(phys_);
}

void FlashArray::set_temperature_c(double t) {
  const double factor = 1.0 + phys_.temp_erase_accel_per_K * (t - 25.0);
  if (factor <= 0.05)
    throw std::invalid_argument("set_temperature_c: temperature out of model range");
  temperature_c_ = t;
}

void FlashArray::partial_erase_segment(std::size_t seg, double t_pe_us) {
  if (t_pe_us < 0.0)
    throw std::invalid_argument("partial_erase_segment: negative time");
  // Hot silicon erases faster: the same wall-clock pulse delivers more
  // effective exposure.
  const double effective =
      t_pe_us *
      (1.0 + phys_.temp_erase_accel_per_K * (temperature_c_ - 25.0));
  for (auto& c : ensure_segment(seg))
    c.partial_erase(phys_, effective, noise_rng_);
}

void FlashArray::program_word(Addr addr, std::uint16_t value) {
  const auto [seg, cell0] = locate_word(addr);
  auto& cells = ensure_segment(seg);
  for (std::size_t b = 0; b < geom_.bits_per_word(); ++b)
    if (((value >> b) & 1u) == 0) cells[cell0 + b].program(phys_);
}

void FlashArray::partial_program_word(Addr addr, std::uint16_t value,
                                      double fraction) {
  if (fraction <= 0.0)
    throw std::invalid_argument("partial_program_word: fraction must be > 0");
  const auto [seg, cell0] = locate_word(addr);
  auto& cells = ensure_segment(seg);
  for (std::size_t b = 0; b < geom_.bits_per_word(); ++b)
    if (((value >> b) & 1u) == 0)
      cells[cell0 + b].partial_program(phys_, fraction, noise_rng_);
}

std::uint16_t FlashArray::read_word(Addr addr) {
  const auto [seg, cell0] = locate_word(addr);
  auto& cells = ensure_segment(seg);
  std::uint16_t value = 0;
  for (std::size_t b = 0; b < geom_.bits_per_word(); ++b)
    if (cells[cell0 + b].read(phys_, noise_rng_))
      value |= static_cast<std::uint16_t>(1u << b);
  return value;
}

std::size_t FlashArray::count_erased(std::size_t seg) {
  const auto& cells = ensure_segment(seg);
  return static_cast<std::size_t>(
      std::count_if(cells.begin(), cells.end(),
                    [](const Cell& c) { return c.erased(); }));
}

BitVec FlashArray::snapshot(std::size_t seg) {
  const auto& cells = ensure_segment(seg);
  BitVec v(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) v.set(i, cells[i].erased());
  return v;
}

double FlashArray::time_to_full_erase_us(std::size_t seg) {
  const auto& cells = ensure_segment(seg);
  double max_tte = 0.0;
  for (const auto& c : cells)
    if (!c.erased()) max_tte = std::max(max_tte, c.tte_us(phys_));
  return max_tte;
}

SegmentWearStats FlashArray::wear_stats(std::size_t seg) {
  const auto& cells = ensure_segment(seg);
  SegmentWearStats s;
  bool first = true;
  double sum_cycles = 0.0;
  double sum_tte = 0.0;
  for (const auto& c : cells) {
    const double n = c.eff_cycles();
    const double tte = c.tte_us(phys_);
    if (first) {
      s.eff_cycles_min = s.eff_cycles_max = n;
      s.tte_min_us = s.tte_max_us = tte;
      first = false;
    } else {
      s.eff_cycles_min = std::min(s.eff_cycles_min, n);
      s.eff_cycles_max = std::max(s.eff_cycles_max, n);
      s.tte_min_us = std::min(s.tte_min_us, tte);
      s.tte_max_us = std::max(s.tte_max_us, tte);
    }
    sum_cycles += n;
    sum_tte += tte;
  }
  if (!cells.empty()) {
    s.eff_cycles_mean = sum_cycles / static_cast<double>(cells.size());
    s.tte_mean_us = sum_tte / static_cast<double>(cells.size());
  }
  return s;
}

const Cell& FlashArray::cell(std::size_t seg, std::size_t idx) {
  const auto& cells = ensure_segment(seg);
  if (idx >= cells.size())
    throw std::out_of_range("FlashArray::cell: cell index out of range");
  return cells[idx];
}

bool FlashArray::segment_materialized(std::size_t seg) const {
  if (seg >= segments_.size())
    throw std::out_of_range("segment_materialized: segment out of range");
  return segments_[seg] != nullptr;
}

void FlashArray::save_segments(std::ostream& os) const {
  std::size_t n = 0;
  for (const auto& slot : segments_)
    if (slot) ++n;
  os << "FMSEGS 1\n" << n << "\n";
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t seg = 0; seg < segments_.size(); ++seg) {
    if (!segments_[seg]) continue;
    const auto& cells = *segments_[seg];
    os << "SEG " << seg << " " << cells.size() << "\n";
    for (const Cell& c : cells) {
      const Cell::Snapshot s = c.snapshot_state();
      os << s.tte_fresh_us << ' ' << s.susceptibility << ' ' << s.eff_cycles
         << ' ' << s.annealed << ' ' << static_cast<int>(s.level) << ' '
         << static_cast<int>(s.defect) << ' ' << static_cast<int>(s.metastable)
         << ' ' << s.margin_us << "\n";
    }
  }
  os << "END\n";
}

void FlashArray::load_segments(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "FMSEGS" || version != 1)
    throw std::runtime_error("load_segments: bad header");
  std::size_t n = 0;
  if (!(is >> n)) throw std::runtime_error("load_segments: bad segment count");
  for (std::size_t i = 0; i < n; ++i) {
    std::string tag;
    std::size_t seg = 0, ncells = 0;
    if (!(is >> tag >> seg >> ncells) || tag != "SEG")
      throw std::runtime_error("load_segments: bad segment header");
    if (seg >= segments_.size() || ncells != geom_.segment_cells(seg))
      throw std::runtime_error("load_segments: segment shape mismatch");
    auto cells = std::make_unique<std::vector<Cell>>();
    cells->reserve(ncells);
    for (std::size_t c = 0; c < ncells; ++c) {
      Cell::Snapshot s{};
      int level = 0, defect = 0, meta = 0;
      if (!(is >> s.tte_fresh_us >> s.susceptibility >> s.eff_cycles >>
            s.annealed >> level >> defect >> meta >> s.margin_us))
        throw std::runtime_error("load_segments: truncated cell data");
      s.level = static_cast<std::uint8_t>(level);
      s.defect = static_cast<std::uint8_t>(defect);
      s.metastable = static_cast<std::uint8_t>(meta);
      cells->push_back(Cell::restore(s));
    }
    segments_[seg] = std::move(cells);
  }
  std::string end;
  if (!(is >> end) || end != "END")
    throw std::runtime_error("load_segments: missing END");
}

void FlashArray::bake(double hours) {
  for (auto& slot : segments_)
    if (slot)
      for (auto& c : *slot) c.bake(phys_, hours);
}

void FlashArray::age(double years) {
  for (auto& slot : segments_)
    if (slot)
      for (auto& c : *slot) c.age(phys_, years, noise_rng_);
}

void FlashArray::wear_segment(std::size_t seg, double cycles,
                              const BitVec* pattern) {
  auto& cells = ensure_segment(seg);
  if (pattern && pattern->size() != cells.size())
    throw std::invalid_argument(
        "wear_segment: pattern length must equal cell count");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const bool programmed_each_cycle = pattern ? !pattern->get(i) : true;
    cells[i].batch_stress(phys_, cycles, programmed_each_cycle,
                          /*end_programmed=*/pattern != nullptr);
  }
}

}  // namespace flashmark
