// Hardware-abstraction boundary between the Flashmark algorithms and a
// flash device.
//
// The paper's central deployment claim is that imprinting and extraction use
// only standard digital commands. This interface *is* that command set; the
// core library is written against it exclusively. Two implementations ship:
// ControllerHal (directly over FlashController) and McuFlashHal (driving the
// MSP430-style memory-mapped register front end), demonstrating that the
// algorithms run unchanged over a register-level interface.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "flash/controller.hpp"
#include "flash/geometry.hpp"
#include "flash/timing.hpp"
#include "util/bitvec.hpp"
#include "util/sim_time.hpp"

namespace flashmark {

/// Thrown when a HAL command is refused by the device (protocol misuse,
/// invalid address...). Algorithms treat this as a programming error.
class FlashHalError : public std::runtime_error {
 public:
  FlashHalError(const std::string& op, FlashStatus status);
  FlashStatus status() const { return status_; }

 private:
  FlashStatus status_;
};

/// A transient, retryable device failure: the command was legal but the
/// hardware dropped it mid-flight (brown-out, power-loss abort, supply
/// glitch). Unlike FlashHalError this is NOT a programming error — consumers
/// with a retry budget (ImprintOptions/ExtractOptions `max_retries`) catch
/// it and reissue the work. Raised today by the fault-injection layer
/// (src/fault); a real driver would map its power-fail interrupt here.
class TransientFlashError : public std::runtime_error {
 public:
  explicit TransientFlashError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by a retrying consumer once its transient-fault budget is spent.
/// Carries the failing operation and the attempt count so fleet-level
/// reporting can classify the die (FailureReason::kRetryExhausted) instead
/// of parsing a message string.
class RetryExhaustedError : public std::runtime_error {
 public:
  RetryExhaustedError(const std::string& op, std::uint32_t attempts,
                      const std::string& last_error)
      : std::runtime_error(op + ": retry budget exhausted after " +
                           std::to_string(attempts) + " attempt(s): " +
                           last_error),
        op_(op),
        attempts_(attempts) {}
  const std::string& op() const { return op_; }
  std::uint32_t attempts() const { return attempts_; }

 private:
  std::string op_;
  std::uint32_t attempts_;
};

/// Thrown by a long-running driver (imprint/extract loop) when its
/// cooperative-cancellation hook fires between units of work. Lives in the
/// error taxonomy here (not in src/fleet) so fm_core can throw it without
/// depending on the supervision layer that requested the cancellation; the
/// fleet watchdog maps it onto a structured FailureReason.
class OperationCancelledError : public std::runtime_error {
 public:
  explicit OperationCancelledError(const std::string& op)
      : std::runtime_error(op + ": cancelled cooperatively"), op_(op) {}
  const std::string& op() const { return op_; }

 private:
  std::string op_;
};

class FlashHal {
 public:
  virtual ~FlashHal() = default;

  virtual const FlashGeometry& geometry() const = 0;
  virtual const FlashTiming& timing() const = 0;
  virtual SimTime now() const = 0;

  /// Full nominal erase of the segment containing `addr`.
  virtual void erase_segment(Addr addr) = 0;
  /// Erase-with-verify early exit; returns the pulse time used.
  virtual SimTime erase_segment_auto(Addr addr) = 0;
  /// Erase pulse of exactly `t_pe`, then emergency exit.
  virtual void partial_erase_segment(Addr addr, SimTime t_pe) = 0;
  virtual void program_word(Addr addr, std::uint16_t value) = 0;
  /// Program pulse of exactly `t_prog` (< nominal), then emergency exit —
  /// the sweeping-partial-program primitive of the FFD baseline (ref [6]).
  virtual void partial_program_word(Addr addr, std::uint16_t value,
                                    SimTime t_prog) = 0;
  /// Block write (must stay within one segment).
  virtual void program_block(Addr addr,
                             const std::vector<std::uint16_t>& words) = 0;
  virtual std::uint16_t read_word(Addr addr) = 0;

  /// `n_reads` noisy reads of every word of the segment containing `addr`,
  /// majority-voted per bit (bit i of the result is cell i's voted value).
  /// The default implementation is exactly the read_word loop the analyze
  /// procedure used to run (word-major, then read, then bit), so decorators
  /// and register front ends that only override read_word keep byte-identical
  /// noise streams; ControllerHal overrides it with the segment read kernel.
  virtual BitVec read_segment(Addr addr, int n_reads);

  /// Simulation-only accelerator equivalent to `cycles` imprint P/E cycles
  /// (see FlashController::wear_segment). Implementations without it throw.
  virtual void wear_segment(Addr addr, double cycles,
                            const BitVec* pattern = nullptr) = 0;
};

/// Direct adapter over FlashController; converts status codes to exceptions.
class ControllerHal final : public FlashHal {
 public:
  explicit ControllerHal(FlashController& ctrl) : ctrl_(ctrl) {}

  const FlashGeometry& geometry() const override { return ctrl_.geometry(); }
  const FlashTiming& timing() const override { return ctrl_.timing(); }
  SimTime now() const override { return ctrl_.now(); }

  void erase_segment(Addr addr) override;
  SimTime erase_segment_auto(Addr addr) override;
  void partial_erase_segment(Addr addr, SimTime t_pe) override;
  void program_word(Addr addr, std::uint16_t value) override;
  void partial_program_word(Addr addr, std::uint16_t value,
                            SimTime t_prog) override;
  void program_block(Addr addr,
                     const std::vector<std::uint16_t>& words) override;
  std::uint16_t read_word(Addr addr) override;
  BitVec read_segment(Addr addr, int n_reads) override;
  void wear_segment(Addr addr, double cycles,
                    const BitVec* pattern = nullptr) override;

 private:
  FlashController& ctrl_;
};

}  // namespace flashmark
