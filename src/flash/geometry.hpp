// NOR flash address-space geometry (paper §II).
//
// Mirrors the layout of MSP430F5xx embedded flash: a main memory of one or
// more 64 KiB banks split into 512-byte segments, plus a small information
// memory of 128-byte segments. Words are 16 bits; reads are random-access at
// word granularity; erase granularity is one segment (or a whole bank for
// mass erase).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace flashmark {

using Addr = std::uint32_t;

struct FlashGeometry {
  Addr main_base = 0x5C00;           ///< first byte of main flash
  std::size_t bank_bytes = 64 * 1024;
  std::size_t n_banks = 4;           ///< 256 KiB main flash (F5438 default)
  std::size_t main_segment_bytes = 512;

  Addr info_base = 0x1800;           ///< information memory (segments D..A)
  std::size_t n_info_segments = 4;
  std::size_t info_segment_bytes = 128;

  std::size_t word_bytes = 2;        ///< 16-bit words

  // --- derived quantities ------------------------------------------------
  std::size_t main_bytes() const { return bank_bytes * n_banks; }
  std::size_t segments_per_bank() const { return bank_bytes / main_segment_bytes; }
  std::size_t n_main_segments() const { return n_banks * segments_per_bank(); }
  std::size_t n_segments() const { return n_main_segments() + n_info_segments; }
  std::size_t bits_per_word() const { return word_bytes * 8; }

  Addr main_end() const { return main_base + static_cast<Addr>(main_bytes()); }
  Addr info_end() const {
    return info_base + static_cast<Addr>(n_info_segments * info_segment_bytes);
  }

  bool in_main(Addr a) const { return a >= main_base && a < main_end(); }
  bool in_info(Addr a) const { return a >= info_base && a < info_end(); }
  bool valid(Addr a) const { return in_main(a) || in_info(a); }

  /// True if `a` is aligned to the word size.
  bool word_aligned(Addr a) const { return a % word_bytes == 0; }

  /// Global segment index: main segments first, then info segments.
  /// Precondition: valid(a).
  std::size_t segment_index(Addr a) const;

  /// First byte address of global segment `idx`.
  Addr segment_base(std::size_t idx) const;

  /// Size in bytes of global segment `idx`.
  std::size_t segment_bytes(std::size_t idx) const;

  /// Number of cells (bits) in global segment `idx`.
  std::size_t segment_cells(std::size_t idx) const { return segment_bytes(idx) * 8; }

  /// Bank index of a main-memory address. Precondition: in_main(a).
  std::size_t bank_index(Addr a) const;

  /// Validation (sizes positive, segment divides bank, word divides segment);
  /// throws std::invalid_argument on violation.
  void validate() const;

  /// Debug rendering, e.g. "main 256KiB @0x5C00 (512B segs), info 4x128B @0x1800".
  std::string describe() const;

  // --- family presets ------------------------------------------------------
  static FlashGeometry msp430f5438();  ///< 256 KiB main flash
  static FlashGeometry msp430f5529();  ///< 128 KiB main flash
};

}  // namespace flashmark
