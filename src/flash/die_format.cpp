#include "flash/die_format.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "flash/array.hpp"
#include "util/crc.hpp"

namespace flashmark {

namespace {

// Header field offsets (bytes). Normative layout in docs/FORMATS.md — keep
// the two in lockstep.
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffHeaderBytes = 8;
constexpr std::size_t kOffVersion = 12;
constexpr std::size_t kOffFamily = 16;
constexpr std::size_t kOffDieSeed = 48;
constexpr std::size_t kOffClockNs = 56;
constexpr std::size_t kOffTemperature = 64;
constexpr std::size_t kOffNoiseS = 72;        // 4 x u64
constexpr std::size_t kOffNoiseCached = 104;
constexpr std::size_t kOffNoiseHasCached = 112;
constexpr std::size_t kOffNSegments = 116;
constexpr std::size_t kOffNEntries = 120;
constexpr std::size_t kOffTableCrc = 124;
constexpr std::size_t kOffTableOffset = 128;
constexpr std::size_t kOffDataOffset = 136;
constexpr std::size_t kOffFileBytes = 144;
constexpr std::size_t kOffHeaderCrc = 188;  // CRC-32 over bytes [0, 188)

// Table entry field offsets (within each 32-byte entry).
constexpr std::size_t kEntSegment = 0;
constexpr std::size_t kEntColumn = 4;
constexpr std::size_t kEntOffset = 8;
constexpr std::size_t kEntSize = 16;
constexpr std::size_t kEntElemSize = 24;
constexpr std::size_t kEntCrc = 28;

// Bytewise little-endian codec: host-order independent by construction.
void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

bool host_is_little_endian() {
  return std::endian::native == std::endian::little;
}

IoStatus reject(IoStatus* status, std::string cause) {
  IoStatus st = IoStatus::failure("die format v3: " + std::move(cause));
  if (status) *status = st;
  return st;
}

/// Domain validation of one column's cell values — the same rules
/// Cell::restore enforces, vectorized over the blob. `!(x > 0)` style
/// comparisons deliberately reject NaN as well.
bool column_domain_ok(v3::ColumnId c, const std::uint8_t* p, std::size_t n) {
  switch (c) {
    case v3::ColumnId::kTteFreshUs:
      for (std::size_t i = 0; i < n; ++i) {
        float v;
        std::memcpy(&v, p + 4 * i, 4);
        if (!(v > 0.0f)) return false;
      }
      return true;
    case v3::ColumnId::kSusceptibility:
      for (std::size_t i = 0; i < n; ++i) {
        float v;
        std::memcpy(&v, p + 4 * i, 4);
        if (!(v >= 0.0f)) return false;
      }
      return true;
    case v3::ColumnId::kEffCycles:
    case v3::ColumnId::kAnnealed:
      for (std::size_t i = 0; i < n; ++i) {
        double v;
        std::memcpy(&v, p + 8 * i, 8);
        if (!(v >= 0.0)) return false;
      }
      return true;
    case v3::ColumnId::kLevel:
      for (std::size_t i = 0; i < n; ++i)
        if (p[i] > 1) return false;
      return true;
    case v3::ColumnId::kDefect:
      for (std::size_t i = 0; i < n; ++i)
        if (p[i] > 2) return false;
      return true;
    case v3::ColumnId::kMetastable:
      for (std::size_t i = 0; i < n; ++i)
        if (p[i] > 1) return false;
      return true;
    case v3::ColumnId::kMarginUs:
      // Cell::restore accepts any margin (only meaningful while
      // metastable); so does the columnar reader.
      return true;
  }
  return false;
}

}  // namespace

namespace v3 {

std::uint32_t column_elem_size(ColumnId c) {
  switch (c) {
    case ColumnId::kTteFreshUs:
    case ColumnId::kSusceptibility:
    case ColumnId::kMarginUs:
      return 4;
    case ColumnId::kEffCycles:
    case ColumnId::kAnnealed:
      return 8;
    case ColumnId::kLevel:
    case ColumnId::kDefect:
    case ColumnId::kMetastable:
      return 1;
  }
  return 0;
}

}  // namespace v3

DieFileMap::~DieFileMap() {
  if (map_base_) ::munmap(map_base_, size_);
}

const std::uint8_t* DieFileMap::data() const {
  return map_base_ ? static_cast<const std::uint8_t*>(map_base_)
                   : reinterpret_cast<const std::uint8_t*>(buffer_.data());
}

std::shared_ptr<const DieFileMap> DieFileMap::open(const std::string& path,
                                                   IoStatus* status) {
  if (status) *status = IoStatus::success();
  auto m = std::shared_ptr<DieFileMap>(new DieFileMap());

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    reject(status, "open " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  struct stat sb {};
  if (::fstat(fd, &sb) != 0) {
    reject(status, "fstat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  if (S_ISREG(sb.st_mode) && sb.st_size > 0) {
    void* base = ::mmap(nullptr, static_cast<std::size_t>(sb.st_size),
                        PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      m->map_base_ = base;
      m->size_ = static_cast<std::size_t>(sb.st_size);
    }
  }
  ::close(fd);
  if (!m->map_base_) {
    // Pipes, pseudo-files, or a refused mmap: fall back to a heap read.
    if (const IoStatus st = read_file(path, &m->buffer_); !st) {
      reject(status, st.error);
      return nullptr;
    }
    m->size_ = m->buffer_.size();
  }
  return validate(std::move(m), status);
}

std::shared_ptr<const DieFileMap> DieFileMap::from_bytes(std::string bytes,
                                                         IoStatus* status) {
  if (status) *status = IoStatus::success();
  auto m = std::shared_ptr<DieFileMap>(new DieFileMap());
  m->buffer_ = std::move(bytes);
  m->size_ = m->buffer_.size();
  return validate(std::move(m), status);
}

std::shared_ptr<const DieFileMap> DieFileMap::validate(
    std::shared_ptr<DieFileMap> m, IoStatus* status) {
  if (!host_is_little_endian()) {
    reject(status, "big-endian host unsupported (use the text formats)");
    return nullptr;
  }
  const std::uint8_t* d = m->data();
  const std::size_t size = m->size_;
  if (size < v3::kHeaderBytes) {
    reject(status, "file smaller than the v3 header");
    return nullptr;
  }
  if (std::memcmp(d + kOffMagic, v3::kMagic.data(), v3::kMagic.size()) != 0) {
    reject(status, "bad magic");
    return nullptr;
  }
  if (crc32_ieee(d, kOffHeaderCrc) != get_u32(d + kOffHeaderCrc)) {
    reject(status, "header CRC mismatch");
    return nullptr;
  }
  if (get_u32(d + kOffHeaderBytes) != v3::kHeaderBytes ||
      get_u32(d + kOffVersion) != v3::kVersion) {
    reject(status, "unsupported header size or version");
    return nullptr;
  }

  // Family: NUL-terminated inside its fixed field, non-empty.
  const char* fam = reinterpret_cast<const char*>(d + kOffFamily);
  const std::size_t fam_len =
      std::find(fam, fam + v3::kFamilyBytes, '\0') - fam;
  if (fam_len == 0 || fam_len == v3::kFamilyBytes) {
    reject(status, "malformed family name");
    return nullptr;
  }
  m->family_.assign(fam, fam_len);

  m->die_seed_ = get_u64(d + kOffDieSeed);
  m->clock_ns_ = static_cast<std::int64_t>(get_u64(d + kOffClockNs));
  m->temperature_c_ = std::bit_cast<double>(get_u64(d + kOffTemperature));
  for (int i = 0; i < 4; ++i)
    m->noise_.s[i] = get_u64(d + kOffNoiseS + 8 * std::size_t(i));
  m->noise_.cached_normal_bits = get_u64(d + kOffNoiseCached);
  const std::uint32_t has_cached = get_u32(d + kOffNoiseHasCached);
  if (has_cached > 1) {
    reject(status, "malformed noise-RNG cache flag");
    return nullptr;
  }
  m->noise_.has_cached_normal = has_cached == 1;
  if (m->clock_ns_ < 0) {
    reject(status, "negative clock");
    return nullptr;
  }

  m->n_segments_ = get_u32(d + kOffNSegments);
  const std::uint32_t n_entries = get_u32(d + kOffNEntries);
  const std::uint64_t table_offset = get_u64(d + kOffTableOffset);
  const std::uint64_t data_offset = get_u64(d + kOffDataOffset);
  const std::uint64_t file_bytes = get_u64(d + kOffFileBytes);
  if (m->n_segments_ == 0 || m->n_segments_ > (1u << 20)) {
    reject(status, "implausible segment count");
    return nullptr;
  }
  if (file_bytes != size) {
    reject(status, "file size mismatch (truncated or trailing bytes)");
    return nullptr;
  }
  const std::uint64_t table_bytes =
      std::uint64_t(n_entries) * v3::kTableEntryBytes;
  if (table_offset != v3::kHeaderBytes ||
      table_offset + table_bytes > data_offset || data_offset > size ||
      data_offset % v3::kBlobAlign != 0) {
    reject(status, "malformed section layout");
    return nullptr;
  }
  const std::uint8_t* table = d + table_offset;
  if (crc32_ieee(table, static_cast<std::size_t>(table_bytes)) !=
      get_u32(d + kOffTableCrc)) {
    reject(status, "column table CRC mismatch");
    return nullptr;
  }

  std::uint64_t prev_end = data_offset;
  for (std::uint32_t e = 0; e < n_entries; ++e) {
    const std::uint8_t* ent = table + std::size_t(e) * v3::kTableEntryBytes;
    const std::uint32_t seg = get_u32(ent + kEntSegment);
    const std::uint32_t col = get_u32(ent + kEntColumn);
    const std::uint64_t off = get_u64(ent + kEntOffset);
    const std::uint64_t bytes = get_u64(ent + kEntSize);
    const std::uint32_t elem = get_u32(ent + kEntElemSize);
    if (seg >= m->n_segments_) {
      reject(status, "table entry names an out-of-range segment");
      return nullptr;
    }
    // Blobs must be 64-byte aligned, in ascending non-overlapping order,
    // and inside the file. The bounds check is overflow-safe: a crafted
    // `off` near 2^64 would wrap `off + bytes` back into range.
    if (off % v3::kBlobAlign != 0 || off < prev_end || bytes == 0 ||
        bytes > size || off > size - bytes) {
      reject(status, "table entry offsets malformed");
      return nullptr;
    }
    prev_end = off + bytes;
    const std::uint8_t* blob = d + off;
    if (crc32_ieee(blob, static_cast<std::size_t>(bytes)) !=
        get_u32(ent + kEntCrc)) {
      reject(status, "column blob CRC mismatch (segment " +
                         std::to_string(seg) + ", column " +
                         std::to_string(col) + ")");
      return nullptr;
    }
    if (col >= v3::kNumColumns) continue;  // future column id: framed, skipped
    const v3::ColumnId cid = static_cast<v3::ColumnId>(col);
    if (elem != v3::column_elem_size(cid) || bytes % elem != 0) {
      reject(status, "column element size mismatch");
      return nullptr;
    }
    const std::size_t count = static_cast<std::size_t>(bytes / elem);
    DieFileMap::SegmentColumns& sc = m->segs_[seg];
    const std::uint32_t bit = 1u << col;
    if (sc.have & bit) {
      reject(status, "duplicate (segment, column) entry");
      return nullptr;
    }
    sc.have |= bit;
    if (sc.cells == 0)
      sc.cells = count;
    else if (sc.cells != count) {
      reject(status, "column lengths disagree within segment " +
                         std::to_string(seg));
      return nullptr;
    }
    if (!column_domain_ok(cid, blob, count)) {
      reject(status, "out-of-domain cell value (segment " +
                         std::to_string(seg) + ", column " +
                         std::to_string(col) + ")");
      return nullptr;
    }
    sc.col[col] = blob;
  }

  // Every present segment must carry all 8 known columns.
  constexpr std::uint32_t kAllColumns = (1u << v3::kNumColumns) - 1;
  for (const auto& [seg, sc] : m->segs_) {
    if (sc.have != kAllColumns) {
      reject(status,
             "segment " + std::to_string(seg) + " is missing columns");
      return nullptr;
    }
  }
  return m;
}

std::string serialize_die_v3(const FlashArray& a, const std::string& family,
                             std::int64_t clock_ns) {
  if (!host_is_little_endian())
    throw std::runtime_error(
        "die format v3: big-endian host unsupported (use the text formats)");
  const FlashGeometry& g = a.geometry();
  const std::shared_ptr<const DieFileMap>& backing = a.backing();

  std::vector<std::uint32_t> present;
  for (std::size_t seg = 0; seg < g.n_segments(); ++seg)
    if (a.segment_present(seg)) present.push_back(std::uint32_t(seg));

  const std::uint32_t n_entries =
      std::uint32_t(present.size()) * v3::kNumColumns;
  const std::uint64_t table_offset = v3::kHeaderBytes;
  const std::uint64_t data_offset = align_up(
      table_offset + std::uint64_t(n_entries) * v3::kTableEntryBytes,
      v3::kBlobAlign);

  // Lay the blobs out first (segment-ascending, column-ascending), then
  // write everything into one zero-initialized image: the gaps between
  // aligned blobs stay zero by construction.
  std::uint64_t cursor = data_offset;
  std::vector<std::uint64_t> blob_off(n_entries);
  std::vector<std::uint64_t> blob_len(n_entries);
  {
    std::size_t e = 0;
    for (const std::uint32_t seg : present) {
      const std::uint64_t n = g.segment_cells(seg);
      for (std::uint32_t c = 0; c < v3::kNumColumns; ++c, ++e) {
        cursor = align_up(cursor, v3::kBlobAlign);
        blob_off[e] = cursor;
        blob_len[e] =
            n * v3::column_elem_size(static_cast<v3::ColumnId>(c));
        cursor += blob_len[e];
      }
    }
  }
  const std::uint64_t file_bytes = cursor;
  std::string out(static_cast<std::size_t>(file_bytes), '\0');
  std::uint8_t* d = reinterpret_cast<std::uint8_t*>(out.data());

  // Blobs. A hydrated segment's columns come from its SoA arrays; a
  // still-backed clean segment's bytes are copied straight out of the
  // validated source map (its representation is identical by spec).
  {
    std::size_t e = 0;
    for (const std::uint32_t seg : present) {
      const SegmentSoA* s = a.materialized_segment(seg);
      for (std::uint32_t c = 0; c < v3::kNumColumns; ++c, ++e) {
        std::uint8_t* dst = d + blob_off[e];
        const std::size_t bytes = static_cast<std::size_t>(blob_len[e]);
        if (s) {
          const void* src = nullptr;
          switch (static_cast<v3::ColumnId>(c)) {
            case v3::ColumnId::kTteFreshUs: src = s->tte_fresh_us.data(); break;
            case v3::ColumnId::kSusceptibility:
              src = s->susceptibility.data();
              break;
            case v3::ColumnId::kEffCycles: src = s->eff_cycles.data(); break;
            case v3::ColumnId::kAnnealed: src = s->annealed.data(); break;
            case v3::ColumnId::kLevel: src = s->level.data(); break;
            case v3::ColumnId::kDefect: src = s->defect.data(); break;
            case v3::ColumnId::kMetastable: src = s->metastable.data(); break;
            case v3::ColumnId::kMarginUs: src = s->margin_us.data(); break;
          }
          std::memcpy(dst, src, bytes);
        } else {
          std::memcpy(dst,
                      backing->column_data(seg, static_cast<v3::ColumnId>(c)),
                      bytes);
        }
      }
    }
  }

  // Column table.
  std::uint8_t* table = d + table_offset;
  {
    std::size_t e = 0;
    for (const std::uint32_t seg : present) {
      for (std::uint32_t c = 0; c < v3::kNumColumns; ++c, ++e) {
        std::uint8_t* ent = table + e * v3::kTableEntryBytes;
        put_u32(ent + kEntSegment, seg);
        put_u32(ent + kEntColumn, c);
        put_u64(ent + kEntOffset, blob_off[e]);
        put_u64(ent + kEntSize, blob_len[e]);
        put_u32(ent + kEntElemSize,
                v3::column_elem_size(static_cast<v3::ColumnId>(c)));
        put_u32(ent + kEntCrc,
                crc32_ieee(d + blob_off[e],
                           static_cast<std::size_t>(blob_len[e])));
      }
    }
  }

  // Header last: it frames the table.
  std::memcpy(d + kOffMagic, v3::kMagic.data(), v3::kMagic.size());
  put_u32(d + kOffHeaderBytes, v3::kHeaderBytes);
  put_u32(d + kOffVersion, v3::kVersion);
  if (family.empty() || family.size() >= v3::kFamilyBytes)
    throw std::runtime_error("die format v3: family name does not fit");
  std::memcpy(d + kOffFamily, family.data(), family.size());
  put_u64(d + kOffDieSeed, a.die_seed());
  put_u64(d + kOffClockNs, static_cast<std::uint64_t>(clock_ns));
  put_u64(d + kOffTemperature, std::bit_cast<std::uint64_t>(a.temperature_c()));
  const Rng::State noise = a.noise_rng_state();
  for (int i = 0; i < 4; ++i)
    put_u64(d + kOffNoiseS + 8 * std::size_t(i), noise.s[i]);
  put_u64(d + kOffNoiseCached, noise.cached_normal_bits);
  put_u32(d + kOffNoiseHasCached, noise.has_cached_normal ? 1 : 0);
  put_u32(d + kOffNSegments, std::uint32_t(g.n_segments()));
  put_u32(d + kOffNEntries, n_entries);
  put_u32(d + kOffTableCrc,
          crc32_ieee(table, std::size_t(n_entries) * v3::kTableEntryBytes));
  put_u64(d + kOffTableOffset, table_offset);
  put_u64(d + kOffDataOffset, data_offset);
  put_u64(d + kOffFileBytes, file_bytes);
  put_u32(d + kOffHeaderCrc, crc32_ieee(d, kOffHeaderCrc));
  return out;
}

}  // namespace flashmark
