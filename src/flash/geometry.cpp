#include "flash/geometry.hpp"

#include <sstream>
#include <stdexcept>

namespace flashmark {

std::size_t FlashGeometry::segment_index(Addr a) const {
  if (in_main(a))
    return static_cast<std::size_t>(a - main_base) / main_segment_bytes;
  if (in_info(a))
    return n_main_segments() +
           static_cast<std::size_t>(a - info_base) / info_segment_bytes;
  throw std::out_of_range("FlashGeometry::segment_index: invalid address");
}

Addr FlashGeometry::segment_base(std::size_t idx) const {
  if (idx < n_main_segments())
    return main_base + static_cast<Addr>(idx * main_segment_bytes);
  if (idx < n_segments())
    return info_base +
           static_cast<Addr>((idx - n_main_segments()) * info_segment_bytes);
  throw std::out_of_range("FlashGeometry::segment_base: invalid segment");
}

std::size_t FlashGeometry::segment_bytes(std::size_t idx) const {
  if (idx < n_main_segments()) return main_segment_bytes;
  if (idx < n_segments()) return info_segment_bytes;
  throw std::out_of_range("FlashGeometry::segment_bytes: invalid segment");
}

std::size_t FlashGeometry::bank_index(Addr a) const {
  if (!in_main(a))
    throw std::out_of_range("FlashGeometry::bank_index: not in main flash");
  return static_cast<std::size_t>(a - main_base) / bank_bytes;
}

void FlashGeometry::validate() const {
  auto require = [](bool cond, const char* what) {
    if (!cond) throw std::invalid_argument(std::string("FlashGeometry: ") + what);
  };
  require(word_bytes > 0, "word_bytes must be > 0");
  require(main_segment_bytes > 0 && main_segment_bytes % word_bytes == 0,
          "main segment must be a multiple of the word size");
  require(info_segment_bytes > 0 && info_segment_bytes % word_bytes == 0,
          "info segment must be a multiple of the word size");
  require(bank_bytes > 0 && bank_bytes % main_segment_bytes == 0,
          "bank must be a multiple of the segment size");
  require(n_banks > 0, "need at least one bank");
  // The two regions must not overlap.
  require(info_end() <= main_base || main_end() <= info_base,
          "info and main regions overlap");
}

std::string FlashGeometry::describe() const {
  std::ostringstream os;
  os << "main " << main_bytes() / 1024 << "KiB @0x" << std::hex << main_base
     << std::dec << " (" << main_segment_bytes << "B segs, " << n_banks
     << " banks), info " << n_info_segments << "x" << info_segment_bytes
     << "B @0x" << std::hex << info_base << std::dec;
  return os.str();
}

FlashGeometry FlashGeometry::msp430f5438() { return FlashGeometry{}; }

FlashGeometry FlashGeometry::msp430f5529() {
  FlashGeometry g;
  g.main_base = 0x4400;
  g.n_banks = 2;  // 128 KiB
  return g;
}

}  // namespace flashmark
