#include "flash/controller.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace flashmark {

void FlashOpCounters::fold_into(obs::MetricsRegistry& reg,
                                const std::string& prefix) const {
  reg.counter(prefix + ".erase_ops").add(erase_ops);
  reg.counter(prefix + ".program_ops").add(program_ops);
  reg.counter(prefix + ".read_ops").add(read_ops);
  reg.gauge(prefix + ".wear_pe_cycles").set(wear_pe_cycles);
}

const char* to_string(FlashStatus s) {
  switch (s) {
    case FlashStatus::kOk: return "ok";
    case FlashStatus::kBusy: return "busy";
    case FlashStatus::kNotBusy: return "not-busy";
    case FlashStatus::kLocked: return "locked";
    case FlashStatus::kInvalidAddress: return "invalid-address";
    case FlashStatus::kInvalidArgument: return "invalid-argument";
  }
  return "unknown";
}

FlashController::FlashController(FlashArray& array, FlashTiming timing,
                                 SimClock& clock)
    : array_(array), timing_(timing), clock_(clock) {}

std::size_t FlashController::bank_of(Addr addr) const {
  const auto& g = geometry();
  if (g.in_main(addr)) return g.bank_index(addr);
  return g.n_banks;  // info region pseudo-bank
}

FlashStatus FlashController::check_command(Addr addr) {
  if (busy()) {
    accv_ = true;
    return FlashStatus::kBusy;
  }
  if (locked_) return FlashStatus::kLocked;
  if (!geometry().valid(addr)) return FlashStatus::kInvalidAddress;
  return FlashStatus::kOk;
}

FlashStatus FlashController::begin_segment_erase(Addr addr) {
  if (auto st = check_command(addr); st != FlashStatus::kOk) return st;
  const SimTime deadline =
      clock_.now() + timing_.t_vpp_setup + timing_.t_erase_segment + timing_.t_vpp_setup;
  op_ = Op{OpKind::kSegmentErase, addr, 0, clock_.now(), deadline};
  return FlashStatus::kOk;
}

FlashStatus FlashController::begin_mass_erase(Addr addr) {
  if (auto st = check_command(addr); st != FlashStatus::kOk) return st;
  const SimTime deadline =
      clock_.now() + timing_.t_vpp_setup + timing_.t_mass_erase + timing_.t_vpp_setup;
  op_ = Op{OpKind::kMassErase, addr, 0, clock_.now(), deadline};
  return FlashStatus::kOk;
}

FlashStatus FlashController::begin_program_word(Addr addr, std::uint16_t value) {
  if (auto st = check_command(addr); st != FlashStatus::kOk) return st;
  if (!geometry().word_aligned(addr)) return FlashStatus::kInvalidAddress;
  const SimTime deadline =
      clock_.now() + timing_.t_vpp_setup + timing_.t_prog_word;
  op_ = Op{OpKind::kProgramWord, addr, value, clock_.now(), deadline};
  return FlashStatus::kOk;
}

void FlashController::advance(SimTime dt) {
  clock_.advance(dt);
  if (op_ && clock_.now() >= op_->deadline) complete_op();
}

void FlashController::complete_op() {
  const Op op = *op_;
  op_.reset();
  const auto& g = geometry();
  switch (op.kind) {
    case OpKind::kSegmentErase:
      array_.erase_segment(g.segment_index(op.addr));
      ++counters_.erase_ops;
      break;
    case OpKind::kMassErase: {
      const std::size_t bank = bank_of(op.addr);
      for (std::size_t seg = 0; seg < g.n_segments(); ++seg)
        if (bank_of(g.segment_base(seg)) == bank) array_.erase_segment(seg);
      ++counters_.erase_ops;
      break;
    }
    case OpKind::kProgramWord:
      array_.program_word(op.addr, op.value);
      ++counters_.program_ops;
      break;
  }
}

FlashStatus FlashController::emergency_exit() {
  if (!op_) return FlashStatus::kNotBusy;
  abort_op();
  return FlashStatus::kOk;
}

void FlashController::abort_op() {
  const Op op = *op_;
  op_.reset();
  const auto& g = geometry();
  // Pulse time excludes the voltage bring-up window at the start.
  const SimTime elapsed = clock_.now() - op.start;
  const SimTime pulse = std::max(SimTime{}, elapsed - timing_.t_vpp_setup);
  switch (op.kind) {
    case OpKind::kSegmentErase:
      array_.partial_erase_segment(g.segment_index(op.addr), pulse.as_us());
      ++counters_.erase_ops;
      break;
    case OpKind::kMassErase: {
      const std::size_t bank = bank_of(op.addr);
      for (std::size_t seg = 0; seg < g.n_segments(); ++seg)
        if (bank_of(g.segment_base(seg)) == bank)
          array_.partial_erase_segment(seg, pulse.as_us());
      ++counters_.erase_ops;
      break;
    }
    case OpKind::kProgramWord: {
      const double frac = std::min(
          1.0, pulse.as_us() / timing_.t_prog_word.as_us());
      if (frac > 0.0)
        array_.partial_program_word(op.addr, op.value, frac);
      ++counters_.program_ops;
      break;
    }
  }
}

FlashStatus FlashController::wait_complete() {
  if (!op_) return FlashStatus::kNotBusy;
  const SimTime dt = op_->deadline - clock_.now();
  advance(dt > SimTime{} ? dt : SimTime{});
  if (op_) complete_op();  // deadline exactly reached
  return FlashStatus::kOk;
}

FlashStatus FlashController::segment_erase(Addr addr) {
  if (auto st = begin_segment_erase(addr); st != FlashStatus::kOk) return st;
  return wait_complete();
}

FlashStatus FlashController::segment_erase_auto(Addr addr, SimTime* pulse_out) {
  if (auto st = check_command(addr); st != FlashStatus::kOk) return st;
  const std::size_t seg = geometry().segment_index(addr);
  const double needed_us = array_.time_to_full_erase_us(seg);
  // Guard band over per-pulse jitter (sigma ~2%: x1.2 is ~9 sigma) plus a
  // fixed verify margin.
  const SimTime pulse =
      needed_us > 0.0 ? SimTime::from_us(needed_us * 1.2 + 3.0) : SimTime::us(2);
  if (pulse_out) *pulse_out = pulse;
  if (pulse >= timing_.t_erase_segment) return segment_erase(addr);
  return partial_segment_erase(addr, pulse);
}

FlashStatus FlashController::partial_segment_erase(Addr addr, SimTime t_pe) {
  if (t_pe < SimTime{}) return FlashStatus::kInvalidArgument;
  if (t_pe >= timing_.t_erase_segment) return segment_erase(addr);
  if (auto st = begin_segment_erase(addr); st != FlashStatus::kOk) return st;
  advance(timing_.t_vpp_setup + t_pe);
  return emergency_exit();
}

FlashStatus FlashController::mass_erase(Addr addr) {
  if (auto st = begin_mass_erase(addr); st != FlashStatus::kOk) return st;
  return wait_complete();
}

FlashStatus FlashController::program_word(Addr addr, std::uint16_t value) {
  if (auto st = begin_program_word(addr, value); st != FlashStatus::kOk)
    return st;
  return wait_complete();
}

FlashStatus FlashController::program_block(Addr addr,
                                           const std::vector<std::uint16_t>& words) {
  if (words.empty()) return FlashStatus::kInvalidArgument;
  if (auto st = check_command(addr); st != FlashStatus::kOk) return st;
  if (!geometry().word_aligned(addr)) return FlashStatus::kInvalidAddress;
  const auto& g = geometry();
  const Addr last = addr + static_cast<Addr>((words.size() - 1) * g.word_bytes);
  if (!g.valid(last) || g.segment_index(addr) != g.segment_index(last))
    return FlashStatus::kInvalidArgument;  // block must stay in one segment
  clock_.advance(timing_.t_vpp_setup);
  // One kernel sweep + one clock advance; the integer-ns clock makes
  // n * t_prog_word_block exactly equal to n per-word advances.
  array_.program_words(addr, words.data(), words.size());
  clock_.advance(timing_.t_prog_word_block *
                 static_cast<std::int64_t>(words.size()));
  counters_.program_ops += words.size();
  clock_.advance(timing_.t_vpp_setup);
  return FlashStatus::kOk;
}

FlashStatus FlashController::partial_program_word(Addr addr, std::uint16_t value,
                                                  SimTime t_prog) {
  if (t_prog < SimTime{}) return FlashStatus::kInvalidArgument;
  if (t_prog >= timing_.t_prog_word) return program_word(addr, value);
  if (auto st = begin_program_word(addr, value); st != FlashStatus::kOk)
    return st;
  advance(timing_.t_vpp_setup + t_prog);
  return emergency_exit();
}

std::uint16_t FlashController::read_word(Addr addr) {
  if (!geometry().valid(addr) || !geometry().word_aligned(addr)) {
    accv_ = true;
    return 0xFFFF;
  }
  if (op_ && bank_of(op_->addr) == bank_of(addr)) {
    accv_ = true;  // reading the bank being mutated
    return 0xFFFF;
  }
  clock_.advance(timing_.t_read_word);
  ++counters_.read_ops;
  return array_.read_word(addr);
}

BitVec FlashController::read_segment(Addr addr, int n_reads) {
  const auto& g = geometry();
  if (!g.valid(addr) || !g.word_aligned(addr) || n_reads <= 0) {
    accv_ = true;
    return BitVec();
  }
  const std::size_t seg = g.segment_index(addr);
  const std::size_t n_cells = g.segment_cells(seg);
  if (op_ && bank_of(op_->addr) == bank_of(addr)) {
    accv_ = true;  // every word read would have come back 0xFFFF
    return BitVec(n_cells, true);
  }
  const std::size_t n_words = n_cells / g.bits_per_word();
  clock_.advance(timing_.t_read_word *
                 static_cast<std::int64_t>(n_words * static_cast<std::size_t>(n_reads)));
  counters_.read_ops += n_words * static_cast<std::size_t>(n_reads);
  return array_.read_segment_majority(seg, n_reads);
}

SimTime FlashController::imprint_cycle_time(std::size_t seg) const {
  const std::size_t words =
      array_.geometry().segment_bytes(seg) / array_.geometry().word_bytes;
  const SimTime erase = timing_.t_vpp_setup + timing_.t_erase_segment +
                        timing_.t_vpp_setup;
  const SimTime prog = timing_.t_vpp_setup +
                       timing_.t_prog_word_block * static_cast<std::int64_t>(words) +
                       timing_.t_vpp_setup;
  return erase + prog;
}

FlashStatus FlashController::wear_segment(Addr addr, double cycles,
                                          const BitVec* pattern) {
  if (busy()) return FlashStatus::kBusy;
  if (locked_) return FlashStatus::kLocked;
  if (!geometry().valid(addr)) return FlashStatus::kInvalidAddress;
  if (cycles < 0.0) return FlashStatus::kInvalidArgument;
  const std::size_t seg = geometry().segment_index(addr);
  array_.wear_segment(seg, cycles, pattern);
  counters_.wear_pe_cycles += cycles;
  clock_.advance(imprint_cycle_time(seg) * static_cast<std::int64_t>(cycles));
  return FlashStatus::kOk;
}

}  // namespace flashmark
