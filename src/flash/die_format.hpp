// Die-file format v3: versioned, CRC-framed, 64-byte-aligned column blobs.
//
// Where formats v1/v2 (mcu/persist.hpp) re-serialize every cell field by
// field through a text stream, v3 stores the die as the SoA columns the
// physics kernels already operate on (phys/kernels.hpp): one contiguous
// little-endian blob per (segment, column), each CRC-32 framed and 64-byte
// aligned. Saving a die is a memcpy of its columns; loading is mmap +
// validate — cell data is not touched until a segment is first used, when
// the array hydrates it with one memcpy per column (flash/array.cpp). This
// is what makes checkpoint/resume cheap enough for 10^5..10^6-die fleets
// (src/store/die_store.hpp).
//
// The byte-exact layout is specified normatively in docs/FORMATS.md — a
// reader must be writable from that document alone. Summary:
//
//   FileHeader (192 B)  magic "FMKDIE3\n", version, family, die seed,
//                       clock, temperature bits, noise-RNG state, column
//                       table location, CRC-32 over the header itself
//   column table        one 32 B entry per blob: (segment, column id,
//                       offset, size, element size, CRC-32), the whole
//                       table CRC-32-framed from the header
//   blob region         raw little-endian column arrays, every blob
//                       64-byte aligned, zero padding between
//
// Validation is eager and total: DieFileMap::open checks the header CRC,
// the table CRC, every blob CRC, and every per-cell domain rule (the same
// rules Cell::restore enforces) before returning. A map that opens is safe
// to hydrate from with plain memcpys; a file that fails any check is
// rejected with an IoStatus cause — truncated or bit-flipped inputs must
// never crash (tests/store_test.cpp fuzzes this).
//
// Endianness: all integers and IEEE-754 values are little-endian on disk.
// The header is encoded/decoded bytewise (host-order independent); the
// column blobs are memcpy'd, so the v3 reader/writer refuse to run on a
// big-endian host (IoStatus failure, not a wrong answer) — every deployment
// target is little-endian, and the text formats remain available.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/fsio.hpp"
#include "util/rng.hpp"

namespace flashmark {

class FlashArray;

namespace v3 {

/// File magic: text-mode mangling of the trailing '\n' breaks the match.
inline constexpr std::array<std::uint8_t, 8> kMagic = {'F', 'M', 'K', 'D',
                                                       'I', 'E', '3', '\n'};
inline constexpr std::uint32_t kVersion = 3;
inline constexpr std::uint32_t kHeaderBytes = 192;
inline constexpr std::uint32_t kTableEntryBytes = 32;
inline constexpr std::size_t kBlobAlign = 64;
inline constexpr std::size_t kFamilyBytes = 32;

/// Per-cell column identifiers. The on-disk id is the enum value; ids not
/// listed here are reserved for future writers and are skipped by this
/// reader (forward compatibility — see docs/FORMATS.md).
enum class ColumnId : std::uint32_t {
  kTteFreshUs = 0,     ///< f32
  kSusceptibility = 1, ///< f32
  kEffCycles = 2,      ///< f64
  kAnnealed = 3,       ///< f64
  kLevel = 4,          ///< u8 (CellLevel raw value)
  kDefect = 5,         ///< u8 (CellDefect raw value)
  kMetastable = 6,     ///< u8 (0/1)
  kMarginUs = 7,       ///< f32
};
inline constexpr std::uint32_t kNumColumns = 8;

/// Bytes per element of a known column (4, 8, or 1).
std::uint32_t column_elem_size(ColumnId c);

}  // namespace v3

/// A validated, read-only v3 die file: the mmap (or heap fallback) plus the
/// parsed header and a per-segment pointer table into the blob region.
///
/// `open` performs *all* integrity and domain validation up front, so every
/// accessor on a successfully opened map is infallible and every column
/// pointer may be memcpy'd without further checks. The map is immutable and
/// shareable: FlashArray holds a shared_ptr and hydrates segments lazily;
/// the v3 writer copies clean segments' bytes straight back out of it.
class DieFileMap {
 public:
  ~DieFileMap();
  DieFileMap(const DieFileMap&) = delete;
  DieFileMap& operator=(const DieFileMap&) = delete;

  /// Map and validate `path`. On any failure — unreadable file, bad magic,
  /// CRC mismatch, malformed table, out-of-domain cell values — returns
  /// nullptr and puts the cause in `*status`. Never throws, never crashes
  /// on hostile input.
  static std::shared_ptr<const DieFileMap> open(const std::string& path,
                                                IoStatus* status);

  /// Validate an in-memory v3 image (testing / non-file transports). The
  /// bytes are copied into the map (no mmap).
  static std::shared_ptr<const DieFileMap> from_bytes(std::string bytes,
                                                      IoStatus* status);

  // --- header ------------------------------------------------------------
  const std::string& family() const { return family_; }
  std::uint64_t die_seed() const { return die_seed_; }
  std::int64_t clock_ns() const { return clock_ns_; }
  double temperature_c() const { return temperature_c_; }
  const Rng::State& noise_state() const { return noise_; }
  std::uint32_t n_segments() const { return n_segments_; }

  // --- columns -----------------------------------------------------------
  bool has_segment(std::size_t seg) const {
    return segs_.find(seg) != segs_.end();
  }
  std::size_t n_present_segments() const { return segs_.size(); }
  /// Validated little-endian bytes of one column of a present segment.
  const std::uint8_t* column_data(std::size_t seg, v3::ColumnId c) const {
    return segs_.at(seg).col[static_cast<std::uint32_t>(c)];
  }
  /// Element count of every column of segment `seg` (== its cell count);
  /// 0 for an absent segment.
  std::size_t segment_cells(std::size_t seg) const {
    const auto it = segs_.find(seg);
    return it == segs_.end() ? 0 : it->second.cells;
  }

  /// True when the file is a live mmap (resume = map-and-go); false when it
  /// was read into a heap buffer (mmap unavailable / non-regular file).
  bool mapped() const { return map_base_ != nullptr; }
  std::size_t file_bytes() const { return size_; }

 private:
  DieFileMap() = default;
  static std::shared_ptr<const DieFileMap> validate(
      std::shared_ptr<DieFileMap> m, IoStatus* status);
  const std::uint8_t* data() const;

  // Exactly one of these backs the bytes.
  void* map_base_ = nullptr;  ///< mmap base (munmap'd by the destructor)
  std::string buffer_;        ///< heap fallback
  std::size_t size_ = 0;

  std::string family_;
  std::uint64_t die_seed_ = 0;
  std::int64_t clock_ns_ = 0;
  double temperature_c_ = 25.0;
  Rng::State noise_;
  std::uint32_t n_segments_ = 0;
  /// One entry per *present* segment. Keyed sparsely: the header's
  /// n_segments is attacker-controlled, so allocations here are bounded by
  /// the column table's entry count (which must fit inside the file), not
  /// by a 192-byte header's claim of up to 2^20 segments.
  struct SegmentColumns {
    std::array<const std::uint8_t*, v3::kNumColumns> col{};
    std::size_t cells = 0;
    std::uint32_t have = 0;  ///< bitmask of known columns seen so far
  };
  std::unordered_map<std::size_t, SegmentColumns> segs_;
};

/// Serialize complete die state as a v3 file image. The array supplies the
/// cell columns, temperature, die seed, and noise-RNG state; `family` and
/// `clock_ns` come from the owning device (mcu/persist.cpp passes them).
/// Columns of hydrated segments are memcpy'd from the SoA arrays; columns of
/// segments still backed by an open DieFileMap are copied straight from the
/// map (they were validated at open and cannot have changed — dirty
/// segments are hydrated by definition). Untouched lazy segments are
/// omitted, as in v1/v2: they re-manufacture identically from the die seed.
/// Throws std::runtime_error on a big-endian host or an over-long family.
std::string serialize_die_v3(const FlashArray& array, const std::string& family,
                             std::int64_t clock_ns);

}  // namespace flashmark
