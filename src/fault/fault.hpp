// Deterministic fault injection — exercising the pipelines against the
// misbehaving silicon the paper is actually about.
//
// The whole premise of Flashmark is that counterfeit and recycled dies
// *misbehave*: stuck cells, weak pulses, marginal supplies. A detection
// pipeline that only ever saw healthy simulated silicon has never earned the
// "survives degraded cells" claim the related watermarking work stresses
// (Watermarked ReRAM, NAND-PUF disturbance studies). This layer injects that
// misbehavior reproducibly:
//
//   * FaultConfig  — the fault *profile*: rates and intensities.
//   * FaultPlan    — the fault *instance* for one die: concrete stuck cells
//                    and a private event RNG stream, derived purely from
//                    (config, die seed, geometry). Same inputs, same faults,
//                    on every platform and thread count — the fleet
//                    determinism contract (docs/REPRODUCIBILITY.md) extends
//                    to faulted runs unchanged.
//   * FaultyHal    — a FlashHal decorator applying the plan: stuck-at-0/1
//                    cells pin read bits, read-noise bursts flip them
//                    transiently, erase/program pulses fail silently
//                    (undershoot / drop), and power-loss events abort a
//                    mutating operation mid-flight with TransientFlashError.
//
// Consumers survive the injected faults with bounded retry
// (ImprintOptions/ExtractOptions::max_retries), read-back verification
// (ExtractOptions::verify_program) and ECC (WatermarkSpec/VerifyOptions::
// ecc); the fleet layer classifies the outcome per die (clean / degraded /
// failed) instead of aborting the batch.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "flash/geometry.hpp"
#include "flash/hal.hpp"
#include "util/rng.hpp"

namespace flashmark::fault {

/// Power dropped mid-operation. The affected cells keep whatever partial
/// charge the truncated pulse left; software sees the exception and — if it
/// has retry budget — reissues the work after "power returns".
class PowerLossError : public TransientFlashError {
 public:
  explicit PowerLossError(const std::string& op)
      : TransientFlashError("power loss during " + op) {}
};

/// Fault profile: rates and intensities, no die-specific state. A profile
/// with every rate at zero is inert (FaultyHal passes straight through).
struct FaultConfig {
  // -- permanent cell defects (drawn once per die by FaultPlan) ------------
  /// Expected stuck-at-0 cells per main segment (Poisson-distributed).
  double stuck_at0_per_segment = 0.0;
  /// Expected stuck-at-1 cells per main segment (Poisson-distributed).
  double stuck_at1_per_segment = 0.0;

  // -- transient read noise ------------------------------------------------
  /// Probability that a word read starts a noise burst.
  double read_burst_p = 0.0;
  /// Word reads affected once a burst starts (including the triggering one).
  std::uint32_t read_burst_len = 32;
  /// Per-bit flip probability while a burst is active.
  double read_burst_flip_p = 0.02;

  // -- pulse failures (silent, caught by verify/vote/ECC) ------------------
  /// Probability an erase pulse (full, auto or partial) undershoots: only
  /// `erase_fail_fraction` of the requested pulse time is delivered.
  double erase_fail_p = 0.0;
  double erase_fail_fraction = 0.25;
  /// Probability a program-word pulse drops entirely (cell unchanged). In
  /// block mode the draw is per word.
  double program_fail_p = 0.0;

  // -- power-loss aborts (loud: TransientFlashError) -----------------------
  /// Probability a mutating operation aborts mid-flight with
  /// PowerLossError after delivering a random fraction of its effect.
  double power_loss_p = 0.0;
  /// Injection stops after this many power losses on the die, so a bounded
  /// retry budget can always make progress. Raise it (with max_retries low)
  /// to exercise retry exhaustion.
  std::uint32_t max_power_losses = 2;

  /// True if any fault mechanism is enabled.
  bool any() const {
    return stuck_at0_per_segment > 0.0 || stuck_at1_per_segment > 0.0 ||
           read_burst_p > 0.0 || erase_fail_p > 0.0 || program_fail_p > 0.0 ||
           power_loss_p > 0.0;
  }
};

/// Injection totals for one die. Observability only: the simulation never
/// reads these back (same write-only rule as FlashOpCounters).
struct FaultCounters {
  std::uint64_t stuck_cells = 0;     ///< cells pinned by the plan (static)
  std::uint64_t stuck_reads = 0;     ///< reads where a stuck mask changed bits
  std::uint64_t noise_bursts = 0;    ///< read-noise bursts started
  std::uint64_t noise_bits = 0;      ///< bits flipped by bursts
  std::uint64_t erase_fails = 0;     ///< undershot erase pulses
  std::uint64_t program_fails = 0;   ///< dropped program-word pulses
  std::uint64_t power_losses = 0;    ///< aborted operations

  /// Injected fault *events* (everything except the static stuck_cells
  /// inventory) — what DieCounters::faults_injected aggregates.
  std::uint64_t events() const {
    return stuck_reads + noise_bursts + erase_fails + program_fails +
           power_losses;
  }
};

/// The concrete faults of one die: stuck-cell masks plus the private RNG
/// stream all per-operation event draws come from.
///
/// Determinism: for_die derives everything from (config, die_seed, geometry)
/// through the repo's own generators — the stream is
/// Rng(die_seed).split(kFaultStreamTag), decorrelated from the die's
/// manufacturing-variation streams (FlashArray uses small segment-index
/// tags). Because one FaultyHal serves one die on one thread, the event
/// sequence is a pure function of the die's operation sequence, and faulted
/// batches stay bitwise thread-count-invariant.
class FaultPlan {
 public:
  /// Stream tag reserved for fault plans (far above any segment index).
  static constexpr std::uint64_t kFaultStreamTag = 0xFA017'F417ull;

  /// Build the plan of die `die_seed` under profile `cfg`.
  static FaultPlan for_die(const FaultConfig& cfg, std::uint64_t die_seed,
                           const FlashGeometry& geometry);

  const FaultConfig& config() const { return cfg_; }

  /// (clear-mask, set-mask) for the word at `addr`: stuck-at-0 bits are
  /// cleared, stuck-at-1 bits are set. Identity masks when no cell of the
  /// word is stuck.
  std::pair<std::uint16_t, std::uint16_t> stuck_masks(Addr addr) const;

  /// Number of stuck cells drawn for this die.
  std::uint64_t stuck_cells() const { return n_stuck_; }

  /// The per-operation event stream (consumed by FaultyHal).
  Rng& events() { return events_; }

 private:
  FaultConfig cfg_;
  // word address -> (and-mask for stuck-at-0, or-mask for stuck-at-1)
  std::map<Addr, std::pair<std::uint16_t, std::uint16_t>> stuck_;
  std::uint64_t n_stuck_ = 0;
  Rng events_{0};
};

/// FlashHal decorator applying a FaultPlan to every operation. Owns its plan
/// (one FaultyHal == one die's degraded front end); the inner HAL must
/// outlive it.
class FaultyHal final : public FlashHal {
 public:
  FaultyHal(FlashHal& inner, FaultPlan plan)
      : inner_(inner), plan_(std::move(plan)) {
    counters_.stuck_cells = plan_.stuck_cells();
  }

  const FlashGeometry& geometry() const override { return inner_.geometry(); }
  const FlashTiming& timing() const override { return inner_.timing(); }
  SimTime now() const override { return inner_.now(); }

  void erase_segment(Addr addr) override;
  SimTime erase_segment_auto(Addr addr) override;
  void partial_erase_segment(Addr addr, SimTime t_pe) override;
  void program_word(Addr addr, std::uint16_t value) override;
  void partial_program_word(Addr addr, std::uint16_t value,
                            SimTime t_prog) override;
  void program_block(Addr addr,
                     const std::vector<std::uint16_t>& words) override;
  std::uint16_t read_word(Addr addr) override;
  void wear_segment(Addr addr, double cycles,
                    const BitVec* pattern = nullptr) override;

  const FaultCounters& counters() const { return counters_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  /// Draw a power-loss event (bounded by config().max_power_losses).
  bool draw_power_loss();
  /// Draw an erase undershoot; returns the delivered pulse time (== t when
  /// the pulse is healthy).
  SimTime draw_erase_pulse(SimTime t);

  FlashHal& inner_;
  FaultPlan plan_;
  FaultCounters counters_;
  std::uint32_t burst_reads_left_ = 0;
};

}  // namespace flashmark::fault
