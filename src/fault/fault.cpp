#include "fault/fault.hpp"

#include <algorithm>

namespace flashmark::fault {

FaultPlan FaultPlan::for_die(const FaultConfig& cfg, std::uint64_t die_seed,
                             const FlashGeometry& geometry) {
  FaultPlan plan;
  plan.cfg_ = cfg;

  // One private stream per die, decorrelated from the manufacturing-
  // variation streams by the tag (FlashArray splits on small segment
  // indices; kFaultStreamTag is far outside that range). Stuck cells are
  // drawn first from the same stream, then the remainder becomes the
  // per-operation event stream.
  Rng stream = Rng(die_seed).split(kFaultStreamTag);

  const std::size_t bpw = geometry.bits_per_word();
  auto pin_cells = [&](double per_segment, bool stuck_at1) {
    if (per_segment <= 0.0) return;
    for (std::size_t seg = 0; seg < geometry.n_main_segments(); ++seg) {
      const std::uint64_t n = stream.poisson(per_segment);
      const std::size_t cells = geometry.segment_cells(seg);
      const Addr base = geometry.segment_base(seg);
      for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint64_t cell = stream.uniform_u64(cells);
        const Addr word_addr =
            base + static_cast<Addr>(cell / bpw * geometry.word_bytes);
        const auto bit = static_cast<std::uint16_t>(1u << (cell % bpw));
        auto& masks = plan.stuck_
                          .try_emplace(word_addr, std::uint16_t{0xFFFF},
                                       std::uint16_t{0x0000})
                          .first->second;
        if (stuck_at1)
          masks.second |= bit;
        else
          masks.first &= static_cast<std::uint16_t>(~bit);
        ++plan.n_stuck_;
      }
    }
  };
  pin_cells(cfg.stuck_at0_per_segment, /*stuck_at1=*/false);
  pin_cells(cfg.stuck_at1_per_segment, /*stuck_at1=*/true);

  plan.events_ = stream;
  return plan;
}

std::pair<std::uint16_t, std::uint16_t> FaultPlan::stuck_masks(
    Addr addr) const {
  const auto it = stuck_.find(addr);
  if (it == stuck_.end()) return {0xFFFF, 0x0000};
  return it->second;
}

bool FaultyHal::draw_power_loss() {
  const FaultConfig& cfg = plan_.config();
  if (cfg.power_loss_p <= 0.0 ||
      counters_.power_losses >= cfg.max_power_losses)
    return false;
  if (!plan_.events().bernoulli(cfg.power_loss_p)) return false;
  ++counters_.power_losses;
  return true;
}

SimTime FaultyHal::draw_erase_pulse(SimTime t) {
  const FaultConfig& cfg = plan_.config();
  if (cfg.erase_fail_p > 0.0 && plan_.events().bernoulli(cfg.erase_fail_p)) {
    ++counters_.erase_fails;
    return SimTime::ns(static_cast<std::int64_t>(
        static_cast<double>(t.as_ns()) * cfg.erase_fail_fraction));
  }
  return t;
}

void FaultyHal::erase_segment(Addr addr) {
  const SimTime nominal = timing().t_erase_segment;
  if (draw_power_loss()) {
    // Power dropped partway through the pulse: deliver a random fraction of
    // the nominal erase time, then surface the abort.
    const double frac = plan_.events().uniform();
    inner_.partial_erase_segment(
        addr, SimTime::ns(static_cast<std::int64_t>(
                  static_cast<double>(nominal.as_ns()) * frac)));
    throw PowerLossError("erase_segment");
  }
  const SimTime pulse = draw_erase_pulse(nominal);
  if (pulse == nominal)
    inner_.erase_segment(addr);
  else
    inner_.partial_erase_segment(addr, pulse);  // silent undershoot
}

SimTime FaultyHal::erase_segment_auto(Addr addr) {
  if (draw_power_loss()) {
    const double frac = plan_.events().uniform();
    const SimTime pulse = SimTime::ns(static_cast<std::int64_t>(
        static_cast<double>(timing().t_erase_segment.as_ns()) * frac));
    inner_.partial_erase_segment(addr, pulse);
    throw PowerLossError("erase_segment_auto");
  }
  const FaultConfig& cfg = plan_.config();
  if (cfg.erase_fail_p > 0.0 && plan_.events().bernoulli(cfg.erase_fail_p)) {
    // The verify logic of the auto-erase is what fails: the pulse exits far
    // too early and reports the undershot time it used.
    ++counters_.erase_fails;
    const SimTime pulse = SimTime::ns(static_cast<std::int64_t>(
        static_cast<double>(timing().t_erase_segment.as_ns()) *
        cfg.erase_fail_fraction));
    inner_.partial_erase_segment(addr, pulse);
    return pulse;
  }
  return inner_.erase_segment_auto(addr);
}

void FaultyHal::partial_erase_segment(Addr addr, SimTime t_pe) {
  if (draw_power_loss()) {
    const double frac = plan_.events().uniform();
    inner_.partial_erase_segment(
        addr, SimTime::ns(static_cast<std::int64_t>(
                  static_cast<double>(t_pe.as_ns()) * frac)));
    throw PowerLossError("partial_erase_segment");
  }
  inner_.partial_erase_segment(addr, draw_erase_pulse(t_pe));
}

void FaultyHal::program_word(Addr addr, std::uint16_t value) {
  if (draw_power_loss()) {
    // A truncated program pulse leaves the cells partially charged.
    const double frac = plan_.events().uniform();
    inner_.partial_program_word(
        addr, value,
        SimTime::ns(static_cast<std::int64_t>(
            static_cast<double>(timing().t_prog_word.as_ns()) * frac)));
    throw PowerLossError("program_word");
  }
  const FaultConfig& cfg = plan_.config();
  if (cfg.program_fail_p > 0.0 &&
      plan_.events().bernoulli(cfg.program_fail_p)) {
    // Dropped pulse: programming 0xFFFF clears no bits — the word is
    // untouched but the command time is still spent.
    ++counters_.program_fails;
    inner_.program_word(addr, 0xFFFF);
    return;
  }
  inner_.program_word(addr, value);
}

void FaultyHal::partial_program_word(Addr addr, std::uint16_t value,
                                     SimTime t_prog) {
  if (draw_power_loss()) {
    const double frac = plan_.events().uniform();
    inner_.partial_program_word(
        addr, value,
        SimTime::ns(static_cast<std::int64_t>(
            static_cast<double>(t_prog.as_ns()) * frac)));
    throw PowerLossError("partial_program_word");
  }
  const FaultConfig& cfg = plan_.config();
  if (cfg.program_fail_p > 0.0 &&
      plan_.events().bernoulli(cfg.program_fail_p)) {
    ++counters_.program_fails;
    inner_.partial_program_word(addr, 0xFFFF, t_prog);
    return;
  }
  inner_.partial_program_word(addr, value, t_prog);
}

void FaultyHal::program_block(Addr addr,
                              const std::vector<std::uint16_t>& words) {
  if (draw_power_loss()) {
    // The block write stops after a random word count; everything before
    // the cut was committed, everything after never happened.
    const std::uint64_t cut = plan_.events().uniform_u64(words.size() + 1);
    if (cut > 0)
      inner_.program_block(
          addr, std::vector<std::uint16_t>(words.begin(),
                                           words.begin() +
                                               static_cast<long>(cut)));
    throw PowerLossError("program_block");
  }
  const FaultConfig& cfg = plan_.config();
  if (cfg.program_fail_p <= 0.0) {
    inner_.program_block(addr, words);
    return;
  }
  // Per-word pulse-drop draws. A dropped word becomes 0xFFFF (clears no
  // bits), so the block command shape — and its amortized timing — is
  // preserved while the cell contents miss the update.
  std::vector<std::uint16_t> delivered = words;
  for (auto& w : delivered) {
    if (plan_.events().bernoulli(cfg.program_fail_p)) {
      ++counters_.program_fails;
      w = 0xFFFF;
    }
  }
  inner_.program_block(addr, delivered);
}

std::uint16_t FaultyHal::read_word(Addr addr) {
  std::uint16_t v = inner_.read_word(addr);
  const FaultConfig& cfg = plan_.config();

  // Transient noise burst: once triggered, the next `read_burst_len` reads
  // (this one included) flip bits independently.
  if (burst_reads_left_ == 0 && cfg.read_burst_p > 0.0 &&
      plan_.events().bernoulli(cfg.read_burst_p)) {
    burst_reads_left_ = std::max<std::uint32_t>(1, cfg.read_burst_len);
    ++counters_.noise_bursts;
  }
  if (burst_reads_left_ > 0) {
    --burst_reads_left_;
    const std::size_t bits = geometry().bits_per_word();
    for (std::size_t b = 0; b < bits; ++b) {
      if (plan_.events().bernoulli(cfg.read_burst_flip_p)) {
        v ^= static_cast<std::uint16_t>(1u << b);
        ++counters_.noise_bits;
      }
    }
  }

  // Stuck cells win over everything — they are physical, not transient.
  const auto [and_mask, or_mask] = plan_.stuck_masks(addr);
  const auto pinned = static_cast<std::uint16_t>((v & and_mask) | or_mask);
  if (pinned != v) ++counters_.stuck_reads;
  return pinned;
}

void FaultyHal::wear_segment(Addr addr, double cycles, const BitVec* pattern) {
  if (draw_power_loss()) {
    // The batch-wear accelerator stands in for a long real-world loop, so a
    // power loss lands a random fraction of the cycles before aborting.
    const double frac = plan_.events().uniform();
    if (frac > 0.0) inner_.wear_segment(addr, cycles * frac, pattern);
    throw PowerLossError("wear_segment");
  }
  inner_.wear_segment(addr, cycles, pattern);
}

}  // namespace flashmark::fault
