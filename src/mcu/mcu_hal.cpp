#include "mcu/mcu_hal.hpp"

namespace flashmark {

using namespace fctl;

template <typename Fn>
void McuFlashHal::with_mode(std::uint16_t mode_bits, Fn&& trigger) {
  mod_.write_reg(kFctl3, kFwKeyWrite);              // clear LOCK
  mod_.write_reg(kFctl1, kFwKeyWrite | mode_bits);  // arm mode
  trigger();
  mod_.write_reg(kFctl1, kFwKeyWrite);              // disarm
  mod_.write_reg(kFctl3, kFwKeyWrite | kLock);      // re-lock
}

void McuFlashHal::erase_segment(Addr addr) {
  with_mode(kErase, [&] {
    mod_.bus_write_word(addr, 0);  // dummy write starts the erase
    mod_.wait_while_busy(poll_quantum_);
  });
  if (mod_.controller().access_violation())
    throw FlashHalError("mcu erase_segment", FlashStatus::kInvalidAddress);
}

SimTime McuFlashHal::erase_segment_auto(Addr addr) {
  // The firmware driver cannot see cell analog state; it relies on the
  // controller's erase-verify service, exposed here through the same
  // synchronous entry the direct HAL uses.
  SimTime pulse;
  mod_.write_reg(kFctl3, kFwKeyWrite);
  const FlashStatus st = mod_.controller().segment_erase_auto(addr, &pulse);
  mod_.write_reg(kFctl3, kFwKeyWrite | kLock);
  if (st != FlashStatus::kOk) throw FlashHalError("mcu erase_segment_auto", st);
  return pulse;
}

void McuFlashHal::partial_erase_segment(Addr addr, SimTime t_pe) {
  if (t_pe >= timing().t_erase_segment) {
    erase_segment(addr);
    return;
  }
  with_mode(kErase, [&] {
    mod_.bus_write_word(addr, 0);
    // Precise delay from a hardware timer, then emergency exit. The pulse
    // starts after the voltage generators come up.
    mod_.controller().advance(timing().t_vpp_setup + t_pe);
    mod_.write_reg(kFctl3, kFwKeyWrite | kEmex);
  });
}

void McuFlashHal::program_word(Addr addr, std::uint16_t value) {
  with_mode(kWrt, [&] {
    mod_.bus_write_word(addr, value);
    mod_.wait_while_busy(poll_quantum_);
  });
}

void McuFlashHal::partial_program_word(Addr addr, std::uint16_t value,
                                       SimTime t_prog) {
  if (t_prog >= timing().t_prog_word) {
    program_word(addr, value);
    return;
  }
  with_mode(kWrt, [&] {
    mod_.bus_write_word(addr, value);
    mod_.controller().advance(timing().t_vpp_setup + t_prog);
    mod_.write_reg(kFctl3, kFwKeyWrite | kEmex);
  });
}

void McuFlashHal::program_block(Addr addr,
                                const std::vector<std::uint16_t>& words) {
  // The register front end has no block engine of its own; it delegates to
  // the controller's block-write service under BLKWRT, like the ROM-resident
  // routine on real parts.
  mod_.write_reg(kFctl3, kFwKeyWrite);
  mod_.write_reg(kFctl1, kFwKeyWrite | kBlkWrt);
  const FlashStatus st = mod_.controller().program_block(addr, words);
  mod_.write_reg(kFctl1, kFwKeyWrite);
  mod_.write_reg(kFctl3, kFwKeyWrite | kLock);
  if (st != FlashStatus::kOk) throw FlashHalError("mcu program_block", st);
}

std::uint16_t McuFlashHal::read_word(Addr addr) {
  const std::uint16_t v = mod_.bus_read_word(addr);
  if (mod_.controller().access_violation()) {
    mod_.controller().clear_access_violation();
    throw FlashHalError("mcu read_word", FlashStatus::kInvalidAddress);
  }
  return v;
}

void McuFlashHal::wear_segment(Addr addr, double cycles,
                               const BitVec* pattern) {
  mod_.write_reg(kFctl3, kFwKeyWrite);
  const FlashStatus st = mod_.controller().wear_segment(addr, cycles, pattern);
  mod_.write_reg(kFctl3, kFwKeyWrite | kLock);
  if (st != FlashStatus::kOk) throw FlashHalError("mcu wear_segment", st);
}

}  // namespace flashmark
