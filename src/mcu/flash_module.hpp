// Register-level flash-module front end, modeled after the MSP430F5xx
// flash controller programming model (paper §II.B).
//
// The point of this layer is fidelity to the paper's deployment story:
// watermarks are written and read "from the flash controller with standard
// system commands". Everything the core library needs is reachable through
// three memory-mapped registers and plain bus reads/writes:
//
//   FCTL1 (0x0140): FWKEY | BLKWRT | WRT | MERAS | ERASE   (mode bits)
//   FCTL3 (0x0144): FWKEY | EMEX | LOCK | ACCVIFG | KEYV | BUSY
//   FCTL4 (0x0146): reserved, reads 0 (kept for layout fidelity)
//
// Every write to FCTL1/FCTL3 must carry the FWKEY password (0xA5) in the
// high byte; a wrong key sets the sticky KEYV flag and the write is ignored
// (real silicon additionally resets the chip). With ERASE set, a dummy bus
// write anywhere inside a segment starts that segment's erase; with MERAS,
// a bank erase; with WRT, bus word-writes program words. EMEX aborts the
// operation in flight — the primitive partial erase is built on.
#pragma once

#include <cstdint>

#include "flash/controller.hpp"
#include "util/sim_time.hpp"

namespace flashmark {

namespace fctl {
// Register addresses (word access).
inline constexpr Addr kFctl1 = 0x0140;
inline constexpr Addr kFctl3 = 0x0144;
inline constexpr Addr kFctl4 = 0x0146;

// Password: high byte of every control-register write; reads back as 0x96xx.
inline constexpr std::uint16_t kFwKeyWrite = 0xA500;
inline constexpr std::uint16_t kFwKeyRead = 0x9600;

// FCTL1 bits.
inline constexpr std::uint16_t kErase = 0x0002;
inline constexpr std::uint16_t kMeras = 0x0004;
inline constexpr std::uint16_t kWrt = 0x0040;
inline constexpr std::uint16_t kBlkWrt = 0x0080;

// FCTL3 bits.
inline constexpr std::uint16_t kBusy = 0x0001;
inline constexpr std::uint16_t kKeyv = 0x0002;
inline constexpr std::uint16_t kAccvifg = 0x0004;
inline constexpr std::uint16_t kLock = 0x0010;
inline constexpr std::uint16_t kEmex = 0x0020;
}  // namespace fctl

class McuFlashModule {
 public:
  explicit McuFlashModule(FlashController& ctrl) : ctrl_(ctrl) {}

  /// Word read of a control register. Unknown register addresses read 0.
  std::uint16_t read_reg(Addr reg) const;

  /// Word write to a control register (password-checked).
  void write_reg(Addr reg, std::uint16_t value);

  /// CPU bus word write. Depending on the FCTL1 mode bits this triggers an
  /// erase (value ignored) or programs `value`. With no mode bits set the
  /// write is ignored (flash is ROM-like) and ACCVIFG is raised.
  void bus_write_word(Addr addr, std::uint16_t value);

  /// CPU bus word read (forwards the controller's busy-bank semantics).
  std::uint16_t bus_read_word(Addr addr);

  /// Spin-poll FCTL3.BUSY, advancing simulated time by `quantum` per poll,
  /// until the in-flight operation completes.
  void wait_while_busy(SimTime quantum = SimTime::us(1));

  bool key_violation() const { return keyv_; }
  void clear_key_violation() { keyv_ = false; }

  FlashController& controller() { return ctrl_; }

 private:
  FlashController& ctrl_;
  bool keyv_ = false;
  std::uint16_t fctl1_bits_ = 0;  // mode bits currently latched
};

}  // namespace flashmark
