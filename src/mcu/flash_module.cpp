#include "mcu/flash_module.hpp"

namespace flashmark {

using namespace fctl;

std::uint16_t McuFlashModule::read_reg(Addr reg) const {
  switch (reg) {
    case kFctl1:
      return kFwKeyRead | fctl1_bits_;
    case kFctl3: {
      std::uint16_t v = kFwKeyRead;
      if (ctrl_.busy()) v |= kBusy;
      if (ctrl_.locked()) v |= kLock;
      if (ctrl_.access_violation()) v |= kAccvifg;
      if (keyv_) v |= kKeyv;
      return v;
    }
    case kFctl4:
    default:
      return 0;
  }
}

void McuFlashModule::write_reg(Addr reg, std::uint16_t value) {
  if ((value & 0xFF00) != kFwKeyWrite) {
    keyv_ = true;  // wrong password: write ignored, sticky flag raised
    return;
  }
  const std::uint16_t bits = value & 0x00FF;
  switch (reg) {
    case kFctl1:
      // Mode bits may only be changed while no operation is in flight.
      if (!ctrl_.busy()) fctl1_bits_ = bits & (kErase | kMeras | kWrt | kBlkWrt);
      break;
    case kFctl3:
      if (bits & kEmex) ctrl_.emergency_exit();
      ctrl_.set_lock(bits & kLock);
      if (!(bits & kAccvifg)) ctrl_.clear_access_violation();
      if (!(bits & kKeyv)) keyv_ = false;
      break;
    default:
      break;
  }
}

void McuFlashModule::bus_write_word(Addr addr, std::uint16_t value) {
  if (fctl1_bits_ & kErase) {
    ctrl_.begin_segment_erase(addr);  // dummy write: value ignored
    return;
  }
  if (fctl1_bits_ & kMeras) {
    ctrl_.begin_mass_erase(addr);
    return;
  }
  if (fctl1_bits_ & (kWrt | kBlkWrt)) {
    ctrl_.begin_program_word(addr, value);
    return;
  }
  // ROM-like: plain stores to flash do nothing but flag a violation.
  (void)value;
  ctrl_.raise_access_violation();
}

std::uint16_t McuFlashModule::bus_read_word(Addr addr) {
  return ctrl_.read_word(addr);
}

void McuFlashModule::wait_while_busy(SimTime quantum) {
  while (ctrl_.busy()) ctrl_.advance(quantum);
}

}  // namespace flashmark
