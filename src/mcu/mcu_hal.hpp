// FlashHal implementation that drives the register-level MCU front end.
//
// Exercises the same code path a firmware driver would: unlock via FCTL3,
// arm the mode bits in FCTL1, trigger with bus writes, poll BUSY, use EMEX
// for partial operations. The core algorithms run unchanged over this HAL —
// the repository's demonstration of the paper's "standard digital
// interface" claim (tests/integration assert ControllerHal and McuFlashHal
// produce identical watermark behaviour).
#pragma once

#include "flash/hal.hpp"
#include "mcu/flash_module.hpp"

namespace flashmark {

class McuFlashHal final : public FlashHal {
 public:
  /// `poll_quantum` is the simulated cost of one BUSY poll iteration.
  explicit McuFlashHal(McuFlashModule& module,
                       SimTime poll_quantum = SimTime::us(1))
      : mod_(module), poll_quantum_(poll_quantum) {}

  const FlashGeometry& geometry() const override {
    return mod_.controller().geometry();
  }
  const FlashTiming& timing() const override {
    return mod_.controller().timing();
  }
  SimTime now() const override { return mod_.controller().now(); }

  void erase_segment(Addr addr) override;
  SimTime erase_segment_auto(Addr addr) override;
  void partial_erase_segment(Addr addr, SimTime t_pe) override;
  void program_word(Addr addr, std::uint16_t value) override;
  void partial_program_word(Addr addr, std::uint16_t value,
                            SimTime t_prog) override;
  void program_block(Addr addr,
                     const std::vector<std::uint16_t>& words) override;
  std::uint16_t read_word(Addr addr) override;
  void wear_segment(Addr addr, double cycles,
                    const BitVec* pattern = nullptr) override;

 private:
  /// Unlock, set FCTL1 mode bits, run `trigger`, then restore lock.
  template <typename Fn>
  void with_mode(std::uint16_t mode_bits, Fn&& trigger);

  McuFlashModule& mod_;
  SimTime poll_quantum_;
};

}  // namespace flashmark
