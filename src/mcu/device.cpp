#include "mcu/device.hpp"

namespace flashmark {

DeviceConfig DeviceConfig::msp430f5438() {
  DeviceConfig c;
  c.family = "MSP430F5438";
  c.geometry = FlashGeometry::msp430f5438();
  c.timing = FlashTiming::msp430f5438();
  c.phys = PhysParams::msp430_calibrated();
  return c;
}

DeviceConfig DeviceConfig::msp430f5529() {
  DeviceConfig c;
  c.family = "MSP430F5529";
  c.geometry = FlashGeometry::msp430f5529();
  c.timing = FlashTiming::msp430f5529();
  c.phys = PhysParams::msp430_calibrated();
  return c;
}

Device::Device(DeviceConfig config, std::uint64_t die_seed)
    : config_(std::move(config)), die_seed_(die_seed) {
  array_ = std::make_unique<FlashArray>(config_.geometry, config_.phys,
                                        die_seed_);
  array_->set_kernel_mode(config_.kernel_mode);
  ctrl_ = std::make_unique<FlashController>(*array_, config_.timing, clock_);
  module_ = std::make_unique<McuFlashModule>(*ctrl_);
  direct_hal_ = std::make_unique<ControllerHal>(*ctrl_);
  mcu_hal_ = std::make_unique<McuFlashHal>(*module_);
}

bool Device::dirty() const {
  return array_->dirty() || clock_.now().as_ns() != clean_clock_ns_;
}

void Device::mark_clean() {
  array_->mark_clean();
  clean_clock_ns_ = clock_.now().as_ns();
}

}  // namespace flashmark
