#include "mcu/persist.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace flashmark {

DeviceConfig config_for_family(const std::string& family) {
  if (family == "MSP430F5438") return DeviceConfig::msp430f5438();
  if (family == "MSP430F5529") return DeviceConfig::msp430f5529();
  throw std::runtime_error("unknown device family: " + family);
}

void save_device(Device& dev, std::ostream& os) {
  const Rng::State noise = dev.array().noise_rng_state();
  os << "FLASHMARK-DIE 2\n"
     << "family " << dev.config().family << "\n"
     << "seed " << dev.die_seed() << "\n"
     << "clock_ns " << dev.clock().now().as_ns() << "\n"
     << "temperature_c "
     << std::setprecision(std::numeric_limits<double>::max_digits10)
     << dev.array().temperature_c() << "\n"
     << "noise_rng " << noise.s[0] << ' ' << noise.s[1] << ' ' << noise.s[2]
     << ' ' << noise.s[3] << ' ' << noise.cached_normal_bits << ' '
     << (noise.has_cached_normal ? 1 : 0) << "\n";
  dev.array().save_segments(os);
}

IoStatus save_device_file(Device& dev, const std::string& path) {
  std::ostringstream ss;
  save_device(dev, ss);
  if (!ss)
    return IoStatus::failure("save_device_file: serialization failed");
  return atomic_write_file(path, ss.str());
}

std::unique_ptr<Device> load_device(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "FLASHMARK-DIE" ||
      (version != 1 && version != 2))
    throw std::runtime_error("load_device: bad header");

  std::string tag, family;
  std::uint64_t seed = 0;
  std::int64_t clock_ns = 0;
  if (!(is >> tag >> family) || tag != "family")
    throw std::runtime_error("load_device: missing family");
  if (!(is >> tag >> seed) || tag != "seed")
    throw std::runtime_error("load_device: missing seed");
  if (!(is >> tag >> clock_ns) || tag != "clock_ns")
    throw std::runtime_error("load_device: missing clock");
  if (clock_ns < 0)
    throw std::runtime_error("load_device: negative clock");

  auto dev = std::make_unique<Device>(config_for_family(family), seed);
  dev->clock().advance(SimTime::ns(clock_ns));

  if (version >= 2) {
    double temperature = 25.0;
    Rng::State noise;
    int has_cached = 0;
    if (!(is >> tag >> temperature) || tag != "temperature_c")
      throw std::runtime_error("load_device: missing temperature");
    if (!(is >> tag >> noise.s[0] >> noise.s[1] >> noise.s[2] >> noise.s[3] >>
          noise.cached_normal_bits >> has_cached) ||
        tag != "noise_rng" || (has_cached != 0 && has_cached != 1))
      throw std::runtime_error("load_device: missing noise_rng");
    noise.has_cached_normal = has_cached == 1;
    try {
      dev->array().set_temperature_c(temperature);
    } catch (const std::exception& e) {
      // Out-of-model temperature in a corrupted file is a load error, not a
      // caller logic error.
      throw std::runtime_error(std::string("load_device: ") + e.what());
    }
    dev->array().restore_noise_rng(noise);
  }
  // v1 files carry no noise state: the stream restarts from the die seed
  // (the behavior every v1 consumer was written against).

  dev->array().load_segments(is);
  return dev;
}

std::unique_ptr<Device> load_device_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_device: cannot open " + path);
  return load_device(f);
}

}  // namespace flashmark
