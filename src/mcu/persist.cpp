#include "mcu/persist.hpp"

#include <fstream>
#include <stdexcept>

namespace flashmark {

DeviceConfig config_for_family(const std::string& family) {
  if (family == "MSP430F5438") return DeviceConfig::msp430f5438();
  if (family == "MSP430F5529") return DeviceConfig::msp430f5529();
  throw std::runtime_error("unknown device family: " + family);
}

void save_device(Device& dev, std::ostream& os) {
  os << "FLASHMARK-DIE 1\n"
     << "family " << dev.config().family << "\n"
     << "seed " << dev.die_seed() << "\n"
     << "clock_ns " << dev.clock().now().as_ns() << "\n";
  dev.array().save_segments(os);
}

bool save_device_file(Device& dev, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  save_device(dev, f);
  return static_cast<bool>(f);
}

std::unique_ptr<Device> load_device(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "FLASHMARK-DIE" || version != 1)
    throw std::runtime_error("load_device: bad header");

  std::string tag, family;
  std::uint64_t seed = 0;
  std::int64_t clock_ns = 0;
  if (!(is >> tag >> family) || tag != "family")
    throw std::runtime_error("load_device: missing family");
  if (!(is >> tag >> seed) || tag != "seed")
    throw std::runtime_error("load_device: missing seed");
  if (!(is >> tag >> clock_ns) || tag != "clock_ns")
    throw std::runtime_error("load_device: missing clock");

  auto dev = std::make_unique<Device>(config_for_family(family), seed);
  dev->clock().advance(SimTime::ns(clock_ns));
  dev->array().load_segments(is);
  return dev;
}

std::unique_ptr<Device> load_device_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_device: cannot open " + path);
  return load_device(f);
}

}  // namespace flashmark
