#include "mcu/persist.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "flash/die_format.hpp"

namespace flashmark {

DeviceConfig config_for_family(const std::string& family) {
  if (family == "MSP430F5438") return DeviceConfig::msp430f5438();
  if (family == "MSP430F5529") return DeviceConfig::msp430f5529();
  throw std::runtime_error("unknown device family: " + family);
}

void save_device(const Device& dev, std::ostream& os) {
  const Rng::State noise = dev.array().noise_rng_state();
  os << "FLASHMARK-DIE 2\n"
     << "family " << dev.config().family << "\n"
     << "seed " << dev.die_seed() << "\n"
     << "clock_ns " << dev.clock().now().as_ns() << "\n"
     << "temperature_c "
     << std::setprecision(std::numeric_limits<double>::max_digits10)
     << dev.array().temperature_c() << "\n"
     << "noise_rng " << noise.s[0] << ' ' << noise.s[1] << ' ' << noise.s[2]
     << ' ' << noise.s[3] << ' ' << noise.cached_normal_bits << ' '
     << (noise.has_cached_normal ? 1 : 0) << "\n";
  dev.array().save_segments(os);
}

IoStatus save_device_file(const Device& dev, const std::string& path,
                          DieFileFormat format) {
  std::string bytes;
  if (format == DieFileFormat::kColumnarV3) {
    try {
      bytes = serialize_die_v3(dev.array(), dev.config().family,
                               dev.clock().now().as_ns());
    } catch (const std::exception& e) {
      return IoStatus::failure(std::string("save_device_file: ") + e.what());
    }
  } else {
    std::ostringstream ss;
    save_device(dev, ss);
    if (!ss)
      return IoStatus::failure("save_device_file: serialization failed");
    bytes = ss.str();
  }
  return atomic_write_file(path, bytes);
}

std::unique_ptr<Device> load_device(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "FLASHMARK-DIE" ||
      (version != 1 && version != 2))
    throw std::runtime_error("load_device: bad header");

  std::string tag, family;
  std::uint64_t seed = 0;
  std::int64_t clock_ns = 0;
  if (!(is >> tag >> family) || tag != "family")
    throw std::runtime_error("load_device: missing family");
  if (!(is >> tag >> seed) || tag != "seed")
    throw std::runtime_error("load_device: missing seed");
  if (!(is >> tag >> clock_ns) || tag != "clock_ns")
    throw std::runtime_error("load_device: missing clock");
  if (clock_ns < 0)
    throw std::runtime_error("load_device: negative clock");

  auto dev = std::make_unique<Device>(config_for_family(family), seed);
  dev->clock().advance(SimTime::ns(clock_ns));

  if (version >= 2) {
    double temperature = 25.0;
    Rng::State noise;
    int has_cached = 0;
    if (!(is >> tag >> temperature) || tag != "temperature_c")
      throw std::runtime_error("load_device: missing temperature");
    if (!(is >> tag >> noise.s[0] >> noise.s[1] >> noise.s[2] >> noise.s[3] >>
          noise.cached_normal_bits >> has_cached) ||
        tag != "noise_rng" || (has_cached != 0 && has_cached != 1))
      throw std::runtime_error("load_device: missing noise_rng");
    noise.has_cached_normal = has_cached == 1;
    if (!std::isfinite(temperature))
      throw std::runtime_error("load_device: non-finite temperature");
    try {
      dev->array().set_temperature_c(temperature);
    } catch (const std::exception& e) {
      // Out-of-model temperature in a corrupted file is a load error, not a
      // caller logic error.
      throw std::runtime_error(std::string("load_device: ") + e.what());
    }
    dev->array().restore_noise_rng(noise);
  }
  // v1 files carry no noise state: the stream restarts from the die seed
  // (the behavior every v1 consumer was written against).

  dev->array().load_segments(is);
  // A just-loaded device is the persisted state by definition.
  dev->mark_clean();
  return dev;
}

namespace {

/// Build a Device from a validated v3 map: geometry check, header restore,
/// then attach the map as the array's lazy-hydration backing.
std::unique_ptr<Device> device_from_map(
    std::shared_ptr<const DieFileMap> map) {
  DeviceConfig cfg;
  try {
    cfg = config_for_family(map->family());
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("load_device: ") + e.what());
  }
  if (map->n_segments() != cfg.geometry.n_segments())
    throw std::runtime_error("load_device: v3 segment count mismatch for " +
                             map->family());
  const double temperature = map->temperature_c();
  if (!std::isfinite(temperature))
    throw std::runtime_error("load_device: non-finite temperature");

  auto dev = std::make_unique<Device>(cfg, map->die_seed());
  dev->clock().advance(SimTime::ns(map->clock_ns()));
  try {
    dev->array().set_temperature_c(temperature);
    dev->array().restore_noise_rng(map->noise_state());
    dev->array().set_backing(std::move(map));  // validates per-segment shape
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("load_device: ") + e.what());
  }
  dev->mark_clean();
  return dev;
}

bool has_v3_magic(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  char head[8] = {};
  f.read(head, sizeof head);
  return f.gcount() == 8 &&
         std::memcmp(head, v3::kMagic.data(), v3::kMagic.size()) == 0;
}

}  // namespace

std::unique_ptr<Device> load_device_file(const std::string& path) {
  if (has_v3_magic(path)) {
    IoStatus st;
    auto map = DieFileMap::open(path, &st);
    if (!map) throw std::runtime_error("load_device: " + st.error);
    return device_from_map(std::move(map));
  }
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_device: cannot open " + path);
  return load_device(f);
}

std::unique_ptr<Device> try_load_device_file(const std::string& path,
                                             IoStatus* status) {
  try {
    auto dev = load_device_file(path);
    if (status) *status = IoStatus::success();
    return dev;
  } catch (const std::exception& e) {
    if (status) *status = IoStatus::failure(e.what());
    return nullptr;
  }
}

}  // namespace flashmark
