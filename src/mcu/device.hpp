// A simulated microcontroller die: clock + flash array + controller +
// register front end, created from a family preset and a die seed.
//
// One Device == one physical chip. The die seed determines every cell's
// manufacturing variation, so two Devices with the same seed are the same
// chip and two seeds are two samples from the same production line — this is
// how the multi-chip experiments of the paper are expressed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "flash/array.hpp"
#include "flash/controller.hpp"
#include "flash/hal.hpp"
#include "mcu/flash_module.hpp"
#include "mcu/mcu_hal.hpp"

namespace flashmark {

struct DeviceConfig {
  std::string family;  ///< e.g. "MSP430F5438"
  FlashGeometry geometry;
  FlashTiming timing;
  PhysParams phys;
  /// Physics-kernel implementation the array runs (batched fast path by
  /// default). Not part of the die's identity: both modes are byte-identical
  /// by contract, so this is excluded from persistence and from the
  /// determinism seed (docs/REPRODUCIBILITY.md §7).
  KernelMode kernel_mode = KernelMode::kBatched;

  static DeviceConfig msp430f5438();
  static DeviceConfig msp430f5529();
};

class Device {
 public:
  Device(DeviceConfig config, std::uint64_t die_seed);

  // Non-copyable, non-movable: internal references tie the parts together.
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceConfig& config() const { return config_; }
  std::uint64_t die_seed() const { return die_seed_; }

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  FlashArray& array() { return *array_; }
  const FlashArray& array() const { return *array_; }
  FlashController& controller() { return *ctrl_; }
  McuFlashModule& flash_module() { return *module_; }

  /// True when device state has diverged from the last mark_clean(): the
  /// array is dirty (cells, noise-RNG position, temperature) or simulated
  /// time has advanced. A fresh device is clean — it reproduces exactly from
  /// (config, die_seed) — and checkpoint paths skip saving clean dies.
  bool dirty() const;
  /// Declare the current state persisted (called after a successful save,
  /// and by the loaders on a freshly restored device).
  void mark_clean();

  /// Direct HAL (host driving the controller API).
  FlashHal& hal() { return *direct_hal_; }
  /// Register-level HAL (firmware driving FCTL registers).
  FlashHal& mcu_hal() { return *mcu_hal_; }

  /// Busy-wait `dt` of simulated time (e.g. a timer delay in firmware).
  void delay(SimTime dt) { ctrl_->advance(dt); }

 private:
  DeviceConfig config_;
  std::uint64_t die_seed_;
  SimClock clock_;
  std::int64_t clean_clock_ns_ = 0;
  std::unique_ptr<FlashArray> array_;
  std::unique_ptr<FlashController> ctrl_;
  std::unique_ptr<McuFlashModule> module_;
  std::unique_ptr<ControllerHal> direct_hal_;
  std::unique_ptr<McuFlashHal> mcu_hal_;
};

}  // namespace flashmark
