// Device persistence: save a simulated die to a file and load it back.
//
// Enables multi-step CLI workflows ("imprint today, verify tomorrow") and
// exchanging die files between tools. Format is a versioned, human-readable
// text file:
//
//   FLASHMARK-DIE 1
//   family <preset name>
//   seed <u64>
//   clock_ns <i64>
//   <FMSEGS block with every materialized segment's cell state>
//
// Limitations (documented, by design): the device is rebuilt from its
// family *preset* (custom PhysParams/geometry are not persisted), and the
// read-noise RNG stream restarts from the die seed — physical state is
// exact, noise draws are not replayed.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "mcu/device.hpp"

namespace flashmark {

void save_device(Device& dev, std::ostream& os);
bool save_device_file(Device& dev, const std::string& path);

/// Throws std::runtime_error on format errors or unknown family names.
std::unique_ptr<Device> load_device(std::istream& is);
std::unique_ptr<Device> load_device_file(const std::string& path);

/// Family preset lookup used by the loader ("MSP430F5438", "MSP430F5529").
DeviceConfig config_for_family(const std::string& family);

}  // namespace flashmark
