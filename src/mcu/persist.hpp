// Device persistence: save a simulated die to a file and load it back.
//
// Enables multi-step CLI workflows ("imprint today, verify tomorrow"),
// exchanging die files between tools, and the out-of-core DieStore
// (src/store/die_store.hpp). Three on-disk formats coexist; all are
// specified normatively in docs/FORMATS.md:
//
//   v1/v2  versioned human-readable text ("FLASHMARK-DIE <n>" header plus an
//          FMSEGS cell block). v2 added junction temperature and the
//          complete read-noise RNG stream state, so a reloaded die continues
//          the exact draw sequence of the saved one — the property
//          resumable imprint sessions depend on for byte-identical crash
//          recovery. v1 files (no temperature/noise_rng lines) still load;
//          their noise stream restarts from the die seed, the documented v1
//          behavior.
//   v3     binary columnar ("FMKDIE3\n" magic; mcu/die_format.hpp): the SoA
//          cell columns as CRC-framed, 64-byte-aligned little-endian blobs.
//          Saving is a memcpy per column; loading mmaps the file read-only
//          and hydrates segments lazily. This is the default file format —
//          checkpoints of large fleets are why it exists.
//
// `load_device_file` sniffs the leading magic, so every consumer reads all
// three formats transparently; `save_device_file` writes v3 unless asked for
// text. The stream API (`save_device`/`load_device`) stays text-only: it is
// the human-readable interchange and diffing format.
//
// Remaining limitation (documented, by design): the device is rebuilt from
// its family *preset* — custom PhysParams/geometry are not persisted.
//
// File saves are crash-atomic: the die is serialized to a sibling temp file
// which is fsync'd and renamed over the target, so a kill at any instant
// leaves either the old or the new checkpoint on disk, never a torn file.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "mcu/device.hpp"
#include "util/fsio.hpp"

namespace flashmark {

/// On-disk representation selector for save_device_file.
enum class DieFileFormat {
  kColumnarV3,  ///< binary columnar, mmap-able (default)
  kTextV2,      ///< human-readable text (interchange / debugging)
};

/// Serialize as v2 text (stream API is text-only by design).
void save_device(const Device& dev, std::ostream& os);

/// Atomically replace `path` with the serialized die (temp file + fsync +
/// rename). The returned status is boolean-testable and carries the failure
/// cause (errno text) when the save could not be made durable. Does not
/// mutate the device — callers that track dirtiness call Device::mark_clean
/// after a successful save.
IoStatus save_device_file(const Device& dev, const std::string& path,
                          DieFileFormat format = DieFileFormat::kColumnarV3);

/// Throws std::runtime_error on format errors, unknown family names, or
/// invalid persisted state (truncated/corrupted input never crashes).
std::unique_ptr<Device> load_device(std::istream& is);

/// Load any die-file format (v1/v2 text or v3 columnar, sniffed by magic).
/// A v3 file is mmap'd and attached as the array's backing: no cell data is
/// copied until a segment is first touched. Throws std::runtime_error with
/// the cause on any failure.
std::unique_ptr<Device> load_device_file(const std::string& path);

/// Non-throwing variant of load_device_file: returns nullptr and puts the
/// cause in `*status` instead of throwing. The form batch/store machinery
/// wants — a corrupt die file in a 10^5-die fleet is a per-die error, not a
/// process abort.
std::unique_ptr<Device> try_load_device_file(const std::string& path,
                                             IoStatus* status);

/// Family preset lookup used by the loaders ("MSP430F5438", "MSP430F5529").
DeviceConfig config_for_family(const std::string& family);

}  // namespace flashmark
