// Device persistence: save a simulated die to a file and load it back.
//
// Enables multi-step CLI workflows ("imprint today, verify tomorrow") and
// exchanging die files between tools. Format is a versioned, human-readable
// text file:
//
//   FLASHMARK-DIE 2
//   family <preset name>
//   seed <u64>
//   clock_ns <i64>
//   temperature_c <double>
//   noise_rng <s0> <s1> <s2> <s3> <cached_bits> <has_cached>
//   <FMSEGS block with every materialized segment's cell state>
//
// Version 2 persists the junction temperature and the complete read-noise
// RNG stream state, so a reloaded die continues the exact draw sequence of
// the saved one — the property resumable imprint sessions depend on for
// byte-identical crash recovery. Version 1 files (no temperature/noise_rng
// lines) still load; their noise stream restarts from the die seed, which
// was the documented v1 behavior.
//
// Remaining limitation (documented, by design): the device is rebuilt from
// its family *preset* — custom PhysParams/geometry are not persisted.
//
// File saves are crash-atomic: the die is serialized to a sibling temp file
// which is fsync'd and renamed over the target, so a kill at any instant
// leaves either the old or the new checkpoint on disk, never a torn file.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "mcu/device.hpp"
#include "util/fsio.hpp"

namespace flashmark {

void save_device(Device& dev, std::ostream& os);

/// Atomically replace `path` with the serialized die (temp file + fsync +
/// rename). The returned status is boolean-testable and carries the failure
/// cause (errno text) when the save could not be made durable.
IoStatus save_device_file(Device& dev, const std::string& path);

/// Throws std::runtime_error on format errors, unknown family names, or
/// invalid persisted state (truncated/corrupted input never crashes).
std::unique_ptr<Device> load_device(std::istream& is);
std::unique_ptr<Device> load_device_file(const std::string& path);

/// Family preset lookup used by the loader ("MSP430F5438", "MSP430F5529").
DeviceConfig config_for_family(const std::string& family);

}  // namespace flashmark
