#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace flashmark::serve {

double backoff_delay_ms(std::uint32_t attempt, const RetryPolicy& rp,
                        Rng& rng) {
  if (attempt <= 1) return 0.0;
  double d = rp.base_backoff_ms;
  for (std::uint32_t i = 2; i < attempt && d < rp.max_backoff_ms; ++i) d *= 2.0;
  d = std::min(d, rp.max_backoff_ms);
  // Jitter scales into [0.5, 1.0]: desynchronizes a herd without ever
  // collapsing the delay to ~0 (which would defeat the backoff).
  return d * (0.5 + 0.5 * rng.uniform());
}

int connect_endpoint(const std::string& endpoint, std::string* err) {
  int fd = -1;
  if (endpoint.rfind("tcp:", 0) == 0) {
    char* end = nullptr;
    const long port = std::strtol(endpoint.c_str() + 4, &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      if (err) *err = "bad tcp endpoint: " + endpoint;
      return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      if (err) *err = "connect " + endpoint + ": " + std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (endpoint.empty() || endpoint.size() >= sizeof(addr.sun_path)) {
    if (err) *err = "bad unix endpoint: " + endpoint;
    return -1;
  }
  std::memcpy(addr.sun_path, endpoint.c_str(), endpoint.size() + 1);
  fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (err) *err = "connect " + endpoint + ": " + std::strerror(errno);
    if (fd >= 0) ::close(fd);
    return -1;
  }
  return fd;
}

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  parser_ = FrameParser();
}

bool Client::ensure_connected(std::string* err) {
  if (fd_ >= 0) return true;
  fd_ = connect_endpoint(endpoint_, err);
  parser_ = FrameParser();
  return fd_ >= 0;
}

bool Client::send_raw(const void* data, std::size_t n, std::string* err) {
  if (!ensure_connected(err)) return false;
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd_, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (err) *err = std::string("send: ") + std::strerror(errno);
      disconnect();
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool Client::send_request(const Request& rq, std::string* err) {
  const std::string frame = encode_request_frame(rq);
  return send_raw(frame.data(), frame.size(), err);
}

bool Client::recv_response(Response* rs, std::string* err, int timeout_ms) {
  if (fd_ < 0) {
    if (err) *err = "not connected";
    return false;
  }
  char buf[4096];
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    std::string body;
    FrameParser::State st = parser_.next(&body);
    if (st == FrameParser::State::kFrame) {
      std::optional<Response> d = decode_response_body(body);
      if (!d) {
        if (err) *err = "undecodable response body";
        disconnect();
        return false;
      }
      *rs = *d;
      return true;
    }
    if (st == FrameParser::State::kBad) {
      if (err) *err = "corrupt response frame";
      disconnect();
      return false;
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const int left = timeout_ms - static_cast<int>(elapsed_ms);
    if (left <= 0) {
      if (err) *err = "response timeout";
      disconnect();
      return false;
    }
    pollfd p{fd_, POLLIN, 0};
    int rc = ::poll(&p, 1, left);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) {
      if (err) *err = rc == 0 ? "response timeout" : "poll failed";
      disconnect();
      return false;
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      if (err) *err = "server closed connection";
      disconnect();
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (err) *err = std::string("recv: ") + std::strerror(errno);
      disconnect();
      return false;
    }
    parser_.feed(buf, static_cast<std::size_t>(n));
  }
}

Response Client::call_once(const Request& rq) {
  ++attempts_total_;
  Response rs;
  rs.request_id = rq.request_id;
  rs.op = rq.op;
  rs.status = Status::kUnavailable;
  std::string err;
  if (!send_request(rq, &err)) {
    rs.message = err;
    return rs;
  }
  // Wait at least as long as the deadline the request granted the server
  // (plus slack for queueing and the wire): hanging up at a fixed 30 s on
  // a request that asked for minutes turns a slow-but-legal response into
  // a spurious retry — fatal for non-idempotent ops like enroll.
  const int recv_ms =
      std::max(30'000, static_cast<int>(std::min(rq.deadline_ms,
                                                 3'600'000u)) + 30'000);
  if (!recv_response(&rs, &err, recv_ms)) {
    rs.request_id = rq.request_id;
    rs.op = rq.op;
    rs.status = Status::kUnavailable;
    rs.message = err;
    return rs;
  }
  return rs;
}

Response Client::call(const Request& rq) {
  Response rs;
  for (std::uint32_t attempt = 1;; ++attempt) {
    const double delay = backoff_delay_ms(attempt, rp_, jitter_);
    if (delay > 0.0) {
      backoff_ms_total_ += delay;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
    rs = call_once(rq);
    const bool retryable =
        rs.status == Status::kUnavailable || rs.status == Status::kOverloaded ||
        rs.status == Status::kRateLimited ||
        (rp_.retry_deadline && rs.status == Status::kDeadlineExceeded);
    if (!retryable || attempt >= rp_.max_attempts) return rs;
    // Fresh dial per retry: the old connection may be poisoned (bad frame)
    // or gone (daemon restarted); re-connecting is the only safe reset.
    disconnect();
  }
}

}  // namespace flashmark::serve
