// Wire protocol of flashmarkd (the serve layer).
//
// Frames are length-prefixed and CRC-framed, and the decoder applies the
// same hostile-input discipline as the lot shard transport
// (src/lot/shard.cpp): validate the CRC trailer before trusting any field,
// bounds-check every read through a sequential cursor, range-check every
// enum, and reject trailing garbage. A client (or a fuzzer) on the socket
// can produce protocol errors, never undefined behavior — and a torn or
// corrupt frame poisons only its own connection, never the daemon.
//
// Frame layout (all integers little-endian):
//
//   u32 magic   "FMSV"            | u32 version | u32 body_len |
//   body_len bytes of body        | u32 crc32 over magic..body
//
// Body grammar (request and response) is specified normatively in
// docs/FORMATS.md ("serve wire protocol"); this header is the
// implementation. Requests carry (request_id, tenant, deadline_ms, op,
// op-payload); responses echo (request_id, op) and carry a typed status —
// overload, rate-limit, deadline, drain, and validation failures are
// *statuses*, not connection teardowns, so a client can tell "backoff and
// retry" from "your request is wrong".
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/watermark.hpp"

namespace flashmark::serve {

inline constexpr std::uint32_t kFrameMagic = 0x56534D46;  // "FMSV" LE
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Upper bound on a frame body; a header announcing more is rejected before
/// any buffering happens (a hostile peer cannot make the daemon allocate).
inline constexpr std::uint32_t kMaxFrameBody = 1u << 20;
/// Frame header bytes before the body (magic + version + body_len).
inline constexpr std::size_t kFrameHeaderBytes = 12;

/// Operations the daemon serves.
enum class Op : std::uint8_t {
  kPing = 1,      ///< liveness probe; payload carries an optional worker
                  ///< delay (test/chaos instrument)
  kEnroll = 2,    ///< imprint a die's watermark (journaled, crash-safe)
  kVerify = 3,    ///< extract + audit one die
  kLotReport = 4, ///< enrollment/verification totals of this daemon
  kStats = 5,     ///< metrics snapshot (CSV) on demand
  kChallenge = 6, ///< challenge-response interrogation of one die (anti-replay)
};

/// Typed response status. Everything except kOk is an error the client can
/// classify: kOverloaded/kRateLimited are retryable after backoff,
/// kDeadlineExceeded may be retried with a larger budget, kShuttingDown
/// means "find another replica", kInvalid/kFailed are terminal for the
/// request. kUnavailable is synthesized client-side for transport failures
/// (it never appears on the wire).
enum class Status : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,
  kRateLimited = 2,
  kDeadlineExceeded = 3,
  kShuttingDown = 4,
  kInvalid = 5,
  kFailed = 6,
  kUnavailable = 7,
};

const char* to_string(Op op);
const char* to_string(Status s);

/// A decoded request.
struct Request {
  std::uint64_t request_id = 0;
  std::uint32_t tenant = 0;
  /// Per-request deadline in milliseconds; 0 = the server default. Clamped
  /// to the server's maximum.
  std::uint32_t deadline_ms = 0;
  Op op = Op::kPing;

  std::uint64_t die = 0;     ///< enroll / verify / challenge
  std::uint32_t npe = 0;     ///< enroll; 0 = server default
  std::uint32_t delay_ms = 0;  ///< ping: cooperative worker delay (chaos/test)
  /// challenge: the query nonce. The server derives the full challenge from
  /// (nonce, tenant) under its keyed policy, so a client cannot choose which
  /// replicas or windows get interrogated — only *when* a fresh query runs.
  std::uint64_t nonce = 0;
};

/// Challenge payload of a kChallenge response: the per-gate outcome plus the
/// derived query echoed back, so a client can audit what was interrogated.
struct ChallengeBody {
  std::uint8_t accepted = 0;
  std::uint8_t subset_genuine = 0;
  std::uint8_t replicas_present = 0;
  std::uint8_t response_consistent = 0;
  std::uint8_t probe_fresh = 0;
  Verdict verdict = Verdict::kUnreadable;
  double subset_zero_fraction = 0.0;
  double response_zero_fraction = 0.0;
  double response_error = 0.0;
  double probe_erased_fraction = 0.0;
  std::uint64_t t_pew_ns = 0;   ///< decode window actually used
  std::uint64_t t_resp_ns = 0;  ///< response window actually used
  std::uint32_t probe_segment = 0;
};

/// Aggregate totals of the kLotReport op.
struct LotReportBody {
  std::uint64_t enrolled = 0;     ///< dies durably enrolled (incl. recovered)
  std::uint64_t verifies = 0;     ///< completed verify requests
  std::uint64_t genuine = 0;
  std::uint64_t no_watermark = 0;
  std::uint64_t tampered = 0;
  std::uint64_t unreadable = 0;
};

/// A decoded response. Which payload section is meaningful follows from
/// (status, op): only kOk responses carry op payloads; every non-kOk status
/// carries at most `message`.
struct Response {
  std::uint64_t request_id = 0;
  Status status = Status::kFailed;
  Op op = Op::kPing;          ///< echoed, so the payload is self-describing
  std::string message;        ///< error detail, or the kStats CSV snapshot

  // enroll payload
  std::uint32_t cycles_run = 0;  ///< cycles executed by this request
  std::uint8_t resumed = 0;      ///< enroll continued an interrupted session

  // verify payload
  Verdict verdict = Verdict::kUnreadable;
  std::optional<WatermarkFields> fields;
  double zero_fraction = 0.0;
  double replica_disagreement = 0.0;
  std::uint64_t extract_ns = 0;   ///< simulated extraction time
  std::uint32_t ecc_corrected = 0;
  std::uint64_t retries = 0;

  // lot-report payload
  LotReportBody lot;

  // challenge payload
  ChallengeBody challenge;
};

/// Encode a full frame (header + body + CRC trailer).
std::string encode_request_frame(const Request& rq);
std::string encode_response_frame(const Response& rs);

/// Decode a validated frame *body* (the FrameParser or decode_frame already
/// checked magic/version/CRC). std::nullopt on any structural defect:
/// truncated field, out-of-range enum, oversize string, trailing garbage.
std::optional<Request> decode_request_body(const std::string& body);
std::optional<Response> decode_response_body(const std::string& body);

/// Incremental frame scanner over a byte stream. Feed bytes as they arrive;
/// next() yields validated frame bodies. A structural violation (bad magic,
/// unknown version, oversize length, CRC mismatch) makes the parser
/// permanently kBad — a stream that lied once cannot be re-synchronized,
/// the connection must be dropped.
class FrameParser {
 public:
  enum class State {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *body was filled with one validated frame body
    kBad,       ///< protocol violation; sticky
  };

  void feed(const char* data, std::size_t n);
  State next(std::string* body);

  /// Bytes buffered but not yet consumed (a nonzero value at EOF means the
  /// peer tore a frame mid-send).
  std::size_t pending() const { return buf_.size(); }
  bool bad() const { return bad_; }

 private:
  std::string buf_;
  bool bad_ = false;
};

}  // namespace flashmark::serve
