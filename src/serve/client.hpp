// Client side of the flashmarkd protocol: a blocking requester with bounded
// retry, exponential backoff, and seeded jitter.
//
// The retry loop only retries statuses the daemon *typed as retryable*
// (kOverloaded, kRateLimited) plus transport failures (synthesized
// client-side as kUnavailable — connect refused, EOF, torn frame). Every
// attempt uses a fresh connection: a connection that produced a protocol
// error cannot be re-synchronized (the server drops it anyway), and a
// daemon that restarted between attempts must be re-dialed. Jitter comes
// from the repo's own Rng (seeded, deterministic schedule per client) —
// thundering-herd avoidance must not make test runs flaky.
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"
#include "util/rng.hpp"

namespace flashmark::serve {

struct RetryPolicy {
  std::uint32_t max_attempts = 5;   ///< total tries (1 = no retry)
  double base_backoff_ms = 5.0;     ///< delay before attempt 2
  double max_backoff_ms = 500.0;    ///< exponential growth cap
  std::uint64_t jitter_seed = 1;    ///< Rng seed of the jitter stream
  bool retry_deadline = false;      ///< also retry kDeadlineExceeded
};

/// Backoff before attempt `attempt` (1-based; attempt 1 has no delay):
/// min(max, base * 2^(attempt-2)) scaled by a uniform jitter in [0.5, 1.0]
/// drawn from `rng`. Exposed separately so tests can pin the schedule.
double backoff_delay_ms(std::uint32_t attempt, const RetryPolicy& rp,
                        Rng& rng);

/// Dial `endpoint`: "tcp:<port>" connects to 127.0.0.1:<port>, anything
/// else is a Unix socket path. Returns the connected fd or -1 (with the
/// reason in *err). Shared by the client, the load driver, and the chaos
/// tests (which want raw fds to tear frames on).
int connect_endpoint(const std::string& endpoint, std::string* err);

/// One blocking requester. Not thread-safe; one Client per thread.
class Client {
 public:
  explicit Client(std::string endpoint, RetryPolicy rp = {})
      : endpoint_(std::move(endpoint)),
        rp_(rp),
        jitter_(rp.jitter_seed) {}
  ~Client() { disconnect(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One attempt, no retry. Transport or framing failures synthesize a
  /// kUnavailable response (request_id/op echoed from the request, message
  /// = reason) — the caller always gets a Response, never an exception.
  Response call_once(const Request& rq);

  /// The retry loop: call_once, retrying retryable outcomes with
  /// exponential backoff + jitter until an attempt budget is spent.
  /// The last attempt's response is returned verbatim.
  Response call(const Request& rq);

  /// Total backoff slept by call() so far, and attempts made (driver
  /// telemetry).
  double backoff_ms_total() const { return backoff_ms_total_; }
  std::uint64_t attempts_total() const { return attempts_total_; }

  /// Low-level access for pipelined benches and chaos tests: send one
  /// framed request / raw bytes on the persistent connection, read one
  /// response. recv_response returns false on EOF/timeout/bad frame.
  bool send_request(const Request& rq, std::string* err);
  bool send_raw(const void* data, std::size_t n, std::string* err);
  bool recv_response(Response* rs, std::string* err, int timeout_ms = 30'000);

  void disconnect();
  bool connected() const { return fd_ >= 0; }

 private:
  bool ensure_connected(std::string* err);

  std::string endpoint_;
  RetryPolicy rp_;
  Rng jitter_;
  int fd_ = -1;
  FrameParser parser_;
  double backoff_ms_total_ = 0.0;
  std::uint64_t attempts_total_ = 0;
};

}  // namespace flashmark::serve
