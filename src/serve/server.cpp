#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "flash/hal.hpp"
#include "mcu/persist.hpp"
#include "obs/metrics.hpp"
#include "session/resumable.hpp"

namespace flashmark::serve {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Parse a strictly-decimal die index out of `text` ("1234"). Returns false
/// on empty input, non-digits, or overflow — stray files in the state
/// directories must be skipped, not misattributed to die 0.
bool parse_die_index(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 19) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
  if (cfg_.max_tenant_buckets == 0) cfg_.max_tenant_buckets = 1;
  verify_opts_ = cfg_.verify;
  verify_opts_.key = cfg_.key;
  verify_opts_.n_replicas = cfg_.n_replicas;
  stripes_.reserve(kStripes);
  for (std::size_t i = 0; i < kStripes; ++i)
    stripes_.push_back(std::make_unique<std::mutex>());
}

Server::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

Server::~Server() {
  if (started_.load() && !stopped_.load()) {
    request_drain();
    wait();
  }
}

std::string Server::sessions_dir() const { return cfg_.data_dir + "/sessions"; }

std::string Server::session_dir(std::uint64_t die) const {
  return sessions_dir() + "/die-" + std::to_string(die);
}

bool Server::is_enrolled(std::uint64_t die) const {
  std::lock_guard<std::mutex> lk(enrolled_mu_);
  return enrolled_.count(die) != 0;
}

std::mutex& Server::stripe_for(std::uint64_t die) {
  return *stripes_[die % kStripes];
}

WatermarkSpec Server::spec_for(std::uint64_t die, std::uint32_t npe) const {
  WatermarkSpec spec;
  spec.fields.manufacturer_id = cfg_.manufacturer_id;
  spec.fields.die_id = static_cast<std::uint32_t>(die);
  spec.fields.speed_grade = cfg_.speed_grade;
  spec.fields.status = TestStatus::kAccept;
  spec.fields.date_code = cfg_.date_code;
  spec.key = cfg_.key;
  spec.n_replicas = cfg_.n_replicas;
  spec.npe = npe;
  spec.accelerated = true;
  spec.ecc = verify_opts_.ecc;
  spec.max_retries = verify_opts_.max_retries;
  return spec;
}

IoStatus Server::install_die(std::uint64_t die, const Device& dev) {
  // Atomic replace + fsync: after this returns ok the die survives kill -9.
  IoStatus st = save_device_file(dev, store_->die_path(die));
  if (!st.ok) return st;
  std::error_code ec;
  fs::remove_all(session_dir(die), ec);
  // A surviving session dir is re-resolved on the next start() —
  // resume_imprint_session reports already_complete and the die is simply
  // re-installed, so a failed removal here cannot double-imprint.
  {
    std::lock_guard<std::mutex> lk(enrolled_mu_);
    enrolled_.insert(die);
  }
  return IoStatus::success();
}

void Server::scan_enrolled() {
  std::lock_guard<std::mutex> lk(enrolled_mu_);
  for (const auto& e : fs::directory_iterator(store_->config().dir)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    // die-<n>.fm
    if (name.size() < 8 || name.compare(0, 4, "die-") != 0 ||
        name.compare(name.size() - 3, 3, ".fm") != 0)
      continue;
    std::uint64_t die = 0;
    if (!parse_die_index(name.substr(4, name.size() - 7), &die)) continue;
    enrolled_.insert(die);
  }
}

void Server::recover_sessions() {
  const std::string sdir = sessions_dir();
  fs::create_directories(sdir);
  // Collect first: resuming mutates the directory we are iterating.
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::vector<std::string> junk;
  for (const auto& e : fs::directory_iterator(sdir)) {
    const std::string name = e.path().filename().string();
    std::uint64_t die = 0;
    if (!e.is_directory() || name.compare(0, 4, "die-") != 0 ||
        !parse_die_index(name.substr(4), &die)) {
      junk.push_back(e.path().string());
      continue;
    }
    found.emplace_back(die, e.path().string());
  }
  std::sort(found.begin(), found.end());
  for (const std::string& path : junk) {
    std::error_code ec;
    fs::remove_all(path, ec);
    n_.sessions_discarded.fetch_add(1, std::memory_order_relaxed);
  }
  for (const auto& [die, path] : found) {
    session::SessionStatus st = session::inspect_session(path);
    if (!st.exists) {
      // No valid begin record: the crash hit before the session became
      // real, so no imprint cycles can have run — discarding re-opens
      // fresh enrollment without losing state.
      std::error_code ec;
      fs::remove_all(path, ec);
      n_.sessions_discarded.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    session::SessionConfig scfg;
    scfg.durable = true;
    session::ResumeResult r = session::resume_imprint_session(path, scfg);
    IoStatus io = install_die(die, *r.dev);
    if (!io.ok)
      throw std::runtime_error("flashmarkd: recovered die " +
                               std::to_string(die) +
                               " but could not install it: " + io.error);
    n_.sessions_recovered.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::start() {
  if (started_.exchange(true))
    throw std::runtime_error("flashmarkd: start() called twice");
  try {
    start_locked();
  } catch (...) {
    // A failed start must leave the object destructible: with started_ left
    // set, the destructor would run request_drain()+wait() against a store
    // and pool that never came up and crash during unwinding, masking the
    // original error. Unwind whatever did come up, then rethrow.
    accept_stop_.store(true, std::memory_order_release);
    watchdog_stop_.store(true, std::memory_order_release);
    if (accept_th_.joinable()) accept_th_.join();
    if (watchdog_th_.joinable()) watchdog_th_.join();
    accept_stop_.store(false, std::memory_order_release);
    watchdog_stop_.store(false, std::memory_order_release);
    pool_.reset();
    close_fd(unix_fd_);
    close_fd(tcp_fd_);
    store_.reset();
    started_.store(false, std::memory_order_release);
    throw;
  }
}

void Server::start_locked() {
  if (cfg_.socket_path.empty() && cfg_.tcp_port < 0)
    throw std::runtime_error("flashmarkd: no endpoint configured");
  fs::create_directories(cfg_.data_dir);

  store::DieStoreConfig sc;
  sc.dir = cfg_.data_dir + "/dies";
  sc.device = cfg_.device;
  sc.max_resident = cfg_.max_resident;
  sc.durable = true;
  const std::uint64_t master = cfg_.master_seed;
  sc.seed_of = [master](std::size_t die) {
    return fleet::derive_die_seed(master, die);
  };
  store_ = std::make_unique<store::DieStore>(std::move(sc));

  scan_enrolled();
  recover_sessions();  // before any socket exists: no concurrent requests

  // Calibrate the challenge expectations against a synthetic golden die
  // imprinted exactly like an enrollment at default_npe (die index max_dies
  // can never collide with a client-visible die). Every daemon with the
  // same (device, seed, npe) derives identical tables.
  {
    challenge_policy_ = cfg_.challenge;
    Device golden(cfg_.device,
                  fleet::derive_die_seed(cfg_.master_seed, cfg_.max_dies));
    const Addr addr = golden.config().geometry.segment_base(cfg_.segment);
    WatermarkSpec golden_spec = spec_for(cfg_.max_dies, cfg_.default_npe);
    // Batched wear, like the scenario layer's calibration: the golden die
    // only feeds expectation tables, and a cycle-by-cycle imprint at a
    // production npe would hold start() (and the chaos tests' socket-bind
    // probes) hostage for seconds before the daemon listens.
    golden_spec.strategy = ImprintStrategy::kBatchWear;
    imprint_watermark(golden.hal(), addr, golden_spec);
    try {
      calibrate_challenge_policy(golden.hal(), addr, verify_opts_,
                                 challenge_policy_);
      challenge_error_.clear();
    } catch (const std::invalid_argument& e) {
      // An unsound challenge policy at this (device, npe) point — e.g. an
      // imprint too shallow for any response window to discriminate a
      // recording — must not take the verify service down with it. The
      // daemon runs; challenge requests get this error as a typed kFailed.
      challenge_error_ = e.what();
    }
  }

  if (!cfg_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socket_path.size() >= sizeof(addr.sun_path))
      throw std::runtime_error("flashmarkd: socket path too long: " +
                               cfg_.socket_path);
    std::memcpy(addr.sun_path, cfg_.socket_path.c_str(),
                cfg_.socket_path.size() + 1);
    ::unlink(cfg_.socket_path.c_str());
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0 ||
        ::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(unix_fd_, 128) != 0)
      throw std::runtime_error("flashmarkd: cannot listen on " +
                               cfg_.socket_path + ": " +
                               std::strerror(errno));
  }
  if (cfg_.tcp_port >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    if (tcp_fd_ >= 0)
      ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (tcp_fd_ < 0 ||
        ::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(tcp_fd_, 128) != 0)
      throw std::runtime_error(
          "flashmarkd: cannot listen on 127.0.0.1:" +
          std::to_string(cfg_.tcp_port) + ": " + std::strerror(errno));
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &blen) != 0)
      throw std::runtime_error("flashmarkd: getsockname failed");
    bound_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
  }

  pool_ = std::make_unique<fleet::ThreadPool>(cfg_.workers);
  watchdog_th_ = std::thread([this] { watchdog_loop(); });
  accept_th_ = std::thread([this] { accept_loop(); });
}

void Server::request_drain() {
  draining_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(drain_mu_);
    drain_requested_ = true;
  }
  drain_requested_cv_.notify_all();
}

void Server::accept_loop() {
  std::vector<pollfd> fds;
  if (unix_fd_ >= 0) fds.push_back({unix_fd_, POLLIN, 0});
  if (tcp_fd_ >= 0) fds.push_back({tcp_fd_, POLLIN, 0});
  while (!accept_stop_.load(std::memory_order_acquire)) {
    for (auto& p : fds) p.revents = 0;
    int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
    if (rc <= 0) continue;
    for (const auto& p : fds) {
      if (!(p.revents & POLLIN)) continue;
      int cfd = ::accept(p.fd, nullptr, nullptr);
      if (cfd < 0) continue;
      reap_finished_conns();
      std::lock_guard<std::mutex> lk(conns_mu_);
      if (draining_.load(std::memory_order_acquire) ||
          conns_.size() >= cfg_.max_connections) {
        // Refused at the door: the peer sees EOF and classifies it as
        // kUnavailable ("find another replica"), which is exactly right
        // both for drain and for a full house.
        n_.rejected_conns.fetch_add(1, std::memory_order_relaxed);
        ::close(cfd);
        continue;
      }
      n_.accepted_conns.fetch_add(1, std::memory_order_relaxed);
      auto slot = std::make_unique<ConnSlot>();
      slot->conn = std::make_shared<Conn>();
      slot->conn->fd = cfd;
      ConnSlot* raw = slot.get();
      slot->th = std::thread([this, raw] { conn_loop(raw); });
      conns_.push_back(std::move(slot));
    }
  }
}

void Server::reap_finished_conns() {
  std::lock_guard<std::mutex> lk(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      (*it)->th.join();
      // Dropping the slot's ConnPtr is the close: a pool worker may still
      // hold a reference mid-send, and the fd must not be reused under it.
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::conn_loop(ConnSlot* slot) {
  const ConnPtr conn = slot->conn;
  FrameParser parser;
  char buf[4096];
  bool mid_frame = false;
  Clock::time_point frame_t0{};
  for (;;) {
    if (conn->dead.load(std::memory_order_acquire)) break;
    int timeout = -1;
    if (mid_frame) {
      const double left =
          static_cast<double>(cfg_.frame_timeout_ms) -
          ms_between(frame_t0, Clock::now());
      if (left <= 0.0) {
        // Slow loris: a peer that started a frame must finish it within
        // the budget. The connection dies; the daemon does not wait.
        n_.slow_loris_closed.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      timeout = std::max(1, static_cast<int>(left));
    }
    pollfd p{conn->fd, POLLIN, 0};
    int rc = ::poll(&p, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;  // re-check the frame budget
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    parser.feed(buf, static_cast<std::size_t>(n));
    bool close_conn = false;
    for (;;) {
      std::string body;
      FrameParser::State st = parser.next(&body);
      if (st == FrameParser::State::kFrame) {
        if (!handle_frame(conn, body)) {
          close_conn = true;
          break;
        }
        continue;
      }
      if (st == FrameParser::State::kBad) {
        n_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_conn = true;
      }
      break;
    }
    if (close_conn) break;
    if (parser.pending() > 0) {
      if (!mid_frame) {
        mid_frame = true;
        frame_t0 = Clock::now();
      }
    } else {
      mid_frame = false;
    }
  }
  conn->dead.store(true, std::memory_order_release);
  ::shutdown(conn->fd, SHUT_RDWR);
  slot->finished.store(true, std::memory_order_release);
}

void Server::send_response(const ConnPtr& conn, const Response& rs) {
  const std::string frame = encode_response_frame(rs);
  std::lock_guard<std::mutex> lk(conn->write_mu);
  if (conn->dead.load(std::memory_order_acquire)) return;
  std::size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up must produce EPIPE, not SIGPIPE —
    // a dead client may never kill the daemon.
    ssize_t n = ::send(conn->fd, frame.data() + off, frame.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      conn->dead.store(true, std::memory_order_release);
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void Server::respond_error(const ConnPtr& conn, const Request& rq,
                           Status status, const std::string& message) {
  Response rs;
  rs.request_id = rq.request_id;
  rs.op = rq.op;
  rs.status = status;
  rs.message = message;
  count_status(status);
  send_response(conn, rs);
}

bool Server::admit_tenant(std::uint32_t tenant) {
  if (cfg_.tenant_rate_per_s <= 0.0) return true;
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lk(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    if (tenants_.size() >= cfg_.max_tenant_buckets) {
      // The map is bounded: a hostile client cycling through u32 tenant ids
      // must not exhaust daemon memory. A bucket idle for at least a full
      // refill (burst/rate) is indistinguishable from a fresh one, so
      // evicting it loses no rate state.
      const double idle_ms =
          cfg_.tenant_burst / cfg_.tenant_rate_per_s * 1e3;
      for (auto i = tenants_.begin(); i != tenants_.end();) {
        if (ms_between(i->second.last, now) >= idle_ms)
          i = tenants_.erase(i);
        else
          ++i;
      }
      if (tenants_.size() >= cfg_.max_tenant_buckets)
        return false;  // every bucket is mid-window: overflow is rate-limited
    }
    it = tenants_.emplace(tenant, TokenBucket{}).first;
  }
  TokenBucket& b = it->second;
  if (!b.primed) {
    b.tokens = cfg_.tenant_burst;
    b.primed = true;
  } else {
    const double dt = ms_between(b.last, now) / 1e3;
    b.tokens = std::min(cfg_.tenant_burst,
                        b.tokens + dt * cfg_.tenant_rate_per_s);
  }
  b.last = now;
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

bool Server::handle_frame(const ConnPtr& conn, const std::string& body) {
  n_.requests.fetch_add(1, std::memory_order_relaxed);
  std::optional<Request> rq = decode_request_body(body);
  if (!rq) {
    // The frame was CRC-clean but structurally wrong: a broken (or hostile)
    // client library. Poison only this connection.
    n_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (draining_.load(std::memory_order_acquire)) {
    respond_error(conn, *rq, Status::kShuttingDown, "daemon draining");
    return true;
  }
  if (!admit_tenant(rq->tenant)) {
    respond_error(conn, *rq, Status::kRateLimited,
                  "tenant " + std::to_string(rq->tenant) + " over rate");
    return true;
  }
  bool shed = false;
  bool closed = false;
  {
    std::lock_guard<std::mutex> lk(q_mu_);
    if (q_closed_) {
      // This thread loaded draining_ == false, then wait() closed the queue.
      // It must not touch pending_ or pool_ now: wait() may already have
      // observed pending_ == 0 and freed the pool. The q_mu_-guarded flag
      // makes the race benign — refuse here, or (had the increment won the
      // lock first) be waited on before the pool is reset.
      closed = true;
    } else if (pending_ - executing_ >= cfg_.queue_capacity) {
      // Load shed: the bounded queue is the daemon's memory-safety valve.
      // Typed kOverloaded tells the client to back off and retry; silently
      // queueing would turn one slow die into unbounded latency for all.
      shed = true;
    } else {
      ++pending_;
    }
  }
  if (closed) {
    respond_error(conn, *rq, Status::kShuttingDown, "daemon draining");
    return true;
  }
  if (shed) {
    respond_error(conn, *rq, Status::kOverloaded, "queue full");
    return true;
  }
  const std::uint32_t budget_ms =
      rq->deadline_ms == 0 ? cfg_.default_deadline_ms
                           : std::min(rq->deadline_ms, cfg_.max_deadline_ms);
  Work w;
  w.rq = *rq;
  w.conn = conn;
  w.deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  w.progress = std::make_shared<fleet::DieProgress>();
  pool_->submit([this, w]() mutable { process(std::move(w)); });
  return true;
}

void Server::process(Work w) {
  const Clock::time_point started = Clock::now();
  auto release_pending = [this] {
    {
      std::lock_guard<std::mutex> lk(q_mu_);
      --pending_;
    }
    drain_cv_.notify_all();
  };

  if (abort_queued_.load(std::memory_order_acquire)) {
    respond_error(w.conn, w.rq, Status::kShuttingDown,
                  "daemon drained before this request started");
    release_pending();
    return;
  }
  if (started >= w.deadline) {
    respond_error(w.conn, w.rq, Status::kDeadlineExceeded,
                  "deadline expired while queued");
    release_pending();
    return;
  }

  std::list<ActiveEntry>::iterator active_it;
  {
    std::lock_guard<std::mutex> lk(q_mu_);
    ++executing_;
  }
  {
    std::lock_guard<std::mutex> lk(active_mu_);
    active_it = active_.insert(active_.end(), {w.progress, w.deadline});
  }
  w.progress->mark_started();

  Response rs;
  rs.request_id = w.rq.request_id;
  rs.op = w.rq.op;
  rs.status = Status::kOk;
  try {
    switch (w.rq.op) {
      case Op::kPing:
        handle_ping(w, rs);
        break;
      case Op::kEnroll:
        handle_enroll(w, rs);
        break;
      case Op::kVerify:
        handle_verify(w, rs);
        break;
      case Op::kLotReport:
        handle_lot_report(rs);
        break;
      case Op::kStats:
        rs.message = stats_csv();
        break;
      case Op::kChallenge:
        handle_challenge(w, rs);
        break;
    }
  } catch (const OperationCancelledError&) {
    if (abort_queued_.load(std::memory_order_acquire)) {
      rs.status = Status::kShuttingDown;
      rs.message = "cancelled by drain";
    } else {
      rs.status = Status::kDeadlineExceeded;
      rs.message = "cancelled: per-request deadline exceeded";
    }
  } catch (const std::exception& e) {
    rs.status = Status::kFailed;
    rs.message = e.what();
  }

  w.progress->mark_finished();
  {
    std::lock_guard<std::mutex> lk(active_mu_);
    active_.erase(active_it);
  }
  {
    std::lock_guard<std::mutex> lk(q_mu_);
    --executing_;
    --pending_;
  }
  drain_cv_.notify_all();

  const double lat_ms = ms_between(started, Clock::now());
  {
    std::lock_guard<std::mutex> lk(latency_mu_);
    latency_ms_.add(lat_ms);
  }
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global()
        .histogram("serve.latency_ms", 0.0, 10'000.0, 64)
        .add(lat_ms);
  count_status(rs.status);
  send_response(w.conn, rs);
}

void Server::handle_ping(const Work& w, Response& rs) {
  // delay_ms is the load/chaos instrument: a ping that occupies a worker
  // for a controlled time, cancellable at 1 ms granularity.
  for (std::uint32_t i = 0; i < w.rq.delay_ms; ++i) {
    if (w.progress->cancel_requested())
      throw OperationCancelledError("ping delay");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    w.progress->tick();
  }
  rs.message = "pong";
}

void Server::handle_enroll(const Work& w, Response& rs) {
  const std::uint64_t die = w.rq.die;
  if (die >= cfg_.max_dies) {
    rs.status = Status::kInvalid;
    rs.message = "die id out of range";
    return;
  }
  const std::uint32_t npe =
      w.rq.npe == 0 ? cfg_.default_npe : std::min(w.rq.npe, cfg_.max_npe);

  std::lock_guard<std::mutex> die_lk(stripe_for(die));
  if (is_enrolled(die)) {
    // Oxide damage is monotone: re-imprinting would overshoot NPE and
    // distort the watermark. Enroll-once is a hard invariant.
    rs.status = Status::kInvalid;
    rs.message = "die already enrolled";
    return;
  }

  const WatermarkSpec spec = spec_for(die, npe);
  session::SessionConfig scfg;
  scfg.checkpoint_every = cfg_.checkpoint_every;
  scfg.durable = true;
  scfg.accelerated = spec.accelerated;
  scfg.max_retries = spec.max_retries;
  fleet::DieProgress* progress = w.progress.get();
  scfg.cancelled = [progress] { return progress->cancel_requested(); };
  scfg.on_cycle = [progress](std::uint32_t) { progress->tick(); };

  const std::string sdir = session_dir(die);
  std::unique_ptr<Device> dev;
  ImprintReport report;
  if (session::inspect_session(sdir).exists) {
    // A deadline-cancelled or crashed earlier attempt left its journal:
    // resume it (parameters come from the begin record, not this request).
    session::ResumeResult r = session::resume_imprint_session(sdir, scfg);
    dev = std::move(r.dev);
    report = r.report;
    rs.resumed = 1;
    n_.enroll_resumes.fetch_add(1, std::memory_order_relaxed);
  } else {
    dev = std::make_unique<Device>(cfg_.device,
                                   fleet::derive_die_seed(cfg_.master_seed, die));
    const auto& g = dev->config().geometry;
    const Addr addr = g.segment_base(cfg_.segment);
    const EncodedWatermark enc =
        encode_watermark(spec, g.segment_cells(cfg_.segment));
    report = session::run_imprint_session(sdir, *dev, addr,
                                          enc.segment_pattern, npe, scfg);
  }

  IoStatus st = install_die(die, *dev);
  if (!st.ok)
    throw std::runtime_error("could not install enrolled die: " + st.error);
  n_.enrolls_ok.fetch_add(1, std::memory_order_relaxed);
  rs.cycles_run = report.npe;
}

void Server::handle_verify(const Work& w, Response& rs) {
  const std::uint64_t die = w.rq.die;
  if (die >= cfg_.max_dies) {
    rs.status = Status::kInvalid;
    rs.message = "die id out of range";
    return;
  }
  std::lock_guard<std::mutex> die_lk(stripe_for(die));
  if (!is_enrolled(die)) {
    // Pinning an unknown die would *manufacture* it (the store serves a
    // fleet-simulation use case); a daemon must not grow its population as
    // a side effect of a typo'd verify.
    rs.status = Status::kInvalid;
    rs.message = "die not enrolled";
    return;
  }

  store::DieStore::PinnedDie pin = store_->pin(die);
  VerifyOptions vo = verify_opts_;
  fleet::DieProgress* progress = w.progress.get();
  vo.cancelled = [progress] {
    progress->tick();
    return progress->cancel_requested();
  };
  const Addr addr = pin->config().geometry.segment_base(cfg_.segment);
  FlashHal* hal = &pin->hal();
  std::optional<fault::FaultyHal> fhal;
  if (cfg_.faults.any()) {
    fhal.emplace(pin->hal(), fault::FaultPlan::for_die(
                                 cfg_.faults, pin->die_seed(),
                                 pin->config().geometry));
    hal = &*fhal;
  }
  std::unique_ptr<FlashHal> counterfeit;
  if (cfg_.counterfeit_hal &&
      (counterfeit = cfg_.counterfeit_hal(*hal, die)))
    hal = counterfeit.get();
  const VerifyReport report = verify_watermark(*hal, addr, vo);

  rs.verdict = report.verdict;
  rs.fields = report.fields;
  rs.zero_fraction = report.zero_fraction;
  rs.replica_disagreement = report.replica_disagreement;
  rs.extract_ns = static_cast<std::uint64_t>(report.extract_time.as_ns());
  rs.ecc_corrected = static_cast<std::uint32_t>(report.ecc_corrected_blocks);
  rs.retries = report.retries;

  n_.verifies_ok.fetch_add(1, std::memory_order_relaxed);
  switch (report.verdict) {
    case Verdict::kGenuine:
      n_.genuine.fetch_add(1, std::memory_order_relaxed);
      break;
    case Verdict::kNoWatermark:
      n_.no_watermark.fetch_add(1, std::memory_order_relaxed);
      break;
    case Verdict::kTampered:
      n_.tampered.fetch_add(1, std::memory_order_relaxed);
      break;
    case Verdict::kUnreadable:
      n_.unreadable.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void Server::handle_challenge(const Work& w, Response& rs) {
  if (!challenge_error_.empty()) {
    rs.status = Status::kFailed;
    rs.message = "challenge mode unavailable: " + challenge_error_;
    return;
  }
  const std::uint64_t die = w.rq.die;
  if (die >= cfg_.max_dies) {
    rs.status = Status::kInvalid;
    rs.message = "die id out of range";
    return;
  }
  std::lock_guard<std::mutex> die_lk(stripe_for(die));
  if (!is_enrolled(die)) {
    rs.status = Status::kInvalid;
    rs.message = "die not enrolled";
    return;
  }

  store::DieStore::PinnedDie pin = store_->pin(die);
  VerifyOptions vo = verify_opts_;
  fleet::DieProgress* progress = w.progress.get();
  vo.cancelled = [progress] {
    progress->tick();
    return progress->cancel_requested();
  };
  const Addr addr = pin->config().geometry.segment_base(cfg_.segment);
  FlashHal* hal = &pin->hal();
  std::optional<fault::FaultyHal> fhal;
  if (cfg_.faults.any()) {
    fhal.emplace(pin->hal(), fault::FaultPlan::for_die(
                                 cfg_.faults, pin->die_seed(),
                                 pin->config().geometry));
    hal = &*fhal;
  }
  std::unique_ptr<FlashHal> counterfeit;
  if (cfg_.counterfeit_hal &&
      (counterfeit = cfg_.counterfeit_hal(*hal, die)))
    hal = counterfeit.get();

  const ChallengeReport report = challenge_verify(
      *hal, addr, vo, challenge_policy_, w.rq.nonce, w.rq.tenant);

  rs.challenge.accepted = report.accepted ? 1 : 0;
  rs.challenge.subset_genuine = report.subset_genuine ? 1 : 0;
  rs.challenge.replicas_present = report.replicas_present ? 1 : 0;
  rs.challenge.response_consistent = report.response_consistent ? 1 : 0;
  rs.challenge.probe_fresh = report.probe_fresh ? 1 : 0;
  rs.challenge.verdict = report.verdict;
  rs.challenge.subset_zero_fraction = report.subset_zero_fraction;
  rs.challenge.response_zero_fraction = report.response_zero_fraction;
  rs.challenge.response_error = report.response_error;
  rs.challenge.probe_erased_fraction = report.probe_erased_fraction;
  rs.challenge.t_pew_ns =
      static_cast<std::uint64_t>(report.challenge.t_pew.as_ns());
  rs.challenge.t_resp_ns =
      static_cast<std::uint64_t>(report.challenge.t_resp.as_ns());
  rs.challenge.probe_segment =
      static_cast<std::uint32_t>(report.challenge.probe_segment);
}

void Server::handle_lot_report(Response& rs) { rs.lot = lot_report(); }

LotReportBody Server::lot_report() const {
  LotReportBody lot;
  {
    std::lock_guard<std::mutex> lk(enrolled_mu_);
    lot.enrolled = enrolled_.size();
  }
  lot.verifies = n_.verifies_ok.load(std::memory_order_relaxed);
  lot.genuine = n_.genuine.load(std::memory_order_relaxed);
  lot.no_watermark = n_.no_watermark.load(std::memory_order_relaxed);
  lot.tampered = n_.tampered.load(std::memory_order_relaxed);
  lot.unreadable = n_.unreadable.load(std::memory_order_relaxed);
  return lot;
}

void Server::watchdog_loop() {
  // Same supervision shape as the fleet batch watchdog: poll every active
  // request's DieProgress; past-deadline requests are cancelled
  // cooperatively (first cause wins), never killed mid-mutation.
  const auto poll_dt = std::chrono::duration<double, std::milli>(
      std::max(0.5, cfg_.watchdog_poll_ms));
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(poll_dt);
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lk(active_mu_);
    for (const ActiveEntry& e : active_) {
      if (now >= e.deadline)
        e.progress->request_cancel(fleet::CancelCause::kDeadline);
    }
  }
}

void Server::count_status(Status s) {
  switch (s) {
    case Status::kOk:
      n_.ok.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kOverloaded:
      n_.overloaded.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kRateLimited:
      n_.rate_limited.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kDeadlineExceeded:
      n_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kShuttingDown:
      n_.shutting_down.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kInvalid:
      n_.invalid.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kFailed:
    case Status::kUnavailable:
      n_.failed.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

int Server::wait() {
  {
    std::unique_lock<std::mutex> lk(drain_mu_);
    drain_requested_cv_.wait(lk, [this] { return drain_requested_; });
  }
  // Close admission under q_mu_ BEFORE any pending_ == 0 observation below.
  // A connection thread that loaded draining_ == false just before
  // request_drain() could otherwise increment pending_ and submit to a pool
  // this function already freed; with the flag, it either sees q_closed_
  // and refuses, or its increment is ordered before our checks and the
  // drain waits for it.
  {
    std::lock_guard<std::mutex> lk(q_mu_);
    q_closed_ = true;
  }
  // Phase 0: stop the front door. No new connections, and handle_frame
  // answers kShuttingDown on the existing ones.
  accept_stop_.store(true, std::memory_order_release);
  if (accept_th_.joinable()) accept_th_.join();

  // Phase 1: grace. In-flight and queued work may finish normally.
  {
    std::unique_lock<std::mutex> lk(q_mu_);
    drain_cv_.wait_until(
        lk, Clock::now() + std::chrono::milliseconds(cfg_.drain_grace_ms),
        [this] { return pending_ == 0; });
  }

  // Phase 2: the grace period is over. Queued-but-unstarted work answers
  // kShuttingDown; executing work is deadline-cancelled. The sweep repeats
  // because a job may slip past the abort check into a handler between
  // sweeps — its registration in active_ makes the next sweep catch it.
  abort_queued_.store(true, std::memory_order_release);
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(active_mu_);
      for (const ActiveEntry& e : active_)
        e.progress->request_cancel(fleet::CancelCause::kDeadline);
    }
    std::unique_lock<std::mutex> lk(q_mu_);
    if (drain_cv_.wait_for(lk, std::chrono::milliseconds(50),
                           [this] { return pending_ == 0; }))
      break;
  }

  pool_.reset();  // joins workers; the queue is empty by now
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_th_.joinable()) watchdog_th_.join();

  // Tear down connections (responses are all sent: workers are gone).
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& slot : conns_) {
      slot->conn->dead.store(true, std::memory_order_release);
      ::shutdown(slot->conn->fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::unique_ptr<ConnSlot> slot;
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      if (conns_.empty()) break;
      slot = std::move(conns_.front());
      conns_.pop_front();
    }
    slot->th.join();
  }  // the slot's ConnPtr drop closes the fd (workers are gone: last ref)

  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  if (!cfg_.socket_path.empty()) ::unlink(cfg_.socket_path.c_str());

  // The exit-code contract: 0 only when every dirty die reached disk.
  // (store_ can only be null if wait() is driven by hand after a failed
  // start(); there is nothing to flush then.)
  const IoStatus flushed = store_ ? store_->flush_all() : IoStatus::success();

  if (obs::metrics_enabled()) {
    fold_into(obs::MetricsRegistry::global());
    if (store_) store_->fold_into(obs::MetricsRegistry::global(), "store");
  }
  stopped_.store(true, std::memory_order_release);
  return flushed.ok ? 0 : 1;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted_conns = n_.accepted_conns.load(std::memory_order_relaxed);
  s.rejected_conns = n_.rejected_conns.load(std::memory_order_relaxed);
  s.protocol_errors = n_.protocol_errors.load(std::memory_order_relaxed);
  s.slow_loris_closed = n_.slow_loris_closed.load(std::memory_order_relaxed);
  s.requests = n_.requests.load(std::memory_order_relaxed);
  s.ok = n_.ok.load(std::memory_order_relaxed);
  s.overloaded = n_.overloaded.load(std::memory_order_relaxed);
  s.rate_limited = n_.rate_limited.load(std::memory_order_relaxed);
  s.deadline_exceeded = n_.deadline_exceeded.load(std::memory_order_relaxed);
  s.shutting_down = n_.shutting_down.load(std::memory_order_relaxed);
  s.invalid = n_.invalid.load(std::memory_order_relaxed);
  s.failed = n_.failed.load(std::memory_order_relaxed);
  s.enrolls_ok = n_.enrolls_ok.load(std::memory_order_relaxed);
  s.enroll_resumes = n_.enroll_resumes.load(std::memory_order_relaxed);
  s.verifies_ok = n_.verifies_ok.load(std::memory_order_relaxed);
  s.sessions_recovered = n_.sessions_recovered.load(std::memory_order_relaxed);
  s.sessions_discarded = n_.sessions_discarded.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(q_mu_);
    s.queue_depth = pending_ - executing_;
    s.in_flight = executing_;
  }
  return s;
}

void Server::fold_into(obs::MetricsRegistry& reg) const {
  const ServerStats s = stats();
  reg.gauge("serve.accepted_conns").set(static_cast<double>(s.accepted_conns));
  reg.gauge("serve.rejected_conns").set(static_cast<double>(s.rejected_conns));
  reg.gauge("serve.protocol_errors")
      .set(static_cast<double>(s.protocol_errors));
  reg.gauge("serve.slow_loris_closed")
      .set(static_cast<double>(s.slow_loris_closed));
  reg.gauge("serve.requests").set(static_cast<double>(s.requests));
  reg.gauge("serve.ok").set(static_cast<double>(s.ok));
  reg.gauge("serve.overloaded").set(static_cast<double>(s.overloaded));
  reg.gauge("serve.rate_limited").set(static_cast<double>(s.rate_limited));
  reg.gauge("serve.deadline_exceeded")
      .set(static_cast<double>(s.deadline_exceeded));
  reg.gauge("serve.shutting_down").set(static_cast<double>(s.shutting_down));
  reg.gauge("serve.invalid").set(static_cast<double>(s.invalid));
  reg.gauge("serve.failed").set(static_cast<double>(s.failed));
  reg.gauge("serve.enrolls_ok").set(static_cast<double>(s.enrolls_ok));
  reg.gauge("serve.enroll_resumes")
      .set(static_cast<double>(s.enroll_resumes));
  reg.gauge("serve.verifies_ok").set(static_cast<double>(s.verifies_ok));
  reg.gauge("serve.sessions_recovered")
      .set(static_cast<double>(s.sessions_recovered));
  reg.gauge("serve.sessions_discarded")
      .set(static_cast<double>(s.sessions_discarded));
  reg.gauge("serve.queue_depth").set(static_cast<double>(s.queue_depth));
  reg.gauge("serve.in_flight").set(static_cast<double>(s.in_flight));
  const LotReportBody lot = lot_report();
  reg.gauge("serve.enrolled").set(static_cast<double>(lot.enrolled));
  reg.gauge("serve.verdict.genuine").set(static_cast<double>(lot.genuine));
  reg.gauge("serve.verdict.no_watermark")
      .set(static_cast<double>(lot.no_watermark));
  reg.gauge("serve.verdict.tampered").set(static_cast<double>(lot.tampered));
  reg.gauge("serve.verdict.unreadable")
      .set(static_cast<double>(lot.unreadable));
  {
    std::lock_guard<std::mutex> lk(latency_mu_);
    reg.gauge("serve.latency_ms.count")
        .set(static_cast<double>(latency_ms_.count()));
    reg.gauge("serve.latency_ms.mean").set(latency_ms_.mean());
    reg.gauge("serve.latency_ms.min").set(latency_ms_.min());
    reg.gauge("serve.latency_ms.max").set(latency_ms_.max());
  }
}

std::string Server::stats_csv() const {
  // A private registry: the snapshot works with global metrics disabled and
  // never mingles with another server instance in the same process.
  obs::MetricsRegistry reg;
  fold_into(reg);
  store_->fold_into(reg, "store");
  return reg.to_csv();
}

}  // namespace flashmark::serve
