#include "serve/protocol.hpp"

#include <cstring>

#include "util/crc.hpp"

namespace flashmark::serve {

namespace {

constexpr std::size_t kMaxMessage = 1u << 16;  // error text / stats CSV cap

// --- little-endian append/read helpers (shard.cpp idiom) -------------------

void put_bytes(std::string& s, const void* p, std::size_t n) {
  s.append(static_cast<const char*>(p), n);
}

void put_u8(std::string& s, std::uint8_t v) { put_bytes(s, &v, 1); }

void put_u32(std::string& s, std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  put_bytes(s, b, 4);
}

void put_u64(std::string& s, std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  put_bytes(s, b, 8);
}

void put_f64(std::string& s, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(s, bits);
}

void put_str(std::string& s, const std::string& v) {
  put_u32(s, static_cast<std::uint32_t>(v.size()));
  put_bytes(s, v.data(), v.size());
}

/// Bounds-checked sequential reader over a frame body.
class Reader {
 public:
  explicit Reader(const std::string& s) : s_(s) {}

  bool u8(std::uint8_t* v) {
    if (pos_ + 1 > s_.size()) return false;
    *v = static_cast<std::uint8_t>(s_[pos_++]);
    return true;
  }
  bool u16(std::uint16_t* v) {
    std::uint32_t w;
    if (!u32_n(&w, 2)) return false;
    *v = static_cast<std::uint16_t>(w);
    return true;
  }
  bool u32(std::uint32_t* v) { return u32_n(v, 4); }
  bool u64(std::uint64_t* v) {
    if (pos_ + 8 > s_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i)
      *v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(s_[pos_ + i]))
            << (8 * i);
    pos_ += 8;
    return true;
  }
  bool f64(double* v) {
    std::uint64_t bits;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }
  bool str(std::string* v, std::size_t max_len) {
    std::uint32_t len;
    if (!u32(&len) || len > max_len || pos_ + len > s_.size()) return false;
    v->assign(s_, pos_, len);
    pos_ += len;
    return true;
  }
  std::size_t pos() const { return pos_; }

 private:
  bool u32_n(std::uint32_t* v, int n) {
    if (pos_ + static_cast<std::size_t>(n) > s_.size()) return false;
    *v = 0;
    for (int i = 0; i < n; ++i)
      *v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(s_[pos_ + i]))
            << (8 * i);
    pos_ += static_cast<std::size_t>(n);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void put_u16(std::string& s, std::uint16_t v) {
  put_u8(s, static_cast<std::uint8_t>(v));
  put_u8(s, static_cast<std::uint8_t>(v >> 8));
}

std::string frame(const std::string& body) {
  std::string s;
  s.reserve(kFrameHeaderBytes + body.size() + 4);
  put_u32(s, kFrameMagic);
  put_u32(s, kProtocolVersion);
  put_u32(s, static_cast<std::uint32_t>(body.size()));
  s += body;
  put_u32(s, crc32_ieee(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size()));
  return s;
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kEnroll: return "enroll";
    case Op::kVerify: return "verify";
    case Op::kLotReport: return "lot-report";
    case Op::kStats: return "stats";
    case Op::kChallenge: return "challenge";
  }
  return "?";
}

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kOverloaded: return "overloaded";
    case Status::kRateLimited: return "rate-limited";
    case Status::kDeadlineExceeded: return "deadline-exceeded";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kInvalid: return "invalid";
    case Status::kFailed: return "failed";
    case Status::kUnavailable: return "unavailable";
  }
  return "?";
}

std::string encode_request_frame(const Request& rq) {
  std::string b;
  put_u64(b, rq.request_id);
  put_u32(b, rq.tenant);
  put_u32(b, rq.deadline_ms);
  put_u8(b, static_cast<std::uint8_t>(rq.op));
  switch (rq.op) {
    case Op::kPing:
      put_u32(b, rq.delay_ms);
      break;
    case Op::kEnroll:
      put_u64(b, rq.die);
      put_u32(b, rq.npe);
      break;
    case Op::kVerify:
      put_u64(b, rq.die);
      break;
    case Op::kChallenge:
      put_u64(b, rq.die);
      put_u64(b, rq.nonce);
      break;
    case Op::kLotReport:
    case Op::kStats:
      break;
  }
  return frame(b);
}

std::string encode_response_frame(const Response& rs) {
  std::string b;
  put_u64(b, rs.request_id);
  put_u8(b, static_cast<std::uint8_t>(rs.status));
  put_u8(b, static_cast<std::uint8_t>(rs.op));
  put_str(b, rs.message.size() > kMaxMessage
                 ? rs.message.substr(0, kMaxMessage)
                 : rs.message);
  if (rs.status == Status::kOk) {
    switch (rs.op) {
      case Op::kPing:
      case Op::kStats:
        break;
      case Op::kEnroll:
        put_u32(b, rs.cycles_run);
        put_u8(b, rs.resumed);
        break;
      case Op::kVerify: {
        put_u8(b, static_cast<std::uint8_t>(rs.verdict));
        put_u8(b, rs.fields ? 1 : 0);
        if (rs.fields) {
          put_u16(b, rs.fields->manufacturer_id);
          put_u32(b, rs.fields->die_id);
          put_u8(b, rs.fields->speed_grade);
          put_u8(b, static_cast<std::uint8_t>(rs.fields->status));
          put_u16(b, rs.fields->date_code);
        }
        put_f64(b, rs.zero_fraction);
        put_f64(b, rs.replica_disagreement);
        put_u64(b, rs.extract_ns);
        put_u32(b, rs.ecc_corrected);
        put_u64(b, rs.retries);
        break;
      }
      case Op::kLotReport:
        put_u64(b, rs.lot.enrolled);
        put_u64(b, rs.lot.verifies);
        put_u64(b, rs.lot.genuine);
        put_u64(b, rs.lot.no_watermark);
        put_u64(b, rs.lot.tampered);
        put_u64(b, rs.lot.unreadable);
        break;
      case Op::kChallenge:
        put_u8(b, rs.challenge.accepted);
        put_u8(b, rs.challenge.subset_genuine);
        put_u8(b, rs.challenge.replicas_present);
        put_u8(b, rs.challenge.response_consistent);
        put_u8(b, rs.challenge.probe_fresh);
        put_u8(b, static_cast<std::uint8_t>(rs.challenge.verdict));
        put_f64(b, rs.challenge.subset_zero_fraction);
        put_f64(b, rs.challenge.response_zero_fraction);
        put_f64(b, rs.challenge.response_error);
        put_f64(b, rs.challenge.probe_erased_fraction);
        put_u64(b, rs.challenge.t_pew_ns);
        put_u64(b, rs.challenge.t_resp_ns);
        put_u32(b, rs.challenge.probe_segment);
        break;
    }
  }
  return frame(b);
}

std::optional<Request> decode_request_body(const std::string& body) {
  Reader r(body);
  Request rq;
  std::uint8_t op = 0;
  if (!r.u64(&rq.request_id) || !r.u32(&rq.tenant) ||
      !r.u32(&rq.deadline_ms) || !r.u8(&op))
    return std::nullopt;
  if (op < static_cast<std::uint8_t>(Op::kPing) ||
      op > static_cast<std::uint8_t>(Op::kChallenge))
    return std::nullopt;
  rq.op = static_cast<Op>(op);
  switch (rq.op) {
    case Op::kPing:
      if (!r.u32(&rq.delay_ms)) return std::nullopt;
      break;
    case Op::kEnroll:
      if (!r.u64(&rq.die) || !r.u32(&rq.npe)) return std::nullopt;
      break;
    case Op::kVerify:
      if (!r.u64(&rq.die)) return std::nullopt;
      break;
    case Op::kChallenge:
      if (!r.u64(&rq.die) || !r.u64(&rq.nonce)) return std::nullopt;
      break;
    case Op::kLotReport:
    case Op::kStats:
      break;
  }
  if (r.pos() != body.size()) return std::nullopt;  // trailing garbage
  return rq;
}

std::optional<Response> decode_response_body(const std::string& body) {
  Reader r(body);
  Response rs;
  std::uint8_t status = 0, op = 0;
  if (!r.u64(&rs.request_id) || !r.u8(&status) || !r.u8(&op))
    return std::nullopt;
  if (status > static_cast<std::uint8_t>(Status::kUnavailable))
    return std::nullopt;
  if (op < static_cast<std::uint8_t>(Op::kPing) ||
      op > static_cast<std::uint8_t>(Op::kChallenge))
    return std::nullopt;
  rs.status = static_cast<Status>(status);
  rs.op = static_cast<Op>(op);
  if (!r.str(&rs.message, kMaxMessage)) return std::nullopt;
  if (rs.status == Status::kOk) {
    switch (rs.op) {
      case Op::kPing:
      case Op::kStats:
        break;
      case Op::kEnroll:
        if (!r.u32(&rs.cycles_run) || !r.u8(&rs.resumed)) return std::nullopt;
        break;
      case Op::kVerify: {
        std::uint8_t verdict = 0, has_fields = 0;
        if (!r.u8(&verdict) ||
            verdict > static_cast<std::uint8_t>(Verdict::kUnreadable) ||
            !r.u8(&has_fields) || has_fields > 1)
          return std::nullopt;
        rs.verdict = static_cast<Verdict>(verdict);
        if (has_fields) {
          WatermarkFields f;
          std::uint8_t test_status = 0;
          if (!r.u16(&f.manufacturer_id) || !r.u32(&f.die_id) ||
              !r.u8(&f.speed_grade) || !r.u8(&test_status) ||
              test_status > 1 || !r.u16(&f.date_code))
            return std::nullopt;
          f.status = static_cast<TestStatus>(test_status);
          rs.fields = f;
        }
        std::uint32_t ecc = 0;
        if (!r.f64(&rs.zero_fraction) || !r.f64(&rs.replica_disagreement) ||
            !r.u64(&rs.extract_ns) || !r.u32(&ecc) || !r.u64(&rs.retries))
          return std::nullopt;
        rs.ecc_corrected = ecc;
        break;
      }
      case Op::kLotReport:
        if (!r.u64(&rs.lot.enrolled) || !r.u64(&rs.lot.verifies) ||
            !r.u64(&rs.lot.genuine) || !r.u64(&rs.lot.no_watermark) ||
            !r.u64(&rs.lot.tampered) || !r.u64(&rs.lot.unreadable))
          return std::nullopt;
        break;
      case Op::kChallenge: {
        auto flag = [&r](std::uint8_t* v) { return r.u8(v) && *v <= 1; };
        std::uint8_t verdict = 0;
        if (!flag(&rs.challenge.accepted) ||
            !flag(&rs.challenge.subset_genuine) ||
            !flag(&rs.challenge.replicas_present) ||
            !flag(&rs.challenge.response_consistent) ||
            !flag(&rs.challenge.probe_fresh) || !r.u8(&verdict) ||
            verdict > static_cast<std::uint8_t>(Verdict::kUnreadable))
          return std::nullopt;
        rs.challenge.verdict = static_cast<Verdict>(verdict);
        if (!r.f64(&rs.challenge.subset_zero_fraction) ||
            !r.f64(&rs.challenge.response_zero_fraction) ||
            !r.f64(&rs.challenge.response_error) ||
            !r.f64(&rs.challenge.probe_erased_fraction) ||
            !r.u64(&rs.challenge.t_pew_ns) ||
            !r.u64(&rs.challenge.t_resp_ns) ||
            !r.u32(&rs.challenge.probe_segment))
          return std::nullopt;
        break;
      }
    }
  }
  if (r.pos() != body.size()) return std::nullopt;  // trailing garbage
  return rs;
}

void FrameParser::feed(const char* data, std::size_t n) {
  if (bad_) return;
  buf_.append(data, n);
}

FrameParser::State FrameParser::next(std::string* body) {
  if (bad_) return State::kBad;
  if (buf_.size() < kFrameHeaderBytes) {
    // Reject a hostile prefix as soon as the bytes prove it, not only once
    // a full (possibly huge) header has been buffered.
    Reader r(buf_);
    std::uint32_t magic = 0;
    if (buf_.size() >= 4 && (!r.u32(&magic) || magic != kFrameMagic)) {
      bad_ = true;
      return State::kBad;
    }
    return State::kNeedMore;
  }
  Reader r(buf_);
  std::uint32_t magic = 0, version = 0, body_len = 0;
  if (!r.u32(&magic) || magic != kFrameMagic || !r.u32(&version) ||
      version != kProtocolVersion || !r.u32(&body_len) ||
      body_len > kMaxFrameBody) {
    bad_ = true;
    return State::kBad;
  }
  const std::size_t total = kFrameHeaderBytes + body_len + 4;
  if (buf_.size() < total) return State::kNeedMore;
  // CRC-first: nothing inside the body is interpreted until the trailer
  // proves the bytes arrived intact.
  std::uint32_t want = 0;
  {
    const std::string tail(buf_, total - 4, 4);
    Reader tr(tail);
    if (!tr.u32(&want)) {
      bad_ = true;
      return State::kBad;
    }
  }
  const std::uint32_t got = crc32_ieee(
      reinterpret_cast<const std::uint8_t*>(buf_.data()), total - 4);
  if (want != got) {
    bad_ = true;
    return State::kBad;
  }
  body->assign(buf_, kFrameHeaderBytes, body_len);
  buf_.erase(0, total);
  return State::kFrame;
}

}  // namespace flashmark::serve
