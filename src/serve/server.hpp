// flashmarkd — the authentication daemon (ROADMAP item 4).
//
// A Server owns the die population (an out-of-core store::DieStore over
// `<data_dir>/dies`) and a fleet::ThreadPool of request workers, and serves
// enroll / verify / lot-report / stats over the CRC-framed protocol of
// serve/protocol.hpp on a Unix (and optionally TCP) socket.
//
// Robustness model (DESIGN.md §15):
//
//  * Admission control. Requests pass three gates in the connection thread
//    before any work is queued: drain state (kShuttingDown), per-tenant
//    token bucket (kRateLimited), bounded queue (kOverloaded). Load is shed
//    with a typed status the client can back off on — the queue never grows
//    unboundedly and a slow worker cannot wedge the accept path.
//
//  * Per-request deadlines. Every admitted request carries a
//    fleet::DieProgress token; handlers tick it between units of work and a
//    watchdog thread cancels (first-cause-wins) any request past its
//    deadline, exactly like the fleet batch watchdog cancels a stuck die.
//    A request that expires while still queued is answered without running.
//
//  * Crash-safe enroll. Enrollment imprints through a src/session journaled
//    session under `<data_dir>/sessions/die-<n>`; the die file is installed
//    into the store only after the imprint completed (atomic replace,
//    fsync). kill -9 at any instant loses nothing: on the next start() the
//    daemon resumes every incomplete session to completion and installs the
//    result before accepting traffic. A deadline-cancelled enroll leaves
//    its session behind, so the client's retry *resumes* instead of
//    restarting.
//
//  * Graceful drain. request_drain() (SIGTERM in the binary) stops accepts,
//    answers new requests kShuttingDown, gives in-flight work a grace
//    period, deadline-cancels what remains, flushes every dirty die
//    (DieStore::flush_all) and returns 0 only when all state is on disk.
//
//  * Chaos hooks. A fault::FaultConfig in the config wraps every request's
//    die HAL in a FaultyHal (plan derived from the die seed, so injected
//    faults are deterministic per die); socket-level faults are the
//    client's/test's job (tests/serve_chaos_test.cpp).
//
// Determinism: serving is scheduling-dependent by nature (queue order, shed
// decisions, latencies) and sits OUTSIDE the byte-identity contract — but a
// verify *result* is a pure function of (die state, verify options), so any
// two daemons serving the same population return bit-identical verdicts
// (docs/REPRODUCIBILITY.md §10).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/challenge.hpp"
#include "fault/fault.hpp"
#include "fleet/fleet.hpp"
#include "fleet/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "store/die_store.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace flashmark::obs {
class MetricsRegistry;
}  // namespace flashmark::obs

namespace flashmark::serve {

struct ServerConfig {
  // --- endpoint -----------------------------------------------------------
  /// Unix-domain socket path; bound on start() (a stale file is unlinked).
  /// Empty = no unix listener (then tcp_port must be >= 0).
  std::string socket_path;
  /// >= 0: also listen on 127.0.0.1:<tcp_port> (0 = ephemeral; the bound
  /// port is readable via tcp_port() after start()). -1 = unix only.
  int tcp_port = -1;
  std::size_t max_connections = 256;

  // --- request plane ------------------------------------------------------
  unsigned workers = 4;
  /// Bounded admission queue: requests beyond (queue_capacity + running)
  /// are shed with kOverloaded.
  std::size_t queue_capacity = 64;
  std::uint32_t default_deadline_ms = 2'000;
  std::uint32_t max_deadline_ms = 30'000;
  /// A peer that started a frame must finish it within this budget
  /// (slow-loris defense; the connection is closed, not the daemon stalled).
  std::uint32_t frame_timeout_ms = 2'000;
  /// Drain: how long in-flight work may finish before it is cancelled.
  std::uint32_t drain_grace_ms = 5'000;
  double watchdog_poll_ms = 2.0;

  // --- per-tenant token bucket (rate 0 = unlimited) -----------------------
  double tenant_rate_per_s = 0.0;
  double tenant_burst = 8.0;
  /// Hard cap on tracked tenant buckets: a hostile client cycling through
  /// u32 tenant ids must not grow daemon memory without bound. At the cap,
  /// buckets idle past a full refill are evicted (they carry no rate state);
  /// if every bucket is mid-window, new tenants are answered kRateLimited.
  std::size_t max_tenant_buckets = 4'096;

  // --- population ---------------------------------------------------------
  /// Daemon state root: `<data_dir>/dies` (store) + `<data_dir>/sessions`
  /// (in-progress enrolls). Created on start().
  std::string data_dir;
  DeviceConfig device = DeviceConfig::msp430f5438();
  std::uint64_t master_seed = 0xF1A5'0001;
  std::size_t max_resident = 256;
  /// Die-id validity bound (field/range discipline: an id past the
  /// population size is kInvalid, not a gigantic allocation).
  std::uint64_t max_dies = 1u << 20;

  // --- enroll -------------------------------------------------------------
  std::size_t segment = 0;
  std::size_t n_replicas = 7;
  std::uint32_t default_npe = 4'000;
  std::uint32_t max_npe = 100'000;
  std::uint32_t checkpoint_every = 512;
  std::optional<SipHashKey> key;
  std::uint16_t manufacturer_id = 0x7C01;
  std::uint8_t speed_grade = 2;
  std::uint16_t date_code = 0x33A;  ///< ((year-2000)<<6)|week

  // --- verify -------------------------------------------------------------
  /// Baseline verify options; `key`/`n_replicas` above override the
  /// matching fields so verification always matches enrollment.
  VerifyOptions verify;

  // --- challenge ----------------------------------------------------------
  /// Challenge-response interrogation policy (the kChallenge op). The
  /// expectation tables are calibrated on start() against a synthetic
  /// golden die imprinted exactly like an enrollment at default_npe, so a
  /// daemon's expectations always match its own population.
  ChallengePolicy challenge = default_challenge_policy();

  // --- chaos --------------------------------------------------------------
  /// When any fault is enabled, every request's die HAL is wrapped in a
  /// FaultyHal whose plan derives from the die seed (deterministic per die).
  fault::FaultConfig faults;
  /// Counterfeit-hardware instrument (test/chaos): when set, every verify
  /// and challenge request's HAL is replaced by whatever this returns for
  /// (inner hal, die) — e.g. an attack::ReplayHal answering from a recorded
  /// extraction. Return nullptr to leave the die genuine. Mirrors `faults`:
  /// the daemon's behavior under counterfeit parts is testable end-to-end
  /// without a second hardware model.
  std::function<std::unique_ptr<FlashHal>(FlashHal&, std::uint64_t die)>
      counterfeit_hal;
};

/// Point-in-time snapshot of the daemon's counters (all monotonic except
/// queue_depth/in_flight/resident).
struct ServerStats {
  std::uint64_t accepted_conns = 0;
  std::uint64_t rejected_conns = 0;   ///< over max_connections or draining
  std::uint64_t protocol_errors = 0;  ///< torn/corrupt frames, bad bodies
  std::uint64_t slow_loris_closed = 0;

  std::uint64_t requests = 0;  ///< decoded requests (pre-admission)
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t shutting_down = 0;
  std::uint64_t invalid = 0;
  std::uint64_t failed = 0;

  std::uint64_t enrolls_ok = 0;
  std::uint64_t enroll_resumes = 0;      ///< enrolls that continued a session
  std::uint64_t verifies_ok = 0;
  std::uint64_t sessions_recovered = 0;  ///< start()-time crash recovery
  std::uint64_t sessions_discarded = 0;  ///< unusable session dirs removed

  std::uint64_t queue_depth = 0;  ///< admitted, not yet executing
  std::uint64_t in_flight = 0;    ///< executing right now
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  /// Joins everything. Calls request_drain()+wait() if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Recover interrupted enroll sessions, bind the listener(s), spawn the
  /// accept/worker/watchdog threads. Throws std::runtime_error on bind or
  /// recovery I/O failures.
  void start();

  /// Begin graceful drain (idempotent, thread-safe — but NOT
  /// async-signal-safe: a signal handler must relay through a self-pipe,
  /// as tools/flashmarkd.cpp does).
  void request_drain();

  /// Block until request_drain() was called, then complete the drain:
  /// stop accepting, finish or cancel in-flight work, join all threads,
  /// flush the store. Returns the daemon exit code: 0 when every dirty die
  /// reached disk, 1 otherwise.
  int wait();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Actual bound TCP port (after start(); -1 when no TCP listener).
  int tcp_port() const { return bound_tcp_port_; }

  ServerStats stats() const;
  LotReportBody lot_report() const;

  /// The challenge policy actually in force (cfg_.challenge with its
  /// expectation tables filled by the start-time golden calibration).
  /// Lets a test or auditor re-run challenge_verify() locally and compare
  /// against the daemon bit-for-bit. Valid after start().
  const ChallengePolicy& challenge_policy() const { return challenge_policy_; }

  /// Deterministically-sorted CSV snapshot (the kStats payload): serve
  /// gauges + store gauges + latency summary, built on a private registry
  /// so it works with global metrics off.
  std::string stats_csv() const;

  /// Fold the serve gauges into `reg` under "serve." (Exporter integration;
  /// called automatically on drain when metrics are enabled).
  void fold_into(obs::MetricsRegistry& reg) const;

  const ServerConfig& config() const { return cfg_; }
  /// The store (for tests: residency/flush assertions).
  store::DieStore& store() { return *store_; }

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> dead{false};
    /// Closes fd. The fd is owned by the Conn and closed only when the last
    /// ConnPtr drops: a pool worker can still be inside send_response after
    /// the conn thread exits, and closing under it would let the kernel
    /// reuse the fd number for a newly accepted client — a response written
    /// to the wrong peer. shutdown() (which never frees the number) is the
    /// only teardown signal sent while references remain.
    ~Conn();
  };
  using ConnPtr = std::shared_ptr<Conn>;

  struct ConnSlot {
    ConnPtr conn;
    std::thread th;
    std::atomic<bool> finished{false};
  };

  struct Work {
    Request rq;
    ConnPtr conn;
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<fleet::DieProgress> progress;
  };

  struct ActiveEntry {
    std::shared_ptr<fleet::DieProgress> progress;
    std::chrono::steady_clock::time_point deadline;
  };

  struct TokenBucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last{};
    bool primed = false;
  };

  // listener / connection plane
  void accept_loop();
  void conn_loop(ConnSlot* slot);
  void reap_finished_conns();
  /// Handle one decoded frame on `conn`. Returns false when the connection
  /// must be closed (protocol violation).
  bool handle_frame(const ConnPtr& conn, const std::string& body);
  void send_response(const ConnPtr& conn, const Response& rs);
  void respond_error(const ConnPtr& conn, const Request& rq, Status status,
                     const std::string& message);

  // request plane
  bool admit_tenant(std::uint32_t tenant);
  void process(Work w);
  void handle_ping(const Work& w, Response& rs);
  void handle_enroll(const Work& w, Response& rs);
  void handle_verify(const Work& w, Response& rs);
  void handle_challenge(const Work& w, Response& rs);
  void handle_lot_report(Response& rs);
  void finish(const Work& w, Response& rs,
              std::chrono::steady_clock::time_point started);
  void watchdog_loop();

  /// start() body; on throw, start() unwinds partial state and resets
  /// started_ so the object stays destructible (and start() retryable).
  void start_locked();

  // population
  void recover_sessions();
  void scan_enrolled();
  std::string sessions_dir() const;
  std::string session_dir(std::uint64_t die) const;
  bool is_enrolled(std::uint64_t die) const;
  WatermarkSpec spec_for(std::uint64_t die, std::uint32_t npe) const;
  /// Install a finished enroll: die file into the store dir (atomic), then
  /// retire the session directory.
  IoStatus install_die(std::uint64_t die, const Device& dev);

  void count_status(Status s);
  std::mutex& stripe_for(std::uint64_t die);

  ServerConfig cfg_;
  VerifyOptions verify_opts_;  ///< cfg_.verify with key/replicas aligned
  ChallengePolicy challenge_policy_;  ///< cfg_.challenge, calibrated on start()
  /// Non-empty when the start-time calibration rejected cfg_.challenge as
  /// unsound for this (device, default_npe); challenge requests then fail
  /// typed (kFailed) while the verify service runs normally.
  std::string challenge_error_;
  std::unique_ptr<store::DieStore> store_;
  std::unique_ptr<fleet::ThreadPool> pool_;

  // listeners
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  std::thread accept_th_;
  std::atomic<bool> accept_stop_{false};

  // connections
  mutable std::mutex conns_mu_;
  std::list<std::unique_ptr<ConnSlot>> conns_;

  // admission + queue (guarded by q_mu_)
  mutable std::mutex q_mu_;
  std::condition_variable drain_cv_;   ///< pending_ transitions
  std::size_t pending_ = 0;    ///< admitted (queued or executing)
  std::size_t executing_ = 0;  ///< currently in a handler
  /// Set by wait() under q_mu_ before it can observe pending_ == 0 and free
  /// the pool. A connection thread that raced past the draining_ load must
  /// re-check this under q_mu_ before touching pending_/pool_: either its
  /// admission is refused (kShuttingDown), or its pending_ increment is
  /// visible to wait() and the pool outlives its submit.
  bool q_closed_ = false;
  /// Drain phase 2: queued-but-not-started work answers kShuttingDown
  /// instead of executing.
  std::atomic<bool> abort_queued_{false};

  mutable std::mutex tenants_mu_;
  std::unordered_map<std::uint32_t, TokenBucket> tenants_;

  // deadline watchdog
  std::thread watchdog_th_;
  std::atomic<bool> watchdog_stop_{false};
  mutable std::mutex active_mu_;
  std::list<ActiveEntry> active_;

  // per-die serialization of enroll/verify
  static constexpr std::size_t kStripes = 64;
  std::vector<std::unique_ptr<std::mutex>> stripes_;

  // enrolled population
  mutable std::mutex enrolled_mu_;
  std::unordered_set<std::uint64_t> enrolled_;

  // drain state machine: running -> draining (request_drain) -> stopped
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::mutex drain_mu_;
  std::condition_variable drain_requested_cv_;
  bool drain_requested_ = false;

  // counters (relaxed atomics; snapshot via stats())
  struct AtomicStats {
    std::atomic<std::uint64_t> accepted_conns{0}, rejected_conns{0},
        protocol_errors{0}, slow_loris_closed{0}, requests{0}, ok{0},
        overloaded{0}, rate_limited{0}, deadline_exceeded{0},
        shutting_down{0}, invalid{0}, failed{0}, enrolls_ok{0},
        enroll_resumes{0}, verifies_ok{0}, sessions_recovered{0},
        sessions_discarded{0}, genuine{0}, no_watermark{0}, tampered{0},
        unreadable{0};
  };
  AtomicStats n_;

  mutable std::mutex latency_mu_;
  RunningStats latency_ms_;
};

}  // namespace flashmark::serve
