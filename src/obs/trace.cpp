#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace flashmark::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Format ns as Chrome's microsecond timestamps with ns resolution kept.
std::string us_str(std::int64_t ns) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3)
     << static_cast<double>(ns) / 1000.0;
  return os.str();
}

/// Minimal JSON string escape; span names are literals we control, but a
/// malformed name must corrupt one string, not the file.
std::string json_escape(const char* s) {
  std::string out;
  for (; s && *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Lane bookkeeping: each thread caches (collector, lane) so a fresh
/// collector re-assigns lanes from 0 instead of inheriting stale ids.
struct LaneSlot {
  const void* owner = nullptr;
  std::uint32_t lane = 0;
};
thread_local LaneSlot t_lane;

}  // namespace

std::atomic<TraceCollector*> TraceCollector::current_{nullptr};

TraceCollector::TraceCollector(std::size_t max_events)
    : max_events_(max_events), epoch_ns_(steady_now_ns()) {
  events_.reserve(std::min<std::size_t>(max_events, 4096));
}

TraceCollector::~TraceCollector() {
  // Leaving a destroyed collector installed would hand spans a dangling
  // pointer; uninstall defensively (Exporter uninstalls explicitly first).
  TraceCollector* self = this;
  current_.compare_exchange_strong(self, nullptr, std::memory_order_relaxed);
}

TraceCollector* TraceCollector::install(TraceCollector* c) {
  return current_.exchange(c, std::memory_order_relaxed);
}

std::int64_t TraceCollector::now_ns() const {
  return steady_now_ns() - epoch_ns_;
}

std::uint32_t TraceCollector::lane() const {
  if (t_lane.owner != this) {
    t_lane.owner = this;
    t_lane.lane = next_lane_.fetch_add(1, std::memory_order_relaxed);
  }
  return t_lane.lane;
}

void TraceCollector::record(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lk(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(ev);
}

void TraceCollector::async_begin(const char* name, std::uint64_t id) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = "die";
  ev.ph = 'b';
  ev.tid = lane();
  ev.id = id;
  ev.ts_ns = now_ns();
  record(ev);
}

void TraceCollector::async_end(const char* name, std::uint64_t id) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = "die";
  ev.ph = 'e';
  ev.tid = lane();
  ev.id = id;
  ev.ts_ns = now_ns();
  record(ev);
}

void TraceCollector::instant(const char* name, std::uint64_t id) {
  TraceEvent ev;
  ev.name = name;
  ev.ph = 'i';
  ev.tid = lane();
  ev.id = id;
  ev.ts_ns = now_ns();
  record(ev);
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::vector<TraceEvent> evs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    evs = events_;
  }
  // One Chrome lane per worker thread, monotone within the lane: nested
  // scopes retire inner-first, so buffer order is end-time order — sort by
  // begin time instead. Stable: same-instant events keep recording order.
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_ns < b.ts_ns;
                   });
  return evs;
}

std::string TraceCollector::chrome_json() const {
  const std::vector<TraceEvent> evs = snapshot();
  std::uint32_t max_lane = 0;
  for (const TraceEvent& ev : evs) max_lane = std::max(max_lane, ev.tid);

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };
  // Lane naming metadata first (viewers show it regardless of position,
  // but leading metadata keeps the event stream contiguous).
  for (std::uint32_t lane_id = 0; lane_id <= max_lane && !evs.empty();
       ++lane_id) {
    std::ostringstream md;
    md << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << lane_id
       << ",\"args\":{\"name\":\"lane-" << lane_id << "\"}}";
    emit(md.str());
  }
  for (const TraceEvent& ev : evs) {
    std::ostringstream ln;
    ln << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << json_escape(ev.cat ? ev.cat : "flashmark") << "\",\"ph\":\"" << ev.ph
       << "\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":" << us_str(ev.ts_ns);
    if (ev.ph == 'X') ln << ",\"dur\":" << us_str(ev.dur_ns);
    if (ev.ph == 'b' || ev.ph == 'e')
      ln << ",\"id\":\"0x" << std::hex << ev.id << std::dec << "\"";
    if (ev.ph == 'i') ln << ",\"s\":\"t\"";
    if (ev.has_sim || (ev.ph == 'i' && ev.id != 0)) {
      ln << ",\"args\":{";
      bool first_arg = true;
      if (ev.has_sim) {
        ln << "\"sim_ts_us\":" << us_str(ev.sim_ts_ns)
           << ",\"sim_dur_us\":" << us_str(ev.sim_dur_ns);
        first_arg = false;
      }
      if (ev.ph == 'i' && ev.id != 0)
        ln << (first_arg ? "" : ",") << "\"die\":" << ev.id;
      ln << "}";
    }
    ln << "}";
    emit(ln.str());
  }
  os << "\n],\"otherData\":{\"dropped_events\":" << dropped() << "}}\n";
  return os.str();
}

bool TraceCollector::write_chrome_json(const std::string& path,
                                       std::string* error) const {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!(ok && closed)) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

Span::Span(const char* name, SimNowFn sim_now, const void* sim_ctx)
    : col_(TraceCollector::current()),
      name_(name),
      sim_now_(sim_now),
      sim_ctx_(sim_ctx) {
  if (!col_) return;  // disabled path: the one atomic load above, nothing else
  t0_ns_ = col_->now_ns();
  if (sim_now_) sim0_ns_ = sim_now_(sim_ctx_);
}

Span::~Span() {
  if (!col_) return;
  TraceEvent ev;
  ev.name = name_;
  ev.ph = 'X';
  ev.tid = col_->lane();
  ev.ts_ns = t0_ns_;
  ev.dur_ns = col_->now_ns() - t0_ns_;
  if (sim_now_) {
    ev.has_sim = true;
    ev.sim_ts_ns = sim0_ns_;
    ev.sim_dur_ns = sim_now_(sim_ctx_) - sim0_ns_;
  }
  col_->record(ev);
}

AsyncSpan::AsyncSpan(const char* name, std::uint64_t id)
    : col_(TraceCollector::current()), name_(name), id_(id) {
  if (col_) col_->async_begin(name_, id_);
}

AsyncSpan::~AsyncSpan() {
  if (col_) col_->async_end(name_, id_);
}

}  // namespace flashmark::obs
