// Metrics registry — named counters, gauges, and fixed-bin histograms.
//
// The observability companion to the trace layer (obs/trace.hpp): where a
// trace answers "where did this one run spend its time", the registry
// answers "how much work happened, total". Fleet batches fold their per-die
// op counters in here, the CLI exports it behind --metrics-out, and
// bench/perf_micro snapshots it into BENCH_obs.json.
//
// Determinism contract (docs/REPRODUCIBILITY.md §6): exports are sorted by
// (kind, name) — never by insertion or thread order — and the values the
// built-in fold sites record are order-independent (integer counters, per-die
// gauges, histogram bin counts). Consequently a registry fed only by
// deterministic fold sites exports byte-identical CSV/JSON at any --threads
// value. Wall-clock quantities are deliberately kept out of the registry;
// they belong in the trace.
//
// Thread safety: metric handles are created under a registry mutex and are
// stable for the registry's lifetime; updating a Counter/Gauge is a relaxed
// atomic, updating a HistogramMetric takes a per-histogram mutex. The
// whole-registry toggle (set_metrics_enabled) lets hot paths skip fold work
// with one relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace flashmark::obs {

/// Monotone event count. Relaxed atomic: totals are exact, ordering is not
/// observable (the simulation never reads metrics back).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar. For deterministic export, a gauge written from
/// fleet worker threads must be per-die (one name per die) — concurrent
/// writers racing on one shared gauge would make the surviving value
/// scheduling-dependent.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bin histogram (util/stats Histogram) plus order-independent
/// min/max. Mean/variance are deliberately not exported: floating-point
/// accumulation order varies with scheduling, and the export must not.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins)
      : hist_(lo, hi, bins) {}

  void add(double x);

  /// Deterministic render: "count=..;under=..;over=..;min=..;max=..;bins=a|b".
  std::string render() const;

 private:
  mutable std::mutex mu_;
  Histogram hist_;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Find-or-create. Handles are stable references owned by the registry;
  /// callers may cache them across calls. A histogram re-requested with a
  /// different shape keeps its original shape (first registration wins).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins);

  /// CSV export: header "kind,name,value", rows sorted by (kind, name).
  /// Counters render as integers, gauges round-trip exact (max_digits10),
  /// histograms as their render() string. Byte-identical across --threads
  /// when fed only deterministic values (docs/REPRODUCIBILITY.md §6).
  std::string to_csv() const;

  /// JSON export: {"counters":{...},"gauges":{...},"histograms":{...}},
  /// keys sorted, one metric per line. Same determinism contract as CSV.
  std::string to_json() const;

  /// Drop every metric (used between CLI commands and by tests).
  void clear();

  /// The process-wide registry the built-in fold sites target.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Master switch for the built-in fold sites (fleet batch fold, controller
/// fold, CLI). Off by default: a run that never asks for --metrics-out pays
/// one relaxed load per *batch*, not per operation. Tests and the Exporter
/// flip it on.
void set_metrics_enabled(bool on);
bool metrics_enabled();

/// Render a die index with fixed width so lexicographic export order equals
/// numeric die order ("die.00007" < "die.00012").
std::string die_key(std::size_t die);

/// Scoped exporter driving both obs sinks from CLI flags: a non-empty
/// `trace_path` installs a process-wide TraceCollector and writes Chrome
/// trace JSON on destruction; a non-empty `metrics_path` clears + enables
/// the global registry and writes its CSV (or JSON when the path ends in
/// ".json") on destruction. Empty paths are inert, so binaries can
/// construct one unconditionally from parsed flags.
class Exporter {
 public:
  Exporter(std::string trace_path, std::string metrics_path);
  ~Exporter();
  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::unique_ptr<class TraceCollector> collector_;
};

}  // namespace flashmark::obs
