#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>

#include "obs/trace.hpp"

namespace flashmark::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Round-trip exact double render (max_digits10) so exports are
/// byte-identical whenever the values are bit-identical.
std::string exact(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

/// JSON string escape for metric names (shared shape with the trace
/// exporter; names are caller-controlled but must not corrupt the file).
std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

bool write_file(const std::string& path, const std::string& body,
                std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!(ok && closed)) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void HistogramMetric::add(double x) {
  std::lock_guard<std::mutex> lk(mu_);
  const bool first = hist_.total() == 0;
  hist_.add(x);  // throws on NaN before min/max are touched
  if (first) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

std::string HistogramMetric::render() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  os << "count=" << hist_.total() << ";under=" << hist_.underflow()
     << ";over=" << hist_.overflow();
  if (hist_.total() > 0) os << ";min=" << exact(min_) << ";max=" << exact(max_);
  os << ";bins=";
  for (std::size_t i = 0; i < hist_.bins(); ++i) {
    if (i) os << '|';
    os << hist_.bin_count(i);
  }
  return os.str();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(lo, hi, bins);
  return *slot;
}

std::string MetricsRegistry::to_csv() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  os << "kind,name,value\n";
  // std::map iteration is already name-sorted; kinds are emitted in fixed
  // order, so the full export order is (kind, name) — never insertion or
  // thread order (docs/REPRODUCIBILITY.md §6).
  for (const auto& [name, c] : counters_)
    os << "counter," << name << ',' << c->value() << '\n';
  for (const auto& [name, g] : gauges_)
    os << "gauge," << name << ',' << exact(g->value()) << '\n';
  for (const auto& [name, h] : histograms_)
    os << "histogram," << name << ',' << h->render() << '\n';
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << exact(g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": \""
       << json_escape(h->render()) << "\"";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

std::string die_key(std::size_t die) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "die.%05zu", die);
  return buf;
}

Exporter::Exporter(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  if (!trace_path_.empty()) {
    collector_ = std::make_unique<TraceCollector>();
    TraceCollector::install(collector_.get());
  }
  if (!metrics_path_.empty()) {
    MetricsRegistry::global().clear();
    set_metrics_enabled(true);
  }
}

Exporter::~Exporter() {
  if (collector_) {
    TraceCollector::install(nullptr);
    std::string error;
    if (!collector_->write_chrome_json(trace_path_, &error))
      std::cerr << "[obs] trace export failed: " << error << "\n";
  }
  if (!metrics_path_.empty()) {
    set_metrics_enabled(false);
    const MetricsRegistry& reg = MetricsRegistry::global();
    const std::string body =
        ends_with(metrics_path_, ".json") ? reg.to_json() : reg.to_csv();
    std::string error;
    if (!write_file(metrics_path_, body, &error))
      std::cerr << "[obs] metrics export failed: " << error << "\n";
  }
}

}  // namespace flashmark::obs
