// Trace spans — dual-clock (wall + simulated) scoped timing that exports
// Chrome trace_event JSON (load the file in about://tracing or
// https://ui.perfetto.dev).
//
// The paper's headline claims are timing claims (40k–70k P/E cycles per
// imprint, sub-second extraction), so the interesting question inside a
// fleet batch is *where the time goes*: which phase of which die, on which
// worker thread, in wall-clock and in simulated time. A Span records both:
// wall time from std::chrono::steady_clock, simulated time through an
// optional function-pointer probe (so fm_obs depends on nothing above
// fm_util — the HAL is plugged in by the caller via FLASHMARK_SPAN_SIM).
//
// Cost model:
//  * No collector installed (the default): a Span is one relaxed atomic
//    load and a branch — no clock read, no allocation, no lock. This is the
//    "disabled path" whose overhead tests/obs_test.cpp bounds and
//    bench/perf_micro quantifies (BM_DisabledSpan).
//  * FLASHMARK_TRACE=0 (CMake option): FLASHMARK_SPAN compiles to nothing
//    at all — the belt to the runtime toggle's suspenders.
//  * Collector installed: each span end is two clock reads plus one
//    mutex-guarded vector append, bounded by `max_events` (beyond it events
//    are dropped and counted, never reallocated without bound).
//
// Lanes: each OS thread gets a small sequential lane id (tid) on first
// record; one Chrome lane per fleet worker thread. Per-die work is bracketed
// with async events ('b'/'e', id = die index) so a die's activity reads as
// one horizontal band even as it hops threads. Export sorts events by
// (tid, ts) — ts is monotone within every lane regardless of the order
// nested scopes retired in.
//
// Traces record *wall* timestamps, so trace files are run-to-run noise by
// design and are NOT covered by the byte-identity contract
// (docs/REPRODUCIBILITY.md §6). The deterministic side lives in
// obs/metrics.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace flashmark::obs {

/// Probe returning the current simulated time in ns for an opaque context
/// (a FlashHal, a SimClock...). Kept as a plain function pointer so span
/// construction never allocates.
using SimNowFn = std::int64_t (*)(const void*);

/// Adapter for any object with `SimTime now() const` (FlashHal, SimClock,
/// FlashController). Use via FLASHMARK_SPAN_SIM.
template <typename T>
std::int64_t sim_now_adapter(const void* obj) {
  return static_cast<const T*>(obj)->now().as_ns();
}

/// One recorded event. Names must be string literals (or otherwise outlive
/// the collector) — events store the pointer, never a copy.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;  ///< category; null => "flashmark"
  char ph = 'X';              ///< 'X' complete, 'b'/'e' async, 'i' instant
  std::uint32_t tid = 0;      ///< lane (per-thread, registration order)
  std::uint64_t id = 0;       ///< async correlation id (die index)
  std::int64_t ts_ns = 0;     ///< wall time since collector epoch
  std::int64_t dur_ns = 0;    ///< wall duration ('X' only)
  std::int64_t sim_ts_ns = 0;  ///< simulated clock at span start
  std::int64_t sim_dur_ns = 0; ///< simulated time the span advanced
  bool has_sim = false;
};

/// Collects events from every thread and renders Chrome trace JSON.
/// Install/uninstall bracket a recording session; spans observe the
/// installed collector through one relaxed atomic.
class TraceCollector {
 public:
  explicit TraceCollector(std::size_t max_events = 1'000'000);
  ~TraceCollector();

  /// Install `c` as the process-wide collector (nullptr to uninstall).
  /// Returns the previous collector. Not reentrant with in-flight spans of
  /// the previous collector — install around batches, not inside them.
  static TraceCollector* install(TraceCollector* c);

  /// The installed collector, or nullptr (the near-zero disabled path).
  static TraceCollector* current() {
    return current_.load(std::memory_order_relaxed);
  }

  /// Wall ns since this collector was constructed (the trace epoch).
  std::int64_t now_ns() const;

  /// Lane id of the calling thread (assigned on first use).
  std::uint32_t lane() const;

  void record(const TraceEvent& ev);

  /// Async begin/end pair ('b'/'e'): one horizontal band per `id` in the
  /// viewer. Used for per-die bracketing in the fleet layer.
  void async_begin(const char* name, std::uint64_t id);
  void async_end(const char* name, std::uint64_t id);

  /// Thread-scoped instant event ('i') — e.g. a watchdog cancel decision.
  void instant(const char* name, std::uint64_t id = 0);

  /// Events recorded so far, sorted by (tid, ts_ns) — the exact order the
  /// JSON export uses. Ties keep recording order (stable sort), so an outer
  /// scope precedes inner scopes that started the same instant.
  std::vector<TraceEvent> snapshot() const;

  /// Events discarded after max_events filled up.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Chrome trace_event JSON (object form, one event per line). Loads in
  /// about://tracing and Perfetto; sim times travel in each event's "args".
  std::string chrome_json() const;

  /// Write chrome_json() to `path`; returns false (and reports on the
  /// returned message) on I/O failure.
  bool write_chrome_json(const std::string& path, std::string* error) const;

 private:
  static std::atomic<TraceCollector*> current_;

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t max_events_;
  std::atomic<std::uint64_t> dropped_{0};
  std::int64_t epoch_ns_ = 0;
  mutable std::atomic<std::uint32_t> next_lane_{0};
};

/// RAII dual-clock span. Constructed disabled (one atomic load) when no
/// collector is installed; otherwise stamps wall/sim starts now and records
/// one complete event when the scope exits. Use the FLASHMARK_SPAN macros
/// rather than naming Span directly — they compile away under
/// -DFLASHMARK_TRACE=0.
class Span {
 public:
  explicit Span(const char* name) : Span(name, nullptr, nullptr) {}
  Span(const char* name, SimNowFn sim_now, const void* sim_ctx);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceCollector* col_;  // nullptr == disabled for this scope
  const char* name_;
  SimNowFn sim_now_;
  const void* sim_ctx_;
  std::int64_t t0_ns_ = 0;
  std::int64_t sim0_ns_ = 0;
};

/// RAII async band: async_begin on entry, async_end on exit (both no-ops
/// when no collector is installed at entry).
class AsyncSpan {
 public:
  AsyncSpan(const char* name, std::uint64_t id);
  ~AsyncSpan();
  AsyncSpan(const AsyncSpan&) = delete;
  AsyncSpan& operator=(const AsyncSpan&) = delete;

 private:
  TraceCollector* col_;
  const char* name_;
  std::uint64_t id_;
};

}  // namespace flashmark::obs

// FLASHMARK_TRACE gates whether spans exist in the binary at all; the
// runtime install() gate decides whether an existing span costs more than an
// atomic load. Builds that never define the macro get spans (the runtime
// default keeps them near-free).
#ifndef FLASHMARK_TRACE
#define FLASHMARK_TRACE 1
#endif

#define FM_OBS_CONCAT2(a, b) a##b
#define FM_OBS_CONCAT(a, b) FM_OBS_CONCAT2(a, b)

#if FLASHMARK_TRACE
/// Scoped wall-clock span: FLASHMARK_SPAN("imprint.cycle");
#define FLASHMARK_SPAN(name) \
  ::flashmark::obs::Span FM_OBS_CONCAT(fm_span_, __COUNTER__) { name }
/// Scoped dual-clock span; `obj` is anything with `SimTime now() const`
/// (a FlashHal, SimClock, controller...) that outlives the scope:
/// FLASHMARK_SPAN_SIM("extract.round", hal);
#define FLASHMARK_SPAN_SIM(name, obj)                                         \
  ::flashmark::obs::Span FM_OBS_CONCAT(fm_span_, __COUNTER__) {               \
    name,                                                                     \
        &::flashmark::obs::sim_now_adapter<                                   \
            std::remove_cv_t<std::remove_reference_t<decltype(obj)>>>,        \
        &(obj)                                                                \
  }
#else
#define FLASHMARK_SPAN(name) \
  do {                       \
  } while (false)
#define FLASHMARK_SPAN_SIM(name, obj) \
  do {                                \
  } while (false)
#endif
