#include "session/journal.hpp"

#include <cstring>
#include <stdexcept>

#include <sys/stat.h>
#include <unistd.h>

#include "obs/trace.hpp"
#include "util/crc.hpp"

namespace flashmark::session {

namespace {

constexpr const char* kHeader = "FLASHMARK-JOURNAL 1";

std::uint32_t record_crc(const std::string& body) {
  return crc32_ieee(reinterpret_cast<const std::uint8_t*>(body.data()),
                    body.size());
}

std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

}  // namespace

std::string frame_record(const JournalRecord& rec) {
  if (rec.type.empty() || rec.type.find(' ') != std::string::npos)
    throw std::invalid_argument("frame_record: bad record type");
  if (rec.payload.find('\n') != std::string::npos)
    throw std::invalid_argument("frame_record: payload must be single-line");
  const std::string body =
      rec.payload.empty() ? rec.type : rec.type + " " + rec.payload;
  return "R " + crc_hex(record_crc(body)) + " " + body + "\n";
}

ReplayResult replay_journal(const std::string& path) {
  FLASHMARK_SPAN("journal.replay");
  std::string text;
  const IoStatus st = read_file(path, &text);
  if (!st) throw std::runtime_error("replay_journal: " + st.error);

  ReplayResult out;
  // Header line.
  const auto head_end = text.find('\n');
  if (head_end == std::string::npos ||
      text.substr(0, head_end) != kHeader)
    throw std::runtime_error("replay_journal: bad journal header in " + path);
  out.header_ok = true;

  std::size_t pos = head_end + 1;
  while (pos < text.size()) {
    const auto eol = text.find('\n', pos);
    if (eol == std::string::npos) break;  // torn tail: incomplete last line
    const std::string line = text.substr(pos, eol - pos);
    // "R <crc8> <body>"
    if (line.size() < 11 || line.compare(0, 2, "R ") != 0 || line[10] != ' ')
      break;
    const std::string body = line.substr(11);
    const std::string crc_field = line.substr(2, 8);
    char* end = nullptr;
    const unsigned long crc = std::strtoul(crc_field.c_str(), &end, 16);
    if (!end || *end != '\0') break;
    if (static_cast<std::uint32_t>(crc) != record_crc(body)) break;
    JournalRecord rec;
    const auto space = body.find(' ');
    if (space == std::string::npos) {
      rec.type = body;
    } else {
      rec.type = body.substr(0, space);
      rec.payload = body.substr(space + 1);
    }
    out.records.push_back(std::move(rec));
    pos = eol + 1;
  }
  out.dropped_bytes = text.size() - pos;
  return out;
}

JournalWriter::JournalWriter(std::FILE* f, std::string path, bool durable)
    : file_(f), path_(std::move(path)), durable_(durable) {}

JournalWriter JournalWriter::create(const std::string& path,
                                    const std::vector<JournalRecord>& first,
                                    bool durable) {
  std::string content = std::string(kHeader) + "\n";
  for (const JournalRecord& rec : first) content += frame_record(rec);
  // Atomic creation: the journal appears on disk complete with its opening
  // records, or not at all.
  if (const IoStatus st = atomic_write_file(path, content, durable); !st)
    throw std::runtime_error("journal create: " + st.error);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f)
    throw std::runtime_error("journal create: reopen failed: " + path);
  return JournalWriter(f, path, durable);
}

JournalWriter JournalWriter::open(const std::string& path, bool durable) {
  // Validate the header and measure the trusted prefix so appends extend it
  // rather than a torn tail.
  const ReplayResult prefix = replay_journal(path);
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (!f) throw std::runtime_error("journal open: cannot open " + path);
  if (prefix.dropped_bytes > 0) {
    struct stat sb {};
    if (::fstat(::fileno(f), &sb) != 0 ||
        ::ftruncate(::fileno(f),
                    sb.st_size -
                        static_cast<off_t>(prefix.dropped_bytes)) != 0) {
      std::fclose(f);
      throw std::runtime_error("journal open: cannot truncate torn tail of " +
                               path);
    }
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    throw std::runtime_error("journal open: seek failed: " + path);
  }
  return JournalWriter(f, path, durable);
}

void JournalWriter::append(const JournalRecord& rec, bool sync) {
  FLASHMARK_SPAN("journal.append");
  const std::string line = frame_record(rec);
  std::size_t want = line.size();
  if (FaultyFsio::armed()) {
    IoCause injected = IoCause::kNone;
    const std::size_t allow =
        FaultyFsio::filter_write(path_, line.size(), &injected);
    if (allow < line.size()) {
      // Deliver the torn prefix and flush it, so the on-disk journal really
      // carries the half-record a crashed real write would leave — replay's
      // torn-tail handling is what is under test.
      if (allow > 0) std::fwrite(line.data(), 1, allow, file_.get());
      std::fflush(file_.get());
      throw std::runtime_error("journal append: write failed: " + path_ +
                               " (" + to_string(injected) + ")");
    }
  }
  if (std::fwrite(line.data(), 1, want, file_.get()) != want)
    throw std::runtime_error("journal append: write failed: " + path_);
  if (sync && durable_) this->sync();
  if (sync && !durable_) {
    if (std::fflush(file_.get()) != 0)
      throw std::runtime_error("journal append: flush failed: " + path_);
  }
}

void JournalWriter::sync() {
  if (const IoStatus st = fsync_stream(file_.get()); !st)
    throw std::runtime_error("journal sync: " + st.error + " (" + path_ + ")");
}

}  // namespace flashmark::session
