// Write-ahead journal framing for crash-recoverable sessions.
//
// A journal is an append-only text file of CRC-32-framed records:
//
//   FLASHMARK-JOURNAL 1          <- plain header line
//   R <crc32-hex8> <type> <payload...>\n
//   R <crc32-hex8> <type> <payload...>\n
//   ...
//
// The CRC covers exactly "<type> <payload>" (the bytes between the checksum
// field and the newline). Replay accepts the longest valid prefix: a record
// counts only if its line is complete (newline-terminated) and its CRC
// matches; the first torn or corrupted line ends the trusted prefix and
// everything after it is reported as dropped. This is the WAL discipline —
// a SIGKILL mid-append loses at most the unsynced tail, never the prefix.
//
// Durability points are explicit: `append(rec, /*sync=*/true)` fsyncs the
// file, so a record returned by replay after a crash was *on disk* when the
// writer last synced. The layer is payload-agnostic; the imprint session and
// batch-resume record vocabularies live in resumable.hpp / the fleet layer.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/fsio.hpp"

namespace flashmark::session {

/// One framed record: a type word (no spaces) plus free-form payload.
struct JournalRecord {
  std::string type;
  std::string payload;
};

/// Serialize one record as its framed line (exposed for tests).
std::string frame_record(const JournalRecord& rec);

/// The longest trusted prefix of a journal file.
struct ReplayResult {
  std::vector<JournalRecord> records;
  std::size_t dropped_bytes = 0;  ///< torn/corrupt tail discarded
  bool header_ok = false;
};

/// Parse the journal at `path`. Throws std::runtime_error only when the file
/// cannot be read at all or its header line is unrecognizable; torn and
/// corrupted tails are tolerated and reported, not fatal.
ReplayResult replay_journal(const std::string& path);

/// Append-only journal writer.
class JournalWriter {
 public:
  /// Create (truncate) the journal at `path` and durably write the header
  /// plus `first` records in one step, so a journal that exists on disk
  /// always carries its opening records. Throws std::runtime_error on I/O
  /// failure.
  static JournalWriter create(const std::string& path,
                              const std::vector<JournalRecord>& first,
                              bool durable = true);

  /// Open an existing journal for appending (resume). The trusted prefix
  /// must already have been read via replay_journal; appending truncates a
  /// torn tail first so new records extend the valid prefix.
  static JournalWriter open(const std::string& path, bool durable = true);

  /// Append one record; with `sync` the record is fsync'd before returning.
  /// Throws std::runtime_error on I/O failure — for an imprint session an
  /// unsyncable journal means progress can no longer be made durable, which
  /// callers must treat as fatal rather than silently continuing.
  void append(const JournalRecord& rec, bool sync);

  /// fsync any buffered appends.
  void sync();

  const std::string& path() const { return path_; }

 private:
  JournalWriter(std::FILE* f, std::string path, bool durable);

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  bool durable_ = true;
};

}  // namespace flashmark::session
