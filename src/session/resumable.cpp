#include "session/resumable.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "mcu/persist.hpp"
#include "obs/trace.hpp"

namespace flashmark::session {

namespace {

constexpr const char* kJournalName = "imprint.fmj";

std::string ckpt_file_name(std::uint32_t cycles) {
  return "die-" + std::to_string(cycles) + ".fm";
}

std::uint64_t kv_u64(const std::map<std::string, std::string>& kv,
                     const std::string& key) {
  const auto it = kv.find(key);
  if (it == kv.end())
    throw std::runtime_error("journal record: missing field '" + key + "'");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (!end || end == it->second.c_str() || *end != '\0')
    throw std::runtime_error("journal record: bad value for '" + key + "'");
  return v;
}

std::string kv_str(const std::map<std::string, std::string>& kv,
                   const std::string& key) {
  const auto it = kv.find(key);
  if (it == kv.end())
    throw std::runtime_error("journal record: missing field '" + key + "'");
  return it->second;
}

/// The begin record, parsed: the parameters a session committed to.
struct BeginInfo {
  std::size_t segment = 0;
  std::uint32_t npe = 0;
  std::uint32_t every = 0;
  bool accelerated = false;
  std::uint32_t max_retries = 0;
  std::string pattern;  ///< '0'/'1' bitstring

  static BeginInfo parse(const JournalRecord& rec) {
    if (rec.type != "begin")
      throw std::runtime_error("imprint journal: first record is not 'begin'");
    const auto kv = parse_kv(rec.payload);
    BeginInfo b;
    b.segment = static_cast<std::size_t>(kv_u64(kv, "seg"));
    b.npe = static_cast<std::uint32_t>(kv_u64(kv, "npe"));
    b.every = static_cast<std::uint32_t>(kv_u64(kv, "every"));
    b.accelerated = kv_u64(kv, "accelerated") != 0;
    b.max_retries = static_cast<std::uint32_t>(kv_u64(kv, "max_retries"));
    b.pattern = kv_str(kv, "pattern");
    if (b.npe == 0 || b.every == 0)
      throw std::runtime_error("imprint journal: corrupt begin record");
    return b;
  }

  std::string payload() const {
    std::ostringstream os;
    os << "seg=" << segment << " npe=" << npe << " every=" << every
       << " accelerated=" << (accelerated ? 1 : 0)
       << " max_retries=" << max_retries << " pattern=" << pattern;
    return os.str();
  }
};

struct CkptInfo {
  std::uint32_t cycles = 0;
  std::string file;
};

/// Everything replay tells us about an imprint journal.
struct ImprintLog {
  BeginInfo begin;
  std::vector<CkptInfo> ckpts;  ///< in journal order
  bool completed = false;
  std::uint64_t end_retries = 0;
  bool torn_tail = false;
};

ImprintLog parse_imprint_journal(const std::string& dir) {
  const ReplayResult replay = replay_journal(imprint_journal_path(dir));
  if (replay.records.empty())
    throw std::runtime_error("imprint journal: no trusted records in " + dir);
  ImprintLog log;
  log.begin = BeginInfo::parse(replay.records.front());
  log.torn_tail = replay.dropped_bytes > 0;
  for (std::size_t i = 1; i < replay.records.size(); ++i) {
    const JournalRecord& rec = replay.records[i];
    if (rec.type == "ckpt") {
      const auto kv = parse_kv(rec.payload);
      log.ckpts.push_back(CkptInfo{
          static_cast<std::uint32_t>(kv_u64(kv, "cycles")), kv_str(kv, "file")});
    } else if (rec.type == "end") {
      const auto kv = parse_kv(rec.payload);
      log.completed = true;
      log.end_retries = kv_u64(kv, "retries");
    }
    // Unknown record types are skipped: newer writers may add vocabulary
    // without breaking older readers.
  }
  return log;
}

/// Checkpointing state shared by the fresh-run and resume paths.
class CheckpointSink {
 public:
  CheckpointSink(std::string dir, Device& dev, JournalWriter journal,
                 const SessionConfig& cfg)
      : dir_(std::move(dir)),
        dev_(dev),
        journal_(std::move(journal)),
        durable_(cfg.durable),
        gc_(cfg.gc_checkpoints) {}

  /// WAL step: die state first (atomic file), then the record naming it.
  void checkpoint(std::uint32_t cycles) {
    FLASHMARK_SPAN("session.checkpoint");
    const std::string name = ckpt_file_name(cycles);
    if (const IoStatus st = save_device_file(dev_, dir_ + "/" + name); !st)
      throw std::runtime_error("imprint session: checkpoint failed: " +
                               st.error);
    journal_.append({"ckpt", "cycles=" + std::to_string(cycles) +
                                 " file=" + name},
                    /*sync=*/durable_);
    // The die on disk now equals the die in memory: clean until it moves
    // again (the DieStore eviction path skips clean dies entirely).
    dev_.mark_clean();
    note_live(cycles);
  }

  void end(std::uint32_t cycles, const ImprintReport& report) {
    std::ostringstream os;
    os << "cycles=" << cycles << " elapsed_ns=" << report.elapsed.as_ns()
       << " retries=" << report.retries;
    journal_.append({"end", os.str()}, /*sync=*/true);
  }

  /// Seed the GC set with checkpoints an earlier process already wrote.
  void note_live(std::uint32_t cycles) {
    if (cycles == 0) return;  // die-0.fm is never collected
    if (std::find(live_.begin(), live_.end(), cycles) == live_.end())
      live_.push_back(cycles);
    if (!gc_) return;
    std::sort(live_.begin(), live_.end());
    while (live_.size() > 2) {
      std::remove((dir_ + "/" + ckpt_file_name(live_.front())).c_str());
      live_.erase(live_.begin());
    }
  }

 private:
  std::string dir_;
  Device& dev_;
  JournalWriter journal_;
  bool durable_;
  bool gc_;
  std::vector<std::uint32_t> live_;
};

/// Drive the Fig. 7 loop from `start` to `npe` with the session's
/// checkpoint cadence composed onto the caller's watchdog hooks.
ImprintReport drive(Device& dev, const BeginInfo& begin, std::uint32_t start,
                    const SessionConfig& cfg, CheckpointSink& sink) {
  const Addr addr = dev.config().geometry.segment_base(begin.segment);
  ImprintOptions opts;
  opts.npe = begin.npe;
  opts.start_cycle = start;
  opts.accelerated = begin.accelerated;
  opts.strategy = ImprintStrategy::kLoop;
  opts.max_retries = begin.max_retries;
  opts.cancelled = cfg.cancelled;
  opts.on_cycle = [&](std::uint32_t cycles_done) {
    if (cfg.on_cycle) cfg.on_cycle(cycles_done);
    // The final checkpoint is written together with the end record by the
    // caller, after the loop's report is complete.
    if (cycles_done % begin.every == 0 && cycles_done < begin.npe)
      sink.checkpoint(cycles_done);
  };
  const BitVec pattern = BitVec::from_string(begin.pattern);
  ImprintReport report = imprint_flashmark(dev.hal(), addr, pattern, opts);
  sink.checkpoint(begin.npe);
  sink.end(begin.npe, report);
  return report;
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f) std::fclose(f);
  return f != nullptr;
}

}  // namespace

std::map<std::string, std::string> parse_kv(const std::string& payload) {
  std::map<std::string, std::string> kv;
  std::istringstream is(payload);
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::runtime_error("journal record: bad k=v token '" + tok + "'");
    kv[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return kv;
}

std::string imprint_journal_path(const std::string& dir) {
  return dir + "/" + kJournalName;
}

SessionStatus inspect_session(const std::string& dir) {
  SessionStatus st;
  if (!file_exists(imprint_journal_path(dir))) return st;
  try {
    const ImprintLog log = parse_imprint_journal(dir);
    st.exists = true;
    st.completed = log.completed;
    st.torn_tail = log.torn_tail;
    st.npe = log.begin.npe;
    st.checkpoint_every = log.begin.every;
    st.segment = log.begin.segment;
    st.cycles_done =
        log.completed ? log.begin.npe
                      : (log.ckpts.empty() ? 0 : log.ckpts.back().cycles);
    st.retries = log.end_retries;
  } catch (const std::exception&) {
    // Unusable journal (corrupt header / begin record): report "no session"
    // rather than throwing from a pure inspection call.
    st = SessionStatus{};
  }
  return st;
}

ImprintReport run_imprint_session(const std::string& dir, Device& dev,
                                  Addr addr, const BitVec& pattern,
                                  std::uint32_t npe, const SessionConfig& cfg) {
  FLASHMARK_SPAN("session.run");
  if (npe == 0)
    throw std::invalid_argument("run_imprint_session: npe must be > 0");
  if (cfg.checkpoint_every == 0)
    throw std::invalid_argument(
        "run_imprint_session: checkpoint_every must be > 0");
  if (const IoStatus st = make_dirs(dir); !st)
    throw std::runtime_error("run_imprint_session: " + st.error);
  if (file_exists(imprint_journal_path(dir)))
    throw std::runtime_error(
        "run_imprint_session: journal already exists in " + dir +
        " — resume it or remove it explicitly");

  BeginInfo begin;
  begin.segment = dev.config().geometry.segment_index(addr);
  begin.npe = npe;
  begin.every = cfg.checkpoint_every;
  begin.accelerated = cfg.accelerated;
  begin.max_retries = cfg.max_retries;
  begin.pattern = pattern.to_string();

  // Pristine pre-imprint state: the resume fallback of last resort.
  if (const IoStatus st = save_device_file(dev, dir + "/" + ckpt_file_name(0));
      !st)
    throw std::runtime_error("run_imprint_session: initial checkpoint: " +
                             st.error);
  dev.mark_clean();
  JournalWriter journal = JournalWriter::create(
      imprint_journal_path(dir),
      {{"begin", begin.payload()}, {"ckpt", "cycles=0 file=" + ckpt_file_name(0)}},
      cfg.durable);

  CheckpointSink sink(dir, dev, std::move(journal), cfg);
  return drive(dev, begin, /*start=*/0, cfg, sink);
}

ResumeResult resume_imprint_session(const std::string& dir,
                                    const SessionConfig& cfg) {
  FLASHMARK_SPAN("session.resume");
  const ImprintLog log = parse_imprint_journal(dir);

  // Newest checkpoint that actually loads wins; an orphaned or damaged die
  // file demotes to the previous one. die-0.fm backs the worst case: resume
  // from the pristine state re-executes everything, still byte-identical.
  ResumeResult out;
  std::size_t used = log.ckpts.size();
  std::string last_error = "no checkpoint records";
  for (std::size_t i = log.ckpts.size(); i-- > 0;) {
    try {
      out.dev = load_device_file(dir + "/" + log.ckpts[i].file);
      out.resumed_from = log.ckpts[i].cycles;
      used = i;
      break;
    } catch (const std::exception& e) {
      last_error = e.what();
    }
  }
  if (!out.dev) {
    // No ckpt record survived (journal torn right after `begin`), but the
    // pristine checkpoint is written *before* the journal is created, so a
    // valid begin record implies die-0.fm exists.
    try {
      out.dev = load_device_file(dir + "/" + ckpt_file_name(0));
      out.resumed_from = 0;
      used = 0;
    } catch (const std::exception& e) {
      last_error = e.what();
    }
  }
  if (!out.dev)
    throw std::runtime_error("resume_imprint_session: no loadable checkpoint in " +
                             dir + " (" + last_error + ")");

  if (log.completed && out.resumed_from == log.begin.npe) {
    out.already_complete = true;
    out.report.npe = log.begin.npe;
    out.report.accelerated = log.begin.accelerated;
    out.report.retries = log.end_retries;
    return out;
  }

  SessionConfig run_cfg = cfg;
  run_cfg.checkpoint_every = log.begin.every;
  run_cfg.accelerated = log.begin.accelerated;
  run_cfg.max_retries = log.begin.max_retries;

  JournalWriter journal =
      JournalWriter::open(imprint_journal_path(dir), cfg.durable);
  CheckpointSink sink(dir, *out.dev, std::move(journal), run_cfg);
  for (std::size_t i = 0; i <= used && i < log.ckpts.size(); ++i)
    sink.note_live(log.ckpts[i].cycles);

  out.report = drive(*out.dev, log.begin, out.resumed_from, run_cfg, sink);
  return out;
}

}  // namespace flashmark::session
