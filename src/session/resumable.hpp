// Crash-recoverable imprint sessions (the ResumableImprint driver).
//
// Imprinting is the long pole of the whole scheme — NPE = 40k–70k P/E
// cycles at tens of milliseconds each — and oxide damage is monotone and
// irreversible: an interrupted run can neither restart from zero (the extra
// cycles would overshoot NPE and distort the partial-erase window) nor be
// detected after the fact. This driver makes the imprint durable:
//
//   <dir>/imprint.fmj     write-ahead journal (journal.hpp framing)
//   <dir>/die-<k>.fm      atomic die checkpoint taken after cycle k
//
// Protocol (WAL discipline — state first, then the record naming it):
//   1. checkpoint the die to die-<k>.fm (atomic temp+rename+fsync),
//   2. append "ckpt cycles=<k> file=die-<k>.fm" and fsync the journal.
// A crash between 1 and 2 leaves an orphaned die file that replay ignores;
// a crash mid-append leaves a torn tail that replay drops. Either way the
// journal's last valid ckpt record names a checkpoint that exists and is
// internally consistent, so resume always has a sound starting point.
//
// Resumed runs are *byte-identical* to uninterrupted ones: the die-format-v2
// checkpoint captures every bit of simulation state (cell physics, clock,
// temperature, read-noise RNG stream), and the Fig. 7 loop is a
// deterministic function of that state, so running cycles [k, NPE) on the
// reloaded die reproduces exactly what the lost process would have done.
// The contract is specified in docs/REPRODUCIBILITY.md §5 and enforced by
// tests/session_test.cpp, which truncates the journal at every record
// boundary and diffs the full serialized die state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/imprint.hpp"
#include "mcu/device.hpp"
#include "session/journal.hpp"

namespace flashmark::session {

/// Knobs of a journaled imprint run. Everything that must be identical
/// across crash and resume (cadence, acceleration, retry budget, NPE,
/// pattern) is written into the journal's begin record at session start and
/// re-read on resume — a resumed session cannot accidentally diverge from
/// the parameters the original run committed to.
struct SessionConfig {
  /// Cycles between durable checkpoints. Smaller = less lost work on a
  /// crash, more fsync overhead (bench/checkpoint_overhead.cpp quantifies
  /// the trade-off).
  std::uint32_t checkpoint_every = 1024;
  /// fsync journal appends and checkpoint files. Disable only in tests and
  /// benchmarks that measure the non-durability baseline.
  bool durable = true;
  /// Checkpoint files older than the two most recent are deleted after each
  /// checkpoint; die-0.fm (the pristine pre-imprint state) is always kept as
  /// the fallback of last resort. Set false to keep every checkpoint.
  bool gc_checkpoints = true;
  /// Transient-fault retry budget (ImprintOptions::max_retries).
  std::uint32_t max_retries = 0;
  /// Accelerated (erase-verify early-exit) imprint cycles.
  bool accelerated = false;
  /// Watchdog passthroughs (ImprintOptions::cancelled / ::on_cycle). The
  /// session layer composes them with its own checkpoint hook.
  std::function<bool()> cancelled;
  std::function<void(std::uint32_t cycles_done)> on_cycle;
};

/// What a session directory's journal says, without touching any die state.
struct SessionStatus {
  bool exists = false;     ///< journal present with a valid begin record
  bool completed = false;  ///< end record seen
  bool torn_tail = false;  ///< journal carried a torn/corrupt tail
  std::uint32_t npe = 0;
  std::uint32_t checkpoint_every = 0;
  std::uint32_t cycles_done = 0;  ///< last durably recorded checkpoint
  std::size_t segment = 0;
  std::uint64_t retries = 0;      ///< from the end record, when completed
};

/// Inspect `dir`'s imprint journal. Missing/unreadable journal =>
/// exists == false; never throws for an absent session.
SessionStatus inspect_session(const std::string& dir);

/// Start a fresh journaled imprint of `pattern` (one bit per cell, bit 0 =>
/// stressed) on the segment at `addr`, checkpointing into `dir` (created if
/// needed). Refuses (std::runtime_error) to overwrite an existing journal —
/// resuming and restarting must be explicit, distinct decisions.
/// Returns the report of the executed cycles.
ImprintReport run_imprint_session(const std::string& dir, Device& dev,
                                  Addr addr, const BitVec& pattern,
                                  std::uint32_t npe, const SessionConfig& cfg);

/// Outcome of resume_imprint_session.
struct ResumeResult {
  std::unique_ptr<Device> dev;    ///< the die, continued to completion
  ImprintReport report;           ///< cycles executed by *this* process
  std::uint32_t resumed_from = 0; ///< cycle count of the checkpoint used
  bool already_complete = false;  ///< journal had an end record; no work run
};

/// Resume the crashed (or completed) session in `dir`: replay the journal,
/// load the newest loadable checkpoint, run the remaining cycles with the
/// begin record's parameters, and write the end record. Only `durable`,
/// `gc_checkpoints` and the watchdog hooks of `cfg` apply on resume; the
/// imprint parameters come from the journal. Throws std::runtime_error when
/// the directory holds no usable session.
ResumeResult resume_imprint_session(const std::string& dir,
                                    const SessionConfig& cfg = {});

/// Parse a "k=v k=v ..." record payload (shared vocabulary helper for the
/// session and fleet record types). Values must not contain spaces; the
/// trailing field may (it consumes the rest of the line).
std::map<std::string, std::string> parse_kv(const std::string& payload);

/// The journal path inside a session directory ("<dir>/imprint.fmj").
std::string imprint_journal_path(const std::string& dir);

}  // namespace flashmark::session
