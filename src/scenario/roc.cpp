#include "scenario/roc.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "fleet/fleet.hpp"
#include "util/crc.hpp"

namespace flashmark::scenario {

namespace {

constexpr std::uint32_t kShardMagic = 0x43524D46;  // "FMRC" little-endian
constexpr std::uint32_t kShardVersion = 1;

std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

// --- little-endian frame helpers (shard.cpp idiom) -------------------------

void put_u32(std::string& s, std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  s.append(reinterpret_cast<const char*>(b), 4);
}

void put_u64(std::string& s, std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  s.append(reinterpret_cast<const char*>(b), 8);
}

class Reader {
 public:
  explicit Reader(const std::string& s) : s_(s) {}
  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > s_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i)
      *v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(s_[pos_ + i]))
            << (8 * i);
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (pos_ + 8 > s_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i)
      *v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(s_[pos_ + i]))
            << (8 * i);
    pos_ += 8;
    return true;
  }
  std::size_t pos() const { return pos_; }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Per-population partial histograms of one contiguous global-die range.
/// Deterministic: per-die scores land in slots indexed by die, then fold in
/// index order, so any thread count produces identical counts.
std::vector<ScoreHistogram> run_range(const RocConfig& cfg,
                                      std::uint64_t begin, std::uint64_t end,
                                      unsigned threads) {
  const std::size_t n_pops = cfg.populations.size();
  std::vector<DieScore> slots(static_cast<std::size_t>(end - begin));
  fleet::FleetOptions fo;
  fo.threads = threads;
  fleet::run_dies(
      slots.size(),
      [&](std::size_t i, fleet::DieCounters&) {
        const std::uint64_t g = begin + i;
        const std::size_t pop = static_cast<std::size_t>(g % n_pops);
        const std::uint64_t die = g / n_pops;
        slots[i] = run_and_score(cfg.base, cfg.populations[pop], die);
      },
      fo);
  std::vector<ScoreHistogram> hists(n_pops);
  for (std::size_t i = 0; i < slots.size(); ++i)
    hists[(begin + i) % n_pops].add(slots[i]);
  return hists;
}

std::string serialize_shard(const std::vector<ScoreHistogram>& hists,
                            std::uint64_t begin, std::uint64_t end) {
  std::string s;
  put_u32(s, kShardMagic);
  put_u32(s, kShardVersion);
  put_u64(s, begin);
  put_u64(s, end);
  put_u32(s, static_cast<std::uint32_t>(hists.size()));
  for (const ScoreHistogram& h : hists) {
    put_u64(s, h.n);
    put_u64(s, h.queries);
    put_u64(s, h.queries_passed);
    for (const std::uint64_t c : h.counts) put_u64(s, c);
  }
  put_u32(s, crc32_ieee(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size()));
  return s;
}

/// CRC-first, bounds-checked, range-echo-checked deserialization. Any
/// structural defect returns false (the caller raises).
bool deserialize_shard(const std::string& frame, std::uint64_t want_begin,
                       std::uint64_t want_end, std::size_t want_pops,
                       std::vector<ScoreHistogram>* out) {
  if (frame.size() < 4) return false;
  {
    const std::string tail(frame, frame.size() - 4, 4);
    Reader tr(tail);
    std::uint32_t want = 0;
    if (!tr.u32(&want)) return false;
    const std::uint32_t got =
        crc32_ieee(reinterpret_cast<const std::uint8_t*>(frame.data()),
                   frame.size() - 4);
    if (want != got) return false;
  }
  const std::string body(frame, 0, frame.size() - 4);
  Reader r(body);
  std::uint32_t magic = 0, version = 0, n_pops = 0;
  std::uint64_t begin = 0, end = 0;
  if (!r.u32(&magic) || magic != kShardMagic || !r.u32(&version) ||
      version != kShardVersion || !r.u64(&begin) || !r.u64(&end) ||
      !r.u32(&n_pops))
    return false;
  if (begin != want_begin || end != want_end || n_pops != want_pops)
    return false;
  std::vector<ScoreHistogram> hists(n_pops);
  std::uint64_t total = 0;
  for (ScoreHistogram& h : hists) {
    if (!r.u64(&h.n) || !r.u64(&h.queries) || !r.u64(&h.queries_passed))
      return false;
    std::uint64_t bin_sum = 0;
    for (std::uint64_t& c : h.counts) {
      if (!r.u64(&c)) return false;
      bin_sum += c;
    }
    if (bin_sum != h.n) return false;  // internally inconsistent
    total += h.n;
  }
  if (r.pos() != body.size()) return false;  // trailing garbage
  if (total != want_end - want_begin) return false;
  *out = std::move(hists);
  return true;
}

bool read_all(int fd, std::string* out) {
  char buf[4096];
  for (;;) {
    const ssize_t k = read(fd, buf, sizeof buf);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return true;
    out->append(buf, static_cast<std::size_t>(k));
  }
}

void write_all(int fd, const std::string& s) {
  std::size_t off = 0;
  while (off < s.size()) {
    const ssize_t k = write(fd, s.data() + off, s.size() - off);
    if (k < 0) {
      if (errno == EINTR) continue;
      return;  // parent will see a torn frame and raise
    }
    off += static_cast<std::size_t>(k);
  }
}

void shard_range(std::uint64_t n, unsigned slots, unsigned s,
                 std::uint64_t* begin, std::uint64_t* end) {
  const std::uint64_t base = n / slots;
  const std::uint64_t extra = n % slots;
  *begin = s * base + std::min<std::uint64_t>(s, extra);
  *end = *begin + base + (s < extra ? 1 : 0);
}

}  // namespace

void ScoreHistogram::add(const DieScore& score) {
  double s = score.score;
  if (s < 0.0) s = 0.0;
  std::size_t bin = static_cast<std::size_t>(s * kBins);
  if (bin >= kBins) bin = kBins - 1;
  ++counts[bin];
  ++n;
  queries += score.challenges;
  queries_passed += score.challenges_passed;
}

void ScoreHistogram::merge(const ScoreHistogram& other) {
  for (std::size_t i = 0; i < kBins; ++i) counts[i] += other.counts[i];
  n += other.n;
  queries += other.queries;
  queries_passed += other.queries_passed;
}

std::uint64_t ScoreHistogram::at_or_above(std::size_t bin) const {
  std::uint64_t total = 0;
  for (std::size_t i = bin; i < kBins; ++i) total += counts[i];
  return total;
}

RocOperatingPoint calibrate_operating_point(const ScoreHistogram& genuine,
                                            const ScoreHistogram& adversary) {
  if (genuine.n == 0)
    throw std::invalid_argument(
        "calibrate_operating_point: empty genuine population");
  if (adversary.n == 0)
    throw std::invalid_argument(
        "calibrate_operating_point: empty adversary population");
  RocOperatingPoint best;
  bool first = true;
  for (std::size_t bin = 0; bin <= ScoreHistogram::kBins; ++bin) {
    const double tpr = static_cast<double>(genuine.at_or_above(bin)) /
                       static_cast<double>(genuine.n);
    const double fpr = static_cast<double>(adversary.at_or_above(bin)) /
                       static_cast<double>(adversary.n);
    const double j = tpr - fpr;
    if (first || j > best.youden) {
      best = RocOperatingPoint{
          static_cast<double>(bin) / ScoreHistogram::kBins, tpr, fpr, j};
      first = false;
    }
  }
  return best;
}

std::string RocResult::roc_csv() const {
  if (hists.empty() || hists[0].n == 0)
    throw std::invalid_argument("roc_csv: empty genuine population");
  std::string csv = "population,threshold,fpr,tpr\n";
  for (std::size_t p = 1; p < hists.size(); ++p) {
    if (hists[p].n == 0)
      throw std::invalid_argument("roc_csv: empty adversary population: " +
                                  names[p]);
    std::uint64_t prev_g = ~0ull, prev_a = ~0ull;
    for (std::size_t bin = 0; bin <= ScoreHistogram::kBins; ++bin) {
      const std::uint64_t g = hists[0].at_or_above(bin);
      const std::uint64_t a = hists[p].at_or_above(bin);
      // Emit curve ends plus every staircase change-point.
      if (bin != 0 && bin != ScoreHistogram::kBins && g == prev_g &&
          a == prev_a)
        continue;
      prev_g = g;
      prev_a = a;
      csv += names[p];
      csv += ',';
      csv += fmt_g(static_cast<double>(bin) / ScoreHistogram::kBins);
      csv += ',';
      csv += fmt_g(static_cast<double>(a) / static_cast<double>(hists[p].n));
      csv += ',';
      csv += fmt_g(static_cast<double>(g) / static_cast<double>(hists[0].n));
      csv += '\n';
    }
  }
  return csv;
}

std::string RocResult::thresholds_csv() const {
  std::string csv = "population,threshold,tpr,fpr,youden\n";
  for (std::size_t p = 1; p < hists.size(); ++p) {
    const RocOperatingPoint op =
        calibrate_operating_point(hists[0], hists[p]);
    csv += names[p];
    csv += ',';
    csv += fmt_g(op.threshold);
    csv += ',';
    csv += fmt_g(op.tpr);
    csv += ',';
    csv += fmt_g(op.fpr);
    csv += ',';
    csv += fmt_g(op.youden);
    csv += '\n';
  }
  return csv;
}

RocResult run_roc_study(const RocConfig& cfg, const RocOptions& opts) {
  if (cfg.populations.empty())
    throw std::invalid_argument("run_roc_study: no populations");
  if (cfg.dies_per_population == 0)
    throw std::invalid_argument("run_roc_study: empty populations");

  // Deterministic family calibration; every forked shard re-derives the
  // identical policy from the master seed.
  RocConfig run_cfg = cfg;
  calibrate(run_cfg.base);

  const std::size_t n_pops = run_cfg.populations.size();
  const std::uint64_t total =
      run_cfg.dies_per_population * static_cast<std::uint64_t>(n_pops);
  const unsigned shards =
      std::max(1u, std::min<unsigned>(opts.shards,
                                      static_cast<unsigned>(total)));

  RocResult result;
  result.names.reserve(n_pops);
  for (const Scenario& s : run_cfg.populations) result.names.push_back(s.name);
  result.hists.assign(n_pops, ScoreHistogram{});

  if (shards == 1) {
    const std::vector<ScoreHistogram> hists =
        run_range(run_cfg, 0, total, opts.threads);
    for (std::size_t p = 0; p < n_pops; ++p) result.hists[p].merge(hists[p]);
    return result;
  }

  // Fork BEFORE any thread exists in this process (children build their own
  // fleet pools) — the fork/thread combination stays legal under TSan/ASan.
  struct ShardSlot {
    pid_t pid = -1;
    int fd = -1;
    std::uint64_t begin = 0, end = 0;
  };
  std::vector<ShardSlot> slots(shards);
  for (unsigned s = 0; s < shards; ++s) {
    shard_range(total, shards, s, &slots[s].begin, &slots[s].end);
    int pipefd[2];
    if (pipe(pipefd) != 0)
      throw std::runtime_error("run_roc_study: pipe() failed");
    const pid_t pid = fork();
    if (pid < 0) {
      close(pipefd[0]);
      close(pipefd[1]);
      throw std::runtime_error("run_roc_study: fork() failed");
    }
    if (pid == 0) {
      close(pipefd[0]);
      int code = 0;
      try {
        const std::vector<ScoreHistogram> hists = run_range(
            run_cfg, slots[s].begin, slots[s].end, opts.threads);
        write_all(pipefd[1], serialize_shard(hists, slots[s].begin,
                                             slots[s].end));
      } catch (...) {
        code = 1;
      }
      close(pipefd[1]);
      _exit(code);
    }
    close(pipefd[1]);
    slots[s].pid = pid;
    slots[s].fd = pipefd[0];
  }

  std::string error;
  for (unsigned s = 0; s < shards; ++s) {
    std::string frame;
    const bool read_ok = read_all(slots[s].fd, &frame);
    close(slots[s].fd);
    int status = 0;
    while (waitpid(slots[s].pid, &status, 0) < 0 && errno == EINTR) {
    }
    const bool exited_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::vector<ScoreHistogram> hists;
    if (!read_ok || !exited_ok ||
        !deserialize_shard(frame, slots[s].begin, slots[s].end, n_pops,
                           &hists)) {
      if (error.empty())
        error = "run_roc_study: shard " + std::to_string(s) +
                " lost or corrupt (a calibration curve must not silently "
                "drop population slices)";
      continue;
    }
    for (std::size_t p = 0; p < n_pops; ++p) result.hists[p].merge(hists[p]);
  }
  if (!error.empty()) throw std::runtime_error(error);
  return result;
}

}  // namespace flashmark::scenario
