// Composable adversary & lifetime scenarios (ROADMAP item 5).
//
// A Scenario is an ordered list of ScenarioSteps applied to a die before it
// is presented to the verifier: imprint the genuine watermark, age the die
// through the src/nand wear-leveling FTL with seeded product-life traffic,
// clone (fully or partially) onto fresh silicon, bake-anneal, remap worn
// segments behind an interposer. Chains express the real counterfeit
// pathways ("used die sold as new" = imprint → age → refurbish;
// "cloned reject" = imprint → partial clone → present), and every step is
// a pure function of (master_seed, die index), so a scenario population is
// byte-identical at any thread or shard split — the same §9 contract the
// lot layer keeps.
//
// Seeding contract (docs/REPRODUCIBILITY.md §11): the die's scenario
// randomness (FTL traffic schedule, payload bytes) comes from
// Rng(derive_die_seed(master_seed, die)).split(kScenarioStreamTag) —
// decorrelated from the die's manufacturing stream exactly like
// fault::kFaultStreamTag. Clone targets are fresh silicon:
// derive_die_seed(master_seed ^ kCloneTargetSalt, die).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "attack/attacks.hpp"
#include "core/challenge.hpp"
#include "core/watermark.hpp"
#include "mcu/device.hpp"

namespace flashmark::scenario {

/// Stream tag for the per-die scenario RNG (see header comment).
inline constexpr std::uint64_t kScenarioStreamTag = 0x5CE9'A210'F1A5ull;
/// Master-seed salt for clone-target dies (fresh silicon, decorrelated
/// from the genuine die but still deterministic per die index).
inline constexpr std::uint64_t kCloneTargetSalt = 0xC10E'7A26'5EEDull;

/// Product-life traffic profile for the FTL aging step. The die runs this
/// workload through an embedded wear-leveling FTL on a small NAND pool; the
/// resulting per-block erase distribution — realistic mixed hot/cold wear,
/// leveled by the FTL's least-worn allocation — is then replayed onto the
/// die's NOR data segments at `wear_scale` NOR cycles per NAND erase
/// (one sampled product life extrapolated to the full deployment).
struct LifetimeProfile {
  std::size_t host_writes = 1'200;   ///< logical page writes
  double hot_fraction = 0.8;         ///< fraction of writes to the hot set
  double hot_set_fraction = 0.25;    ///< hot set = this fraction of pages
  double wear_scale = 220.0;         ///< NOR P/E cycles per NAND block erase
};

enum class StepKind : std::uint8_t {
  kImprint,           ///< manufacturer imprints the genuine watermark
  kAge,               ///< FTL product-life traffic wears the data segments
  kFieldWear,         ///< uniform extra wear on the data segments
  kRefurbish,         ///< counterfeiter erases data segments before resale
  kForgeRemark,       ///< digital re-mark with a wrong-key watermark
  kCloneInto,         ///< full watermark clone onto fresh silicon
  kPartialCloneInto,  ///< clone only the first k replicas onto fresh silicon
  kBake,              ///< oven anneal (hours)
  kRemap,             ///< hide the most-probed worn segments behind spares
};

struct ScenarioStep {
  StepKind kind = StepKind::kImprint;
  LifetimeProfile life;            ///< kAge
  std::uint32_t cycles = 0;        ///< kFieldWear
  double hours = 0.0;              ///< kBake
  std::size_t clone_replicas = 0;  ///< kPartialCloneInto
  std::uint32_t clone_npe = 0;     ///< k(Partial)CloneInto; 0 = config npe
  std::size_t remap_spares = 0;    ///< kRemap

  static ScenarioStep imprint();
  static ScenarioStep age(LifetimeProfile profile = {});
  static ScenarioStep field_wear(std::uint32_t cycles);
  static ScenarioStep refurbish();
  static ScenarioStep forge_remark();
  static ScenarioStep clone_into(std::uint32_t npe = 0);
  static ScenarioStep partial_clone_into(std::size_t replicas,
                                         std::uint32_t npe = 0);
  static ScenarioStep bake(double hours);
  static ScenarioStep remap(std::size_t spares);
};

struct Scenario {
  std::string name;
  std::vector<ScenarioStep> steps;

  // --- canned threat-model scenarios --------------------------------------
  static Scenario genuine_fresh();
  /// Recycled: genuine part, full product life, digitally refurbished,
  /// sold as new (watermark intact — the freshness probe is the detector).
  static Scenario recycled_resale();
  /// Recycled + oven: like recycled_resale but baked to shave the wear
  /// signature before resale.
  static Scenario recycled_bake(double hours = 48.0);
  /// Recycled + interposer: worn probe segments remapped onto spares.
  static Scenario recycled_remap(std::size_t spares = 2);
  /// Aged blank die re-marked by an attacker without the signature key.
  static Scenario remarked_recycled();
  /// Fresh silicon carrying a partial clone (k of R replicas).
  static Scenario partial_clone(std::size_t replicas = 4);
  /// Fresh silicon carrying a full clone — the documented residual risk.
  static Scenario full_clone();
};

/// Population-level parameters shared by every scenario die.
struct ScenarioConfig {
  DeviceConfig device = DeviceConfig::msp430f5438();
  std::uint64_t master_seed = 0xF1A5'0001;
  SipHashKey key{0x1D6E, 0x0BB1};
  std::size_t n_replicas = 7;
  std::uint32_t npe = 60'000;       ///< manufacturer imprint cycles
  std::size_t segment = 0;          ///< watermark segment
  std::uint16_t manufacturer_id = 0x7C01;
  /// Verify options used for challenges and plain verifies; key/n_replicas
  /// above are authoritative and overwrite the matching fields.
  VerifyOptions verify;
  /// Challenge policy; probe_segments also define the "data segments" that
  /// aging and refurbishing touch. Calibrated by calibrate() below.
  ChallengePolicy policy = default_challenge_policy();
  /// Challenge queries per die when scoring.
  std::size_t n_challenges = 6;

  /// Verify options with key/replicas aligned (what scoring actually uses).
  VerifyOptions effective_verify() const;
  /// WatermarkSpec of die `die` (fields carry the die index).
  WatermarkSpec spec_for(std::uint64_t die) const;
};

/// Calibrate cfg.policy on a golden fresh die derived from the master seed
/// (die index 2^63, far outside any population) and validate the result.
void calibrate(ScenarioConfig& cfg);

/// The die a scenario hands to the verifier: a Device plus the (possibly
/// empty) interposer remap table. `hal()` applies the remapping.
struct PresentedDie {
  std::unique_ptr<Device> device;
  std::vector<std::pair<std::size_t, std::size_t>> remap;
  std::unique_ptr<RemapHal> remap_hal;

  FlashHal& hal();
};

/// Run every step of `sc` for die `die`. Deterministic: same (cfg, sc, die)
/// → bit-identical device state.
PresentedDie run_scenario_die(const ScenarioConfig& cfg, const Scenario& sc,
                              std::uint64_t die);

/// Detection statistic of one die: mean over cfg.n_challenges keyed queries
/// (nonces 0..M-1) of 0.6·authentic + 0.4·freshness, where authentic is the
/// challenge's subset+response gate and freshness the graded probe ratio.
/// 1.0 = indistinguishable from a golden fresh genuine part.
struct DieScore {
  double score = 0.0;
  std::size_t challenges_passed = 0;
  std::size_t challenges = 0;
};
DieScore score_die(const ScenarioConfig& cfg, PresentedDie& die);

/// Convenience: run + score.
DieScore run_and_score(const ScenarioConfig& cfg, const Scenario& sc,
                       std::uint64_t die);

}  // namespace flashmark::scenario
