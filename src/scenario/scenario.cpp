#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fleet/fleet.hpp"
#include "nand/ftl.hpp"
#include "nand/nand_array.hpp"
#include "nand/nand_controller.hpp"
#include "util/rng.hpp"

namespace flashmark::scenario {

namespace {

/// Golden calibration die: far outside any realistic population index so a
/// population die never aliases the calibration sample.
constexpr std::uint64_t kGoldenDieIndex = 1ull << 62;

/// NAND pool the aging FTL runs on: small enough that a product life is
/// cheap to simulate, big enough that the wear leveler has real work.
NandGeometry aging_pool() {
  NandGeometry g = NandGeometry::tiny();
  g.n_blocks = 16;
  g.pages_per_block = 8;
  g.factory_bad_block_ppm = 0.0;
  return g;
}

struct StepContext {
  const ScenarioConfig& cfg;
  std::uint64_t die;
  Rng stream;  ///< the die's scenario stream (kScenarioStreamTag)
  PresentedDie out;

  Addr wm_addr() const {
    return out.device->config().geometry.segment_base(cfg.segment);
  }
};

void step_imprint(StepContext& ctx) {
  imprint_watermark(ctx.out.device->hal(), ctx.wm_addr(),
                    ctx.cfg.spec_for(ctx.die));
}

/// Age the die: run the seeded product-life workload through a
/// wear-leveling FTL on a NAND pool, then replay the pool's per-block
/// erase distribution onto the die's NOR data segments. The FTL is the
/// seed-era src/nand one — its GC and least-worn allocation shape the
/// distribution exactly like firmware would in the field.
void step_age(StepContext& ctx, const LifetimeProfile& life) {
  const NandGeometry geom = aging_pool();
  NandArray array(geom, nand_slc_phys(), ctx.stream.next_u64());
  SimClock clock;
  NandController nand(array, NandTiming::slc_datasheet(), clock);
  Ftl ftl(nand, 0, geom.n_blocks);

  const std::size_t pages = ftl.logical_pages();
  const std::size_t hot_pages = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(pages) * life.hot_set_fraction));
  // Payload content does not influence wear; one seeded page buffer with a
  // rolling counter keeps the workload cheap and deterministic.
  BitVec page(geom.page_cells());
  for (std::size_t i = 0; i < page.size(); i += 64) {
    const std::uint64_t w = ctx.stream.next_u64();
    for (std::size_t b = 0; b < 64 && i + b < page.size(); ++b)
      page.set(i + b, (w >> b) & 1u);
  }
  for (std::size_t w = 0; w < life.host_writes; ++w) {
    const bool hot = ctx.stream.bernoulli(life.hot_fraction);
    const std::size_t lp =
        hot ? ctx.stream.uniform_u64(hot_pages)
            : ctx.stream.uniform_u64(pages);
    page.set(0, (w & 1u) != 0);  // dirty one bit so writes are not no-ops
    ftl.write(lp, page);
  }

  // Replay the leveled wear distribution onto the NOR data segments.
  const auto counts = ftl.erase_counts();
  const auto& segs = ctx.cfg.policy.probe_segments;
  std::vector<double> seg_cycles(segs.size(), 0.0);
  for (std::size_t i = 0; i < counts.size(); ++i)
    seg_cycles[i % segs.size()] +=
        static_cast<double>(counts[i]) * life.wear_scale;
  FlashHal& hal = ctx.out.device->hal();
  const auto& g = hal.geometry();
  for (std::size_t j = 0; j < segs.size(); ++j)
    if (seg_cycles[j] > 0.0)
      hal.wear_segment(g.segment_base(segs[j]), seg_cycles[j], nullptr);
}

void step_field_wear(StepContext& ctx, std::uint32_t cycles) {
  const auto& g = ctx.out.device->config().geometry;
  std::vector<Addr> addrs;
  addrs.reserve(ctx.cfg.policy.probe_segments.size());
  for (const std::size_t s : ctx.cfg.policy.probe_segments)
    addrs.push_back(g.segment_base(s));
  simulate_field_usage(ctx.out.device->hal(), addrs, cycles);
}

void step_refurbish(StepContext& ctx) {
  FlashHal& hal = ctx.out.device->hal();
  const auto& g = hal.geometry();
  for (const std::size_t s : ctx.cfg.policy.probe_segments)
    hal.erase_segment(g.segment_base(s));
}

void step_forge_remark(StepContext& ctx) {
  // The attacker has the tooling but not the manufacturer's key: forge a
  // plausible watermark signed with a key of their own choosing.
  WatermarkSpec spec = ctx.cfg.spec_for(ctx.die);
  spec.key = SipHashKey{0xBAD, 0xC0DE};
  const auto& g = ctx.out.device->config().geometry;
  const EncodedWatermark enc =
      encode_watermark(spec, g.segment_cells(ctx.cfg.segment));
  forge_attack(ctx.out.device->hal(), ctx.wm_addr(), enc.segment_pattern);
}

void step_clone(StepContext& ctx, std::size_t replicas, std::uint32_t npe) {
  auto target = std::make_unique<Device>(
      ctx.cfg.device,
      fleet::derive_die_seed(ctx.cfg.master_seed ^ kCloneTargetSalt,
                             ctx.die));
  const Addr src = ctx.wm_addr();
  const Addr dst =
      target->config().geometry.segment_base(ctx.cfg.segment);
  const VerifyOptions vo = ctx.cfg.effective_verify();
  const std::uint32_t use_npe = npe == 0 ? ctx.cfg.npe : npe;
  if (replicas >= ctx.cfg.n_replicas)
    clone_attack(ctx.out.device->hal(), src, target->hal(), dst, vo, use_npe);
  else
    partial_clone_attack(ctx.out.device->hal(), src, target->hal(), dst, vo,
                         use_npe, replicas);
  ctx.out.device = std::move(target);  // the clone is what gets sold
  ctx.out.remap.clear();
  ctx.out.remap_hal.reset();
}

void step_bake(StepContext& ctx, double hours) {
  bake_attack(*ctx.out.device, hours);
}

/// Hide the first `spares` probe segments behind fresh spares from the top
/// of main flash (segments no workload ever touched).
void step_remap(StepContext& ctx, std::size_t spares) {
  const auto& g = ctx.out.device->config().geometry;
  const auto& probes = ctx.cfg.policy.probe_segments;
  const std::size_t n = std::min(spares, probes.size());
  ctx.out.remap.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t spare = g.n_main_segments() - 1 - i;
    if (std::find(probes.begin(), probes.end(), spare) != probes.end() ||
        spare == ctx.cfg.segment)
      throw std::invalid_argument(
          "scenario remap: spare pool collides with probe segments");
    ctx.out.remap.emplace_back(probes[i], spare);
  }
  ctx.out.remap_hal.reset();
}

}  // namespace

ScenarioStep ScenarioStep::imprint() { return {}; }
ScenarioStep ScenarioStep::age(LifetimeProfile profile) {
  ScenarioStep s;
  s.kind = StepKind::kAge;
  s.life = profile;
  return s;
}
ScenarioStep ScenarioStep::field_wear(std::uint32_t cycles) {
  ScenarioStep s;
  s.kind = StepKind::kFieldWear;
  s.cycles = cycles;
  return s;
}
ScenarioStep ScenarioStep::refurbish() {
  ScenarioStep s;
  s.kind = StepKind::kRefurbish;
  return s;
}
ScenarioStep ScenarioStep::forge_remark() {
  ScenarioStep s;
  s.kind = StepKind::kForgeRemark;
  return s;
}
ScenarioStep ScenarioStep::clone_into(std::uint32_t npe) {
  ScenarioStep s;
  s.kind = StepKind::kCloneInto;
  s.clone_npe = npe;
  return s;
}
ScenarioStep ScenarioStep::partial_clone_into(std::size_t replicas,
                                              std::uint32_t npe) {
  ScenarioStep s;
  s.kind = StepKind::kPartialCloneInto;
  s.clone_replicas = replicas;
  s.clone_npe = npe;
  return s;
}
ScenarioStep ScenarioStep::bake(double hours) {
  ScenarioStep s;
  s.kind = StepKind::kBake;
  s.hours = hours;
  return s;
}
ScenarioStep ScenarioStep::remap(std::size_t spares) {
  ScenarioStep s;
  s.kind = StepKind::kRemap;
  s.remap_spares = spares;
  return s;
}

Scenario Scenario::genuine_fresh() {
  return {"genuine-fresh", {ScenarioStep::imprint()}};
}
Scenario Scenario::recycled_resale() {
  return {"recycled-resale",
          {ScenarioStep::imprint(), ScenarioStep::age(),
           ScenarioStep::refurbish()}};
}
Scenario Scenario::recycled_bake(double hours) {
  return {"recycled-bake",
          {ScenarioStep::imprint(), ScenarioStep::age(),
           ScenarioStep::refurbish(), ScenarioStep::bake(hours)}};
}
Scenario Scenario::recycled_remap(std::size_t spares) {
  return {"recycled-remap",
          {ScenarioStep::imprint(), ScenarioStep::age(),
           ScenarioStep::refurbish(), ScenarioStep::remap(spares)}};
}
Scenario Scenario::remarked_recycled() {
  return {"remarked-recycled",
          {ScenarioStep::age(), ScenarioStep::refurbish(),
           ScenarioStep::forge_remark()}};
}
Scenario Scenario::partial_clone(std::size_t replicas) {
  return {"partial-clone",
          {ScenarioStep::imprint(),
           ScenarioStep::partial_clone_into(replicas)}};
}
Scenario Scenario::full_clone() {
  return {"full-clone",
          {ScenarioStep::imprint(), ScenarioStep::clone_into()}};
}

VerifyOptions ScenarioConfig::effective_verify() const {
  VerifyOptions vo = verify;
  vo.key = key;
  vo.n_replicas = n_replicas;
  return vo;
}

WatermarkSpec ScenarioConfig::spec_for(std::uint64_t die) const {
  WatermarkSpec spec;
  spec.fields.manufacturer_id = manufacturer_id;
  spec.fields.die_id = static_cast<std::uint32_t>(die);
  spec.fields.speed_grade = 2;
  spec.fields.status = TestStatus::kAccept;
  spec.fields.date_code = 0x33A;
  spec.key = key;
  spec.n_replicas = n_replicas;
  spec.npe = npe;
  spec.strategy = ImprintStrategy::kBatchWear;
  spec.accelerated = true;
  return spec;
}

void calibrate(ScenarioConfig& cfg) {
  Device golden(cfg.device,
                fleet::derive_die_seed(cfg.master_seed, kGoldenDieIndex));
  const Addr addr = golden.config().geometry.segment_base(cfg.segment);
  imprint_watermark(golden.hal(), addr, cfg.spec_for(kGoldenDieIndex));
  calibrate_challenge_policy(golden.hal(), addr, cfg.effective_verify(),
                             cfg.policy);
  cfg.policy.validate(cfg.n_replicas);
}

FlashHal& PresentedDie::hal() {
  if (remap.empty()) return device->hal();
  if (!remap_hal) remap_hal = std::make_unique<RemapHal>(device->hal(), remap);
  return *remap_hal;
}

PresentedDie run_scenario_die(const ScenarioConfig& cfg, const Scenario& sc,
                              std::uint64_t die) {
  StepContext ctx{
      cfg, die,
      Rng(fleet::derive_die_seed(cfg.master_seed, die))
          .split(kScenarioStreamTag),
      PresentedDie{}};
  ctx.out.device = std::make_unique<Device>(
      cfg.device, fleet::derive_die_seed(cfg.master_seed, die));
  for (const ScenarioStep& step : sc.steps) {
    switch (step.kind) {
      case StepKind::kImprint: step_imprint(ctx); break;
      case StepKind::kAge: step_age(ctx, step.life); break;
      case StepKind::kFieldWear: step_field_wear(ctx, step.cycles); break;
      case StepKind::kRefurbish: step_refurbish(ctx); break;
      case StepKind::kForgeRemark: step_forge_remark(ctx); break;
      case StepKind::kCloneInto:
        step_clone(ctx, cfg.n_replicas, step.clone_npe);
        break;
      case StepKind::kPartialCloneInto:
        step_clone(ctx, step.clone_replicas, step.clone_npe);
        break;
      case StepKind::kBake: step_bake(ctx, step.hours); break;
      case StepKind::kRemap: step_remap(ctx, step.remap_spares); break;
    }
  }
  return std::move(ctx.out);
}

DieScore score_die(const ScenarioConfig& cfg, PresentedDie& die) {
  cfg.policy.validate(cfg.n_replicas);
  if (cfg.n_challenges == 0)
    throw std::invalid_argument("score_die: n_challenges must be > 0");
  const VerifyOptions vo = cfg.effective_verify();
  FlashHal& hal = die.hal();
  const Addr addr = hal.geometry().segment_base(cfg.segment);
  DieScore ds;
  ds.challenges = cfg.n_challenges;
  double total = 0.0;
  for (std::size_t q = 0; q < cfg.n_challenges; ++q) {
    const ChallengeReport r = challenge_verify(hal, addr, vo, cfg.policy, q);
    const bool authentic =
        r.subset_genuine && r.replicas_present && r.response_consistent;
    const double freshness = std::min(
        1.0, r.probe_erased_fraction / cfg.policy.fresh_erased_ref);
    total += 0.6 * (authentic ? 1.0 : 0.0) + 0.4 * freshness;
    if (r.accepted) ++ds.challenges_passed;
  }
  ds.score = total / static_cast<double>(cfg.n_challenges);
  return ds;
}

DieScore run_and_score(const ScenarioConfig& cfg, const Scenario& sc,
                       std::uint64_t die) {
  PresentedDie d = run_scenario_die(cfg, sc, die);
  return score_die(cfg, d);
}

}  // namespace flashmark::scenario
