// Detector calibration: genuine vs. adversary populations → ROC curves and
// operating thresholds per scenario.
//
// The per-die detection statistic (scenario::score_die) is continuous, but
// everything aggregated here is an exact integer: scores land in fixed
// [0,1) bins and populations are u64 histograms, so any shard x thread
// split folds to the same counts and the CSVs are byte-identical — the
// same §9 contract the lot layer keeps (doubles appear once, derived from
// integer counts at print time).
//
// Work is striped by global die index (die i belongs to population
// i % P, with per-population die index i / P), so a contiguous shard range
// sees exactly the same (population, die) assignments at any split. Shards
// fork BEFORE any thread exists (each child builds its own fleet pool) and
// report over CRC-framed pipes with the shard.cpp hostile-input
// discipline; unlike the lot runner, a lost or corrupt shard here is an
// ERROR, not a folded loss — a calibration curve silently missing a slice
// of its population would mis-place every threshold derived from it.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace flashmark::scenario {

/// Fixed-bin integer histogram of die scores (bin = floor(score * kBins),
/// clamped into [0, kBins)).
struct ScoreHistogram {
  static constexpr std::size_t kBins = 256;
  std::array<std::uint64_t, kBins> counts{};
  std::uint64_t n = 0;
  std::uint64_t queries = 0;
  std::uint64_t queries_passed = 0;

  void add(const DieScore& score);
  void merge(const ScoreHistogram& other);
  /// Dies with bin >= `bin` (the "accepted as genuine at threshold
  /// bin/kBins" count).
  std::uint64_t at_or_above(std::size_t bin) const;
};

struct RocConfig {
  ScenarioConfig base;
  /// populations[0] is the genuine population; the rest are adversaries.
  std::vector<Scenario> populations;
  std::uint64_t dies_per_population = 0;
};

struct RocOptions {
  unsigned shards = 1;
  unsigned threads = 1;
};

/// Operating point maximizing Youden's J = TPR - FPR (ties resolve to the
/// lowest threshold).
struct RocOperatingPoint {
  double threshold = 0.0;
  double tpr = 0.0;
  double fpr = 0.0;
  double youden = 0.0;
};

/// Throws std::invalid_argument when either population is empty — a
/// degenerate calibration input must be an explicit error, never a silent
/// 0.0 threshold (the RunningStats::variance lesson, DESIGN.md §14).
RocOperatingPoint calibrate_operating_point(const ScoreHistogram& genuine,
                                            const ScoreHistogram& adversary);

struct RocResult {
  std::vector<std::string> names;        ///< population names
  std::vector<ScoreHistogram> hists;     ///< parallel to names

  /// "population,threshold,fpr,tpr" — one curve per adversary population
  /// against the genuine one; only change-points are emitted (plus the
  /// curve ends), so the CSV is small and still exactly reconstructs the
  /// staircase.
  std::string roc_csv() const;
  /// "population,threshold,tpr,fpr,youden" — calibrated operating point
  /// per adversary population.
  std::string thresholds_csv() const;
};

/// Run the study. cfg.base is calibrated internally (deterministically, so
/// every shard derives the identical policy). Throws std::invalid_argument
/// on an empty config and std::runtime_error when a shard is lost or its
/// frame is corrupt.
RocResult run_roc_study(const RocConfig& cfg, const RocOptions& opts = {});

}  // namespace flashmark::scenario
