// flashmarkd — the Flashmark authentication daemon binary.
//
// Thin shell around serve::Server: parse flags, start the server, relay
// SIGTERM/SIGINT into a graceful drain through a self-pipe (request_drain
// is thread-safe but not async-signal-safe: the handler only write()s one
// byte), and exit with the drain's verdict — 0 only when every dirty die
// reached disk.
//
//   flashmarkd --socket /tmp/fm.sock --data-dir /var/lib/flashmark
//              [--tcp 0] [--workers 4] [--queue 64] [--deadline-ms 2000]
//              [--drain-grace-ms 5000] [--rate 0] [--burst 8]
//              [--max-resident 256] [--npe 4000] [--checkpoint-every 512]
//              [--fault-power-loss-p P] [--metrics-out FILE]
//
// --tcp 0 binds an ephemeral loopback port; the bound port is printed on
// stdout ("listening tcp 127.0.0.1:<port>") so harnesses can parse it.
#include <poll.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char b = 1;
  // Best effort: the pipe is non-blocking; a full pipe means a drain is
  // already pending.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --data-dir DIR (--socket PATH | --tcp PORT) "
               "[--workers N] [--queue N]\n"
               "  [--deadline-ms N] [--max-deadline-ms N] "
               "[--frame-timeout-ms N] [--drain-grace-ms N]\n"
               "  [--rate PER_S] [--burst N] [--max-resident N] [--npe N]\n"
               "  [--checkpoint-every N] [--seed N] "
               "[--fault-power-loss-p P] [--fault-read-burst-p P]\n"
               "  [--metrics-out FILE]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using flashmark::serve::Server;
  using flashmark::serve::ServerConfig;

  ServerConfig cfg;
  std::string metrics_out;
  bool have_endpoint = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--socket") {
      cfg.socket_path = value();
      have_endpoint = true;
    } else if (a == "--tcp") {
      cfg.tcp_port = std::atoi(value());
      have_endpoint = true;
    } else if (a == "--data-dir") {
      cfg.data_dir = value();
    } else if (a == "--workers") {
      cfg.workers = static_cast<unsigned>(std::atoi(value()));
    } else if (a == "--queue") {
      cfg.queue_capacity = static_cast<std::size_t>(std::atoll(value()));
    } else if (a == "--deadline-ms") {
      cfg.default_deadline_ms = static_cast<std::uint32_t>(std::atoll(value()));
    } else if (a == "--max-deadline-ms") {
      cfg.max_deadline_ms = static_cast<std::uint32_t>(std::atoll(value()));
    } else if (a == "--frame-timeout-ms") {
      cfg.frame_timeout_ms = static_cast<std::uint32_t>(std::atoll(value()));
    } else if (a == "--drain-grace-ms") {
      cfg.drain_grace_ms = static_cast<std::uint32_t>(std::atoll(value()));
    } else if (a == "--rate") {
      cfg.tenant_rate_per_s = std::atof(value());
    } else if (a == "--burst") {
      cfg.tenant_burst = std::atof(value());
    } else if (a == "--max-resident") {
      cfg.max_resident = static_cast<std::size_t>(std::atoll(value()));
    } else if (a == "--npe") {
      cfg.default_npe = static_cast<std::uint32_t>(std::atoll(value()));
    } else if (a == "--checkpoint-every") {
      cfg.checkpoint_every = static_cast<std::uint32_t>(std::atoll(value()));
    } else if (a == "--seed") {
      cfg.master_seed = std::strtoull(value(), nullptr, 0);
    } else if (a == "--fault-power-loss-p") {
      cfg.faults.power_loss_p = std::atof(value());
    } else if (a == "--fault-read-burst-p") {
      cfg.faults.read_burst_p = std::atof(value());
    } else if (a == "--metrics-out") {
      metrics_out = value();
    } else {
      usage(argv[0]);
    }
  }
  if (cfg.data_dir.empty() || !have_endpoint) usage(argv[0]);
  if (cfg.faults.any())
    cfg.verify.max_retries = std::max(cfg.verify.max_retries, 3u);

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("flashmarkd: pipe");
    return 1;
  }

  // Metrics on demand: the Exporter enables the global registry now and
  // writes the file when it goes out of scope — after the drain folded the
  // serve/store gauges in.
  flashmark::obs::Exporter exporter("", metrics_out);

  Server server(cfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flashmarkd: %s\n", e.what());
    return 1;
  }
  if (!cfg.socket_path.empty())
    std::printf("listening unix %s\n", cfg.socket_path.c_str());
  if (server.tcp_port() >= 0)
    std::printf("listening tcp 127.0.0.1:%d\n", server.tcp_port());
  std::fflush(stdout);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // Block until a signal byte arrives, then drain gracefully.
  char b = 0;
  ssize_t n;
  do {
    n = ::read(g_signal_pipe[0], &b, 1);
  } while (n < 0 && errno == EINTR);
  std::fprintf(stderr, "flashmarkd: draining\n");
  server.request_drain();
  const int rc = server.wait();
  std::fprintf(stderr, "flashmarkd: drained, exit %d\n", rc);
  return rc;
}
