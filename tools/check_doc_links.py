#!/usr/bin/env python3
"""Cross-reference checker for the repo's documentation.

Walks README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md and verifies that
every reference resolves:

  * markdown links `[text](target)` whose target is a relative path
    (anchors stripped, external URLs ignored) point at an existing file;
  * backticked repo paths (`src/...`, `docs/...`, `tests/...`, `bench/...`,
    `examples/...`, `tools/...`, and root-level `*.md`) exist — `*`
    wildcards are globbed and must match at least one file;
  * section references of the form `FILE.md §N` land on a real `## N.`
    heading in the target file.

Exit 0 when everything resolves; exit 1 with one `file:line: message` per
failure otherwise. Runs as the `docs_link_check` ctest in tier-1, so a doc
that names a file which was later renamed fails CI instead of rotting.
"""
import glob
import os
import re
import sys

DOC_SET = ["README.md", "DESIGN.md", "EXPERIMENTS.md"]
DOC_GLOBS = ["docs/*.md"]

# Backticked tokens that look like repo paths. Tokens containing <>, $, or
# spaces are templates/placeholders, not references.
PATH_PREFIXES = ("src/", "docs/", "tests/", "bench/", "examples/", "tools/")
BACKTICK_RE = re.compile(r"`([^`\s<>$]+)`")
MDLINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SECTION_RE = re.compile(r"([A-Za-z0-9_./-]+\.md) §(\d+)")


def is_repo_path(token: str) -> bool:
    if token.startswith(PATH_PREFIXES):
        return True
    # Root-level markdown references like `DESIGN.md`.
    return "/" not in token and token.endswith(".md")


def resolve(root: str, token: str) -> bool:
    """True when the token names at least one existing file. A bench or
    example binary name (`bench/fig9_ber`) resolves via its source file."""
    if "*" in token:
        return bool(glob.glob(os.path.join(root, token)))
    if os.path.exists(os.path.join(root, token)):
        return True
    return os.path.exists(os.path.join(root, token + ".cpp"))


def section_numbers(path: str) -> set:
    nums = set()
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = re.match(r"##\s+(\d+)[.\s]", line)
            if m:
                nums.add(int(m.group(1)))
    return nums


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    docs = [p for p in DOC_SET if os.path.exists(os.path.join(root, p))]
    for g in DOC_GLOBS:
        docs.extend(
            os.path.relpath(p, root) for p in glob.glob(os.path.join(root, g))
        )

    failures = []
    sections = {}  # target md path -> set of `## N.` numbers
    for doc in sorted(set(docs)):
        doc_path = os.path.join(root, doc)
        doc_dir = os.path.dirname(doc_path)
        in_code_block = False
        with open(doc_path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if line.lstrip().startswith("```"):
                    in_code_block = not in_code_block
                    continue

                for m in MDLINK_RE.finditer(line):
                    target = m.group(1).split("#")[0]
                    if not target or "://" in target:
                        continue
                    if not (
                        os.path.exists(os.path.join(doc_dir, target))
                        or os.path.exists(os.path.join(root, target))
                    ):
                        failures.append(
                            f"{doc}:{lineno}: broken link target '{target}'"
                        )

                if not in_code_block:
                    for m in BACKTICK_RE.finditer(line):
                        token = m.group(1).rstrip(".,;:")
                        if is_repo_path(token) and not resolve(root, token):
                            failures.append(
                                f"{doc}:{lineno}: missing path `{token}`"
                            )

                for m in SECTION_RE.finditer(line):
                    target, num = m.group(1), int(m.group(2))
                    target_path = os.path.join(root, target)
                    if not os.path.exists(target_path):
                        # Already reported by the path checks above when
                        # backticked; report here for bare references.
                        failures.append(
                            f"{doc}:{lineno}: section reference to missing "
                            f"file '{target}'"
                        )
                        continue
                    if target_path not in sections:
                        sections[target_path] = section_numbers(target_path)
                    if num not in sections[target_path]:
                        failures.append(
                            f"{doc}:{lineno}: '{target} §{num}' — no "
                            f"'## {num}.' heading in {target}"
                        )

    for f in failures:
        print(f, file=sys.stderr)
    if failures:
        print(f"{len(failures)} broken doc reference(s)", file=sys.stderr)
        return 1
    print(f"doc links OK across {len(set(docs))} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
