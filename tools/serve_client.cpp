// serve_client — load driver / CLI client for flashmarkd.
//
//   serve_client --endpoint /tmp/fm.sock --op verify --die 3
//   serve_client --endpoint /tmp/fm.sock --op challenge --die 3 --nonce 7
//   serve_client --endpoint tcp:41001 --op enroll --die 7 --npe 2000
//   serve_client --endpoint tcp:41001 --op verify --dies 100 --count 1000 \
//                --concurrency 16 --retries 5
//
// Each worker thread owns one Client (bounded retry, exponential backoff,
// seeded jitter — seed derived per worker, so the schedule is reproducible)
// and fires `count / concurrency` requests round-robin over the die range.
// The summary reports per-status counts and latency stats; exit code 0 iff
// every request ended in a *typed* response (anything but kUnavailable).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "util/stats.hpp"

namespace {

using namespace flashmark;
using namespace flashmark::serve;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --endpoint (PATH|tcp:PORT) --op "
      "(ping|enroll|verify|challenge|lot-report|stats)\n"
      "  [--die N | --dies N] [--count N] [--concurrency N] [--npe N]\n"
      "  [--nonce N] [--deadline-ms N] [--tenant N] [--delay-ms N] "
      "[--retries N] [--seed N] [--quiet]\n",
      argv0);
  std::exit(2);
}

struct Tally {
  std::mutex mu;
  std::uint64_t by_status[8] = {0};
  RunningStats latency_ms;
  std::vector<double> latencies;
  std::string first_error;
};

}  // namespace

int main(int argc, char** argv) {
  std::string endpoint;
  std::string op_name = "ping";
  std::uint64_t die = 0, dies = 0, count = 1, nonce = 0;
  unsigned concurrency = 1;
  std::uint32_t npe = 0, deadline_ms = 0, tenant = 0, delay_ms = 0;
  RetryPolicy rp;
  std::uint64_t seed = 1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--endpoint") endpoint = value();
    else if (a == "--op") op_name = value();
    else if (a == "--die") die = std::strtoull(value(), nullptr, 0);
    else if (a == "--dies") dies = std::strtoull(value(), nullptr, 0);
    else if (a == "--count") count = std::strtoull(value(), nullptr, 0);
    else if (a == "--concurrency")
      concurrency = static_cast<unsigned>(std::atoi(value()));
    else if (a == "--npe") npe = static_cast<std::uint32_t>(std::atoll(value()));
    else if (a == "--nonce") nonce = std::strtoull(value(), nullptr, 0);
    else if (a == "--deadline-ms")
      deadline_ms = static_cast<std::uint32_t>(std::atoll(value()));
    else if (a == "--tenant")
      tenant = static_cast<std::uint32_t>(std::atoll(value()));
    else if (a == "--delay-ms")
      delay_ms = static_cast<std::uint32_t>(std::atoll(value()));
    else if (a == "--retries")
      rp.max_attempts = static_cast<std::uint32_t>(std::atoll(value()));
    else if (a == "--seed") seed = std::strtoull(value(), nullptr, 0);
    else if (a == "--quiet") quiet = true;
    else usage(argv[0]);
  }
  if (endpoint.empty()) usage(argv[0]);

  Op op;
  if (op_name == "ping") op = Op::kPing;
  else if (op_name == "enroll") op = Op::kEnroll;
  else if (op_name == "verify") op = Op::kVerify;
  else if (op_name == "challenge") op = Op::kChallenge;
  else if (op_name == "lot-report") op = Op::kLotReport;
  else if (op_name == "stats") op = Op::kStats;
  else usage(argv[0]);

  if (concurrency == 0) concurrency = 1;
  concurrency = static_cast<unsigned>(
      std::min<std::uint64_t>(concurrency, std::max<std::uint64_t>(count, 1)));

  Tally tally;
  std::atomic<std::uint64_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(concurrency);
  for (unsigned t = 0; t < concurrency; ++t) {
    threads.emplace_back([&, t] {
      RetryPolicy wrp = rp;
      wrp.jitter_seed = seed + t;
      Client client(endpoint, wrp);
      for (;;) {
        const std::uint64_t i = next.fetch_add(1);
        if (i >= count) break;
        Request rq;
        rq.request_id = i + 1;
        rq.tenant = tenant;
        rq.deadline_ms = deadline_ms;
        rq.op = op;
        rq.die = dies > 0 ? (die + i % dies) : die;
        rq.npe = npe;
        rq.delay_ms = delay_ms;
        // Load runs vary the query: each request interrogates under its own
        // nonce, so the daemon derives a different challenge every time.
        rq.nonce = count == 1 ? nonce : nonce + i;
        const auto t0 = std::chrono::steady_clock::now();
        const Response rs = client.call(rq);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        std::lock_guard<std::mutex> lk(tally.mu);
        ++tally.by_status[static_cast<std::size_t>(rs.status) & 7];
        tally.latency_ms.add(ms);
        tally.latencies.push_back(ms);
        if (rs.status != Status::kOk && tally.first_error.empty())
          tally.first_error =
              std::string(to_string(rs.status)) + ": " + rs.message;
        if (!quiet && count == 1) {
          std::printf("status=%s message=%s\n", to_string(rs.status),
                      rs.message.c_str());
          if (rs.op == Op::kVerify && rs.status == Status::kOk)
            std::printf("verdict=%s zero_fraction=%.4f\n",
                        to_string(rs.verdict), rs.zero_fraction);
          if (rs.op == Op::kChallenge && rs.status == Status::kOk)
            std::printf(
                "accepted=%u subset_genuine=%u replicas_present=%u "
                "response_consistent=%u probe_fresh=%u verdict=%s\n"
                "response_error=%.4f probe_erased_fraction=%.4f "
                "t_pew_ns=%llu t_resp_ns=%llu probe_segment=%u\n",
                rs.challenge.accepted, rs.challenge.subset_genuine,
                rs.challenge.replicas_present,
                rs.challenge.response_consistent, rs.challenge.probe_fresh,
                to_string(rs.challenge.verdict), rs.challenge.response_error,
                rs.challenge.probe_erased_fraction,
                static_cast<unsigned long long>(rs.challenge.t_pew_ns),
                static_cast<unsigned long long>(rs.challenge.t_resp_ns),
                rs.challenge.probe_segment);
          if (rs.op == Op::kEnroll && rs.status == Status::kOk)
            std::printf("cycles_run=%u resumed=%u\n", rs.cycles_run,
                        rs.resumed);
          if (rs.op == Op::kLotReport && rs.status == Status::kOk)
            std::printf("enrolled=%llu verifies=%llu genuine=%llu\n",
                        static_cast<unsigned long long>(rs.lot.enrolled),
                        static_cast<unsigned long long>(rs.lot.verifies),
                        static_cast<unsigned long long>(rs.lot.genuine));
          if (rs.op == Op::kStats && rs.status == Status::kOk)
            std::printf("%s", rs.message.c_str());
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::sort(tally.latencies.begin(), tally.latencies.end());
  auto pct = [&](double p) {
    if (tally.latencies.empty()) return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(tally.latencies.size() - 1));
    return tally.latencies[idx];
  };
  std::uint64_t unavailable =
      tally.by_status[static_cast<std::size_t>(Status::kUnavailable)];
  if (!quiet) {
    std::fprintf(stderr,
                 "[serve_client] %llu request(s), %u thread(s): "
                 "ok=%llu overloaded=%llu rate_limited=%llu deadline=%llu "
                 "shutting_down=%llu invalid=%llu failed=%llu "
                 "unavailable=%llu\n",
                 static_cast<unsigned long long>(count), concurrency,
                 static_cast<unsigned long long>(tally.by_status[0]),
                 static_cast<unsigned long long>(tally.by_status[1]),
                 static_cast<unsigned long long>(tally.by_status[2]),
                 static_cast<unsigned long long>(tally.by_status[3]),
                 static_cast<unsigned long long>(tally.by_status[4]),
                 static_cast<unsigned long long>(tally.by_status[5]),
                 static_cast<unsigned long long>(tally.by_status[6]),
                 static_cast<unsigned long long>(unavailable));
    std::fprintf(stderr,
                 "[serve_client] latency ms: mean=%.3f p50=%.3f p99=%.3f "
                 "max=%.3f\n",
                 tally.latency_ms.mean(), pct(0.50), pct(0.99),
                 tally.latency_ms.max());
    if (!tally.first_error.empty())
      std::fprintf(stderr, "[serve_client] first non-ok: %s\n",
                   tally.first_error.c_str());
  }
  return unavailable == 0 ? 0 : 1;
}
