#include "core/registry.hpp"

#include <gtest/gtest.h>

namespace flashmark {
namespace {

WatermarkFields die(std::uint32_t id, TestStatus st = TestStatus::kAccept) {
  return {0x7C01, id, 2, st, 0x333};
}

TEST(Registry, RegisterOnceOnly) {
  WatermarkRegistry reg;
  EXPECT_TRUE(reg.register_die(die(1)));
  EXPECT_FALSE(reg.register_die(die(1)));
  EXPECT_EQ(reg.issued_count(), 1u);
  EXPECT_TRUE(reg.issued(1));
  EXPECT_FALSE(reg.issued(2));
}

TEST(Registry, FirstSightingOk) {
  WatermarkRegistry reg;
  reg.register_die(die(5));
  EXPECT_EQ(reg.check_in(die(5), "integratorA"), RegistryVerdict::kOk);
}

TEST(Registry, UnknownDieFlagged) {
  WatermarkRegistry reg;
  EXPECT_EQ(reg.check_in(die(9), "broker"), RegistryVerdict::kUnknownDie);
  // Unknown dies are not recorded as sightings.
  EXPECT_TRUE(reg.sightings(9).empty());
}

TEST(Registry, DuplicateSightingIsCloneSuspect) {
  WatermarkRegistry reg;
  reg.register_die(die(7));
  EXPECT_EQ(reg.check_in(die(7), "factoryA"), RegistryVerdict::kOk);
  EXPECT_EQ(reg.check_in(die(7), "brokerB"), RegistryVerdict::kDuplicate);
  EXPECT_EQ(reg.check_in(die(7), "brokerC"), RegistryVerdict::kDuplicate);
  const auto s = reg.sightings(7);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].location, "factoryA");
  EXPECT_EQ(s[2].location, "brokerC");
}

TEST(Registry, FieldMismatchIsForgery) {
  // Die id exists but the rest of the payload differs from what was
  // issued — e.g. a reject die whose clone claims accept.
  WatermarkRegistry reg;
  reg.register_die(die(3, TestStatus::kReject));
  EXPECT_EQ(reg.check_in(die(3, TestStatus::kAccept), "x"),
            RegistryVerdict::kFieldMismatch);
  EXPECT_TRUE(reg.sightings(3).empty());  // rejected check-ins not recorded
}

TEST(Registry, IndependentDiesTracked) {
  WatermarkRegistry reg;
  for (std::uint32_t i = 0; i < 10; ++i) reg.register_die(die(i));
  for (std::uint32_t i = 0; i < 10; ++i)
    EXPECT_EQ(reg.check_in(die(i), "loc"), RegistryVerdict::kOk) << i;
  EXPECT_EQ(reg.issued_count(), 10u);
}

TEST(Registry, VerdictToString) {
  EXPECT_STREQ(to_string(RegistryVerdict::kOk), "ok");
  EXPECT_STREQ(to_string(RegistryVerdict::kDuplicate), "duplicate-sighting");
  EXPECT_STREQ(to_string(RegistryVerdict::kUnknownDie), "unknown-die");
  EXPECT_STREQ(to_string(RegistryVerdict::kFieldMismatch), "field-mismatch");
}

}  // namespace
}  // namespace flashmark
