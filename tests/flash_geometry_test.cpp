#include "flash/geometry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flashmark {
namespace {

class GeometryFamilies : public ::testing::TestWithParam<FlashGeometry> {};

TEST_P(GeometryFamilies, Validates) { EXPECT_NO_THROW(GetParam().validate()); }

TEST_P(GeometryFamilies, SegmentIndexBaseRoundtrip) {
  const FlashGeometry g = GetParam();
  for (std::size_t seg = 0; seg < g.n_segments(); ++seg) {
    const Addr base = g.segment_base(seg);
    EXPECT_EQ(g.segment_index(base), seg);
    // Last byte of the segment still maps to the same segment.
    const Addr last = base + static_cast<Addr>(g.segment_bytes(seg) - 1);
    EXPECT_EQ(g.segment_index(last), seg);
  }
}

TEST_P(GeometryFamilies, SegmentSizes) {
  const FlashGeometry g = GetParam();
  for (std::size_t seg = 0; seg < g.n_main_segments(); ++seg)
    EXPECT_EQ(g.segment_bytes(seg), g.main_segment_bytes);
  for (std::size_t seg = g.n_main_segments(); seg < g.n_segments(); ++seg)
    EXPECT_EQ(g.segment_bytes(seg), g.info_segment_bytes);
}

TEST_P(GeometryFamilies, CellCounts) {
  const FlashGeometry g = GetParam();
  EXPECT_EQ(g.segment_cells(0), g.main_segment_bytes * 8);
  EXPECT_EQ(g.segment_cells(g.n_main_segments()), g.info_segment_bytes * 8);
}

TEST_P(GeometryFamilies, AddressValidity) {
  const FlashGeometry g = GetParam();
  EXPECT_TRUE(g.valid(g.main_base));
  EXPECT_TRUE(g.valid(g.main_end() - 1));
  EXPECT_FALSE(g.valid(g.main_end()));
  EXPECT_TRUE(g.valid(g.info_base));
  EXPECT_FALSE(g.valid(g.info_end()));
  EXPECT_FALSE(g.valid(0));
}

INSTANTIATE_TEST_SUITE_P(Families, GeometryFamilies,
                         ::testing::Values(FlashGeometry::msp430f5438(),
                                           FlashGeometry::msp430f5529()));

TEST(Geometry, F5438Defaults) {
  const FlashGeometry g = FlashGeometry::msp430f5438();
  EXPECT_EQ(g.main_bytes(), 256u * 1024);
  EXPECT_EQ(g.n_main_segments(), 512u);
  EXPECT_EQ(g.main_segment_bytes, 512u);
  EXPECT_EQ(g.segment_cells(0), 4096u);  // the paper's 4,096 cells
  EXPECT_EQ(g.bits_per_word(), 16u);
}

TEST(Geometry, F5529Smaller) {
  const FlashGeometry g = FlashGeometry::msp430f5529();
  EXPECT_EQ(g.main_bytes(), 128u * 1024);
  EXPECT_LT(g.n_main_segments(), FlashGeometry::msp430f5438().n_main_segments());
}

TEST(Geometry, BankIndex) {
  const FlashGeometry g = FlashGeometry::msp430f5438();
  EXPECT_EQ(g.bank_index(g.main_base), 0u);
  EXPECT_EQ(g.bank_index(g.main_base + 64 * 1024), 1u);
  EXPECT_EQ(g.bank_index(g.main_end() - 1), g.n_banks - 1);
  EXPECT_THROW(g.bank_index(g.info_base), std::out_of_range);
}

TEST(Geometry, SegmentIndexOutsideThrows) {
  const FlashGeometry g = FlashGeometry::msp430f5438();
  EXPECT_THROW(g.segment_index(0), std::out_of_range);
  EXPECT_THROW(g.segment_base(g.n_segments()), std::out_of_range);
  EXPECT_THROW(g.segment_bytes(g.n_segments()), std::out_of_range);
}

TEST(Geometry, WordAlignment) {
  const FlashGeometry g = FlashGeometry::msp430f5438();
  EXPECT_TRUE(g.word_aligned(g.main_base));
  EXPECT_FALSE(g.word_aligned(g.main_base + 1));
}

TEST(Geometry, InfoSegmentsFollowMainInGlobalIndex) {
  const FlashGeometry g = FlashGeometry::msp430f5438();
  EXPECT_EQ(g.segment_index(g.info_base), g.n_main_segments());
  EXPECT_EQ(g.segment_index(g.info_base +
                            static_cast<Addr>(g.info_segment_bytes)),
            g.n_main_segments() + 1);
}

TEST(Geometry, ValidationCatchesBadConfigs) {
  FlashGeometry g = FlashGeometry::msp430f5438();
  g.word_bytes = 0;
  EXPECT_THROW(g.validate(), std::invalid_argument);

  g = FlashGeometry::msp430f5438();
  g.main_segment_bytes = 500;  // not a multiple of bank
  EXPECT_THROW(g.validate(), std::invalid_argument);

  g = FlashGeometry::msp430f5438();
  g.n_banks = 0;
  EXPECT_THROW(g.validate(), std::invalid_argument);

  g = FlashGeometry::msp430f5438();
  g.info_base = g.main_base;  // overlap
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(Geometry, DescribeMentionsLayout) {
  const std::string d = FlashGeometry::msp430f5438().describe();
  EXPECT_NE(d.find("256KiB"), std::string::npos);
  EXPECT_NE(d.find("512B"), std::string::npos);
}

}  // namespace
}  // namespace flashmark
