#include "core/analyze.hpp"

#include <gtest/gtest.h>

#include "mcu/device.hpp"

namespace flashmark {
namespace {

struct Rig {
  Device dev{DeviceConfig::msp430f5438(), 11};
  FlashHal& hal = dev.hal();
  Addr addr = dev.config().geometry.segment_base(0);
};

TEST(Analyze, RejectsEvenOrZeroReads) {
  Rig r;
  EXPECT_THROW(analyze_segment(r.hal, r.addr, 0), std::invalid_argument);
  EXPECT_THROW(analyze_segment(r.hal, r.addr, 2), std::invalid_argument);
  EXPECT_THROW(analyze_segment(r.hal, r.addr, 4), std::invalid_argument);
}

TEST(Analyze, FreshSegmentAllErased) {
  Rig r;
  const SegmentAnalysis a = analyze_segment(r.hal, r.addr, 1);
  EXPECT_EQ(a.cells_1, 4096u);
  EXPECT_EQ(a.cells_0, 0u);
  EXPECT_EQ(a.bitmap, BitVec(4096, true));
}

TEST(Analyze, ProgrammedSegmentAllZero) {
  Rig r;
  r.hal.program_block(r.addr, std::vector<std::uint16_t>(256, 0));
  const SegmentAnalysis a = analyze_segment(r.hal, r.addr, 3);
  EXPECT_EQ(a.cells_0, 4096u);
  EXPECT_EQ(a.cells_1, 0u);
}

TEST(Analyze, CountsAlwaysSumToCells) {
  Rig r;
  r.hal.program_block(r.addr, std::vector<std::uint16_t>(256, 0));
  r.hal.partial_erase_segment(r.addr, SimTime::us(24));
  for (int n : {1, 3, 5}) {
    const SegmentAnalysis a = analyze_segment(r.hal, r.addr, n);
    EXPECT_EQ(a.cells_0 + a.cells_1, 4096u);
    EXPECT_EQ(a.bitmap.popcount(), a.cells_1);
  }
}

TEST(Analyze, BitmapMatchesWordLayout) {
  Rig r;
  r.hal.program_word(r.addr, 0xFFFE);        // clear bit 0 of word 0
  r.hal.program_word(r.addr + 2, 0x7FFF);    // clear bit 15 of word 1
  const SegmentAnalysis a = analyze_segment(r.hal, r.addr, 1);
  EXPECT_FALSE(a.bitmap.get(0));
  EXPECT_TRUE(a.bitmap.get(1));
  EXPECT_FALSE(a.bitmap.get(16 + 15));
  EXPECT_EQ(a.cells_0, 2u);
}

TEST(Analyze, MajorityVoteStabilizesMetastableCells) {
  // After a partial erase near the median tte, many cells are metastable;
  // repeated 9-read analyses agree with each other far more than repeated
  // single-read analyses do.
  Rig r;
  r.hal.program_block(r.addr, std::vector<std::uint16_t>(256, 0));
  r.hal.partial_erase_segment(r.addr, SimTime::us(24));

  const BitVec s1a = analyze_segment(r.hal, r.addr, 1).bitmap;
  const BitVec s1b = analyze_segment(r.hal, r.addr, 1).bitmap;
  const BitVec s9a = analyze_segment(r.hal, r.addr, 9).bitmap;
  const BitVec s9b = analyze_segment(r.hal, r.addr, 9).bitmap;

  const std::size_t d1 = BitVec::hamming_distance(s1a, s1b);
  const std::size_t d9 = BitVec::hamming_distance(s9a, s9b);
  EXPECT_LT(d9, d1);
  EXPECT_GT(d1, 0u);  // single reads do disagree on this workload
}

TEST(Analyze, WorksOnInfoSegments) {
  Rig r;
  const auto& g = r.dev.config().geometry;
  const Addr info = g.segment_base(g.n_main_segments());
  const SegmentAnalysis a = analyze_segment(r.hal, info, 3);
  EXPECT_EQ(a.cells_1, g.info_segment_bytes * 8);
}

TEST(Analyze, MidSegmentAddressAnalyzesWholeSegment) {
  Rig r;
  const SegmentAnalysis a = analyze_segment(r.hal, r.addr + 100, 1);
  EXPECT_EQ(a.cells_0 + a.cells_1, 4096u);
}

}  // namespace
}  // namespace flashmark
