#include "phys/vth_model.hpp"

#include <gtest/gtest.h>

namespace flashmark {
namespace {

PhysParams params() { return PhysParams::msp430_calibrated(); }

TEST(VthModel, SettledLevels) {
  const VthParams vp;
  const PhysParams p = params();
  Rng rng(1);
  Cell c = Cell::manufacture(p, rng);
  EXPECT_DOUBLE_EQ(vth_settled(vp, c), vp.vth_erased);
  c.program(p);
  EXPECT_DOUBLE_EQ(vth_settled(vp, c), vp.vth_programmed);
}

TEST(VthModel, ErasedBelowRefProgrammedAbove) {
  const VthParams vp;
  EXPECT_TRUE(reads_erased(vp, vp.vth_erased));
  EXPECT_FALSE(reads_erased(vp, vp.vth_programmed));
}

TEST(VthModel, CrossesRefExactlyAtTte) {
  const VthParams vp;
  const PhysParams p = params();
  Rng rng(2);
  Cell c = Cell::manufacture(p, rng);
  c.program(p);
  const double tte = c.tte_us(p);
  EXPECT_NEAR(vth_during_erase(vp, p, c, tte), vp.v_ref, 1e-9);
  EXPECT_GT(vth_during_erase(vp, p, c, tte * 0.8), vp.v_ref);
  EXPECT_LT(vth_during_erase(vp, p, c, tte * 1.3), vp.v_ref);
}

TEST(VthModel, MonotoneDecreasingDuringErase) {
  const VthParams vp;
  const PhysParams p = params();
  Rng rng(3);
  Cell c = Cell::manufacture(p, rng);
  c.program(p);
  double prev = vp.vth_programmed + 1.0;
  for (double t : {0.1, 1.0, 5.0, 10.0, 20.0, 40.0, 100.0, 1000.0}) {
    const double v = vth_during_erase(vp, p, c, t);
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST(VthModel, ClampedToSettledLevels) {
  const VthParams vp;
  const PhysParams p = params();
  Rng rng(4);
  Cell c = Cell::manufacture(p, rng);
  c.program(p);
  EXPECT_DOUBLE_EQ(vth_during_erase(vp, p, c, 0.0), vp.vth_programmed);
  EXPECT_DOUBLE_EQ(vth_during_erase(vp, p, c, 1e9), vp.vth_erased);
}

TEST(VthModel, DigitalReadMatchesAnalogDecision) {
  // Consistency between the production (time-margin) read path and the
  // analog Vth view, in the jitter-free model.
  PhysParams p = params();
  p.tte_event_jitter_sigma = 0.0;
  const VthParams vp;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Cell c = Cell::manufacture(p, rng);
    c.program(p);
    const double t_pe = rng.uniform(5.0, 60.0);
    const bool analog_erased = reads_erased(vp, vth_during_erase(vp, p, c, t_pe));
    c.partial_erase(p, t_pe, rng);
    EXPECT_EQ(c.erased(), analog_erased) << "cell " << i;
  }
}

TEST(VthModel, StressedCellStaysAboveRefLonger) {
  const VthParams vp;
  const PhysParams p = params();
  Rng rng(6);
  Cell fresh = Cell::manufacture(p, rng);
  Cell worn = fresh;
  worn.batch_stress(p, 50'000, true, false);
  fresh.program(p);
  worn.program(p);
  const double t = 30.0;
  EXPECT_LT(vth_during_erase(vp, p, fresh, t), vth_during_erase(vp, p, worn, t));
}

}  // namespace
}  // namespace flashmark
