// Fault-injection layer: plan determinism, FaultyHal semantics, and the
// recovery paths (retry budgets, verify_program, ECC) that let the watermark
// pipelines survive degraded silicon. Runs under ctest -L fault, including
// the FLASHMARK_SANITIZE CI steps.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/watermark.hpp"
#include "fault/fault.hpp"
#include "fleet/fleet.hpp"
#include "mcu/device.hpp"

namespace flashmark {
namespace {

constexpr std::uint64_t kSeed = 0xFA17'5EED;

WatermarkSpec ecc_spec(std::uint32_t die_id) {
  WatermarkSpec spec;
  spec.fields = {0x7C01, die_id, 2, TestStatus::kAccept, 0x3AA};
  spec.key = SipHashKey{0xD1E, 0x107};
  spec.ecc = true;
  spec.n_replicas = 7;
  spec.npe = 60'000;
  spec.strategy = ImprintStrategy::kBatchWear;
  return spec;
}

VerifyOptions ecc_verify() {
  VerifyOptions vo;
  vo.t_pew = SimTime::us(30);
  vo.key = SipHashKey{0xD1E, 0x107};
  vo.ecc = true;
  vo.rounds = 3;
  vo.n_reads = 3;
  return vo;
}

TEST(FaultPlan, PureFunctionOfConfigSeedGeometry) {
  fault::FaultConfig cfg;
  cfg.stuck_at0_per_segment = 2.0;
  cfg.stuck_at1_per_segment = 1.0;
  cfg.read_burst_p = 0.01;
  const FlashGeometry g = FlashGeometry::msp430f5438();

  fault::FaultPlan a = fault::FaultPlan::for_die(cfg, kSeed, g);
  fault::FaultPlan b = fault::FaultPlan::for_die(cfg, kSeed, g);
  EXPECT_EQ(a.stuck_cells(), b.stuck_cells());
  EXPECT_GT(a.stuck_cells(), 0u);
  // Same stuck masks on every word of the first segments...
  for (std::size_t seg = 0; seg < 8; ++seg) {
    const Addr base = g.segment_base(seg);
    for (std::size_t w = 0; w < g.segment_bytes(seg) / g.word_bytes; ++w) {
      const Addr addr = base + static_cast<Addr>(w * g.word_bytes);
      EXPECT_EQ(a.stuck_masks(addr), b.stuck_masks(addr));
    }
  }
  // ...and the same event stream afterwards.
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(a.events().uniform_u64(1u << 20), b.events().uniform_u64(1u << 20));
  // A different die draws different faults.
  fault::FaultPlan c = fault::FaultPlan::for_die(cfg, kSeed + 1, g);
  bool any_diff = c.stuck_cells() != a.stuck_cells();
  for (std::size_t seg = 0; seg < g.n_main_segments() && !any_diff; ++seg) {
    const Addr base = g.segment_base(seg);
    for (std::size_t w = 0; w < g.segment_bytes(seg) / g.word_bytes; ++w) {
      const Addr addr = base + static_cast<Addr>(w * g.word_bytes);
      if (a.stuck_masks(addr) != c.stuck_masks(addr)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultyHal, InertConfigPassesThrough) {
  Device dev(DeviceConfig::msp430f5438(), kSeed);
  const FlashGeometry& g = dev.config().geometry;
  fault::FaultConfig cfg;  // all rates zero
  EXPECT_FALSE(cfg.any());
  fault::FaultyHal hal(dev.hal(),
                       fault::FaultPlan::for_die(cfg, kSeed, g));

  const Addr base = g.segment_base(0);
  hal.erase_segment(base);
  hal.program_word(base, 0xA5A5);
  EXPECT_EQ(hal.read_word(base), 0xA5A5);
  EXPECT_EQ(hal.read_word(base + 2), 0xFFFF);
  EXPECT_EQ(hal.counters().events(), 0u);
  EXPECT_EQ(hal.counters().stuck_cells, 0u);
}

TEST(FaultyHal, StuckCellsPinReads) {
  Device dev(DeviceConfig::msp430f5438(), kSeed);
  const FlashGeometry& g = dev.config().geometry;
  fault::FaultConfig cfg;
  cfg.stuck_at0_per_segment = 8.0;
  cfg.stuck_at1_per_segment = 8.0;
  fault::FaultyHal hal(dev.hal(),
                       fault::FaultPlan::for_die(cfg, kSeed, g));
  ASSERT_GT(hal.plan().stuck_cells(), 0u);

  // Erased segment reads all-ones except stuck-at-0 bits; programmed-to-zero
  // words read all-zeros except stuck-at-1 bits. In both states the faulty
  // read must equal (raw & and_mask) | or_mask.
  const Addr base = g.segment_base(0);
  const std::size_t n_words = g.segment_bytes(0) / g.word_bytes;
  hal.erase_segment(base);
  std::uint64_t pinned_words = 0;
  for (std::size_t w = 0; w < n_words; ++w) {
    const Addr addr = base + static_cast<Addr>(w * g.word_bytes);
    const auto [and_mask, or_mask] = hal.plan().stuck_masks(addr);
    EXPECT_EQ(hal.read_word(addr), (0xFFFF & and_mask) | or_mask);
    if (and_mask != 0xFFFF || or_mask != 0x0000) ++pinned_words;
  }
  for (std::size_t w = 0; w < n_words; ++w)
    hal.program_word(base + static_cast<Addr>(w * g.word_bytes), 0x0000);
  for (std::size_t w = 0; w < n_words; ++w) {
    const Addr addr = base + static_cast<Addr>(w * g.word_bytes);
    const auto [and_mask, or_mask] = hal.plan().stuck_masks(addr);
    EXPECT_EQ(hal.read_word(addr), (0x0000 & and_mask) | or_mask);
  }
  EXPECT_GT(hal.counters().stuck_reads, 0u);
  // Other segments of the die also drew faults (the plan covers the whole
  // main array, not just the segment under test).
  EXPECT_GT(hal.plan().stuck_cells(), pinned_words);
}

// Satellite: a die with stuck cells in the watermark region still decodes
// kGenuine when the spec carries ECC — replica voting absorbs most pinned
// bits and Hamming(15,11) repairs the residue.
TEST(FaultRecovery, StuckCellExtractionDecodesUnderEcc) {
  Device dev(DeviceConfig::msp430f5438(), kSeed);
  const FlashGeometry& g = dev.config().geometry;
  fault::FaultConfig cfg;
  cfg.stuck_at0_per_segment = 6.0;
  cfg.stuck_at1_per_segment = 6.0;
  fault::FaultyHal hal(dev.hal(),
                       fault::FaultPlan::for_die(cfg, dev.die_seed(), g));
  ASSERT_GT(hal.plan().stuck_cells(), 0u);

  const Addr addr = g.segment_base(0);
  imprint_watermark(hal, addr, ecc_spec(42));
  const VerifyReport report = verify_watermark(hal, addr, ecc_verify());
  EXPECT_EQ(report.verdict, Verdict::kGenuine);
  ASSERT_TRUE(report.fields.has_value());
  EXPECT_EQ(report.fields->die_id, 42u);
  EXPECT_GT(hal.counters().stuck_reads, 0u);
}

// A bounded retry budget rides out power-loss aborts: the fault model stops
// injecting after max_power_losses, so a budget >= that bound always lands
// the operation, and the report says how much budget was spent.
TEST(FaultRecovery, RetryRecoversFromPowerLoss) {
  Device dev(DeviceConfig::msp430f5438(), kSeed);
  const FlashGeometry& g = dev.config().geometry;
  fault::FaultConfig cfg;
  cfg.power_loss_p = 1.0;
  cfg.max_power_losses = 2;
  const Addr addr = g.segment_base(0);

  WatermarkSpec spec = ecc_spec(7);
  spec.max_retries = 3;
  {
    fault::FaultyHal hal(dev.hal(),
                         fault::FaultPlan::for_die(cfg, dev.die_seed(), g));
    const ImprintReport rep = imprint_watermark(hal, addr, spec);
    EXPECT_GE(rep.retries, 1u);
    EXPECT_EQ(hal.counters().power_losses, 2u);
  }
  {
    // Fresh decorator for the field audit: its own power-loss budget.
    fault::FaultyHal hal(dev.hal(),
                         fault::FaultPlan::for_die(cfg, dev.die_seed(), g));
    VerifyOptions vo = ecc_verify();
    vo.max_retries = 4;
    const VerifyReport report = verify_watermark(hal, addr, vo);
    EXPECT_EQ(report.verdict, Verdict::kGenuine);
    EXPECT_GE(report.retries, 1u);
  }
}

// Satellite: retry exhaustion surfaces as the structured RetryExhaustedError
// (not a generic runtime_error), and the fleet layer maps it to
// FailureReason::kRetryExhausted without poisoning neighboring dies.
TEST(FaultRecovery, RetryExhaustionSurfacesStructuredReason) {
  fault::FaultConfig cfg;
  cfg.power_loss_p = 1.0;
  cfg.max_power_losses = 1000;  // never stops injecting

  {
    Device dev(DeviceConfig::msp430f5438(), kSeed);
    fault::FaultyHal hal(
        dev.hal(), fault::FaultPlan::for_die(cfg, dev.die_seed(),
                                             dev.config().geometry));
    WatermarkSpec spec = ecc_spec(7);
    spec.max_retries = 2;
    try {
      imprint_watermark(hal, dev.config().geometry.segment_base(0), spec);
      FAIL() << "expected RetryExhaustedError";
    } catch (const RetryExhaustedError& e) {
      EXPECT_EQ(e.attempts(), 3u);  // 1 initial + 2 retries
      EXPECT_NE(std::string(e.what()).find("retry budget exhausted"),
                std::string::npos);
    }
  }

  // Fleet mapping: only the afflicted die fails, with the right taxonomy.
  fleet::FaultPolicy policy;
  policy.config = cfg;
  policy.applies = [](std::size_t die) { return die == 1; };
  auto spec_of = [](std::size_t die) {
    WatermarkSpec s = ecc_spec(static_cast<std::uint32_t>(die));
    s.max_retries = 2;
    return s;
  };
  const auto batch = fleet::imprint_batch(DeviceConfig::msp430f5438(), kSeed,
                                          4, 0, spec_of, {.threads = 2},
                                          policy);
  EXPECT_EQ(batch.fleet.failures(), 1u);
  EXPECT_EQ(batch.fleet.dies[1].health, fleet::DieHealth::kFailed);
  EXPECT_EQ(batch.fleet.dies[1].reason, fleet::FailureReason::kRetryExhausted);
  EXPECT_GT(batch.fleet.dies[1].faults_injected, 0u);
  for (std::size_t d : {0u, 2u, 3u}) {
    EXPECT_EQ(batch.fleet.dies[d].health, fleet::DieHealth::kClean) << d;
    EXPECT_EQ(batch.fleet.dies[d].reason, fleet::FailureReason::kNone) << d;
  }
  // The failed die still landed in its slot — it exists and can be retested.
  ASSERT_NE(batch.dies[1], nullptr);
}

// verify_program catches silently dropped program pulses: the read-back pass
// reissues the zero-programming of any word the fault swallowed.
TEST(FaultRecovery, VerifyProgramRepairsDroppedPulses) {
  Device dev(DeviceConfig::msp430f5438(), kSeed);
  const FlashGeometry& g = dev.config().geometry;
  fault::FaultConfig cfg;
  cfg.program_fail_p = 0.05;
  fault::FaultyHal hal(dev.hal(),
                       fault::FaultPlan::for_die(cfg, dev.die_seed(), g));

  const Addr addr = g.segment_base(0);
  imprint_watermark(hal, addr, ecc_spec(3));
  ExtractOptions eo;
  eo.t_pew = SimTime::us(30);
  eo.verify_program = true;
  const ExtractResult ext = extract_flashmark(hal, addr, eo);
  EXPECT_GT(hal.counters().program_fails, 0u);
  EXPECT_GT(ext.reprogrammed_words, 0u);
}

}  // namespace
}  // namespace flashmark
