#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace flashmark {
namespace {

TEST(RunningStats, UnderTwoSamplesHaveNoVariance) {
  // variance() used to return 0.0 for n < 2, indistinguishable from a true
  // zero-variance population in lot CSVs. The undefined case is now explicit.
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_FALSE(s.variance().has_value());
  EXPECT_FALSE(s.stddev().has_value());
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_FALSE(s.variance().has_value());
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  s.add(5.0);
  ASSERT_TRUE(s.variance().has_value());
  EXPECT_DOUBLE_EQ(*s.variance(), 0.0);  // a *true* zero-variance pair
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  ASSERT_TRUE(s.variance().has_value());
  EXPECT_NEAR(*s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(*s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequentialPass) {
  // Chan et al. parallel Welford: any contiguous split of the sample stream
  // must combine to the sequential answer (to fp accuracy — the lot layer's
  // byte-identity path uses exact integer sums instead, see lot_test).
  const std::vector<double> xs = {2.0,  4.5, -1.0, 7.25, 0.5,
                                  12.0, 3.0, 3.0,  -8.5, 6.0};
  RunningStats whole;
  for (double x : xs) whole.add(x);
  for (std::size_t split = 0; split <= xs.size(); ++split) {
    RunningStats a, b;
    for (std::size_t i = 0; i < split; ++i) a.add(xs[i]);
    for (std::size_t i = split; i < xs.size(); ++i) b.add(xs[i]);
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count()) << "split " << split;
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12) << "split " << split;
    EXPECT_NEAR(*a.variance(), *whole.variance(), 1e-12) << "split " << split;
    EXPECT_EQ(a.min(), whole.min()) << "split " << split;
    EXPECT_EQ(a.max(), whole.max()) << "split " << split;
  }
}

TEST(RunningStats, MergeEmptyEdgeCases) {
  RunningStats empty_a, empty_b;
  empty_a.merge(empty_b);  // empty + empty = empty
  EXPECT_EQ(empty_a.count(), 0u);
  EXPECT_FALSE(empty_a.variance().has_value());

  RunningStats filled;
  filled.add(3.0);
  filled.add(9.0);
  RunningStats into;
  into.merge(filled);  // empty += filled copies
  EXPECT_EQ(into.count(), 2u);
  EXPECT_DOUBLE_EQ(into.mean(), 6.0);
  EXPECT_EQ(into.min(), 3.0);
  EXPECT_EQ(into.max(), 9.0);

  filled.merge(empty_a);  // filled += empty is a no-op
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_DOUBLE_EQ(filled.mean(), 6.0);
}

TEST(RunningStats, FromPartsRoundTripsThroughMerge) {
  RunningStats src;
  for (double x : {1.0, 2.0, 6.0, 11.0}) src.add(x);
  const RunningStats restored = RunningStats::from_parts(
      src.count(), src.mean(), src.m2(), src.min(), src.max());
  RunningStats merged;
  merged.merge(restored);
  EXPECT_EQ(merged.count(), src.count());
  EXPECT_DOUBLE_EQ(merged.mean(), src.mean());
  EXPECT_DOUBLE_EQ(*merged.variance(), *src.variance());

  EXPECT_THROW(RunningStats::from_parts(3, std::nan(""), 0.0, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(RunningStats::from_parts(3, 1.0, -0.5, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_EQ(RunningStats::from_parts(0, 9.0, 9.0, 9.0, 9.0).count(), 0u);
}

TEST(WilsonIntervalTest, MatchesKnownValues) {
  // 8/10 at 95%: textbook Wilson score interval ~ [0.490, 0.943].
  const WilsonInterval w = wilson_interval(8, 10, 1.959963984540054);
  EXPECT_DOUBLE_EQ(w.p_hat, 0.8);
  EXPECT_NEAR(w.lo, 0.4901, 5e-4);
  EXPECT_NEAR(w.hi, 0.9433, 5e-4);
  EXPECT_GT(w.lo, 0.0);
  EXPECT_LT(w.hi, 1.0);
}

TEST(WilsonIntervalTest, StaysInUnitIntervalAtExtremes) {
  const double z = 1.959963984540054;
  const WilsonInterval none = wilson_interval(0, 50, z);
  EXPECT_EQ(none.p_hat, 0.0);
  EXPECT_EQ(none.lo, 0.0);
  EXPECT_GT(none.hi, 0.0);  // zero successes still exclude p = high
  const WilsonInterval all = wilson_interval(50, 50, z);
  EXPECT_EQ(all.p_hat, 1.0);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_EQ(all.hi, 1.0);
}

TEST(WilsonIntervalTest, RejectsBadInputs) {
  EXPECT_THROW(wilson_interval(0, 0, 1.96), std::invalid_argument);
  EXPECT_THROW(wilson_interval(3, 2, 1.96), std::invalid_argument);
  EXPECT_THROW(wilson_interval(1, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(1, 2, std::nan("")), std::invalid_argument);
}

TEST(VarianceFromCounts, MatchesWelfordOnIntegerSamples) {
  const std::vector<std::uint64_t> errs = {3, 0, 7, 7, 12, 1, 0, 5};
  RunningStats ref;
  std::uint64_t sum = 0, sq = 0;
  for (std::uint64_t e : errs) {
    ref.add(static_cast<double>(e));
    sum += e;
    sq += e * e;
  }
  EXPECT_NEAR(variance_from_counts(sum, sq, errs.size()), *ref.variance(),
              1e-12);
}

TEST(VarianceFromCounts, RequiresTwoSamples) {
  EXPECT_THROW(variance_from_counts(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(variance_from_counts(5, 25, 1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(variance_from_counts(10, 50, 2), 0.0);  // two equal 5s
}

TEST(RunningStats, NanSampleThrows) {
  // Uniform NaN policy across util/stats: Histogram::add and percentile
  // already threw; RunningStats::add used to absorb the NaN and poison
  // mean/variance/min/max silently.
  RunningStats s;
  s.add(1.0);
  EXPECT_THROW(s.add(std::nan("")), std::invalid_argument);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(Percentile, SingleElement) {
  EXPECT_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 50.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 50.0), 5.0);
}

TEST(Percentile, OutOfRangePClamped) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 200.0), 2.0);
}

TEST(Percentile, NanInputThrows) {
  const double nan = std::nan("");
  EXPECT_THROW(percentile({nan}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0, nan, 3.0}, 50.0), std::invalid_argument);
}

TEST(Percentile, NanPThrows) {
  // NaN p slipped past the clamps (NaN compares false) straight into a
  // float->size_t cast, which is UB. It must be rejected like NaN samples.
  EXPECT_THROW(percentile({1.0, 2.0, 3.0}, std::nan("")),
               std::invalid_argument);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsValues) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, CountsOutliersSeparately) {
  // Out-of-range samples must not be folded into the edge bins — that used
  // to silently fatten the tails of characterization reports.
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // hi is exclusive
  EXPECT_EQ(h.bin_count(0), 0u);
  EXPECT_EQ(h.bin_count(4), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, NanSampleThrows) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_THROW(h.add(std::nan("")), std::invalid_argument);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, BinLowEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

}  // namespace
}  // namespace flashmark
