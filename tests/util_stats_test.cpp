#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace flashmark {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, NanSampleThrows) {
  // Uniform NaN policy across util/stats: Histogram::add and percentile
  // already threw; RunningStats::add used to absorb the NaN and poison
  // mean/variance/min/max silently.
  RunningStats s;
  s.add(1.0);
  EXPECT_THROW(s.add(std::nan("")), std::invalid_argument);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(Percentile, SingleElement) {
  EXPECT_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 50.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 50.0), 5.0);
}

TEST(Percentile, OutOfRangePClamped) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 200.0), 2.0);
}

TEST(Percentile, NanInputThrows) {
  const double nan = std::nan("");
  EXPECT_THROW(percentile({nan}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0, nan, 3.0}, 50.0), std::invalid_argument);
}

TEST(Percentile, NanPThrows) {
  // NaN p slipped past the clamps (NaN compares false) straight into a
  // float->size_t cast, which is UB. It must be rejected like NaN samples.
  EXPECT_THROW(percentile({1.0, 2.0, 3.0}, std::nan("")),
               std::invalid_argument);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsValues) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, CountsOutliersSeparately) {
  // Out-of-range samples must not be folded into the edge bins — that used
  // to silently fatten the tails of characterization reports.
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // hi is exclusive
  EXPECT_EQ(h.bin_count(0), 0u);
  EXPECT_EQ(h.bin_count(4), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, NanSampleThrows) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_THROW(h.add(std::nan("")), std::invalid_argument);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, BinLowEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

}  // namespace
}  // namespace flashmark
