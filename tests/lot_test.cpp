// Lot layer (src/lot): shard-invariance contract, shard wire format, and
// lost-worker accounting.
//
// The headline test here is the byte-identity contract of
// docs/REPRODUCIBILITY.md §9: the detection and BER curve CSVs — and the
// folded `lot.*` metrics — must be identical bytes for ANY shard count x
// thread count split of the same lot, because the contractual statistics
// are exact integer sums (associative) converted to doubles once, at print
// time.
#include "lot/lot.hpp"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "lot/lot_internal.hpp"
#include "obs/metrics.hpp"

namespace flashmark {
namespace {

/// Small mixed-condition lot: 2 npe points x 2 corners = 4 cells, sized so
/// every cell gets several dies and an 8-way shard split still has work in
/// every shard.
lot::LotConfig small_lot(std::uint64_t n_dies = 24) {
  lot::LotConfig cfg;
  cfg.n_dies = n_dies;
  cfg.master_seed = 0xF1A5'0007;
  cfg.npe_points = {2'000, 6'000};
  cfg.conditions = {{25.0, 0.0}, {70.0, 1'000.0}};
  return cfg;
}

/// The deterministic exports of one run, for byte comparison.
struct CurveBytes {
  std::string detection;
  std::string ber;
  std::string metrics;
};

CurveBytes curves_of(const lot::LotResult& r) {
  CurveBytes c;
  c.detection = r.detection_csv();
  c.ber = r.ber_csv();
  obs::MetricsRegistry reg;
  r.fold_into(reg, "lot");
  c.metrics = reg.to_csv();
  return c;
}

TEST(LotStriping, CellOfDependsOnlyOnAbsoluteDieIndex) {
  const lot::LotConfig cfg = small_lot();
  // point-major grid: cell = point * C + cond, point = die % P,
  // cond = (die / P) % C with P = C = 2.
  EXPECT_EQ(cfg.n_cells(), 4u);
  EXPECT_EQ(cfg.cell_of(0), 0u);  // point 0, cond 0
  EXPECT_EQ(cfg.cell_of(1), 2u);  // point 1, cond 0
  EXPECT_EQ(cfg.cell_of(2), 1u);  // point 0, cond 1
  EXPECT_EQ(cfg.cell_of(3), 3u);  // point 1, cond 1
  EXPECT_EQ(cfg.cell_of(4), 0u);  // stripe wraps
  // Every die of a 24-die lot lands each cell exactly 6 times.
  std::vector<int> per_cell(4, 0);
  for (std::uint64_t d = 0; d < 24; ++d) ++per_cell[cfg.cell_of(d)];
  for (int c : per_cell) EXPECT_EQ(c, 6);
}

TEST(LotShardRange, PartitionsContiguouslyAndCompletely) {
  for (unsigned slots : {1u, 2u, 3u, 8u}) {
    std::uint64_t expect_begin = 0;
    std::uint64_t total = 0;
    for (unsigned s = 0; s < slots; ++s) {
      std::uint64_t b = 0, e = 0;
      lot::internal::shard_range(23, slots, s, &b, &e);
      EXPECT_EQ(b, expect_begin) << "slots " << slots << " shard " << s;
      EXPECT_GE(e, b);
      expect_begin = e;
      total += e - b;
    }
    EXPECT_EQ(total, 23u) << "slots " << slots;
  }
}

TEST(LotCellAccumTest, MergeSumsAndGuardsIdentity) {
  lot::LotCellAccum a;
  a.point_idx = 1;
  a.cond_idx = 0;
  a.n = 4;
  a.detected = 3;
  a.raw_err = 10;
  a.raw_err_sq = 30;
  a.raw_bits_per_die = 4096;
  lot::LotCellAccum b = a;
  b.n = 2;
  b.detected = 2;
  b.raw_err = 5;
  b.raw_err_sq = 13;
  a.merge(b);
  EXPECT_EQ(a.n, 6u);
  EXPECT_EQ(a.detected, 5u);
  EXPECT_EQ(a.raw_err, 15u);
  EXPECT_EQ(a.raw_err_sq, 43u);

  lot::LotCellAccum wrong_cell = b;
  wrong_cell.cond_idx = 1;
  EXPECT_THROW(a.merge(wrong_cell), std::invalid_argument);
  lot::LotCellAccum wrong_bits = b;
  wrong_bits.raw_bits_per_die = 512;
  EXPECT_THROW(a.merge(wrong_bits), std::invalid_argument);
  // A zero width (shard that completed no die in the cell) is compatible.
  lot::LotCellAccum empty_width = b;
  empty_width.raw_bits_per_die = 0;
  empty_width.n = 1;
  EXPECT_NO_THROW(a.merge(empty_width));
}

// The acceptance-criterion matrix in miniature: shards {1, 2, 8} x threads
// {1, 4} must produce byte-identical curve CSVs and byte-identical folded
// lot.* metrics. shards >= 2 exercises the real fork + pipe + CRC path.
TEST(LotShardInvariance, CurvesAreByteIdenticalAcrossShardsAndThreads) {
  const lot::LotConfig cfg = small_lot();
  lot::LotOptions base;
  base.shards = 1;
  base.threads = 1;
  const lot::LotResult ref = lot::run_lot(cfg, base);
  const CurveBytes want = curves_of(ref);
  ASSERT_NE(want.detection.find('\n'), std::string::npos);
  EXPECT_EQ(ref.die_wall_ms.count(), cfg.n_dies);
  EXPECT_EQ(ref.shards_lost, 0u);

  for (unsigned shards : {1u, 2u, 8u}) {
    for (unsigned threads : {1u, 4u}) {
      if (shards == 1 && threads == 1) continue;
      lot::LotOptions opts;
      opts.shards = shards;
      opts.threads = threads;
      const lot::LotResult got = lot::run_lot(cfg, opts);
      const CurveBytes bytes = curves_of(got);
      EXPECT_EQ(bytes.detection, want.detection)
          << "shards " << shards << " threads " << threads;
      EXPECT_EQ(bytes.ber, want.ber)
          << "shards " << shards << " threads " << threads;
      EXPECT_EQ(bytes.metrics, want.metrics)
          << "shards " << shards << " threads " << threads;
      EXPECT_EQ(got.shards_lost, 0u);
      // Diagnostic (non-contractual) stats still cover every die.
      EXPECT_EQ(got.die_wall_ms.count(), cfg.n_dies);
    }
  }
}

TEST(LotShardInvariance, KeepAllRowsCarriesAbsoluteDieIds) {
  lot::LotConfig cfg = small_lot(10);
  lot::LotOptions opts;
  opts.shards = 2;
  opts.threads = 1;
  opts.keep_all_rows = true;
  const lot::LotResult r = lot::run_lot(cfg, opts);
  ASSERT_EQ(r.fleet.dies.size(), 10u);
  std::set<std::size_t> ids;
  for (const auto& row : r.fleet.dies) ids.insert(row.die);
  // merge() must not re-base the second shard's rows: ids are 0..9, each
  // exactly once.
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), 9u);
}

// A worker that dies mid-range must not poison the fold: its whole range is
// reported as per-die kShardLost failures, every other shard's result is
// intact, and the study completes.
TEST(LotShardCrash, LostWorkerYieldsShardLostRowsNotPoison) {
  const lot::LotConfig cfg = small_lot(12);
  lot::LotOptions clean;
  clean.shards = 3;
  clean.threads = 1;
  const lot::LotResult ref = lot::run_lot(cfg, clean);

  lot::LotOptions crash = clean;
  crash.crash_at_die = 5;  // shard 1 owns [4, 8)
  const lot::LotResult got = lot::run_lot(cfg, crash);

  EXPECT_EQ(got.shards_lost, 1u);
  EXPECT_EQ(got.interrupted_signal, 0);  // a crash is not an interruption
  // Every die is still accounted for.
  std::uint64_t n = 0, failed = 0, detected = 0;
  for (const auto& cell : got.cells) {
    n += cell.n;
    failed += cell.failed;
    detected += cell.detected;
  }
  EXPECT_EQ(n, 12u);
  EXPECT_EQ(failed, 4u);

  // The lost range shows up as structured per-die failures...
  std::set<std::size_t> lost_ids;
  for (const auto& row : got.fleet.dies)
    if (row.reason == fleet::FailureReason::kShardLost) {
      EXPECT_TRUE(row.failed);
      EXPECT_EQ(row.health, fleet::DieHealth::kFailed);
      lost_ids.insert(row.die);
    }
  EXPECT_EQ(lost_ids, (std::set<std::size_t>{4, 5, 6, 7}));

  // ...and the surviving shards' integer sums match the clean run exactly:
  // the clean run's detections minus whatever dies 4..7 contributed.
  std::uint64_t ref_detected_outside = 0;
  for (const auto& cell : ref.cells) ref_detected_outside += cell.detected;
  std::uint64_t ref_detected_lost_range = 0;
  // Recompute the clean run's per-die contribution by re-running just the
  // lost range in-process.
  const lot::internal::ShardOutcome lost_range =
      lot::internal::run_shard_range(cfg, 4, 8, clean);
  for (const auto& cell : lost_range.cells)
    ref_detected_lost_range += cell.detected;
  EXPECT_EQ(detected, ref_detected_outside - ref_detected_lost_range);

  // The curves still render (failed dies count against detection, BER rows
  // print over the surviving dies).
  const std::string det = got.detection_csv();
  EXPECT_NE(det.find("npe,"), std::string::npos);
}

TEST(LotWireFormat, RoundTripsAndRejectsCorruption) {
  const lot::LotConfig cfg = small_lot(9);
  const lot::LotOptions opts;
  const lot::internal::ShardOutcome out =
      lot::internal::run_shard_range(cfg, 3, 9, opts);
  const std::string frame = lot::internal::serialize_shard(out, 3, 9);

  const auto back = lot::internal::deserialize_shard(frame, cfg, 3, 9);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->cells.size(), out.cells.size());
  for (std::size_t i = 0; i < out.cells.size(); ++i) {
    EXPECT_EQ(back->cells[i].n, out.cells[i].n);
    EXPECT_EQ(back->cells[i].detected, out.cells[i].detected);
    EXPECT_EQ(back->cells[i].raw_err, out.cells[i].raw_err);
    EXPECT_EQ(back->cells[i].raw_err_sq, out.cells[i].raw_err_sq);
    EXPECT_EQ(back->cells[i].vote_err, out.cells[i].vote_err);
    EXPECT_EQ(back->cells[i].vote_err_sq, out.cells[i].vote_err_sq);
  }
  EXPECT_EQ(back->die_wall_ms.count(), out.die_wall_ms.count());
  EXPECT_DOUBLE_EQ(back->die_wall_ms.mean(), out.die_wall_ms.mean());
  EXPECT_EQ(back->fleet.dies.size(), out.fleet.dies.size());
  EXPECT_DOUBLE_EQ(back->fleet.cpu_ms, out.fleet.cpu_ms);

  // Wrong range: a mixed-up pipe cannot be folded into the wrong slot.
  EXPECT_FALSE(lot::internal::deserialize_shard(frame, cfg, 0, 6).has_value());
  // Truncation (half-written frame from a dying worker).
  EXPECT_FALSE(lot::internal::deserialize_shard(
                   frame.substr(0, frame.size() / 2), cfg, 3, 9)
                   .has_value());
  // Single-byte corruption is caught by the CRC trailer.
  std::string bad = frame;
  bad[bad.size() / 3] = static_cast<char>(bad[bad.size() / 3] ^ 0x40);
  EXPECT_FALSE(lot::internal::deserialize_shard(bad, cfg, 3, 9).has_value());
  // Trailing garbage after a valid body is rejected too.
  std::string padded = frame;
  padded.insert(padded.size() - 4, "XX");
  EXPECT_FALSE(
      lot::internal::deserialize_shard(padded, cfg, 3, 9).has_value());
}

TEST(LotCsv, EmptyCellsPrintExplicitNan) {
  // 2 dies over a 4-cell grid: cells 1 and 3 never get a die, and their
  // interval columns must read nan — never a fabricated 0.
  const lot::LotConfig cfg = small_lot(2);
  const lot::LotResult r = lot::run_lot(cfg, {});
  const std::string det = r.detection_csv();
  EXPECT_NE(det.find(",0,0,0,nan,nan,nan"), std::string::npos) << det;
  const std::string ber = r.ber_csv();
  // A one-die cell has a mean but no interval (variance needs n >= 2).
  EXPECT_NE(ber.find(",raw,1,"), std::string::npos) << ber;
  EXPECT_NE(ber.find(",nan,nan\n"), std::string::npos) << ber;
}

// Signal containment (operational SIGTERM/SIGINT, not a crash): the parent
// forwards the signal to its worker process group, reaps every worker with
// a bounded wait, folds the killed ranges as kShardLost, and *returns* with
// interrupted_signal set — re-raising (or not) is the binary's decision,
// never the library's. Exercised end to end in a forked child so the real
// kill(2) delivery, process-group forwarding, and reap run.
TEST(LotSignals, SigtermForwardsToWorkersAndFoldsShardLost) {
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // SIGTERM is ignored *between* runs; run_sharded swaps in its own
    // flag-only handler for the duration of each run, so a signal landing
    // mid-run is contained and one landing in a gap is simply dropped (the
    // parent re-sends until one lands mid-run).
    std::signal(SIGTERM, SIG_IGN);
    lot::LotConfig cfg = small_lot(48);
    lot::LotOptions opts;
    opts.shards = 2;
    opts.threads = 1;
    for (int round = 0; round < 1'000; ++round) {
      const lot::LotResult r = lot::run_lot(cfg, opts);
      if (r.interrupted_signal == 0) continue;  // finished before delivery
      // A signal landing after every shard already reported is a valid
      // (lossless) outcome but proves nothing — go again.
      if (r.shards_lost == 0) continue;
      int code = 0;
      if (r.interrupted_signal != SIGTERM) code |= 1;
      std::size_t lost_rows = 0;
      for (const auto& row : r.fleet.dies)
        if (row.reason == fleet::FailureReason::kShardLost) {
          if (!row.failed) code |= 4;
          ++lost_rows;
        }
      if (lost_rows == 0) code |= 8;
      // Every die is still accounted for (lost ranges fold as failures).
      std::uint64_t n = 0;
      for (const auto& cell : r.cells) n += cell.n;
      if (n != cfg.n_dies) code |= 16;
      ::_exit(code);
    }
    ::_exit(32);  // no signal ever observed
  }

  // Parent: keep prodding until one SIGTERM lands mid-run and the child
  // reports its containment verdict via the exit code.
  int wstatus = 0;
  pid_t reaped = 0;
  for (int i = 0; i < 600; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_EQ(::kill(child, SIGTERM), 0);
    reaped = ::waitpid(child, &wstatus, WNOHANG);
    ASSERT_GE(reaped, 0);
    if (reaped == child) break;
  }
  if (reaped != child) {
    ::kill(child, SIGKILL);
    ::waitpid(child, &wstatus, 0);
    FAIL() << "child never exited";
  }
  ASSERT_TRUE(WIFEXITED(wstatus)) << wstatus;
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

TEST(LotConfigTest, RejectsDegenerateStudies) {
  lot::LotConfig empty = small_lot(0);
  EXPECT_THROW(lot::run_lot(empty, {}), std::invalid_argument);
  lot::LotConfig no_points = small_lot();
  no_points.npe_points.clear();
  EXPECT_THROW(lot::run_lot(no_points, {}), std::invalid_argument);
  lot::LotConfig no_conds = small_lot();
  no_conds.conditions.clear();
  EXPECT_THROW(lot::run_lot(no_conds, {}), std::invalid_argument);
  lot::LotConfig bad_seg = small_lot();
  bad_seg.segment = 1u << 20;
  EXPECT_THROW(lot::run_lot(bad_seg, {}), std::invalid_argument);
}

}  // namespace
}  // namespace flashmark
