// Crash-recoverable imprint sessions: journal framing, atomic persistence,
// die-format-v2 state capture, and the resume-determinism contract — a
// session interrupted anywhere (including a journal torn at *every* record
// boundary) must resume to a die byte-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/flashmark.hpp"
#include "mcu/persist.hpp"
#include "session/journal.hpp"
#include "session/resumable.hpp"
#include "util/fsio.hpp"
#include "util/rng.hpp"

namespace flashmark {
namespace {

namespace fs = std::filesystem;
using session::JournalRecord;
using session::JournalWriter;
using session::ReplayResult;

/// Fresh scratch directory per test (removed on destruction).
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

std::string slurp(const std::string& path) {
  std::string out;
  IoStatus st = read_file(path, &out);
  EXPECT_TRUE(st) << st.error;
  return out;
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << content;
  ASSERT_TRUE(os.good());
}

std::string serialize(Device& dev) {
  std::ostringstream os;
  save_device(dev, os);
  return os.str();
}

// ---------------------------------------------------------------------------
// fsio: the atomic-replace primitive everything else rests on.

TEST(Fsio, AtomicWriteRoundtripAndReplace) {
  ScratchDir d("fm_fsio_atomic");
  const std::string p = d.file("x.txt");
  ASSERT_TRUE(atomic_write_file(p, "first"));
  EXPECT_EQ(slurp(p), "first");
  ASSERT_TRUE(atomic_write_file(p, "second, longer content"));
  EXPECT_EQ(slurp(p), "second, longer content");
  // No temp litter after success.
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST(Fsio, FailureCarriesCause) {
  const IoStatus st =
      atomic_write_file("/no_such_dir_fm_test/x.txt", "payload");
  EXPECT_FALSE(st);
  EXPECT_FALSE(st.error.empty());
}

TEST(Fsio, MakeDirsNestedAndIdempotent) {
  ScratchDir d("fm_fsio_dirs");
  const std::string nested = d.file("a/b/c");
  ASSERT_TRUE(make_dirs(nested));
  EXPECT_TRUE(fs::is_directory(nested));
  EXPECT_TRUE(make_dirs(nested));  // already exists: success
}

// ---------------------------------------------------------------------------
// Journal framing: CRC-32 records, longest-valid-prefix replay.

TEST(Journal, FrameReplayRoundtrip) {
  ScratchDir d("fm_journal_rt");
  const std::string p = d.file("j.fmj");
  {
    JournalWriter w = JournalWriter::create(
        p, {{"begin", "seg=0 npe=10"}}, /*durable=*/false);
    w.append({"ckpt", "cycles=5 file=die-5.fm"}, false);
    w.append({"end", "cycles=10 elapsed_ns=1 retries=0"}, false);
  }
  const ReplayResult r = session::replay_journal(p);
  EXPECT_TRUE(r.header_ok);
  EXPECT_EQ(r.dropped_bytes, 0u);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].type, "begin");
  EXPECT_EQ(r.records[1].payload, "cycles=5 file=die-5.fm");
  EXPECT_EQ(r.records[2].type, "end");
}

TEST(Journal, FrameRejectsUnframableRecords) {
  EXPECT_THROW(session::frame_record({"two words", "x"}),
               std::invalid_argument);
  EXPECT_THROW(session::frame_record({"t", "line1\nline2"}),
               std::invalid_argument);
}

TEST(Journal, BadHeaderThrows) {
  ScratchDir d("fm_journal_hdr");
  const std::string p = d.file("j.fmj");
  spit(p, "NOT-A-JOURNAL 1\n");
  EXPECT_THROW(session::replay_journal(p), std::runtime_error);
  EXPECT_THROW(session::replay_journal(d.file("absent.fmj")),
               std::runtime_error);
}

TEST(Journal, CorruptedRecordEndsTrustedPrefix) {
  ScratchDir d("fm_journal_crc");
  const std::string p = d.file("j.fmj");
  {
    JournalWriter w =
        JournalWriter::create(p, {{"a", "1"}, {"b", "2"}}, false);
    w.append({"c", "3"}, false);
  }
  std::string content = slurp(p);
  // Flip one payload byte of the middle record; its CRC no longer matches,
  // so replay trusts only the first record and reports the rest dropped.
  const auto pos = content.find(" b 2");
  ASSERT_NE(pos, std::string::npos);
  content[pos + 3] = '9';
  spit(p, content);
  const ReplayResult r = session::replay_journal(p);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].type, "a");
  EXPECT_GT(r.dropped_bytes, 0u);
}

TEST(Journal, TornTailDroppedAtEveryTruncationPoint) {
  ScratchDir d("fm_journal_torn");
  const std::string p = d.file("j.fmj");
  {
    JournalWriter w =
        JournalWriter::create(p, {{"a", "1"}, {"b", "2"}, {"c", "3"}}, false);
  }
  const std::string full = slurp(p);
  // Record boundaries: offsets just past each newline.
  std::vector<std::size_t> bounds;
  for (std::size_t i = 0; i < full.size(); ++i)
    if (full[i] == '\n') bounds.push_back(i + 1);
  ASSERT_EQ(bounds.size(), 4u);  // header + 3 records
  for (std::size_t cut = bounds.front(); cut <= full.size(); ++cut) {
    spit(p, full.substr(0, cut));
    const ReplayResult r = session::replay_journal(p);
    // Trusted records = number of complete record lines before the cut.
    std::size_t complete = 0;
    for (std::size_t b = 1; b < bounds.size(); ++b)
      if (cut >= bounds[b]) ++complete;
    EXPECT_EQ(r.records.size(), complete) << "cut at " << cut;
    EXPECT_EQ(r.dropped_bytes, cut - bounds[complete]) << "cut at " << cut;
  }
}

TEST(Journal, OpenTruncatesTornTailAndAppendsCleanly) {
  ScratchDir d("fm_journal_open");
  const std::string p = d.file("j.fmj");
  { JournalWriter w = JournalWriter::create(p, {{"a", "1"}}, false); }
  const std::string full = slurp(p);
  spit(p, full + "R deadbeef torn rec");  // no newline: torn mid-append
  {
    JournalWriter w = JournalWriter::open(p, false);
    w.append({"b", "2"}, false);
  }
  const ReplayResult r = session::replay_journal(p);
  EXPECT_EQ(r.dropped_bytes, 0u);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[1].type, "b");
}

// ---------------------------------------------------------------------------
// Die format v2: complete state capture (the property resume rests on).

TEST(PersistV2, ReloadedDieContinuesNoiseStreamExactly) {
  Device dev(DeviceConfig::msp430f5438(), 77);
  const auto& g = dev.config().geometry;
  // Consume noise draws so the stream is mid-flight, not at its seed.
  WatermarkSpec spec;
  spec.fields.die_id = 5;
  spec.npe = 50;
  spec.strategy = ImprintStrategy::kLoop;
  imprint_watermark(dev.hal(), g.segment_base(0), spec);

  std::stringstream ss;
  save_device(dev, ss);
  auto back = load_device(ss);
  EXPECT_EQ(serialize(dev), serialize(*back));

  // The real test: both dies now run the *same* noise-consuming workload;
  // if the stream state survived the roundtrip they stay byte-identical.
  ExtractOptions eo;
  extract_flashmark(dev.hal(), g.segment_base(0), eo);
  extract_flashmark(back->hal(), g.segment_base(0), eo);
  EXPECT_EQ(serialize(dev), serialize(*back));
}

TEST(PersistV2, TemperatureSurvivesRoundtrip) {
  Device dev(DeviceConfig::msp430f5438(), 78);
  dev.array().set_temperature_c(61.5);
  std::stringstream ss;
  save_device(dev, ss);
  auto back = load_device(ss);
  EXPECT_EQ(back->array().temperature_c(), 61.5);
}

TEST(PersistV2, V1FilesStillLoad) {
  Device dev(DeviceConfig::msp430f5529(), 79);
  dev.hal().wear_segment(dev.config().geometry.segment_base(1), 1'000);
  std::stringstream ss;
  save_device(dev, ss);
  // Demote the v2 file to v1: old header, no temperature/noise_rng lines.
  std::istringstream in(ss.str());
  std::ostringstream v1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("FLASHMARK-DIE", 0) == 0)
      v1 << "FLASHMARK-DIE 1\n";
    else if (line.rfind("temperature_c", 0) == 0 ||
             line.rfind("noise_rng", 0) == 0)
      continue;
    else
      v1 << line << "\n";
  }
  std::istringstream v1in(v1.str());
  auto back = load_device(v1in);
  EXPECT_EQ(back->config().family, "MSP430F5529");
  EXPECT_EQ(back->die_seed(), 79u);
  EXPECT_EQ(back->array().wear_stats(1).eff_cycles_mean,
            dev.array().wear_stats(1).eff_cycles_mean);
}

TEST(PersistV2, CorruptedDieFileFuzzNeverCrashes) {
  ScratchDir d("fm_persist_fuzz");
  Device dev(DeviceConfig::msp430f5438(), 80);
  dev.hal().program_word(dev.config().geometry.segment_base(0), 0xABCD);
  const std::string p = d.file("die.fm");
  ASSERT_TRUE(save_device_file(dev, p));
  const std::string good = slurp(p);

  Rng rng(0xF022);
  int rejected = 0;
  for (int i = 0; i < 200; ++i) {
    std::string bad = good;
    switch (i % 3) {
      case 0:  // truncate at a pseudorandom offset
        bad.resize(rng.uniform_u64(bad.size() + 1));
        break;
      case 1: {  // flip a byte (single digit flips may legally survive)
        const std::size_t at = rng.uniform_u64(bad.size());
        bad[at] = static_cast<char>(bad[at] ^ (1u << (i % 8)));
        break;
      }
      case 2: {  // splice a chunk out of the middle
        const std::size_t at = rng.uniform_u64(bad.size());
        const std::size_t len = 1 + rng.uniform_u64(64);
        bad.erase(at, std::min(len, bad.size() - at));
        break;
      }
    }
    spit(p, bad);
    try {
      auto back = load_device_file(p);
    } catch (const std::exception&) {
      // Structured rejection is the contract; crashing/UB is the bug.
      ++rejected;
    }
  }
  // Structural damage (truncations, splices) must be *detected*, not
  // silently absorbed — only benign single-digit flips may slip through.
  EXPECT_GT(rejected, 60);
}

// ---------------------------------------------------------------------------
// Resumable sessions: the byte-identical crash/resume contract.

struct SessionFixture {
  DeviceConfig cfg = DeviceConfig::msp430f5438();
  std::uint64_t seed = 0x5E55;
  std::uint32_t npe = 400;
  std::uint32_t every = 64;
  BitVec pattern;
  Addr addr = 0;

  SessionFixture() {
    Device probe(cfg, seed);
    const auto& g = probe.config().geometry;
    addr = g.segment_base(0);
    WatermarkSpec spec;
    spec.fields.die_id = 99;
    spec.npe = npe;
    pattern = encode_watermark(spec, g.segment_cells(0)).segment_pattern;
  }

  /// The uninterrupted run every resumed run must match byte for byte.
  std::string reference() const {
    Device dev(cfg, seed);
    ImprintOptions io;
    io.npe = npe;
    io.strategy = ImprintStrategy::kLoop;
    io.accelerated = true;
    imprint_flashmark(dev.hal(), addr, pattern, io);
    std::ostringstream os;
    save_device(dev, os);
    return os.str();
  }

  session::SessionConfig config() const {
    session::SessionConfig c;
    c.checkpoint_every = every;
    c.durable = false;  // keep the 70-odd resumes below fast
    c.accelerated = true;
    return c;
  }

  ImprintReport run_full(const std::string& dir) const {
    Device dev(cfg, seed);
    return session::run_imprint_session(dir, dev, addr, pattern, npe,
                                        config());
  }
};

TEST(Session, UninterruptedSessionMatchesPlainImprint) {
  SessionFixture f;
  ScratchDir d("fm_session_plain");
  Device dev(f.cfg, f.seed);
  const ImprintReport r =
      session::run_imprint_session(d.str(), dev, f.addr, f.pattern, f.npe,
                                   f.config());
  EXPECT_EQ(r.npe, f.npe);
  EXPECT_EQ(serialize(dev), f.reference());

  const session::SessionStatus st = session::inspect_session(d.str());
  EXPECT_TRUE(st.exists);
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(st.npe, f.npe);
  EXPECT_EQ(st.cycles_done, f.npe);
}

TEST(Session, RefusesToOverwriteExistingJournal) {
  SessionFixture f;
  ScratchDir d("fm_session_refuse");
  f.run_full(d.str());
  Device dev(f.cfg, f.seed);
  EXPECT_THROW(session::run_imprint_session(d.str(), dev, f.addr, f.pattern,
                                            f.npe, f.config()),
               std::runtime_error);
}

TEST(Session, ResumingCompletedSessionIsIdempotent) {
  SessionFixture f;
  ScratchDir d("fm_session_idem");
  f.run_full(d.str());
  session::ResumeResult r = session::resume_imprint_session(d.str(), f.config());
  EXPECT_TRUE(r.already_complete);
  EXPECT_EQ(r.resumed_from, f.npe);
  ASSERT_NE(r.dev, nullptr);
  EXPECT_EQ(serialize(*r.dev), f.reference());
}

TEST(Session, CancelledMidRunThenResumedIsByteIdentical) {
  SessionFixture f;
  ScratchDir d("fm_session_cancel");
  Device dev(f.cfg, f.seed);
  session::SessionConfig cfg = f.config();
  std::uint32_t done = 0;
  cfg.on_cycle = [&done](std::uint32_t c) { done = c; };
  cfg.cancelled = [&done] { return done >= 230; };  // off any boundary
  EXPECT_THROW(session::run_imprint_session(d.str(), dev, f.addr, f.pattern,
                                            f.npe, cfg),
               OperationCancelledError);

  session::ResumeResult r = session::resume_imprint_session(d.str(), f.config());
  EXPECT_FALSE(r.already_complete);
  EXPECT_EQ(r.resumed_from, 192u);  // newest durable checkpoint before 230
  EXPECT_EQ(serialize(*r.dev), f.reference());
}

/// The acceptance test: truncate the journal of a *completed* session at
/// every record boundary (and a few bytes past each, simulating torn
/// appends), resume, and demand the final die is byte-identical to the
/// uninterrupted reference every single time.
TEST(Session, TruncateAtEveryRecordBoundaryResumesByteIdentical) {
  SessionFixture f;
  ScratchDir d("fm_session_trunc");
  // Keep every checkpoint file so any truncated journal can load its newest
  // surviving ckpt record (GC would have deleted older ones, which is fine
  // in production where the journal is only ever torn at the tail, but the
  // sweep below rewinds deep into history).
  {
    Device dev(f.cfg, f.seed);
    session::SessionConfig cfg = f.config();
    cfg.gc_checkpoints = false;
    session::run_imprint_session(d.str(), dev, f.addr, f.pattern, f.npe, cfg);
  }
  const std::string want = f.reference();
  const std::string jpath = session::imprint_journal_path(d.str());
  const std::string full = slurp(jpath);

  std::vector<std::size_t> bounds;
  for (std::size_t i = 0; i < full.size(); ++i)
    if (full[i] == '\n') bounds.push_back(i + 1);
  ASSERT_GE(bounds.size(), 4u);

  int checked = 0;
  for (std::size_t b = 1; b < bounds.size(); ++b) {  // skip header-only cut
    for (const std::size_t cut :
         {bounds[b], std::min(bounds[b] + 9, full.size())}) {
      // Clone the session directory, truncate the clone's journal at `cut`.
      ScratchDir clone("fm_session_trunc_clone");
      for (const auto& e : fs::directory_iterator(d.path))
        fs::copy_file(e.path(), clone.path / e.path().filename());
      spit(session::imprint_journal_path(clone.str()), full.substr(0, cut));

      session::ResumeResult r =
          session::resume_imprint_session(clone.str(), f.config());
      ASSERT_NE(r.dev, nullptr) << "cut at " << cut;
      EXPECT_EQ(serialize(*r.dev), want) << "cut at " << cut;
      ++checked;

      // And the re-resumed session is itself a valid completed session.
      const session::SessionStatus st =
          session::inspect_session(clone.str());
      EXPECT_TRUE(st.completed) << "cut at " << cut;
    }
  }
  EXPECT_GE(checked, 12);
}

TEST(Session, OrphanedCheckpointFileIsSkipped) {
  // WAL discipline: a crash between the die save and its ckpt record leaves
  // an orphan die file. Replay never sees it; resume must use the newest
  // *recorded* checkpoint. Simulate by corrupting the newest recorded die
  // file instead — resume must demote to the previous one, not fail.
  SessionFixture f;
  ScratchDir d("fm_session_orphan");
  {
    Device dev(f.cfg, f.seed);
    session::SessionConfig cfg = f.config();
    cfg.gc_checkpoints = false;
    session::run_imprint_session(d.str(), dev, f.addr, f.pattern, f.npe, cfg);
  }
  // Tear the journal back to before the `end`+final-ckpt records, then
  // corrupt the newest surviving recorded checkpoint.
  const std::string jpath = session::imprint_journal_path(d.str());
  const std::string full = slurp(jpath);
  std::vector<std::size_t> bounds;
  for (std::size_t i = 0; i < full.size(); ++i)
    if (full[i] == '\n') bounds.push_back(i + 1);
  spit(jpath, full.substr(0, bounds[bounds.size() - 3]));
  const session::SessionStatus st = session::inspect_session(d.str());
  ASSERT_FALSE(st.completed);
  ASSERT_GT(st.cycles_done, 0u);
  spit(d.file("die-" + std::to_string(st.cycles_done) + ".fm"),
       "FLASHMARK-DIE 2\ngarbage\n");

  session::ResumeResult r = session::resume_imprint_session(d.str(), f.config());
  EXPECT_LT(r.resumed_from, st.cycles_done);
  EXPECT_EQ(serialize(*r.dev), f.reference());
}

TEST(Session, InspectAbsentSessionNeverThrows) {
  const session::SessionStatus st =
      session::inspect_session("/tmp/no_such_fm_session_dir");
  EXPECT_FALSE(st.exists);
  EXPECT_FALSE(st.completed);
}

}  // namespace
}  // namespace flashmark
