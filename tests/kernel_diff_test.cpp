// Kernel differential harness (ctest -L kernel): KernelMode::kReference and
// KernelMode::kBatched must be BYTE-IDENTICAL for any operation sequence.
//
// The batched SoA kernels (src/phys/kernels.cpp) are only trustworthy if
// switching them on can never change a single bit of any result. These tests
// drive both modes through identical workloads — randomized array op soups,
// fleet imprint→extract→audit round trips at several thread counts, and
// fault-injected batches — and compare full serialized die state, extracted
// bitmaps, VerifyReports, RNG stream states and deterministic counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/watermark.hpp"
#include "fleet/fleet.hpp"
#include "mcu/persist.hpp"
#include "phys/kernels.hpp"
#include "store/die_store.hpp"
#include "util/fm_math.hpp"

namespace flashmark {
namespace {

constexpr std::uint64_t kMaster = 0x6B65726E;  // test-local master seed

namespace fs = std::filesystem;

/// Fresh scratch directory per test (removed on destruction).
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// Scoped ISA dispatch cap (util/fm_math.hpp). Restores the uncapped state
/// on destruction so tests cannot leak a forced-scalar world to each other.
struct IsaCapGuard {
  explicit IsaCapGuard(fmm::Isa cap) { fmm::set_isa_cap_for_test(cap); }
  ~IsaCapGuard() { fmm::set_isa_cap_for_test(fmm::Isa::kAvx512); }
};

/// The dispatch tiers this host can actually run, scalar first.
std::vector<fmm::Isa> testable_isas() {
  std::vector<fmm::Isa> isas = {fmm::Isa::kScalar};
  const int top = static_cast<int>(fmm::detected_isa());
  if (top >= static_cast<int>(fmm::Isa::kAvx2)) isas.push_back(fmm::Isa::kAvx2);
  if (top >= static_cast<int>(fmm::Isa::kAvx512))
    isas.push_back(fmm::Isa::kAvx512);
  return isas;
}

DeviceConfig config_with(KernelMode m) {
  DeviceConfig cfg = DeviceConfig::msp430f5438();
  cfg.kernel_mode = m;
  return cfg;
}

/// Full serialized state of an array: every materialized segment's cell
/// state plus the read-noise RNG stream position (so "same bytes" also
/// proves "same number and order of draws").
std::string dump_array(FlashArray& a) {
  std::ostringstream os;
  a.save_segments(os);
  const Rng::State st = a.noise_rng_state();
  os << st.s[0] << ' ' << st.s[1] << ' ' << st.s[2] << ' ' << st.s[3] << ' '
     << st.cached_normal_bits << ' ' << st.has_cached_normal << '\n';
  return os.str();
}

std::string dump_device(Device& dev) {
  std::ostringstream os;
  save_device(dev, os);
  return os.str();
}

WatermarkSpec diff_spec(std::size_t die) {
  WatermarkSpec spec;
  spec.fields = {0x7C05, static_cast<std::uint32_t>(die), 2,
                 TestStatus::kAccept, 0x155};
  spec.key = SipHashKey{0xD1F, 0x5EED};
  spec.n_replicas = 7;
  spec.npe = 60'000;
  spec.strategy = ImprintStrategy::kBatchWear;
  return spec;
}

VerifyOptions diff_verify() {
  VerifyOptions vo;
  vo.t_pew = SimTime::us(30);
  vo.key = SipHashKey{0xD1F, 0x5EED};
  vo.rounds = 3;
  vo.n_reads = 3;
  return vo;
}

/// Field-wise bitwise comparison of two VerifyReports (floating-point fields
/// with EXPECT_EQ on purpose: the contract is byte identity, not closeness).
void expect_reports_identical(const VerifyReport& a, const VerifyReport& b) {
  EXPECT_EQ(a.verdict, b.verdict);
  ASSERT_EQ(a.fields.has_value(), b.fields.has_value());
  if (a.fields) {
    EXPECT_EQ(a.fields->manufacturer_id, b.fields->manufacturer_id);
    EXPECT_EQ(a.fields->die_id, b.fields->die_id);
  }
  EXPECT_EQ(a.signature_checked, b.signature_checked);
  EXPECT_EQ(a.signature_ok, b.signature_ok);
  EXPECT_EQ(a.invalid_00_pairs, b.invalid_00_pairs);
  EXPECT_EQ(a.invalid_11_pairs, b.invalid_11_pairs);
  EXPECT_EQ(a.zero_fraction, b.zero_fraction);
  EXPECT_EQ(a.replica_disagreement, b.replica_disagreement);
  EXPECT_EQ(a.extract_time.as_ns(), b.extract_time.as_ns());
  EXPECT_EQ(a.ecc_corrected_blocks, b.ecc_corrected_blocks);
  EXPECT_EQ(a.retries, b.retries);
}

/// Deterministic slice of a fleet counter row (wall_ms excluded by design).
std::string counters_key(const fleet::DieCounters& c) {
  std::ostringstream os;
  os << c.die << '|' << c.pe_cycles << '|' << c.sim_time.as_ns() << '|'
     << c.erase_ops << '|' << c.program_ops << '|' << c.read_ops << '|'
     << c.faults_injected << '|' << c.retries << '|' << c.ecc_corrected << '|'
     << static_cast<int>(c.health) << '|' << static_cast<int>(c.reason);
  return os.str();
}

// ---------------------------------------------------------------------------
// Array-level differential: a randomized soup of every physical operation,
// applied to a reference-mode and a batched-mode array in lockstep. After
// every phase the full serialized state (cells + noise stream) must match.
// ---------------------------------------------------------------------------

TEST(KernelDiff, ArrayOpSoupByteIdentity) {
  const FlashGeometry g = FlashGeometry::msp430f5438();
  const PhysParams p = PhysParams::msp430_calibrated();
  FlashArray ref(g, p, /*die_seed=*/0xA11CE);
  FlashArray bat(g, p, /*die_seed=*/0xA11CE);
  ref.set_kernel_mode(KernelMode::kReference);
  bat.set_kernel_mode(KernelMode::kBatched);

  // One op script, replayed identically on both arrays. The script RNG is
  // separate from the arrays' noise streams.
  Rng script(0x5C121BE);
  const std::size_t kSegments = 3;  // keep the soup fast but multi-segment
  const Addr seg_base0 = g.segment_base(0);

  auto random_word_addr = [&](Rng& r) {
    const std::size_t seg = static_cast<std::size_t>(r.next_u64() % kSegments);
    const std::size_t words = g.segment_bytes(seg) / g.word_bytes;
    const std::size_t w = static_cast<std::size_t>(r.next_u64() % words);
    return g.segment_base(seg) + static_cast<Addr>(w * g.word_bytes);
  };

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t op = script.next_u64() % 12;
    const std::size_t seg = static_cast<std::size_t>(script.next_u64() % kSegments);
    switch (op) {
      case 0:
        ref.erase_segment(seg);
        bat.erase_segment(seg);
        break;
      case 1: {
        const double t = static_cast<double>(script.next_u64() % 4000) / 100.0;
        ref.partial_erase_segment(seg, t);
        bat.partial_erase_segment(seg, t);
        break;
      }
      case 2: {
        const Addr a = random_word_addr(script);
        const auto v = static_cast<std::uint16_t>(script.next_u64());
        ref.program_word(a, v);
        bat.program_word(a, v);
        break;
      }
      case 3: {  // block program of 4..32 words at a segment-interior base
        const std::size_t n = 4 + static_cast<std::size_t>(script.next_u64() % 29);
        std::vector<std::uint16_t> words(n);
        for (auto& w : words) w = static_cast<std::uint16_t>(script.next_u64());
        const std::size_t seg_words = g.segment_bytes(seg) / g.word_bytes;
        const std::size_t w0 =
            static_cast<std::size_t>(script.next_u64() % (seg_words - n));
        const Addr a = g.segment_base(seg) + static_cast<Addr>(w0 * g.word_bytes);
        ref.program_words(a, words.data(), n);
        bat.program_words(a, words.data(), n);
        break;
      }
      case 4: {
        const Addr a = random_word_addr(script);
        const auto v = static_cast<std::uint16_t>(script.next_u64());
        const double f = 0.05 + static_cast<double>(script.next_u64() % 100) / 100.0;
        ref.partial_program_word(a, v, f);
        bat.partial_program_word(a, v, f);
        break;
      }
      case 5: {
        const Addr a = random_word_addr(script);
        EXPECT_EQ(ref.read_word(a), bat.read_word(a));
        break;
      }
      case 6: {
        const int n_reads = 1 + 2 * static_cast<int>(script.next_u64() % 3);
        const BitVec r = ref.read_segment_majority(seg, n_reads);
        const BitVec b = bat.read_segment_majority(seg, n_reads);
        EXPECT_EQ(r, b);
        break;
      }
      case 7: {
        const double cycles = static_cast<double>(script.next_u64() % 5000);
        BitVec pattern(g.segment_cells(seg));
        for (std::size_t i = 0; i < pattern.size(); ++i)
          pattern.set(i, (script.next_u64() & 1) != 0);
        const bool use_pattern = (script.next_u64() & 1) != 0;
        ref.wear_segment(seg, cycles, use_pattern ? &pattern : nullptr);
        bat.wear_segment(seg, cycles, use_pattern ? &pattern : nullptr);
        break;
      }
      case 8: {
        const double years = static_cast<double>(script.next_u64() % 8);
        ref.age(years);
        bat.age(years);
        break;
      }
      case 9: {
        const double hours = static_cast<double>(script.next_u64() % 48);
        ref.bake(hours);
        bat.bake(hours);
        break;
      }
      case 10: {
        const double t = 25.0 + static_cast<double>(script.next_u64() % 60) - 20.0;
        ref.set_temperature_c(t);
        bat.set_temperature_c(t);
        break;
      }
      default: {
        // Queries must agree bitwise and leave no trace on the state.
        EXPECT_EQ(ref.time_to_full_erase_us(seg), bat.time_to_full_erase_us(seg));
        EXPECT_EQ(ref.count_erased(seg), bat.count_erased(seg));
        EXPECT_EQ(ref.snapshot(seg), bat.snapshot(seg));
        const SegmentWearStats wr = ref.wear_stats(seg);
        const SegmentWearStats wb = bat.wear_stats(seg);
        EXPECT_EQ(wr.tte_min_us, wb.tte_min_us);
        EXPECT_EQ(wr.tte_mean_us, wb.tte_mean_us);
        EXPECT_EQ(wr.tte_max_us, wb.tte_max_us);
        EXPECT_EQ(wr.eff_cycles_mean, wb.eff_cycles_mean);
        break;
      }
    }
    if (step % 50 == 49)
      ASSERT_EQ(dump_array(ref), dump_array(bat)) << "diverged at step " << step;
  }
  EXPECT_EQ(dump_array(ref), dump_array(bat));
  (void)seg_base0;
}

// The segment read kernel must equal the word-read loop it replaced: same
// majority bitmap AND same number/order of noise draws.
TEST(KernelDiff, ReadSegmentMatchesWordLoop) {
  for (KernelMode mode : {KernelMode::kReference, KernelMode::kBatched}) {
    Device seg_dev(config_with(mode), /*die_seed=*/0xBEE5);
    Device word_dev(config_with(mode), /*die_seed=*/0xBEE5);
    const FlashGeometry& g = seg_dev.config().geometry;
    const Addr base = g.segment_base(0);

    // Leave the segment metastable so reads actually draw noise.
    for (auto* d : {&seg_dev, &word_dev}) {
      d->array().wear_segment(0, 1000.0);
      std::vector<std::uint16_t> zeros(g.segment_bytes(0) / g.word_bytes, 0);
      d->array().program_words(base, zeros.data(), zeros.size());
      d->array().partial_erase_segment(0, 30.0);
    }

    const int n_reads = 5;
    const BitVec fast = seg_dev.array().read_segment_majority(0, n_reads);

    const std::size_t n_words = g.segment_bytes(0) / g.word_bytes;
    const std::size_t bpw = g.bits_per_word();
    BitVec slow(n_words * bpw);
    for (std::size_t w = 0; w < n_words; ++w) {
      const Addr wa = base + static_cast<Addr>(w * g.word_bytes);
      std::vector<int> ones(bpw, 0);
      for (int r = 0; r < n_reads; ++r) {
        const std::uint16_t v = word_dev.array().read_word(wa);
        for (std::size_t b = 0; b < bpw; ++b)
          ones[b] += static_cast<int>((v >> b) & 1u);
      }
      for (std::size_t b = 0; b < bpw; ++b)
        slow.set(w * bpw + b, ones[b] * 2 > n_reads);
    }

    EXPECT_EQ(fast, slow) << "mode " << to_string(mode);
    EXPECT_EQ(dump_array(seg_dev.array()), dump_array(word_dev.array()))
        << "noise stream diverged in mode " << to_string(mode);
  }
}

// ---------------------------------------------------------------------------
// Fleet-level differential: the full imprint→extract→audit pipeline must be
// byte-identical across kernel modes at every thread count (and across
// thread counts within a mode — the PR-1 contract, re-pinned here with the
// kernel switch in the loop).
// ---------------------------------------------------------------------------

struct PipelineSnapshot {
  std::vector<std::string> die_files;
  std::vector<std::string> extracted_bits;
  std::vector<std::string> counters;
  std::vector<VerifyReport> reports;
};

PipelineSnapshot run_pipeline(KernelMode mode, unsigned threads,
                              const fleet::FaultPolicy& faults = {}) {
  constexpr std::size_t kDies = 6;
  fleet::FleetOptions fo;
  fo.threads = threads;

  auto imprinted = fleet::imprint_batch(config_with(mode), kMaster, kDies, 0,
                                        diff_spec, fo, faults);
  ExtractOptions eo;
  eo.t_pew = SimTime::us(30);
  auto extracted = fleet::extract_batch(imprinted.dies, 0, eo, fo, faults);
  auto audited = fleet::audit_batch(imprinted.dies, 0, diff_verify(), fo, faults);

  PipelineSnapshot s;
  for (std::size_t d = 0; d < kDies; ++d) {
    s.die_files.push_back(dump_device(*imprinted.dies[d]));
    s.extracted_bits.push_back(extracted.results[d].bits.to_string());
    s.counters.push_back(counters_key(imprinted.fleet.dies[d]) + "//" +
                         counters_key(audited.fleet.dies[d]));
    s.reports.push_back(audited.reports[d]);
  }
  return s;
}

void expect_snapshots_identical(const PipelineSnapshot& a,
                                const PipelineSnapshot& b) {
  EXPECT_EQ(a.die_files, b.die_files);
  EXPECT_EQ(a.extracted_bits, b.extracted_bits);
  EXPECT_EQ(a.counters, b.counters);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i)
    expect_reports_identical(a.reports[i], b.reports[i]);
}

TEST(KernelDiff, PipelineByteIdenticalAcrossModesAndThreads) {
  const PipelineSnapshot ref1 = run_pipeline(KernelMode::kReference, 1);
  for (unsigned threads : {1u, 4u, 16u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_snapshots_identical(ref1,
                               run_pipeline(KernelMode::kReference, threads));
    expect_snapshots_identical(ref1,
                               run_pipeline(KernelMode::kBatched, threads));
  }
  // The round trips must actually verify (not all-failed snapshots that
  // trivially compare equal).
  for (const auto& r : ref1.reports) EXPECT_EQ(r.verdict, Verdict::kGenuine);
}

TEST(KernelDiff, PipelineByteIdenticalUnderFaultPolicy) {
  fleet::FaultPolicy faults;
  faults.config.stuck_at0_per_segment = 1.5;
  faults.config.stuck_at1_per_segment = 1.5;
  faults.config.read_burst_p = 2e-4;
  faults.config.erase_fail_p = 0.02;
  faults.config.program_fail_p = 1e-5;
  // Every die afflicted; no power losses, so no retry budget is needed and
  // every die completes (degraded, not failed).
  const PipelineSnapshot ref1 = run_pipeline(KernelMode::kReference, 1, faults);
  for (unsigned threads : {1u, 4u, 16u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_snapshots_identical(
        ref1, run_pipeline(KernelMode::kReference, threads, faults));
    expect_snapshots_identical(
        ref1, run_pipeline(KernelMode::kBatched, threads, faults));
  }
}

// ---------------------------------------------------------------------------
// ISA-dispatch differential: the SIMD lanes (util/fm_math.cpp + the masked
// pass-3 kernels in phys/kernels.cpp) are outside the determinism seed, like
// the kernel mode itself (docs/REPRODUCIBILITY.md §7). The full pipeline must
// be bit-identical — die dumps INCLUDING the RNG stream position — under
// forced-scalar, AVX2-capped and (where the host has it) AVX-512 dispatch,
// in both kernel modes, at several thread counts.
// ---------------------------------------------------------------------------

TEST(KernelDiff, PipelineByteIdenticalAcrossIsaDispatch) {
  PipelineSnapshot base;
  {
    IsaCapGuard scalar(fmm::Isa::kScalar);
    base = run_pipeline(KernelMode::kReference, 1);
  }
  for (const fmm::Isa cap : testable_isas()) {
    IsaCapGuard guard(cap);
    SCOPED_TRACE(std::string("isa cap ") + fmm::to_string(cap));
    for (unsigned threads : {1u, 4u, 16u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      expect_snapshots_identical(base,
                                 run_pipeline(KernelMode::kReference, threads));
      expect_snapshots_identical(base,
                                 run_pipeline(KernelMode::kBatched, threads));
    }
  }
  // Non-vacuous: the scalar baseline actually verified its watermarks.
  for (const auto& r : base.reports) EXPECT_EQ(r.verdict, Verdict::kGenuine);
}

// Interleaved multi-die pulses (FlashArray::partial_erase_many) must equal
// the sequential per-die pulses bit for bit — per-die temperature scaling
// and noise streams included — under every dispatch tier and both modes.
TEST(KernelDiff, InterleavedPulseMatchesSequentialAcrossIsa) {
  const FlashGeometry g = FlashGeometry::msp430f5438();
  const PhysParams p = PhysParams::msp430_calibrated();
  constexpr std::size_t kDies = 5;
  auto run = [&](bool interleaved, KernelMode mode) {
    std::vector<std::unique_ptr<FlashArray>> dies;
    std::vector<FlashArray*> arrays;
    for (std::size_t k = 0; k < kDies; ++k) {
      dies.push_back(std::make_unique<FlashArray>(g, p, 0xD1E0 + k));
      dies.back()->set_kernel_mode(mode);
      // Distinct temperatures: the per-die exposure scaling must survive
      // the shared kernel sweep.
      dies.back()->set_temperature_c(15.0 + 7.0 * static_cast<double>(k));
      arrays.push_back(dies.back().get());
    }
    const std::size_t n_words = g.segment_bytes(1) / g.word_bytes;
    const std::vector<std::uint16_t> zeros(n_words, 0);
    for (FlashArray* a : arrays) {
      a->wear_segment(1, 800.0);
      a->program_words(g.segment_base(1), zeros.data(), zeros.size());
    }
    for (int pulse = 0; pulse < 3; ++pulse) {
      const double t = 9.0 + 7.0 * pulse;
      if (interleaved) {
        FlashArray::partial_erase_many(arrays.data(), kDies, 1, t);
      } else {
        for (FlashArray* a : arrays) a->partial_erase_segment(1, t);
      }
    }
    std::string s;
    for (FlashArray* a : arrays) s += dump_array(*a);
    return s;
  };
  std::string base;
  {
    IsaCapGuard scalar(fmm::Isa::kScalar);
    base = run(/*interleaved=*/false, KernelMode::kReference);
  }
  for (const fmm::Isa cap : testable_isas()) {
    IsaCapGuard guard(cap);
    SCOPED_TRACE(std::string("isa cap ") + fmm::to_string(cap));
    for (KernelMode mode : {KernelMode::kReference, KernelMode::kBatched}) {
      SCOPED_TRACE(to_string(mode));
      EXPECT_EQ(base, run(/*interleaved=*/false, mode));
      EXPECT_EQ(base, run(/*interleaved=*/true, mode));
    }
  }
}

// The store-backed sweep's counts are part of the byte-identity contract:
// any interleave width x any thread count, same numbers. The small resident
// cap forces eviction/reload traffic under the widest interleave.
TEST(KernelDiff, PulseSweepBatchInvariantAcrossInterleaveAndThreads) {
  constexpr std::size_t kDies = 7;
  // Widths straddling the fresh-cell erase-time spread (median 24 us), so
  // successive pulses walk the population from mostly-programmed to
  // mostly-erased.
  const std::vector<double> schedule = {18.0, 22.0, 26.0, 34.0};
  auto sweep = [&](std::size_t interleave, unsigned threads) {
    ScratchDir dir("fm_kdiff_sweep_" + std::to_string(interleave) + "_" +
                   std::to_string(threads));
    store::DieStoreConfig cfg;
    cfg.dir = dir.str();
    cfg.device = config_with(KernelMode::kBatched);
    cfg.max_resident = 4;
    store::DieStore dies(cfg);
    fleet::FleetOptions fo;
    fo.threads = threads;
    return fleet::pulse_sweep_batch(dies, kDies, /*segment=*/0, schedule, fo,
                                    interleave)
        .erased_counts;
  };
  const auto base = sweep(1, 1);
  ASSERT_EQ(base.size(), kDies);
  for (const auto& die_counts : base) {
    ASSERT_EQ(die_counts.size(), schedule.size());
    for (std::size_t k = 1; k < die_counts.size(); ++k)
      EXPECT_GE(die_counts[k], die_counts[k - 1])
          << "erase transitions are one-way; counts must be monotone";
    EXPECT_GT(die_counts.back(), 0u);
  }
  for (const std::size_t interleave : {std::size_t{3}, std::size_t{8}}) {
    for (const unsigned threads : {1u, 4u}) {
      SCOPED_TRACE("interleave=" + std::to_string(interleave) +
                   " threads=" + std::to_string(threads));
      EXPECT_EQ(base, sweep(interleave, threads));
    }
  }
}

// ---------------------------------------------------------------------------
// SegmentSoA::prime_tte writes a mutable memo under const, so a resident die
// is single-owner by contract — and DieStore::pin is what enforces it at the
// fleet layer (a pin is exclusive per die). Two threads hammering the same
// die must serialize; `active` observing a second concurrent holder fails
// the test directly, and under TSan any broken exclusivity also surfaces as
// a data race on the prime_tte cache.
// ---------------------------------------------------------------------------

TEST(StoreKernel, ConcurrentSameDieExtractIsExclusive) {
  ScratchDir dir("fm_store_kernel_exclusive");
  store::DieStoreConfig cfg;
  cfg.dir = dir.str();
  cfg.device = config_with(KernelMode::kBatched);
  store::DieStore dies(cfg);
  {
    // Leave die 0 mid-transition so reads draw noise and the erase-time
    // cache is live (exactly the extract-shaped access pattern).
    store::DieStore::PinnedDie dev = dies.pin(0);
    const FlashGeometry& g = dev->config().geometry;
    std::vector<std::uint16_t> zeros(g.segment_bytes(0) / g.word_bytes, 0);
    dev->array().program_words(g.segment_base(0), zeros.data(), zeros.size());
    dev->array().partial_erase_segment(0, 26.0);
  }

  std::atomic<int> active{0};
  std::atomic<bool> overlapped{false};
  auto worker = [&] {
    for (int round = 0; round < 6; ++round) {
      store::DieStore::PinnedDie dev = dies.pin(0);
      if (active.fetch_add(1) != 0) overlapped = true;
      // prime_tte writers, both flavors: the const-path memo fill and the
      // pulse that invalidates + refills it.
      (void)dev->array().time_to_full_erase_us(0);
      dev->array().partial_erase_segment(0, 0.25);
      (void)dev->array().read_segment_majority(0, 3);
      active.fetch_sub(1);
    }
  };
  std::thread t1(worker), t2(worker), t3(worker);
  t1.join();
  t2.join();
  t3.join();
  EXPECT_FALSE(overlapped.load()) << "DieStore::pin admitted two concurrent "
                                     "holders of the same die";
}

// Kernel mode is an implementation knob, not die identity: it must not be
// persisted, and a die saved in one mode must reload byte-identically
// regardless of the mode it continues under.
TEST(KernelDiff, ModeExcludedFromPersistence) {
  Device dev(config_with(KernelMode::kBatched), /*die_seed=*/0x5AFE);
  dev.array().wear_segment(0, 2000.0);
  dev.array().partial_erase_segment(0, 25.0);
  const std::string saved = dump_device(dev);
  EXPECT_EQ(saved.find("kernel"), std::string::npos)
      << "kernel mode leaked into the die file";

  std::istringstream is(saved);
  auto back = load_device(is);
  ASSERT_NE(back, nullptr);
  // Loaded dies run the default (batched) mode; their state is the saved
  // bytes either way.
  EXPECT_EQ(back->array().kernel_mode(), KernelMode::kBatched);
  EXPECT_EQ(dump_device(*back), saved);
}

}  // namespace
}  // namespace flashmark
