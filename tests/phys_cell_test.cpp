#include "phys/cell.hpp"

#include <gtest/gtest.h>

#include "phys/erase_model.hpp"
#include "util/stats.hpp"

namespace flashmark {
namespace {

PhysParams params() { return PhysParams::msp430_calibrated(); }

TEST(Cell, ManufacturedFreshAndErased) {
  const PhysParams p = params();
  Rng rng(1);
  const Cell c = Cell::manufacture(p, rng);
  EXPECT_TRUE(c.erased());
  EXPECT_EQ(c.eff_cycles(), 0.0);
  EXPECT_FALSE(c.metastable());
  EXPECT_GT(c.tte_fresh_us(), 0.0f);
  EXPECT_GE(c.susceptibility(), static_cast<float>(p.suscept_min));
  EXPECT_LE(c.susceptibility(), static_cast<float>(p.suscept_cap));
}

TEST(Cell, FreshTtePopulationMatchesPaperWindow) {
  // Paper Fig. 4, 0 K curve: a 4096-cell segment transitions between ~18 and
  // ~35 us.
  const PhysParams p = params();
  Rng rng(2);
  RunningStats tte;
  for (int i = 0; i < 4096; ++i)
    tte.add(Cell::manufacture(p, rng).tte_us(p));
  EXPECT_GT(tte.min(), 15.0);
  EXPECT_LT(tte.min(), 22.0);
  EXPECT_GT(tte.max(), 29.0);
  EXPECT_LT(tte.max(), 40.0);
  EXPECT_NEAR(tte.mean(), 24.0, 1.0);
}

TEST(Cell, ProgramAndEraseToggleState) {
  const PhysParams p = params();
  Rng rng(3);
  Cell c = Cell::manufacture(p, rng);
  c.program(p);
  EXPECT_FALSE(c.erased());
  EXPECT_EQ(c.level(), CellLevel::kProgrammed);
  c.full_erase(p);
  EXPECT_TRUE(c.erased());
  EXPECT_EQ(c.level(), CellLevel::kErased);
}

TEST(Cell, StressAccountingPerEvent) {
  const PhysParams p = params();
  Rng rng(4);
  Cell c = Cell::manufacture(p, rng);
  c.program(p);  // erased -> programmed
  EXPECT_DOUBLE_EQ(c.eff_cycles(), p.stress_program);
  c.program(p);  // reprogram
  EXPECT_DOUBLE_EQ(c.eff_cycles(), p.stress_program + p.stress_reprogram);
  c.full_erase(p);  // programmed -> erased
  EXPECT_DOUBLE_EQ(c.eff_cycles(),
                   p.stress_program + p.stress_reprogram +
                       p.stress_erase_transition);
  c.full_erase(p);  // idle erase
  EXPECT_DOUBLE_EQ(c.eff_cycles(),
                   p.stress_program + p.stress_reprogram +
                       p.stress_erase_transition + p.stress_erase_idle);
}

TEST(Cell, EffCyclesNeverDecreases) {
  // Irreversibility property: random op sequences only accumulate stress.
  const PhysParams p = params();
  Rng rng(5);
  Cell c = Cell::manufacture(p, rng);
  double prev = 0.0;
  Rng ops(99);
  for (int i = 0; i < 2000; ++i) {
    switch (ops.uniform_u64(4)) {
      case 0: c.program(p); break;
      case 1: c.full_erase(p); break;
      case 2: c.partial_erase(p, ops.uniform(0.0, 100.0), ops); break;
      case 3: c.partial_program(p, ops.uniform(0.05, 1.0), ops); break;
    }
    EXPECT_GE(c.eff_cycles(), prev);
    prev = c.eff_cycles();
  }
}

TEST(Cell, TteGrowsWithStress) {
  const PhysParams p = params();
  Rng rng(6);
  Cell c = Cell::manufacture(p, rng);
  const double fresh = c.tte_us(p);
  c.batch_stress(p, 20'000, true, false);
  const double worn20 = c.tte_us(p);
  c.batch_stress(p, 20'000, true, false);
  const double worn40 = c.tte_us(p);
  EXPECT_GT(worn20, fresh);
  EXPECT_GT(worn40, worn20);
}

TEST(Cell, PartialEraseZeroTimeKeepsProgrammed) {
  const PhysParams p = params();
  Rng rng(7);
  Cell c = Cell::manufacture(p, rng);
  c.program(p);
  c.partial_erase(p, 0.0, rng);
  EXPECT_FALSE(c.erased());
}

TEST(Cell, PartialEraseLongTimeErases) {
  const PhysParams p = params();
  Rng rng(8);
  Cell c = Cell::manufacture(p, rng);
  c.program(p);
  c.partial_erase(p, 10'000.0, rng);  // far beyond any tte
  EXPECT_TRUE(c.erased());
}

TEST(Cell, PartialEraseOnErasedCellIsNoopState) {
  const PhysParams p = params();
  Rng rng(9);
  Cell c = Cell::manufacture(p, rng);
  c.partial_erase(p, 50.0, rng);
  EXPECT_TRUE(c.erased());
  EXPECT_FALSE(c.metastable());
}

TEST(Cell, PartialEraseThresholdBehaviour) {
  // Without jitter the transition happens exactly at tte.
  PhysParams p = params();
  p.tte_event_jitter_sigma = 0.0;
  Rng rng(10);
  Cell c = Cell::manufacture(p, rng);
  const double tte = c.tte_us(p);
  c.program(p);
  c.partial_erase(p, tte * 0.9, rng);
  EXPECT_FALSE(c.erased());
  c.full_erase(p);
  c.program(p);
  c.partial_erase(p, c.tte_us(p) * 1.1, rng);
  EXPECT_TRUE(c.erased());
}

TEST(Cell, AbortedEraseCostsLessStressThanTransition) {
  PhysParams p = params();
  p.tte_event_jitter_sigma = 0.0;
  Rng rng(11);
  Cell a = Cell::manufacture(p, rng);
  Cell b = a;
  a.program(p);
  b.program(p);
  const double before = a.eff_cycles();
  a.partial_erase(p, a.tte_us(p) * 0.5, rng);  // aborted mid-flight
  b.full_erase(p);                             // full transition
  EXPECT_LT(a.eff_cycles() - before, p.stress_erase_transition);
  EXPECT_GT(a.eff_cycles(), before);
}

TEST(Cell, SettledReadsAreDeterministic) {
  const PhysParams p = params();
  Rng rng(12);
  Cell c = Cell::manufacture(p, rng);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(c.read(p, rng));
  c.program(p);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(c.read(p, rng));
}

TEST(Cell, MetastableReadsFlipSometimes) {
  PhysParams p = params();
  p.tte_event_jitter_sigma = 0.0;
  Rng rng(13);
  Cell c = Cell::manufacture(p, rng);
  c.program(p);
  // Abort exactly at the transition: margin ~ 0, flip probability ~ 0.5.
  c.partial_erase(p, c.tte_us(p), rng);
  int flips = 0;
  const int n = 2000;
  const bool nominal = c.erased();
  for (int i = 0; i < n; ++i)
    if (c.read(p, rng) != nominal) ++flips;
  EXPECT_GT(flips, n / 5);
  EXPECT_LT(flips, n * 4 / 5);
}

TEST(Cell, FarMarginReadsStable) {
  PhysParams p = params();
  p.tte_event_jitter_sigma = 0.0;
  Rng rng(14);
  Cell c = Cell::manufacture(p, rng);
  c.program(p);
  c.partial_erase(p, c.tte_us(p) * 3.0, rng);  // margin >> tau
  ASSERT_TRUE(c.erased());
  for (int i = 0; i < 500; ++i) EXPECT_TRUE(c.read(p, rng));
}

TEST(Cell, FullOperationsClearMetastability) {
  const PhysParams p = params();
  Rng rng(15);
  Cell c = Cell::manufacture(p, rng);
  c.program(p);
  c.partial_erase(p, c.tte_us(p), rng);
  EXPECT_TRUE(c.metastable());
  c.full_erase(p);
  EXPECT_FALSE(c.metastable());
  c.program(p);
  c.partial_erase(p, c.tte_us(p), rng);
  c.program(p);
  EXPECT_FALSE(c.metastable());
}

TEST(Cell, PartialProgramCompletesAtHighFraction) {
  const PhysParams p = params();
  Rng rng(16);
  Cell c = Cell::manufacture(p, rng);
  c.partial_program(p, 1.0, rng);
  EXPECT_FALSE(c.erased());
}

TEST(Cell, PartialProgramTinyFractionStaysErased) {
  const PhysParams p = params();
  Rng rng(17);
  Cell c = Cell::manufacture(p, rng);
  c.partial_program(p, 0.05, rng);
  EXPECT_TRUE(c.erased());
}

class BatchEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BatchEquivalence, BatchMatchesLoopStress) {
  // batch_stress(cycles) must accumulate the same eff_cycles as the real
  // Fig. 7 erase/program loop (up to the first-cycle boundary effect) and
  // finish in the same logical state the loop's last operation leaves.
  const PhysParams p = params();
  const int cycles = GetParam();
  Rng rng(18);
  Cell stressed_loop = Cell::manufacture(p, rng);
  Cell stressed_batch = stressed_loop;
  Cell idle_loop = Cell::manufacture(p, rng);
  Cell idle_batch = idle_loop;

  for (int i = 0; i < cycles; ++i) {
    stressed_loop.full_erase(p);
    stressed_loop.program(p);  // imprint loop ends on a program
    idle_loop.full_erase(p);
  }

  stressed_batch.batch_stress(p, cycles, true, /*end_programmed=*/true);
  idle_batch.batch_stress(p, cycles, false, /*end_programmed=*/false);

  EXPECT_NEAR(stressed_batch.eff_cycles(), stressed_loop.eff_cycles(),
              1.0 + 0.01 * cycles);
  EXPECT_NEAR(idle_batch.eff_cycles(), idle_loop.eff_cycles(),
              0.05 + 0.001 * cycles);
  EXPECT_FALSE(stressed_batch.erased());
  EXPECT_TRUE(idle_batch.erased());
}

INSTANTIATE_TEST_SUITE_P(Cycles, BatchEquivalence,
                         ::testing::Values(1, 10, 100, 1000));

TEST(Cell, BatchStressNegativeClamped) {
  const PhysParams p = params();
  Rng rng(19);
  Cell c = Cell::manufacture(p, rng);
  c.batch_stress(p, -5.0, true, false);
  EXPECT_EQ(c.eff_cycles(), 0.0);
}

}  // namespace
}  // namespace flashmark
